package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"time"

	"repro/internal/gen"
	"repro/internal/server"
)

// streamReport is the scorecard of the stream suite: one long-lived
// /v1/stream session applying n set_cell mutations, against the same n
// environment states characterized cold as one-shot requests. The p50
// speedup is the direct measurement of what the incremental solver buys a
// client that watches an evolving environment; the accounting flag pins the
// server-side invariant stream_profiles == stream_sessions +
// stream_incremental + stream_recomputed across the phase.
type streamReport struct {
	Mutations        int `json:"mutations"`
	IncrementalTotal int `json:"incremental_total"`
	RecomputedTotal  int `json:"recomputed_total"`
	// StreamP50Ms is the per-mutation round-trip median inside the session;
	// OneShotP50Ms the median of the cold one-shot baseline over the
	// identical environment states.
	StreamP50Ms  float64 `json:"stream_p50_ms"`
	OneShotP50Ms float64 `json:"oneshot_p50_ms"`
	// P50Speedup is OneShotP50Ms over StreamP50Ms — the serving-tier gate
	// requires at least 2x (see cmd/hcbench benchdiff).
	P50Speedup float64 `json:"p50_speedup"`
	// AccountingBalanced reports the /metrics invariant over the phase's
	// counter deltas.
	AccountingBalanced bool `json:"accounting_balanced"`
}

// runStreamSuite runs the two stream phases and distills the scorecard.
// The mutation sequence multiplies one ECS cell by 1.02 per step, walking
// the matrix — percent-level edits, the regime the warm-started incremental
// solver is built for. Each post-mutation state is mirrored locally so the
// one-shot baseline characterizes byte-identical environments (all distinct,
// so the result cache cannot serve them).
func runStreamSuite(client *http.Client, base string, n, tasks, machines int, seed int64) ([]phaseReport, *streamReport, error) {
	rng := rand.New(rand.NewSource(seed))
	env, err := gen.RangeBased(tasks, machines, 100, 10, rng)
	if err != nil {
		return nil, nil, err
	}
	ecs := make([][]float64, tasks)
	for i := 0; i < tasks; i++ {
		ecs[i] = make([]float64, machines)
		for j := 0; j < machines; j++ {
			ecs[i][j] = env.ECSAt(i, j)
		}
	}

	// Pre-render the mutation walk and the one-shot snapshot bodies.
	type cellMut struct {
		task, machine int
		value         float64
	}
	muts := make([]cellMut, n)
	snapshots := make([][]byte, n)
	for k := 0; k < n; k++ {
		i, j := k%tasks, (k*31+k/tasks)%machines
		ecs[i][j] *= 1.02
		muts[k] = cellMut{i, j, ecs[i][j]}
		snap := make([][]float64, tasks)
		for r := 0; r < tasks; r++ {
			snap[r] = append([]float64(nil), ecs[r]...)
		}
		b, err := json.Marshal(&server.EnvDTO{ECS: snap})
		if err != nil {
			return nil, nil, err
		}
		snapshots[k] = b
	}

	// The session outlives any sane per-request budget, so it gets its own
	// client without the overall timeout (http.Client.Timeout covers the
	// whole exchange, which for a stream is the session's lifetime).
	streamClient := &http.Client{Transport: client.Transport}

	before, beforeErr := scrapeCounters(client, base)
	sess, _, err := server.OpenStreamSession(context.Background(), streamClient, base,
		server.EnvToDTO(env), 0)
	if err != nil {
		return nil, nil, fmt.Errorf("opening stream session: %w", err)
	}
	latencies := make([]time.Duration, 0, n)
	errs := 0
	start := time.Now()
	for _, m := range muts {
		t0 := time.Now()
		u, err := sess.SetCell(m.task, m.machine, m.value)
		if err != nil {
			sess.Close()
			return nil, nil, fmt.Errorf("stream mutation: %w", err)
		}
		if u.Error != nil {
			errs++
			continue
		}
		latencies = append(latencies, time.Since(t0))
	}
	elapsed := time.Since(start)
	summary, err := sess.Close()
	if err != nil {
		return nil, nil, fmt.Errorf("closing stream session: %w", err)
	}
	if len(latencies) == 0 {
		return nil, nil, fmt.Errorf("stream phase: no accepted mutations (%d rejected)", errs)
	}
	streamPhase := phaseReport{Name: "stream", Requests: n, Errors: errs}
	summarizeLatencies(&streamPhase, latencies, elapsed)
	if after, err := scrapeCounters(client, base); err == nil && beforeErr == nil {
		streamPhase.Metrics = countersDelta(before, after)
		d := func(name string) uint64 { return after[name] - before[name] }
		sr := &streamReport{
			Mutations:        len(latencies),
			IncrementalTotal: summary.IncrementalTotal,
			RecomputedTotal:  summary.RecomputedTotal,
			StreamP50Ms:      streamPhase.P50Ms,
			AccountingBalanced: d("hcserved_stream_profiles_total") ==
				d("hcserved_stream_sessions_total")+
					d("hcserved_stream_incremental_total")+
					d("hcserved_stream_recomputed_total"),
		}
		// One-shot baseline: the identical states, cold, serially — the
		// session is serial too, so the p50s compare like for like.
		oneShot, err := sampledPhase(client, base, "stream_oneshot", snapshots, 1, "application/json")
		if err != nil {
			return nil, nil, fmt.Errorf("phase stream_oneshot: %v", err)
		}
		sr.OneShotP50Ms = oneShot.P50Ms
		if sr.StreamP50Ms > 0 {
			sr.P50Speedup = sr.OneShotP50Ms / sr.StreamP50Ms
		}
		return []phaseReport{streamPhase, oneShot}, sr, nil
	}
	return nil, nil, fmt.Errorf("scraping /metrics around the stream phase failed")
}
