// Command hcload is the load generator for hcserved: it hammers a running
// server with characterization requests and emits a machine-readable
// BENCH_serve.json report, extending the kernel bench-diff story (see
// cmd/hcbench) to the serving tier.
//
// Usage:
//
//	hcload [-url http://localhost:8080] [-c 8] [-n 500]
//	       [-tasks 30] [-machines 16] [-seed 1] [-surge 0] [-out -]
//	       [-cluster url1,url2,url3 [-kill-pid P -kill-node I] [-merge FILE]]
//
// Every measured phase is bracketed by its own /metrics scrape, so the
// report's per-phase counter deltas (hits, misses, coalesced, shed, and in
// cluster mode forwards and hedges) are attributable to the phase that
// caused them rather than smeared into one end-of-run total.
//
// With -cluster the single-node suite is replaced by the cluster suite (see
// cluster.go): the same bodies round-robined across the node set, a
// kill-a-node phase when -kill-pid is given, and a cluster section in the
// report asserting zero lost responses plus the per-node serving-accounting
// invariant. -merge grafts that section onto an existing single-node report
// so one BENCH_serve.json carries both.
//
// The single-node run has seven measured phases:
//
//	cold     — n distinct JSON environments, every request runs the full
//	           Sinkhorn+SVD pipeline;
//	warm     — the identical n bodies again, served from the
//	           content-addressed result cache;
//	cold_bin — n fresh environments as application/x-hc-matrix binary
//	           frames, paying the pipeline but not the JSON decode;
//	warm_bin — the identical binary bodies again: the pure decode+lookup
//	           cost of the binary path (the report's binary section
//	           compares the two warm p50s directly);
//	zipf     — n requests drawn Zipf-skewed from a small pool of fresh
//	           environments, the duplicate-heavy pattern sweep tooling
//	           produces. The report's zipf section checks the coalescing
//	           invariant: characterizations grow by exactly the number of
//	           distinct keys, with every concurrent duplicate absorbed by
//	           the cache or the singleflight layer;
//	stream   — one long-lived /v1/stream session applying n set_cell
//	           mutations, each answered with an incrementally updated
//	           profile; the per-mutation round trip is the sample;
//	stream_oneshot — the identical n post-mutation environment states sent
//	           cold as serial one-shot requests: the baseline the stream
//	           section's p50_speedup (gated at 2x by cmd/hcbench) divides
//	           against.
//
// The report carries per-phase latency quantiles and throughput, the
// server's cache hit rate scraped from /metrics, and the cold/warm p50
// ratio — the direct measurement of what the cache buys. With -surge K an
// extra unmeasured burst of K concurrent unique requests probes overload
// behavior; the report records how many were shed with 429.
//
// A whatif probe then posts one environment to /v1/whatif and records the
// Sinkhorn iteration counts the response reports: the baseline's cold count
// against the per-delta counts of the leave-one-out re-solves, which are
// warm-started from the baseline's converged scaling vectors. The whatif
// section's ratio is the measured warm-start speedup on the service path.
//
// After the measured phases, ?trace=1 probe requests — a fresh JSON body
// and its immediate repeat, then the same pair as binary frames — record the
// server's own stage breakdown (decode, cache_lookup, queue_wait, compute,
// and the nested pipeline spans) as trace_cold / trace_warm /
// trace_cold_bin / trace_warm_bin, showing where each kind of request spends
// its time inside the server rather than on the wire.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/gen"
	"repro/internal/server"
	"repro/internal/wire"
)

type phaseReport struct {
	Name          string  `json:"name"`
	Requests      int     `json:"requests"`
	Errors        int     `json:"errors"`
	Status429     int     `json:"status_429"`
	ThroughputRPS float64 `json:"throughput_rps"`
	MeanMs        float64 `json:"mean_ms"`
	P50Ms         float64 `json:"p50_ms"`
	P90Ms         float64 `json:"p90_ms"`
	P99Ms         float64 `json:"p99_ms"`
	// Metrics is the server-side counter movement across this phase alone:
	// /metrics is scraped immediately before and after, so a surge's shed
	// count or a warm phase's hit count is attributable to the phase that
	// caused it instead of smearing into one end-of-run total.
	Metrics *phaseCounters `json:"metrics,omitempty"`
}

// phaseCounters are the /metrics counter deltas bracketing one phase. In
// cluster mode each field is summed across every node scraped.
type phaseCounters struct {
	Characterizations uint64 `json:"characterizations"`
	CacheHits         uint64 `json:"cache_hits"`
	CacheMisses       uint64 `json:"cache_misses"`
	Coalesced         uint64 `json:"coalesced"`
	Rejected          uint64 `json:"rejected"`
	Forwarded         uint64 `json:"forwarded,omitempty"`
	PeerFills         uint64 `json:"peer_fills,omitempty"`
	Hedges            uint64 `json:"hedges,omitempty"`
	HedgeWins         uint64 `json:"hedge_wins,omitempty"`
}

// countersDelta distills the interesting movement between two scrapes.
func countersDelta(before, after map[string]uint64) *phaseCounters {
	d := func(name string) uint64 { return after[name] - before[name] }
	return &phaseCounters{
		Characterizations: d("hcserved_characterizations_total"),
		CacheHits:         d("hcserved_cache_hits_total"),
		CacheMisses:       d("hcserved_cache_misses_total"),
		Coalesced:         d("hcserved_coalesced_total"),
		Rejected:          d("hcserved_rejected_total"),
		Forwarded:         d("hcserved_forwarded_total"),
		PeerFills:         d("hcserved_peer_fills_total"),
		Hedges:            d("hcserved_hedged_total"),
		HedgeWins:         d("hcserved_hedge_wins_total"),
	}
}

type cacheReport struct {
	Hits    uint64  `json:"hits"`
	Misses  uint64  `json:"misses"`
	HitRate float64 `json:"hit_rate"`
}

// zipfReport is the coalescing scorecard of the zipf phase: counter deltas
// scraped around the phase, pinned against the number of distinct
// environments the phase actually sent.
type zipfReport struct {
	// UniquePool is the body pool size the Zipf draw samples from;
	// DistinctRequested is how many pool entries the n draws actually hit.
	UniquePool        int `json:"unique_pool"`
	DistinctRequested int `json:"distinct_requested"`
	// Characterizations, Coalesced and CacheHits are the /metrics counter
	// deltas across the phase.
	Characterizations uint64 `json:"characterizations"`
	Coalesced         uint64 `json:"coalesced"`
	CacheHits         uint64 `json:"cache_hits"`
	// UniqueComputesOnly records the tentpole invariant: the phase computed
	// each distinct environment exactly once, every duplicate was a cache
	// hit or a coalesced waiter.
	UniqueComputesOnly bool `json:"unique_computes_only"`
}

// whatifReport records the warm-start evidence from one /v1/whatif probe:
// the baseline solve's cold Sinkhorn iteration count against the per-delta
// counts of the leave-one-out re-solves seeded from the baseline's scalings.
type whatifReport struct {
	Shape               string  `json:"shape"`
	BaselineIterations  int     `json:"baseline_iterations"`
	Deltas              int     `json:"deltas"`
	MeanDeltaIterations float64 `json:"mean_delta_iterations"`
	MaxDeltaIterations  int     `json:"max_delta_iterations"`
	// WarmSpeedup is baseline_iterations over mean_delta_iterations: how
	// many times fewer normalization rounds a warm-started neighbor solve
	// needs than the cold baseline.
	WarmSpeedup float64 `json:"warm_speedup"`
}

type report struct {
	URL              string        `json:"url"`
	Concurrency      int           `json:"concurrency"`
	RequestsPerPhase int           `json:"requests_per_phase"`
	Shape            string        `json:"shape"`
	GoVersion        string        `json:"go_version"`
	GoMaxProcs       int           `json:"gomaxprocs"`
	Phases           []phaseReport `json:"phases"`
	Cache            *cacheReport  `json:"cache,omitempty"`
	// Zipf carries the coalescing accounting of the skewed-duplicate phase;
	// Whatif the warm-start iteration counts of the what-if probe; Stream
	// the incremental-session scorecard (see stream.go).
	Zipf   *zipfReport   `json:"zipf,omitempty"`
	Whatif *whatifReport `json:"whatif,omitempty"`
	Stream *streamReport `json:"stream,omitempty"`
	// ColdWarmP50Ratio is cold-phase p50 over warm-phase p50: how much
	// latency the result cache removes for a repeated environment.
	ColdWarmP50Ratio float64 `json:"cold_warm_p50_ratio"`
	// WarmJSONBinP50Ratio is the JSON warm p50 over the binary warm p50: on
	// a cache hit the request is almost pure decode, so this ratio is the
	// decode win of the binary wire format in isolation.
	WarmJSONBinP50Ratio float64 `json:"warm_json_bin_p50_ratio,omitempty"`
	// Surge429 counts requests shed with 429 during the optional -surge
	// burst (absent when -surge 0); SurgeMetrics is the server-side counter
	// movement across the same burst rounds.
	Surge429     *int           `json:"surge_429,omitempty"`
	SurgeMetrics *phaseCounters `json:"surge_metrics,omitempty"`
	// Cluster is the -cluster suite's scorecard: retry/lost accounting from
	// the client side and the per-node serving invariant from /metrics.
	Cluster *clusterReport `json:"cluster,omitempty"`
	// Replica compares strict ring-order owner targeting against the p2c
	// replica-read policy on the same warm bodies (cluster mode only).
	Replica *replicaReport `json:"replica,omitempty"`
	// Churn is the join/leave scorecard: handoff reconciliation, post-join
	// warm hit rate on moved keys, and zero-loss draining of the leave
	// (cluster mode with -churn-node/-churn-pid only).
	Churn *churnReport `json:"churn,omitempty"`
	// TraceCold and TraceWarm are the server-side stage breakdowns of one
	// traced probe request: a fresh body paying the full pipeline, then the
	// same body answered from the result cache. They come from the API's
	// ?trace=1 timings echo, so they measure time inside the server only.
	TraceCold *stageBreakdown `json:"trace_cold,omitempty"`
	TraceWarm *stageBreakdown `json:"trace_warm,omitempty"`
	// TraceColdBin and TraceWarmBin are the same two probes sent as binary
	// matrix frames, isolating what the wire format does to the decode stage.
	TraceColdBin *stageBreakdown `json:"trace_cold_bin,omitempty"`
	TraceWarmBin *stageBreakdown `json:"trace_warm_bin,omitempty"`
}

// stageBreakdown is one traced request's timings as recorded in the report:
// the wall time inside the server and each stage's share of it.
type stageBreakdown struct {
	RequestID string       `json:"request_id"`
	TotalMs   float64      `json:"total_ms"`
	Stages    []stageEntry `json:"stages"`
}

type stageEntry struct {
	Stage string  `json:"stage"`
	Ms    float64 `json:"ms"`
}

func main() {
	url := flag.String("url", "http://localhost:8080", "base URL of a running hcserved")
	conc := flag.Int("c", 8, "concurrent in-flight requests")
	n := flag.Int("n", 500, "requests per phase")
	tasks := flag.Int("tasks", 30, "task types per generated environment")
	machines := flag.Int("machines", 16, "machines per generated environment")
	seed := flag.Int64("seed", 1, "base seed for the generated bodies")
	surge := flag.Int("surge", 0, "extra concurrent burst size probing 429 shedding (0 = off)")
	out := flag.String("out", "-", "report path (\"-\" for stdout)")
	clusterNodes := flag.String("cluster", "", "comma-separated node base URLs; runs the cluster suite instead of the single-node phases")
	killPid := flag.Int("kill-pid", 0, "process to SIGTERM partway through the cluster_kill phase (0 = no kill)")
	killNode := flag.Int("kill-node", -1, "index into -cluster of the node -kill-pid runs (dropped from rotation at kill time)")
	replicas := flag.Int("replicas", 2, "the cluster's replication factor R (must match the servers' -replicas; used to rebuild the ring client-side)")
	vnodes := flag.Int("vnodes", 64, "the cluster's virtual nodes per member (must match the servers' -vnodes)")
	churnNode := flag.String("churn-node", "", "base URL of a standalone cluster-mode node to join and then kill for the churn phases")
	churnPid := flag.Int("churn-pid", 0, "process id of the -churn-node server (SIGTERMed for the leave half)")
	mergePath := flag.String("merge", "", "existing report to graft the cluster phases and section onto (cluster mode only)")
	flag.Parse()

	// A deep idle pool: the surge fires hundreds of requests at once, and the
	// default transport keeps only two idle connections per host, so every
	// burst would otherwise pay a serialized dial storm that masks the
	// server's admission behavior.
	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.MaxIdleConns = 512
	tr.MaxIdleConnsPerHost = 512
	client := &http.Client{Timeout: 60 * time.Second, Transport: tr}

	rep := report{
		Concurrency:      *conc,
		RequestsPerPhase: *n,
		Shape:            fmt.Sprintf("%dx%d", *tasks, *machines),
		GoVersion:        runtime.Version(),
		GoMaxProcs:       runtime.GOMAXPROCS(0),
	}

	if *clusterNodes != "" {
		nodes := splitNodes(*clusterNodes)
		if len(nodes) < 2 {
			fatal("-cluster needs at least two node URLs, got %d", len(nodes))
		}
		if *killPid != 0 && (*killNode < 0 || *killNode >= len(nodes)) {
			fatal("-kill-pid needs -kill-node in [0,%d)", len(nodes))
		}
		if (*churnNode == "") != (*churnPid == 0) {
			fatal("-churn-node and -churn-pid must be given together")
		}
		runClusterSuite(client, &rep, clusterConfig{
			nodes:     nodes,
			conc:      *conc,
			n:         *n,
			tasks:     *tasks,
			machines:  *machines,
			seed:      *seed,
			killPid:   *killPid,
			killNode:  *killNode,
			replicas:  *replicas,
			vnodes:    *vnodes,
			churnNode: strings.TrimSuffix(strings.TrimSpace(*churnNode), "/"),
			churnPid:  *churnPid,
		})
		if *mergePath != "" {
			if err := mergeClusterReport(*mergePath, *out, &rep); err != nil {
				fatal("merging cluster report: %v", err)
			}
			return
		}
		writeReport(&rep, *out)
		return
	}

	bodies, err := makeBodies(*n, *tasks, *machines, *seed)
	if err != nil {
		fatal("generating bodies: %v", err)
	}
	base := strings.TrimSuffix(*url, "/")
	if err := waitHealthy(client, base, 5*time.Second); err != nil {
		fatal("%v", err)
	}
	rep.URL = base
	for _, phase := range []string{"cold", "warm"} {
		pr, err := sampledPhase(client, base, phase, bodies, *conc, "application/json")
		if err != nil {
			fatal("phase %s: %v", phase, err)
		}
		rep.Phases = append(rep.Phases, pr)
	}
	if rep.Phases[1].P50Ms > 0 {
		rep.ColdWarmP50Ratio = rep.Phases[0].P50Ms / rep.Phases[1].P50Ms
	}

	// Binary phases: fresh environments (seed offset keeps cold_bin truly
	// cold) encoded as application/x-hc-matrix frames.
	binBodies, err := makeBinaryBodies(*n, *tasks, *machines, *seed+5_000_000)
	if err != nil {
		fatal("generating binary bodies: %v", err)
	}
	for _, phase := range []string{"cold_bin", "warm_bin"} {
		pr, err := sampledPhase(client, base, phase, binBodies, *conc, wire.ContentTypeMatrix)
		if err != nil {
			fatal("phase %s: %v", phase, err)
		}
		rep.Phases = append(rep.Phases, pr)
	}
	if rep.Phases[3].P50Ms > 0 {
		rep.WarmJSONBinP50Ratio = rep.Phases[1].P50Ms / rep.Phases[3].P50Ms
	}

	// zipf phase: n draws over a small fresh pool, heavily skewed so hot
	// keys repeat; the phase's own counter deltas pin the coalescing
	// invariant (computes == distinct keys).
	{
		pool, seq, distinct, err := makeZipfBodies(*n, *tasks, *machines, *seed+3_000_000)
		if err != nil {
			fatal("generating zipf bodies: %v", err)
		}
		pr, err := sampledPhase(client, base, "zipf", seq, *conc, "application/json")
		if err != nil {
			fatal("phase zipf: %v", err)
		}
		if pr.Metrics == nil {
			fatal("scraping /metrics around zipf failed")
		}
		rep.Phases = append(rep.Phases, pr)
		rep.Zipf = &zipfReport{
			UniquePool:         len(pool),
			DistinctRequested:  distinct,
			Characterizations:  pr.Metrics.Characterizations,
			Coalesced:          pr.Metrics.Coalesced,
			CacheHits:          pr.Metrics.CacheHits,
			UniqueComputesOnly: pr.Metrics.Characterizations == uint64(distinct),
		}
	}
	// Stream suite: one /v1/stream session mutating an environment n times
	// against the same n states characterized cold, measuring the
	// incremental-solve speedup the streaming API exists for.
	{
		phases, sr, err := runStreamSuite(client, base, *n, *tasks, *machines, *seed+7_000_000)
		if err != nil {
			fatal("stream suite: %v", err)
		}
		rep.Phases = append(rep.Phases, phases...)
		rep.Stream = sr
	}
	if *surge > 0 {
		// Several rounds with fresh (uncacheable) bodies: a single burst can
		// slip through on scheduler timing, especially on one CPU where
		// arrivals serialize behind the compute slot. The burst is bracketed
		// by its own scrape so the server-side shed count is attributable to
		// the surge rather than folded into the end-of-run totals.
		before, beforeErr := scrapeCounters(client, base)
		shed := 0
		for round := 0; round < 3; round++ {
			shed += runSurge(client, base, *surge, *tasks, *machines,
				*seed+int64(round)*10_000_000)
		}
		rep.Surge429 = &shed
		if after, err := scrapeCounters(client, base); err == nil && beforeErr == nil {
			rep.SurgeMetrics = countersDelta(before, after)
		}
	}
	if c, err := scrapeCache(client, base); err == nil {
		rep.Cache = c
	} else {
		fmt.Fprintf(os.Stderr, "hcload: scraping /metrics: %v\n", err)
	}

	// Whatif probe: one leave-one-out analysis on a fresh environment; the
	// response's per-delta iteration counts measure the warm-start win on
	// the service path. Probe failure degrades the report, not the run.
	if wr, err := whatifProbe(client, base, *tasks, *machines, *seed+4_000_000); err == nil {
		rep.Whatif = wr
	} else {
		fmt.Fprintf(os.Stderr, "hcload: whatif probe: %v\n", err)
	}

	// Stage-breakdown probes: a body no phase has sent (fresh seed offset)
	// traced cold, then the identical body again for the cached path. Probe
	// failures degrade the report rather than fail the run.
	probe, err := makeBodies(1, *tasks, *machines, *seed+2_000_000)
	if err == nil {
		for _, p := range []struct {
			name string
			dst  **stageBreakdown
		}{{"cold", &rep.TraceCold}, {"warm", &rep.TraceWarm}} {
			sb, err := tracedRequest(client, base, probe[0], "application/json")
			if err != nil {
				fmt.Fprintf(os.Stderr, "hcload: trace_%s probe: %v\n", p.name, err)
				break
			}
			*p.dst = sb
		}
	}
	if binProbe, err := makeBinaryBodies(1, *tasks, *machines, *seed+6_000_000); err == nil {
		for _, p := range []struct {
			name string
			dst  **stageBreakdown
		}{{"cold_bin", &rep.TraceColdBin}, {"warm_bin", &rep.TraceWarmBin}} {
			sb, err := tracedRequest(client, base, binProbe[0], wire.ContentTypeMatrix)
			if err != nil {
				fmt.Fprintf(os.Stderr, "hcload: trace_%s probe: %v\n", p.name, err)
				break
			}
			*p.dst = sb
		}
	}

	writeReport(&rep, *out)
}

func writeReport(rep *report, out string) {
	w := os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			fatal("%v", err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal("writing report: %v", err)
	}
}

// splitNodes parses the -cluster flag: comma-separated base URLs, trailing
// slashes trimmed, empties dropped.
func splitNodes(s string) []string {
	var nodes []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSuffix(strings.TrimSpace(p), "/"); p != "" {
			nodes = append(nodes, p)
		}
	}
	return nodes
}

// sampledPhase brackets runPhase with /metrics scrapes so the counter
// movement is attributable to this phase alone. Scrape failures degrade the
// sample (Metrics stays nil), not the phase.
func sampledPhase(client *http.Client, base, name string, bodies [][]byte, conc int, contentType string) (phaseReport, error) {
	before, beforeErr := scrapeCounters(client, base)
	pr, err := runPhase(client, base, name, bodies, conc, contentType)
	if err != nil {
		return pr, err
	}
	if after, err := scrapeCounters(client, base); err == nil && beforeErr == nil {
		pr.Metrics = countersDelta(before, after)
	}
	return pr, nil
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "hcload: "+format+"\n", args...)
	os.Exit(1)
}

// makeBodies pre-renders n distinct characterize request bodies so the
// measured loop spends nothing on generation or encoding.
func makeBodies(n, tasks, machines int, seed int64) ([][]byte, error) {
	bodies := make([][]byte, n)
	for i := 0; i < n; i++ {
		rng := rand.New(rand.NewSource(seed + int64(i)))
		env, err := gen.RangeBased(tasks, machines, 100, 10, rng)
		if err != nil {
			return nil, err
		}
		b, err := json.Marshal(server.EnvToDTO(env))
		if err != nil {
			return nil, err
		}
		bodies[i] = b
	}
	return bodies, nil
}

// makeBinaryBodies pre-renders n distinct environments as binary matrix
// frames (one frame per body — the characterize wire form).
func makeBinaryBodies(n, tasks, machines int, seed int64) ([][]byte, error) {
	bodies := make([][]byte, n)
	for i := 0; i < n; i++ {
		rng := rand.New(rand.NewSource(seed + int64(i)))
		env, err := gen.RangeBased(tasks, machines, 100, 10, rng)
		if err != nil {
			return nil, err
		}
		b, err := wire.AppendMatrix(nil, env.ETC())
		if err != nil {
			return nil, err
		}
		bodies[i] = b
	}
	return bodies, nil
}

// makeZipfBodies builds the zipf phase's traffic: a pool of max(1, n/10)
// fresh environments and a request sequence of n bodies drawn from it with a
// Zipf(1.2) rank distribution — a few keys dominate, the tail is rare — then
// reports how many distinct pool entries the sequence touches.
func makeZipfBodies(n, tasks, machines int, seed int64) (pool, seq [][]byte, distinct int, err error) {
	poolSize := n / 10
	if poolSize < 1 {
		poolSize = 1
	}
	pool, err = makeBodies(poolSize, tasks, machines, seed)
	if err != nil {
		return nil, nil, 0, err
	}
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, 1.2, 1, uint64(poolSize-1))
	seq = make([][]byte, n)
	used := make(map[uint64]bool, poolSize)
	for i := range seq {
		k := zipf.Uint64()
		used[k] = true
		seq[i] = pool[k]
	}
	return pool, seq, len(used), nil
}

// whatifProbe posts one environment to /v1/whatif and distills the
// response's Sinkhorn iteration counts: the baseline's cold solve against
// the warm-started leave-one-out re-solves.
func whatifProbe(client *http.Client, base string, tasks, machines int, seed int64) (*whatifReport, error) {
	bodies, err := makeBodies(1, tasks, machines, seed)
	if err != nil {
		return nil, err
	}
	resp, err := client.Post(base+"/v1/whatif", "application/json", bytes.NewReader(bodies[0]))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d: %.200s", resp.StatusCode, raw)
	}
	var out struct {
		Baseline *struct {
			SinkhornIterations int `json:"sinkhornIterations"`
		} `json:"baseline"`
		Deltas []struct {
			SinkhornIterations int    `json:"sinkhornIterations"`
			Error              string `json:"error"`
		} `json:"deltas"`
	}
	if err := json.Unmarshal(raw, &out); err != nil {
		return nil, err
	}
	if out.Baseline == nil {
		return nil, fmt.Errorf("whatif response carried no baseline")
	}
	wr := &whatifReport{
		Shape:              fmt.Sprintf("%dx%d", tasks, machines),
		BaselineIterations: out.Baseline.SinkhornIterations,
	}
	sum := 0
	for _, d := range out.Deltas {
		if d.Error != "" || d.SinkhornIterations <= 0 {
			continue
		}
		wr.Deltas++
		sum += d.SinkhornIterations
		if d.SinkhornIterations > wr.MaxDeltaIterations {
			wr.MaxDeltaIterations = d.SinkhornIterations
		}
	}
	if wr.Deltas > 0 {
		wr.MeanDeltaIterations = float64(sum) / float64(wr.Deltas)
		if wr.MeanDeltaIterations > 0 {
			wr.WarmSpeedup = float64(wr.BaselineIterations) / wr.MeanDeltaIterations
		}
	}
	return wr, nil
}

// scrapeCounters pulls every integer-valued metric off /metrics into a map,
// so phases can be bracketed by counter deltas.
func scrapeCounters(client *http.Client, base string) (map[string]uint64, error) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	out := make(map[string]uint64)
	for _, line := range strings.Split(string(body), "\n") {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		if v, err := strconv.ParseUint(fields[1], 10, 64); err == nil {
			out[fields[0]] = v
		}
	}
	return out, nil
}

// waitHealthy polls /healthz until the server answers or the budget runs out.
func waitHealthy(client *http.Client, base string, budget time.Duration) error {
	deadline := time.Now().Add(budget)
	for {
		resp, err := client.Get(base + "/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err != nil {
				return fmt.Errorf("server at %s not healthy within %s: %v", base, budget, err)
			}
			return fmt.Errorf("server at %s not healthy within %s", base, budget)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// runPhase sends every body once over conc workers and aggregates latencies.
func runPhase(client *http.Client, base, name string, bodies [][]byte, conc int, contentType string) (phaseReport, error) {
	var (
		next      atomic.Int64
		errs      atomic.Int64
		shed      atomic.Int64
		mu        sync.Mutex
		latencies []time.Duration
		wg        sync.WaitGroup
	)
	start := time.Now()
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]time.Duration, 0, len(bodies)/conc+1)
			for {
				i := int(next.Add(1) - 1)
				if i >= len(bodies) {
					break
				}
				t0 := time.Now()
				resp, err := client.Post(base+"/v1/characterize", contentType, bytes.NewReader(bodies[i]))
				if err != nil {
					errs.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch {
				case resp.StatusCode == http.StatusTooManyRequests:
					shed.Add(1)
				case resp.StatusCode != http.StatusOK:
					errs.Add(1)
				default:
					local = append(local, time.Since(t0))
				}
			}
			mu.Lock()
			latencies = append(latencies, local...)
			mu.Unlock()
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if len(latencies) == 0 {
		return phaseReport{}, fmt.Errorf("no successful requests (%d errors, %d shed)", errs.Load(), shed.Load())
	}
	pr := phaseReport{
		Name:      name,
		Requests:  len(bodies),
		Errors:    int(errs.Load()),
		Status429: int(shed.Load()),
	}
	summarizeLatencies(&pr, latencies, elapsed)
	return pr, nil
}

// summarizeLatencies fills a phase report's throughput and quantile fields
// from the raw per-request latencies.
func summarizeLatencies(pr *phaseReport, latencies []time.Duration, elapsed time.Duration) {
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	sum := time.Duration(0)
	for _, d := range latencies {
		sum += d
	}
	q := func(p float64) float64 {
		idx := int(p * float64(len(latencies)-1))
		return float64(latencies[idx].Microseconds()) / 1000
	}
	pr.ThroughputRPS = float64(len(latencies)) / elapsed.Seconds()
	pr.MeanMs = float64(sum.Microseconds()) / 1000 / float64(len(latencies))
	pr.P50Ms = q(0.50)
	pr.P90Ms = q(0.90)
	pr.P99Ms = q(0.99)
}

// runSurge fires burst concurrent unique requests at once and reports how
// many the server shed with 429 — the admission queue doing its job. The
// count is load-bearing only as "the queue can say no": on a single CPU the
// client, the decoder and the compute slot all contend for the same core, so
// whether a given burst actually outruns the queue depends on allocator
// warmup and scheduling accidents, and a fully warmed server can absorb the
// whole burst serially. The per-run rejected counter in surge_metrics is the
// authoritative server-side number.
func runSurge(client *http.Client, base string, burst, tasks, machines int, seed int64) int {
	bodies, err := makeBodies(burst, tasks, machines, seed+1_000_000)
	if err != nil {
		return 0
	}
	var shed atomic.Int64
	var wg sync.WaitGroup
	for i := range bodies {
		wg.Add(1)
		go func(b []byte) {
			defer wg.Done()
			resp, err := client.Post(base+"/v1/characterize", "application/json", bytes.NewReader(b))
			if err != nil {
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusTooManyRequests {
				shed.Add(1)
			}
		}(bodies[i])
	}
	wg.Wait()
	return int(shed.Load())
}

// tracedRequest sends one ?trace=1 characterize request and returns the
// server-reported stage breakdown from the response's timings field.
func tracedRequest(client *http.Client, base string, body []byte, contentType string) (*stageBreakdown, error) {
	resp, err := client.Post(base+"/v1/characterize?trace=1", contentType, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d: %.200s", resp.StatusCode, raw)
	}
	var out struct {
		Timings *server.TimingsDTO `json:"timings"`
	}
	if err := json.Unmarshal(raw, &out); err != nil {
		return nil, err
	}
	if out.Timings == nil {
		return nil, fmt.Errorf("traced response carried no timings field")
	}
	sb := &stageBreakdown{
		RequestID: out.Timings.RequestID,
		TotalMs:   out.Timings.TotalMs,
		Stages:    make([]stageEntry, len(out.Timings.Stages)),
	}
	for i, st := range out.Timings.Stages {
		sb.Stages[i] = stageEntry{Stage: st.Stage, Ms: st.Ms}
	}
	return sb, nil
}

// scrapeCache pulls the cache counters out of /metrics.
func scrapeCache(client *http.Client, base string) (*cacheReport, error) {
	counters, err := scrapeCounters(client, base)
	if err != nil {
		return nil, err
	}
	c := cacheReport{
		Hits:   counters["hcserved_cache_hits_total"],
		Misses: counters["hcserved_cache_misses_total"],
	}
	if total := c.Hits + c.Misses; total > 0 {
		c.HitRate = float64(c.Hits) / float64(total)
	}
	return &c, nil
}
