// Command hcload is the load generator for hcserved: it hammers a running
// server with characterization requests and emits a machine-readable
// BENCH_serve.json report, extending the kernel bench-diff story (see
// cmd/hcbench) to the serving tier.
//
// Usage:
//
//	hcload [-url http://localhost:8080] [-c 8] [-n 500]
//	       [-tasks 30] [-machines 16] [-seed 1] [-surge 0] [-out -]
//
// The run has two measured phases over the same body set:
//
//	cold — n distinct environments, every request runs the full
//	       Sinkhorn+SVD pipeline;
//	warm — the identical n bodies again, served from the content-addressed
//	       result cache.
//
// The report carries per-phase latency quantiles and throughput, the
// server's cache hit rate scraped from /metrics, and the cold/warm p50
// ratio — the direct measurement of what the cache buys. With -surge K an
// extra unmeasured burst of K concurrent unique requests probes overload
// behavior; the report records how many were shed with 429.
//
// After the measured phases, two ?trace=1 probe requests — one fresh body
// (cold) and its immediate repeat (warm) — record the server's own stage
// breakdown (decode, cache_lookup, queue_wait, compute, and the nested
// pipeline spans) as trace_cold / trace_warm, showing where each kind of
// request spends its time inside the server rather than on the wire.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/gen"
	"repro/internal/server"
)

type phaseReport struct {
	Name          string  `json:"name"`
	Requests      int     `json:"requests"`
	Errors        int     `json:"errors"`
	Status429     int     `json:"status_429"`
	ThroughputRPS float64 `json:"throughput_rps"`
	MeanMs        float64 `json:"mean_ms"`
	P50Ms         float64 `json:"p50_ms"`
	P90Ms         float64 `json:"p90_ms"`
	P99Ms         float64 `json:"p99_ms"`
}

type cacheReport struct {
	Hits    uint64  `json:"hits"`
	Misses  uint64  `json:"misses"`
	HitRate float64 `json:"hit_rate"`
}

type report struct {
	URL              string        `json:"url"`
	Concurrency      int           `json:"concurrency"`
	RequestsPerPhase int           `json:"requests_per_phase"`
	Shape            string        `json:"shape"`
	GoVersion        string        `json:"go_version"`
	GoMaxProcs       int           `json:"gomaxprocs"`
	Phases           []phaseReport `json:"phases"`
	Cache            *cacheReport  `json:"cache,omitempty"`
	// ColdWarmP50Ratio is cold-phase p50 over warm-phase p50: how much
	// latency the result cache removes for a repeated environment.
	ColdWarmP50Ratio float64 `json:"cold_warm_p50_ratio"`
	// Surge429 counts requests shed with 429 during the optional -surge
	// burst (absent when -surge 0).
	Surge429 *int `json:"surge_429,omitempty"`
	// TraceCold and TraceWarm are the server-side stage breakdowns of one
	// traced probe request: a fresh body paying the full pipeline, then the
	// same body answered from the result cache. They come from the API's
	// ?trace=1 timings echo, so they measure time inside the server only.
	TraceCold *stageBreakdown `json:"trace_cold,omitempty"`
	TraceWarm *stageBreakdown `json:"trace_warm,omitempty"`
}

// stageBreakdown is one traced request's timings as recorded in the report:
// the wall time inside the server and each stage's share of it.
type stageBreakdown struct {
	RequestID string       `json:"request_id"`
	TotalMs   float64      `json:"total_ms"`
	Stages    []stageEntry `json:"stages"`
}

type stageEntry struct {
	Stage string  `json:"stage"`
	Ms    float64 `json:"ms"`
}

func main() {
	url := flag.String("url", "http://localhost:8080", "base URL of a running hcserved")
	conc := flag.Int("c", 8, "concurrent in-flight requests")
	n := flag.Int("n", 500, "requests per phase")
	tasks := flag.Int("tasks", 30, "task types per generated environment")
	machines := flag.Int("machines", 16, "machines per generated environment")
	seed := flag.Int64("seed", 1, "base seed for the generated bodies")
	surge := flag.Int("surge", 0, "extra concurrent burst size probing 429 shedding (0 = off)")
	out := flag.String("out", "-", "report path (\"-\" for stdout)")
	flag.Parse()

	bodies, err := makeBodies(*n, *tasks, *machines, *seed)
	if err != nil {
		fatal("generating bodies: %v", err)
	}
	base := strings.TrimSuffix(*url, "/")
	// A deep idle pool: the surge fires hundreds of requests at once, and the
	// default transport keeps only two idle connections per host, so every
	// burst would otherwise pay a serialized dial storm that masks the
	// server's admission behavior.
	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.MaxIdleConns = 512
	tr.MaxIdleConnsPerHost = 512
	client := &http.Client{Timeout: 60 * time.Second, Transport: tr}
	if err := waitHealthy(client, base, 5*time.Second); err != nil {
		fatal("%v", err)
	}

	rep := report{
		URL:              base,
		Concurrency:      *conc,
		RequestsPerPhase: *n,
		Shape:            fmt.Sprintf("%dx%d", *tasks, *machines),
		GoVersion:        runtime.Version(),
		GoMaxProcs:       runtime.GOMAXPROCS(0),
	}
	for _, phase := range []string{"cold", "warm"} {
		pr, err := runPhase(client, base, phase, bodies, *conc)
		if err != nil {
			fatal("phase %s: %v", phase, err)
		}
		rep.Phases = append(rep.Phases, pr)
	}
	if rep.Phases[1].P50Ms > 0 {
		rep.ColdWarmP50Ratio = rep.Phases[0].P50Ms / rep.Phases[1].P50Ms
	}
	if *surge > 0 {
		// Several rounds with fresh (uncacheable) bodies: a single burst can
		// slip through on scheduler timing, especially on one CPU where
		// arrivals serialize behind the compute slot.
		shed := 0
		for round := 0; round < 3; round++ {
			shed += runSurge(client, base, *surge, *tasks, *machines,
				*seed+int64(round)*10_000_000)
		}
		rep.Surge429 = &shed
	}
	if c, err := scrapeCache(client, base); err == nil {
		rep.Cache = c
	} else {
		fmt.Fprintf(os.Stderr, "hcload: scraping /metrics: %v\n", err)
	}

	// Stage-breakdown probes: a body no phase has sent (fresh seed offset)
	// traced cold, then the identical body again for the cached path. Probe
	// failures degrade the report rather than fail the run.
	probe, err := makeBodies(1, *tasks, *machines, *seed+2_000_000)
	if err == nil {
		for _, p := range []struct {
			name string
			dst  **stageBreakdown
		}{{"cold", &rep.TraceCold}, {"warm", &rep.TraceWarm}} {
			sb, err := tracedRequest(client, base, probe[0])
			if err != nil {
				fmt.Fprintf(os.Stderr, "hcload: trace_%s probe: %v\n", p.name, err)
				break
			}
			*p.dst = sb
		}
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal("%v", err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal("writing report: %v", err)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "hcload: "+format+"\n", args...)
	os.Exit(1)
}

// makeBodies pre-renders n distinct characterize request bodies so the
// measured loop spends nothing on generation or encoding.
func makeBodies(n, tasks, machines int, seed int64) ([][]byte, error) {
	bodies := make([][]byte, n)
	for i := 0; i < n; i++ {
		rng := rand.New(rand.NewSource(seed + int64(i)))
		env, err := gen.RangeBased(tasks, machines, 100, 10, rng)
		if err != nil {
			return nil, err
		}
		b, err := json.Marshal(server.EnvToDTO(env))
		if err != nil {
			return nil, err
		}
		bodies[i] = b
	}
	return bodies, nil
}

// waitHealthy polls /healthz until the server answers or the budget runs out.
func waitHealthy(client *http.Client, base string, budget time.Duration) error {
	deadline := time.Now().Add(budget)
	for {
		resp, err := client.Get(base + "/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err != nil {
				return fmt.Errorf("server at %s not healthy within %s: %v", base, budget, err)
			}
			return fmt.Errorf("server at %s not healthy within %s", base, budget)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// runPhase sends every body once over conc workers and aggregates latencies.
func runPhase(client *http.Client, base, name string, bodies [][]byte, conc int) (phaseReport, error) {
	var (
		next      atomic.Int64
		errs      atomic.Int64
		shed      atomic.Int64
		mu        sync.Mutex
		latencies []time.Duration
		wg        sync.WaitGroup
	)
	start := time.Now()
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]time.Duration, 0, len(bodies)/conc+1)
			for {
				i := int(next.Add(1) - 1)
				if i >= len(bodies) {
					break
				}
				t0 := time.Now()
				resp, err := client.Post(base+"/v1/characterize", "application/json", bytes.NewReader(bodies[i]))
				if err != nil {
					errs.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch {
				case resp.StatusCode == http.StatusTooManyRequests:
					shed.Add(1)
				case resp.StatusCode != http.StatusOK:
					errs.Add(1)
				default:
					local = append(local, time.Since(t0))
				}
			}
			mu.Lock()
			latencies = append(latencies, local...)
			mu.Unlock()
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if len(latencies) == 0 {
		return phaseReport{}, fmt.Errorf("no successful requests (%d errors, %d shed)", errs.Load(), shed.Load())
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	sum := time.Duration(0)
	for _, d := range latencies {
		sum += d
	}
	q := func(p float64) float64 {
		idx := int(p * float64(len(latencies)-1))
		return float64(latencies[idx].Microseconds()) / 1000
	}
	return phaseReport{
		Name:          name,
		Requests:      len(bodies),
		Errors:        int(errs.Load()),
		Status429:     int(shed.Load()),
		ThroughputRPS: float64(len(latencies)) / elapsed.Seconds(),
		MeanMs:        float64(sum.Microseconds()) / 1000 / float64(len(latencies)),
		P50Ms:         q(0.50),
		P90Ms:         q(0.90),
		P99Ms:         q(0.99),
	}, nil
}

// runSurge fires burst concurrent unique requests at once and reports how
// many the server shed with 429 — the admission queue doing its job.
func runSurge(client *http.Client, base string, burst, tasks, machines int, seed int64) int {
	bodies, err := makeBodies(burst, tasks, machines, seed+1_000_000)
	if err != nil {
		return 0
	}
	var shed atomic.Int64
	var wg sync.WaitGroup
	for i := range bodies {
		wg.Add(1)
		go func(b []byte) {
			defer wg.Done()
			resp, err := client.Post(base+"/v1/characterize", "application/json", bytes.NewReader(b))
			if err != nil {
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusTooManyRequests {
				shed.Add(1)
			}
		}(bodies[i])
	}
	wg.Wait()
	return int(shed.Load())
}

// tracedRequest sends one ?trace=1 characterize request and returns the
// server-reported stage breakdown from the response's timings field.
func tracedRequest(client *http.Client, base string, body []byte) (*stageBreakdown, error) {
	resp, err := client.Post(base+"/v1/characterize?trace=1", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d: %.200s", resp.StatusCode, raw)
	}
	var out struct {
		Timings *server.TimingsDTO `json:"timings"`
	}
	if err := json.Unmarshal(raw, &out); err != nil {
		return nil, err
	}
	if out.Timings == nil {
		return nil, fmt.Errorf("traced response carried no timings field")
	}
	sb := &stageBreakdown{
		RequestID: out.Timings.RequestID,
		TotalMs:   out.Timings.TotalMs,
		Stages:    make([]stageEntry, len(out.Timings.Stages)),
	}
	for i, st := range out.Timings.Stages {
		sb.Stages[i] = stageEntry{Stage: st.Stage, Ms: st.Ms}
	}
	return sb, nil
}

// scrapeCache pulls the cache counters out of /metrics.
func scrapeCache(client *http.Client, base string) (*cacheReport, error) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	var c cacheReport
	for _, line := range strings.Split(string(body), "\n") {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		v, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			continue
		}
		switch fields[0] {
		case "hcserved_cache_hits_total":
			c.Hits = v
		case "hcserved_cache_misses_total":
			c.Misses = v
		}
	}
	if total := c.Hits + c.Misses; total > 0 {
		c.HitRate = float64(c.Hits) / float64(total)
	}
	return &c, nil
}
