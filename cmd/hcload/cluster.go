package main

// The -cluster suite: the same pre-rendered bodies round-robined across a
// set of hcserved nodes, so most requests land on a non-owner and exercise
// the consistent-hash forward path (see internal/cluster and DESIGN.md §15).
// Three measured phases:
//
//	cluster_cold — n distinct environments; owners compute, requesters
//	               forward and back-fill their shard caches;
//	cluster_warm — the identical bodies on a shifted rotation: forwards
//	               now land on warm owners, so the phase is dominated by
//	               peer cache fills and local hits;
//	cluster_kill — the bodies once more; with -kill-pid, one node is
//	               SIGTERMed a fifth of the way in and the client retries
//	               failed requests on the survivors. The phase asserts the
//	               recovery story: zero lost responses even though an owner
//	               vanished mid-run.
//
// The suite closes with the serving invariant, checked per node from
// /metrics deltas: every 200 the characterize endpoint returned is accounted
// for by exactly one of cache hit, unique miss, coalesced wait, or peer
// forward. A node that double-counts (or drops) accounting breaks the
// invariant even when every response looked fine from the client.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/etcmat"
	"repro/internal/gen"
	"repro/internal/server"
)

type clusterConfig struct {
	nodes    []string
	conc     int
	n        int
	tasks    int
	machines int
	seed     int64
	killPid  int
	killNode int
	// replicas/vnodes mirror the servers' ring parameters so the client can
	// rebuild ownership (vnode placement is purely name-derived).
	replicas int
	vnodes   int
	// churnNode/churnPid identify a standalone cluster-mode node the suite
	// joins into the ring and later SIGTERMs, for the churn phases.
	churnNode string
	churnPid  int
}

// nodeInvariant is one node's serving-accounting check across the whole
// suite: Served is the requests_total{characterize,200} delta, Accounted the
// sum of the cache-hit, unique-miss, coalesced and forwarded deltas.
type nodeInvariant struct {
	Node      string `json:"node"`
	Served    uint64 `json:"served"`
	Accounted uint64 `json:"accounted"`
	OK        bool   `json:"ok"`
}

// clusterReport is the cluster section of BENCH_serve.json. benchdiff gates
// on Lost and InvariantOK; the rest is context.
type clusterReport struct {
	Nodes      []string `json:"nodes"`
	KilledNode string   `json:"killed_node,omitempty"`
	// Lost counts requests that got no 200 from any node despite retrying
	// the full rotation — the kill-a-node phase must keep this at zero.
	Lost int `json:"lost"`
	// Retried counts attempts that failed (connection error or 429) and
	// were re-sent to another node.
	Retried int `json:"retried"`
	// Cluster counter totals across surviving nodes, whole-suite deltas.
	Forwarded     uint64 `json:"forwarded"`
	PeerFills     uint64 `json:"peer_fills"`
	ForwardErrors uint64 `json:"forward_errors"`
	Hedges        uint64 `json:"hedges"`
	HedgeWins     uint64 `json:"hedge_wins"`
	// InvariantOK is the conjunction of every surviving node's accounting
	// check in NodeInvariants.
	InvariantOK    bool            `json:"invariant_ok"`
	NodeInvariants []nodeInvariant `json:"node_invariants"`
}

// replicaReport compares strict primary targeting against the p2c replica
// read policy on the same warm bodies, each request sent to a non-owner so it
// must forward. benchdiff gates p2c_p99_ms against single_p99_ms.
type replicaReport struct {
	Requests int `json:"requests"`
	// HotNode is the node the antagonist load saturated during both measured
	// phases; every measured key has it as ring-order primary.
	HotNode     string  `json:"hot_node"`
	SingleP50Ms float64 `json:"single_p50_ms"`
	SingleP99Ms float64 `json:"single_p99_ms"`
	P2CP50Ms    float64 `json:"p2c_p50_ms"`
	P2CP99Ms    float64 `json:"p2c_p99_ms"`
	// ReplicaReads is the cluster-wide hcserved_replica_reads_total delta
	// across the p2c phase: forwards answered by a non-primary owner.
	ReplicaReads uint64 `json:"replica_reads"`
	// OK records p2c_p99 <= single_p99 as measured in this run.
	OK bool `json:"ok"`
}

// churnReport is the join/leave scorecard benchdiff gates on: the losers'
// handoff_sent must reconcile exactly against the joiner's handoff_received,
// the first requests for moved keys must hit the joiner's cache warm, and
// draining the joiner must lose nothing.
type churnReport struct {
	Node            string  `json:"node"`
	MovedKeys       int     `json:"moved_keys"`
	WarmHits        uint64  `json:"warm_hits"`
	WarmHitRate     float64 `json:"warm_hit_rate"`
	HandoffSent     uint64  `json:"handoff_sent"`
	HandoffReceived uint64  `json:"handoff_received"`
	Reconciled      bool    `json:"reconciled"`
	Lost            int     `json:"lost"`
	Retried         int     `json:"retried"`
	OK              bool    `json:"ok"`
}

const servedKey = `hcserved_requests_total{endpoint="characterize",code="200"}`

// rotation is the shared view of which nodes still take traffic. Nodes are
// only marked down on observed connection errors — the client discovers the
// kill the same way a real caller would.
type rotation struct {
	nodes []string
	down  []atomic.Bool
}

func newRotation(nodes []string) *rotation {
	return &rotation{nodes: nodes, down: make([]atomic.Bool, len(nodes))}
}

// pick returns the attempt-th candidate node for request i: the round-robin
// choice first, then the next live node clockwise. With every node down it
// returns the raw rotation choice so the caller still surfaces an error.
func (r *rotation) pick(i, attempt int) (string, int) {
	n := len(r.nodes)
	for k := 0; k < n; k++ {
		idx := (i + attempt + k) % n
		if !r.down[idx].Load() {
			return r.nodes[idx], idx
		}
	}
	idx := (i + attempt) % n
	return r.nodes[idx], idx
}

func (r *rotation) markDown(idx int) { r.down[idx].Store(true) }

func (r *rotation) alive() []string {
	var out []string
	for i, n := range r.nodes {
		if !r.down[i].Load() {
			out = append(out, n)
		}
	}
	return out
}

// killTrigger SIGTERMs a node's process once a phase has issued enough
// requests to have traffic in flight on every node.
type killTrigger struct {
	pid   int
	at    int
	fired atomic.Bool
}

func (k *killTrigger) maybeFire(i int) bool {
	if k == nil || i < k.at || !k.fired.CompareAndSwap(false, true) {
		return false
	}
	if err := syscall.Kill(k.pid, syscall.SIGTERM); err != nil {
		fmt.Fprintf(os.Stderr, "hcload: kill -TERM %d: %v\n", k.pid, err)
	}
	return true
}

// runClusterSuite fills rep.Phases with the three cluster phases and
// rep.Cluster with the suite scorecard.
func runClusterSuite(client *http.Client, rep *report, cfg clusterConfig) {
	for _, node := range cfg.nodes {
		if err := waitHealthy(client, node, 10*time.Second); err != nil {
			fatal("%v", err)
		}
	}
	rep.URL = strings.Join(cfg.nodes, ",")
	bodies, keys, err := makeBodiesKeys(cfg.n, cfg.tasks, cfg.machines, cfg.seed+7_000_000)
	if err != nil {
		fatal("generating cluster bodies: %v", err)
	}

	rot := newRotation(cfg.nodes)
	beforeAll := scrapeAllNodes(client, cfg.nodes)
	cr := &clusterReport{Nodes: cfg.nodes}

	// Each phase rotates the body->node mapping by one, so a body warmed on
	// node k is asked of node k+1 next time: the warm and kill phases land
	// on non-owners by construction and must forward (or hedge) to answer.
	runOne := func(name string, offset int, kill *killTrigger) {
		before := scrapeAllNodes(client, cfg.nodes)
		pr, lost, retried := runClusterPhase(client, rot, name, offset, bodies, cfg.conc, kill)
		cr.Lost += lost
		cr.Retried += retried
		settle()
		after := scrapeAllNodes(client, cfg.nodes)
		pr.Metrics = deltaAcrossNodes(before, after)
		rep.Phases = append(rep.Phases, pr)
	}
	runOne("cluster_cold", 0, nil)
	runOne("cluster_warm", 1, nil)
	if len(rep.Phases) >= 2 && rep.Phases[1].P50Ms > 0 {
		rep.ColdWarmP50Ratio = rep.Phases[0].P50Ms / rep.Phases[1].P50Ms
	}

	// Replica-read comparison and churn both need the whole cluster intact,
	// so they run before the kill phase.
	rep.Replica = runReplicaPhases(client, rep, cfg)
	if cfg.churnNode != "" {
		rep.Churn = runChurnPhases(client, rep, cfg, rot, bodies, keys)
	}

	var kill *killTrigger
	if cfg.killPid != 0 {
		kill = &killTrigger{pid: cfg.killPid, at: len(bodies) / 5}
		cr.KilledNode = cfg.nodes[cfg.killNode]
	}
	runOne("cluster_kill", 2, kill)

	afterAll := scrapeAllNodes(client, cfg.nodes)
	cr.InvariantOK = true
	for _, node := range cfg.nodes {
		b, okB := beforeAll[node]
		a, okA := afterAll[node]
		if !okB || !okA {
			continue // killed or unreachable: nothing to check
		}
		inv := nodeInvariant{
			Node:   node,
			Served: a[servedKey] - b[servedKey],
			Accounted: (a["hcserved_cache_hits_total"] - b["hcserved_cache_hits_total"]) +
				(a["hcserved_cache_misses_total"] - b["hcserved_cache_misses_total"]) +
				(a["hcserved_coalesced_total"] - b["hcserved_coalesced_total"]) +
				(a["hcserved_forwarded_total"] - b["hcserved_forwarded_total"]),
		}
		inv.OK = inv.Served == inv.Accounted
		if !inv.OK {
			cr.InvariantOK = false
		}
		cr.NodeInvariants = append(cr.NodeInvariants, inv)
		cr.Forwarded += a["hcserved_forwarded_total"] - b["hcserved_forwarded_total"]
		cr.PeerFills += a["hcserved_peer_fills_total"] - b["hcserved_peer_fills_total"]
		cr.ForwardErrors += a["hcserved_forward_errors_total"] - b["hcserved_forward_errors_total"]
		cr.Hedges += a["hcserved_hedged_total"] - b["hcserved_hedged_total"]
		cr.HedgeWins += a["hcserved_hedge_wins_total"] - b["hcserved_hedge_wins_total"]
	}
	rep.Cluster = cr
}

// runClusterPhase sends every body once, round-robined across the rotation,
// retrying connection errors and 429s on the next node. It returns the phase
// latencies plus how many requests were lost outright and how many attempts
// had to be retried.
func runClusterPhase(client *http.Client, rot *rotation, name string, offset int, bodies [][]byte, conc int, kill *killTrigger) (phaseReport, int, int) {
	var (
		next      atomic.Int64
		lost      atomic.Int64
		retried   atomic.Int64
		shed      atomic.Int64
		errs      atomic.Int64
		mu        sync.Mutex
		latencies []time.Duration
		wg        sync.WaitGroup
	)
	// Enough attempts to walk the whole rotation twice: a 429 on every node
	// of a briefly saturated cluster should still find a slot on the second
	// lap rather than count as lost.
	attempts := 2 * len(rot.nodes)
	start := time.Now()
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]time.Duration, 0, len(bodies)/conc+1)
			for {
				i := int(next.Add(1) - 1)
				if i >= len(bodies) {
					break
				}
				if kill.maybeFire(i) {
					fmt.Fprintf(os.Stderr, "hcload: phase %s: sent SIGTERM to pid %d at request %d\n", name, kill.pid, i)
				}
				ok := false
				for a := 0; a < attempts && !ok; a++ {
					node, idx := rot.pick(i+offset, a)
					t0 := time.Now()
					resp, err := client.Post(node+"/v1/characterize", "application/json", bytes.NewReader(bodies[i]))
					if err != nil {
						// Connection-level failure: the node is draining or
						// gone. Take it out of the rotation and move on.
						rot.markDown(idx)
						retried.Add(1)
						continue
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					switch {
					case resp.StatusCode == http.StatusOK:
						local = append(local, time.Since(t0))
						ok = true
					case resp.StatusCode == http.StatusTooManyRequests:
						// This node's admission queue is full; another node
						// may have capacity right now.
						shed.Add(1)
						retried.Add(1)
						time.Sleep(5 * time.Millisecond)
					default:
						// Semantic failure (4xx/5xx with a served response):
						// retrying the same body elsewhere cannot help.
						errs.Add(1)
						a = attempts
					}
				}
				if !ok {
					lost.Add(1)
				}
			}
			mu.Lock()
			latencies = append(latencies, local...)
			mu.Unlock()
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	pr := phaseReport{
		Name:      name,
		Requests:  len(bodies),
		Errors:    int(errs.Load()),
		Status429: int(shed.Load()),
	}
	if len(latencies) == 0 {
		return pr, int(lost.Load()), int(retried.Load())
	}
	summarizeLatencies(&pr, latencies, elapsed)
	return pr, int(lost.Load()), int(retried.Load())
}

// makeBodiesKeys pre-renders n distinct characterize bodies along with their
// content keys, so cluster phases can rebuild ring ownership client-side and
// steer bodies at owners or non-owners deliberately.
func makeBodiesKeys(n, tasks, machines int, seed int64) ([][]byte, []etcmat.ContentKey, error) {
	bodies := make([][]byte, n)
	keys := make([]etcmat.ContentKey, n)
	for i := 0; i < n; i++ {
		rng := rand.New(rand.NewSource(seed + int64(i)))
		env, err := gen.RangeBased(tasks, machines, 100, 10, rng)
		if err != nil {
			return nil, nil, err
		}
		b, err := json.Marshal(server.EnvToDTO(env))
		if err != nil {
			return nil, nil, err
		}
		bodies[i] = b
		keys[i] = env.ContentKey()
	}
	return bodies, keys, nil
}

// nodeAddr strips the URL scheme off a node base URL, yielding the host:port
// the node advertises on the ring.
func nodeAddr(url string) string {
	return strings.TrimPrefix(strings.TrimPrefix(url, "https://"), "http://")
}

// ringOfNodes rebuilds the cluster's ring client-side — vnode placement is
// purely name-derived, so the node list fully determines ownership.
func ringOfNodes(nodes []string, extra string, replicas, vnodes int) *cluster.Ring {
	r := cluster.NewRing(replicas, vnodes)
	for _, n := range nodes {
		r.Add(nodeAddr(n))
	}
	if extra != "" {
		r.Add(extra)
	}
	return r
}

func containsStr(s []string, v string) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// targetedRequest is one body pinned to one node, for phases that steer
// traffic by ownership instead of round-robining.
type targetedRequest struct {
	node string
	body []byte
}

// runTargetedPhase sends each request to its pinned node over conc workers.
// No retries: these phases run against a healthy cluster, so any failure is a
// real error, not churn to ride out.
func runTargetedPhase(client *http.Client, name string, reqs []targetedRequest, conc int, header map[string]string) phaseReport {
	var (
		next      atomic.Int64
		errs      atomic.Int64
		mu        sync.Mutex
		latencies []time.Duration
		wg        sync.WaitGroup
	)
	start := time.Now()
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]time.Duration, 0, len(reqs)/conc+1)
			for {
				i := int(next.Add(1) - 1)
				if i >= len(reqs) {
					break
				}
				req, err := http.NewRequest(http.MethodPost, reqs[i].node+"/v1/characterize", bytes.NewReader(reqs[i].body))
				if err != nil {
					errs.Add(1)
					continue
				}
				req.Header.Set("Content-Type", "application/json")
				for k, v := range header {
					req.Header.Set(k, v)
				}
				t0 := time.Now()
				resp, err := client.Do(req)
				if err != nil {
					errs.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs.Add(1)
					continue
				}
				local = append(local, time.Since(t0))
			}
			mu.Lock()
			latencies = append(latencies, local...)
			mu.Unlock()
		}()
	}
	wg.Wait()
	pr := phaseReport{Name: name, Requests: len(reqs), Errors: int(errs.Load())}
	if len(latencies) > 0 {
		summarizeLatencies(&pr, latencies, time.Since(start))
	}
	return pr
}

// runReplicaPhases measures the replica-read policy under a hot primary —
// the regime the p2c spread exists for. Node 0 is designated hot: an
// antagonist floods it with distinct cold compute for the duration of each
// measured phase, and the measured keys are exactly those whose ring-order
// primary is the hot node. Two statistically identical fresh body sets are
// each pre-warmed on every owner (unmeasured direct posts), then sent to a
// NON-owner so every measured request must forward. The single phase pins
// forwards to strict ring order with the X-HC-Route: primary hint — every
// request queues behind the antagonist; the p2c phase uses the default
// p99-aware power-of-two-choices, which routes around the inflated replica.
// Distinct body sets keep the comparison honest: a forward back-fills the
// requester's cache, so reusing one set would turn the second phase into
// local hits.
func runReplicaPhases(client *http.Client, rep *report, cfg clusterConfig) *replicaReport {
	ring := ringOfNodes(cfg.nodes, "", cfg.replicas, cfg.vnodes)
	hot := cfg.nodes[0]
	hotAddr := nodeAddr(hot)
	urlByAddr := make(map[string]string, len(cfg.nodes))
	for _, n := range cfg.nodes {
		urlByAddr[nodeAddr(n)] = n
	}
	prepare := func(seed int64) ([]targetedRequest, error) {
		// Oversample: only ~1/len(nodes) of random keys land their primary on
		// the hot node, and the phases want cfg.n measured requests each.
		bodies, keys, err := makeBodiesKeys(len(cfg.nodes)*cfg.n, cfg.tasks, cfg.machines, seed)
		if err != nil {
			return nil, err
		}
		var warm, measured []targetedRequest
		for i, k := range keys {
			owners := ring.Owners(k)
			if len(measured) >= cfg.n || owners[0] != hotAddr {
				continue
			}
			picked := false
			for _, n := range cfg.nodes {
				if !containsStr(owners, nodeAddr(n)) {
					measured = append(measured, targetedRequest{node: n, body: bodies[i]})
					picked = true
					break
				}
			}
			if !picked {
				continue // every node owns the key: nothing forwards
			}
			for _, o := range owners {
				if u, ok := urlByAddr[o]; ok {
					warm = append(warm, targetedRequest{node: u, body: bodies[i]})
				}
			}
		}
		// Warm every replica so the measured forwards compare cache-hit serving
		// on either owner, not a first-touch compute on one of them.
		runTargetedPhase(client, "replica_warmup", warm, cfg.conc, nil)
		return measured, nil
	}
	single, err := prepare(cfg.seed + 8_000_000)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hcload: replica bodies: %v\n", err)
		return nil
	}
	p2c, err := prepare(cfg.seed + 9_000_000)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hcload: replica bodies: %v\n", err)
		return nil
	}
	if len(single) == 0 || len(p2c) == 0 {
		fmt.Fprintf(os.Stderr, "hcload: replica phases skipped: every node owns every key (R >= node count)\n")
		return nil
	}
	settle()

	bs := scrapeAllNodes(client, cfg.nodes)
	stopHot := startAntagonist(client, hot, cfg.tasks, cfg.machines, antagonistConc, cfg.seed+12_000_000)
	singlePR := runTargetedPhase(client, "replica_single", single, cfg.conc,
		map[string]string{cluster.RouteHintHeader: cluster.RoutePrimary})
	stopHot()
	settle()
	mid := scrapeAllNodes(client, cfg.nodes)
	singlePR.Metrics = deltaAcrossNodes(bs, mid)
	stopHot = startAntagonist(client, hot, cfg.tasks, cfg.machines, antagonistConc, cfg.seed+13_000_000)
	p2cPR := runTargetedPhase(client, "replica_p2c", p2c, cfg.conc, nil)
	stopHot()
	settle()
	after := scrapeAllNodes(client, cfg.nodes)
	p2cPR.Metrics = deltaAcrossNodes(mid, after)
	rep.Phases = append(rep.Phases, singlePR, p2cPR)

	rr := &replicaReport{
		Requests:     len(p2c),
		HotNode:      hotAddr,
		SingleP50Ms:  singlePR.P50Ms,
		SingleP99Ms:  singlePR.P99Ms,
		P2CP50Ms:     p2cPR.P50Ms,
		P2CP99Ms:     p2cPR.P99Ms,
		ReplicaReads: sumCounterDelta(mid, after, "hcserved_replica_reads_total"),
	}
	rr.OK = rr.P2CP99Ms > 0 && rr.P2CP99Ms <= rr.SingleP99Ms
	return rr
}

// antagonistConc is the hot-node flood concurrency. It is deliberately below
// hcserved's default admission queue depth: the point is a persistently
// non-empty compute queue (tens of ms of head-of-line delay for anything
// routed there), not a 429 storm — repeated shed forwards would mark the hot
// peer suspect and both routing policies would skip it equally.
const antagonistConc = 4

// startAntagonist floods nodeURL with distinct cold characterize bodies from
// conc workers until the returned stop function is called. Every body is a
// fresh seed, so each request is a genuine cache-miss compute that occupies
// the node's workers and queue.
func startAntagonist(client *http.Client, nodeURL string, tasks, machines, conc int, seed int64) (stop func()) {
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	var next atomic.Int64
	next.Store(seed)
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				bodies, _, err := makeBodiesKeys(1, tasks, machines, next.Add(1))
				if err != nil {
					return
				}
				req, err := http.NewRequestWithContext(ctx, http.MethodPost,
					nodeURL+"/v1/characterize", bytes.NewReader(bodies[0]))
				if err != nil {
					return
				}
				req.Header.Set("Content-Type", "application/json")
				resp, err := client.Do(req)
				if err != nil {
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	return func() {
		cancel()
		wg.Wait()
	}
}

// runChurnPhases drives a full join/leave cycle against a standalone
// cluster-mode node: join it into the ring, wait for the losers' handoff to
// reconcile against its handoff_received, probe every moved key directly at
// the joiner (warm hits prove the handoff carried the cache), then SIGTERM it
// and re-send every body across the survivors, which must lose nothing.
func runChurnPhases(client *http.Client, rep *report, cfg clusterConfig, rot *rotation, bodies [][]byte, keys []etcmat.ContentKey) *churnReport {
	joinURL := cfg.churnNode
	joinAddr := nodeAddr(joinURL)
	ch := &churnReport{Node: joinAddr}
	if err := waitHealthy(client, joinURL, 10*time.Second); err != nil {
		fmt.Fprintf(os.Stderr, "hcload: churn: %v\n", err)
		return ch
	}
	all := append(append([]string{}, cfg.nodes...), joinURL)
	before := scrapeAllNodes(client, all)

	// Join both directions so neither side waits out a gossip round to learn
	// of the other; gossip then spreads the joiner to the rest.
	if err := postJoin(client, cfg.nodes[0], joinAddr); err != nil {
		fmt.Fprintf(os.Stderr, "hcload: churn join: %v\n", err)
		return ch
	}
	if err := postJoin(client, joinURL, nodeAddr(cfg.nodes[0])); err != nil {
		fmt.Fprintf(os.Stderr, "hcload: churn join: %v\n", err)
		return ch
	}
	if !waitRingNodes(client, all, len(cfg.nodes)+1, 15*time.Second) {
		fmt.Fprintf(os.Stderr, "hcload: churn: ring never converged to %d nodes\n", len(cfg.nodes)+1)
		return ch
	}

	// Handoff reconciliation: every entry any node reports sent was imported
	// somewhere. The joiner is not the only receiver — inserting a node
	// ripples replica slots between the incumbents too, so both sums run over
	// the whole cluster (sends that fail are not counted as sent).
	deadline := time.Now().Add(15 * time.Second)
	for {
		after := scrapeAllNodes(client, all)
		ch.HandoffSent = sumCounterDelta(before, after, "hcserved_handoff_sent_total")
		ch.HandoffReceived = sumCounterDelta(before, after, "hcserved_handoff_received_total")
		if ch.HandoffSent > 0 && ch.HandoffSent == ch.HandoffReceived {
			ch.Reconciled = true
			break
		}
		if time.Now().After(deadline) {
			fmt.Fprintf(os.Stderr, "hcload: churn: handoff did not reconcile (sent=%d received=%d)\n",
				ch.HandoffSent, ch.HandoffReceived)
			break
		}
		time.Sleep(100 * time.Millisecond)
	}

	// Probe every moved key directly at the joiner: it owns them now, so each
	// request serves locally — warm off the handed-off entry, or a recompute
	// miss that counts against the warm hit rate.
	ringAfter := ringOfNodes(cfg.nodes, joinAddr, cfg.replicas, cfg.vnodes)
	var probes []targetedRequest
	for i, k := range keys {
		if containsStr(ringAfter.Owners(k), joinAddr) {
			probes = append(probes, targetedRequest{node: joinURL, body: bodies[i]})
		}
	}
	ch.MovedKeys = len(probes)
	bj := scrapeAllNodes(client, []string{joinURL})
	pr := runTargetedPhase(client, "churn_join", probes, cfg.conc, nil)
	settle()
	aj := scrapeAllNodes(client, []string{joinURL})
	pr.Metrics = deltaAcrossNodes(bj, aj)
	rep.Phases = append(rep.Phases, pr)
	ch.WarmHits = sumCounterDelta(bj, aj, "hcserved_cache_hits_total")
	if ch.MovedKeys > 0 {
		ch.WarmHitRate = float64(ch.WarmHits) / float64(ch.MovedKeys)
	}

	// Leave: kill the joiner, wait for the survivors to expel it from the
	// ring, then re-send every body across them. The survivors hand the
	// promoted ranges among themselves; the client must lose nothing.
	if err := syscall.Kill(cfg.churnPid, syscall.SIGTERM); err != nil {
		fmt.Fprintf(os.Stderr, "hcload: churn: kill -TERM %d: %v\n", cfg.churnPid, err)
		return ch
	}
	if !waitRingNodes(client, cfg.nodes, len(cfg.nodes), 30*time.Second) {
		fmt.Fprintf(os.Stderr, "hcload: churn: survivors never expelled the dead joiner\n")
		return ch
	}
	blv := scrapeAllNodes(client, cfg.nodes)
	lpr, lost, retried := runClusterPhase(client, rot, "churn_leave", 0, bodies, cfg.conc, nil)
	settle()
	alv := scrapeAllNodes(client, cfg.nodes)
	lpr.Metrics = deltaAcrossNodes(blv, alv)
	rep.Phases = append(rep.Phases, lpr)
	ch.Lost, ch.Retried = lost, retried
	ch.OK = ch.Reconciled && ch.MovedKeys > 0 && ch.WarmHitRate >= 0.7 && ch.Lost == 0
	return ch
}

// postJoin announces addr to the cluster node at baseURL.
func postJoin(client *http.Client, baseURL, addr string) error {
	b, err := json.Marshal(map[string]string{"addr": addr})
	if err != nil {
		return err
	}
	resp, err := client.Post(baseURL+"/v1/cluster/join", "application/json", bytes.NewReader(b))
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("join on %s: status %d", baseURL, resp.StatusCode)
	}
	return nil
}

// waitRingNodes polls every node's hcserved_cluster_ring_nodes gauge until
// all report want members (or the budget runs out).
func waitRingNodes(client *http.Client, nodes []string, want int, budget time.Duration) bool {
	deadline := time.Now().Add(budget)
	for {
		ok := true
		for _, n := range nodes {
			c, err := scrapeCounters(client, n)
			if err != nil || c["hcserved_cluster_ring_nodes"] != uint64(want) {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// sumCounterDelta sums one counter's delta across the nodes present in both
// scrapes.
func sumCounterDelta(before, after map[string]map[string]uint64, name string) uint64 {
	var sum uint64
	for node, a := range after {
		if b, ok := before[node]; ok && a != nil && b != nil {
			sum += a[name] - b[name]
		}
	}
	return sum
}

// mergeClusterReport grafts this run's cluster phases and cluster section
// onto an existing serving report (the cmd/hcbench -wirebench merge idiom):
// the committed BENCH_serve.json keeps its single-node sections and gains
// the cluster scorecard from a separate cluster run.
func mergeClusterReport(mergePath, outPath string, rep *report) error {
	data, err := os.ReadFile(mergePath)
	if err != nil {
		return err
	}
	doc := map[string]json.RawMessage{}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("%s: %w", mergePath, err)
	}
	var phases []json.RawMessage
	if raw, ok := doc["phases"]; ok {
		if err := json.Unmarshal(raw, &phases); err != nil {
			return fmt.Errorf("%s: phases: %w", mergePath, err)
		}
	}
	for _, p := range rep.Phases {
		b, err := json.Marshal(p)
		if err != nil {
			return err
		}
		phases = append(phases, b)
	}
	if doc["phases"], err = json.Marshal(phases); err != nil {
		return err
	}
	if doc["cluster"], err = json.Marshal(rep.Cluster); err != nil {
		return err
	}
	if rep.Replica != nil {
		if doc["replica"], err = json.Marshal(rep.Replica); err != nil {
			return err
		}
	}
	if rep.Churn != nil {
		if doc["churn"], err = json.Marshal(rep.Churn); err != nil {
			return err
		}
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if outPath == "-" {
		_, err = os.Stdout.Write(append(out, '\n'))
		return err
	}
	return os.WriteFile(outPath, append(out, '\n'), 0o644)
}

// settle gives in-flight accounting a moment to land before a scrape: the
// request counter increments after the response bytes are already on the
// wire, and a canceled hedge may still be finishing on a peer.
func settle() { time.Sleep(250 * time.Millisecond) }

// scrapeAllNodes scrapes each node's /metrics, skipping nodes that do not
// answer (killed, draining). The per-node maps keep deltas honest: a node
// missing from either side of a bracket is excluded, never zero-filled.
func scrapeAllNodes(client *http.Client, nodes []string) map[string]map[string]uint64 {
	out := make(map[string]map[string]uint64, len(nodes))
	for _, node := range nodes {
		if c, err := scrapeCounters(client, node); err == nil {
			out[node] = c
		}
	}
	return out
}

// deltaAcrossNodes sums per-node counter deltas over the nodes present in
// both scrapes.
func deltaAcrossNodes(before, after map[string]map[string]uint64) *phaseCounters {
	sum := &phaseCounters{}
	any := false
	for node, a := range after {
		b, ok := before[node]
		if !ok {
			continue
		}
		any = true
		d := countersDelta(b, a)
		sum.Characterizations += d.Characterizations
		sum.CacheHits += d.CacheHits
		sum.CacheMisses += d.CacheMisses
		sum.Coalesced += d.Coalesced
		sum.Rejected += d.Rejected
		sum.Forwarded += d.Forwarded
		sum.PeerFills += d.PeerFills
		sum.Hedges += d.Hedges
		sum.HedgeWins += d.HedgeWins
	}
	if !any {
		return nil
	}
	return sum
}
