package main

// The -cluster suite: the same pre-rendered bodies round-robined across a
// set of hcserved nodes, so most requests land on a non-owner and exercise
// the consistent-hash forward path (see internal/cluster and DESIGN.md §15).
// Three measured phases:
//
//	cluster_cold — n distinct environments; owners compute, requesters
//	               forward and back-fill their shard caches;
//	cluster_warm — the identical bodies on a shifted rotation: forwards
//	               now land on warm owners, so the phase is dominated by
//	               peer cache fills and local hits;
//	cluster_kill — the bodies once more; with -kill-pid, one node is
//	               SIGTERMed a fifth of the way in and the client retries
//	               failed requests on the survivors. The phase asserts the
//	               recovery story: zero lost responses even though an owner
//	               vanished mid-run.
//
// The suite closes with the serving invariant, checked per node from
// /metrics deltas: every 200 the characterize endpoint returned is accounted
// for by exactly one of cache hit, unique miss, coalesced wait, or peer
// forward. A node that double-counts (or drops) accounting breaks the
// invariant even when every response looked fine from the client.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

type clusterConfig struct {
	nodes    []string
	conc     int
	n        int
	tasks    int
	machines int
	seed     int64
	killPid  int
	killNode int
}

// nodeInvariant is one node's serving-accounting check across the whole
// suite: Served is the requests_total{characterize,200} delta, Accounted the
// sum of the cache-hit, unique-miss, coalesced and forwarded deltas.
type nodeInvariant struct {
	Node      string `json:"node"`
	Served    uint64 `json:"served"`
	Accounted uint64 `json:"accounted"`
	OK        bool   `json:"ok"`
}

// clusterReport is the cluster section of BENCH_serve.json. benchdiff gates
// on Lost and InvariantOK; the rest is context.
type clusterReport struct {
	Nodes      []string `json:"nodes"`
	KilledNode string   `json:"killed_node,omitempty"`
	// Lost counts requests that got no 200 from any node despite retrying
	// the full rotation — the kill-a-node phase must keep this at zero.
	Lost int `json:"lost"`
	// Retried counts attempts that failed (connection error or 429) and
	// were re-sent to another node.
	Retried int `json:"retried"`
	// Cluster counter totals across surviving nodes, whole-suite deltas.
	Forwarded     uint64 `json:"forwarded"`
	PeerFills     uint64 `json:"peer_fills"`
	ForwardErrors uint64 `json:"forward_errors"`
	Hedges        uint64 `json:"hedges"`
	HedgeWins     uint64 `json:"hedge_wins"`
	// InvariantOK is the conjunction of every surviving node's accounting
	// check in NodeInvariants.
	InvariantOK    bool            `json:"invariant_ok"`
	NodeInvariants []nodeInvariant `json:"node_invariants"`
}

const servedKey = `hcserved_requests_total{endpoint="characterize",code="200"}`

// rotation is the shared view of which nodes still take traffic. Nodes are
// only marked down on observed connection errors — the client discovers the
// kill the same way a real caller would.
type rotation struct {
	nodes []string
	down  []atomic.Bool
}

func newRotation(nodes []string) *rotation {
	return &rotation{nodes: nodes, down: make([]atomic.Bool, len(nodes))}
}

// pick returns the attempt-th candidate node for request i: the round-robin
// choice first, then the next live node clockwise. With every node down it
// returns the raw rotation choice so the caller still surfaces an error.
func (r *rotation) pick(i, attempt int) (string, int) {
	n := len(r.nodes)
	for k := 0; k < n; k++ {
		idx := (i + attempt + k) % n
		if !r.down[idx].Load() {
			return r.nodes[idx], idx
		}
	}
	idx := (i + attempt) % n
	return r.nodes[idx], idx
}

func (r *rotation) markDown(idx int) { r.down[idx].Store(true) }

func (r *rotation) alive() []string {
	var out []string
	for i, n := range r.nodes {
		if !r.down[i].Load() {
			out = append(out, n)
		}
	}
	return out
}

// killTrigger SIGTERMs a node's process once a phase has issued enough
// requests to have traffic in flight on every node.
type killTrigger struct {
	pid   int
	at    int
	fired atomic.Bool
}

func (k *killTrigger) maybeFire(i int) bool {
	if k == nil || i < k.at || !k.fired.CompareAndSwap(false, true) {
		return false
	}
	if err := syscall.Kill(k.pid, syscall.SIGTERM); err != nil {
		fmt.Fprintf(os.Stderr, "hcload: kill -TERM %d: %v\n", k.pid, err)
	}
	return true
}

// runClusterSuite fills rep.Phases with the three cluster phases and
// rep.Cluster with the suite scorecard.
func runClusterSuite(client *http.Client, rep *report, cfg clusterConfig) {
	for _, node := range cfg.nodes {
		if err := waitHealthy(client, node, 10*time.Second); err != nil {
			fatal("%v", err)
		}
	}
	rep.URL = strings.Join(cfg.nodes, ",")
	bodies, err := makeBodies(cfg.n, cfg.tasks, cfg.machines, cfg.seed+7_000_000)
	if err != nil {
		fatal("generating cluster bodies: %v", err)
	}

	rot := newRotation(cfg.nodes)
	beforeAll := scrapeAllNodes(client, cfg.nodes)
	cr := &clusterReport{Nodes: cfg.nodes}

	// Each phase rotates the body->node mapping by one, so a body warmed on
	// node k is asked of node k+1 next time: the warm and kill phases land
	// on non-owners by construction and must forward (or hedge) to answer.
	phases := []struct {
		name   string
		offset int
		kill   *killTrigger
	}{
		{"cluster_cold", 0, nil},
		{"cluster_warm", 1, nil},
		{"cluster_kill", 2, nil},
	}
	if cfg.killPid != 0 {
		phases[2].kill = &killTrigger{pid: cfg.killPid, at: len(bodies) / 5}
		cr.KilledNode = cfg.nodes[cfg.killNode]
	}
	for _, ph := range phases {
		before := scrapeAllNodes(client, cfg.nodes)
		pr, lost, retried := runClusterPhase(client, rot, ph.name, ph.offset, bodies, cfg.conc, ph.kill)
		cr.Lost += lost
		cr.Retried += retried
		settle()
		after := scrapeAllNodes(client, cfg.nodes)
		pr.Metrics = deltaAcrossNodes(before, after)
		rep.Phases = append(rep.Phases, pr)
	}
	if len(rep.Phases) >= 2 && rep.Phases[1].P50Ms > 0 {
		rep.ColdWarmP50Ratio = rep.Phases[0].P50Ms / rep.Phases[1].P50Ms
	}

	afterAll := scrapeAllNodes(client, cfg.nodes)
	cr.InvariantOK = true
	for _, node := range cfg.nodes {
		b, okB := beforeAll[node]
		a, okA := afterAll[node]
		if !okB || !okA {
			continue // killed or unreachable: nothing to check
		}
		inv := nodeInvariant{
			Node:   node,
			Served: a[servedKey] - b[servedKey],
			Accounted: (a["hcserved_cache_hits_total"] - b["hcserved_cache_hits_total"]) +
				(a["hcserved_cache_misses_total"] - b["hcserved_cache_misses_total"]) +
				(a["hcserved_coalesced_total"] - b["hcserved_coalesced_total"]) +
				(a["hcserved_forwarded_total"] - b["hcserved_forwarded_total"]),
		}
		inv.OK = inv.Served == inv.Accounted
		if !inv.OK {
			cr.InvariantOK = false
		}
		cr.NodeInvariants = append(cr.NodeInvariants, inv)
		cr.Forwarded += a["hcserved_forwarded_total"] - b["hcserved_forwarded_total"]
		cr.PeerFills += a["hcserved_peer_fills_total"] - b["hcserved_peer_fills_total"]
		cr.ForwardErrors += a["hcserved_forward_errors_total"] - b["hcserved_forward_errors_total"]
		cr.Hedges += a["hcserved_hedged_total"] - b["hcserved_hedged_total"]
		cr.HedgeWins += a["hcserved_hedge_wins_total"] - b["hcserved_hedge_wins_total"]
	}
	rep.Cluster = cr
}

// runClusterPhase sends every body once, round-robined across the rotation,
// retrying connection errors and 429s on the next node. It returns the phase
// latencies plus how many requests were lost outright and how many attempts
// had to be retried.
func runClusterPhase(client *http.Client, rot *rotation, name string, offset int, bodies [][]byte, conc int, kill *killTrigger) (phaseReport, int, int) {
	var (
		next      atomic.Int64
		lost      atomic.Int64
		retried   atomic.Int64
		shed      atomic.Int64
		errs      atomic.Int64
		mu        sync.Mutex
		latencies []time.Duration
		wg        sync.WaitGroup
	)
	// Enough attempts to walk the whole rotation twice: a 429 on every node
	// of a briefly saturated cluster should still find a slot on the second
	// lap rather than count as lost.
	attempts := 2 * len(rot.nodes)
	start := time.Now()
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]time.Duration, 0, len(bodies)/conc+1)
			for {
				i := int(next.Add(1) - 1)
				if i >= len(bodies) {
					break
				}
				if kill.maybeFire(i) {
					fmt.Fprintf(os.Stderr, "hcload: phase %s: sent SIGTERM to pid %d at request %d\n", name, kill.pid, i)
				}
				ok := false
				for a := 0; a < attempts && !ok; a++ {
					node, idx := rot.pick(i+offset, a)
					t0 := time.Now()
					resp, err := client.Post(node+"/v1/characterize", "application/json", bytes.NewReader(bodies[i]))
					if err != nil {
						// Connection-level failure: the node is draining or
						// gone. Take it out of the rotation and move on.
						rot.markDown(idx)
						retried.Add(1)
						continue
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					switch {
					case resp.StatusCode == http.StatusOK:
						local = append(local, time.Since(t0))
						ok = true
					case resp.StatusCode == http.StatusTooManyRequests:
						// This node's admission queue is full; another node
						// may have capacity right now.
						shed.Add(1)
						retried.Add(1)
						time.Sleep(5 * time.Millisecond)
					default:
						// Semantic failure (4xx/5xx with a served response):
						// retrying the same body elsewhere cannot help.
						errs.Add(1)
						a = attempts
					}
				}
				if !ok {
					lost.Add(1)
				}
			}
			mu.Lock()
			latencies = append(latencies, local...)
			mu.Unlock()
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	pr := phaseReport{
		Name:      name,
		Requests:  len(bodies),
		Errors:    int(errs.Load()),
		Status429: int(shed.Load()),
	}
	if len(latencies) == 0 {
		return pr, int(lost.Load()), int(retried.Load())
	}
	summarizeLatencies(&pr, latencies, elapsed)
	return pr, int(lost.Load()), int(retried.Load())
}

// mergeClusterReport grafts this run's cluster phases and cluster section
// onto an existing serving report (the cmd/hcbench -wirebench merge idiom):
// the committed BENCH_serve.json keeps its single-node sections and gains
// the cluster scorecard from a separate cluster run.
func mergeClusterReport(mergePath, outPath string, rep *report) error {
	data, err := os.ReadFile(mergePath)
	if err != nil {
		return err
	}
	doc := map[string]json.RawMessage{}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("%s: %w", mergePath, err)
	}
	var phases []json.RawMessage
	if raw, ok := doc["phases"]; ok {
		if err := json.Unmarshal(raw, &phases); err != nil {
			return fmt.Errorf("%s: phases: %w", mergePath, err)
		}
	}
	for _, p := range rep.Phases {
		b, err := json.Marshal(p)
		if err != nil {
			return err
		}
		phases = append(phases, b)
	}
	if doc["phases"], err = json.Marshal(phases); err != nil {
		return err
	}
	if doc["cluster"], err = json.Marshal(rep.Cluster); err != nil {
		return err
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if outPath == "-" {
		_, err = os.Stdout.Write(append(out, '\n'))
		return err
	}
	return os.WriteFile(outPath, append(out, '\n'), 0o644)
}

// settle gives in-flight accounting a moment to land before a scrape: the
// request counter increments after the response bytes are already on the
// wire, and a canceled hedge may still be finishing on a peer.
func settle() { time.Sleep(250 * time.Millisecond) }

// scrapeAllNodes scrapes each node's /metrics, skipping nodes that do not
// answer (killed, draining). The per-node maps keep deltas honest: a node
// missing from either side of a bracket is excluded, never zero-filled.
func scrapeAllNodes(client *http.Client, nodes []string) map[string]map[string]uint64 {
	out := make(map[string]map[string]uint64, len(nodes))
	for _, node := range nodes {
		if c, err := scrapeCounters(client, node); err == nil {
			out[node] = c
		}
	}
	return out
}

// deltaAcrossNodes sums per-node counter deltas over the nodes present in
// both scrapes.
func deltaAcrossNodes(before, after map[string]map[string]uint64) *phaseCounters {
	sum := &phaseCounters{}
	any := false
	for node, a := range after {
		b, ok := before[node]
		if !ok {
			continue
		}
		any = true
		d := countersDelta(b, a)
		sum.Characterizations += d.Characterizations
		sum.CacheHits += d.CacheHits
		sum.CacheMisses += d.CacheMisses
		sum.Coalesced += d.Coalesced
		sum.Rejected += d.Rejected
		sum.Forwarded += d.Forwarded
		sum.PeerFills += d.PeerFills
		sum.Hedges += d.Hedges
		sum.HedgeWins += d.HedgeWins
	}
	if !any {
		return nil
	}
	return sum
}
