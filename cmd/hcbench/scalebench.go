package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/etcmat"
	"repro/internal/linalg"
	"repro/internal/matrix"
	"repro/internal/parallel"
	"repro/internal/sinkhorn"
)

// The -scalebench mode measures the fleet-scale numeric core at environment
// sizes far past the kernel suite's 60×40 shapes: the blocked Gram kernels
// (serial and parallel), the values-only spectral pipeline, the tiled
// Sinkhorn balance passes, an end-to-end characterization, and the
// incremental downdating path against a full recompute. The report is
// machine-readable ("kind": "scale") and diffs through -benchdiff: records
// at the gate size (1000) fail the diff on an ns/op regression past the
// threshold, larger sizes are informational — a 4k or 10k run takes minutes
// per data point, so its run-to-run noise is low, but its absolute cost
// makes re-measuring on every change impractical; the gated 1k row is the
// regression canary.

// scaleGateSize is the matrix edge whose records gate -benchdiff.
const scaleGateSize = 1000

// scaleSpectralMax bounds the sizes that run the O(n³) spectral pipeline and
// the end-to-end characterization. Past it (the 10k row) only the O(n²)-per-
// pass kernels — Gram formation is measured once, tiled balance passes, and
// nothing cubic — keep the sweep inside a practical wall-clock budget; the
// report notes the omission instead of silently capping coverage.
const scaleSpectralMax = 4096

type scaleResult struct {
	Name string `json:"name"`
	Size int    `json:"size"`
	// NsPerOp is wall-clock per operation; the scale sweep gates only on
	// time — allocation counts at these sizes are a property of the pooling
	// layer, measured by the kernel suite.
	NsPerOp float64 `json:"ns_per_op"`
	// Gated marks the records -benchdiff fails on regression; the rest are
	// informational context.
	Gated bool   `json:"gated"`
	Note  string `json:"note,omitempty"`
}

type scaleReport struct {
	Kind       string        `json:"kind"` // "scale"; benchdiff sniffs this
	GoMaxProcs int           `json:"gomaxprocs"`
	NumCPU     int           `json:"num_cpu"`
	GoVersion  string        `json:"go_version"`
	Workers    int           `json:"workers"` // budget of the parallel records
	Results    []scaleResult `json:"results"`
}

// parseSizes parses the -sizes list ("1000,4000,10000").
func parseSizes(csv string) ([]int, error) {
	var sizes []int
	for _, f := range strings.Split(csv, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n < 2 {
			return nil, fmt.Errorf("bad size %q (want integers >= 2)", f)
		}
		sizes = append(sizes, n)
	}
	if len(sizes) == 0 {
		return nil, fmt.Errorf("no sizes given")
	}
	return sizes, nil
}

// runScaleBench runs the sweep and writes the scale report to path.
func runScaleBench(path, sizesCSV string) error {
	sizes, err := parseSizes(sizesCSV)
	if err != nil {
		return err
	}
	out := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}

	// The parallel records run at GOMAXPROCS workers. On a single-CPU host
	// that budget degenerates to the serial path, which would silently
	// measure the same code twice — run two workers instead and say so: the
	// number then measures the decomposition's fan-out overhead (results are
	// bit-identical at every worker count, so that overhead is the only
	// difference).
	workers := runtime.GOMAXPROCS(0)
	parNote := ""
	if workers < 2 {
		workers = 2
		parNote = "GOMAXPROCS=1: 2-worker run measures fan-out overhead, not speedup"
	}

	rep := scaleReport{
		Kind:       "scale",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
		Workers:    workers,
	}
	add := func(name string, n int, r testing.BenchmarkResult, note string) {
		rep.Results = append(rep.Results, scaleResult{
			Name:    fmt.Sprintf("%s/%d", name, n),
			Size:    n,
			NsPerOp: float64(r.NsPerOp()),
			Gated:   n == scaleGateSize,
			Note:    note,
		})
		fmt.Fprintf(os.Stderr, "hcbench: scale: %s/%d  %.3fs/op\n", name, n, float64(r.NsPerOp())/1e9)
	}

	for _, n := range sizes {
		a := benchMatrix(n, n, int64(n))
		g := matrix.New(n, n)

		add("Scale/gram/serial", n, testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				matrix.GramInto(g.Reset(n, n), a)
			}
		}), "")
		add("Scale/gram/parallel", n, testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				matrix.GramIntoPar(g.Reset(n, n), a, workers)
			}
		}), parNote)

		// One fused balance pass, row-streaming vs cache-oblivious tiled. The
		// unit factors keep the matrix bit-stable across iterations.
		w := a.Clone()
		ones := make([]float64, n)
		for i := range ones {
			ones[i] = 1
		}
		sums := make([]float64, n)
		add("Scale/sinkhorn/pass/row", n, testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				w.ScaleColsRowSums(ones, sums)
			}
		}), "")
		add("Scale/sinkhorn/pass/tiled", n, testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sinkhorn.ScaleColsRowSumsTiled(w, ones, sums)
			}
		}), "")

		if n <= scaleSpectralMax {
			ws := linalg.NewWorkspace()
			var buf []float64
			add("Scale/spectral/serial", n, testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					buf = linalg.AppendSingularValues(buf[:0], a, ws)
				}
			}), "")
			add("Scale/spectral/parallel", n, testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					buf = linalg.SingularValuesPar(a, ws, workers)
				}
			}), parNote)

			// End-to-end characterization, environment build included, with
			// the serving tier's buffer recycling so iterations reuse pooled
			// storage the way steady-state requests do.
			ctx := parallel.WithWorkers(context.Background(), workers)
			add("Scale/characterize", n, testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					env, err := etcmat.NewFromECS(a)
					if err != nil {
						b.Fatal(err)
					}
					p := core.CharacterizeCtx(ctx, env)
					if p.TMAErr != nil {
						b.Fatal(p.TMAErr)
					}
					env.ReleaseBuffers()
				}
			}), parNote)
		} else {
			rep.Results = append(rep.Results, scaleResult{
				Name: fmt.Sprintf("Scale/spectral/skipped/%d", n),
				Size: n,
				Note: fmt.Sprintf("O(n³) spectral and characterize stages not measured past %d", scaleSpectralMax),
			})
		}

		if n == scaleGateSize {
			// Incremental downdating vs full recompute: what one leave-one-out
			// delta costs through each path. The Downdater's eigensystem build
			// is paid once before timing, matching its amortized use.
			dd := linalg.NewDowndater(a)
			var sv []float64
			sv = dd.DropRowValues(0, sv[:0]) // pay the one-time eigensystem build
			add("Scale/downdate/droprow", n, testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					sv = dd.DropRowValues(i%n, sv[:0])
				}
			}), "")
			sub := dropRow(a, 0)
			ws := linalg.NewWorkspace()
			var buf []float64
			add("Scale/downdate/recompute", n, testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					buf = linalg.AppendSingularValues(buf[:0], sub, ws)
				}
			}), "")
		}
	}

	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// dropRow returns a copy of a without row i.
func dropRow(a *matrix.Dense, i int) *matrix.Dense {
	r, c := a.Dims()
	out := matrix.New(r-1, c)
	src := a.RawData()
	dst := out.RawData()
	copy(dst, src[:i*c])
	copy(dst[i*c:], src[(i+1)*c:])
	return out
}
