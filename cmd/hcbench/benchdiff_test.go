package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeReport(t *testing.T, dir, name string, results []benchResult) string {
	t.Helper()
	path := filepath.Join(dir, name)
	data, err := json.Marshal(benchReport{GoMaxProcs: 4, NumCPU: 4, Results: results})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestBenchDiffPassesWithinThreshold(t *testing.T) {
	dir := t.TempDir()
	oldP := writeReport(t, dir, "old.json", []benchResult{
		{Name: "K1", NsPerOp: 1000, AllocsPerOp: 10},
		{Name: "K2", NsPerOp: 500, AllocsPerOp: 0},
	})
	newP := writeReport(t, dir, "new.json", []benchResult{
		{Name: "K1", NsPerOp: 1150, AllocsPerOp: 11}, // +15%, +10%
		{Name: "K2", NsPerOp: 400, AllocsPerOp: 0},
	})
	var buf strings.Builder
	ok, err := runBenchDiff(&buf, oldP, newP, 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Errorf("within-threshold diff failed:\n%s", buf.String())
	}
}

func TestBenchDiffFailsOnNsRegression(t *testing.T) {
	dir := t.TempDir()
	oldP := writeReport(t, dir, "old.json", []benchResult{{Name: "K1", NsPerOp: 1000, AllocsPerOp: 10}})
	newP := writeReport(t, dir, "new.json", []benchResult{{Name: "K1", NsPerOp: 1300, AllocsPerOp: 10}})
	var buf strings.Builder
	ok, err := runBenchDiff(&buf, oldP, newP, 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Errorf("+30%% ns/op passed:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "FAIL") {
		t.Errorf("output does not flag the failure:\n%s", buf.String())
	}
}

func TestBenchDiffFailsOnAllocRegression(t *testing.T) {
	dir := t.TempDir()
	oldP := writeReport(t, dir, "old.json", []benchResult{{Name: "K1", NsPerOp: 1000, AllocsPerOp: 10}})
	newP := writeReport(t, dir, "new.json", []benchResult{{Name: "K1", NsPerOp: 1000, AllocsPerOp: 13}})
	var buf strings.Builder
	ok, err := runBenchDiff(&buf, oldP, newP, 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Errorf("+30%% allocs/op passed:\n%s", buf.String())
	}
}

func TestBenchDiffZeroAllocBaseline(t *testing.T) {
	dir := t.TempDir()
	oldP := writeReport(t, dir, "old.json", []benchResult{{Name: "K1", NsPerOp: 100, AllocsPerOp: 0}})
	newP := writeReport(t, dir, "new.json", []benchResult{{Name: "K1", NsPerOp: 100, AllocsPerOp: 2}})
	var buf strings.Builder
	ok, err := runBenchDiff(&buf, oldP, newP, 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("new allocations on a zero-alloc kernel passed")
	}
}

func TestBenchDiffAddedAndRemovedKernels(t *testing.T) {
	dir := t.TempDir()
	oldP := writeReport(t, dir, "old.json", []benchResult{{Name: "Gone", NsPerOp: 100}})
	newP := writeReport(t, dir, "new.json", []benchResult{{Name: "Added", NsPerOp: 100}})
	var buf strings.Builder
	ok, err := runBenchDiff(&buf, oldP, newP, 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Errorf("pure addition/removal failed:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "Added") || !strings.Contains(buf.String(), "Gone") {
		t.Errorf("additions/removals not listed:\n%s", buf.String())
	}
}

func TestBenchDiffMissingFile(t *testing.T) {
	var buf strings.Builder
	if _, err := runBenchDiff(&buf, "/nonexistent/a.json", "/nonexistent/b.json", 0.2); err == nil {
		t.Error("missing input accepted")
	}
}
