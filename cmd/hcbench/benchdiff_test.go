package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeReport(t *testing.T, dir, name string, results []benchResult) string {
	t.Helper()
	path := filepath.Join(dir, name)
	data, err := json.Marshal(benchReport{GoMaxProcs: 4, NumCPU: 4, Results: results})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestBenchDiffPassesWithinThreshold(t *testing.T) {
	dir := t.TempDir()
	oldP := writeReport(t, dir, "old.json", []benchResult{
		{Name: "K1", NsPerOp: 1000, AllocsPerOp: 10},
		{Name: "K2", NsPerOp: 500, AllocsPerOp: 0},
	})
	newP := writeReport(t, dir, "new.json", []benchResult{
		{Name: "K1", NsPerOp: 1150, AllocsPerOp: 11}, // +15%, +10%
		{Name: "K2", NsPerOp: 400, AllocsPerOp: 0},
	})
	var buf strings.Builder
	ok, err := runBenchDiff(&buf, oldP, newP, 0.20, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Errorf("within-threshold diff failed:\n%s", buf.String())
	}
}

func TestBenchDiffFailsOnNsRegression(t *testing.T) {
	dir := t.TempDir()
	oldP := writeReport(t, dir, "old.json", []benchResult{{Name: "K1", NsPerOp: 1000, AllocsPerOp: 10}})
	newP := writeReport(t, dir, "new.json", []benchResult{{Name: "K1", NsPerOp: 1300, AllocsPerOp: 10}})
	var buf strings.Builder
	ok, err := runBenchDiff(&buf, oldP, newP, 0.20, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Errorf("+30%% ns/op passed:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "FAIL") {
		t.Errorf("output does not flag the failure:\n%s", buf.String())
	}
}

func TestBenchDiffFailsOnAllocRegression(t *testing.T) {
	dir := t.TempDir()
	oldP := writeReport(t, dir, "old.json", []benchResult{{Name: "K1", NsPerOp: 1000, AllocsPerOp: 10}})
	newP := writeReport(t, dir, "new.json", []benchResult{{Name: "K1", NsPerOp: 1000, AllocsPerOp: 13}})
	var buf strings.Builder
	ok, err := runBenchDiff(&buf, oldP, newP, 0.20, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Errorf("+30%% allocs/op passed:\n%s", buf.String())
	}
}

func TestBenchDiffZeroAllocBaseline(t *testing.T) {
	dir := t.TempDir()
	oldP := writeReport(t, dir, "old.json", []benchResult{{Name: "K1", NsPerOp: 100, AllocsPerOp: 0}})
	newP := writeReport(t, dir, "new.json", []benchResult{{Name: "K1", NsPerOp: 100, AllocsPerOp: 2}})
	var buf strings.Builder
	ok, err := runBenchDiff(&buf, oldP, newP, 0.20, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("new allocations on a zero-alloc kernel passed")
	}
}

func TestBenchDiffAddedAndRemovedKernels(t *testing.T) {
	dir := t.TempDir()
	oldP := writeReport(t, dir, "old.json", []benchResult{{Name: "Gone", NsPerOp: 100}})
	newP := writeReport(t, dir, "new.json", []benchResult{{Name: "Added", NsPerOp: 100}})
	var buf strings.Builder
	ok, err := runBenchDiff(&buf, oldP, newP, 0.20, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Errorf("pure addition/removal failed:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "Added") || !strings.Contains(buf.String(), "Gone") {
		t.Errorf("additions/removals not listed:\n%s", buf.String())
	}
}

func writeServeReport(t *testing.T, dir, name, payload string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(payload), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestServeDiffGatesWarmP50(t *testing.T) {
	dir := t.TempDir()
	oldP := writeServeReport(t, dir, "old.json",
		`{"phases":[{"name":"cold","p50_ms":30},{"name":"warm","p50_ms":10},{"name":"zipf","p50_ms":20}]}`)

	// Warm within threshold passes even with cold far worse: cold latency is
	// pipeline compute, which the kernel diff gates.
	okP := writeServeReport(t, dir, "ok.json",
		`{"phases":[{"name":"cold","p50_ms":60},{"name":"warm","p50_ms":11},{"name":"zipf","p50_ms":40}],
		  "zipf":{"distinct_requested":29,"characterizations":29,"unique_computes_only":true}}`)
	var buf strings.Builder
	ok, err := runBenchDiff(&buf, oldP, okP, 0.20, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Errorf("within-threshold warm p50 failed:\n%s", buf.String())
	}

	// Warm past threshold fails.
	badP := writeServeReport(t, dir, "bad.json",
		`{"phases":[{"name":"warm","p50_ms":13}]}`)
	buf.Reset()
	ok, err = runBenchDiff(&buf, oldP, badP, 0.20, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Errorf("+30%% warm p50 passed:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "FAIL") {
		t.Errorf("output does not flag the failure:\n%s", buf.String())
	}
}

func TestServeDiffP99Gate(t *testing.T) {
	dir := t.TempDir()
	oldP := writeServeReport(t, dir, "old.json",
		`{"phases":[{"name":"warm","p50_ms":10,"p99_ms":50}]}`)
	// p99 5x worse, p50 fine.
	newP := writeServeReport(t, dir, "new.json",
		`{"phases":[{"name":"warm","p50_ms":10,"p99_ms":250}]}`)

	// Off by default: the tail blowup is printed, not gated.
	var buf strings.Builder
	ok, err := runBenchDiff(&buf, oldP, newP, 0.20, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Errorf("p99 regression failed the diff with the gate off:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "p99") {
		t.Errorf("p99 columns missing from the context output:\n%s", buf.String())
	}

	// Gated at the default threshold (3.0 = +300%): +400% fails.
	buf.Reset()
	ok, err = runBenchDiff(&buf, oldP, newP, 0.20, 3.0)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Errorf("+400%% warm p99 passed with -gatep99:\n%s", buf.String())
	}

	// A tail within the generous threshold passes even when gated.
	mildP := writeServeReport(t, dir, "mild.json",
		`{"phases":[{"name":"warm","p50_ms":10,"p99_ms":120}]}`)
	buf.Reset()
	ok, err = runBenchDiff(&buf, oldP, mildP, 0.20, 3.0)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Errorf("+140%% warm p99 failed the generous gate:\n%s", buf.String())
	}
}

func TestServeDiffGatesCoalescingInvariant(t *testing.T) {
	dir := t.TempDir()
	oldP := writeServeReport(t, dir, "old.json",
		`{"phases":[{"name":"warm","p50_ms":10}]}`)
	newP := writeServeReport(t, dir, "new.json",
		`{"phases":[{"name":"warm","p50_ms":10}],
		  "zipf":{"distinct_requested":29,"characterizations":35,"unique_computes_only":false}}`)
	var buf strings.Builder
	ok, err := runBenchDiff(&buf, oldP, newP, 0.20, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Errorf("broken coalescing invariant passed:\n%s", buf.String())
	}
}

func TestServeDiffGatesStreamSpeedup(t *testing.T) {
	dir := t.TempDir()
	oldP := writeServeReport(t, dir, "old.json",
		`{"phases":[{"name":"warm","p50_ms":10}]}`)

	// A healthy stream section passes.
	okP := writeServeReport(t, dir, "ok.json",
		`{"phases":[{"name":"warm","p50_ms":10}],
		  "stream":{"mutations":500,"incremental_total":480,"p50_speedup":4.2,"accounting_balanced":true}}`)
	var buf strings.Builder
	ok, err := runBenchDiff(&buf, oldP, okP, 0.20, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Errorf("4.2x stream speedup failed:\n%s", buf.String())
	}

	// Speedup below the 2x gate fails.
	slowP := writeServeReport(t, dir, "slow.json",
		`{"phases":[{"name":"warm","p50_ms":10}],
		  "stream":{"mutations":500,"incremental_total":480,"p50_speedup":1.4,"accounting_balanced":true}}`)
	buf.Reset()
	ok, err = runBenchDiff(&buf, oldP, slowP, 0.20, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Errorf("1.4x stream speedup passed the 2x gate:\n%s", buf.String())
	}

	// Unbalanced accounting fails regardless of speedup.
	unbalP := writeServeReport(t, dir, "unbal.json",
		`{"phases":[{"name":"warm","p50_ms":10}],
		  "stream":{"mutations":500,"incremental_total":480,"p50_speedup":5.0,"accounting_balanced":false}}`)
	buf.Reset()
	ok, err = runBenchDiff(&buf, oldP, unbalP, 0.20, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Errorf("unbalanced stream accounting passed:\n%s", buf.String())
	}
}

func writeScaleReport(t *testing.T, dir, name string, results []scaleResult) string {
	t.Helper()
	path := filepath.Join(dir, name)
	data, err := json.Marshal(scaleReport{Kind: "scale", GoMaxProcs: 1, NumCPU: 1, Workers: 2, Results: results})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestScaleDiffGatesOnlyGatedRecords(t *testing.T) {
	dir := t.TempDir()
	oldP := writeScaleReport(t, dir, "old.json", []scaleResult{
		{Name: "Scale/gram/serial/1000", Size: 1000, NsPerOp: 1e8, Gated: true},
		{Name: "Scale/gram/serial/4000", Size: 4000, NsPerOp: 1e10},
		{Name: "Scale/spectral/skipped/10000", Size: 10000}, // marker, no timing
	})

	// A big regression on an informational (4k) record passes; the marker
	// record with no timing on either side is ignored.
	okP := writeScaleReport(t, dir, "ok.json", []scaleResult{
		{Name: "Scale/gram/serial/1000", Size: 1000, NsPerOp: 1.1e8, Gated: true},
		{Name: "Scale/gram/serial/4000", Size: 4000, NsPerOp: 3e10},
		{Name: "Scale/spectral/skipped/10000", Size: 10000},
	})
	var buf strings.Builder
	ok, err := runBenchDiff(&buf, oldP, okP, 0.20, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Errorf("informational 4k regression failed the diff:\n%s", buf.String())
	}

	// The same regression on the gated 1k record fails.
	badP := writeScaleReport(t, dir, "bad.json", []scaleResult{
		{Name: "Scale/gram/serial/1000", Size: 1000, NsPerOp: 3e8, Gated: true},
		{Name: "Scale/gram/serial/4000", Size: 4000, NsPerOp: 1e10},
	})
	buf.Reset()
	ok, err = runBenchDiff(&buf, oldP, badP, 0.20, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Errorf("gated 1k regression passed:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "FAIL") {
		t.Errorf("output does not flag the failure:\n%s", buf.String())
	}
}

func TestScaleDiffGatingNeedsBothSides(t *testing.T) {
	// A record promoted to gated only in NEW must not fail the diff: gating
	// takes effect once the committed baseline carries the flag too.
	dir := t.TempDir()
	oldP := writeScaleReport(t, dir, "old.json", []scaleResult{
		{Name: "Scale/gram/serial/1000", Size: 1000, NsPerOp: 1e8},
	})
	newP := writeScaleReport(t, dir, "new.json", []scaleResult{
		{Name: "Scale/gram/serial/1000", Size: 1000, NsPerOp: 5e8, Gated: true},
	})
	var buf strings.Builder
	ok, err := runBenchDiff(&buf, oldP, newP, 0.20, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Errorf("newly gated record failed against an ungated baseline:\n%s", buf.String())
	}
}

func TestBenchDiffRejectsMixedReportKinds(t *testing.T) {
	dir := t.TempDir()
	kernel := writeReport(t, dir, "kernel.json", []benchResult{{Name: "K1", NsPerOp: 100}})
	serve := writeServeReport(t, dir, "serve.json", `{"phases":[{"name":"warm","p50_ms":10}]}`)
	var buf strings.Builder
	if _, err := runBenchDiff(&buf, kernel, serve, 0.20, 0); err == nil {
		t.Error("kernel-vs-serving comparison accepted")
	}
	scale := writeScaleReport(t, dir, "scale.json", []scaleResult{{Name: "S", Size: 1000, NsPerOp: 1}})
	if _, err := runBenchDiff(&buf, scale, kernel, 0.20, 0); err == nil {
		t.Error("scale-vs-kernel comparison accepted")
	}
}

func TestBenchDiffMissingFile(t *testing.T) {
	var buf strings.Builder
	if _, err := runBenchDiff(&buf, "/nonexistent/a.json", "/nonexistent/b.json", 0.2, 0); err == nil {
		t.Error("missing input accepted")
	}
}
