package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// runBenchDiff compares two benchmark reports and reports whether NEW is
// acceptable. It handles the three report kinds this repo commits:
//
//   - kernel reports (cmd/hcbench -bench): a kernel regresses when its ns/op
//     or allocs/op grew by more than threshold (a fraction, e.g. 0.20 for
//     20%) relative to OLD. Kernels present in only one report are listed
//     but never fail the comparison — they are additions or retirements,
//     not regressions.
//   - serving reports (cmd/hcload, detected by a "phases" field): the gate
//     is the warm-phase p50 — the cached hot path, the serving tier's
//     steady state — plus the zipf section's coalescing invariant. Cold and
//     zipf latencies are listed for context but do not gate: they are
//     dominated by pipeline compute the kernel diff already covers.
//   - scale reports (cmd/hcbench -scalebench, detected by "kind": "scale"):
//     only records marked gated — the 1k rows — fail on an ns/op regression
//     past threshold; the multi-minute 4k/10k rows are informational.
//
// p99Threshold, when positive, additionally gates the warm-phase p99 of a
// serving report (the -gatep99 opt-in). Tail latency on a loaded box is far
// noisier than the median — one scheduler hiccup moves it severalfold — so
// the p99 gate is off by default and its threshold is generous; it exists to
// catch order-of-magnitude tail collapses, not percent-level drift. The p99
// columns are always printed for context either way.
//
// The boolean result is false when any regression was found.
func runBenchDiff(out io.Writer, oldPath, newPath string, threshold, p99Threshold float64) (bool, error) {
	oldKind, err := reportKind(oldPath)
	if err != nil {
		return false, err
	}
	newKind, err := reportKind(newPath)
	if err != nil {
		return false, err
	}
	if oldKind != newKind {
		return false, fmt.Errorf("mixed report kinds: %s is a %s report but %s is a %s report", oldPath, oldKind, newPath, newKind)
	}
	switch oldKind {
	case "serve":
		return runServeDiff(out, oldPath, newPath, threshold, p99Threshold)
	case "scale":
		return runScaleDiff(out, oldPath, newPath, threshold)
	}
	oldRep, err := readBenchReport(oldPath)
	if err != nil {
		return false, err
	}
	newRep, err := readBenchReport(newPath)
	if err != nil {
		return false, err
	}
	oldBy := make(map[string]benchResult, len(oldRep.Results))
	for _, r := range oldRep.Results {
		oldBy[r.Name] = r
	}
	fmt.Fprintf(out, "benchdiff %s -> %s (fail past %+.0f%%)\n", oldPath, newPath, 100*threshold)
	ok := true
	for _, nr := range newRep.Results {
		or, found := oldBy[nr.Name]
		if !found {
			fmt.Fprintf(out, "  new   %-40s %12.0f ns/op %8d allocs/op\n", nr.Name, nr.NsPerOp, nr.AllocsPerOp)
			continue
		}
		delete(oldBy, nr.Name)
		nsDelta := frac(nr.NsPerOp, or.NsPerOp)
		allocDelta := frac(float64(nr.AllocsPerOp), float64(or.AllocsPerOp))
		status := "ok"
		if nsDelta > threshold || allocDelta > threshold {
			status = "FAIL"
			ok = false
		}
		fmt.Fprintf(out, "  %-5s %-40s ns/op %+7.1f%%  allocs/op %+7.1f%%\n",
			status, nr.Name, 100*nsDelta, 100*allocDelta)
	}
	for name := range oldBy {
		fmt.Fprintf(out, "  gone  %s\n", name)
	}
	if !ok {
		fmt.Fprintln(out, "benchdiff: FAIL")
	}
	return ok, nil
}

// frac is the fractional change from old to new; an old of zero (a kernel
// that never allocated, say) only regresses when new is nonzero.
func frac(new, old float64) float64 {
	if old == 0 {
		if new == 0 {
			return 0
		}
		return 1
	}
	return (new - old) / old
}

// serveReport is the slice of cmd/hcload's BENCH_serve.json that benchdiff
// gates on: per-phase p50 latencies and the zipf coalescing scorecard.
type serveReport struct {
	Phases []struct {
		Name  string  `json:"name"`
		P50Ms float64 `json:"p50_ms"`
		P99Ms float64 `json:"p99_ms"`
	} `json:"phases"`
	Zipf *struct {
		DistinctRequested  int    `json:"distinct_requested"`
		Characterizations  uint64 `json:"characterizations"`
		UniqueComputesOnly bool   `json:"unique_computes_only"`
	} `json:"zipf"`
	// Cluster is the -cluster suite scorecard: the gate is correctness, not
	// latency — no response may be lost across the kill-a-node phase, and
	// every node's serving accounting must balance.
	Cluster *struct {
		KilledNode  string `json:"killed_node"`
		Lost        int    `json:"lost"`
		Retried     int    `json:"retried"`
		Forwarded   uint64 `json:"forwarded"`
		InvariantOK bool   `json:"invariant_ok"`
	} `json:"cluster"`
	// Stream is the incremental-session scorecard: the gate requires the
	// per-mutation p50 to beat the cold one-shot baseline at least 2x and
	// the server's stream accounting to balance.
	Stream *struct {
		Mutations          int     `json:"mutations"`
		IncrementalTotal   int     `json:"incremental_total"`
		P50Speedup         float64 `json:"p50_speedup"`
		AccountingBalanced bool    `json:"accounting_balanced"`
	} `json:"stream"`
	// Replica compares strict-primary forwarding against the p2c replica-read
	// policy: the gate requires the p2c tail to be no worse than single-owner
	// targeting (that inequality is the policy's reason to exist).
	Replica *struct {
		Requests     int     `json:"requests"`
		SingleP99Ms  float64 `json:"single_p99_ms"`
		P2CP99Ms     float64 `json:"p2c_p99_ms"`
		ReplicaReads uint64  `json:"replica_reads"`
		OK           bool    `json:"ok"`
	} `json:"replica"`
	// Churn is the join/leave scorecard: handoff counters must reconcile
	// across nodes, the post-handoff warm hit rate on moved keys must clear
	// churnWarmHitGate, and no request may be lost across the leave.
	Churn *struct {
		MovedKeys       int     `json:"moved_keys"`
		WarmHitRate     float64 `json:"warm_hit_rate"`
		HandoffSent     uint64  `json:"handoff_sent"`
		HandoffReceived uint64  `json:"handoff_received"`
		Reconciled      bool    `json:"reconciled"`
		Lost            int     `json:"lost"`
		OK              bool    `json:"ok"`
	} `json:"churn"`
}

// churnWarmHitGate is the minimum post-handoff warm hit rate on moved keys a
// churn section must demonstrate: a join that forces the new owner to
// recompute more than 30% of its inherited working set defeats the handoff.
const churnWarmHitGate = 0.7

// streamSpeedupGate is the minimum stream-over-oneshot p50 speedup a serving
// report must demonstrate: the incremental solver has to at least halve the
// per-update latency to justify holding a session open.
const streamSpeedupGate = 2.0

// reportKind sniffs a report file: scale reports self-identify with
// "kind": "scale", serving reports carry a "phases" array, and everything
// else with a "results" array is a kernel report.
func reportKind(path string) (string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	var probe struct {
		Kind   string            `json:"kind"`
		Phases []json.RawMessage `json:"phases"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return "", fmt.Errorf("%s: %w", path, err)
	}
	switch {
	case probe.Kind == "scale":
		return "scale", nil
	case probe.Phases != nil:
		return "serve", nil
	default:
		return "kernel", nil
	}
}

// runScaleDiff gates a fresh scale sweep against the committed baseline: a
// gated record (the 1k rows) fails when its ns/op grew past threshold; every
// other size is printed for context. Gating follows the NEW report's flags —
// a record promoted to (or demoted from) gating takes effect only once both
// sides carry the flag, so baseline refreshes do not trip on themselves.
func runScaleDiff(out io.Writer, oldPath, newPath string, threshold float64) (bool, error) {
	oldRep, err := readScaleReport(oldPath)
	if err != nil {
		return false, err
	}
	newRep, err := readScaleReport(newPath)
	if err != nil {
		return false, err
	}
	oldBy := make(map[string]scaleResult, len(oldRep.Results))
	for _, r := range oldRep.Results {
		oldBy[r.Name] = r
	}
	fmt.Fprintf(out, "benchdiff (scale) %s -> %s (gated records fail past %+.0f%% ns/op)\n",
		oldPath, newPath, 100*threshold)
	ok := true
	for _, nr := range newRep.Results {
		or, found := oldBy[nr.Name]
		if !found {
			fmt.Fprintf(out, "  new   %-36s %14.0f ns/op\n", nr.Name, nr.NsPerOp)
			continue
		}
		delete(oldBy, nr.Name)
		if nr.NsPerOp == 0 && or.NsPerOp == 0 {
			continue // marker records (skipped stages) carry no timing
		}
		delta := frac(nr.NsPerOp, or.NsPerOp)
		status := "info"
		if nr.Gated && or.Gated {
			status = "ok"
			if delta > threshold {
				status = "FAIL"
				ok = false
			}
		}
		fmt.Fprintf(out, "  %-5s %-36s %12.0f -> %12.0f ns/op  %+7.1f%%\n",
			status, nr.Name, or.NsPerOp, nr.NsPerOp, 100*delta)
	}
	for name := range oldBy {
		fmt.Fprintf(out, "  gone  %s\n", name)
	}
	if !ok {
		fmt.Fprintln(out, "benchdiff: FAIL")
	}
	return ok, nil
}

func readScaleReport(path string) (*scaleReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep scaleReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

// runServeDiff gates a fresh serving report against the committed baseline:
// the warm-phase p50 must not grow past threshold, the zipf phase must
// uphold the coalescing invariant (unique computes only), and a stream
// section must clear the 2x incremental speedup gate with balanced
// accounting. With p99Threshold > 0 the warm-phase p99 gates too (opt-in,
// generous). Other phases are printed for context without gating.
func runServeDiff(out io.Writer, oldPath, newPath string, threshold, p99Threshold float64) (bool, error) {
	oldRep, err := readServeReport(oldPath)
	if err != nil {
		return false, err
	}
	newRep, err := readServeReport(newPath)
	if err != nil {
		return false, err
	}
	type p50p99 struct{ p50, p99 float64 }
	oldBy := make(map[string]p50p99, len(oldRep.Phases))
	for _, p := range oldRep.Phases {
		oldBy[p.Name] = p50p99{p.P50Ms, p.P99Ms}
	}
	if p99Threshold > 0 {
		fmt.Fprintf(out, "benchdiff (serving) %s -> %s (warm p50 fails past %+.0f%%, warm p99 past %+.0f%%)\n",
			oldPath, newPath, 100*threshold, 100*p99Threshold)
	} else {
		fmt.Fprintf(out, "benchdiff (serving) %s -> %s (warm p50 fails past %+.0f%%)\n",
			oldPath, newPath, 100*threshold)
	}
	ok := true
	for _, p := range newRep.Phases {
		old, found := oldBy[p.Name]
		if !found {
			fmt.Fprintf(out, "  new   %-8s p50 %10.3f ms  p99 %10.3f ms\n", p.Name, p.P50Ms, p.P99Ms)
			continue
		}
		delta := frac(p.P50Ms, old.p50)
		delta99 := frac(p.P99Ms, old.p99)
		status := "info"
		if p.Name == "warm" {
			status = "ok"
			if delta > threshold {
				status = "FAIL"
				ok = false
			}
			if p99Threshold > 0 && delta99 > p99Threshold {
				status = "FAIL"
				ok = false
			}
		}
		fmt.Fprintf(out, "  %-5s %-8s p50 %8.3f -> %8.3f ms  %+7.1f%%   p99 %8.3f -> %8.3f ms  %+7.1f%%\n",
			status, p.Name, old.p50, p.P50Ms, 100*delta, old.p99, p.P99Ms, 100*delta99)
	}
	if c := newRep.Cluster; c != nil {
		killed := ""
		if c.KilledNode != "" {
			killed = fmt.Sprintf(" (node %s killed mid-run)", c.KilledNode)
		}
		if c.Lost == 0 && c.InvariantOK {
			fmt.Fprintf(out, "  ok    cluster: 0 lost, %d retried, %d forwarded, accounting balanced%s\n",
				c.Retried, c.Forwarded, killed)
		} else {
			fmt.Fprintf(out, "  FAIL  cluster: %d lost, invariant_ok=%v%s\n", c.Lost, c.InvariantOK, killed)
			ok = false
		}
	}
	if r := newRep.Replica; r != nil {
		if r.OK && r.P2CP99Ms > 0 && r.P2CP99Ms <= r.SingleP99Ms {
			fmt.Fprintf(out, "  ok    replica: p2c p99 %.3f ms <= single-owner p99 %.3f ms (%d replica reads over %d forwards)\n",
				r.P2CP99Ms, r.SingleP99Ms, r.ReplicaReads, r.Requests)
		} else {
			fmt.Fprintf(out, "  FAIL  replica: p2c p99 %.3f ms vs single-owner p99 %.3f ms (ok=%v)\n",
				r.P2CP99Ms, r.SingleP99Ms, r.OK)
			ok = false
		}
	}
	if c := newRep.Churn; c != nil {
		if c.OK && c.Reconciled && c.Lost == 0 && c.WarmHitRate >= churnWarmHitGate {
			fmt.Fprintf(out, "  ok    churn: handoff %d sent == %d received, warm hit rate %.2f on %d moved keys, 0 lost\n",
				c.HandoffSent, c.HandoffReceived, c.WarmHitRate, c.MovedKeys)
		} else {
			fmt.Fprintf(out, "  FAIL  churn: reconciled=%v (sent=%d received=%d), warm_hit_rate=%.2f (gate %.2f), lost=%d\n",
				c.Reconciled, c.HandoffSent, c.HandoffReceived, c.WarmHitRate, churnWarmHitGate, c.Lost)
			ok = false
		}
	}
	if s := newRep.Stream; s != nil {
		if s.P50Speedup >= streamSpeedupGate && s.AccountingBalanced {
			fmt.Fprintf(out, "  ok    stream: %.1fx p50 speedup over one-shot (%d mutations, %d incremental), accounting balanced\n",
				s.P50Speedup, s.Mutations, s.IncrementalTotal)
		} else {
			fmt.Fprintf(out, "  FAIL  stream: %.1fx p50 speedup (gate %.0fx), accounting_balanced=%v\n",
				s.P50Speedup, streamSpeedupGate, s.AccountingBalanced)
			ok = false
		}
	}
	if z := newRep.Zipf; z != nil {
		if z.UniqueComputesOnly {
			fmt.Fprintf(out, "  ok    zipf coalescing: %d computes for %d distinct keys\n",
				z.Characterizations, z.DistinctRequested)
		} else {
			fmt.Fprintf(out, "  FAIL  zipf coalescing: %d computes for %d distinct keys (duplicates recomputed)\n",
				z.Characterizations, z.DistinctRequested)
			ok = false
		}
	}
	if !ok {
		fmt.Fprintln(out, "benchdiff: FAIL")
	}
	return ok, nil
}

func readServeReport(path string) (*serveReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep serveReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

func readBenchReport(path string) (*benchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep benchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}
