package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// runBenchDiff compares two benchmark reports and reports whether NEW is
// acceptable. It handles both report kinds this repo commits:
//
//   - kernel reports (cmd/hcbench -bench): a kernel regresses when its ns/op
//     or allocs/op grew by more than threshold (a fraction, e.g. 0.20 for
//     20%) relative to OLD. Kernels present in only one report are listed
//     but never fail the comparison — they are additions or retirements,
//     not regressions.
//   - serving reports (cmd/hcload, detected by a "phases" field): the gate
//     is the warm-phase p50 — the cached hot path, the serving tier's
//     steady state — plus the zipf section's coalescing invariant. Cold and
//     zipf latencies are listed for context but do not gate: they are
//     dominated by pipeline compute the kernel diff already covers.
//
// p99Threshold, when positive, additionally gates the warm-phase p99 of a
// serving report (the -gatep99 opt-in). Tail latency on a loaded box is far
// noisier than the median — one scheduler hiccup moves it severalfold — so
// the p99 gate is off by default and its threshold is generous; it exists to
// catch order-of-magnitude tail collapses, not percent-level drift. The p99
// columns are always printed for context either way.
//
// The boolean result is false when any regression was found.
func runBenchDiff(out io.Writer, oldPath, newPath string, threshold, p99Threshold float64) (bool, error) {
	oldServe, err := isServeReport(oldPath)
	if err != nil {
		return false, err
	}
	newServe, err := isServeReport(newPath)
	if err != nil {
		return false, err
	}
	if oldServe != newServe {
		return false, fmt.Errorf("mixed report kinds: %s and %s must both be kernel or both be serving reports", oldPath, newPath)
	}
	if oldServe {
		return runServeDiff(out, oldPath, newPath, threshold, p99Threshold)
	}
	oldRep, err := readBenchReport(oldPath)
	if err != nil {
		return false, err
	}
	newRep, err := readBenchReport(newPath)
	if err != nil {
		return false, err
	}
	oldBy := make(map[string]benchResult, len(oldRep.Results))
	for _, r := range oldRep.Results {
		oldBy[r.Name] = r
	}
	fmt.Fprintf(out, "benchdiff %s -> %s (fail past %+.0f%%)\n", oldPath, newPath, 100*threshold)
	ok := true
	for _, nr := range newRep.Results {
		or, found := oldBy[nr.Name]
		if !found {
			fmt.Fprintf(out, "  new   %-40s %12.0f ns/op %8d allocs/op\n", nr.Name, nr.NsPerOp, nr.AllocsPerOp)
			continue
		}
		delete(oldBy, nr.Name)
		nsDelta := frac(nr.NsPerOp, or.NsPerOp)
		allocDelta := frac(float64(nr.AllocsPerOp), float64(or.AllocsPerOp))
		status := "ok"
		if nsDelta > threshold || allocDelta > threshold {
			status = "FAIL"
			ok = false
		}
		fmt.Fprintf(out, "  %-5s %-40s ns/op %+7.1f%%  allocs/op %+7.1f%%\n",
			status, nr.Name, 100*nsDelta, 100*allocDelta)
	}
	for name := range oldBy {
		fmt.Fprintf(out, "  gone  %s\n", name)
	}
	if !ok {
		fmt.Fprintln(out, "benchdiff: FAIL")
	}
	return ok, nil
}

// frac is the fractional change from old to new; an old of zero (a kernel
// that never allocated, say) only regresses when new is nonzero.
func frac(new, old float64) float64 {
	if old == 0 {
		if new == 0 {
			return 0
		}
		return 1
	}
	return (new - old) / old
}

// serveReport is the slice of cmd/hcload's BENCH_serve.json that benchdiff
// gates on: per-phase p50 latencies and the zipf coalescing scorecard.
type serveReport struct {
	Phases []struct {
		Name  string  `json:"name"`
		P50Ms float64 `json:"p50_ms"`
		P99Ms float64 `json:"p99_ms"`
	} `json:"phases"`
	Zipf *struct {
		DistinctRequested  int    `json:"distinct_requested"`
		Characterizations  uint64 `json:"characterizations"`
		UniqueComputesOnly bool   `json:"unique_computes_only"`
	} `json:"zipf"`
}

// isServeReport sniffs the report kind: serving reports carry a "phases"
// array, kernel reports a "results" array.
func isServeReport(path string) (bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return false, err
	}
	var probe struct {
		Phases []json.RawMessage `json:"phases"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return false, fmt.Errorf("%s: %w", path, err)
	}
	return probe.Phases != nil, nil
}

// runServeDiff gates a fresh serving report against the committed baseline:
// the warm-phase p50 must not grow past threshold, and the zipf phase must
// uphold the coalescing invariant (unique computes only). With p99Threshold
// > 0 the warm-phase p99 gates too (opt-in, generous). Other phases are
// printed for context without gating.
func runServeDiff(out io.Writer, oldPath, newPath string, threshold, p99Threshold float64) (bool, error) {
	oldRep, err := readServeReport(oldPath)
	if err != nil {
		return false, err
	}
	newRep, err := readServeReport(newPath)
	if err != nil {
		return false, err
	}
	type p50p99 struct{ p50, p99 float64 }
	oldBy := make(map[string]p50p99, len(oldRep.Phases))
	for _, p := range oldRep.Phases {
		oldBy[p.Name] = p50p99{p.P50Ms, p.P99Ms}
	}
	if p99Threshold > 0 {
		fmt.Fprintf(out, "benchdiff (serving) %s -> %s (warm p50 fails past %+.0f%%, warm p99 past %+.0f%%)\n",
			oldPath, newPath, 100*threshold, 100*p99Threshold)
	} else {
		fmt.Fprintf(out, "benchdiff (serving) %s -> %s (warm p50 fails past %+.0f%%)\n",
			oldPath, newPath, 100*threshold)
	}
	ok := true
	for _, p := range newRep.Phases {
		old, found := oldBy[p.Name]
		if !found {
			fmt.Fprintf(out, "  new   %-8s p50 %10.3f ms  p99 %10.3f ms\n", p.Name, p.P50Ms, p.P99Ms)
			continue
		}
		delta := frac(p.P50Ms, old.p50)
		delta99 := frac(p.P99Ms, old.p99)
		status := "info"
		if p.Name == "warm" {
			status = "ok"
			if delta > threshold {
				status = "FAIL"
				ok = false
			}
			if p99Threshold > 0 && delta99 > p99Threshold {
				status = "FAIL"
				ok = false
			}
		}
		fmt.Fprintf(out, "  %-5s %-8s p50 %8.3f -> %8.3f ms  %+7.1f%%   p99 %8.3f -> %8.3f ms  %+7.1f%%\n",
			status, p.Name, old.p50, p.P50Ms, 100*delta, old.p99, p.P99Ms, 100*delta99)
	}
	if z := newRep.Zipf; z != nil {
		if z.UniqueComputesOnly {
			fmt.Fprintf(out, "  ok    zipf coalescing: %d computes for %d distinct keys\n",
				z.Characterizations, z.DistinctRequested)
		} else {
			fmt.Fprintf(out, "  FAIL  zipf coalescing: %d computes for %d distinct keys (duplicates recomputed)\n",
				z.Characterizations, z.DistinctRequested)
			ok = false
		}
	}
	if !ok {
		fmt.Fprintln(out, "benchdiff: FAIL")
	}
	return ok, nil
}

func readServeReport(path string) (*serveReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep serveReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

func readBenchReport(path string) (*benchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep benchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}
