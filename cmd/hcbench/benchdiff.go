package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// runBenchDiff compares two benchmark reports kernel by kernel and reports
// whether NEW is acceptable: a kernel regresses when its ns/op or allocs/op
// grew by more than threshold (a fraction, e.g. 0.20 for 20%) relative to
// OLD. Kernels present in only one report are listed but never fail the
// comparison — they are additions or retirements, not regressions. The
// boolean result is false when any regression was found.
func runBenchDiff(out io.Writer, oldPath, newPath string, threshold float64) (bool, error) {
	oldRep, err := readBenchReport(oldPath)
	if err != nil {
		return false, err
	}
	newRep, err := readBenchReport(newPath)
	if err != nil {
		return false, err
	}
	oldBy := make(map[string]benchResult, len(oldRep.Results))
	for _, r := range oldRep.Results {
		oldBy[r.Name] = r
	}
	fmt.Fprintf(out, "benchdiff %s -> %s (fail past %+.0f%%)\n", oldPath, newPath, 100*threshold)
	ok := true
	for _, nr := range newRep.Results {
		or, found := oldBy[nr.Name]
		if !found {
			fmt.Fprintf(out, "  new   %-40s %12.0f ns/op %8d allocs/op\n", nr.Name, nr.NsPerOp, nr.AllocsPerOp)
			continue
		}
		delete(oldBy, nr.Name)
		nsDelta := frac(nr.NsPerOp, or.NsPerOp)
		allocDelta := frac(float64(nr.AllocsPerOp), float64(or.AllocsPerOp))
		status := "ok"
		if nsDelta > threshold || allocDelta > threshold {
			status = "FAIL"
			ok = false
		}
		fmt.Fprintf(out, "  %-5s %-40s ns/op %+7.1f%%  allocs/op %+7.1f%%\n",
			status, nr.Name, 100*nsDelta, 100*allocDelta)
	}
	for name := range oldBy {
		fmt.Fprintf(out, "  gone  %s\n", name)
	}
	if !ok {
		fmt.Fprintln(out, "benchdiff: FAIL")
	}
	return ok, nil
}

// frac is the fractional change from old to new; an old of zero (a kernel
// that never allocated, say) only regresses when new is nonzero.
func frac(new, old float64) float64 {
	if old == 0 {
		if new == 0 {
			return 0
		}
		return 1
	}
	return (new - old) / old
}

func readBenchReport(path string) (*benchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep benchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}
