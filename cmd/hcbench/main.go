// Command hcbench regenerates every figure and worked example of the
// reproduced paper, plus the extension studies. With no arguments it runs
// the full suite; otherwise it runs the experiments named on the command
// line (FIG1..FIG8, EQ10, EX1..EX13).
//
// Usage:
//
//	hcbench [-list] [-md] [-parallel N] [experiment ...]
//	hcbench -bench BENCH_kernels.json
//
// Experiments run on the bounded worker pool of internal/parallel; -parallel
// sets the worker count (0 selects GOMAXPROCS, 1 forces the sequential
// path). Seeded sweeps produce identical tables at every worker count.
//
// The -cpuprofile, -memprofile and -trace flags capture the run with the
// standard Go profilers (go tool pprof / go tool trace); they compose with
// every mode, so a hot experiment or the -bench suite can be profiled
// directly.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/etcmat"
	"repro/internal/experiments"
	"repro/internal/gen"
	"repro/internal/linalg"
	"repro/internal/matrix"
	"repro/internal/profiling"
	"repro/internal/sinkhorn"
)

func main() {
	os.Exit(run())
}

// run holds the real main so profiling stops (and any other defers) execute
// before the process exits; os.Exit in main would skip them. code is a named
// return so the profiling defer can escalate a clean exit to a failure when
// the profile write itself fails.
func run() (code int) {
	list := flag.Bool("list", false, "list available experiments and exit")
	md := flag.Bool("md", false, "render tables as GitHub-flavored markdown")
	workers := flag.Int("parallel", 0, "experiment engine worker count (0 = GOMAXPROCS, 1 = sequential)")
	bench := flag.String("bench", "", "run the kernel/engine benchmarks and write JSON results to this file (\"-\" for stdout)")
	benchdiff := flag.Bool("benchdiff", false, "compare two benchmark JSON files (OLD NEW) and fail on regressions past -threshold")
	threshold := flag.Float64("threshold", 0.20, "benchdiff: fractional ns/op or allocs/op regression that fails the comparison")
	gateP99 := flag.Bool("gatep99", false, "benchdiff: additionally gate the serving report's warm p99 (opt-in; tails are noisy)")
	p99Threshold := flag.Float64("p99threshold", 3.0, "benchdiff: fractional warm-p99 regression that fails when -gatep99 is set")
	wirebench := flag.String("wirebench", "", "run the request-decode micro-benchmarks (stdlib JSON vs streaming vs binary) and merge a decode_bench section into this serving report file (\"-\" for stdout)")
	scalebench := flag.String("scalebench", "", "run the fleet-scale sweep (Gram, spectral, tiled balance, characterize, downdate) and write a scale report to this file (\"-\" for stdout)")
	scaleSizes := flag.String("sizes", "1000,4000,10000", "scalebench: comma-separated matrix edges to sweep")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	traceFile := flag.String("trace", "", "write a runtime execution trace to this file")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: hcbench [-list] [-md] [-parallel N] [experiment ...]\n")
		fmt.Fprintf(os.Stderr, "       hcbench -bench FILE\n")
		fmt.Fprintf(os.Stderr, "       hcbench -benchdiff [-threshold F] [-gatep99 [-p99threshold F]] OLD.json NEW.json\n")
		fmt.Fprintf(os.Stderr, "       hcbench -wirebench BENCH_serve.json\n")
		fmt.Fprintf(os.Stderr, "       hcbench -scalebench BENCH_scale.json [-sizes 1000,4000,10000]\n\n")
		fmt.Fprintf(os.Stderr, "Regenerates the paper's figures and the extension studies.\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	stopProfiling, err := profiling.Start(profiling.Config{
		CPUProfile: *cpuprofile,
		MemProfile: *memprofile,
		Trace:      *traceFile,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "hcbench: profiling: %v\n", err)
		return 2
	}
	defer func() {
		if err := stopProfiling(); err != nil {
			fmt.Fprintf(os.Stderr, "hcbench: profiling: %v\n", err)
			if code == 0 {
				code = 1
			}
		}
	}()

	if *benchdiff {
		if flag.NArg() != 2 {
			fmt.Fprintf(os.Stderr, "hcbench: -benchdiff needs exactly two files, got %d\n", flag.NArg())
			return 2
		}
		p99 := 0.0
		if *gateP99 {
			p99 = *p99Threshold
		}
		ok, err := runBenchDiff(os.Stdout, flag.Arg(0), flag.Arg(1), *threshold, p99)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hcbench: benchdiff: %v\n", err)
			return 2
		}
		if !ok {
			return 1
		}
		return 0
	}

	if *wirebench != "" {
		if err := runWireBench(*wirebench); err != nil {
			fmt.Fprintf(os.Stderr, "hcbench: wirebench: %v\n", err)
			return 1
		}
		return 0
	}

	if *scalebench != "" {
		if err := runScaleBench(*scalebench, *scaleSizes); err != nil {
			fmt.Fprintf(os.Stderr, "hcbench: scalebench: %v\n", err)
			return 1
		}
		return 0
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-5s %s\n", e.ID, e.Desc)
		}
		return 0
	}
	if *bench != "" {
		if err := runBenchmarks(*bench); err != nil {
			fmt.Fprintf(os.Stderr, "hcbench: bench: %v\n", err)
			return 1
		}
		return 0
	}

	selected := experiments.All()
	if args := flag.Args(); len(args) > 0 {
		selected = selected[:0]
		for _, id := range args {
			e, ok := experiments.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "hcbench: unknown experiment %q (use -list)\n", id)
				return 2
			}
			selected = append(selected, e)
		}
	}

	failed := false
	for _, r := range experiments.RunAll(context.Background(), selected, *workers) {
		if r.Err != nil {
			fmt.Fprintf(os.Stderr, "hcbench: %s: %v\n", r.ID, r.Err)
			failed = true
			continue
		}
		for _, tb := range r.Tables {
			render := tb.Render
			if *md {
				render = tb.RenderMarkdown
			}
			if err := render(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "hcbench: %s: render: %v\n", r.ID, err)
				failed = true
			}
		}
	}
	if failed {
		return 1
	}
	return 0
}

// benchResult is one machine-readable benchmark record. Each record carries
// the parallelism environment it was measured under, so records from reports
// taken on different machines (or GOMAXPROCS settings) stay interpretable
// when diffed side by side.
type benchResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	GoMaxProcs  int     `json:"gomaxprocs"`
	NumCPU      int     `json:"num_cpu"`
	// SpeedupVsSequential is set for parallel-engine entries: the sequential
	// wall-clock of the same workload divided by this entry's. Omitted when
	// GOMAXPROCS is 1 — the "parallel" run degenerates to the sequential path
	// and the ratio would only measure scheduling noise (Note says so).
	SpeedupVsSequential float64 `json:"speedup_vs_sequential,omitempty"`
	Note                string  `json:"note,omitempty"`
}

type benchReport struct {
	GoMaxProcs int           `json:"gomaxprocs"`
	NumCPU     int           `json:"num_cpu"`
	GoVersion  string        `json:"go_version"`
	Results    []benchResult `json:"results"`
}

// benchMatrix builds a reproducible strictly-positive t x m matrix.
func benchMatrix(t, m int, seed int64) *matrix.Dense {
	rng := rand.New(rand.NewSource(seed))
	a := matrix.New(t, m)
	for i := 0; i < t; i++ {
		for j := 0; j < m; j++ {
			a.Set(i, j, 0.1+rng.Float64()*10)
		}
	}
	return a
}

func record(name string, r testing.BenchmarkResult) benchResult {
	return benchResult{
		Name:        name,
		NsPerOp:     float64(r.NsPerOp()),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
	}
}

// runBenchmarks measures the numerical kernels and the experiment engine and
// writes the results as JSON. The engine is timed at one worker and at
// GOMAXPROCS workers over the same experiment subset, so the report carries
// an honest speedup number for the machine it ran on.
func runBenchmarks(path string) error {
	// Open the output first: the benchmarks take minutes, and a bad path
	// should fail before them, not after.
	out := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	report := benchReport{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
	}

	svdIn := benchMatrix(60, 40, 1)
	report.Results = append(report.Results, record("SVDJacobi/60x40",
		testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				linalg.SVDJacobi(svdIn)
			}
		})))
	report.Results = append(report.Results, record("SingularValues/spectral/60x40",
		testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			ws := linalg.NewWorkspace()
			var buf []float64
			for i := 0; i < b.N; i++ {
				buf = linalg.AppendSingularValues(buf[:0], svdIn, ws)
			}
		})))
	symIn := benchMatrix(48, 48, 2)
	sym := matrix.New(48, 48)
	for i := 0; i < 48; i++ {
		for j := 0; j < 48; j++ {
			sym.Set(i, j, (symIn.At(i, j)+symIn.At(j, i))/2)
		}
	}
	report.Results = append(report.Results, record("SymEigJacobi/48x48",
		testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				linalg.SymEigJacobi(sym)
			}
		})))
	report.Results = append(report.Results, record("SinkhornStandardize/60x40",
		testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sinkhorn.Standardize(svdIn); err != nil {
					b.Fatal(err)
				}
			}
		})))
	report.Results = append(report.Results, record("TMA/cold/16x8",
		testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			tmaIn := benchMatrix(16, 8, 3)
			for i := 0; i < b.N; i++ {
				env, err := etcmat.NewFromECS(tmaIn)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := core.TMA(env); err != nil {
					b.Fatal(err)
				}
			}
		})))
	// Cold TMA at the SVD benchmark shape: the production path (Gram +
	// tridiagonal QL inside the Env memo) against the same measure computed
	// through the full Jacobi SVD, which is what the seed paid per evaluation.
	report.Results = append(report.Results, record("TMA/cold/60x40",
		testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				env, err := etcmat.NewFromECS(svdIn)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := core.TMA(env); err != nil {
					b.Fatal(err)
				}
			}
		})))
	report.Results = append(report.Results, record("TMA/cold/60x40/jacobi-path",
		testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := sinkhorn.Standardize(svdIn)
				if err != nil {
					b.Fatal(err)
				}
				sv := linalg.SVDJacobi(res.Scaled).S
				sum := 0.0
				for _, s := range sv[1:] {
					sum += s
				}
				_ = sum / float64(len(sv)-1)
			}
		})))
	report.Results = append(report.Results, record("TMA/memoized/16x8",
		testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			env, err := etcmat.NewFromECS(benchMatrix(16, 8, 3))
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				if _, err := core.TMA(env); err != nil {
					b.Fatal(err)
				}
			}
		})))
	report.Results = append(report.Results, record("Generate/targeted/10x5",
		testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			rng := rand.New(rand.NewSource(4))
			for i := 0; i < b.N; i++ {
				if _, err := gen.Targeted(gen.Target{Tasks: 10, Machines: 5, MPH: 0.6, TDH: 0.8, TMA: 0.3}, rng); err != nil {
					b.Fatal(err)
				}
			}
		})))

	// Engine: the trial-sweep experiments, sequential vs full-width.
	suite := enginePool()
	engineBench := func(workers int) testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, r := range experiments.RunAll(context.Background(), suite, workers) {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			}
		})
	}
	seq := engineBench(1)
	par := engineBench(0)
	seqRec := record("ExperimentEngine/sequential", seq)
	parRec := record("ExperimentEngine/parallel", par)
	switch {
	case runtime.GOMAXPROCS(0) == 1:
		parRec.Note = "speedup_vs_sequential omitted: GOMAXPROCS=1, parallel run degenerates to the sequential path"
	case par.NsPerOp() > 0:
		parRec.SpeedupVsSequential = float64(seq.NsPerOp()) / float64(par.NsPerOp())
	}
	report.Results = append(report.Results, seqRec, parRec)

	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}

// enginePool picks the Monte Carlo sweep experiments — the ones whose trials
// actually fan out — for the engine benchmark.
func enginePool() []experiments.Experiment {
	var suite []experiments.Experiment
	for _, id := range []string{"EX1", "EX3", "EX6", "EX13"} {
		e, ok := experiments.ByID(id)
		if !ok {
			panic("hcbench: missing experiment " + id)
		}
		suite = append(suite, e)
	}
	return suite
}
