// Command hcbench regenerates every figure and worked example of the
// reproduced paper, plus the extension studies. With no arguments it runs
// the full suite; otherwise it runs the experiments named on the command
// line (FIG1..FIG8, EQ10, EX1..EX3).
//
// Usage:
//
//	hcbench [-list] [experiment ...]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list available experiments and exit")
	md := flag.Bool("md", false, "render tables as GitHub-flavored markdown")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: hcbench [-list] [-md] [experiment ...]\n\n")
		fmt.Fprintf(os.Stderr, "Regenerates the paper's figures and the extension studies.\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-5s %s\n", e.ID, e.Desc)
		}
		return
	}

	selected := experiments.All()
	if args := flag.Args(); len(args) > 0 {
		selected = selected[:0]
		for _, id := range args {
			e, ok := experiments.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "hcbench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	failed := false
	for _, e := range selected {
		tables, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "hcbench: %s: %v\n", e.ID, err)
			failed = true
			continue
		}
		for _, tb := range tables {
			render := tb.Render
			if *md {
				render = tb.RenderMarkdown
			}
			if err := render(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "hcbench: %s: render: %v\n", e.ID, err)
				failed = true
			}
		}
	}
	if failed {
		os.Exit(1)
	}
}
