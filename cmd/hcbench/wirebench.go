package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"

	"repro/internal/gen"
	"repro/internal/server"
	"repro/internal/wire"
)

// wireBenchShape is the decode micro-benchmark shape: the serving loadtest's
// standard 150x80 environment (~250 KB as JSON, ~94 KB as a binary frame).
const (
	wireBenchTasks    = 150
	wireBenchMachines = 80
)

// decodeBenchReport is the decode_bench section runWireBench merges into the
// serving report: one record per ingestion path, same body content.
type decodeBenchReport struct {
	Shape      string        `json:"shape"`
	JSONBytes  int           `json:"json_bytes"`
	WireBytes  int           `json:"wire_bytes"`
	GoMaxProcs int           `json:"gomaxprocs"`
	GoVersion  string        `json:"go_version"`
	Results    []benchResult `json:"results"`
}

// runWireBench measures the three ways a characterize body becomes a cache
// key — the old stdlib path (encoding/json into the DTO, full Env
// materialization), the streaming scanner, and the binary frame — and merges
// the results into the serving report at path (creating it if absent), so
// the decode numbers live next to the end-to-end latencies they explain.
func runWireBench(path string) error {
	rng := rand.New(rand.NewSource(1))
	env, err := gen.RangeBased(wireBenchTasks, wireBenchMachines, 100, 10, rng)
	if err != nil {
		return err
	}
	jsonBody, err := json.Marshal(server.EnvToDTO(env))
	if err != nil {
		return err
	}
	wireBody, err := wire.AppendMatrix(nil, env.ETC())
	if err != nil {
		return err
	}
	wantKey := env.ContentKey()

	rep := decodeBenchReport{
		Shape:      fmt.Sprintf("%dx%d", wireBenchTasks, wireBenchMachines),
		JSONBytes:  len(jsonBody),
		WireBytes:  len(wireBody),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
	}
	rep.Results = append(rep.Results, record("DecodeToKey/json-stdlib",
		testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var dto server.EnvDTO
				if err := json.Unmarshal(jsonBody, &dto); err != nil {
					b.Fatal(err)
				}
				e, err := dto.Env()
				if err != nil {
					b.Fatal(err)
				}
				if e.ContentKey() != wantKey {
					b.Fatal("stdlib path produced a different key")
				}
			}
		})))
	rep.Results = append(rep.Results, record("DecodeToKey/json-streaming",
		testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				k, err := server.DecodeEnvContentKey(jsonBody, "application/json")
				if err != nil {
					b.Fatal(err)
				}
				if k != wantKey {
					b.Fatal("streaming path produced a different key")
				}
			}
		})))
	rep.Results = append(rep.Results, record("DecodeToKey/binary",
		testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				k, err := server.DecodeEnvContentKey(wireBody, wire.ContentTypeMatrix)
				if err != nil {
					b.Fatal(err)
				}
				if k != wantKey {
					b.Fatal("binary path produced a different key")
				}
			}
		})))

	if path == "-" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	// Merge: keep every other field of an existing serving report intact.
	doc := map[string]json.RawMessage{}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &doc); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	section, err := json.Marshal(rep)
	if err != nil {
		return err
	}
	doc["decode_bench"] = section
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
