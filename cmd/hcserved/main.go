// Command hcserved is the long-running HTTP characterization service: the
// measures, generators and what-if studies of the library behind a JSON API
// with result caching, bounded admission, per-request timeouts, Prometheus
// metrics and graceful drain. See API.md for the wire contract.
//
// Usage:
//
//	hcserved [-addr :8080] [-workers N] [-queue N] [-cache N]
//	         [-timeout 30s] [-drain 15s] [-log text|json] [-pprof]
//	         [-cpuprofile FILE] [-memprofile FILE] [-trace FILE]
//	         [-peers host:port,...] [-node host:port] [-replicas R]
//	         [-vnodes N] [-hedge-min 2ms] [-hedge-max 250ms]
//	         [-suspect-after 2s] [-dead-after 6s] [-gossip 500ms]
//	         [-peer-inflight N] [-peer-queue N] [-handoff-budget N]
//
// SIGINT/SIGTERM starts a graceful shutdown: the listener closes, in-flight
// requests drain (up to -drain), then the process exits 0.
//
// -peers turns the instance into a cluster node (see API.md "Cluster mode"):
// content keys are placed on a consistent-hash ring across the peer set,
// non-owned keys forward to their owner over the binary wire format, and
// reads hedge to the next replica after a p99-derived delay. -node sets the
// advertised address when it differs from -addr (NAT, ":0" binds advertise
// the bound address automatically). A node with -peers and no live peer
// still serves standalone — forwarding degrades to local compute.
//
// -pprof mounts net/http/pprof under /debug/pprof/ on the serving mux for
// live inspection; it is off by default because it exposes process
// internals. The -cpuprofile/-memprofile/-trace flags instead capture the
// whole process lifetime to files, written at shutdown — useful for load
// tests where the interesting window is the entire run.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/profiling"
	"repro/internal/server"
)

func main() {
	os.Exit(run())
}

// run holds the real main so the deferred profiling stop runs before the
// process exits (os.Exit skips defers). code is a named return so that
// defer can escalate a clean shutdown to a failure if a profile write fails.
func run() (code int) {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "concurrent characterizations (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 64, "admission queue depth before shedding 429s")
	cache := flag.Int("cache", 1024, "profile cache capacity in entries (0 disables)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request deadline (0 disables)")
	drain := flag.Duration("drain", 15*time.Second, "graceful-shutdown drain budget")
	logFormat := flag.String("log", "text", "log format: text or json")
	enablePprof := flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/ (exposes process internals)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file at shutdown")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at shutdown")
	traceFile := flag.String("trace", "", "write a runtime execution trace of the whole run to this file")
	peers := flag.String("peers", "", "comma-separated seed peers (host:port); enables cluster mode")
	node := flag.String("node", "", "advertised cluster address (default: the bound -addr)")
	replicas := flag.Int("replicas", cluster.DefaultReplicas, "cluster replication factor R")
	vnodes := flag.Int("vnodes", cluster.DefaultVirtualNodes, "virtual nodes per cluster member")
	hedgeMin := flag.Duration("hedge-min", 2*time.Millisecond, "hedge delay floor")
	hedgeMax := flag.Duration("hedge-max", 250*time.Millisecond, "hedge delay ceiling (and cold-start delay)")
	suspectAfter := flag.Duration("suspect-after", 2*time.Second, "silence before a peer turns suspect")
	deadAfter := flag.Duration("dead-after", 6*time.Second, "silence before a peer leaves the ring")
	gossip := flag.Duration("gossip", 500*time.Millisecond, "membership gossip interval")
	peerInflight := flag.Int("peer-inflight", 0, "max in-flight forwards per peer (0 = default)")
	peerQueue := flag.Int("peer-queue", 0, "max forwards queued per peer before shedding to local compute (0 = default)")
	handoffBudget := flag.Int("handoff-budget", 0, "hottest cache entries streamed to new owners on a ring change (0 = default, negative disables)")
	maxStreams := flag.Int("max-streams", 64, "concurrently live /v1/stream sessions before 503 session_limit (negative disables the endpoint)")
	streamIdle := flag.Duration("stream-idle", 2*time.Minute, "stream-session idle eviction timeout (negative disables eviction)")
	flag.Parse()

	var handler slog.Handler
	switch *logFormat {
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	default:
		fmt.Fprintf(os.Stderr, "hcserved: -log must be text or json, got %q\n", *logFormat)
		return 2
	}
	log := slog.New(handler)

	stopProfiling, err := profiling.Start(profiling.Config{
		CPUProfile: *cpuprofile,
		MemProfile: *memprofile,
		Trace:      *traceFile,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "hcserved: profiling: %v\n", err)
		return 2
	}
	defer func() {
		if err := stopProfiling(); err != nil {
			log.Error("profiling stop", "err", err)
			if code == 0 {
				code = 1
			}
		}
	}()

	cfg := server.Config{
		Addr:              *addr,
		Workers:           *workers,
		QueueDepth:        *queue,
		CacheSize:         *cache,
		RequestTimeout:    *timeout,
		DrainTimeout:      *drain,
		Logger:            log,
		EnablePprof:       *enablePprof,
		MaxStreamSessions: *maxStreams,
		StreamIdleTimeout: *streamIdle,
	}
	if *peers != "" {
		var seedList []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				seedList = append(seedList, p)
			}
		}
		cfg.Cluster = &cluster.Config{
			Self:            *node,
			Peers:           seedList,
			Replicas:        *replicas,
			VirtualNodes:    *vnodes,
			HedgeDelayMin:   *hedgeMin,
			HedgeDelayMax:   *hedgeMax,
			SuspectAfter:    *suspectAfter,
			DeadAfter:       *deadAfter,
			GossipInterval:  *gossip,
			MaxPeerInflight: *peerInflight,
			MaxPeerQueue:    *peerQueue,
			HandoffBudget:   *handoffBudget,
			Logger:          log,
		}
	}
	srv := server.New(cfg)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := srv.Run(ctx); err != nil {
		log.Error("hcserved exiting", "err", err)
		return 1
	}
	return 0
}
