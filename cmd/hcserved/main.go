// Command hcserved is the long-running HTTP characterization service: the
// measures, generators and what-if studies of the library behind a JSON API
// with result caching, bounded admission, per-request timeouts, Prometheus
// metrics and graceful drain. See API.md for the wire contract.
//
// Usage:
//
//	hcserved [-addr :8080] [-workers N] [-queue N] [-cache N]
//	         [-timeout 30s] [-drain 15s] [-log text|json]
//
// SIGINT/SIGTERM starts a graceful shutdown: the listener closes, in-flight
// requests drain (up to -drain), then the process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "concurrent characterizations (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 64, "admission queue depth before shedding 429s")
	cache := flag.Int("cache", 1024, "profile cache capacity in entries (0 disables)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request deadline (0 disables)")
	drain := flag.Duration("drain", 15*time.Second, "graceful-shutdown drain budget")
	logFormat := flag.String("log", "text", "log format: text or json")
	flag.Parse()

	var handler slog.Handler
	switch *logFormat {
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	default:
		fmt.Fprintf(os.Stderr, "hcserved: -log must be text or json, got %q\n", *logFormat)
		os.Exit(2)
	}
	log := slog.New(handler)

	srv := server.New(server.Config{
		Addr:           *addr,
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheSize:      *cache,
		RequestTimeout: *timeout,
		DrainTimeout:   *drain,
		Logger:         log,
	})

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := srv.Run(ctx); err != nil {
		log.Error("hcserved exiting", "err", err)
		os.Exit(1)
	}
}
