// Command hcmeasure computes the paper's heterogeneity measures for an ETC
// matrix supplied as CSV (header of machine names with a leading task
// column; "inf" marks an impossible pairing).
//
// Usage:
//
//	hcmeasure [-json] [file.csv]
//
// Reads standard input when no file is given.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/hetero"
)

func main() {
	asJSON := flag.Bool("json", false, "emit the profile as JSON")
	groups := flag.Int("groups", 0, "also report K affinity groups (task/machine specialization sets)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: hcmeasure [-json] [-groups K] [file.csv]\n\n")
		fmt.Fprintf(os.Stderr, "Computes MPH, TDH and TMA for an ETC matrix in CSV form.\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	var in io.Reader = os.Stdin
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	} else if flag.NArg() > 1 {
		flag.Usage()
		os.Exit(2)
	}

	env, err := hetero.ReadETCCSV(in)
	if err != nil {
		fatal(err)
	}
	p := hetero.Characterize(env)

	if *asJSON {
		out := map[string]any{
			"tasks":    p.Tasks,
			"machines": p.Machines,
			"mph":      p.MPH,
			"tdh":      p.TDH,
			"ratioR":   p.RatioR,
			"geoMeanG": p.GeoMeanG,
			"cov":      p.COV,
		}
		if p.TMAErr != nil {
			out["tmaError"] = p.TMAErr.Error()
		} else {
			out["tma"] = p.TMA
			out["sinkhornIterations"] = p.SinkhornIterations
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
		return
	}

	fmt.Printf("environment: %d task types x %d machines\n", p.Tasks, p.Machines)
	fmt.Printf("MPH (machine performance homogeneity): %.4f\n", p.MPH)
	fmt.Printf("TDH (task difficulty homogeneity):     %.4f\n", p.TDH)
	if p.TMAErr != nil {
		fmt.Printf("TMA (task-machine affinity):           n/a — %v\n", p.TMAErr)
	} else {
		fmt.Printf("TMA (task-machine affinity):           %.4f  (standardized in %d iterations)\n",
			p.TMA, p.SinkhornIterations)
	}
	fmt.Printf("comparison measures: R=%.4f G=%.4f COV=%.4f\n", p.RatioR, p.GeoMeanG, p.COV)
	fmt.Printf("machine performances: %s\n", formatVec(p.MachinePerf))
	fmt.Printf("task difficulties:    %s\n", formatVec(p.TaskDiff))

	if *groups > 0 {
		g, err := hetero.FindAffinityGroups(env, *groups, 1)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hcmeasure: affinity groups: %v\n", err)
			return
		}
		fmt.Printf("\naffinity groups (k=%d):\n", g.K)
		tasks, machines := env.TaskNames(), env.MachineNames()
		for c := 0; c < g.K; c++ {
			var ms, ts []string
			for j, grp := range g.MachineGroup {
				if grp == c {
					ms = append(ms, machines[j])
				}
			}
			for i, grp := range g.TaskGroup {
				if grp == c {
					ts = append(ts, tasks[i])
				}
			}
			fmt.Printf("  group %d: machines %v <- tasks %v\n", c, ms, ts)
		}
	}
}

func formatVec(v []float64) string {
	s := "["
	for i, x := range v {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%.4g", x)
	}
	return s + "]"
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "hcmeasure: %v\n", err)
	os.Exit(1)
}
