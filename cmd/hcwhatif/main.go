// Command hcwhatif runs what-if studies on an ETC environment: how do the
// heterogeneity measures move when each task type or machine is removed?
// This is one of the applications the reproduced paper motivates its
// measures with.
//
// Usage:
//
//	hcwhatif [file.csv]       # leave-one-out over tasks and machines
//	hcwhatif -spec cint       # run on the built-in SPEC-derived datasets
//
// Reads standard input when no file or -spec is given.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"

	"repro/hetero"
)

func main() {
	specName := flag.String("spec", "", "use a built-in dataset: cint or cfp")
	sens := flag.Int("sens", 0, "also print the N most influential task-machine pairings per measure")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: hcwhatif [-spec cint|cfp] [-sens N] [file.csv]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	var env *hetero.Env
	switch {
	case *specName == "cint":
		env = hetero.SPECCINT2006Rate()
	case *specName == "cfp":
		env = hetero.SPECCFP2006Rate()
	case *specName != "":
		fmt.Fprintf(os.Stderr, "hcwhatif: unknown dataset %q\n", *specName)
		os.Exit(2)
	default:
		var in io.Reader = os.Stdin
		if flag.NArg() == 1 {
			f, err := os.Open(flag.Arg(0))
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			in = f
		}
		var err error
		env, err = hetero.ReadETCCSV(in)
		if err != nil {
			fatal(err)
		}
	}

	base, deltas := hetero.LeaveOneOut(env)
	fmt.Printf("baseline (%d tasks x %d machines): MPH=%.4f TDH=%.4f TMA=%s\n\n",
		base.Tasks, base.Machines, base.MPH, base.TDH, tmaStr(base))

	for _, kind := range []string{"machine", "task"} {
		fmt.Printf("remove %s:\n", kind)
		for _, d := range deltas {
			if d.Kind != kind {
				continue
			}
			if d.Err != nil {
				fmt.Printf("  %-20s (cannot remove: %v)\n", d.Name, d.Err)
				continue
			}
			dtma := "n/a"
			if !math.IsNaN(d.DTMA) {
				dtma = fmt.Sprintf("%+.4f", d.DTMA)
			}
			fmt.Printf("  %-20s MPH %+.4f  TDH %+.4f  TMA %s\n", d.Name, d.DMPH, d.DTDH, dtma)
		}
		fmt.Println()
	}

	if *sens > 0 {
		printSensitivities(env, *sens)
	}
}

// printSensitivities lists the N largest-magnitude entrywise gradients of
// each measure.
func printSensitivities(env *hetero.Env, n int) {
	s, err := hetero.Sensitivities(env, 0)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hcwhatif: sensitivities: %v\n", err)
		return
	}
	tasks, machines := env.TaskNames(), env.MachineNames()
	type entry struct {
		task, machine string
		value         float64
	}
	top := func(m *hetero.Matrix) []entry {
		var all []entry
		for i := 0; i < m.Rows(); i++ {
			for j := 0; j < m.Cols(); j++ {
				all = append(all, entry{tasks[i], machines[j], m.At(i, j)})
			}
		}
		sort.Slice(all, func(a, b int) bool {
			return math.Abs(all[a].value) > math.Abs(all[b].value)
		})
		if len(all) > n {
			all = all[:n]
		}
		return all
	}
	for _, block := range []struct {
		name string
		m    *hetero.Matrix
	}{{"MPH", s.DMPH}, {"TDH", s.DTDH}, {"TMA", s.DTMA}} {
		fmt.Printf("most influential pairings for %s (d measure / d log ECS):\n", block.name)
		for _, e := range top(block.m) {
			fmt.Printf("  %-18s on %-6s %+.5f\n", e.task, e.machine, e.value)
		}
		fmt.Println()
	}
}

func tmaStr(p *hetero.Profile) string {
	if p.TMAErr != nil {
		return "n/a"
	}
	return fmt.Sprintf("%.4f", p.TMA)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "hcwhatif: %v\n", err)
	os.Exit(1)
}
