// Command hcgen generates synthetic ETC environments and writes them as CSV.
//
// Three methods are supported:
//
//	hcgen -method targeted -tasks 12 -machines 5 -mph 0.8 -tdh 0.9 -tma 0.1
//	hcgen -method range    -tasks 12 -machines 5 -rtask 100 -rmach 10
//	hcgen -method cvb      -tasks 12 -machines 5 -vtask 0.6 -vmach 0.3 -mu 500
//
// The targeted method hits the requested MPH/TDH exactly and TMA within
// tolerance; range and cvb are the classic Ali et al. generators.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/hetero"
)

func main() {
	var (
		method   = flag.String("method", "targeted", "generator: targeted, range or cvb")
		tasks    = flag.Int("tasks", 12, "number of task types")
		machines = flag.Int("machines", 5, "number of machines")
		seed     = flag.Int64("seed", 1, "RNG seed")
		mph      = flag.Float64("mph", 0.8, "targeted: machine performance homogeneity in (0,1]")
		tdh      = flag.Float64("tdh", 0.9, "targeted: task difficulty homogeneity in (0,1]")
		tma      = flag.Float64("tma", 0.1, "targeted: task-machine affinity in [0,1)")
		rTask    = flag.Float64("rtask", 100, "range: task range (>= 1)")
		rMach    = flag.Float64("rmach", 10, "range: machine range (>= 1)")
		vTask    = flag.Float64("vtask", 0.6, "cvb: task COV")
		vMach    = flag.Float64("vmach", 0.3, "cvb: machine COV")
		mu       = flag.Float64("mu", 500, "cvb: mean task execution time")
		report   = flag.Bool("report", false, "also print the achieved profile to stderr")
	)
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	var target hetero.GenerateTarget
	switch *method {
	case "targeted":
		target = hetero.TargetedTarget(*tasks, *machines, *mph, *tdh, *tma, 0)
	case "range":
		target = hetero.RangeTarget(*tasks, *machines, *rTask, *rMach)
	case "cvb":
		target = hetero.CVBTarget(*tasks, *machines, *vTask, *vMach, *mu)
	default:
		fmt.Fprintf(os.Stderr, "hcgen: unknown method %q (targeted, range, cvb)\n", *method)
		os.Exit(2)
	}
	g, err := hetero.Generate(target, rng)
	if err != nil {
		fatal(err)
	}

	if *report {
		p := g.Achieved
		fmt.Fprintf(os.Stderr, "achieved: MPH=%.4f TDH=%.4f TMA=%.4f\n", p.MPH, p.TDH, p.TMA)
	}
	if err := g.Env.WriteETCCSV(os.Stdout); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "hcgen: %v\n", err)
	os.Exit(1)
}
