package hetero_test

import (
	"context"
	"io"
	"log/slog"
	"math"
	"net/http/httptest"
	"testing"

	"repro/hetero"
	"repro/internal/server"
)

// TestOpenStreamFacade drives a full session through the public facade
// against a live server: open, three mutations, close — and checks the final
// streamed profile matches a cold characterization of the same environment.
func TestOpenStreamFacade(t *testing.T) {
	srv := server.New(server.Config{
		Logger: slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	env, err := hetero.FromETC([][]float64{
		{10, 20, 40},
		{15, 12, 30},
		{25, 50, 9},
	})
	if err != nil {
		t.Fatal(err)
	}
	sess, open, err := hetero.OpenStream(context.Background(), nil, ts.URL, env, 0)
	if err != nil {
		t.Fatal(err)
	}
	if open.Profile == nil || open.Seq != 0 {
		t.Fatalf("open update: profile=%v seq=%d", open.Profile, open.Seq)
	}
	if _, err := sess.AddTask("extra", []float64{0.05, 0.02, 0.01}); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.SetCell(0, 1, 0.08); err != nil {
		t.Fatal(err)
	}
	last, err := sess.SetWeights([]float64{1, 2, 1, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if last.Error != nil {
		t.Fatalf("weights rejected: %s", last.Error.Message)
	}
	summary, err := sess.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !summary.Closed || summary.IncrementalTotal+summary.RecomputedTotal != 3 {
		t.Fatalf("close summary: %+v", summary)
	}

	// Rebuild the mutated environment cold and compare headline measures.
	cold, err := hetero.FromECS([][]float64{
		{1.0 / 10, 0.08, 1.0 / 40},
		{1.0 / 15, 1.0 / 12, 1.0 / 30},
		{1.0 / 25, 1.0 / 50, 1.0 / 9},
		{0.05, 0.02, 0.01},
	})
	if err != nil {
		t.Fatal(err)
	}
	cold, err = cold.WithWeights([]float64{1, 2, 1, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := hetero.Characterize(cold)
	if last.Profile == nil {
		t.Fatal("final update carries no profile")
	}
	if math.Abs(last.Profile.MPH-p.MPH) > 1e-12 || math.Abs(last.Profile.TDH-p.TDH) > 1e-12 {
		t.Errorf("streamed MPH/TDH (%g, %g) diverge from cold (%g, %g)",
			last.Profile.MPH, last.Profile.TDH, p.MPH, p.TDH)
	}
	if last.Profile.TMA != nil && !math.IsNaN(p.TMA) {
		if math.Abs(*last.Profile.TMA-p.TMA) > 1e-9 {
			t.Errorf("streamed TMA %g, cold %g", *last.Profile.TMA, p.TMA)
		}
	}
}
