package hetero_test

import (
	"fmt"
	"math/rand"

	"repro/hetero"
)

// The basic workflow: build an environment from ETC times and characterize
// it.
func ExampleCharacterize() {
	env, err := hetero.FromETC([][]float64{
		{2, 4},
		{6, 3},
	})
	if err != nil {
		panic(err)
	}
	p := hetero.Characterize(env)
	fmt.Printf("MPH=%.2f TDH=%.2f TMA=%.2f\n", p.MPH, p.TDH, p.TMA)
	// Output: MPH=0.87 TDH=0.67 TMA=0.33
}

// Machine performances are weighted ECS column sums (paper Eq. 4).
func ExampleMachinePerformances() {
	env, err := hetero.FromECS([][]float64{
		{2, 3, 8},
		{6, 5, 7},
		{4, 2, 9},
		{5, 1, 6},
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(hetero.MachinePerformances(env))
	// Output: [17 11 30]
}

// A rank-one environment has no task-machine affinity: every machine ranks
// every task type identically.
func ExampleTMA() {
	env, err := hetero.FromECS([][]float64{
		{1, 2, 3},
		{2, 4, 6},
	})
	if err != nil {
		panic(err)
	}
	r, err := hetero.TMA(env)
	if err != nil {
		panic(err)
	}
	fmt.Printf("TMA=%.4f sigma1=%.4f\n", r.TMA, r.SingularValues[0])
	// Output: TMA=0.0000 sigma1=1.0000
}

// The targeted generator dials the three measures independently.
func ExampleGenerate() {
	g, err := hetero.Generate(hetero.TargetedTarget(8, 4, 0.5, 0.75, 0.25, 0),
		rand.New(rand.NewSource(42)))
	if err != nil {
		panic(err)
	}
	fmt.Printf("MPH=%.2f TDH=%.2f TMA=%.2f\n", g.Achieved.MPH, g.Achieved.TDH, g.Achieved.TMA)
	// Output: MPH=0.50 TDH=0.75 TMA=0.25
}

// Standardization drives rows and columns to the Theorem 1 targets.
func ExampleStandardize() {
	env, err := hetero.FromECS([][]float64{
		{1, 5},
		{4, 2},
	})
	if err != nil {
		panic(err)
	}
	res, err := hetero.Standardize(env.ECS())
	if err != nil {
		panic(err)
	}
	fmt.Printf("converged=%v rows sum to %.4f\n", res.Converged, res.Scaled.RowSum(0))
	// Output: converged=true rows sum to 1.0000
}
