package hetero_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/hetero"
)

// Exercise every facade wrapper end to end so the public API surface stays
// wired to the internals.
func TestFacadeSurface(t *testing.T) {
	env := hetero.SPECCINT2006Rate()

	t.Run("angles", func(t *testing.T) {
		angles := hetero.ColumnAngles(env)
		if r, c := angles.Dims(); r != 5 || c != 5 {
			t.Errorf("ColumnAngles dims %dx%d", r, c)
		}
		mean := hetero.MeanColumnAngle(env)
		if mean <= 0 || mean > math.Pi/2 {
			t.Errorf("MeanColumnAngle = %g", mean)
		}
	})

	t.Run("tiling", func(t *testing.T) {
		direct, err := hetero.Standardize(env.ECS())
		if err != nil {
			t.Fatal(err)
		}
		tiled, err := hetero.StandardizeViaTiling(env.ECS())
		if err != nil {
			t.Fatal(err)
		}
		diff := 0.0
		for i := 0; i < direct.Scaled.Rows(); i++ {
			for j := 0; j < direct.Scaled.Cols(); j++ {
				if d := math.Abs(direct.Scaled.At(i, j) - tiled.Scaled.At(i, j)); d > diff {
					diff = d
				}
			}
		}
		if diff > 1e-6 {
			t.Errorf("tiling and direct standard forms differ by %g", diff)
		}
	})

	t.Run("affinity groups", func(t *testing.T) {
		g, err := hetero.FindAffinityGroups(env, 2, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(g.MachineGroup) != env.Machines() || len(g.TaskGroup) != env.Tasks() {
			t.Errorf("group lengths wrong: %d/%d", len(g.MachineGroup), len(g.TaskGroup))
		}
	})

	t.Run("consistency", func(t *testing.T) {
		cons, err := hetero.WithConsistency(env, hetero.Consistent)
		if err != nil {
			t.Fatal(err)
		}
		if !hetero.IsConsistent(cons) {
			t.Error("WithConsistency(Consistent) not consistent")
		}
		if hetero.IsConsistent(env) {
			t.Skip("calibrated dataset unexpectedly consistent")
		}
		same, err := hetero.WithConsistency(env, hetero.Inconsistent)
		if err != nil || same != env {
			t.Errorf("Inconsistent should be a no-op: %v", err)
		}
	})

	t.Run("leave one out", func(t *testing.T) {
		base, deltas := hetero.LeaveOneOut(env)
		if base.TMAErr != nil {
			t.Fatal(base.TMAErr)
		}
		if len(deltas) != env.Tasks()+env.Machines() {
			t.Errorf("got %d deltas", len(deltas))
		}
	})

	t.Run("sensitivities", func(t *testing.T) {
		small, err := hetero.FromECS([][]float64{{1, 2}, {3, 1}})
		if err != nil {
			t.Fatal(err)
		}
		s, err := hetero.Sensitivities(small, 0)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(s.DMPH.Sum()) > 1e-4 {
			t.Errorf("MPH gradient not null along scaling: %g", s.DMPH.Sum())
		}
	})

	t.Run("search heuristics", func(t *testing.T) {
		hs := hetero.SearchHeuristics(3)
		if len(hs) != 2 {
			t.Fatalf("got %d search heuristics", len(hs))
		}
		in, err := hetero.Workload(env, 2, rand.New(rand.NewSource(4)))
		if err != nil {
			t.Fatal(err)
		}
		for _, h := range hs {
			s, err := h.Map(in)
			if err != nil {
				t.Fatalf("%s: %v", h.Name(), err)
			}
			if s.Makespan <= 0 {
				t.Errorf("%s makespan %g", h.Name(), s.Makespan)
			}
			if im := s.Imbalance(); im < 0 || im >= 1 {
				t.Errorf("%s imbalance %g", h.Name(), im)
			}
			r, err := hetero.RobustnessRadius(in, s, 1.2)
			if err != nil {
				t.Fatalf("%s robustness: %v", h.Name(), err)
			}
			if r.Min < 0 {
				t.Errorf("%s robustness %g", h.Name(), r.Min)
			}
		}
	})

	t.Run("dynamic simulation", func(t *testing.T) {
		w, err := hetero.PoissonWorkload(env, 100, 0.01, rand.New(rand.NewSource(6)))
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range hetero.DynamicPolicies() {
			res, err := hetero.Simulate(env, w, p, rand.New(rand.NewSource(7)))
			if err != nil {
				t.Fatalf("%s: %v", p.Name(), err)
			}
			if res.Completed != 100 {
				t.Errorf("%s completed %d", p.Name(), res.Completed)
			}
		}
		batch, err := hetero.SimulateBatch(env, w, 100, rand.New(rand.NewSource(8)))
		if err != nil {
			t.Fatal(err)
		}
		if batch.Completed != 100 || batch.MappingEvents < 1 {
			t.Errorf("batch: completed %d, events %d", batch.Completed, batch.MappingEvents)
		}
	})

	t.Run("cluster ring", func(t *testing.T) {
		ring := hetero.NewRing(2, 0)
		for _, n := range []string{"a:1", "b:1", "c:1"} {
			ring.Add(n)
		}
		owners := hetero.EnvOwners(ring, env)
		if len(owners) != 2 {
			t.Fatalf("EnvOwners returned %d nodes, want R=2", len(owners))
		}
		if owners[0] == owners[1] {
			t.Errorf("replica set has duplicate node %q", owners[0])
		}
		before := owners[0]
		// Removing a non-owner must not move the primary (consistent hashing).
		for _, n := range []string{"a:1", "b:1", "c:1"} {
			if n != owners[0] && n != owners[1] {
				ring.Remove(n)
			}
		}
		if got := hetero.EnvOwners(ring, env)[0]; got != before {
			t.Errorf("primary moved from %q to %q on unrelated removal", before, got)
		}
	})

	t.Run("cluster churn", func(t *testing.T) {
		mkRing := func(nodes ...string) *hetero.Ring {
			r := hetero.NewRing(2, 0)
			for _, n := range nodes {
				r.Add(n)
			}
			return r
		}
		beforeRing := mkRing("a:1", "b:1", "c:1")
		afterRing := mkRing("a:1", "b:1", "c:1", "d:1")
		fresh := hetero.EnvNewOwners(beforeRing, afterRing, env)
		owners := hetero.EnvOwners(afterRing, env)
		for _, f := range fresh {
			found := false
			for _, o := range owners {
				if o == f {
					found = true
				}
			}
			if !found {
				t.Errorf("fresh owner %q is not an owner on the after ring", f)
			}
			for _, o := range hetero.EnvOwners(beforeRing, env) {
				if o == f {
					t.Errorf("fresh owner %q already owned env before the change", f)
				}
			}
		}
		if got := hetero.EnvNewOwners(beforeRing, beforeRing, env); got != nil {
			t.Errorf("unchanged ring reported fresh owners %v", got)
		}
	})
}
