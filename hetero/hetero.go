// Package hetero is the public API of this repository: a library for
// characterizing task-machine affinity and heterogeneity in heterogeneous
// computing (HC) environments, reproducing
//
//	A. M. Al-Qawasmeh, A. A. Maciejewski, R. G. Roberts, H. J. Siegel,
//	"Characterizing Task-Machine Affinity in Heterogeneous Computing
//	Environments", IEEE IPDPS 2011.
//
// An HC environment is an ETC matrix — entry (i, j) is the estimated time to
// compute task type i on machine j — or equivalently its reciprocal ECS
// (speed) matrix. The package computes the paper's three independent
// heterogeneity measures:
//
//   - MPH, machine performance homogeneity: how evenly machine performances
//     (weighted ECS column sums) are spread;
//   - TDH, task difficulty homogeneity: how evenly task difficulties
//     (weighted ECS row sums) are spread;
//   - TMA, task-machine affinity: how much different task sets prefer
//     different machine sets, measured as the mean non-maximum singular
//     value of the Sinkhorn-standardized ECS matrix.
//
// and provides the supporting machinery: standard-form normalization,
// scalability diagnostics, ETC generators (range-based, CVB and
// measure-targeted), the SPEC-derived example environments of the paper's
// Section V, and a suite of classic mapping heuristics for heterogeneity-
// aware scheduling studies.
//
// # Quick start
//
//	env, err := hetero.FromETC([][]float64{
//		{10.2, 13.1, 9.5},
//		{44.0, 12.9, 30.1},
//	})
//	if err != nil { ... }
//	p := hetero.Characterize(env)
//	fmt.Printf("MPH=%.3f TDH=%.3f TMA=%.3f\n", p.MPH, p.TDH, p.TMA)
//
// See the examples directory for runnable programs.
package hetero

import (
	"context"
	"io"
	"math/rand"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dynsim"
	"repro/internal/etcmat"
	"repro/internal/gen"
	"repro/internal/matrix"
	"repro/internal/parallel"
	"repro/internal/sched"
	"repro/internal/sinkhorn"
	"repro/internal/spec"
	"repro/internal/wire"
)

// Env is a heterogeneous computing environment: an ETC/ECS matrix with task
// and machine names and optional weighting factors. Envs are immutable;
// editing methods return new values.
type Env = etcmat.Env

// Profile is a full heterogeneity characterization: the three paper measures
// MPH, TDH and TMA, the comparison measures R, G and COV, the raw machine
// performance and task difficulty vectors, and standardization diagnostics.
type Profile = core.Profile

// TMAResult carries the affinity value with its singular values and
// normalization diagnostics.
type TMAResult = core.TMAResult

// Matrix is the dense matrix type used for ETC/ECS data.
type Matrix = matrix.Dense

// FromETC builds an environment from estimated-time-to-compute rows (one row
// per task type, one column per machine). Use math.Inf(1) for a task type
// that cannot run on a machine.
func FromETC(rows [][]float64) (*Env, error) {
	return etcmat.NewFromETC(matrix.FromRows(rows))
}

// FromECS builds an environment from estimated-computation-speed rows (the
// entrywise reciprocal of ETC; 0 marks a task type that cannot run).
func FromECS(rows [][]float64) (*Env, error) {
	return etcmat.NewFromECS(matrix.FromRows(rows))
}

// ReadETCCSV parses an environment from CSV: a header of machine names with
// a leading task-name column, then one row per task type ("inf" marks an
// impossible pairing).
func ReadETCCSV(r io.Reader) (*Env, error) { return etcmat.ReadETCCSV(r) }

// AppendEnvBinary appends the environment's ETC matrix as one binary wire
// frame (the application/x-hc-matrix format the serving tier ingests; see
// API.md §Binary wire format) and returns the extended buffer. Frames are
// self-delimiting, so repeated appends build a valid batch body.
//
// Only the matrix crosses the wire: names and weights are not part of the
// frame (the measures ignore names; clients needing weights use JSON).
func AppendEnvBinary(dst []byte, env *Env) ([]byte, error) {
	return wire.AppendMatrix(dst, env.ETC())
}

// DecodeEnvBinary decodes one binary matrix frame from data into an
// environment, returning the bytes consumed so concatenated frames compose.
func DecodeEnvBinary(data []byte) (*Env, int, error) {
	m, n, err := wire.DecodeMatrix(data)
	if err != nil {
		return nil, 0, err
	}
	env, err := etcmat.NewFromETC(m)
	if err != nil {
		return nil, 0, err
	}
	return env, n, nil
}

// EnvContentKey returns the environment's canonical content address: the
// SHA-256 the serving tier keys its result cache on. Two environments share
// a key exactly when they agree on dimensions, ECS entries and weights
// (names are excluded — the measures ignore them).
func EnvContentKey(env *Env) [32]byte { return env.ContentKey() }

// Ring is the consistent-hash placement ring the serving cluster shards
// environments with (see DESIGN.md §15): each node contributes virtual
// points on a uint64 circle, and an environment is owned by the first R
// distinct nodes clockwise from its content key. Adding or removing a node
// moves only the keys adjacent to its points, so a cluster resizes without
// re-keying every cache.
type Ring = cluster.Ring

// NewRing builds an empty placement ring with the given replication factor
// and virtual-node count per member (<=0 selects the cluster defaults: R=2,
// 64 virtual nodes). Populate it with Ring.Add.
func NewRing(replicas, virtualNodes int) *Ring { return cluster.NewRing(replicas, virtualNodes) }

// EnvOwners returns the nodes responsible for an environment on a ring — the
// replica set a cluster-mode hcserved routes the characterization to. Empty
// until the ring has members.
func EnvOwners(ring *Ring, env *Env) []string { return ring.Owners(env.ContentKey()) }

// EnvNewOwners returns the nodes that newly own env when the placement moves
// from the before ring to the after ring — the replicas a topology change
// leaves cold unless the cluster's cache handoff (DESIGN.md §17) warms them.
// Clients planning a resize can pre-warm exactly these nodes and nothing
// else; an unchanged owner set returns nil.
func EnvNewOwners(before, after *Ring, env *Env) []string {
	return cluster.NewOwners(before, after, env.ContentKey())
}

// Characterize computes the environment's full heterogeneity profile. It
// never fails: a non-standardizable environment (paper Sec. VI) yields
// TMA = NaN with the reason in Profile.TMAErr, and every other field stays
// valid. Callers that prefer an error to a NaN field should use Measures.
func Characterize(env *Env) *Profile { return core.Characterize(env) }

// Measures is the error-returning characterization: the same Profile as
// Characterize, but a pipeline failure comes back as an error instead of a
// NaN field to inspect. The sum-based measures — MPH, TDH and the Figure 2
// comparison measures — never fail on a valid Env, so a non-nil error always
// means the TMA standardization stage (core.ErrNotStandardizable).
func Measures(env *Env) (*Profile, error) { return core.Measures(env) }

// CharacterizeMany profiles a batch of environments on a bounded worker pool
// (workers <= 0 selects GOMAXPROCS) and returns the profiles in input order.
// Characterization is read-only per environment — each Env caches its own
// standard form and SVD — so the batch scales with cores; a nil Env yields a
// nil Profile.
func CharacterizeMany(envs []*Env, workers int) []*Profile {
	// Characterize never fails (TMA errors land in Profile.TMAErr), so the
	// error path is unreachable with a background context.
	out, _ := CharacterizeManyCtx(context.Background(), envs, workers)
	return out
}

// CharacterizeManyCtx is CharacterizeMany with cancellation: when ctx is
// canceled (a serving deadline, an abandoned batch request), environments
// not yet claimed by a worker are skipped — their profiles stay nil — and
// the context error is returned. Profiles computed before the cancellation
// are kept, so callers may use the partial result alongside the error.
func CharacterizeManyCtx(ctx context.Context, envs []*Env, workers int) ([]*Profile, error) {
	return parallel.Map(ctx, len(envs), workers,
		func(ctx context.Context, i int) (*Profile, error) {
			if envs[i] == nil {
				return nil, nil
			}
			return core.CharacterizeCtx(ctx, envs[i]), nil
		})
}

// MPH returns the machine performance homogeneity in (0, 1].
func MPH(env *Env) float64 { return core.MPH(env) }

// TDH returns the task difficulty homogeneity in (0, 1].
func TDH(env *Env) float64 { return core.TDH(env) }

// TMA returns the task-machine affinity in [0, 1] with diagnostics, or
// core.ErrNotStandardizable when the ECS matrix cannot be put in standard
// form (paper Sec. VI).
func TMA(env *Env) (*TMAResult, error) { return core.TMA(env) }

// MachinePerformances returns the weighted ECS column sums (paper Eq. 4).
func MachinePerformances(env *Env) []float64 { return core.MachinePerformances(env) }

// Delta is one leave-one-out measure shift; see LeaveOneOut.
type Delta = core.Delta

// LeaveOneOut computes the measure deltas from removing each machine and
// each task type in turn — the paper's what-if application as a library call.
func LeaveOneOut(env *Env) (*Profile, []Delta) { return core.LeaveOneOut(env) }

// Sensitivity holds entrywise gradients of the measures; see Sensitivities.
type Sensitivity = core.Sensitivity

// Sensitivities computes finite-difference gradients of MPH, TDH and TMA
// with respect to relative changes of each ECS entry.
func Sensitivities(env *Env, h float64) (*Sensitivity, error) { return core.Sensitivities(env, h) }

// TaskDifficulties returns the weighted ECS row sums (paper Eq. 6).
func TaskDifficulties(env *Env) []float64 { return core.TaskDifficulties(env) }

// Standardize puts a nonnegative matrix in the paper's standard form (rows
// summing to √(M/T), columns to √(T/M), largest singular value 1).
func Standardize(a *Matrix) (*sinkhorn.Result, error) { return sinkhorn.Standardize(a) }

// WarmStart carries the converged scaling vectors (and optionally the
// subdominant singular value σ₂) of a previous standardization, to seed a run
// on a nearby matrix: what-if edits, percent-level perturbations, adjacent
// sweep points. The standard form reached is identical to a cold start —
// the scaling is unique (paper Theorem 1) — in a fraction of the iterations.
// Obtain one from Env.StandardFormSeed and attach it with
// Env.WithStandardFormSeed; Characterize, TMA and LeaveOneOut consume it
// transparently.
type WarmStart = sinkhorn.WarmStart

// StandardizeWarm is Standardize seeded with the scaling vectors of a
// previous run on a nearby matrix (see WarmStart). A nil warm start is
// exactly Standardize.
func StandardizeWarm(a *Matrix, warm *WarmStart) (*sinkhorn.Result, error) {
	return sinkhorn.StandardizeWarmWS(a, warm, nil)
}

// StandardizeViaTiling standardizes a strictly positive matrix through the
// paper's Appendix A square-tiling construction; it produces the same
// standard form as Standardize and exists as an independent cross-check.
func StandardizeViaTiling(a *Matrix) (*sinkhorn.Result, error) {
	return sinkhorn.StandardizeViaTiling(a)
}

// ColumnAngles returns the pairwise angles (radians) between the weighted
// ECS columns — the geometric view of affinity from the paper's Sec. II-E.
func ColumnAngles(env *Env) *Matrix { return core.ColumnAngles(env) }

// MeanColumnAngle summarizes ColumnAngles as a single scalar in [0, π/2].
func MeanColumnAngle(env *Env) float64 { return core.MeanColumnAngle(env) }

// AffinityGroups is a task/machine specialization partition; see
// FindAffinityGroups.
type AffinityGroups = core.AffinityGroups

// FindAffinityGroups clusters tasks and machines into k specialization
// groups using the singular vectors of the standard-form ECS matrix — it
// recovers the structure TMA measures the strength of.
func FindAffinityGroups(env *Env, k int, seed int64) (*AffinityGroups, error) {
	return core.FindAffinityGroups(env, k, seed)
}

// GenerateTarget selects an ETC generator together with its parameters: the
// classic range-based and CVB methods of Ali et al., or this repository's
// measure-targeted construction. Build one with RangeTarget, CVBTarget or
// TargetedTarget and pass it to Generate; the zero value is invalid.
type GenerateTarget = gen.Spec

// RangeTarget requests a range-based environment:
// ETC(i,j) = U[1,rTask] · U[1,rMach]. Larger ranges mean more heterogeneity.
func RangeTarget(tasks, machines int, rTask, rMach float64) GenerateTarget {
	return gen.RangeSpec(tasks, machines, rTask, rMach)
}

// CVBTarget requests a coefficient-of-variation-based environment
// (gamma-distributed task baselines and machine speeds) with task COV vTask,
// machine COV vMach and mean task execution time muTask.
func CVBTarget(tasks, machines int, vTask, vMach, muTask float64) GenerateTarget {
	return gen.CVBSpec(tasks, machines, vTask, vMach, muTask)
}

// TargetedTarget requests an environment whose MPH and TDH hit the given
// values exactly and whose TMA lands within tol (0 selects the default
// 1e-3) — the "span the entire range of heterogeneities" application from
// the paper's introduction.
func TargetedTarget(tasks, machines int, mph, tdh, tma, tol float64) GenerateTarget {
	return gen.TargetedSpec(gen.Target{
		Tasks: tasks, Machines: machines,
		MPH: mph, TDH: tdh, TMA: tma, Tol: tol,
	})
}

// Generate produces an environment from the target spec. Every generator
// returns the same shape — the environment plus the heterogeneity profile it
// achieved — so sweeps record what a parameter choice actually produced
// regardless of method. Generated.Mix is meaningful only for targeted specs.
func Generate(target GenerateTarget, rng *rand.Rand) (*gen.Generated, error) {
	return gen.Generate(target, rng)
}

// Consistency is the Braun et al. ETC taxonomy (consistent, semi-consistent,
// inconsistent), which TMA quantifies.
type Consistency = gen.Consistency

// Consistency classes for WithConsistency.
const (
	Inconsistent   = gen.Inconsistent
	Consistent     = gen.Consistent
	SemiConsistent = gen.SemiConsistent
)

// WithConsistency rearranges an environment's ETC rows into the requested
// consistency class without changing the per-task value distributions.
func WithConsistency(env *Env, c Consistency) (*Env, error) { return gen.WithConsistency(env, c) }

// IsConsistent reports whether every task type ranks the machines
// identically.
func IsConsistent(env *Env) bool { return gen.IsConsistent(env) }

// SPECCINT2006Rate returns the paper's Section V integer-suite environment
// (12 task types x 5 machines), synthesized and calibrated to the published
// measures (TDH 0.90, MPH 0.82, TMA 0.07). See DESIGN.md for the
// substitution rationale.
func SPECCINT2006Rate() *Env { return spec.CINT2006Rate() }

// SPECCFP2006Rate returns the paper's Section V floating-point-suite
// environment (17 task types x 5 machines; TDH 0.91, MPH 0.83, TMA above the
// integer suite's).
func SPECCFP2006Rate() *Env { return spec.CFP2006Rate() }

// Schedule is a mapping produced by a heuristic, with makespan and flowtime.
type Schedule = sched.Schedule

// Heuristic is a static independent-task mapping algorithm.
type Heuristic = sched.Heuristic

// Heuristics returns the fast mapping-heuristic suite (OLB, MET, MCT,
// KPB, Min-Min, Max-Min, Sufferage, Duplex).
func Heuristics() []Heuristic { return sched.All() }

// SearchHeuristics returns the search-based mappers (genetic algorithm and
// simulated annealing, both seeded with Min-Min) with default parameters and
// the given seed.
func SearchHeuristics(seed int64) []Heuristic {
	return []Heuristic{sched.GA{Seed: seed}, sched.SA{Seed: seed}}
}

// Workload expands an environment into a task-instance mapping problem with
// perType instances of every task type, shuffled by rng if non-nil.
func Workload(env *Env, perType int, rng *rand.Rand) (*sched.Instance, error) {
	return sched.UniformWorkload(env, perType, rng)
}

// RunHeuristics maps the instance with every heuristic (All if hs is nil).
func RunHeuristics(in *sched.Instance, hs []Heuristic) ([]*Schedule, error) {
	return sched.RunAll(in, hs)
}

// Robustness is the estimation-error tolerance of a schedule; see
// RobustnessRadius.
type Robustness = sched.Robustness

// RobustnessRadius computes how much collective ETC estimation error a
// schedule absorbs before its makespan exceeds tau times the estimate
// (the FePIA-style robustness radius of the paper's research group).
func RobustnessRadius(in *sched.Instance, s *Schedule, tau float64) (*Robustness, error) {
	return sched.RobustnessRadius(in, s, tau)
}

// Arrival is one dynamic task arrival; see Simulate.
type Arrival = dynsim.Arrival

// DynamicPolicy is an immediate-mode online mapping rule (MCT, MET, OLB,
// KPB, Random).
type DynamicPolicy = dynsim.Policy

// DynamicPolicies returns the immediate-mode policy suite for Simulate.
func DynamicPolicies() []DynamicPolicy { return dynsim.Policies() }

// PoissonWorkload draws n Poisson arrivals at the given rate, with task
// types drawn proportionally to the environment's task weights.
func PoissonWorkload(env *Env, n int, rate float64, rng *rand.Rand) (dynsim.Workload, error) {
	return dynsim.PoissonWorkload(env, n, rate, rng)
}

// Simulate runs a dynamic workload through an immediate-mode policy
// (discrete-event, FIFO machine queues) and reports response-time and
// utilization statistics.
func Simulate(env *Env, w dynsim.Workload, p DynamicPolicy, rng *rand.Rand) (*dynsim.Result, error) {
	return dynsim.Simulate(env, w, p, rng)
}

// SimulateBatch runs the workload in batch mode: arrivals pool until a
// mapping event every interval time units, then the whole unstarted backlog
// is (re-)mapped with Min-Min. Batch mode overtakes immediate mode as load
// grows.
func SimulateBatch(env *Env, w dynsim.Workload, interval float64, rng *rand.Rand) (*dynsim.BatchResult, error) {
	return dynsim.SimulateBatch(env, w, interval, rng)
}
