package hetero_test

import (
	"context"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/hetero"
)

func TestQuickstartFlow(t *testing.T) {
	env, err := hetero.FromETC([][]float64{
		{10.2, 13.1, 9.5},
		{44.0, 12.9, 30.1},
	})
	if err != nil {
		t.Fatal(err)
	}
	p := hetero.Characterize(env)
	if p.TMAErr != nil {
		t.Fatal(p.TMAErr)
	}
	if !(p.MPH > 0 && p.MPH <= 1 && p.TDH > 0 && p.TDH <= 1 && p.TMA >= 0 && p.TMA <= 1) {
		t.Errorf("profile out of range: %v", p)
	}
}

func TestFromECSAndMeasures(t *testing.T) {
	env, err := hetero.FromECS([][]float64{{1, 1}, {1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if got := hetero.MPH(env); got != 1 {
		t.Errorf("MPH = %g, want 1", got)
	}
	if got := hetero.TDH(env); got != 1 {
		t.Errorf("TDH = %g, want 1", got)
	}
	r, err := hetero.TMA(env)
	if err != nil {
		t.Fatal(err)
	}
	if r.TMA != 0 {
		t.Errorf("TMA = %g, want 0", r.TMA)
	}
}

func TestReadETCCSV(t *testing.T) {
	env, err := hetero.ReadETCCSV(strings.NewReader("task,m1,m2\ngcc,10,20\nmcf,30,15\n"))
	if err != nil {
		t.Fatal(err)
	}
	if env.Tasks() != 2 || env.Machines() != 2 {
		t.Errorf("dims = %dx%d", env.Tasks(), env.Machines())
	}
	mp := hetero.MachinePerformances(env)
	want := 1.0/10 + 1.0/30
	if math.Abs(mp[0]-want) > 1e-12 {
		t.Errorf("MP[0] = %g, want %g", mp[0], want)
	}
	if td := hetero.TaskDifficulties(env); len(td) != 2 {
		t.Errorf("TD = %v", td)
	}
}

func TestStandardizeFacade(t *testing.T) {
	env, _ := hetero.FromECS([][]float64{{1, 2}, {3, 4}})
	res, err := hetero.Standardize(env.ECS())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("standardization did not converge")
	}
}

func TestGenerateFacade(t *testing.T) {
	g, err := hetero.Generate(hetero.TargetedTarget(8, 4, 0.7, 0.8, 0.2, 0),
		rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g.Achieved.MPH-0.7) > 1e-6 {
		t.Errorf("achieved MPH %g", g.Achieved.MPH)
	}
}

func TestGeneratorFacades(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if g, err := hetero.Generate(hetero.RangeTarget(5, 3, 10, 10), rng); err != nil {
		t.Error(err)
	} else if g.Env.Tasks() != 5 || g.Env.Machines() != 3 {
		t.Errorf("range-based shape %dx%d", g.Env.Tasks(), g.Env.Machines())
	}
	if g, err := hetero.Generate(hetero.CVBTarget(5, 3, 0.5, 0.5, 100), rng); err != nil {
		t.Error(err)
	} else if g.Env.Tasks() != 5 || g.Env.Machines() != 3 {
		t.Errorf("CVB shape %dx%d", g.Env.Tasks(), g.Env.Machines())
	}
}

func TestGenerateUnifiedEntry(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, target := range []hetero.GenerateTarget{
		hetero.RangeTarget(5, 3, 10, 10),
		hetero.CVBTarget(5, 3, 0.5, 0.5, 100),
		hetero.TargetedTarget(5, 3, 0.7, 0.8, 0.1, 0),
	} {
		g, err := hetero.Generate(target, rng)
		if err != nil {
			t.Fatalf("Generate(%s): %v", target.Kind(), err)
		}
		if g.Env == nil || g.Achieved == nil {
			t.Fatalf("Generate(%s): missing Env or Achieved profile", target.Kind())
		}
		if g.Achieved.TMAErr != nil {
			t.Errorf("Generate(%s): achieved profile has TMA error %v", target.Kind(), g.Achieved.TMAErr)
		}
	}
	// The zero target never comes from a constructor and must be rejected.
	if _, err := hetero.Generate(hetero.GenerateTarget{}, rng); err == nil {
		t.Error("Generate(zero target): want error, got nil")
	}
}

func TestMeasuresFacade(t *testing.T) {
	env, err := hetero.FromECS([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	p, err := hetero.Measures(env)
	if err != nil {
		t.Fatal(err)
	}
	want := hetero.Characterize(env)
	if p.MPH != want.MPH || p.TDH != want.TDH || p.TMA != want.TMA {
		t.Errorf("Measures profile %v differs from Characterize %v", p, want)
	}
	// A zero pattern with no positive diagonal (paper Sec. VI) is not
	// standardizable: Measures must surface that as an error, not a NaN.
	bad, err := hetero.FromECS([][]float64{{1, 0, 0}, {0, 1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hetero.Measures(bad); err == nil {
		t.Error("Measures(decomposable): want error, got nil")
	}
}

func TestSPECFacades(t *testing.T) {
	if env := hetero.SPECCINT2006Rate(); env.Tasks() != 12 {
		t.Errorf("CINT tasks = %d", env.Tasks())
	}
	if env := hetero.SPECCFP2006Rate(); env.Tasks() != 17 {
		t.Errorf("CFP tasks = %d", env.Tasks())
	}
}

func TestSchedulingFacade(t *testing.T) {
	env := hetero.SPECCINT2006Rate()
	in, err := hetero.Workload(env, 3, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	schedules, err := hetero.RunHeuristics(in, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(schedules) != len(hetero.Heuristics()) {
		t.Errorf("got %d schedules", len(schedules))
	}
	for _, s := range schedules {
		if s.Makespan <= 0 {
			t.Errorf("%s: makespan %g", s.Heuristic, s.Makespan)
		}
	}
}

func TestCharacterizeMany(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var envs []*hetero.Env
	for i := 0; i < 12; i++ {
		g, err := hetero.Generate(hetero.RangeTarget(8, 4, 50, 10), rng)
		if err != nil {
			t.Fatal(err)
		}
		envs = append(envs, g.Env)
	}
	envs = append(envs, nil)
	seq := hetero.CharacterizeMany(envs, 1)
	par := hetero.CharacterizeMany(envs, 8)
	if len(seq) != len(envs) || len(par) != len(envs) {
		t.Fatalf("batch lengths %d/%d, want %d", len(seq), len(par), len(envs))
	}
	if seq[len(envs)-1] != nil || par[len(envs)-1] != nil {
		t.Fatal("nil Env must yield a nil Profile")
	}
	for i := 0; i < len(envs)-1; i++ {
		one := hetero.Characterize(envs[i])
		for name, pair := range map[string][2]float64{
			"MPH": {seq[i].MPH, one.MPH},
			"TDH": {seq[i].TDH, one.TDH},
			"TMA": {seq[i].TMA, one.TMA},
		} {
			if pair[0] != pair[1] {
				t.Errorf("env %d: batch %s = %v, single = %v", i, name, pair[0], pair[1])
			}
		}
		if seq[i].TMA != par[i].TMA || seq[i].MPH != par[i].MPH || seq[i].TDH != par[i].TDH {
			t.Errorf("env %d: parallel batch diverges from sequential batch", i)
		}
	}
}

func TestCharacterizeManyCtx(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var envs []*hetero.Env
	for i := 0; i < 6; i++ {
		g, err := hetero.Generate(hetero.RangeTarget(6, 3, 50, 10), rng)
		if err != nil {
			t.Fatal(err)
		}
		envs = append(envs, g.Env)
	}

	t.Run("matches CharacterizeMany", func(t *testing.T) {
		got, err := hetero.CharacterizeManyCtx(context.Background(), envs, 4)
		if err != nil {
			t.Fatal(err)
		}
		want := hetero.CharacterizeMany(envs, 4)
		for i := range envs {
			if got[i].MPH != want[i].MPH || got[i].TDH != want[i].TDH || got[i].TMA != want[i].TMA {
				t.Errorf("env %d: ctx batch diverges from plain batch", i)
			}
		}
	})

	t.Run("canceled context skips remaining work", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		got, err := hetero.CharacterizeManyCtx(ctx, envs, 2)
		if err == nil {
			t.Fatal("want a context error from a pre-canceled batch")
		}
		if len(got) != len(envs) {
			t.Fatalf("result length %d, want %d (partial results keep input shape)", len(got), len(envs))
		}
		for i, p := range got {
			if p != nil {
				t.Errorf("env %d: profile computed despite pre-canceled context", i)
			}
		}
	})
}
