package hetero

import (
	"context"
	"net/http"

	"repro/internal/server"
)

// StreamSession is a live streaming characterization session against an
// hcserved instance (POST /v1/stream, API v1.2): the environment lives
// server-side in a mutable incremental solver, each mutation method sends one
// NDJSON op line and returns the updated profile, and most small edits are
// answered from a warm-started solve instead of a cold characterization. A
// session is an ordered conversation — drive it from one goroutine and Close
// it when done so the server can release the slot.
type StreamSession = server.StreamClient

// StreamUpdate is one response of a stream session: the profile after an open
// or mutation (with its incremental flag), an in-stream error, or the close
// summary with the session's incremental/recomputed totals.
type StreamUpdate = server.StreamUpdate

// OpenStream opens a streaming characterization session for env against an
// hcserved base URL (e.g. "http://host:port") and returns the session
// together with the opening cold profile. httpClient may be nil for
// http.DefaultClient; driftTol <= 0 selects the server's default re-anchoring
// drift tolerance. The returned session's AddTask, AddMachine, DropTask,
// DropMachine, SetCell and SetWeights methods mutate the server-side
// environment and return the re-characterized profile; see API.md
// §Streaming sessions for the wire protocol.
func OpenStream(ctx context.Context, httpClient *http.Client, baseURL string,
	env *Env, driftTol float64) (*StreamSession, *StreamUpdate, error) {
	return server.OpenStreamSession(ctx, httpClient, baseURL, server.EnvToDTO(env), driftTol)
}
