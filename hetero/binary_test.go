package hetero_test

import (
	"math"
	"testing"

	"repro/hetero"
)

// TestEnvBinaryRoundTrip: encode → decode preserves the ETC matrix bit-for-
// bit, including impossible pairings, and the content key is stable across
// the trip (names and weights do not cross the wire, and do not affect it).
func TestEnvBinaryRoundTrip(t *testing.T) {
	env, err := hetero.FromETC([][]float64{
		{10.2, math.Inf(1), 9.5},
		{44.0, 12.9, 30.1},
	})
	if err != nil {
		t.Fatal(err)
	}
	buf, err := hetero.AppendEnvBinary(nil, env)
	if err != nil {
		t.Fatal(err)
	}
	back, n, err := hetero.DecodeEnvBinary(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Errorf("consumed %d of %d bytes", n, len(buf))
	}
	if back.Tasks() != 2 || back.Machines() != 3 {
		t.Fatalf("decoded shape %dx%d, want 2x3", back.Tasks(), back.Machines())
	}
	etc, backETC := env.ETC(), back.ETC()
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if math.Float64bits(etc.At(i, j)) != math.Float64bits(backETC.At(i, j)) {
				t.Errorf("ETC(%d,%d) = %g, want %g", i, j, backETC.At(i, j), etc.At(i, j))
			}
		}
	}
	if hetero.EnvContentKey(back) != hetero.EnvContentKey(env) {
		t.Error("content key changed across the wire")
	}
	// The decoded environment characterizes identically.
	if p, q := hetero.Characterize(env), hetero.Characterize(back); p.MPH != q.MPH || p.TDH != q.TDH {
		t.Error("round-tripped environment characterizes differently")
	}
}

// TestEnvBinaryConcatenation: appended frames decode back in order.
func TestEnvBinaryConcatenation(t *testing.T) {
	a, err := hetero.FromETC([][]float64{{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := hetero.FromETC([][]float64{{3}, {4}})
	if err != nil {
		t.Fatal(err)
	}
	buf, err := hetero.AppendEnvBinary(nil, a)
	if err != nil {
		t.Fatal(err)
	}
	if buf, err = hetero.AppendEnvBinary(buf, b); err != nil {
		t.Fatal(err)
	}
	ga, n, err := hetero.DecodeEnvBinary(buf)
	if err != nil {
		t.Fatal(err)
	}
	gb, n2, err := hetero.DecodeEnvBinary(buf[n:])
	if err != nil {
		t.Fatal(err)
	}
	if n+n2 != len(buf) {
		t.Errorf("frames consumed %d+%d of %d bytes", n, n2, len(buf))
	}
	if ga.Machines() != 2 || gb.Tasks() != 2 {
		t.Errorf("decoded shapes %dx%d and %dx%d, want 1x2 and 2x1",
			ga.Tasks(), ga.Machines(), gb.Tasks(), gb.Machines())
	}
}

// TestEnvContentKeySemantics: the key tracks hashed content (cells, shape,
// weights) and ignores names.
func TestEnvContentKeySemantics(t *testing.T) {
	env, err := hetero.FromETC([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	base := hetero.EnvContentKey(env)

	named, err := env.WithTaskNames([]string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if hetero.EnvContentKey(named) != base {
		t.Error("names changed the content key; the measures ignore them")
	}
	weighted, err := env.WithWeights([]float64{2, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if hetero.EnvContentKey(weighted) == base {
		t.Error("weights did not change the content key; the measures use them")
	}
	other, err := hetero.FromETC([][]float64{{1, 2}, {3, 5}})
	if err != nil {
		t.Fatal(err)
	}
	if hetero.EnvContentKey(other) == base {
		t.Error("different cells collided")
	}
}
