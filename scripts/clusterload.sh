#!/usr/bin/env bash
# Regenerate the serving benchmark report end to end (see API.md "Load
# testing"):
#
#   1. classic single-node suite against a standalone hcserved
#      (same settings as the committed baseline: -queue 8, -c 4 -n 300,
#      150x80 matrices, 96-way surge),
#   2. decode micro-benchmarks merged in via hcbench -wirebench,
#   3. the 3-node cluster suite — cold/warm phases, the replica-read phases
#      (hot-primary antagonist, single-owner vs p2c tails), the churn phases
#      (a 4th node joins, handoff reconciles, warm-probe, SIGTERM leave),
#      then the mid-run SIGTERM of node 2 — its phases and the `cluster`,
#      `replica` and `churn` sections grafted onto the same report via
#      hcload -merge.
#
# Everything runs on loopback ports 18080-18084; all servers are torn down
# on exit. Output path: $1 or $LOAD_OUT or BENCH_serve.json.
#
#   make clusterload                 # refresh BENCH_serve.json in place
#   scripts/clusterload.sh new.json  # write elsewhere, e.g. for benchdiff
set -euo pipefail

cd "$(dirname "$0")/.."

OUT=${1:-${LOAD_OUT:-BENCH_serve.json}}
BIN=$(mktemp -d)
PIDS=()

cleanup() {
  for pid in "${PIDS[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
  rm -rf "$BIN"
}
trap cleanup EXIT

echo "clusterload: building binaries"
go build -o "$BIN/hcserved" ./cmd/hcserved
go build -o "$BIN/hcload" ./cmd/hcload
go build -o "$BIN/hcbench" ./cmd/hcbench

# --- 1. classic single-node suite -----------------------------------------
echo "clusterload: single-node suite -> $OUT"
"$BIN/hcserved" -addr 127.0.0.1:18080 -queue 8 &
PIDS+=($!)
"$BIN/hcload" -url http://127.0.0.1:18080 -c 4 -n 300 -tasks 150 -machines 80 \
  -seed 1 -surge 96 -out "$OUT"
kill "${PIDS[0]}" 2>/dev/null || true
wait "${PIDS[0]}" 2>/dev/null || true

# --- 2. decode micro-benchmarks -------------------------------------------
echo "clusterload: decode micro-benchmarks"
"$BIN/hcbench" -wirebench "$OUT"

# --- 3. cluster suite ------------------------------------------------------
# Three nodes, cross-seeded so any node bootstraps the membership, plus a
# 4th standalone joiner for the churn phases (it self-seeds: cluster mode
# mounts, the ring stays solo until hcload announces it). Fast
# failure-detector timings so the SIGTERMed nodes leave the ring within
# their phases rather than minutes later; a roomy cache and handoff budget
# so the churn warm-probe measures handoff coverage, not LRU eviction under
# the replica phases' antagonist traffic.
CLUSTER_FLAGS=(-replicas 2 -suspect-after 500ms -dead-after 1500ms -gossip 100ms
  -cache 4096 -handoff-budget 2048)
N1=127.0.0.1:18081 N2=127.0.0.1:18082 N3=127.0.0.1:18083 N4=127.0.0.1:18084
echo "clusterload: starting 3-node cluster on $N1 $N2 $N3 (joiner $N4)"
"$BIN/hcserved" -addr "$N1" -peers "$N2,$N3" "${CLUSTER_FLAGS[@]}" &
PIDS+=($!)
"$BIN/hcserved" -addr "$N2" -peers "$N1,$N3" "${CLUSTER_FLAGS[@]}" &
PIDS+=($!)
"$BIN/hcserved" -addr "$N3" -peers "$N1,$N2" "${CLUSTER_FLAGS[@]}" &
PIDS+=($!)
KILL_PID=${PIDS[3]}
"$BIN/hcserved" -addr "$N4" -peers "$N4" "${CLUSTER_FLAGS[@]}" &
PIDS+=($!)
CHURN_PID=${PIDS[4]}

echo "clusterload: cluster suite (join/leave churn, SIGTERM node 2 mid-run) -> $OUT"
"$BIN/hcload" -cluster "http://$N1,http://$N2,http://$N3" \
  -c 4 -n 200 -tasks 150 -machines 80 -seed 1 \
  -replicas 2 -vnodes 64 \
  -churn-node "http://$N4" -churn-pid "$CHURN_PID" \
  -kill-pid "$KILL_PID" -kill-node 2 -merge "$OUT" -out "$OUT"

echo "clusterload: done -> $OUT"
