#!/usr/bin/env bash
# Quick churn/replica check: start a 3-node cluster plus a standalone
# cluster-mode joiner, run the hcload cluster suite with the replica phases
# (hot-primary antagonist, single-owner vs p2c tails) and the churn phases
# (join -> handoff reconcile -> warm-probe -> SIGTERM leave), and print the
# replica and churn scorecards. The full committed BENCH_serve.json comes
# from scripts/clusterload.sh; this script exists to iterate on the churn
# path without paying for the whole regen.
#
#   make churnload                  # print the replica + churn scorecards
#   scripts/churnload.sh out.json   # keep the full report
set -euo pipefail

cd "$(dirname "$0")/.."

OUT=${1:-$(mktemp)}
KEEP=${1:-}
BIN=$(mktemp -d)
PIDS=()

cleanup() {
  for pid in "${PIDS[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
  rm -rf "$BIN"
  [ -z "$KEEP" ] && rm -f "$OUT"
}
trap cleanup EXIT

echo "churnload: building binaries"
go build -o "$BIN/hcserved" ./cmd/hcserved
go build -o "$BIN/hcload" ./cmd/hcload

# Fast failure-detector timings so the join spreads and the SIGTERMed joiner
# leaves the ring within the churn phases; a roomy cache and handoff budget
# so the warm-probe measures handoff coverage, not LRU eviction.
FLAGS=(-replicas 2 -suspect-after 500ms -dead-after 1500ms -gossip 100ms
  -cache 4096 -handoff-budget 2048)
N1=127.0.0.1:18091 N2=127.0.0.1:18092 N3=127.0.0.1:18093 NJ=127.0.0.1:18094
echo "churnload: starting 3-node cluster on $N1 $N2 $N3 (joiner $NJ)"
"$BIN/hcserved" -addr "$N1" -peers "$N2,$N3" "${FLAGS[@]}" &
PIDS+=($!)
"$BIN/hcserved" -addr "$N2" -peers "$N1,$N3" "${FLAGS[@]}" &
PIDS+=($!)
"$BIN/hcserved" -addr "$N3" -peers "$N1,$N2" "${FLAGS[@]}" &
PIDS+=($!)
# The joiner self-seeds: cluster mode mounts (membership ignores a self
# peer), the ring stays solo until hcload announces it via /v1/cluster/join.
"$BIN/hcserved" -addr "$NJ" -peers "$NJ" "${FLAGS[@]}" &
PIDS+=($!)
CHURN_PID=${PIDS[3]}

echo "churnload: cluster suite with churn -> $OUT"
"$BIN/hcload" -cluster "http://$N1,http://$N2,http://$N3" \
  -c 4 -n 120 -tasks 150 -machines 80 -seed 1 \
  -replicas 2 -vnodes 64 \
  -churn-node "http://$NJ" -churn-pid "$CHURN_PID" -out "$OUT"

echo "churnload: replica section"
sed -n '/"replica": {/,/}/p' "$OUT"
echo "churnload: churn section"
sed -n '/"churn": {/,/}/p' "$OUT"
