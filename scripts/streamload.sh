#!/usr/bin/env bash
# Quick streaming-suite check: start a standalone hcserved, run only the
# hcload stream phases (a smaller -n than the full suite — the stream suite
# is serial by design, so it dominates wall time at the full 300), and print
# the stream section of the resulting report. The full committed
# BENCH_serve.json comes from scripts/clusterload.sh; this script exists to
# iterate on the streaming path without paying for the whole regen.
#
#   make streamload                  # print the stream scorecard
#   scripts/streamload.sh out.json   # keep the full report
set -euo pipefail

cd "$(dirname "$0")/.."

OUT=${1:-$(mktemp)}
KEEP=${1:-}
BIN=$(mktemp -d)
PID=

cleanup() {
  [ -n "$PID" ] && kill "$PID" 2>/dev/null || true
  wait 2>/dev/null || true
  rm -rf "$BIN"
  [ -z "$KEEP" ] && rm -f "$OUT"
}
trap cleanup EXIT

echo "streamload: building binaries"
go build -o "$BIN/hcserved" ./cmd/hcserved
go build -o "$BIN/hcload" ./cmd/hcload

"$BIN/hcserved" -addr 127.0.0.1:18090 -queue 8 &
PID=$!

echo "streamload: stream suite -> $OUT"
"$BIN/hcload" -url http://127.0.0.1:18090 -c 4 -n 120 -tasks 150 -machines 80 \
  -seed 1 -out "$OUT"

echo "streamload: stream section"
sed -n '/"stream": {/,/}/p' "$OUT"
