// Package repro's root benchmark harness: one benchmark per paper figure /
// worked example (regenerating it end to end), plus scaling benchmarks for
// the numerical kernels the measures are built on. Run with:
//
//	go test -bench=. -benchmem
package repro

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"testing"

	"repro/hetero"
	"repro/internal/core"
	"repro/internal/etcmat"
	"repro/internal/experiments"
	"repro/internal/gen"
	"repro/internal/linalg"
	"repro/internal/matrix"
	"repro/internal/sched"
	"repro/internal/sinkhorn"
)

// benchExperiment runs a paper experiment end to end, rendering to a
// discarded writer so the benchmark covers the full regeneration path.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tables, err := e.Run()
		if err != nil {
			b.Fatal(err)
		}
		for _, tb := range tables {
			if err := tb.Render(io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkFig1(b *testing.B) { benchExperiment(b, "FIG1") }
func BenchmarkFig2(b *testing.B) { benchExperiment(b, "FIG2") }
func BenchmarkFig3(b *testing.B) { benchExperiment(b, "FIG3") }
func BenchmarkFig4(b *testing.B) { benchExperiment(b, "FIG4") }
func BenchmarkFig5(b *testing.B) { benchExperiment(b, "FIG5") }
func BenchmarkFig6(b *testing.B) { benchExperiment(b, "FIG6") }
func BenchmarkFig7(b *testing.B) { benchExperiment(b, "FIG7") }
func BenchmarkFig8(b *testing.B) { benchExperiment(b, "FIG8") }
func BenchmarkEq10(b *testing.B) { benchExperiment(b, "EQ10") }
func BenchmarkEx1(b *testing.B)  { benchExperiment(b, "EX1") }
func BenchmarkEx2(b *testing.B)  { benchExperiment(b, "EX2") }
func BenchmarkEx3(b *testing.B)  { benchExperiment(b, "EX3") }
func BenchmarkEx4(b *testing.B)  { benchExperiment(b, "EX4") }
func BenchmarkEx5(b *testing.B)  { benchExperiment(b, "EX5") }
func BenchmarkEx6(b *testing.B)  { benchExperiment(b, "EX6") }
func BenchmarkEx7(b *testing.B)  { benchExperiment(b, "EX7") }
func BenchmarkEx8(b *testing.B)  { benchExperiment(b, "EX8") }
func BenchmarkEx9(b *testing.B)  { benchExperiment(b, "EX9") }
func BenchmarkEx10(b *testing.B) { benchExperiment(b, "EX10") }
func BenchmarkEx11(b *testing.B) { benchExperiment(b, "EX11") }
func BenchmarkEx12(b *testing.B) { benchExperiment(b, "EX12") }
func BenchmarkEx13(b *testing.B) { benchExperiment(b, "EX13") }

// benchSuite runs the trial-sweep experiments through the engine at a fixed
// worker count, covering the full regeneration path including rendering.
func benchSuite(b *testing.B, workers int) {
	b.Helper()
	var suite []experiments.Experiment
	for _, id := range []string{"EX1", "EX3", "EX6", "EX13"} {
		e, ok := experiments.ByID(id)
		if !ok {
			b.Fatalf("unknown experiment %s", id)
		}
		suite = append(suite, e)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range experiments.RunAll(context.Background(), suite, workers) {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
			for _, tb := range r.Tables {
				if err := tb.Render(io.Discard); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// BenchmarkFiguresSequential and BenchmarkFiguresParallel time the Monte
// Carlo experiment set on one worker versus the full pool; their ratio is
// the engine's wall-clock speedup on this machine (the outer and inner
// fan-outs compose, so it saturates at GOMAXPROCS).
func BenchmarkFiguresSequential(b *testing.B) { benchSuite(b, 1) }
func BenchmarkFiguresParallel(b *testing.B)   { benchSuite(b, 0) }

// randomECS builds a positive t x m ECS matrix.
func randomECS(rng *rand.Rand, t, m int) *matrix.Dense {
	a := matrix.New(t, m)
	for i := range a.RawData() {
		a.RawData()[i] = 0.1 + rng.Float64()*10
	}
	return a
}

// BenchmarkSinkhorn measures the standardization iteration (Theorem 1) at
// ETC-matrix scales from the paper's (12x5) up to large simulation studies.
func BenchmarkSinkhorn(b *testing.B) {
	for _, dims := range [][2]int{{12, 5}, {64, 16}, {256, 64}, {1024, 128}} {
		b.Run(fmt.Sprintf("%dx%d", dims[0], dims[1]), func(b *testing.B) {
			a := randomECS(rand.New(rand.NewSource(1)), dims[0], dims[1])
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sinkhorn.Standardize(a); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSVD compares the two from-scratch SVD implementations.
func BenchmarkSVD(b *testing.B) {
	for _, dims := range [][2]int{{12, 5}, {64, 16}, {128, 64}} {
		a := randomECS(rand.New(rand.NewSource(2)), dims[0], dims[1])
		b.Run(fmt.Sprintf("GolubReinsch/%dx%d", dims[0], dims[1]), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := linalg.SVDGolubReinsch(a); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("Jacobi/%dx%d", dims[0], dims[1]), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				linalg.SVDJacobi(a)
			}
		})
	}
}

// BenchmarkTMA measures the full affinity pipeline (standardize + SVD).
func BenchmarkTMA(b *testing.B) {
	for _, dims := range [][2]int{{12, 5}, {64, 16}, {256, 64}} {
		b.Run(fmt.Sprintf("%dx%d", dims[0], dims[1]), func(b *testing.B) {
			env, err := etcmat.NewFromECS(randomECS(rand.New(rand.NewSource(3)), dims[0], dims[1]))
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.TMA(env); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCharacterize measures the one-call profile on the SPEC datasets.
func BenchmarkCharacterize(b *testing.B) {
	for _, c := range []struct {
		name string
		env  *hetero.Env
	}{
		{"CINT", hetero.SPECCINT2006Rate()},
		{"CFP", hetero.SPECCFP2006Rate()},
	} {
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p := hetero.Characterize(c.env)
				if p.TMAErr != nil {
					b.Fatal(p.TMAErr)
				}
			}
		})
	}
}

// BenchmarkGenerators measures the three environment generators.
func BenchmarkGenerators(b *testing.B) {
	b.Run("RangeBased/64x16", func(b *testing.B) {
		rng := rand.New(rand.NewSource(4))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := gen.RangeBased(64, 16, 100, 10, rng); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("CVB/64x16", func(b *testing.B) {
		rng := rand.New(rand.NewSource(5))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := gen.CVB(64, 16, 0.6, 0.3, 500, rng); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Targeted/16x8", func(b *testing.B) {
		rng := rand.New(rand.NewSource(6))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := gen.Targeted(gen.Target{Tasks: 16, Machines: 8, MPH: 0.7, TDH: 0.8, TMA: 0.3}, rng); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkHeuristics measures the mapping heuristics on a 200-task,
// 16-machine instance.
func BenchmarkHeuristics(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	env, err := etcmat.NewFromECS(randomECS(rng, 20, 16))
	if err != nil {
		b.Fatal(err)
	}
	in, err := sched.UniformWorkload(env, 10, rng)
	if err != nil {
		b.Fatal(err)
	}
	for _, h := range sched.All() {
		b.Run(h.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := h.Map(in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMatrixMul anchors the raw kernel cost underneath everything.
func BenchmarkMatrixMul(b *testing.B) {
	for _, n := range []int{16, 64, 128} {
		b.Run(fmt.Sprintf("%dx%d", n, n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(8))
			x := randomECS(rng, n, n)
			y := randomECS(rng, n, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				matrix.Mul(x, y)
			}
		})
	}
}
