// specanalysis reproduces the paper's Section V analysis: characterize the
// SPEC CINT2006Rate and CFP2006Rate environments, compare their measures,
// and drill into the 2x2 extractions of Figure 8.
//
// Run with:
//
//	go run ./examples/specanalysis
package main

import (
	"fmt"

	"repro/hetero"
)

func main() {
	cint := hetero.SPECCINT2006Rate()
	cfp := hetero.SPECCFP2006Rate()

	fmt.Println("SPEC-derived environments (synthesized, calibrated to the paper):")
	fmt.Println()
	fmt.Printf("%-14s %8s %8s %8s %8s\n", "suite", "tasks", "MPH", "TDH", "TMA")
	for _, c := range []struct {
		name string
		env  *hetero.Env
	}{{"CINT2006Rate", cint}, {"CFP2006Rate", cfp}} {
		p := hetero.Characterize(c.env)
		fmt.Printf("%-14s %8d %8.4f %8.4f %8.4f\n", c.name, p.Tasks, p.MPH, p.TDH, p.TMA)
	}
	fmt.Println()
	fmt.Println("As the paper observes, the two suites are nearly identical in machine")
	fmt.Println("performance homogeneity and task difficulty homogeneity, but the")
	fmt.Println("floating-point tasks show more task-machine affinity.")
	fmt.Println()

	// Machine ranking per suite: affinity means rankings are task dependent.
	fmt.Println("fastest machine per task type (CFP):")
	etc := cfp.ETC()
	counts := map[string]int{}
	for i, task := range cfp.TaskNames() {
		best, bestT := 0, etc.At(i, 0)
		for j := 1; j < cfp.Machines(); j++ {
			if t := etc.At(i, j); t < bestT {
				best, bestT = j, t
			}
		}
		counts[cfp.MachineNames()[best]]++
		_ = task
	}
	for _, m := range cfp.MachineNames() {
		if counts[m] > 0 {
			fmt.Printf("  %-4s wins %2d task types\n", m, counts[m])
		}
	}
	fmt.Println()

	// Per-machine performance breakdown.
	fmt.Println("machine performances (CINT vs CFP, normalized to the best machine):")
	pi := hetero.MachinePerformances(cint)
	pf := hetero.MachinePerformances(cfp)
	maxI, maxF := maxOf(pi), maxOf(pf)
	for j, name := range cint.MachineNames() {
		fmt.Printf("  %-4s  CINT %5.1f%%   CFP %5.1f%%\n", name, 100*pi[j]/maxI, 100*pf[j]/maxF)
	}
}

func maxOf(v []float64) float64 {
	m := v[0]
	for _, x := range v[1:] {
		if x > m {
			m = x
		}
	}
	return m
}
