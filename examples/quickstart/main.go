// Quickstart: build a small ETC environment, compute the paper's three
// heterogeneity measures, and inspect the standardization diagnostics.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"

	"repro/hetero"
)

func main() {
	// Estimated time to compute (seconds): 4 task types on 3 machines.
	// Machine m3 is a specialized accelerator: it runs the two
	// vector-friendly task types extremely fast and cannot run the last
	// task type at all (+Inf).
	env, err := hetero.FromETC([][]float64{
		{12.0, 18.0, 1.5},         // t1: vector-friendly
		{15.0, 21.0, 2.0},         // t2: vector-friendly
		{30.0, 25.0, 55.0},        // t3: branchy integer code
		{28.0, 24.0, math.Inf(1)}, // t4: cannot run on the accelerator
	})
	if err != nil {
		log.Fatal(err)
	}
	env, err = env.WithTaskNames([]string{"stencil", "blas", "parser", "compiler"})
	if err != nil {
		log.Fatal(err)
	}
	env, err = env.WithMachineNames([]string{"cpuA", "cpuB", "accel"})
	if err != nil {
		log.Fatal(err)
	}

	p := hetero.Characterize(env)
	fmt.Printf("environment: %d task types x %d machines\n", p.Tasks, p.Machines)
	fmt.Printf("machine performances (ECS column sums): %v\n", rounded(p.MachinePerf))
	fmt.Printf("task difficulties   (ECS row sums):     %v\n", rounded(p.TaskDiff))
	fmt.Println()
	fmt.Printf("MPH = %.4f   (1 = machines perform identically)\n", p.MPH)
	fmt.Printf("TDH = %.4f   (1 = task types equally difficult)\n", p.TDH)
	if p.TMAErr != nil {
		fmt.Printf("TMA n/a: %v\n", p.TMAErr)
	} else {
		fmt.Printf("TMA = %.4f   (0 = no affinity, 1 = disjoint specialization)\n", p.TMA)
		fmt.Printf("      standard form reached in %d normalization iterations\n", p.SinkhornIterations)
	}
	fmt.Println()
	fmt.Println("The accelerator makes this environment heterogeneous on every axis:")
	fmt.Println("machines differ (low MPH), tasks differ (low TDH), and different")
	fmt.Println("tasks prefer different machines (positive TMA).")
}

func rounded(v []float64) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = math.Round(x*1000) / 1000
	}
	return out
}
