// heuristicselection demonstrates the paper's motivating application of
// "selecting appropriate heuristics based on heterogeneity": the best
// mapping heuristic for a workload depends on where the environment sits in
// (MPH, TMA) space. Low-affinity environments are forgiving; high-affinity,
// performance-heterogeneous environments punish load-blind mappers.
//
// Run with:
//
//	go run ./examples/heuristicselection
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/hetero"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	type scenario struct {
		name          string
		mph, tdh, tma float64
	}
	scenarios := []scenario{
		{"homogeneous cluster", 0.95, 0.9, 0.02},
		{"mixed-speed cluster", 0.45, 0.9, 0.05},
		{"accelerator pool", 0.45, 0.7, 0.55},
	}
	heuristics := hetero.Heuristics()

	fmt.Printf("%-22s", "scenario")
	for _, h := range heuristics {
		fmt.Printf(" %10s", h.Name())
	}
	fmt.Println()

	for _, sc := range scenarios {
		g, err := hetero.Generate(hetero.TargetedTarget(10, 6, sc.mph, sc.tdh, sc.tma, 0), rng)
		if err != nil {
			log.Fatalf("%s: %v", sc.name, err)
		}
		in, err := hetero.Workload(g.Env, 10, rng)
		if err != nil {
			log.Fatal(err)
		}
		schedules, err := hetero.RunHeuristics(in, heuristics)
		if err != nil {
			log.Fatal(err)
		}
		best := schedules[0].Makespan
		bestName := schedules[0].Heuristic
		for _, s := range schedules[1:] {
			if s.Makespan < best {
				best, bestName = s.Makespan, s.Heuristic
			}
		}
		fmt.Printf("%-22s", sc.name)
		for _, s := range schedules {
			fmt.Printf(" %10.2f", s.Makespan/best)
		}
		fmt.Println()
		fmt.Printf("  -> measured MPH=%.2f TMA=%.2f; best heuristic: %s\n",
			g.Achieved.MPH, g.Achieved.TMA, bestName)
	}
	fmt.Println()
	fmt.Println("Values are makespans relative to the best heuristic per scenario (1.00 = best).")
	fmt.Println("Note how MET degrades once machine performances spread out (low MPH) but")
	fmt.Println("the batch heuristics (Min-Min, Sufferage) stay close to the front, and how")
	fmt.Println("affinity (high TMA) changes which mapper wins — the measures predict the regime.")
}
