// dynamicmapping demonstrates online (immediate-mode) task mapping: tasks
// arrive as a Poisson stream and must be placed the moment they arrive. The
// heterogeneity measures predict which policy survives: MET is ideal when
// machines are equal-but-specialized (high MPH, high TMA) and catastrophic
// when one machine dominates (low MPH, low TMA); MCT is the safe all-rounder.
//
// Run with:
//
//	go run ./examples/dynamicmapping
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/hetero"
)

func main() {
	rng := rand.New(rand.NewSource(21))
	scenarios := []struct {
		name          string
		mph, tdh, tma float64
	}{
		{"one dominant machine", 0.35, 0.9, 0.03},
		{"equal but specialized", 0.95, 0.9, 0.7},
	}
	policies := hetero.DynamicPolicies()

	for _, sc := range scenarios {
		g, err := hetero.Generate(hetero.TargetedTarget(8, 5, sc.mph, sc.tdh, sc.tma, 0), rng)
		if err != nil {
			log.Fatal(err)
		}
		env := g.Env
		// Drive at roughly 60% of aggregate capacity.
		rate := 0.6 * env.ECS().Sum() / float64(env.Tasks())
		w, err := hetero.PoissonWorkload(env, 500, rate, rng)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s (measured MPH=%.2f TMA=%.2f):\n", sc.name, g.Achieved.MPH, g.Achieved.TMA)
		fmt.Printf("  %-10s %14s %14s %12s\n", "policy", "mean response", "max response", "utilization")
		for _, p := range policies {
			res, err := hetero.Simulate(env, w, p, rand.New(rand.NewSource(5)))
			if err != nil {
				log.Fatal(err)
			}
			util := 0.0
			for _, u := range res.Utilization {
				util += u
			}
			util /= float64(len(res.Utilization))
			fmt.Printf("  %-10s %14.2f %14.2f %11.0f%%\n", p.Name(), res.MeanResponse, res.MaxResponse, 100*util)
		}
		fmt.Println()
	}
	fmt.Println("Reading the two blocks together: the same MET policy is the best and the")
	fmt.Println("worst choice depending on where the environment sits in (MPH, TMA) space —")
	fmt.Println("measure first, then pick the mapper.")
}
