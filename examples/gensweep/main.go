// gensweep demonstrates the paper's ETC-generation application: produce
// simulation environments that span the entire heterogeneity range, with the
// three measures dialed independently, and verify the requested profiles are
// achieved. It also contrasts the classic range-based and CVB generators,
// whose measures can only be controlled indirectly.
//
// Run with:
//
//	go run ./examples/gensweep
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/hetero"
)

func main() {
	rng := rand.New(rand.NewSource(11))

	fmt.Println("targeted generator: requested vs achieved (12 tasks x 6 machines)")
	fmt.Printf("%8s %8s %8s | %8s %8s %8s\n", "reqMPH", "reqTDH", "reqTMA", "MPH", "TDH", "TMA")
	for _, mph := range []float64{0.25, 0.75} {
		for _, tma := range []float64{0.0, 0.2, 0.5} {
			g, err := hetero.Generate(hetero.TargetedTarget(12, 6, mph, 0.6, tma, 0), rng)
			if err != nil {
				log.Fatal(err)
			}
			p := g.Achieved
			fmt.Printf("%8.2f %8.2f %8.2f | %8.4f %8.4f %8.4f\n", mph, 0.6, tma, p.MPH, p.TDH, p.TMA)
		}
	}
	fmt.Println()

	fmt.Println("classic generators: measures emerge from distribution parameters")
	fmt.Printf("%-34s %8s %8s %8s\n", "generator", "MPH", "TDH", "TMA")
	for _, c := range []struct {
		name         string
		rTask, rMach float64
	}{
		{"range-based R_task=10   R_mach=2", 10, 2},
		{"range-based R_task=100  R_mach=10", 100, 10},
		{"range-based R_task=3000 R_mach=100", 3000, 100},
	} {
		g, err := hetero.Generate(hetero.RangeTarget(12, 6, c.rTask, c.rMach), rng)
		if err != nil {
			log.Fatal(err)
		}
		p := g.Achieved
		fmt.Printf("%-34s %8.4f %8.4f %8.4f\n", c.name, p.MPH, p.TDH, p.TMA)
	}
	for _, c := range []struct {
		name         string
		vTask, vMach float64
	}{
		{"CVB V_task=0.1 V_mach=0.1", 0.1, 0.1},
		{"CVB V_task=0.6 V_mach=0.3", 0.6, 0.3},
		{"CVB V_task=1.5 V_mach=0.9", 1.5, 0.9},
	} {
		g, err := hetero.Generate(hetero.CVBTarget(12, 6, c.vTask, c.vMach, 500), rng)
		if err != nil {
			log.Fatal(err)
		}
		p := g.Achieved
		fmt.Printf("%-34s %8.4f %8.4f %8.4f\n", c.name, p.MPH, p.TDH, p.TMA)
	}
	fmt.Println()
	fmt.Println("The classic generators move all three measures at once as their ranges")
	fmt.Println("widen — none of them can dial MPH, TDH and TMA independently. The")
	fmt.Println("targeted generator can, which is exactly the gap the paper's measures")
	fmt.Println("were designed to close.")
}
