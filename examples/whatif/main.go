// whatif demonstrates the paper's what-if application: quantify how the
// heterogeneity measures shift when the environment changes. We take the
// SPEC CINT-derived environment and add a special-purpose accelerator that
// dramatically speeds up three task types and cannot run the rest — the
// paper's closing prediction is that such resources raise TMA and lower TDH
// and MPH.
//
// Run with:
//
//	go run ./examples/whatif
package main

import (
	"fmt"
	"log"
	"math"

	"repro/hetero"
)

func main() {
	env := hetero.SPECCINT2006Rate()
	base := hetero.Characterize(env)
	fmt.Printf("baseline CINT environment: MPH=%.4f TDH=%.4f TMA=%.4f\n\n", base.MPH, base.TDH, base.TMA)

	// The accelerator runs libquantum-like streaming kernels 20x faster than
	// the best CPU, but cannot execute the pointer-chasing task types.
	accelerated := map[string]bool{
		"462.libquantum": true,
		"456.hmmer":      true,
		"464.h264ref":    true,
	}
	etc := env.ETC()
	speeds := make([]float64, env.Tasks())
	for i, name := range env.TaskNames() {
		if accelerated[name] {
			bestCPU := math.Inf(1)
			for j := 0; j < env.Machines(); j++ {
				if t := etc.At(i, j); t < bestCPU {
					bestCPU = t
				}
			}
			speeds[i] = 20 / bestCPU // ECS: 20x faster than the best CPU
		} else {
			speeds[i] = 0 // cannot run
		}
	}
	withAccel, err := env.AddMachine("accel", speeds)
	if err != nil {
		log.Fatal(err)
	}
	p := hetero.Characterize(withAccel)
	fmt.Printf("after adding an accelerator (3 task types 20x faster, 9 unsupported):\n")
	fmt.Printf("  MPH=%.4f (%+.4f)  TDH=%.4f (%+.4f)", p.MPH, p.MPH-base.MPH, p.TDH, p.TDH-base.TDH)
	if p.TMAErr != nil {
		fmt.Printf("  TMA n/a: %v\n", p.TMAErr)
	} else {
		fmt.Printf("  TMA=%.4f (%+.4f)\n", p.TMA, p.TMA-base.TMA)
	}
	fmt.Println()
	fmt.Println("As the paper predicts for environments with special-purpose resources")
	fmt.Println("(GPGPUs, accelerators): task-machine affinity rises sharply while the")
	fmt.Println("homogeneity measures fall.")
	fmt.Println()

	// And the converse direction: removing the slowest machine homogenizes.
	mp := hetero.MachinePerformances(env)
	worst := 0
	for j, v := range mp {
		if v < mp[worst] {
			worst = j
		}
	}
	smaller, err := env.RemoveMachine(worst)
	if err != nil {
		log.Fatal(err)
	}
	q := hetero.Characterize(smaller)
	fmt.Printf("removing the slowest machine (%s): MPH %+.4f, TDH %+.4f, TMA %+.4f\n",
		env.MachineNames()[worst], q.MPH-base.MPH, q.TDH-base.TDH, q.TMA-base.TMA)
}
