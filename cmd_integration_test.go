package repro

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTools compiles every command once per test binary into a temp dir and
// returns the path of the requested tool.
func buildTools(t *testing.T) map[string]string {
	t.Helper()
	if testing.Short() {
		t.Skip("skipping CLI integration in -short mode")
	}
	dir := t.TempDir()
	tools := map[string]string{}
	for _, name := range []string{"hcmeasure", "hcgen", "hcwhatif", "hcbench"} {
		out := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+name)
		cmd.Env = os.Environ()
		if msg, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, msg)
		}
		tools[name] = out
	}
	return tools
}

func run(t *testing.T, bin string, stdin string, args ...string) (string, string, error) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	if stdin != "" {
		cmd.Stdin = strings.NewReader(stdin)
	}
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	err := cmd.Run()
	return out.String(), errb.String(), err
}

func TestCLIPipeline(t *testing.T) {
	tools := buildTools(t)
	csv := "task,m1,m2\ngcc,10,20\nmcf,30,15\n"

	t.Run("hcmeasure text", func(t *testing.T) {
		out, _, err := run(t, tools["hcmeasure"], csv)
		if err != nil {
			t.Fatal(err)
		}
		for _, want := range []string{"MPH", "TDH", "TMA", "2 task types x 2 machines"} {
			if !strings.Contains(out, want) {
				t.Errorf("output missing %q:\n%s", want, out)
			}
		}
	})

	t.Run("hcmeasure json", func(t *testing.T) {
		out, _, err := run(t, tools["hcmeasure"], csv, "-json")
		if err != nil {
			t.Fatal(err)
		}
		for _, want := range []string{`"mph"`, `"tma"`, `"machines": 2`} {
			if !strings.Contains(out, want) {
				t.Errorf("json missing %q:\n%s", want, out)
			}
		}
	})

	t.Run("hcmeasure groups", func(t *testing.T) {
		blockCSV := "task,m1,m2,m3,m4\nA,1,1,10,10\nB,1,1,12,11\nC,9,10,1,1\nD,11,10,1,1\n"
		out, _, err := run(t, tools["hcmeasure"], blockCSV, "-groups", "2")
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(out, "affinity groups (k=2):") {
			t.Errorf("missing group report:\n%s", out)
		}
		if !strings.Contains(out, "[m1 m2]") && !strings.Contains(out, "[m3 m4]") {
			t.Errorf("block machines not grouped:\n%s", out)
		}
	})

	t.Run("hcwhatif sensitivities", func(t *testing.T) {
		out, errOut, err := run(t, tools["hcwhatif"], csv, "-sens", "2")
		if err != nil {
			t.Fatalf("%v\n%s", err, errOut)
		}
		if !strings.Contains(out, "most influential pairings for TMA") {
			t.Errorf("missing sensitivity report:\n%s", out)
		}
	})

	t.Run("hcmeasure rejects bad csv", func(t *testing.T) {
		_, errOut, err := run(t, tools["hcmeasure"], "garbage")
		if err == nil {
			t.Errorf("bad CSV accepted; stderr: %s", errOut)
		}
	})

	t.Run("hcgen into hcmeasure", func(t *testing.T) {
		genOut, genErr, err := run(t, tools["hcgen"], "",
			"-method", "targeted", "-tasks", "8", "-machines", "4",
			"-mph", "0.7", "-tdh", "0.8", "-tma", "0.15", "-report")
		if err != nil {
			t.Fatalf("%v\n%s", err, genErr)
		}
		if !strings.Contains(genErr, "achieved: MPH=0.7000") {
			t.Errorf("missing achieved report: %s", genErr)
		}
		out, _, err := run(t, tools["hcmeasure"], genOut, "-json")
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(out, `"mph": 0.6999`) && !strings.Contains(out, `"mph": 0.7`) {
			t.Errorf("round-trip lost the MPH target:\n%s", out)
		}
	})

	t.Run("hcgen range and cvb", func(t *testing.T) {
		for _, method := range []string{"range", "cvb"} {
			out, errOut, err := run(t, tools["hcgen"], "", "-method", method, "-tasks", "4", "-machines", "3")
			if err != nil {
				t.Fatalf("%s: %v\n%s", method, err, errOut)
			}
			if !strings.HasPrefix(out, "task,m1,m2,m3") {
				t.Errorf("%s: unexpected CSV header: %q", method, strings.SplitN(out, "\n", 2)[0])
			}
		}
	})

	t.Run("hcgen unknown method", func(t *testing.T) {
		if _, _, err := run(t, tools["hcgen"], "", "-method", "nope"); err == nil {
			t.Error("unknown method accepted")
		}
	})

	t.Run("hcwhatif spec", func(t *testing.T) {
		out, errOut, err := run(t, tools["hcwhatif"], "", "-spec", "cint")
		if err != nil {
			t.Fatalf("%v\n%s", err, errOut)
		}
		for _, want := range []string{"baseline", "remove machine:", "remove task:", "471.omnetpp"} {
			if !strings.Contains(out, want) {
				t.Errorf("output missing %q", want)
			}
		}
	})

	t.Run("hcbench list and select", func(t *testing.T) {
		out, _, err := run(t, tools["hcbench"], "", "-list")
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range []string{"FIG1", "FIG8", "EQ10", "EX9"} {
			if !strings.Contains(out, id) {
				t.Errorf("-list missing %s", id)
			}
		}
		out, _, err = run(t, tools["hcbench"], "", "FIG2")
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(out, "0.50 (0.50)") {
			t.Errorf("FIG2 output wrong:\n%s", out)
		}
		if _, _, err := run(t, tools["hcbench"], "", "NOPE"); err == nil {
			t.Error("unknown experiment accepted")
		}
	})

	t.Run("hcbench markdown", func(t *testing.T) {
		out, _, err := run(t, tools["hcbench"], "", "-md", "FIG5")
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(out, "| m1 |") {
			t.Errorf("markdown output wrong:\n%s", out)
		}
	})
}
