package repro

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// buildTools compiles every command once per test binary into a temp dir and
// returns the path of the requested tool.
func buildTools(t *testing.T) map[string]string {
	t.Helper()
	if testing.Short() {
		t.Skip("skipping CLI integration in -short mode")
	}
	dir := t.TempDir()
	tools := map[string]string{}
	for _, name := range []string{"hcmeasure", "hcgen", "hcwhatif", "hcbench", "hcserved", "hcload"} {
		out := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+name)
		cmd.Env = os.Environ()
		if msg, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, msg)
		}
		tools[name] = out
	}
	return tools
}

func run(t *testing.T, bin string, stdin string, args ...string) (string, string, error) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	if stdin != "" {
		cmd.Stdin = strings.NewReader(stdin)
	}
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	err := cmd.Run()
	return out.String(), errb.String(), err
}

func TestCLIPipeline(t *testing.T) {
	tools := buildTools(t)
	csv := "task,m1,m2\ngcc,10,20\nmcf,30,15\n"

	t.Run("hcmeasure text", func(t *testing.T) {
		out, _, err := run(t, tools["hcmeasure"], csv)
		if err != nil {
			t.Fatal(err)
		}
		for _, want := range []string{"MPH", "TDH", "TMA", "2 task types x 2 machines"} {
			if !strings.Contains(out, want) {
				t.Errorf("output missing %q:\n%s", want, out)
			}
		}
	})

	t.Run("hcmeasure json", func(t *testing.T) {
		out, _, err := run(t, tools["hcmeasure"], csv, "-json")
		if err != nil {
			t.Fatal(err)
		}
		for _, want := range []string{`"mph"`, `"tma"`, `"machines": 2`} {
			if !strings.Contains(out, want) {
				t.Errorf("json missing %q:\n%s", want, out)
			}
		}
	})

	t.Run("hcmeasure groups", func(t *testing.T) {
		blockCSV := "task,m1,m2,m3,m4\nA,1,1,10,10\nB,1,1,12,11\nC,9,10,1,1\nD,11,10,1,1\n"
		out, _, err := run(t, tools["hcmeasure"], blockCSV, "-groups", "2")
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(out, "affinity groups (k=2):") {
			t.Errorf("missing group report:\n%s", out)
		}
		if !strings.Contains(out, "[m1 m2]") && !strings.Contains(out, "[m3 m4]") {
			t.Errorf("block machines not grouped:\n%s", out)
		}
	})

	t.Run("hcwhatif sensitivities", func(t *testing.T) {
		out, errOut, err := run(t, tools["hcwhatif"], csv, "-sens", "2")
		if err != nil {
			t.Fatalf("%v\n%s", err, errOut)
		}
		if !strings.Contains(out, "most influential pairings for TMA") {
			t.Errorf("missing sensitivity report:\n%s", out)
		}
	})

	t.Run("hcmeasure rejects bad csv", func(t *testing.T) {
		_, errOut, err := run(t, tools["hcmeasure"], "garbage")
		if err == nil {
			t.Errorf("bad CSV accepted; stderr: %s", errOut)
		}
	})

	t.Run("hcgen into hcmeasure", func(t *testing.T) {
		genOut, genErr, err := run(t, tools["hcgen"], "",
			"-method", "targeted", "-tasks", "8", "-machines", "4",
			"-mph", "0.7", "-tdh", "0.8", "-tma", "0.15", "-report")
		if err != nil {
			t.Fatalf("%v\n%s", err, genErr)
		}
		if !strings.Contains(genErr, "achieved: MPH=0.7000") {
			t.Errorf("missing achieved report: %s", genErr)
		}
		out, _, err := run(t, tools["hcmeasure"], genOut, "-json")
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(out, `"mph": 0.6999`) && !strings.Contains(out, `"mph": 0.7`) {
			t.Errorf("round-trip lost the MPH target:\n%s", out)
		}
	})

	t.Run("hcgen range and cvb", func(t *testing.T) {
		for _, method := range []string{"range", "cvb"} {
			out, errOut, err := run(t, tools["hcgen"], "", "-method", method, "-tasks", "4", "-machines", "3")
			if err != nil {
				t.Fatalf("%s: %v\n%s", method, err, errOut)
			}
			if !strings.HasPrefix(out, "task,m1,m2,m3") {
				t.Errorf("%s: unexpected CSV header: %q", method, strings.SplitN(out, "\n", 2)[0])
			}
		}
	})

	t.Run("hcgen unknown method", func(t *testing.T) {
		if _, _, err := run(t, tools["hcgen"], "", "-method", "nope"); err == nil {
			t.Error("unknown method accepted")
		}
	})

	t.Run("hcwhatif spec", func(t *testing.T) {
		out, errOut, err := run(t, tools["hcwhatif"], "", "-spec", "cint")
		if err != nil {
			t.Fatalf("%v\n%s", err, errOut)
		}
		for _, want := range []string{"baseline", "remove machine:", "remove task:", "471.omnetpp"} {
			if !strings.Contains(out, want) {
				t.Errorf("output missing %q", want)
			}
		}
	})

	t.Run("hcbench list and select", func(t *testing.T) {
		out, _, err := run(t, tools["hcbench"], "", "-list")
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range []string{"FIG1", "FIG8", "EQ10", "EX9"} {
			if !strings.Contains(out, id) {
				t.Errorf("-list missing %s", id)
			}
		}
		out, _, err = run(t, tools["hcbench"], "", "FIG2")
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(out, "0.50 (0.50)") {
			t.Errorf("FIG2 output wrong:\n%s", out)
		}
		if _, _, err := run(t, tools["hcbench"], "", "NOPE"); err == nil {
			t.Error("unknown experiment accepted")
		}
	})

	t.Run("hcbench markdown", func(t *testing.T) {
		out, _, err := run(t, tools["hcbench"], "", "-md", "FIG5")
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(out, "| m1 |") {
			t.Errorf("markdown output wrong:\n%s", out)
		}
	})

	t.Run("hcserved and hcload end to end", func(t *testing.T) {
		// Start the server on an ephemeral port, drive it with the load
		// generator, then SIGTERM it and require a clean exit — the whole
		// serving story through real binaries.
		logPath := filepath.Join(t.TempDir(), "hcserved.log")
		logFile, err := os.Create(logPath)
		if err != nil {
			t.Fatal(err)
		}
		defer logFile.Close()
		srv := exec.Command(tools["hcserved"], "-addr", "127.0.0.1:0", "-queue", "4", "-log", "json")
		srv.Stderr = logFile
		srv.Stdout = logFile
		if err := srv.Start(); err != nil {
			t.Fatal(err)
		}
		defer srv.Process.Kill()
		srvLog := func() string {
			b, _ := os.ReadFile(logPath)
			return string(b)
		}

		// The bound address appears in the startup log line.
		var addr string
		for i := 0; i < 200 && addr == ""; i++ {
			time.Sleep(10 * time.Millisecond)
			for _, line := range strings.Split(srvLog(), "\n") {
				if !strings.Contains(line, "hcserved listening") {
					continue
				}
				var rec struct {
					Addr string `json:"addr"`
				}
				if json.Unmarshal([]byte(line), &rec) == nil && rec.Addr != "" {
					addr = rec.Addr
				}
			}
		}
		if addr == "" {
			t.Fatalf("no listening line in server log:\n%s", srvLog())
		}

		reportPath := filepath.Join(t.TempDir(), "BENCH_serve.json")
		out, errOut, err := run(t, tools["hcload"], "",
			"-url", "http://"+addr, "-c", "2", "-n", "20",
			"-tasks", "12", "-machines", "8", "-out", reportPath)
		if err != nil {
			t.Fatalf("hcload: %v\n%s%s", err, out, errOut)
		}
		data, err := os.ReadFile(reportPath)
		if err != nil {
			t.Fatal(err)
		}
		var rep struct {
			Phases []struct {
				Name     string `json:"name"`
				Requests int    `json:"requests"`
				Errors   int    `json:"errors"`
			} `json:"phases"`
			Cache *struct {
				Hits    uint64  `json:"hits"`
				HitRate float64 `json:"hit_rate"`
			} `json:"cache"`
			Zipf *struct {
				DistinctRequested  int    `json:"distinct_requested"`
				Characterizations  uint64 `json:"characterizations"`
				UniqueComputesOnly bool   `json:"unique_computes_only"`
			} `json:"zipf"`
			Whatif *struct {
				BaselineIterations int `json:"baseline_iterations"`
				Deltas             int `json:"deltas"`
			} `json:"whatif"`
			Stream *struct {
				Mutations          int  `json:"mutations"`
				IncrementalTotal   int  `json:"incremental_total"`
				RecomputedTotal    int  `json:"recomputed_total"`
				AccountingBalanced bool `json:"accounting_balanced"`
			} `json:"stream"`
		}
		if err := json.Unmarshal(data, &rep); err != nil {
			t.Fatalf("report is not JSON: %v\n%s", err, data)
		}
		wantPhases := []string{"cold", "warm", "cold_bin", "warm_bin", "zipf", "stream", "stream_oneshot"}
		if len(rep.Phases) != len(wantPhases) {
			t.Fatalf("unexpected phases: %s", data)
		}
		for i, name := range wantPhases {
			if rep.Phases[i].Name != name {
				t.Fatalf("phase %d is %q, want %q: %s", i, rep.Phases[i].Name, name, data)
			}
		}
		for _, p := range rep.Phases {
			if p.Requests != 20 || p.Errors != 0 {
				t.Errorf("phase %s: %+v", p.Name, p)
			}
		}
		if rep.Cache == nil || rep.Cache.Hits < 20 || rep.Cache.HitRate <= 0 {
			t.Errorf("warm phase did not hit the cache: %s", data)
		}
		if rep.Zipf == nil || !rep.Zipf.UniqueComputesOnly {
			t.Errorf("zipf phase recomputed duplicate keys: %s", data)
		}
		if rep.Whatif == nil || rep.Whatif.BaselineIterations <= 0 || rep.Whatif.Deltas != 12+8 {
			t.Errorf("whatif probe missing or malformed: %s", data)
		}
		if rep.Stream == nil || rep.Stream.Mutations != 20 ||
			rep.Stream.IncrementalTotal+rep.Stream.RecomputedTotal != 20 ||
			!rep.Stream.AccountingBalanced {
			t.Errorf("stream scorecard missing or unbalanced: %s", data)
		}

		// Graceful shutdown: SIGTERM must drain and exit 0.
		if err := srv.Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 1)
		go func() { done <- srv.Wait() }()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("server exit after SIGTERM: %v\n%s", err, srvLog())
			}
		case <-time.After(10 * time.Second):
			srv.Process.Kill()
			t.Fatal("server did not exit after SIGTERM")
		}
		if !strings.Contains(srvLog(), "drain complete") {
			t.Errorf("no drain line in server log:\n%s", srvLog())
		}
	})
}
