package repro

import (
	"context"
	"math"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/etcmat"
	"repro/internal/linalg"
	"repro/internal/matrix"
	"repro/internal/parallel"
	"repro/internal/sinkhorn"
)

// Scale stress tests: the measures must remain correct and stable at
// simulation-study sizes far beyond the paper's 17x5 matrices. Skipped under
// -short.

func TestScaleStandardizeLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	rng := rand.New(rand.NewSource(200))
	a := matrix.New(1024, 128)
	for i := range a.RawData() {
		a.RawData()[i] = 0.01 + rng.Float64()*100
	}
	res, err := sinkhorn.Standardize(a)
	if err != nil {
		t.Fatal(err)
	}
	rt, ct := sinkhorn.StandardTargets(1024, 128)
	for _, s := range res.Scaled.RowSums() {
		if math.Abs(s-rt) > 1e-6 {
			t.Fatalf("row sum %g, want %g", s, rt)
		}
	}
	for _, s := range res.Scaled.ColSums() {
		if math.Abs(s-ct) > 1e-6 {
			t.Fatalf("col sum %g, want %g", s, ct)
		}
	}
	if res.Iterations > 100 {
		t.Errorf("took %d iterations at 1024x128", res.Iterations)
	}
}

func TestScaleTMALarge(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	rng := rand.New(rand.NewSource(201))
	rows := make([][]float64, 512)
	for i := range rows {
		rows[i] = make([]float64, 64)
		for j := range rows[i] {
			rows[i][j] = 0.01 + rng.Float64()*100
		}
	}
	env := etcmat.MustFromECS(rows)
	r, err := core.TMA(env)
	if err != nil {
		t.Fatal(err)
	}
	if r.TMA < 0 || r.TMA > 1 {
		t.Fatalf("TMA = %g out of range", r.TMA)
	}
	if math.Abs(r.SingularValues[0]-1) > 1e-5 {
		t.Errorf("σ1 = %g at scale, want 1", r.SingularValues[0])
	}
}

// A full 1k×1k characterization through the parallel pipeline must finish
// and must produce the exact profile of the serial pipeline — the ISSUE's
// bit-identity acceptance at an end-to-end scale the kernel tests can't
// reach. Run explicitly with: go test -run TestScaleCharacterize1kParallelBitIdentical
func TestScaleCharacterize1kParallelBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	if raceEnabled {
		// Deterministic equality check, no shared state: race coverage of the
		// same kernels lives in the package pounding tests at sizes past every
		// threshold, without paying for an instrumented O(n³) pipeline.
		t.Skip("covered under race by the package-level pounding tests")
	}
	rng := rand.New(rand.NewSource(203))
	ecs := randomECS(rng, 1000, 1000)

	serialEnv, err := etcmat.NewFromECS(ecs)
	if err != nil {
		t.Fatal(err)
	}
	serial := core.CharacterizeCtx(parallel.WithWorkers(context.Background(), 1), serialEnv)
	if serial.TMAErr != nil {
		t.Fatal(serial.TMAErr)
	}

	parEnv, err := etcmat.NewFromECS(ecs)
	if err != nil {
		t.Fatal(err)
	}
	par := core.CharacterizeCtx(parallel.WithWorkers(context.Background(), 4), parEnv)
	if par.TMAErr != nil {
		t.Fatal(par.TMAErr)
	}

	if par.TMA != serial.TMA || par.MPH != serial.MPH || par.TDH != serial.TDH {
		t.Errorf("parallel profile differs: TMA %v vs %v, MPH %v vs %v, TDH %v vs %v",
			par.TMA, serial.TMA, par.MPH, serial.MPH, par.TDH, serial.TDH)
	}
	// The full memoized spectra must match bit for bit, not just the scalars.
	serialTMA, err := core.TMA(serialEnv)
	if err != nil {
		t.Fatal(err)
	}
	parTMA, err := core.TMA(parEnv)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serialTMA.SingularValues {
		if parTMA.SingularValues[i] != serialTMA.SingularValues[i] {
			t.Fatalf("σ[%d]: parallel %v != serial %v", i, parTMA.SingularValues[i], serialTMA.SingularValues[i])
		}
	}
	serialEnv.ReleaseBuffers()
	parEnv.ReleaseBuffers()
}

// The ISSUE's parallel-speedup acceptance: at GOMAXPROCS >= 4 a 4k×4k
// characterization through the parallel pipeline must beat the serial one by
// at least 2x (and agree bit for bit). On smaller hosts there is no
// parallelism to measure and the test skips — concurrency alone only adds
// fan-out overhead. Run explicitly with:
// go test -run TestScaleCharacterize4kSpeedup -timeout 30m
func TestScaleCharacterize4kSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	if raceEnabled {
		t.Skip("wall-clock ratio assertion; race instrumentation distorts it")
	}
	if p := runtime.GOMAXPROCS(0); p < 4 {
		t.Skipf("GOMAXPROCS = %d: need >= 4 cores to demonstrate a 2x speedup", p)
	}
	rng := rand.New(rand.NewSource(204))
	ecs := randomECS(rng, 4096, 4096)

	measure := func(workers int) (*core.Profile, time.Duration) {
		env, err := etcmat.NewFromECS(ecs)
		if err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		p := core.CharacterizeCtx(parallel.WithWorkers(context.Background(), workers), env)
		elapsed := time.Since(start)
		if p.TMAErr != nil {
			t.Fatal(p.TMAErr)
		}
		env.ReleaseBuffers()
		return p, elapsed
	}

	serial, serialDur := measure(1)
	par, parDur := measure(runtime.GOMAXPROCS(0))
	if par.TMA != serial.TMA {
		t.Errorf("parallel TMA %v != serial %v", par.TMA, serial.TMA)
	}
	speedup := float64(serialDur) / float64(parDur)
	t.Logf("4k characterize: serial %v, parallel %v, speedup %.2fx", serialDur, parDur, speedup)
	if speedup < 2 {
		t.Errorf("parallel speedup %.2fx < 2x at GOMAXPROCS %d", speedup, runtime.GOMAXPROCS(0))
	}
}

// The ISSUE's downdating acceptance at 1k×1k: after the one-time eigensystem
// build, each leave-one-out spectrum must come back at least 5x faster than
// a full recompute and match it to 1e-8·σ₁.
// Run explicitly with: go test -run TestScaleDowndate1k
func TestScaleDowndate1k(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	if raceEnabled {
		t.Skip("wall-clock ratio assertion; race instrumentation distorts it")
	}
	rng := rand.New(rand.NewSource(205))
	a := randomECS(rng, 1000, 1000)
	dd := linalg.NewDowndater(a)
	var sv []float64
	sv = dd.DropRowValues(0, sv[:0]) // pay the one-time eigensystem build

	const drops = 8
	start := time.Now()
	for i := 1; i <= drops; i++ {
		sv = dd.DropRowValues(i, sv[:0])
	}
	perDrop := time.Since(start) / drops

	ws := linalg.NewWorkspace()
	sub := matrix.New(999, 1000)
	copy(sub.RawData(), a.RawData()[1000:])
	start = time.Now()
	exact := linalg.AppendSingularValues(nil, sub, ws)
	perRecompute := time.Since(start)

	sv = dd.DropRowValues(0, sv[:0])
	for k := range exact {
		if math.Abs(sv[k]-exact[k]) > 1e-8*exact[0] {
			t.Fatalf("σ[%d]: downdate %.12g vs recompute %.12g", k, sv[k], exact[k])
		}
	}
	speedup := float64(perRecompute) / float64(perDrop)
	t.Logf("1k downdate: %v/drop vs %v recompute (%.1fx)", perDrop, perRecompute, speedup)
	if speedup < 5 {
		t.Errorf("downdate speedup %.1fx < 5x at 1k", speedup)
	}
}

func TestScaleSVDAgreementLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	rng := rand.New(rand.NewSource(202))
	a := matrix.New(200, 40)
	for i := range a.RawData() {
		a.RawData()[i] = rng.NormFloat64()
	}
	gr, err := linalg.SVDGolubReinsch(a)
	if err != nil {
		t.Fatal(err)
	}
	jac := linalg.SVDJacobi(a)
	if !matrix.VecEqualTol(gr.S, jac.S, 1e-8*(1+gr.S[0])) {
		t.Error("SVD algorithms disagree at 200x40")
	}
}
