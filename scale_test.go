package repro

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/etcmat"
	"repro/internal/linalg"
	"repro/internal/matrix"
	"repro/internal/sinkhorn"
)

// Scale stress tests: the measures must remain correct and stable at
// simulation-study sizes far beyond the paper's 17x5 matrices. Skipped under
// -short.

func TestScaleStandardizeLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	rng := rand.New(rand.NewSource(200))
	a := matrix.New(1024, 128)
	for i := range a.RawData() {
		a.RawData()[i] = 0.01 + rng.Float64()*100
	}
	res, err := sinkhorn.Standardize(a)
	if err != nil {
		t.Fatal(err)
	}
	rt, ct := sinkhorn.StandardTargets(1024, 128)
	for _, s := range res.Scaled.RowSums() {
		if math.Abs(s-rt) > 1e-6 {
			t.Fatalf("row sum %g, want %g", s, rt)
		}
	}
	for _, s := range res.Scaled.ColSums() {
		if math.Abs(s-ct) > 1e-6 {
			t.Fatalf("col sum %g, want %g", s, ct)
		}
	}
	if res.Iterations > 100 {
		t.Errorf("took %d iterations at 1024x128", res.Iterations)
	}
}

func TestScaleTMALarge(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	rng := rand.New(rand.NewSource(201))
	rows := make([][]float64, 512)
	for i := range rows {
		rows[i] = make([]float64, 64)
		for j := range rows[i] {
			rows[i][j] = 0.01 + rng.Float64()*100
		}
	}
	env := etcmat.MustFromECS(rows)
	r, err := core.TMA(env)
	if err != nil {
		t.Fatal(err)
	}
	if r.TMA < 0 || r.TMA > 1 {
		t.Fatalf("TMA = %g out of range", r.TMA)
	}
	if math.Abs(r.SingularValues[0]-1) > 1e-5 {
		t.Errorf("σ1 = %g at scale, want 1", r.SingularValues[0])
	}
}

func TestScaleSVDAgreementLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	rng := rand.New(rand.NewSource(202))
	a := matrix.New(200, 40)
	for i := range a.RawData() {
		a.RawData()[i] = rng.NormFloat64()
	}
	gr, err := linalg.SVDGolubReinsch(a)
	if err != nil {
		t.Fatal(err)
	}
	jac := linalg.SVDJacobi(a)
	if !matrix.VecEqualTol(gr.S, jac.S, 1e-8*(1+gr.S[0])) {
		t.Error("SVD algorithms disagree at 200x40")
	}
}
