//go:build race

package repro

// raceEnabled reports that this binary was built with -race; the scale
// tests that assert wall-clock ratios skip themselves then, since the
// instrumentation distorts exactly what they measure.
const raceEnabled = true
