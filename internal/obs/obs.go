// Package obs is the zero-dependency tracing layer of the repository: a
// Trace collects named, monotonically timed Spans for one unit of work (an
// HTTP request, a benchmark iteration, an experiment sweep), and the compute
// pipeline emits per-stage spans — standardize, gram, eigensolve, measures —
// whenever a Trace rides in on the context.
//
// The design center is the disabled path. Every hot kernel in this
// repository is called far more often without tracing than with it, so the
// absence of a trace must cost nothing measurable: FromContext on a plain
// context returns a nil *Trace, every method on a nil *Trace is a no-op, and
// Span is a small value type that never reaches the heap. The measured
// overhead of the disabled path on the cold 60×40 characterize benchmark is
// the regression budget documented in DESIGN.md §11 (≤ 2% ns/op).
//
// Timings are monotonic: a Trace anchors one time.Time at creation and every
// span start/duration is a time.Since against that anchor, so wall-clock
// adjustments cannot produce negative or skewed stage durations.
//
// A Trace is safe for concurrent use — parallel trials append spans from
// many goroutines — but an individual Span is owned by the goroutine that
// started it.
package obs

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"
)

// SpanRecord is one completed stage timing: the span name, its start offset
// from the trace anchor, and its duration. Records appear in completion
// (End) order.
type SpanRecord struct {
	Name  string
	Start time.Duration
	Dur   time.Duration
}

// Trace is a collection of stage timings for one unit of work. The zero
// value is not useful; build one with New. A nil *Trace is the disabled
// tracer: StartSpan and every other method no-op on it.
type Trace struct {
	id    string
	name  string
	start time.Time

	mu    sync.Mutex
	spans []SpanRecord
}

// New builds an enabled trace with the given id (e.g. a request id) and a
// human-readable name (e.g. the endpoint). The span slice is pre-grown so
// the common request shape appends without reallocating.
func New(id, name string) *Trace {
	return &Trace{
		id:    id,
		name:  name,
		start: time.Now(),
		spans: make([]SpanRecord, 0, 16),
	}
}

// ID returns the trace id ("" on a nil trace).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Name returns the trace name ("" on a nil trace).
func (t *Trace) Name() string {
	if t == nil {
		return ""
	}
	return t.name
}

// Elapsed returns the monotonic time since the trace was created (0 on a nil
// trace).
func (t *Trace) Elapsed() time.Duration {
	if t == nil {
		return 0
	}
	return time.Since(t.start)
}

// Span is an in-flight stage timing handle. It is a value type: starting a
// span on a nil (disabled) trace allocates nothing and End on the zero Span
// is a no-op, which is what makes `defer sp.End()` free on the disabled
// path.
type Span struct {
	tr    *Trace
	name  string
	start time.Duration
}

// StartSpan opens a named span on the trace. On a nil trace it returns the
// zero Span, whose End is a no-op.
func (t *Trace) StartSpan(name string) Span {
	if t == nil {
		return Span{}
	}
	return Span{tr: t, name: name, start: time.Since(t.start)}
}

// End closes the span, recording its duration on the owning trace. End on
// the zero Span (disabled path) does nothing. Calling End twice records the
// span twice; don't.
func (s Span) End() {
	if s.tr == nil {
		return
	}
	end := time.Since(s.tr.start)
	s.tr.mu.Lock()
	s.tr.spans = append(s.tr.spans, SpanRecord{Name: s.name, Start: s.start, Dur: end - s.start})
	s.tr.mu.Unlock()
}

// Spans returns a snapshot copy of the completed span records (nil on a nil
// trace). The copy is owned by the caller; concurrent spans may still be
// appending to the trace.
func (t *Trace) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]SpanRecord(nil), t.spans...)
}

// Summary renders the completed spans as a compact one-line log field,
// "name=1.234ms name=0.017ms", in completion order ("" on a nil trace).
func (t *Trace) Summary() string {
	if t == nil {
		return ""
	}
	spans := t.Spans()
	var b strings.Builder
	for i, sp := range spans {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%.3fms", sp.Name, float64(sp.Dur.Microseconds())/1000)
	}
	return b.String()
}

// ctxKey is the private context key for trace propagation.
type ctxKey struct{}

// NewContext returns ctx carrying the trace. Attaching a nil trace returns
// ctx unchanged, so callers can propagate "maybe tracing" without branching.
func NewContext(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext extracts the trace from ctx, or nil when the context carries
// none — the disabled fast path. Loops should hoist this call and reuse the
// returned *Trace rather than re-walking the context per iteration.
func FromContext(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}

// StartSpan opens a named span on the context's trace; with no trace in ctx
// it returns the zero (no-op) Span.
func StartSpan(ctx context.Context, name string) Span {
	return FromContext(ctx).StartSpan(name)
}
