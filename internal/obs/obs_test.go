package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanLifecycle(t *testing.T) {
	tr := New("req-1", "characterize")
	if tr.ID() != "req-1" || tr.Name() != "characterize" {
		t.Fatalf("trace identity lost: id=%q name=%q", tr.ID(), tr.Name())
	}

	sp := tr.StartSpan("standardize")
	time.Sleep(time.Millisecond)
	sp.End()
	sp = tr.StartSpan("eigensolve")
	sp.End()

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].Name != "standardize" || spans[1].Name != "eigensolve" {
		t.Errorf("span names wrong: %q, %q", spans[0].Name, spans[1].Name)
	}
	if spans[0].Dur < time.Millisecond {
		t.Errorf("standardize span duration %v, want >= 1ms", spans[0].Dur)
	}
	if spans[1].Start < spans[0].Start+spans[0].Dur {
		t.Errorf("second span starts at %v, before first ended at %v",
			spans[1].Start, spans[0].Start+spans[0].Dur)
	}
	for _, s := range spans {
		if s.Start < 0 || s.Dur < 0 {
			t.Errorf("span %q has negative timing: start %v dur %v", s.Name, s.Start, s.Dur)
		}
	}
	if tr.Elapsed() < spans[1].Start+spans[1].Dur {
		t.Errorf("trace elapsed %v shorter than its last span end", tr.Elapsed())
	}

	sum := tr.Summary()
	if !strings.Contains(sum, "standardize=") || !strings.Contains(sum, "eigensolve=") {
		t.Errorf("summary missing stages: %q", sum)
	}
}

func TestSpansSnapshotIsACopy(t *testing.T) {
	tr := New("id", "n")
	tr.StartSpan("a").End()
	snap := tr.Spans()
	snap[0].Name = "mutated"
	if tr.Spans()[0].Name != "a" {
		t.Error("Spans() exposed internal storage")
	}
}

// TestNilTraceNoOp pins the disabled fast path: every operation on a nil
// trace (the FromContext result for an untraced context) must be safe and
// allocation-free.
func TestNilTraceNoOp(t *testing.T) {
	var tr *Trace
	if tr.ID() != "" || tr.Name() != "" || tr.Elapsed() != 0 || tr.Spans() != nil || tr.Summary() != "" {
		t.Error("nil trace accessors must return zero values")
	}
	sp := tr.StartSpan("anything")
	sp.End() // must not panic

	if got := FromContext(context.Background()); got != nil {
		t.Errorf("FromContext on a plain context = %v, want nil", got)
	}
	if got := FromContext(nil); got != nil { //nolint:staticcheck // nil ctx is part of the contract
		t.Errorf("FromContext(nil) = %v, want nil", got)
	}
	if ctx := context.Background(); NewContext(ctx, nil) != ctx {
		t.Error("NewContext with a nil trace must return ctx unchanged")
	}

	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		s := StartSpan(ctx, "stage")
		s.End()
	})
	if allocs != 0 {
		t.Errorf("disabled StartSpan/End allocates %.1f objects per op, want 0", allocs)
	}
}

func TestContextRoundTrip(t *testing.T) {
	tr := New("id-7", "batch")
	ctx := NewContext(context.Background(), tr)
	if FromContext(ctx) != tr {
		t.Fatal("trace lost in context round trip")
	}
	sp := StartSpan(ctx, "compute")
	sp.End()
	if spans := tr.Spans(); len(spans) != 1 || spans[0].Name != "compute" {
		t.Errorf("context-started span not recorded: %+v", spans)
	}
}

// TestConcurrentSpansDoNotInterleave drives many goroutines recording spans
// on one trace (run with -race in the verify path). Each goroutine's spans
// must come out intact — name preserved, non-negative start and duration,
// nothing lost or torn by a concurrent append.
func TestConcurrentSpansDoNotInterleave(t *testing.T) {
	const (
		goroutines = 16
		perG       = 50
	)
	tr := New("race", "concurrent")
	names := [goroutines]string{}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		names[g] = string(rune('a' + g))
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				sp := tr.StartSpan(name)
				sp.End()
			}
		}(names[g])
	}
	wg.Wait()

	spans := tr.Spans()
	if len(spans) != goroutines*perG {
		t.Fatalf("got %d spans, want %d", len(spans), goroutines*perG)
	}
	counts := map[string]int{}
	for _, s := range spans {
		counts[s.Name]++
		if s.Start < 0 || s.Dur < 0 {
			t.Fatalf("span %q has negative timing: start %v dur %v", s.Name, s.Start, s.Dur)
		}
		if s.Start+s.Dur > tr.Elapsed() {
			t.Fatalf("span %q ends after the trace's own elapsed time", s.Name)
		}
	}
	for _, name := range names {
		if counts[name] != perG {
			t.Errorf("goroutine %q recorded %d spans, want %d", name, counts[name], perG)
		}
	}
}
