// Package spec provides the SPEC-benchmark-derived example environments of
// the reproduced paper's Section V (Figures 5-8).
//
// SUBSTITUTION NOTE (see DESIGN.md §2): the paper extracts peak runtimes of
// the SPEC CINT2006Rate (12 task types) and CFP2006Rate (17 task types)
// benchmarks on five named machines from spec.org. The numeric table bodies
// are not present in the available paper text and the build environment is
// offline, so this package synthesizes deterministic ETC matrices carrying
// the real benchmark names and machine list, *calibrated so the published
// measure values are reproduced*:
//
//	CINT2006Rate: TDH = 0.90, MPH = 0.82, TMA = 0.07   (paper Fig. 6)
//	CFP2006Rate:  TDH = 0.91, MPH = 0.83, TMA > TMA(CINT) (paper Fig. 7;
//	              the printed CFP TMA digits are lost, the paper states the
//	              floating-point suite shows more affinity — we use 0.11)
//
// and the Figure 8 2x2 extractions reproduce the published shapes:
// (a) TDH = 0.16, MPH = 0.31, TMA = 0.05 and (b) TMA = 0.60 (the other two
// printed values for (b) are lost; we fix TDH = 0.85, MPH = 0.35).
package spec

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/etcmat"
	"repro/internal/gen"
)

// Machine describes one of the five machines of the paper's Figure 5.
type Machine struct {
	ID          string // m1..m5, as used in the paper's matrices
	Description string
}

// Machines returns the five machines of Figure 5.
func Machines() []Machine {
	return []Machine{
		{"m1", "ASUS TS100-E6 (P7F-X) server system (Intel Xeon X3470)"},
		{"m2", "Fujitsu SPARC Enterprise M3000"},
		{"m3", "CELSIUS W280 Intel Core i7-870"},
		{"m4", "ProLiant SL165z G7 (2.2 GHz AMD Opteron 6174)"},
		{"m5", "IBM Power 750 Express (3.55 GHz, 32 core, SLES)"},
	}
}

// CINTTasks lists the 12 SPEC CINT2006Rate task types (paper Fig. 6).
func CINTTasks() []string {
	return []string{
		"400.perlbench", "401.bzip2", "403.gcc", "429.mcf", "445.gobmk",
		"456.hmmer", "458.sjeng", "462.libquantum", "464.h264ref",
		"471.omnetpp", "473.astar", "483.xalancbmk",
	}
}

// CFPTasks lists the 17 SPEC CFP2006Rate task types (paper Fig. 7).
func CFPTasks() []string {
	return []string{
		"410.bwaves", "416.gamess", "433.milc", "434.zeusmp", "435.gromacs",
		"436.cactusADM", "437.leslie3d", "444.namd", "447.dealII",
		"450.soplex", "453.povray", "454.calculix", "459.GemsFDTD",
		"465.tonto", "470.lbm", "481.wrf", "482.sphinx3",
	}
}

// Published measure values (paper Figs. 6-8). CFP TMA and Fig. 8(b) TDH/MPH
// were lost in the available text; the chosen stand-ins preserve the stated
// relations (CFP TMA > CINT TMA; Fig. 8(b) has much higher affinity than (a)).
const (
	CINTTDH, CINTMPH, CINTTMA    = 0.90, 0.82, 0.07
	CFPTDH, CFPMPH, CFPTMA       = 0.91, 0.83, 0.11
	Fig8aTDH, Fig8aMPH, Fig8aTMA = 0.16, 0.31, 0.05
	Fig8bTDH, Fig8bMPH, Fig8bTMA = 0.85, 0.35, 0.60
)

// meanETCSeconds scales the synthesized matrices into the range of real
// SPEC2006 peak runtimes (hundreds of seconds). All paper measures are scale
// invariant, so this is cosmetic.
const meanETCSeconds = 600.0

// CINT2006Rate returns the calibrated 12x5 integer-suite environment.
func CINT2006Rate() *etcmat.Env {
	return build(CINTTasks(), CINTTDH, CINTMPH, CINTTMA, 1)
}

// CFP2006Rate returns the calibrated 17x5 floating-point-suite environment.
func CFP2006Rate() *etcmat.Env {
	return build(CFPTasks(), CFPTDH, CFPMPH, CFPTMA, 2)
}

func build(tasks []string, tdh, mph, tma float64, seed int64) *etcmat.Env {
	machines := Machines()
	g, err := gen.Targeted(gen.Target{
		Tasks:    len(tasks),
		Machines: len(machines),
		MPH:      mph,
		TDH:      tdh,
		TMA:      tma,
		Tol:      5e-4,
	}, rand.New(rand.NewSource(seed)))
	if err != nil {
		panic(fmt.Sprintf("spec: calibration failed: %v", err))
	}
	env := g.Env
	// Rescale so the mean ETC lands in a realistic SPEC-runtime range.
	etc := env.ETC()
	mean := etc.Sum() / float64(etc.Rows()*etc.Cols())
	ecs := env.ECS().Scale(mean / meanETCSeconds)
	env, err = etcmat.NewFromECS(ecs)
	if err != nil {
		panic(fmt.Sprintf("spec: rescale failed: %v", err))
	}
	names := make([]string, len(machines))
	for i, m := range machines {
		names[i] = m.ID
	}
	if env, err = env.WithTaskNames(tasks); err != nil {
		panic(err)
	}
	if env, err = env.WithMachineNames(names); err != nil {
		panic(err)
	}
	return env
}

// Fig8a returns the paper's Figure 8(a): the {471.omnetpp, 436.cactusADM} x
// {m4, m5} extraction, calibrated to TDH = 0.16, MPH = 0.31, TMA = 0.05.
func Fig8a() *etcmat.Env {
	return build2x2([]string{"471.omnetpp", "436.cactusADM"}, []string{"m4", "m5"},
		Fig8aTDH, Fig8aMPH, Fig8aTMA)
}

// Fig8b returns the paper's Figure 8(b): the {436.cactusADM, 450.soplex} x
// {m1, m4} extraction, calibrated to TMA = 0.60 (published) with
// reconstructed TDH = 0.85, MPH = 0.35.
func Fig8b() *etcmat.Env {
	return build2x2([]string{"436.cactusADM", "450.soplex"}, []string{"m1", "m4"},
		Fig8bTDH, Fig8bMPH, Fig8bTMA)
}

// build2x2 constructs a 2x2 environment hitting (TDH, MPH, TMA) exactly.
// For a positive 2x2 matrix the standard form is [[p, 1-p], [1-p, p]] (up to
// the permutation fixed by the canonical ordering) and TMA = |2p-1| is a
// function of the scaling-invariant cross ratio (ad)/(bc) alone:
//
//	sqrt(ad/bc) = (1+TMA)/(1-TMA).
//
// Starting from the symmetric core [[1+τ, 1-τ], [1-τ, 1+τ]] (whose TMA is
// exactly τ) and rebalancing rows to the (TDH, 1) profile and columns to the
// (MPH, 1) profile changes neither the cross ratio nor the row/column sum
// ratios, so all three targets are met exactly.
func build2x2(tasks, machines []string, tdh, mph, tma float64) *etcmat.Env {
	coreRows := [][]float64{
		{1 + tma, 1 - tma},
		{1 - tma, 1 + tma},
	}
	env := etcmat.MustFromECS(coreRows)
	// Rebalance rows/cols to the target homogeneity profiles with a tiny
	// Sinkhorn-to-targets loop (positive 2x2 always converges).
	ecs := env.ECS()
	rowT := []float64{tdh, 1}
	colT := []float64{mph, 1}
	// Equalize totals.
	tot := (tdh + 1)
	scale := tot / (mph + 1)
	colT[0] *= scale
	colT[1] *= scale
	for iter := 0; iter < 2000; iter++ {
		cs := ecs.ColSums()
		ecs.ScaleCols([]float64{colT[0] / cs[0], colT[1] / cs[1]})
		rs := ecs.RowSums()
		ecs.ScaleRows([]float64{rowT[0] / rs[0], rowT[1] / rs[1]})
		if math.Abs(ecs.ColSum(0)-colT[0]) < 1e-13 && math.Abs(ecs.ColSum(1)-colT[1]) < 1e-13 {
			break
		}
	}
	// Scale into a realistic runtime range.
	mean := 0.0
	for _, v := range ecs.RawData() {
		mean += 1 / v
	}
	mean /= 4
	ecs.Scale(mean / meanETCSeconds)
	out, err := etcmat.NewFromECS(ecs)
	if err != nil {
		panic(err)
	}
	if out, err = out.WithTaskNames(tasks); err != nil {
		panic(err)
	}
	if out, err = out.WithMachineNames(machines); err != nil {
		panic(err)
	}
	return out
}
