package spec

import (
	"math"
	"testing"

	"repro/internal/core"
)

func TestMachinesFigure5(t *testing.T) {
	ms := Machines()
	if len(ms) != 5 {
		t.Fatalf("got %d machines, want 5", len(ms))
	}
	if ms[0].ID != "m1" || ms[4].ID != "m5" {
		t.Errorf("machine IDs wrong: %v", ms)
	}
	for _, m := range ms {
		if m.Description == "" {
			t.Errorf("machine %s has no description", m.ID)
		}
	}
}

func TestSuiteShapes(t *testing.T) {
	cint := CINT2006Rate()
	if cint.Tasks() != 12 || cint.Machines() != 5 {
		t.Errorf("CINT dims = %dx%d, want 12x5", cint.Tasks(), cint.Machines())
	}
	cfp := CFP2006Rate()
	if cfp.Tasks() != 17 || cfp.Machines() != 5 {
		t.Errorf("CFP dims = %dx%d, want 17x5", cfp.Tasks(), cfp.Machines())
	}
	if got := cint.TaskNames()[9]; got != "471.omnetpp" {
		t.Errorf("CINT task 10 = %s, want 471.omnetpp", got)
	}
	if got := cfp.TaskNames()[5]; got != "436.cactusADM" {
		t.Errorf("CFP task 6 = %s, want 436.cactusADM", got)
	}
}

// Figure 6: the CINT environment must reproduce the published measures.
func TestCINTMatchesFigure6(t *testing.T) {
	p := core.Characterize(CINT2006Rate())
	if p.TMAErr != nil {
		t.Fatal(p.TMAErr)
	}
	if math.Abs(p.TDH-CINTTDH) > 0.005 {
		t.Errorf("TDH = %.4f, want %.2f", p.TDH, CINTTDH)
	}
	if math.Abs(p.MPH-CINTMPH) > 0.005 {
		t.Errorf("MPH = %.4f, want %.2f", p.MPH, CINTMPH)
	}
	if math.Abs(p.TMA-CINTTMA) > 0.005 {
		t.Errorf("TMA = %.4f, want %.2f", p.TMA, CINTTMA)
	}
}

// Figure 7: the CFP environment must reproduce the published measures, and
// show more task-machine affinity than the integer suite (the paper's
// qualitative finding for floating-point workloads).
func TestCFPMatchesFigure7(t *testing.T) {
	p := core.Characterize(CFP2006Rate())
	if p.TMAErr != nil {
		t.Fatal(p.TMAErr)
	}
	if math.Abs(p.TDH-CFPTDH) > 0.005 {
		t.Errorf("TDH = %.4f, want %.2f", p.TDH, CFPTDH)
	}
	if math.Abs(p.MPH-CFPMPH) > 0.005 {
		t.Errorf("MPH = %.4f, want %.2f", p.MPH, CFPMPH)
	}
	cint := core.Characterize(CINT2006Rate())
	if !(p.TMA > cint.TMA) {
		t.Errorf("TMA(CFP) = %.4f must exceed TMA(CINT) = %.4f", p.TMA, cint.TMA)
	}
}

// The paper reports standardization converging in 6 (CINT) and 7 (CFP)
// iterations at tolerance 1e-8. Our calibrated matrices must show the same
// fast geometric convergence (single digits to low tens).
func TestConvergenceIterationCounts(t *testing.T) {
	for _, tc := range []struct {
		name string
		p    *core.Profile
	}{
		{"CINT", core.Characterize(CINT2006Rate())},
		{"CFP", core.Characterize(CFP2006Rate())},
	} {
		if tc.p.SinkhornIterations < 2 || tc.p.SinkhornIterations > 30 {
			t.Errorf("%s: %d iterations, want the paper's fast-convergence regime", tc.name, tc.p.SinkhornIterations)
		}
	}
}

func TestDatasetsDeterministic(t *testing.T) {
	a, b := CINT2006Rate(), CINT2006Rate()
	if a.ECS().String() != b.ECS().String() {
		t.Error("CINT dataset is not deterministic")
	}
}

func TestRuntimesRealistic(t *testing.T) {
	etc := CINT2006Rate().ETC()
	mean := etc.Sum() / float64(etc.Rows()*etc.Cols())
	if math.Abs(mean-600) > 1 {
		t.Errorf("mean ETC = %.1f s, want ~600 s", mean)
	}
	if etc.Min() <= 0 {
		t.Errorf("non-positive runtime %g", etc.Min())
	}
}

// Figure 8(a): the low-affinity 2x2 extraction.
func TestFig8aMeasures(t *testing.T) {
	env := Fig8a()
	p := core.Characterize(env)
	if p.TMAErr != nil {
		t.Fatal(p.TMAErr)
	}
	if math.Abs(p.TDH-Fig8aTDH) > 0.005 {
		t.Errorf("TDH = %.4f, want %.2f", p.TDH, Fig8aTDH)
	}
	if math.Abs(p.MPH-Fig8aMPH) > 0.005 {
		t.Errorf("MPH = %.4f, want %.2f", p.MPH, Fig8aMPH)
	}
	if math.Abs(p.TMA-Fig8aTMA) > 0.005 {
		t.Errorf("TMA = %.4f, want %.2f", p.TMA, Fig8aTMA)
	}
	if names := env.TaskNames(); names[0] != "471.omnetpp" || names[1] != "436.cactusADM" {
		t.Errorf("task names = %v", names)
	}
	if names := env.MachineNames(); names[0] != "m4" || names[1] != "m5" {
		t.Errorf("machine names = %v", names)
	}
}

// Figure 8(b): the high-affinity 2x2 extraction (published TMA = 0.60).
func TestFig8bMeasures(t *testing.T) {
	p := core.Characterize(Fig8b())
	if p.TMAErr != nil {
		t.Fatal(p.TMAErr)
	}
	if math.Abs(p.TMA-Fig8bTMA) > 0.005 {
		t.Errorf("TMA = %.4f, want %.2f (published)", p.TMA, Fig8bTMA)
	}
	if math.Abs(p.TDH-Fig8bTDH) > 0.005 || math.Abs(p.MPH-Fig8bMPH) > 0.005 {
		t.Errorf("reconstructed TDH/MPH = %.4f/%.4f, want %.2f/%.2f", p.TDH, p.MPH, Fig8bTDH, Fig8bMPH)
	}
}

// The paper's Figure 8 comparison: (a) and (b) are similar in machine
// performance terms but differ sharply in affinity.
func TestFig8Contrast(t *testing.T) {
	a, b := core.Characterize(Fig8a()), core.Characterize(Fig8b())
	if !(b.TMA > 10*a.TMA) {
		t.Errorf("affinity contrast lost: (a) %.3f vs (b) %.3f", a.TMA, b.TMA)
	}
}
