package parallel

import "context"

// Context plumbing for worker counts. The serving tier decides how many
// goroutines a request may fan out on (its configured worker budget); the
// numeric kernels deep in the pipeline are the ones that can use them. A
// context value bridges the layers without threading a workers parameter
// through every intermediate signature — and because all parallel kernels in
// this repository are bit-identical across worker counts, the value tunes
// only latency, never results.

type workersKey struct{}

// WithWorkers returns a context that carries a worker budget for downstream
// parallel kernels. n ≤ 0 removes any explicit budget (kernels fall back to
// their own defaults).
func WithWorkers(ctx context.Context, n int) context.Context {
	if n <= 0 {
		n = 0
	}
	return context.WithValue(ctx, workersKey{}, n)
}

// WorkersFrom reports the worker budget carried by ctx, or 0 when none was
// set — callers treat 0 as "choose a default" (typically Workers(0), i.e.
// GOMAXPROCS).
func WorkersFrom(ctx context.Context) int {
	if ctx == nil {
		return 0
	}
	n, _ := ctx.Value(workersKey{}).(int)
	return n
}
