package parallel

import (
	"context"
	"errors"
	"math/rand"
	"sync/atomic"
	"testing"
)

func TestMapOrdering(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		out, err := Map(context.Background(), 50, workers, func(_ context.Context, i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map(context.Background(), 0, 4, func(_ context.Context, i int) (int, error) {
		t.Fatal("fn called for n = 0")
		return 0, nil
	})
	if err != nil || len(out) != 0 {
		t.Fatalf("got %v, %v", out, err)
	}
}

func TestMapErrorCancels(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int64
	_, err := Map(context.Background(), 1000, 4, func(ctx context.Context, i int) (int, error) {
		ran.Add(1)
		if i == 3 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
	if n := ran.Load(); n == 1000 {
		t.Logf("all %d tasks ran before cancellation took effect", n)
	}
}

func TestMapContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Map(ctx, 10, 4, func(_ context.Context, i int) (int, error) { return i, nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestMapNilContext(t *testing.T) {
	out, err := Map(nil, 3, 2, func(_ context.Context, i int) (int, error) { return i + 1, nil })
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 1 || out[2] != 3 {
		t.Fatalf("got %v", out)
	}
}

// The reproducibility contract: MapSeeded output must not depend on the
// worker count.
func TestMapSeededDeterministic(t *testing.T) {
	run := func(workers int) []float64 {
		out, err := MapSeeded(context.Background(), 64, workers, 42, func(_ context.Context, i int, rng *rand.Rand) (float64, error) {
			s := 0.0
			for k := 0; k < 10; k++ {
				s += rng.Float64()
			}
			return s, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	seq := run(1)
	for _, workers := range []int{2, 4, 16} {
		par := run(workers)
		for i := range seq {
			if par[i] != seq[i] {
				t.Fatalf("workers=%d: out[%d] = %v, want %v (sequential)", workers, i, par[i], seq[i])
			}
		}
	}
}

func TestDeriveSeedSpread(t *testing.T) {
	seen := map[int64]bool{}
	for i := 0; i < 1000; i++ {
		s := DeriveSeed(7, i)
		if seen[s] {
			t.Fatalf("seed collision at index %d", i)
		}
		seen[s] = true
	}
	if DeriveSeed(7, 0) == 7 {
		t.Error("index 0 must not collapse to the base seed")
	}
	if DeriveSeed(7, 0) == DeriveSeed(8, 0) {
		t.Error("different base seeds must derive different streams")
	}
}

func TestDo(t *testing.T) {
	var a, b atomic.Bool
	err := Do(context.Background(), 2,
		func(context.Context) error { a.Store(true); return nil },
		func(context.Context) error { b.Store(true); return nil },
	)
	if err != nil || !a.Load() || !b.Load() {
		t.Fatalf("err=%v a=%v b=%v", err, a.Load(), b.Load())
	}
}

func TestWorkers(t *testing.T) {
	if Workers(0) < 1 {
		t.Error("Workers(0) must be at least 1")
	}
	if Workers(-3) < 1 {
		t.Error("Workers(-3) must be at least 1")
	}
	if Workers(5) != 5 {
		t.Error("positive counts pass through")
	}
}
