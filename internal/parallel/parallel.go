// Package parallel provides the bounded fan-out primitives the experiment
// engine and the batch characterization APIs are built on: a fixed-size
// worker pool with deterministic result ordering, context cancellation, and
// reproducible per-task randomness.
//
// Determinism is the design center. Monte Carlo sweeps in this repository
// must produce byte-identical output whether they run on 1 worker or 32, so
// randomness is not handed out per worker (work stealing would make the
// stream assignment depend on scheduling); instead every task index derives
// its own independent *rand.Rand from a base seed with a SplitMix64 hash.
// The sequential path (workers = 1) walks the same derivation, so parallel
// and sequential runs of a seeded sweep are exactly identical.
package parallel

import (
	"context"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// Workers normalizes a worker-count request: non-positive selects
// GOMAXPROCS(0), anything else is returned unchanged.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Map runs fn(ctx, i) for every i in [0, n) on at most workers goroutines
// and returns the results in index order. The first error cancels the
// remaining work (tasks already running finish; queued indices are skipped)
// and is returned. A nil or already-canceled context short-circuits.
//
// When ctx carries an obs.Trace, every task is recorded as a "task" span, so
// a traced batch exposes its per-item latency distribution; the untraced path
// pays only a nil-receiver check.
func Map[T any](ctx context.Context, n, workers int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	out := make([]T, n)
	if n == 0 {
		return out, ctx.Err()
	}
	tr := obs.FromContext(ctx)
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		// Sequential fast path: no goroutines, same semantics.
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return out, err
			}
			sp := tr.StartSpan("task")
			v, err := fn(ctx, i)
			sp.End()
			if err != nil {
				return out, err
			}
			out[i] = v
		}
		return out, nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next     atomic.Int64 // next index to claim
		firstErr atomic.Value // error of the first failing task
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= n || ctx.Err() != nil {
					return
				}
				sp := tr.StartSpan("task")
				v, err := fn(ctx, i)
				sp.End()
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					cancel()
					return
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	if err, ok := firstErr.Load().(error); ok {
		return out, err
	}
	return out, ctx.Err()
}

// MapSeeded is Map with reproducible randomness: task i receives a private
// *rand.Rand seeded by DeriveSeed(seed, i), so the result slice is identical
// for every worker count, including the sequential path.
func MapSeeded[T any](ctx context.Context, n, workers int, seed int64, fn func(ctx context.Context, i int, rng *rand.Rand) (T, error)) ([]T, error) {
	return Map(ctx, n, workers, func(ctx context.Context, i int) (T, error) {
		return fn(ctx, i, rand.New(rand.NewSource(DeriveSeed(seed, i))))
	})
}

// Do runs the given tasks on at most workers goroutines and returns the
// first error (canceling the rest), preserving Map's semantics for
// heterogeneous task sets.
func Do(ctx context.Context, workers int, tasks ...func(ctx context.Context) error) error {
	_, err := Map(ctx, len(tasks), workers, func(ctx context.Context, i int) (struct{}, error) {
		return struct{}{}, tasks[i](ctx)
	})
	return err
}

// DeriveSeed maps a (base seed, stream index) pair to an independent seed
// using the SplitMix64 finalizer — the standard way to split one seed into
// many statistically independent streams (Steele et al., "Fast Splittable
// Pseudorandom Number Generators", OOPSLA 2014). Adjacent indices yield
// uncorrelated streams, and index 0 does not collapse to the base seed.
func DeriveSeed(seed int64, index int) int64 {
	z := uint64(seed) + uint64(index+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}
