package sinkhorn

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/linalg"
	"repro/internal/matrix"
)

func randPositive(rng *rand.Rand, r, c int) *matrix.Dense {
	m := matrix.New(r, c)
	for i := range m.RawData() {
		m.RawData()[i] = 0.1 + rng.Float64()*10
	}
	return m
}

func checkSums(t *testing.T, w *matrix.Dense, rowTarget, colTarget, tol float64) {
	t.Helper()
	for i, s := range w.RowSums() {
		if math.Abs(s-rowTarget) > tol {
			t.Errorf("row %d sum = %g, want %g", i, s, rowTarget)
		}
	}
	for j, s := range w.ColSums() {
		if math.Abs(s-colTarget) > tol {
			t.Errorf("col %d sum = %g, want %g", j, s, colTarget)
		}
	}
}

func TestStandardTargets(t *testing.T) {
	rt, ct := StandardTargets(12, 5)
	if math.Abs(rt-math.Sqrt(5.0/12.0)) > 1e-15 {
		t.Errorf("rowTarget = %g", rt)
	}
	if math.Abs(ct-math.Sqrt(12.0/5.0)) > 1e-15 {
		t.Errorf("colTarget = %g", ct)
	}
	// Consistency: T*rowTarget == M*colTarget == sqrt(T*M).
	if math.Abs(12*rt-5*ct) > 1e-12 {
		t.Errorf("targets inconsistent: %g vs %g", 12*rt, 5*ct)
	}
}

func TestBalancePositiveSquare(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	a := randPositive(rng, 6, 6)
	res, err := DoublyStochastic(a)
	if err != nil {
		t.Fatalf("DoublyStochastic: %v", err)
	}
	if !res.Converged {
		t.Fatal("did not converge on positive matrix")
	}
	checkSums(t, res.Scaled, 1, 1, 1e-7)
}

// Theorem 1: for positive rectangular matrices the standard form exists, is
// reached by the iteration, and equals D1·A·D2.
func TestStandardizePositiveRectangular(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, dims := range [][2]int{{12, 5}, {5, 12}, {3, 3}, {17, 5}, {2, 9}} {
		a := randPositive(rng, dims[0], dims[1])
		res, err := Standardize(a)
		if err != nil {
			t.Fatalf("%v: %v", dims, err)
		}
		rt, ct := StandardTargets(dims[0], dims[1])
		checkSums(t, res.Scaled, rt, ct, 1e-7)
		// Scaled == D1 A D2.
		recon := a.Clone().ScaleRows(res.D1).ScaleCols(res.D2)
		if !matrix.EqualTol(recon, res.Scaled, 1e-10) {
			t.Errorf("%v: D1·A·D2 != Scaled, diff %g", dims, matrix.Sub(recon, res.Scaled).MaxAbs())
		}
	}
}

// Theorem 2: the largest singular value of the standard form is 1.
func TestTheorem2LargestSingularValueIsOne(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 20; trial++ {
		r := 2 + rng.Intn(10)
		c := 2 + rng.Intn(10)
		a := randPositive(rng, r, c)
		res, err := Standardize(a)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		s := linalg.SingularValues(res.Scaled, nil)
		if math.Abs(s[0]-1) > 1e-6 {
			t.Errorf("trial %d (%dx%d): σ1 = %g, want 1", trial, r, c, s[0])
		}
	}
}

// Theorem 1 uniqueness: D1 and D2 are unique up to reciprocal scalar
// multiples, so the standard form itself is unique — balancing any
// pre-scaled version k·A must give the same standard matrix.
func TestStandardFormUniqueUnderScaling(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	a := randPositive(rng, 5, 7)
	r1, err := Standardize(a)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Standardize(a.Scaled(37.5))
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.EqualTol(r1.Scaled, r2.Scaled, 1e-6) {
		t.Error("standard form changed under input scaling")
	}
}

// Uniqueness also holds against arbitrary positive row/column pre-scalings:
// standardize(D1 A D2) == standardize(A).
func TestStandardFormInvariantToDiagonalPrescaling(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	a := randPositive(rng, 4, 6)
	d1 := make([]float64, 4)
	d2 := make([]float64, 6)
	for i := range d1 {
		d1[i] = 0.1 + rng.Float64()*5
	}
	for j := range d2 {
		d2[j] = 0.1 + rng.Float64()*5
	}
	pre := a.Clone().ScaleRows(d1).ScaleCols(d2)
	r1, err1 := Standardize(a)
	r2, err2 := Standardize(pre)
	if err1 != nil || err2 != nil {
		t.Fatalf("errors: %v, %v", err1, err2)
	}
	if !matrix.EqualTol(r1.Scaled, r2.Scaled, 1e-6) {
		t.Errorf("standard form not invariant to diagonal prescaling, diff %g",
			matrix.Sub(r1.Scaled, r2.Scaled).MaxAbs())
	}
}

func TestBalanceAlreadyStandardConvergesImmediately(t *testing.T) {
	// A constant 2x2 matrix with entries 1/2 is doubly stochastic.
	a := matrix.Constant(2, 2, 0.5)
	res, err := DoublyStochastic(a)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 1 {
		t.Errorf("iterations = %d, want 1 for already-balanced input", res.Iterations)
	}
}

func TestBalanceZeroRowRejected(t *testing.T) {
	a := matrix.FromRows([][]float64{{0, 0}, {1, 2}})
	_, err := DoublyStochastic(a)
	if !errors.Is(err, ErrZeroLine) {
		t.Errorf("err = %v, want ErrZeroLine", err)
	}
}

func TestBalanceZeroColRejected(t *testing.T) {
	a := matrix.FromRows([][]float64{{0, 1}, {0, 2}})
	_, err := DoublyStochastic(a)
	if !errors.Is(err, ErrZeroLine) {
		t.Errorf("err = %v, want ErrZeroLine", err)
	}
}

func TestBalanceNegativeRejected(t *testing.T) {
	a := matrix.FromRows([][]float64{{1, -1}, {1, 2}})
	if _, err := DoublyStochastic(a); err == nil {
		t.Error("negative input accepted")
	}
}

func TestBalanceInconsistentTargetsRejected(t *testing.T) {
	a := matrix.Constant(2, 3, 1)
	_, err := Balance(a, Options{RowTarget: 1, ColTarget: 1})
	if err == nil {
		t.Error("inconsistent targets accepted (2*1 != 3*1)")
	}
}

func TestBalanceBadTargetsRejected(t *testing.T) {
	a := matrix.Constant(2, 2, 1)
	if _, err := Balance(a, Options{RowTarget: 0, ColTarget: 1}); err == nil {
		t.Error("zero target accepted")
	}
}

// The paper's Eq. 10 matrix is decomposable: the iteration must not converge,
// and must say so.
func TestEq10DoesNotConverge(t *testing.T) {
	a := matrix.FromRows([][]float64{
		{0, 1, 0},
		{1, 0, 1},
		{0, 1, 1},
	})
	res, err := Balance(a, Options{RowTarget: 1, ColTarget: 1, MaxIter: 500})
	if !errors.Is(err, ErrNotConverged) {
		t.Fatalf("err = %v, want ErrNotConverged", err)
	}
	if res == nil || res.Converged {
		t.Fatal("result should report non-convergence")
	}
	if res.MaxDeviation < 1e-3 {
		t.Errorf("deviation %g suspiciously small for a non-scalable matrix", res.MaxDeviation)
	}
}

// Support without total support (paper Fig. 4 A/B/D style): the entrywise
// limit exists — unsupported entries decay to zero and the sums converge —
// so Balance converges, but the limit has more zeros than the input.
func TestSupportWithoutTotalSupportConvergesEntrywise(t *testing.T) {
	a := matrix.FromRows([][]float64{{10, 0}, {45, 55}})
	res, err := Standardize(a)
	if err != nil {
		t.Fatalf("expected entrywise convergence, got %v", err)
	}
	// Limit is the standard form of the identity pattern: diag(√1, √1) = I
	// scaled to row target 1 (T = M = 2 gives targets 1, 1).
	want := matrix.Identity(2)
	if !matrix.EqualTol(res.Scaled, want, 1e-6) {
		t.Errorf("limit = \n%v want identity", res.Scaled)
	}
	if res.Trimmed != 1 {
		t.Errorf("Trimmed = %d, want 1 (the unsupported (1,0) entry)", res.Trimmed)
	}
}

// Raw Eq. 9 iteration (no trimming) on the same matrix approaches the same
// limit, but only sublinearly: after a bounded number of iterations the
// iterate is already close to the trimmed limit even though the paper
// tolerance is not reached.
func TestSupportWithoutTotalSupportRawIterationApproachesLimit(t *testing.T) {
	a := matrix.FromRows([][]float64{{10, 0}, {45, 55}})
	res, err := Balance(a, Options{RowTarget: 1, ColTarget: 1, MaxIter: 5000})
	if !errors.Is(err, ErrNotConverged) {
		t.Fatalf("raw iteration should not reach 1e-8 here, got err = %v", err)
	}
	if !matrix.EqualTol(res.Scaled, matrix.Identity(2), 1e-2) {
		t.Errorf("raw iterate far from the entrywise limit:\n%v", res.Scaled)
	}
}

// Rectangular block-disjoint patterns balance exactly: the tiled pattern has
// total support and the direct iteration converges to the block form.
func TestStandardizeRectangularBlockPattern(t *testing.T) {
	a := matrix.FromRows([][]float64{
		{1, 1, 0, 0},
		{0, 0, 1, 1},
	})
	res, err := Standardize(a)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trimmed != 0 {
		t.Errorf("block pattern should not be trimmed, got %d", res.Trimmed)
	}
	rt, ct := StandardTargets(2, 4)
	checkSums(t, res.Scaled, rt, ct, 1e-7)
}

// A 3x2 pattern whose columns have disjoint support of mismatched sizes
// cannot be balanced: one column's single entry would have to equal both the
// row and column targets. The Sec. VI tiling analysis must reject it with
// ErrNoSupport instead of iterating forever.
func TestStandardizeRectangularImpossiblePattern(t *testing.T) {
	a := matrix.FromRows([][]float64{
		{2, 0},
		{0, 5},
		{3, 0},
	})
	if _, err := Standardize(a); !errors.Is(err, ErrNoSupport) {
		t.Errorf("err = %v, want ErrNoSupport", err)
	}
}

// Rectangular support-without-total-support: the unsupported entry is
// trimmed via the tiling analysis and the limit balances geometrically.
func TestStandardizeRectangularTrims(t *testing.T) {
	// 2x4: the (0,2) entry rides on no positive diagonal of the tiling —
	// columns 2 and 3 must both be served by row 1's copies once (0,2) is
	// considered, overloading them.
	a := matrix.FromRows([][]float64{
		{1, 1, 1, 0},
		{0, 0, 1, 1},
	})
	res, err := Standardize(a)
	if err != nil {
		t.Fatalf("expected entrywise convergence via trimming, got %v", err)
	}
	rt, ct := StandardTargets(2, 4)
	checkSums(t, res.Scaled, rt, ct, 1e-7)
	if res.Trimmed != 1 {
		t.Errorf("Trimmed = %d, want 1 (the (0,2) entry, verified against the raw iteration limit)", res.Trimmed)
	}
	if res.Scaled.At(0, 2) != 0 {
		t.Errorf("(0,2) = %g, want 0 in the limit", res.Scaled.At(0, 2))
	}
}

// Standardize must refuse square patterns without any positive diagonal.
func TestStandardizeNoSupport(t *testing.T) {
	// Rows 0 and 1 live only in column 0 — max matching has size 2 < 3, but
	// no zero row/column exists.
	a := matrix.FromRows([][]float64{
		{1, 0, 0},
		{2, 0, 0},
		{3, 4, 5},
	})
	if _, err := Standardize(a); !errors.Is(err, ErrNoSupport) {
		t.Errorf("err = %v, want ErrNoSupport", err)
	}
}

// Convergence is geometric for positive matrices: well-conditioned inputs
// converge in a handful of iterations at the paper's 1e-8 tolerance.
func TestConvergenceSpeedOnMildMatrices(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	a := randPositive(rng, 12, 5)
	res, err := Standardize(a)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations > 50 {
		t.Errorf("took %d iterations, expected fast geometric convergence", res.Iterations)
	}
}

func TestBalanceDoesNotMutateInput(t *testing.T) {
	a := matrix.FromRows([][]float64{{1, 2}, {3, 4}})
	orig := a.Clone()
	if _, err := DoublyStochastic(a); err != nil {
		t.Fatal(err)
	}
	if !matrix.EqualTol(a, orig, 0) {
		t.Error("Balance mutated its input")
	}
}

func TestDoublyStochasticRequiresSquare(t *testing.T) {
	if _, err := DoublyStochastic(matrix.New(2, 3)); err == nil {
		t.Error("non-square accepted by DoublyStochastic")
	}
}

func TestBalanceEmptyRejected(t *testing.T) {
	if _, err := Standardize(matrix.New(0, 0)); err == nil {
		t.Error("empty matrix accepted")
	}
}

// Balance must also work with custom consistent targets (Theorem 1 general k):
// rows sum to M*k, columns to T*k.
func TestBalanceCustomK(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	a := randPositive(rng, 3, 4)
	k := 2.5
	res, err := Balance(a, Options{RowTarget: 4 * k, ColTarget: 3 * k})
	if err != nil {
		t.Fatal(err)
	}
	checkSums(t, res.Scaled, 4*k, 3*k, 1e-7)
}
