// Package sinkhorn implements the iterative row/column normalization that
// puts an ECS matrix in *standard form* (Section III-C/D of the reproduced
// paper): alternating column and row normalizations (the paper's Eq. 9) until
// every row sums to a common target and every column sums to a common target.
//
// With the paper's scaling choice (Theorem 1 with k = 1/√(TM)) a T×M matrix
// is driven to row sums √(M/T) and column sums √(T/M); Theorem 2 then
// guarantees the largest singular value of the standard matrix is exactly 1,
// which simplifies the TMA formula.
//
// The iteration is Sinkhorn's (the paper's ref [21], generalized to
// rectangular matrices in Appendix A). For matrices with zeros it may
// converge only entrywise (support without total support — the scaling
// factors diverge while unsupported entries decay to zero) or not at all
// (decomposable patterns such as the paper's Eq. 10); both conditions are
// detected and reported in the Result.
package sinkhorn

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/bipartite"
	"repro/internal/matrix"
	"repro/internal/obs"
)

// Options configures Balance.
type Options struct {
	// RowTarget and ColTarget are the desired common row and column sums.
	// They must be positive and consistent: rows*RowTarget == cols*ColTarget
	// (both equal the total mass of the scaled matrix).
	RowTarget, ColTarget float64
	// Tol is the convergence tolerance on the maximum absolute deviation of
	// any row or column sum from its target. The paper uses 1e-8 (Sec. V).
	Tol float64
	// MaxIter caps the number of iterations, where one iteration is one
	// column normalization followed by one row normalization (the paper's
	// convention when reporting convergence in 6-7 iterations). Zero selects
	// the default of 10000.
	MaxIter int
	// TrimUnsupported applies to matrices containing zeros. When set,
	// entries that lie on no positive diagonal (no total support; computed
	// on the matrix itself when square, or on its Appendix A square tiling
	// when rectangular) are zeroed before iterating. Those entries decay to
	// zero in the Sinkhorn limit anyway, but only sublinearly — trimming
	// computes the same entrywise limit with geometric convergence. The
	// number of removed entries is reported in Result.Trimmed; a nonzero
	// count means the original matrix is not exactly scalable by finite
	// positive diagonal matrices (the paper's Fig. 4 A/B/D situation).
	TrimUnsupported bool
}

// DefaultTol is the convergence tolerance used in the paper's experiments
// (Section V: "maximum error in any column or row norm is less than 1/10^8").
const DefaultTol = 1e-8

// Result reports the outcome of a balancing run.
type Result struct {
	// Scaled is the balanced matrix (a new matrix; the input is untouched).
	Scaled *matrix.Dense
	// D1 and D2 are the accumulated diagonal scaling factors:
	// Scaled = D1 · A · D2 (as vectors of the diagonals). Theorem 1
	// guarantees they are unique up to reciprocal scalar multiples for
	// positive A. For matrices with zeros they may diverge even when Scaled
	// converges.
	D1, D2 []float64
	// Iterations is the number of column+row normalization rounds performed.
	Iterations int
	// Converged reports whether the deviation dropped below Tol.
	Converged bool
	// MaxDeviation is the final maximum |sum - target| over all rows and
	// columns.
	MaxDeviation float64
	// Trimmed is the number of entries zeroed by Options.TrimUnsupported.
	// When positive, the input has no exact scaling D1·A·D2 with the same
	// zero pattern; Scaled is the entrywise limit of the paper's Eq. 9
	// iteration instead.
	Trimmed int
}

// ErrZeroLine is returned when the input has an all-zero row or column, for
// which no scaling can exist (the paper excludes these from valid ECS
// matrices: a machine that can run nothing, or a task type no machine runs).
var ErrZeroLine = errors.New("sinkhorn: input has an all-zero row or column")

// ErrNotConverged is returned when MaxIter rounds did not reach Tol. This is
// the expected outcome for decomposable patterns such as the paper's Eq. 10
// example; use bipartite.ScalableSquare for a structural diagnosis.
var ErrNotConverged = errors.New("sinkhorn: iteration did not converge (matrix may not be scalable)")

// ErrNoSupport is returned by TrimUnsupported preprocessing when the zero
// pattern (of the matrix, or of its Appendix A square tiling in the
// rectangular case) has no positive diagonal at all; the Sinkhorn iteration
// has no limit for such matrices.
var ErrNoSupport = errors.New("sinkhorn: zero pattern has no support (no positive diagonal)")

// Workspace carries the scratch state of a balancing run — the working
// matrix, the accumulated scaling diagonals and the fused-pass sum buffers —
// so Monte Carlo sweeps that standardize thousands of matrices reuse one
// allocation set instead of paying ~6 allocations per call. A Workspace is
// not safe for concurrent use; pool one per goroutine with
// GetWorkspace/PutWorkspace.
type Workspace struct {
	w              *matrix.Dense
	d1, d2, cs, rs []float64
	res            Result
}

// NewWorkspace returns an empty balancing workspace; buffers grow on use.
func NewWorkspace() *Workspace { return &Workspace{w: matrix.New(0, 0)} }

var workspacePool = sync.Pool{New: func() any { return NewWorkspace() }}

// GetWorkspace fetches a balancing workspace from the shared pool.
func GetWorkspace() *Workspace { return workspacePool.Get().(*Workspace) }

// PutWorkspace returns a workspace to the shared pool. Results produced
// through ws become invalid; the caller must not use either afterwards.
func PutWorkspace(ws *Workspace) { workspacePool.Put(ws) }

func growVec(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	return (*buf)[:n]
}

// WarmStart carries the converged scaling vectors of a previous balancing
// run, to seed a run on a nearby matrix: a what-if edit, a 1% perturbation,
// the next probe of a parameter sweep. The iteration starts from
// diag(D1)·A·diag(D2) instead of A itself, so when the seed is close to the
// true scaling only a residual correction remains. The vectors must be
// strictly positive and finite and match the matrix dimensions; the limit
// reached is identical to a cold start (Theorem 1: the scaling is unique up
// to reciprocal scalar multiples), so warm and cold results agree to the
// convergence tolerance.
//
// When Sigma2 is also set, the warm run over-relaxes each normalization
// (see the omega computation in BalanceWarmWS), which roughly squares the
// per-round contraction near the fixed point. Combined, seeding plus
// over-relaxation typically converges in 2-3x fewer rounds than a cold
// start for percent-level perturbations.
type WarmStart struct {
	// D1 and D2 are the row and column scaling seeds, usually a previous
	// Result's D1 and D2 (cloned if that Result was workspace-backed).
	D1, D2 []float64
	// Sigma2 optionally holds the second-largest singular value of the
	// previous run's standard form (the first is exactly 1 by Theorem 2, so
	// Sigma2 is the normalized subdominant singular value). Near the fixed
	// point one Sinkhorn round contracts the error through the linearized
	// map W·Wᵀ, whose spectrum is {σₖ²}; knowing σ₂ therefore selects the
	// optimal over-relaxation factor for the seeded run. Zero (or any value
	// outside (0,1)) disables over-relaxation; a slightly stale value — the
	// unperturbed matrix's σ₂ — is fine, since the optimum is flat.
	Sigma2 float64
}

// valid reports whether the seed can be applied to a t x m matrix.
func (w *WarmStart) valid(t, m int) error {
	if w == nil {
		return nil
	}
	if len(w.D1) != t || len(w.D2) != m {
		return fmt.Errorf("sinkhorn: warm start has %dx%d scaling vectors for a %dx%d matrix",
			len(w.D1), len(w.D2), t, m)
	}
	for _, v := range w.D1 {
		if !(v > 0) || math.IsInf(v, 0) {
			return fmt.Errorf("sinkhorn: warm-start row scaling %g must be positive and finite", v)
		}
	}
	for _, v := range w.D2 {
		if !(v > 0) || math.IsInf(v, 0) {
			return fmt.Errorf("sinkhorn: warm-start column scaling %g must be positive and finite", v)
		}
	}
	if math.IsNaN(w.Sigma2) || math.IsInf(w.Sigma2, 0) {
		return fmt.Errorf("sinkhorn: warm-start sigma2 %g must be finite", w.Sigma2)
	}
	return nil
}

// Matches reports whether the seed's scaling vectors fit a t x m matrix.
// Callers that treat a warm start as a best-effort hint (rather than a hard
// requirement) can use it to drop a seed whose shape no longer applies
// instead of surfacing the validation error from the balancing run.
func (w *WarmStart) Matches(t, m int) bool {
	return w != nil && len(w.D1) == t && len(w.D2) == m
}

// DropRow returns a copy of the seed without row i's scaling factor — the
// seed for a leave-one-out solve that removes row i from the matrix. Sigma2
// is carried over: the reduced matrix's subdominant singular value is close
// for percent-level structural edits, and over-relaxation tolerates a stale
// value (see omega). Out-of-range i returns nil (no seed).
func (w *WarmStart) DropRow(i int) *WarmStart {
	if w == nil || i < 0 || i >= len(w.D1) {
		return nil
	}
	d1 := make([]float64, 0, len(w.D1)-1)
	d1 = append(d1, w.D1[:i]...)
	d1 = append(d1, w.D1[i+1:]...)
	return &WarmStart{D1: d1, D2: matrix.VecClone(w.D2), Sigma2: w.Sigma2}
}

// DropCol returns a copy of the seed without column j's scaling factor; see
// DropRow.
func (w *WarmStart) DropCol(j int) *WarmStart {
	if w == nil || j < 0 || j >= len(w.D2) {
		return nil
	}
	d2 := make([]float64, 0, len(w.D2)-1)
	d2 = append(d2, w.D2[:j]...)
	d2 = append(d2, w.D2[j+1:]...)
	return &WarmStart{D1: matrix.VecClone(w.D1), D2: d2, Sigma2: w.Sigma2}
}

// AppendRow returns a copy of the seed extended with a scaling factor for a
// new last row — the seed for a solve on a matrix that grew by one row (the
// streaming add-task mutation). The caller supplies d, typically the factor
// that puts the new row on its target sum under the current column scalings
// (rowTarget / Σⱼ row[j]·D2[j]); any non-positive or non-finite d falls back
// to the neutral 1, which the first normalization round corrects. Sigma2 is
// carried over — see DropRow for why a stale value is acceptable.
func (w *WarmStart) AppendRow(d float64) *WarmStart {
	if w == nil {
		return nil
	}
	if !(d > 0) || math.IsInf(d, 0) {
		d = 1
	}
	d1 := make([]float64, 0, len(w.D1)+1)
	d1 = append(d1, w.D1...)
	d1 = append(d1, d)
	return &WarmStart{D1: d1, D2: matrix.VecClone(w.D2), Sigma2: w.Sigma2}
}

// AppendCol returns a copy of the seed extended with a scaling factor for a
// new last column (the streaming add-machine mutation); see AppendRow.
func (w *WarmStart) AppendCol(d float64) *WarmStart {
	if w == nil {
		return nil
	}
	if !(d > 0) || math.IsInf(d, 0) {
		d = 1
	}
	d2 := make([]float64, 0, len(w.D2)+1)
	d2 = append(d2, w.D2...)
	d2 = append(d2, d)
	return &WarmStart{D1: matrix.VecClone(w.D1), D2: d2, Sigma2: w.Sigma2}
}

// omega returns the over-relaxation factor for the seeded run. The
// alternating normalization is Gauss-Seidel on the bipartite (rows, columns)
// log-scaling system, a consistently ordered 2-cyclic structure with Jacobi
// spectral radius σ₂, so Young's optimal SOR factor ω* = 2/(1+√(1−σ₂²))
// applies verbatim and improves the per-round contraction from σ₂² to ω*−1
// ≈ σ₂²/4 for well-conditioned matrices. Any ω in (0,2) still converges to
// the same unique fixed point, so a stale or inexact σ₂ only costs speed.
func (w *WarmStart) omega() float64 {
	if w == nil || !(w.Sigma2 > 0) || w.Sigma2 >= 1 {
		return 1
	}
	return 2 / (1 + math.Sqrt(1-w.Sigma2*w.Sigma2))
}

// Balance runs alternating column/row normalization (the paper's Eq. 9) on a
// nonnegative matrix. On ErrNotConverged the returned Result still carries
// the last iterate and diagnostics.
func Balance(a *matrix.Dense, opt Options) (*Result, error) {
	return BalanceWS(a, opt, nil)
}

// BalanceWS is Balance running on a reusable workspace. With a non-nil ws the
// returned Result and its Scaled/D1/D2 fields are backed by ws-owned storage:
// they are valid only until the next BalanceWS call with the same workspace,
// and must be cloned to outlive it. A nil ws behaves exactly like Balance
// (fresh caller-owned allocations).
func BalanceWS(a *matrix.Dense, opt Options, ws *Workspace) (*Result, error) {
	return BalanceWarmWS(a, opt, nil, ws)
}

// BalanceWarmWS is BalanceWS seeded with the scaling vectors of a previous
// run on a nearby matrix (see WarmStart). A nil warm is exactly BalanceWS;
// the returned D1/D2 include the seed factors, so Scaled = D1 · A · D2 holds
// for warm and cold runs alike.
func BalanceWarmWS(a *matrix.Dense, opt Options, warm *WarmStart, ws *Workspace) (*Result, error) {
	t, m := a.Dims()
	if t == 0 || m == 0 {
		return nil, errors.New("sinkhorn: empty matrix")
	}
	if !a.NonNegative() {
		return nil, errors.New("sinkhorn: input must be nonnegative")
	}
	if opt.RowTarget <= 0 || opt.ColTarget <= 0 {
		return nil, fmt.Errorf("sinkhorn: targets must be positive, got row %g col %g", opt.RowTarget, opt.ColTarget)
	}
	if total := float64(t) * opt.RowTarget; math.Abs(total-float64(m)*opt.ColTarget) > 1e-9*total {
		return nil, fmt.Errorf("sinkhorn: inconsistent targets: rows*RowTarget = %g but cols*ColTarget = %g",
			total, float64(m)*opt.ColTarget)
	}
	tol := opt.Tol
	if tol <= 0 {
		tol = DefaultTol
	}
	maxIter := opt.MaxIter
	if maxIter <= 0 {
		maxIter = 10000
	}
	if err := warm.valid(t, m); err != nil {
		return nil, err
	}

	var (
		w              *matrix.Dense
		d1, d2, cs, rs []float64
		res            *Result
	)
	if ws != nil {
		w = ws.w.Reset(t, m)
		copy(w.RawData(), a.RawData())
		d1 = fillOnes(growVec(&ws.d1, t))
		d2 = fillOnes(growVec(&ws.d2, m))
		cs = growVec(&ws.cs, m)
		rs = growVec(&ws.rs, t)
		ws.res = Result{}
		res = &ws.res
	} else {
		w = a.Clone()
		d1 = ones(t)
		d2 = ones(m)
		cs = make([]float64, m)
		rs = make([]float64, t)
		res = &Result{}
	}

	trimmed := 0
	if opt.TrimUnsupported && w.CountZeros() > 0 {
		var err error
		trimmed, err = trimUnsupported(w)
		if err != nil {
			return nil, err
		}
	}

	if warm != nil {
		// Start from diag(D1)·A·diag(D2). Positive diagonal scalings preserve
		// the zero pattern, so the trim above stays valid; the accumulated
		// diagonals start at the seed so the Scaled = D1·A·D2 invariant holds.
		w.ScaleRows(warm.D1)
		w.ScaleCols(warm.D2)
		copy(d1, warm.D1)
		copy(d2, warm.D2)
	}

	// The iteration keeps the current column and row sums in two reused
	// buffers: each half-step is a single fused pass (scale + reduce, see
	// matrix.ScaleColsRowSums / ScaleRowsColSums) instead of separate
	// sum, scale and deviation sweeps over the matrix.
	w.ColSumsInto(cs)
	w.RowSumsInto(rs)

	// Reject structurally impossible inputs up front.
	for i, s := range rs {
		if s == 0 {
			return nil, fmt.Errorf("%w: row %d", ErrZeroLine, i)
		}
	}
	for j, s := range cs {
		if s == 0 {
			return nil, fmt.Errorf("%w: column %d", ErrZeroLine, j)
		}
	}

	res.D1, res.D2, res.Trimmed = d1, d2, trimmed
	// The cold path (omega == 1) is the paper's plain Eq. 9 iteration. A warm
	// start with a known σ₂ over-relaxes each normalization: the factor that
	// would exactly hit the target is raised to the power ω ∈ (1,2), which is
	// classical SOR on the log-scaling system (see WarmStart.omega). With
	// ω > 1 neither the row nor the column sums are exact after their step,
	// so the deviation is then measured over both.
	// Over-relaxation is only guaranteed to contract near the fixed point.
	// When the seed is far off (an aggressive sweep jump, a badly stale σ₂)
	// an ω near 2 can settle into a limit cycle instead — possibly one that
	// alternates between deviation levels, so the safeguard below compares
	// each round against the best deviation seen, not the previous one: six
	// rounds without improving on the best drops ω back to 1 permanently,
	// and the plain iteration (globally convergent for positive matrices)
	// finishes from the current iterate.
	omega := warm.omega()
	bestDev := math.Inf(1)
	stall := 0
	// Fleet-sized matrices run the cache-oblivious tiled passes instead of
	// the whole-row fused kernels — bit-identical results, better locality
	// once a row's working set outgrows the cache hierarchy (see tiling.go).
	tiled := t*m >= tiledBalanceMin
	for it := 1; it <= maxIter; it++ {
		// Column normalization (Eq. 9, odd steps): cs holds the column sums,
		// which become the scaling factors; the fused pass leaves the new row
		// sums in rs.
		if omega == 1 {
			for j := range cs {
				f := opt.ColTarget / cs[j]
				d2[j] *= f
				cs[j] = f
			}
		} else {
			for j := range cs {
				f := math.Pow(opt.ColTarget/cs[j], omega)
				d2[j] *= f
				cs[j] = f
			}
		}
		if tiled {
			ScaleColsRowSumsTiled(w, cs, rs)
		} else {
			w.ScaleColsRowSums(cs, rs)
		}
		// Row normalization (Eq. 9, even steps); the fused pass leaves the
		// new column sums in cs.
		rowDev := 0.0
		if omega == 1 {
			for i := range rs {
				f := opt.RowTarget / rs[i]
				d1[i] *= f
				rs[i] = f
			}
		} else {
			for i := range rs {
				f := math.Pow(opt.RowTarget/rs[i], omega)
				if d := math.Abs(rs[i]*f - opt.RowTarget); d > rowDev {
					rowDev = d
				}
				d1[i] *= f
				rs[i] = f
			}
		}
		if tiled {
			ScaleRowsColSumsTiled(w, rs, cs)
		} else {
			w.ScaleRowsColSums(rs, cs)
		}

		res.Iterations = it
		// With ω == 1 every row sums to RowTarget up to roundoff after the
		// row step, so the deviation is carried entirely by the column sums
		// in cs; the over-relaxed path adds the residual row deviation
		// tracked above.
		dev := rowDev
		for _, s := range cs {
			if d := math.Abs(s - opt.ColTarget); d > dev {
				dev = d
			}
		}
		res.MaxDeviation = dev
		if res.MaxDeviation < tol {
			res.Converged = true
			break
		}
		if omega != 1 {
			if dev < 0.98*bestDev {
				stall = 0
			} else if stall++; stall >= 6 {
				omega = 1
			}
		}
		if dev < bestDev {
			bestDev = dev
		}
	}
	res.Scaled = w
	if !res.Converged {
		return res, fmt.Errorf("%w: deviation %g after %d iterations", ErrNotConverged, res.MaxDeviation, res.Iterations)
	}
	return res, nil
}

// trimUnsupported zeroes the entries of w that decay to zero in the Sinkhorn
// limit (no total support). Square matrices are analyzed directly; a
// rectangular T×M matrix is analyzed through the Appendix A square tiling
// (the paper's Sec. VI prescription: the rectangular case reduces to the
// square one), where an entry survives iff its copies lie on a positive
// diagonal of the tiled pattern. Returns the number of zeroed entries, or
// ErrNoSupport when the (tiled) pattern has no positive diagonal at all —
// the iteration has no limit then.
func trimUnsupported(w *matrix.Dense) (int, error) {
	t, m := w.Dims()
	if t == m {
		p := bipartite.PatternOf(w, 0)
		if !p.HasSupport() {
			return 0, ErrNoSupport
		}
		all, supported := p.TotalSupport()
		if all {
			return 0, nil
		}
		return zeroUnsupported(w, func(i, j int) bool { return supported[i*m+j] }), nil
	}
	g := gcd(t, m)
	blockRows := m / g
	blockCols := t / g
	n := t * blockRows
	square := matrix.New(n, n)
	for br := 0; br < blockRows; br++ {
		for bc := 0; bc < blockCols; bc++ {
			for i := 0; i < t; i++ {
				for j := 0; j < m; j++ {
					square.Set(br*t+i, bc*m+j, w.At(i, j))
				}
			}
		}
	}
	p := bipartite.PatternOf(square, 0)
	if !p.HasSupport() {
		return 0, ErrNoSupport
	}
	all, supported := p.TotalSupport()
	if all {
		return 0, nil
	}
	// An entry of w survives iff every one of its tiled copies does: the
	// limit of the tiled balance is itself a tiling, so copy statuses agree;
	// requiring all copies guards against asymmetric matchings.
	return zeroUnsupported(w, func(i, j int) bool {
		for br := 0; br < blockRows; br++ {
			for bc := 0; bc < blockCols; bc++ {
				if !supported[(br*t+i)*n+(bc*m+j)] {
					return false
				}
			}
		}
		return true
	}), nil
}

func zeroUnsupported(w *matrix.Dense, keep func(i, j int) bool) int {
	trimmed := 0
	w.Apply(func(i, j int, v float64) float64 {
		if v != 0 && !keep(i, j) {
			trimmed++
			return 0
		}
		return v
	})
	return trimmed
}

// maxDeviation returns the largest |row sum - rowTarget| or
// |col sum - colTarget|. The Balance hot loop tracks deviations through its
// fused kernels instead; this full recomputation serves the tiling path's
// one-shot residual check.
func maxDeviation(w *matrix.Dense, rowTarget, colTarget float64) float64 {
	dev := 0.0
	for _, s := range w.RowSums() {
		if d := math.Abs(s - rowTarget); d > dev {
			dev = d
		}
	}
	for _, s := range w.ColSums() {
		if d := math.Abs(s - colTarget); d > dev {
			dev = d
		}
	}
	return dev
}

// StandardTargets returns the paper's standard-form row and column sum
// targets for a T×M matrix (Theorem 1 with k = 1/√(TM)): rows sum to √(M/T),
// columns to √(T/M). Theorem 2 then makes σ₁ = 1.
func StandardTargets(t, m int) (rowTarget, colTarget float64) {
	return math.Sqrt(float64(m) / float64(t)), math.Sqrt(float64(t) / float64(m))
}

// Standardize balances a T×M ECS matrix to the paper's standard form using
// the paper's tolerance. Square matrices with zeros are trimmed to their
// totally supported pattern first so the entrywise Sinkhorn limit is reached
// with geometric convergence (see Options.TrimUnsupported). See Balance for
// error semantics.
func Standardize(a *matrix.Dense) (*Result, error) {
	return StandardizeWS(a, nil)
}

// StandardizeCtx is Standardize with stage tracing: when ctx carries an
// obs.Trace, the whole balancing run is recorded as a "standardize" span.
// Without a trace it is exactly Standardize.
func StandardizeCtx(ctx context.Context, a *matrix.Dense) (*Result, error) {
	sp := obs.StartSpan(ctx, "standardize")
	defer sp.End()
	return Standardize(a)
}

// StandardizeWS is Standardize running on a reusable workspace; see BalanceWS
// for the lifetime rules of the returned Result when ws is non-nil.
func StandardizeWS(a *matrix.Dense, ws *Workspace) (*Result, error) {
	return StandardizeWarmWS(a, nil, ws)
}

// StandardizeWarmWS is StandardizeWS seeded with the scaling vectors of a
// previous standardization of a nearby matrix (see WarmStart): the what-if
// and sweep hot paths, where each solve differs from the last by one row,
// one column or a percent-level perturbation, converge in a fraction of the
// cold iterations while reaching the identical standard form.
func StandardizeWarmWS(a *matrix.Dense, warm *WarmStart, ws *Workspace) (*Result, error) {
	return StandardizeWarmTolWS(a, warm, ws, DefaultTol)
}

// StandardizeWarmTolWS is StandardizeWarmWS with an explicit convergence
// tolerance (non-positive selects DefaultTol). The streaming incremental
// characterizer solves at a tighter tolerance than the paper's default so
// that chained warm results stay within 1e-10 of a cold solve of the same
// tightness — at DefaultTol both iterates stop inside a 1e-8 ball whose TMA
// spread is a few 1e-10.
func StandardizeWarmTolWS(a *matrix.Dense, warm *WarmStart, ws *Workspace, tol float64) (*Result, error) {
	if tol <= 0 {
		tol = DefaultTol
	}
	rt, ct := StandardTargets(a.Rows(), a.Cols())
	return BalanceWarmWS(a, Options{RowTarget: rt, ColTarget: ct, Tol: tol, TrimUnsupported: true}, warm, ws)
}

// StandardizeWarmCtx is StandardizeWarmWS with stage tracing: when ctx
// carries an obs.Trace, the balancing run is recorded as a "standardize"
// span, matching StandardizeCtx so traced cold and warm solves are
// comparable stage by stage.
func StandardizeWarmCtx(ctx context.Context, a *matrix.Dense, warm *WarmStart, ws *Workspace) (*Result, error) {
	return StandardizeWarmTolCtx(ctx, a, warm, ws, DefaultTol)
}

// StandardizeWarmTolCtx is StandardizeWarmCtx with an explicit convergence
// tolerance; see StandardizeWarmTolWS.
func StandardizeWarmTolCtx(ctx context.Context, a *matrix.Dense, warm *WarmStart, ws *Workspace, tol float64) (*Result, error) {
	sp := obs.StartSpan(ctx, "standardize")
	defer sp.End()
	return StandardizeWarmTolWS(a, warm, ws, tol)
}

// DoublyStochastic balances a square matrix to row and column sums of 1.
func DoublyStochastic(a *matrix.Dense) (*Result, error) {
	if a.Rows() != a.Cols() {
		return nil, fmt.Errorf("sinkhorn: DoublyStochastic requires a square matrix, got %dx%d", a.Rows(), a.Cols())
	}
	return Balance(a, Options{RowTarget: 1, ColTarget: 1, Tol: DefaultTol})
}

func ones(n int) []float64 { return fillOnes(make([]float64, n)) }

func fillOnes(v []float64) []float64 {
	for i := range v {
		v[i] = 1
	}
	return v
}
