package sinkhorn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/linalg"
	"repro/internal/matrix"
)

// quickDims derives small matrix dimensions from fuzz bytes.
func quickDims(a, b byte) (int, int) {
	return 1 + int(a)%8, 1 + int(b)%8
}

// quick-check of Theorem 1: every positive matrix standardizes, hitting the
// targets, with Scaled == D1·A·D2.
func TestQuickTheorem1(t *testing.T) {
	rng := rand.New(rand.NewSource(150))
	f := func(da, db byte, seed int64) bool {
		r, c := quickDims(da, db)
		src := rand.New(rand.NewSource(seed))
		a := matrix.New(r, c)
		for i := range a.RawData() {
			a.RawData()[i] = 0.05 + src.Float64()*20
		}
		res, err := Standardize(a)
		if err != nil {
			return false
		}
		rt, ct := StandardTargets(r, c)
		for _, s := range res.Scaled.RowSums() {
			if math.Abs(s-rt) > 1e-6 {
				return false
			}
		}
		for _, s := range res.Scaled.ColSums() {
			if math.Abs(s-ct) > 1e-6 {
				return false
			}
		}
		recon := a.Clone().ScaleRows(res.D1).ScaleCols(res.D2)
		return matrix.EqualTol(recon, res.Scaled, 1e-9)
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// quick-check of Theorem 2: σ1 of the standard form is 1 for any positive
// matrix with both dimensions at least 1.
func TestQuickTheorem2(t *testing.T) {
	rng := rand.New(rand.NewSource(151))
	f := func(da, db byte, seed int64) bool {
		r, c := quickDims(da, db)
		src := rand.New(rand.NewSource(seed))
		a := matrix.New(r, c)
		for i := range a.RawData() {
			a.RawData()[i] = 0.05 + src.Float64()*20
		}
		res, err := Standardize(a)
		if err != nil {
			return false
		}
		sv := linalg.SingularValues(res.Scaled, nil)
		return math.Abs(sv[0]-1) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// quick-check: standardization is idempotent — standardizing a standard
// matrix changes nothing (and converges immediately).
func TestQuickIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(152))
	f := func(da, db byte, seed int64) bool {
		r, c := quickDims(da, db)
		src := rand.New(rand.NewSource(seed))
		a := matrix.New(r, c)
		for i := range a.RawData() {
			a.RawData()[i] = 0.05 + src.Float64()*20
		}
		res1, err := Standardize(a)
		if err != nil {
			return false
		}
		res2, err := Standardize(res1.Scaled)
		if err != nil {
			return false
		}
		return matrix.EqualTol(res1.Scaled, res2.Scaled, 1e-7) && res2.Iterations <= 2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rng}); err != nil {
		t.Error(err)
	}
}
