package sinkhorn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/matrix"
)

func TestGCD(t *testing.T) {
	cases := [][3]int{{12, 5, 1}, {12, 4, 4}, {17, 5, 1}, {6, 6, 6}, {2, 9, 1}}
	for _, c := range cases {
		if got := gcd(c[0], c[1]); got != c[2] {
			t.Errorf("gcd(%d,%d) = %d, want %d", c[0], c[1], got, c[2])
		}
	}
}

// The Appendix A construction and the direct rectangular iteration must
// agree on the standard form (Theorem 1 uniqueness).
func TestTilingMatchesDirectStandardization(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	for _, dims := range [][2]int{{12, 5}, {5, 12}, {4, 6}, {3, 3}, {2, 3}, {17, 5}} {
		a := randPositive(rng, dims[0], dims[1])
		direct, err := Standardize(a)
		if err != nil {
			t.Fatalf("%v direct: %v", dims, err)
		}
		tiled, err := StandardizeViaTiling(a)
		if err != nil {
			t.Fatalf("%v tiled: %v", dims, err)
		}
		if !matrix.EqualTol(direct.Scaled, tiled.Scaled, 1e-6) {
			t.Errorf("%v: standard forms disagree by %g", dims,
				matrix.Sub(direct.Scaled, tiled.Scaled).MaxAbs())
		}
	}
}

// The tiled result must itself satisfy the standard-form sum targets.
func TestTilingHitsTargets(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	a := randPositive(rng, 6, 4)
	res, err := StandardizeViaTiling(a)
	if err != nil {
		t.Fatal(err)
	}
	rt, ct := StandardTargets(6, 4)
	checkSums(t, res.Scaled, rt, ct, 1e-6)
	// And equal D1·A·D2 reconstruction.
	recon := a.Clone().ScaleRows(res.D1).ScaleCols(res.D2)
	if !matrix.EqualTol(recon, res.Scaled, 1e-9) {
		t.Error("D1·A·D2 != Scaled for the tiled path")
	}
}

// D1/D2 from the two paths agree up to one reciprocal scalar pair
// (Theorem 1: unique up to scalar multiples).
func TestTilingScalingsUniqueUpToScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	a := randPositive(rng, 5, 7)
	direct, err := Standardize(a)
	if err != nil {
		t.Fatal(err)
	}
	tiled, err := StandardizeViaTiling(a)
	if err != nil {
		t.Fatal(err)
	}
	// ratio of D1 entries must be constant; same for D2 with the reciprocal.
	r0 := tiled.D1[0] / direct.D1[0]
	for i := range tiled.D1 {
		if math.Abs(tiled.D1[i]/direct.D1[i]-r0) > 1e-6*math.Abs(r0) {
			t.Fatalf("D1 ratios not constant: %v vs %v", tiled.D1, direct.D1)
		}
	}
	c0 := tiled.D2[0] / direct.D2[0]
	for j := range tiled.D2 {
		if math.Abs(tiled.D2[j]/direct.D2[j]-c0) > 1e-6*math.Abs(c0) {
			t.Fatalf("D2 ratios not constant: %v vs %v", tiled.D2, direct.D2)
		}
	}
	if math.Abs(r0*c0-1) > 1e-6 {
		t.Errorf("scalar pair not reciprocal: r=%g c=%g", r0, c0)
	}
}

func TestTilingRejectsNonPositive(t *testing.T) {
	a := matrix.FromRows([][]float64{{1, 0}, {1, 1}})
	if _, err := StandardizeViaTiling(a); err == nil {
		t.Error("matrix with zero accepted by tiling path (Appendix A needs positivity)")
	}
}

func TestTilingRejectsBadTargets(t *testing.T) {
	a := matrix.Constant(2, 3, 1)
	if _, err := BalanceViaTiling(a, Options{RowTarget: 1, ColTarget: 1}); err == nil {
		t.Error("inconsistent targets accepted")
	}
	if _, err := BalanceViaTiling(a, Options{RowTarget: -1, ColTarget: 1}); err == nil {
		t.Error("negative target accepted")
	}
	if _, err := BalanceViaTiling(matrix.New(0, 0), Options{RowTarget: 1, ColTarget: 1}); err == nil {
		t.Error("empty matrix accepted")
	}
}

// The cache-oblivious pass kernels promise the exact bits of the whole-row
// kernels: the recursion visits every row's column tiles left to right and
// resumes the row accumulator between them, so the addition sequences match.
// The shapes force several levels of recursion (well past balanceTileCells)
// plus small cases that stay a single leaf.
func TestTiledPassesBitIdenticalToRowStreaming(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	for _, dims := range [][2]int{{3, 5}, {257, 129}, {300, 400}, {451, 287}} {
		r, c := dims[0], dims[1]
		orig := randPositive(rng, r, c)
		colF := make([]float64, c)
		rowF := make([]float64, r)
		for j := range colF {
			colF[j] = 0.25 + rng.Float64()
		}
		for i := range rowF {
			rowF[i] = 0.25 + rng.Float64()
		}

		plain, tiled := orig.Clone(), orig.Clone()
		wantRS, gotRS := make([]float64, r), make([]float64, r)
		plain.ScaleColsRowSums(colF, wantRS)
		ScaleColsRowSumsTiled(tiled, colF, gotRS)
		if !matrix.EqualTol(plain, tiled, 0) {
			t.Errorf("%v: tiled col-scale pass differs from row-streaming", dims)
		}
		for i := range wantRS {
			if wantRS[i] != gotRS[i] {
				t.Fatalf("%v: row sum %d: tiled %g != plain %g", dims, i, gotRS[i], wantRS[i])
			}
		}

		wantCS, gotCS := make([]float64, c), make([]float64, c)
		plain.ScaleRowsColSums(rowF, wantCS)
		ScaleRowsColSumsTiled(tiled, rowF, gotCS)
		if !matrix.EqualTol(plain, tiled, 0) {
			t.Errorf("%v: tiled row-scale pass differs from row-streaming", dims)
		}
		for j := range wantCS {
			if wantCS[j] != gotCS[j] {
				t.Fatalf("%v: col sum %d: tiled %g != plain %g", dims, j, gotCS[j], wantCS[j])
			}
		}
	}
}

// Square inputs degenerate to the plain square balance (blockRows =
// blockCols = 1).
func TestTilingSquareDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	a := randPositive(rng, 4, 4)
	direct, err := Standardize(a)
	if err != nil {
		t.Fatal(err)
	}
	tiled, err := StandardizeViaTiling(a)
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.EqualTol(direct.Scaled, tiled.Scaled, 1e-6) {
		t.Error("square tiling disagrees with direct balance")
	}
}
