package sinkhorn

import (
	"math/rand"
	"testing"

	"repro/internal/matrix"
)

// TestBalanceWSMatchesBalance runs the same inputs through the fresh and the
// workspace-backed paths, including shape changes that force the workspace
// buffers to be resized and reused, and requires bit-identical results.
func TestBalanceWSMatchesBalance(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	ws := NewWorkspace()
	for trial := 0; trial < 25; trial++ {
		r := 2 + rng.Intn(12)
		c := 2 + rng.Intn(12)
		a := randPositive(rng, r, c)
		fresh, errF := Standardize(a)
		pooled, errW := StandardizeWS(a, ws)
		if (errF == nil) != (errW == nil) {
			t.Fatalf("trial %d: error mismatch: %v vs %v", trial, errF, errW)
		}
		if errF != nil {
			continue
		}
		if !matrix.EqualTol(fresh.Scaled, pooled.Scaled, 0) {
			t.Fatalf("trial %d: workspace Scaled differs from fresh path", trial)
		}
		if !matrix.VecEqualTol(fresh.D1, pooled.D1, 0) || !matrix.VecEqualTol(fresh.D2, pooled.D2, 0) {
			t.Fatalf("trial %d: workspace diagonals differ from fresh path", trial)
		}
		if fresh.Iterations != pooled.Iterations || fresh.Converged != pooled.Converged {
			t.Fatalf("trial %d: diagnostics differ: %+v vs %+v", trial, fresh, pooled)
		}
	}
}

// TestBalanceWSDoesNotMutateInput pins that the workspace path copies the
// input rather than balancing it in place.
func TestBalanceWSDoesNotMutateInput(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	a := randPositive(rng, 5, 7)
	orig := a.Clone()
	if _, err := StandardizeWS(a, NewWorkspace()); err != nil {
		t.Fatal(err)
	}
	if !matrix.EqualTol(a, orig, 0) {
		t.Error("StandardizeWS mutated its input")
	}
}

// TestBalanceWSZeroAlloc pins the steady-state allocation contract of the
// workspace path on strictly positive input.
func TestBalanceWSZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	a := randPositive(rng, 16, 8)
	ws := NewWorkspace()
	if _, err := StandardizeWS(a, ws); err != nil { // warm the buffers
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := StandardizeWS(a, ws); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("warm StandardizeWS allocates %g times per op, want 0", allocs)
	}
}
