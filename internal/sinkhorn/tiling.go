package sinkhorn

import (
	"fmt"
	"math"

	"repro/internal/matrix"
)

// This file hosts two unrelated-but-namesake tilings:
//
//   - the Appendix A square-tiling construction (BalanceViaTiling), kept as
//     an independent cross-check of the direct rectangular iteration, and
//   - the cache-oblivious tiled balance passes (ScaleColsRowSumsTiled /
//     ScaleRowsColSumsTiled) that BalanceWarmWS switches to for fleet-sized
//     matrices, where a whole row no longer fits the cache hierarchy
//     comfortably and the factor/sum vectors alone run to hundreds of
//     kilobytes.
//
// The tiled passes recurse on the larger dimension until a tile is at most
// balanceTileCells cells (≈¼ MiB — L2-sized), then run the fused
// scale+reduce range kernels of internal/matrix on the leaf. Because the
// recursion visits row ranges top-to-bottom and column ranges left-to-right,
// every row sum accumulates in increasing column order and every column sum
// in increasing row order — the exact addition sequences of the whole-row
// kernels — so a tiled pass is bit-identical to an untiled one and the
// switchover threshold cannot change any balanced matrix (see DESIGN.md §14).

// balanceTileCells bounds a leaf tile of the cache-oblivious recursion:
// 32 Ki cells = 256 KiB of float64, sized to a typical L2, so the leaf's
// rows, its factor slice segment and its sum slice segment stay resident
// while the kernel streams the tile.
const balanceTileCells = 32 * 1024

// tiledBalanceMin is the matrix size (in cells) at which BalanceWarmWS
// switches its fused passes to the tiled walk. 2 Mi cells is 16 MiB — past
// any L2 and into last-level-cache territory, where the tiled walk starts
// paying for its recursion. Below it the plain row-streaming passes are
// already cache-resident. Identical results either way.
const tiledBalanceMin = 2 << 20

// ScaleColsRowSumsTiled is matrix.ScaleColsRowSums as a cache-oblivious
// tiled walk: scale every column j of w by colFactors[j] and leave the row
// sums of the scaled matrix in rowSums. Bit-identical to the untiled kernel.
func ScaleColsRowSumsTiled(w *matrix.Dense, colFactors, rowSums []float64) {
	for i := range rowSums {
		rowSums[i] = 0
	}
	recurseTiles(0, w.Rows(), 0, w.Cols(), func(r0, r1, c0, c1 int) {
		w.ScaleColsRowSumsRange(colFactors, rowSums, r0, r1, c0, c1)
	})
}

// ScaleRowsColSumsTiled is matrix.ScaleRowsColSums as a cache-oblivious
// tiled walk: scale every row i of w by rowFactors[i] and leave the column
// sums of the scaled matrix in colSums. Bit-identical to the untiled kernel.
func ScaleRowsColSumsTiled(w *matrix.Dense, rowFactors, colSums []float64) {
	for j := range colSums {
		colSums[j] = 0
	}
	recurseTiles(0, w.Rows(), 0, w.Cols(), func(r0, r1, c0, c1 int) {
		w.ScaleRowsColSumsRange(rowFactors, colSums, r0, r1, c0, c1)
	})
}

// recurseTiles walks the subrectangle [r0,r1)×[c0,c1) in cache-oblivious
// order: halve the larger dimension until the tile fits balanceTileCells,
// visiting the top/left half before the bottom/right one. The in-order walk
// is what keeps the tiled passes bit-identical to the row-streaming kernels.
func recurseTiles(r0, r1, c0, c1 int, leaf func(r0, r1, c0, c1 int)) {
	rows, cols := r1-r0, c1-c0
	if rows == 0 || cols == 0 {
		return
	}
	if rows*cols <= balanceTileCells || (rows == 1 && cols == 1) {
		leaf(r0, r1, c0, c1)
		return
	}
	if rows >= cols {
		mid := r0 + rows/2
		recurseTiles(r0, mid, c0, c1, leaf)
		recurseTiles(mid, r1, c0, c1, leaf)
		return
	}
	mid := c0 + cols/2
	recurseTiles(r0, r1, c0, mid, leaf)
	recurseTiles(r0, r1, mid, c1, leaf)
}

// BalanceViaTiling standardizes a rectangular positive matrix using the
// construction of the paper's Appendix A (proof of Theorem 1): tile the T×M
// matrix into an (M·T/g)×(T·M/g) square array of copies (g = gcd(T, M), so
// the tiling is the smallest square multiple), balance that square matrix to
// doubly stochastic form with the classic square Sinkhorn iteration, and
// read the rectangular scaling factors back off the block structure.
//
// The paper uses this construction only as an existence proof — the direct
// rectangular iteration of Balance is how it computes standard forms — but
// implementing it provides an independent cross-check: both paths must
// produce the same standard matrix (D₁ and D₂ are unique up to reciprocal
// scalars). It is exposed for that purpose and exercised in tests and the
// ablation experiment.
func BalanceViaTiling(a *matrix.Dense, opt Options) (*Result, error) {
	t, m := a.Dims()
	if t == 0 || m == 0 {
		return nil, fmt.Errorf("sinkhorn: empty matrix")
	}
	if !a.AllPositive() {
		return nil, fmt.Errorf("sinkhorn: BalanceViaTiling requires a strictly positive matrix")
	}
	if opt.RowTarget <= 0 || opt.ColTarget <= 0 {
		return nil, fmt.Errorf("sinkhorn: targets must be positive")
	}
	if total := float64(t) * opt.RowTarget; math.Abs(total-float64(m)*opt.ColTarget) > 1e-9*total {
		return nil, fmt.Errorf("sinkhorn: inconsistent targets")
	}
	g := gcd(t, m)
	// Appendix A tiles a T×M matrix into a (M/g)×(T/g) arrangement of
	// blocks, producing an n×n square with n = T·M/g.
	blockRows := m / g // how many copies stacked vertically
	blockCols := t / g // how many copies side by side
	n := t * blockRows // == m * blockCols
	if n != m*blockCols {
		return nil, fmt.Errorf("sinkhorn: internal tiling mismatch %d != %d", n, m*blockCols)
	}
	square := matrix.New(n, n)
	for br := 0; br < blockRows; br++ {
		for bc := 0; bc < blockCols; bc++ {
			for i := 0; i < t; i++ {
				for j := 0; j < m; j++ {
					square.Set(br*t+i, bc*m+j, a.At(i, j))
				}
			}
		}
	}
	tol := opt.Tol
	if tol <= 0 {
		tol = DefaultTol
	}
	// Tighter tolerance on the square problem so block-averaging error stays
	// below the caller's tolerance.
	sq, err := Balance(square, Options{RowTarget: 1, ColTarget: 1, Tol: tol / 10, MaxIter: opt.MaxIter})
	if err != nil {
		return nil, fmt.Errorf("sinkhorn: tiled square balance: %w", err)
	}
	// Per Appendix A, the square scalings restricted to one block row/column
	// are (up to a scalar) the rectangular scalings. Average the copies for
	// numerical robustness, then rescale to the requested targets.
	d1 := make([]float64, t)
	for i := 0; i < t; i++ {
		s := 0.0
		for br := 0; br < blockRows; br++ {
			s += sq.D1[br*t+i]
		}
		d1[i] = s / float64(blockRows)
	}
	d2 := make([]float64, m)
	for j := 0; j < m; j++ {
		s := 0.0
		for bc := 0; bc < blockCols; bc++ {
			s += sq.D2[bc*m+j]
		}
		d2[j] = s / float64(blockCols)
	}
	scaled := a.Clone().ScaleRows(d1).ScaleCols(d2)
	// The block structure guarantees equal row sums and equal column sums;
	// one global factor aligns them with the requested targets.
	mean := scaled.Sum() / (float64(t) * opt.RowTarget)
	factor := 1 / mean
	scaled.Scale(factor)
	matrix.VecScale(d1, factor)
	res := &Result{
		Scaled:     scaled,
		D1:         d1,
		D2:         d2,
		Iterations: sq.Iterations,
		Converged:  true,
	}
	res.MaxDeviation = maxDeviation(scaled, opt.RowTarget, opt.ColTarget)
	if res.MaxDeviation >= tol*10 {
		res.Converged = false
		return res, fmt.Errorf("%w: tiling residual %g", ErrNotConverged, res.MaxDeviation)
	}
	return res, nil
}

// StandardizeViaTiling is BalanceViaTiling with the paper's standard-form
// targets (Theorem 1 with k = 1/√(TM)).
func StandardizeViaTiling(a *matrix.Dense) (*Result, error) {
	rt, ct := StandardTargets(a.Rows(), a.Cols())
	return BalanceViaTiling(a, Options{RowTarget: rt, ColTarget: ct, Tol: DefaultTol})
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
