// Warm-start acceptance tests. These live in an external test package so
// they can generate realistic ETC matrices with internal/gen (which itself
// imports sinkhorn) and compute singular values with internal/linalg.
package sinkhorn_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/linalg"
	"repro/internal/matrix"
	"repro/internal/sinkhorn"
)

// randomPositive builds an r x c matrix with entries in [0.05, 20.05).
func randomPositive(r, c int, seed int64) *matrix.Dense {
	src := rand.New(rand.NewSource(seed))
	a := matrix.New(r, c)
	for i := range a.RawData() {
		a.RawData()[i] = 0.05 + src.Float64()*20
	}
	return a
}

// rangeECS builds a realistic heterogeneous ECS matrix with the range-based
// generator at the serving workload's parameters (task range 100, machine
// range 10 — the same shape hcload submits).
func rangeECS(t *testing.T, r, c int, seed int64) *matrix.Dense {
	t.Helper()
	env, err := gen.RangeBased(r, c, 100, 10, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return env.ECS()
}

// warmOf clones a Result's scaling vectors into a seed, with the subdominant
// singular value of the standard form enabling over-relaxation — exactly
// what the characterization pipeline has at hand after a baseline solve.
func warmOf(res *sinkhorn.Result) *sinkhorn.WarmStart {
	sv := linalg.SingularValues(res.Scaled, nil)
	return &sinkhorn.WarmStart{
		D1:     matrix.VecClone(res.D1),
		D2:     matrix.VecClone(res.D2),
		Sigma2: sv[1],
	}
}

// tmaOf computes the TMA aggregate (paper Eq. 8: mean of the subdominant
// singular values of the standard form) that Profile.TMA is built from.
func tmaOf(res *sinkhorn.Result) float64 {
	sv := linalg.SingularValues(res.Scaled, nil)
	sum := 0.0
	for _, s := range sv[1:] {
		sum += s
	}
	return sum / float64(len(sv)-1)
}

// TestWarmStartMatchesCold is the correctness property behind every warm-start
// use: perturb one random row of a random matrix by up to ±50%, balance
// cold and warm (seeded with the unperturbed matrix's scalings) to a tight
// 1e-12 tolerance, and require the standard forms and the profile (TMA)
// aggregate to agree within 1e-10. Theorem 1 says the scaling is unique, so
// the starting point must not change the limit — warm and cold solves land
// on the same fixed point, differing only by their stopping residuals.
func TestWarmStartMatchesCold(t *testing.T) {
	rng := rand.New(rand.NewSource(160))
	f := func(da, db, row byte, seed int64) bool {
		r, c := 2+int(da)%10, 2+int(db)%10
		a := randomPositive(r, c, seed)
		base, err := sinkhorn.Standardize(a)
		if err != nil {
			return false
		}
		// Perturb one row multiplicatively.
		src := rand.New(rand.NewSource(seed ^ 0x9E3779B9))
		i := int(row) % r
		for j := 0; j < c; j++ {
			a.Set(i, j, a.At(i, j)*(0.5+src.Float64()))
		}
		rowT, colT := sinkhorn.StandardTargets(r, c)
		opt := sinkhorn.Options{RowTarget: rowT, ColTarget: colT, Tol: 1e-12, TrimUnsupported: true}
		cold, err := sinkhorn.Balance(a, opt)
		if err != nil {
			return false
		}
		warm, err := sinkhorn.BalanceWarmWS(a, opt, warmOf(base), nil)
		if err != nil {
			return false
		}
		if !matrix.EqualTol(cold.Scaled, warm.Scaled, 1e-10) {
			t.Logf("%dx%d seed %d: warm and cold standard forms differ by %g",
				r, c, seed, matrix.Sub(cold.Scaled, warm.Scaled).MaxAbs())
			return false
		}
		if d := math.Abs(tmaOf(cold) - tmaOf(warm)); d > 1e-10 {
			t.Logf("%dx%d seed %d: warm and cold TMA differ by %g", r, c, seed, d)
			return false
		}
		// The invariant Scaled = D1·A·D2 must hold for the warm run too.
		recon := a.Clone().ScaleRows(warm.D1).ScaleCols(warm.D2)
		return matrix.EqualTol(recon, warm.Scaled, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// TestWarmStartFewerIterations pins the performance claim: on 1%-perturbation
// what-if solves over realistic heterogeneous ETC matrices, a warm start
// (seed + over-relaxation) converges in at least 2x fewer Sinkhorn rounds
// than a cold start, aggregated over many trials, while the TMA aggregate
// stays within 1e-10 of the cold result.
func TestWarmStartFewerIterations(t *testing.T) {
	for _, sh := range [][2]int{{30, 20}, {150, 80}} {
		coldIters, warmIters := 0, 0
		maxTMADiff := 0.0
		for trial := int64(0); trial < 30; trial++ {
			a := rangeECS(t, sh[0], sh[1], 1000+trial)
			base, err := sinkhorn.Standardize(a)
			if err != nil {
				t.Fatal(err)
			}
			seed := warmOf(base)
			src := rand.New(rand.NewSource(2000 + trial))
			i, j := src.Intn(sh[0]), src.Intn(sh[1])
			a.Set(i, j, a.At(i, j)*1.01)
			cold, err := sinkhorn.Standardize(a)
			if err != nil {
				t.Fatal(err)
			}
			warm, err := sinkhorn.StandardizeWarmWS(a, seed, nil)
			if err != nil {
				t.Fatal(err)
			}
			coldIters += cold.Iterations
			warmIters += warm.Iterations
			if d := math.Abs(tmaOf(cold) - tmaOf(warm)); d > maxTMADiff {
				maxTMADiff = d
			}
		}
		if coldIters < 2*warmIters {
			t.Errorf("%dx%d: warm start saved too little: cold %d iterations vs warm %d (want >= 2x)",
				sh[0], sh[1], coldIters, warmIters)
		}
		if maxTMADiff > 1e-10 {
			t.Errorf("%dx%d: warm TMA drifted %g from cold (want <= 1e-10)", sh[0], sh[1], maxTMADiff)
		}
		t.Logf("%dx%d 1%%-perturbation solves: cold %d iterations, warm %d (%.2fx), max TMA diff %.2g",
			sh[0], sh[1], coldIters, warmIters, float64(coldIters)/float64(warmIters), maxTMADiff)
	}
}

// TestWarmStartExactSeed: seeding with the matrix's own converged scalings
// must converge immediately (one residual round) and stay on the same fixed
// point.
func TestWarmStartExactSeed(t *testing.T) {
	a := randomPositive(12, 9, 7)
	base, err := sinkhorn.Standardize(a)
	if err != nil {
		t.Fatal(err)
	}
	again, err := sinkhorn.StandardizeWarmWS(a, warmOf(base), nil)
	if err != nil {
		t.Fatal(err)
	}
	if again.Iterations > 1 {
		t.Errorf("exact seed took %d iterations, want 1", again.Iterations)
	}
	// The re-solve polishes the seed's own tolerance-level residual, so the
	// standard forms agree to the convergence tolerance and the spectral
	// aggregate much closer.
	if !matrix.EqualTol(base.Scaled, again.Scaled, sinkhorn.DefaultTol) {
		t.Error("exact seed moved the standard form beyond tolerance")
	}
	if d := math.Abs(tmaOf(base) - tmaOf(again)); d > 1e-10 {
		t.Errorf("exact seed moved TMA by %g", d)
	}
}

// TestWarmStartWorkspace: the warm path composes with pooled workspaces and
// leaves the ws-backed result equal to the allocation path's.
func TestWarmStartWorkspace(t *testing.T) {
	a := randomPositive(10, 14, 11)
	base, err := sinkhorn.Standardize(a)
	if err != nil {
		t.Fatal(err)
	}
	a.Set(3, 5, a.At(3, 5)*1.02)
	fresh, err := sinkhorn.StandardizeWarmWS(a, warmOf(base), nil)
	if err != nil {
		t.Fatal(err)
	}
	ws := sinkhorn.GetWorkspace()
	defer sinkhorn.PutWorkspace(ws)
	pooled, err := sinkhorn.StandardizeWarmWS(a, warmOf(base), ws)
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.EqualTol(fresh.Scaled, pooled.Scaled, 0) {
		t.Error("workspace-backed warm standardization differs from the allocating path")
	}
	if fresh.Iterations != pooled.Iterations {
		t.Errorf("iteration counts differ: %d (fresh) vs %d (ws)", fresh.Iterations, pooled.Iterations)
	}
}

// TestWarmStartValidation: dimension mismatches and non-positive seeds are
// rejected up front rather than silently producing a wrong scaling.
func TestWarmStartValidation(t *testing.T) {
	a := randomPositive(4, 3, 1)
	cases := []*sinkhorn.WarmStart{
		{D1: []float64{1, 1, 1}, D2: []float64{1, 1, 1}},                         // short D1
		{D1: []float64{1, 1, 1, 1}, D2: []float64{1, 1}},                         // short D2
		{D1: []float64{1, 0, 1, 1}, D2: []float64{1, 1, 1}},                      // zero entry
		{D1: []float64{1, -2, 1, 1}, D2: []float64{1, 1, 1}},                     // negative entry
		{D1: []float64{1, 1, 1, 1}, D2: []float64{1, math.Inf(1), 1}},            // infinite entry
		{D1: []float64{1, 1, 1, 1}, D2: []float64{1, math.NaN(), 1}},             // NaN entry
		{D1: []float64{1, 1, 1, 1}, D2: []float64{1, 1, 1}, Sigma2: math.NaN()},  // NaN sigma2
		{D1: []float64{1, 1, 1, 1}, D2: []float64{1, 1, 1}, Sigma2: math.Inf(1)}, // infinite sigma2
	}
	for i, warm := range cases {
		if _, err := sinkhorn.StandardizeWarmWS(a, warm, nil); err == nil {
			t.Errorf("case %d: invalid warm start accepted", i)
		}
	}
	// A sigma2 outside (0, 1) is not an error — it just disables
	// over-relaxation (e.g. a degenerate rank-one standard form).
	base, err := sinkhorn.Standardize(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sinkhorn.StandardizeWarmWS(a, &sinkhorn.WarmStart{
		D1: matrix.VecClone(base.D1), D2: matrix.VecClone(base.D2), Sigma2: 1.5,
	}, nil); err != nil {
		t.Errorf("out-of-range sigma2 should disable SOR, not fail: %v", err)
	}
	// A nil warm start must behave exactly like the cold path.
	cold, err := sinkhorn.Standardize(a)
	if err != nil {
		t.Fatal(err)
	}
	nilWarm, err := sinkhorn.StandardizeWarmWS(a, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.EqualTol(cold.Scaled, nilWarm.Scaled, 0) || cold.Iterations != nilWarm.Iterations {
		t.Error("nil warm start diverged from the cold path")
	}
}

// TestWarmStartRowRemoval mirrors the leave-one-out use: drop a row, seed the
// reduced solve with the baseline scalings minus that row's entry, and check
// the result matches the reduced matrix's cold standardization.
func TestWarmStartRowRemoval(t *testing.T) {
	a := randomPositive(15, 10, 21)
	base, err := sinkhorn.Standardize(a)
	if err != nil {
		t.Fatal(err)
	}
	seed := warmOf(base)
	const drop = 6
	rows := make([]int, 0, 14)
	d1 := make([]float64, 0, 14)
	for i := 0; i < 15; i++ {
		if i != drop {
			rows = append(rows, i)
			d1 = append(d1, seed.D1[i])
		}
	}
	cols := make([]int, 10)
	for j := range cols {
		cols[j] = j
	}
	reduced := a.Submatrix(rows, cols)
	cold, err := sinkhorn.Standardize(reduced)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := sinkhorn.StandardizeWarmWS(reduced, &sinkhorn.WarmStart{
		D1: d1, D2: matrix.VecClone(seed.D2), Sigma2: seed.Sigma2,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(tmaOf(cold) - tmaOf(warm)); d > 1e-10 {
		t.Errorf("row-removal warm TMA differs from cold by %g", d)
	}
	if !matrix.EqualTol(cold.Scaled, warm.Scaled, sinkhorn.DefaultTol) {
		t.Errorf("row-removal warm solve differs from cold by %g",
			matrix.Sub(cold.Scaled, warm.Scaled).MaxAbs())
	}
	if warm.Iterations > cold.Iterations {
		t.Errorf("row-removal warm start took %d iterations vs cold %d", warm.Iterations, cold.Iterations)
	}
}
