package wire

// Mutation frames (KindMutation) carry one stream-session edit so binary
// clients of /v1/stream never pay JSON framing per mutation. The header
// reuses the rows field as the op code and the cols field as the value
// count; the payload is a fixed 8-byte little-endian index word followed by
// cols float64 values:
//
//	op               index word            values
//	add_task         0                     new ECS row (machines entries)
//	add_machine      0                     new ECS column (tasks entries)
//	drop_task        task index            none
//	drop_machine     machine index         none
//	set_cell         task<<32 | machine    the new ECS cell
//	task_weights     0                     full task weight vector
//	machine_weights  0                     full machine weight vector
//
// Like env frames, values are ECS-convention: finite and non-negative, with
// 0 marking an impossible pairing. Vector lengths against the live session
// dimensions (and weight positivity) are the session's to enforce — the wire
// layer polices only what has no valid encoding at all, so a decoded frame
// always re-encodes to the exact bytes consumed.

import (
	"encoding/binary"
	"math"
)

// Mutation is one decoded stream-session edit. Task and Machine are -1 when
// the op does not address that axis.
type Mutation struct {
	Op      byte
	Task    int
	Machine int
	Values  []float64
}

// OpName returns the stable metrics/log name of the mutation's op.
func (m Mutation) OpName() string { return MutOpName(m.Op) }

// EncodedMutationSize returns the frame size of a mutation carrying nvals
// values.
func EncodedMutationSize(nvals int) int { return HeaderSize + 8 + nvals*8 }

// indexWord computes the canonical index word for m, validating the fields
// the op uses and requiring the unused ones to be absent (-1 or empty).
func (m Mutation) indexWord() (uint64, error) {
	checkIdx := func(name string, v int) error {
		if v < 0 || v >= MaxDim {
			return malformedf("%s %s index %d out of range", m.OpName(), name, v)
		}
		return nil
	}
	switch m.Op {
	case MutAddTask, MutAddMachine, MutTaskWeights, MutMachineWeights:
		if len(m.Values) == 0 {
			return 0, malformedf("%s mutation needs values", m.OpName())
		}
		return 0, nil
	case MutDropTask:
		if len(m.Values) != 0 {
			return 0, malformedf("drop_task mutation carries no values")
		}
		if err := checkIdx("task", m.Task); err != nil {
			return 0, err
		}
		return uint64(m.Task), nil
	case MutDropMachine:
		if len(m.Values) != 0 {
			return 0, malformedf("drop_machine mutation carries no values")
		}
		if err := checkIdx("machine", m.Machine); err != nil {
			return 0, err
		}
		return uint64(m.Machine), nil
	case MutSetCell:
		if len(m.Values) != 1 {
			return 0, malformedf("set_cell mutation needs exactly one value, got %d", len(m.Values))
		}
		if err := checkIdx("task", m.Task); err != nil {
			return 0, err
		}
		if err := checkIdx("machine", m.Machine); err != nil {
			return 0, err
		}
		return uint64(m.Task)<<32 | uint64(m.Machine), nil
	}
	return 0, malformedf("unknown mutation op %d", m.Op)
}

// AppendMutation appends the binary frame of m to dst and returns the
// extended slice. Values must be finite and non-negative (the ECS
// convention); NaN and ±Inf have no wire form.
func AppendMutation(dst []byte, m Mutation) ([]byte, error) {
	idx, err := m.indexWord()
	if err != nil {
		return nil, err
	}
	for k, v := range m.Values {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return nil, malformedf("%s value %d = %g has no wire form", m.OpName(), k, v)
		}
	}
	base := len(dst)
	dst = append(dst, make([]byte, EncodedMutationSize(len(m.Values)))...)
	putHeader(dst[base:], KindMutation, int(m.Op), len(m.Values))
	off := base + HeaderSize
	binary.LittleEndian.PutUint64(dst[off:], idx)
	off += 8
	for _, v := range m.Values {
		binary.LittleEndian.PutUint64(dst[off:], math.Float64bits(v))
		off += 8
	}
	return dst, nil
}

// DecodeMutation decodes one mutation frame from the front of data,
// returning it and the number of bytes consumed (trailing data is the
// caller's: concatenated frames compose). The decoder is strict about
// canonical form — index bits an op does not use must be zero — so any
// accepted frame re-encodes to exactly the bytes consumed.
func DecodeMutation(data []byte) (Mutation, int, error) {
	h, err := ParseHeader(data)
	if err != nil {
		return Mutation{}, 0, err
	}
	if h.Kind != KindMutation {
		return Mutation{}, 0, malformedf("frame kind %d is not a mutation", h.Kind)
	}
	if h.Rows > 0xff {
		return Mutation{}, 0, malformedf("mutation op %d out of range", h.Rows)
	}
	m := Mutation{Op: byte(h.Rows), Task: -1, Machine: -1}
	idx := binary.LittleEndian.Uint64(h.Payload)
	switch m.Op {
	case MutDropTask:
		m.Task = int(idx)
	case MutDropMachine:
		m.Machine = int(idx)
	case MutSetCell:
		m.Task = int(idx >> 32)
		m.Machine = int(idx & 0xffffffff)
	}
	if h.Cols > 0 {
		m.Values = make([]float64, h.Cols)
		for k := range m.Values {
			v := Cell(h.Payload[8:], k)
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				return Mutation{}, 0, malformedf("%s value %d = %g has no wire form", m.OpName(), k, v)
			}
			m.Values[k] = v
		}
	}
	canonical, err := m.indexWord()
	if err != nil {
		return Mutation{}, 0, err
	}
	if canonical != idx {
		return Mutation{}, 0, malformedf("%s mutation has non-canonical index word %#x", m.OpName(), idx)
	}
	return m, h.Size, nil
}
