package wire

import (
	"encoding/binary"
	"io"
	"math"

	"repro/internal/matrix"
)

// Header is the parsed fixed header of one frame, plus the frame's payload
// slice (aliasing the input, not copied) and total encoded size. It is the
// low-level entry point for zero-copy consumers — the server's streaming
// ingestion walks Payload directly, converting and hashing each cell in one
// pass without an intermediate matrix.
type Header struct {
	Kind    byte
	Rows    int
	Cols    int
	Payload []byte
	// Size is the total frame length in bytes (header + payload); data[Size:]
	// is the start of the next concatenated frame.
	Size int
}

// Cells returns Rows·Cols.
func (h Header) Cells() int { return h.Rows * h.Cols }

// PeekFrameSize computes the total encoded size (header + payload) of the
// frame whose fixed header begins data, validating everything the header
// alone can prove — magic, version, kind, dimension sanity — without
// requiring any payload bytes to be present. Streaming readers (the /v1/
// stream binary session) use it to size the read for the rest of the frame.
func PeekFrameSize(data []byte) (int, error) {
	if len(data) < HeaderSize {
		return 0, malformedf("truncated header: %d bytes, need %d", len(data), HeaderSize)
	}
	if string(data[:4]) != Magic {
		return 0, malformedf("bad magic %q, want %q", data[:4], Magic)
	}
	if data[4] != Version {
		return 0, malformedf("unsupported version %d, want %d", data[4], Version)
	}
	kind := data[5]
	if kind != KindMatrix && kind != KindProfile && kind != KindEnv && kind != KindMutation {
		return 0, malformedf("unknown frame kind %d", kind)
	}
	rows := int(binary.LittleEndian.Uint32(data[6:]))
	cols := int(binary.LittleEndian.Uint32(data[10:]))
	// A mutation frame reuses rows as the op code and cols as the value
	// count; a value-free op (drop_task, drop_machine) legitimately has
	// cols == 0, so only the op byte is required to be non-zero here.
	if rows == 0 || (cols == 0 && kind != KindMutation) {
		return 0, malformedf("empty %dx%d frame", rows, cols)
	}
	if rows > MaxDim || cols > MaxDim {
		return 0, malformedf("dimensions %dx%d exceed the %d limit", rows, cols, MaxDim)
	}
	var payloadLen uint64
	switch kind {
	case KindMatrix:
		payloadLen = uint64(rows) * uint64(cols) * 8
	case KindProfile:
		payloadLen = profileFixedSize + uint64(rows+cols)*8
	case KindEnv:
		payloadLen = (uint64(rows)*uint64(cols) + uint64(rows) + uint64(cols)) * 8
	case KindMutation:
		payloadLen = 8 + uint64(cols)*8 // index word + values
	}
	return HeaderSize + int(payloadLen), nil
}

// ParseHeader validates the fixed header at the start of data and returns
// it with the payload sliced out. It checks magic, version, kind, dimension
// sanity and that data holds the full payload the header promises.
func ParseHeader(data []byte) (Header, error) {
	size, err := PeekFrameSize(data)
	if err != nil {
		return Header{}, err
	}
	if len(data) < size {
		return Header{}, malformedf("truncated payload: %dx%d frame needs %d bytes, have %d",
			binary.LittleEndian.Uint32(data[6:]), binary.LittleEndian.Uint32(data[10:]),
			size-HeaderSize, len(data)-HeaderSize)
	}
	return Header{
		Kind:    data[5],
		Rows:    int(binary.LittleEndian.Uint32(data[6:])),
		Cols:    int(binary.LittleEndian.Uint32(data[10:])),
		Payload: data[HeaderSize:size],
		Size:    size,
	}, nil
}

// Cell reads cell k of a matrix payload (row-major). It performs no bounds
// or NaN policing — it is the raw accessor under the validating decoders.
func Cell(payload []byte, k int) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(payload[k*8:]))
}

// EncodedMatrixSize returns the frame size of an r×c matrix.
func EncodedMatrixSize(r, c int) int { return HeaderSize + r*c*8 }

func putHeader(dst []byte, kind byte, rows, cols int) {
	copy(dst, Magic)
	dst[4] = Version
	dst[5] = kind
	binary.LittleEndian.PutUint32(dst[6:], uint32(rows))
	binary.LittleEndian.PutUint32(dst[10:], uint32(cols))
}

// AppendMatrix appends the binary frame of m to dst and returns the extended
// slice. Entries must be finite or +Inf (the ETC "impossible pairing"
// convention); NaN and -Inf have no wire form and fail the encode, exactly
// as they fail the JSON "inf" encoding.
func AppendMatrix(dst []byte, m *matrix.Dense) ([]byte, error) {
	r, c := m.Dims()
	if r == 0 || c == 0 {
		return nil, malformedf("cannot encode an empty %dx%d matrix", r, c)
	}
	base := len(dst)
	dst = append(dst, make([]byte, EncodedMatrixSize(r, c))...)
	putHeader(dst[base:], KindMatrix, r, c)
	off := base + HeaderSize
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			v := m.At(i, j)
			if math.IsNaN(v) || math.IsInf(v, -1) {
				return nil, malformedf("entry (%d,%d) = %g has no wire form", i, j, v)
			}
			binary.LittleEndian.PutUint64(dst[off:], math.Float64bits(v))
			off += 8
		}
	}
	return dst, nil
}

// EncodeMatrix writes the binary frame of m to w.
func EncodeMatrix(w io.Writer, m *matrix.Dense) error {
	buf, err := AppendMatrix(nil, m)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// DecodeMatrix decodes one matrix frame from the front of data into a fresh
// matrix, returning it and the number of bytes consumed (trailing data is
// the caller's: concatenated frames compose).
func DecodeMatrix(data []byte) (*matrix.Dense, int, error) {
	var m matrix.Dense
	n, err := DecodeMatrixInto(&m, data)
	if err != nil {
		return nil, 0, err
	}
	return &m, n, nil
}

// DecodeMatrixInto decodes one matrix frame from the front of data into dst,
// resizing it in place (dst's backing slice is reused when its capacity
// allows — pair with a pooled matrix to ingest without allocating). It
// returns the number of bytes consumed. NaN and -Inf cells are rejected;
// +Inf passes through (impossible pairing).
func DecodeMatrixInto(dst *matrix.Dense, data []byte) (int, error) {
	h, err := ParseHeader(data)
	if err != nil {
		return 0, err
	}
	if h.Kind != KindMatrix {
		return 0, malformedf("frame kind %d is not a matrix", h.Kind)
	}
	dst.Reset(h.Rows, h.Cols)
	cells := h.Cells()
	for k := 0; k < cells; k++ {
		v := Cell(h.Payload, k)
		if math.IsNaN(v) || math.IsInf(v, -1) {
			return 0, malformedf("cell (%d,%d) = %g has no wire form", k/h.Cols, k%h.Cols, v)
		}
		dst.Set(k/h.Cols, k%h.Cols, v)
	}
	return h.Size, nil
}
