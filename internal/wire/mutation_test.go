package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"testing"
)

func TestMutationRoundTrip(t *testing.T) {
	for _, m := range []Mutation{
		{Op: MutAddTask, Task: -1, Machine: -1, Values: []float64{1, 0, 2.5}},
		{Op: MutAddMachine, Task: -1, Machine: -1, Values: []float64{4e-300, 7}},
		{Op: MutDropTask, Task: 3, Machine: -1},
		{Op: MutDropMachine, Task: -1, Machine: 0},
		{Op: MutSetCell, Task: 12, Machine: 7, Values: []float64{9.000000000000002}},
		{Op: MutTaskWeights, Task: -1, Machine: -1, Values: []float64{1, 2, 3}},
		{Op: MutMachineWeights, Task: -1, Machine: -1, Values: []float64{0.5, 0.5}},
	} {
		t.Run(m.OpName(), func(t *testing.T) {
			buf, err := AppendMutation(nil, m)
			if err != nil {
				t.Fatal(err)
			}
			if len(buf) != EncodedMutationSize(len(m.Values)) {
				t.Fatalf("frame is %d bytes, want %d", len(buf), EncodedMutationSize(len(m.Values)))
			}
			got, n, err := DecodeMutation(buf)
			if err != nil {
				t.Fatal(err)
			}
			if n != len(buf) {
				t.Errorf("consumed %d of %d bytes", n, len(buf))
			}
			if got.Op != m.Op || got.Task != m.Task || got.Machine != m.Machine {
				t.Errorf("decoded %+v, want %+v", got, m)
			}
			if len(got.Values) != len(m.Values) {
				t.Fatalf("decoded %d values, want %d", len(got.Values), len(m.Values))
			}
			for k := range m.Values {
				if math.Float64bits(got.Values[k]) != math.Float64bits(m.Values[k]) {
					t.Errorf("value %d = %g, want %g", k, got.Values[k], m.Values[k])
				}
			}
			re, err := AppendMutation(nil, got)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(re, buf) {
				t.Errorf("re-encode mismatch:\n got  % x\n want % x", re, buf)
			}
		})
	}
}

func TestMutationGoldenBytes(t *testing.T) {
	buf, err := AppendMutation(nil, Mutation{Op: MutSetCell, Task: 1, Machine: 2, Values: []float64{1.5}})
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{
		'H', 'C', 'M', 'X', // magic
		1, // version
		KindMutation,
		5, 0, 0, 0, // rows = op set_cell
		1, 0, 0, 0, // cols = one value
		2, 0, 0, 0, 1, 0, 0, 0, // index word 1<<32|2 LE
		0, 0, 0, 0, 0, 0, 0xf8, 0x3f, // 1.5
	}
	if !bytes.Equal(buf, want) {
		t.Errorf("golden bytes drifted:\n got  % x\n want % x", buf, want)
	}
}

func TestMutationEncodeRejects(t *testing.T) {
	for name, m := range map[string]Mutation{
		"unknown op":          {Op: 0},
		"op out of range":     {Op: 99, Values: []float64{1}},
		"add without values":  {Op: MutAddTask},
		"drop with values":    {Op: MutDropTask, Task: 1, Machine: -1, Values: []float64{1}},
		"drop bad index":      {Op: MutDropTask, Task: -1, Machine: -1},
		"set_cell two values": {Op: MutSetCell, Task: 0, Machine: 0, Values: []float64{1, 2}},
		"set_cell bad index":  {Op: MutSetCell, Task: 0, Machine: MaxDim, Values: []float64{1}},
		"NaN value":           {Op: MutTaskWeights, Task: -1, Machine: -1, Values: []float64{math.NaN()}},
		"Inf value":           {Op: MutAddMachine, Task: -1, Machine: -1, Values: []float64{math.Inf(1)}},
		"negative value":      {Op: MutAddTask, Task: -1, Machine: -1, Values: []float64{-1}},
	} {
		if _, err := AppendMutation(nil, m); !errors.Is(err, ErrMalformed) {
			t.Errorf("%s: err = %v, want ErrMalformed", name, err)
		}
	}
}

func TestMutationDecodeRejectsNonCanonical(t *testing.T) {
	// A weights op must carry a zero index word: flip a bit and the decoder
	// must refuse rather than silently drop information the re-encode would
	// not reproduce.
	buf, err := AppendMutation(nil, Mutation{Op: MutTaskWeights, Task: -1, Machine: -1, Values: []float64{1}})
	if err != nil {
		t.Fatal(err)
	}
	buf[HeaderSize] = 1
	if _, _, err := DecodeMutation(buf); !errors.Is(err, ErrMalformed) {
		t.Errorf("non-canonical index word decoded: %v", err)
	}

	// Op codes ride in a 32-bit field but only 1..7 are assigned.
	buf2, _ := AppendMutation(nil, Mutation{Op: MutDropTask, Task: 0, Machine: -1})
	binary.LittleEndian.PutUint32(buf2[6:], 300)
	if _, _, err := DecodeMutation(buf2); !errors.Is(err, ErrMalformed) {
		t.Errorf("out-of-range op decoded: %v", err)
	}
}

func TestMutationSelfDelimiting(t *testing.T) {
	buf, err := AppendMutation(nil, Mutation{Op: MutDropMachine, Task: -1, Machine: 4})
	if err != nil {
		t.Fatal(err)
	}
	buf, err = AppendMutation(buf, Mutation{Op: MutSetCell, Task: 0, Machine: 1, Values: []float64{2}})
	if err != nil {
		t.Fatal(err)
	}
	first, n, err := DecodeMutation(buf)
	if err != nil {
		t.Fatal(err)
	}
	if first.Op != MutDropMachine || first.Machine != 4 {
		t.Errorf("first frame decoded as %+v", first)
	}
	second, n2, err := DecodeMutation(buf[n:])
	if err != nil {
		t.Fatal(err)
	}
	if second.Op != MutSetCell || second.Task != 0 || second.Machine != 1 {
		t.Errorf("second frame decoded as %+v", second)
	}
	if n+n2 != len(buf) {
		t.Errorf("consumed %d+%d of %d bytes", n, n2, len(buf))
	}
}
