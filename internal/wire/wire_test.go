package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"testing"

	"repro/internal/matrix"
)

func TestMatrixRoundTrip(t *testing.T) {
	m := matrix.FromRows([][]float64{
		{10, math.Inf(1), 7.25},
		{4e-300, 2, 9.000000000000002},
	})
	buf, err := AppendMatrix(nil, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != EncodedMatrixSize(2, 3) {
		t.Fatalf("frame is %d bytes, want %d", len(buf), EncodedMatrixSize(2, 3))
	}
	got, n, err := DecodeMatrix(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Errorf("consumed %d of %d bytes", n, len(buf))
	}
	r, c := got.Dims()
	if r != 2 || c != 3 {
		t.Fatalf("decoded shape %dx%d, want 2x3", r, c)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if math.Float64bits(got.At(i, j)) != math.Float64bits(m.At(i, j)) {
				t.Errorf("cell (%d,%d) = %g, want %g (bits must survive)", i, j, got.At(i, j), m.At(i, j))
			}
		}
	}
	if !math.IsInf(got.At(0, 1), 1) {
		t.Errorf("impossible pairing lost: got %g", got.At(0, 1))
	}
}

func TestMatrixRejectsNaNAndNegInf(t *testing.T) {
	for name, v := range map[string]float64{"nan": math.NaN(), "-inf": math.Inf(-1)} {
		t.Run("encode "+name, func(t *testing.T) {
			if _, err := AppendMatrix(nil, matrix.FromRows([][]float64{{1, v}})); err == nil {
				t.Fatalf("%s must not have a wire form", name)
			}
		})
		t.Run("decode "+name, func(t *testing.T) {
			// Forge a frame carrying the forbidden value: decoders must police
			// cells, not just trust encoders.
			buf, err := AppendMatrix(nil, matrix.FromRows([][]float64{{1, 2}}))
			if err != nil {
				t.Fatal(err)
			}
			binary.LittleEndian.PutUint64(buf[HeaderSize+8:], math.Float64bits(v))
			if _, _, err := DecodeMatrix(buf); !errors.Is(err, ErrMalformed) {
				t.Fatalf("decoding a forged %s cell: err = %v, want ErrMalformed", name, err)
			}
		})
	}
}

// TestMatrixGoldenBytes pins the exact header layout; any change here is a
// wire-format break and needs a version bump, not a test update.
func TestMatrixGoldenBytes(t *testing.T) {
	m := matrix.FromRows([][]float64{{1, 2, 3}, {4, 5, math.Inf(1)}})
	buf, err := AppendMatrix(nil, m)
	if err != nil {
		t.Fatal(err)
	}
	goldenHeader := []byte{
		'H', 'C', 'M', 'X', // magic
		1,          // version
		1,          // kind = matrix
		2, 0, 0, 0, // rows, uint32 LE
		3, 0, 0, 0, // cols, uint32 LE
	}
	if !bytes.Equal(buf[:HeaderSize], goldenHeader) {
		t.Errorf("header drifted:\n got  % x\n want % x", buf[:HeaderSize], goldenHeader)
	}
	// First cell: float64(1) little-endian; last cell: +Inf.
	if got := binary.LittleEndian.Uint64(buf[HeaderSize:]); got != math.Float64bits(1) {
		t.Errorf("cell (0,0) bytes = %#x, want %#x", got, math.Float64bits(1))
	}
	if got := binary.LittleEndian.Uint64(buf[len(buf)-8:]); got != math.Float64bits(math.Inf(1)) {
		t.Errorf("cell (1,2) bytes = %#x, want +Inf bits %#x", got, math.Float64bits(math.Inf(1)))
	}
}

func TestParseHeaderRejects(t *testing.T) {
	valid, err := AppendMatrix(nil, matrix.FromRows([][]float64{{1, 2}, {3, 4}}))
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(mutate func([]byte)) []byte {
		b := append([]byte(nil), valid...)
		mutate(b)
		return b
	}
	cases := map[string][]byte{
		"empty":             nil,
		"truncated header":  valid[:HeaderSize-1],
		"truncated payload": valid[:len(valid)-1],
		"bad magic":         corrupt(func(b []byte) { b[0] = 'X' }),
		"bad version":       corrupt(func(b []byte) { b[4] = 99 }),
		"bad kind":          corrupt(func(b []byte) { b[5] = 7 }),
		"zero rows":         corrupt(func(b []byte) { binary.LittleEndian.PutUint32(b[6:], 0) }),
		"zero cols":         corrupt(func(b []byte) { binary.LittleEndian.PutUint32(b[10:], 0) }),
		// Oversized dims: the payload length would be ~32 EiB; the parser must
		// reject via MaxDim before any multiplication can wrap.
		"huge dims": corrupt(func(b []byte) {
			binary.LittleEndian.PutUint32(b[6:], 0xffffffff)
			binary.LittleEndian.PutUint32(b[10:], 0xffffffff)
		}),
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ParseHeader(data); !errors.Is(err, ErrMalformed) {
				t.Errorf("err = %v, want ErrMalformed", err)
			}
		})
	}
}

func TestFrameConcatenation(t *testing.T) {
	a := matrix.FromRows([][]float64{{1, 2}})
	b := matrix.FromRows([][]float64{{3}, {4}, {5}})
	buf, err := AppendMatrix(nil, a)
	if err != nil {
		t.Fatal(err)
	}
	if buf, err = AppendMatrix(buf, b); err != nil {
		t.Fatal(err)
	}
	ga, n, err := DecodeMatrix(buf)
	if err != nil {
		t.Fatal(err)
	}
	gb, n2, err := DecodeMatrix(buf[n:])
	if err != nil {
		t.Fatal(err)
	}
	if n+n2 != len(buf) {
		t.Errorf("frames consumed %d+%d of %d bytes", n, n2, len(buf))
	}
	if r, c := ga.Dims(); r != 1 || c != 2 {
		t.Errorf("first frame %dx%d, want 1x2", r, c)
	}
	if r, c := gb.Dims(); r != 3 || c != 1 || gb.At(2, 0) != 5 {
		t.Errorf("second frame %dx%d (last=%g), want 3x1 (5)", r, c, gb.At(2, 0))
	}
}

func TestDecodeMatrixIntoReuses(t *testing.T) {
	big, err := AppendMatrix(nil, matrix.FromRows([][]float64{{1, 2, 3, 4}, {5, 6, 7, 8}}))
	if err != nil {
		t.Fatal(err)
	}
	small, err := AppendMatrix(nil, matrix.FromRows([][]float64{{9, 10}}))
	if err != nil {
		t.Fatal(err)
	}
	var dst matrix.Dense
	if _, err := DecodeMatrixInto(&dst, big); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeMatrixInto(&dst, small); err != nil {
		t.Fatal(err)
	}
	if r, c := dst.Dims(); r != 1 || c != 2 || dst.At(0, 0) != 9 || dst.At(0, 1) != 10 {
		t.Errorf("reused decode = %dx%d %v, want 1x2 [9 10]", r, c, dst)
	}
}

func TestProfileRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name string
		p    Profile
	}{
		{"standardizable", Profile{
			Tasks: 3, Machines: 2,
			MPH: 0.5, TDH: 0.25, TMA: 0.125, TMAValid: true,
			RatioR: 1.5, GeoMeanG: 2.5, COV: 0.75,
			SinkhornIterations: 42, Trimmed: 1, Cached: true,
			MachinePerf: []float64{1, 2},
			TaskDiff:    []float64{3, 4, 5},
		}},
		{"no tma", Profile{
			Tasks: 1, Machines: 1,
			MPH: 1, TDH: 1, TMAValid: false,
			MachinePerf: []float64{1},
			TaskDiff:    []float64{1},
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			buf, err := AppendProfile(nil, &tc.p)
			if err != nil {
				t.Fatal(err)
			}
			if len(buf) != EncodedProfileSize(tc.p.Tasks, tc.p.Machines) {
				t.Fatalf("frame is %d bytes, want %d", len(buf), EncodedProfileSize(tc.p.Tasks, tc.p.Machines))
			}
			got, n, err := DecodeProfile(buf)
			if err != nil {
				t.Fatal(err)
			}
			if n != len(buf) {
				t.Errorf("consumed %d of %d bytes", n, len(buf))
			}
			if !tc.p.TMAValid {
				if !math.IsNaN(got.TMA) {
					t.Errorf("invalid TMA decoded as %g, want NaN", got.TMA)
				}
				got.TMA = tc.p.TMA // normalize for the struct comparison below
			}
			want := tc.p
			if !profilesEqual(got, &want) {
				t.Errorf("round trip drifted:\n got  %+v\n want %+v", got, &want)
			}
		})
	}
}

func profilesEqual(a, b *Profile) bool {
	if a.Tasks != b.Tasks || a.Machines != b.Machines ||
		a.MPH != b.MPH || a.TDH != b.TDH || a.TMA != b.TMA ||
		a.RatioR != b.RatioR || a.GeoMeanG != b.GeoMeanG || a.COV != b.COV ||
		a.SinkhornIterations != b.SinkhornIterations || a.Trimmed != b.Trimmed ||
		a.Cached != b.Cached || a.TMAValid != b.TMAValid ||
		len(a.MachinePerf) != len(b.MachinePerf) || len(a.TaskDiff) != len(b.TaskDiff) {
		return false
	}
	for i := range a.MachinePerf {
		if a.MachinePerf[i] != b.MachinePerf[i] {
			return false
		}
	}
	for i := range a.TaskDiff {
		if a.TaskDiff[i] != b.TaskDiff[i] {
			return false
		}
	}
	return true
}

func TestProfileVectorLengthMismatch(t *testing.T) {
	p := Profile{Tasks: 2, Machines: 2, MachinePerf: []float64{1}, TaskDiff: []float64{1, 2}}
	if _, err := AppendProfile(nil, &p); err == nil {
		t.Fatal("mismatched vectors must not encode")
	}
}

// FuzzWireDecode feeds arbitrary bytes to the matrix and mutation decoders.
// The invariants: never panic, and any accepted frame re-encodes to exactly
// the bytes consumed (the format has one representation per frame).
func FuzzWireDecode(f *testing.F) {
	seed, _ := AppendMatrix(nil, matrix.FromRows([][]float64{{1, math.Inf(1)}, {3, 4}}))
	f.Add(seed)
	f.Add(seed[:HeaderSize-3])
	f.Add(append(append([]byte(nil), seed...), 0xde, 0xad))
	huge := append([]byte(nil), seed...)
	binary.LittleEndian.PutUint32(huge[6:], 0x7fffffff)
	f.Add(huge)
	for _, m := range []Mutation{
		{Op: MutAddTask, Task: -1, Machine: -1, Values: []float64{1, 2}},
		{Op: MutDropTask, Task: 3, Machine: -1},
		{Op: MutSetCell, Task: 1, Machine: 2, Values: []float64{1.5}},
		{Op: MutMachineWeights, Task: -1, Machine: -1, Values: []float64{1}},
	} {
		ms, _ := AppendMutation(nil, m)
		f.Add(ms)
		f.Add(ms[:len(ms)-1])
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		m, n, err := DecodeMatrix(data)
		if err != nil {
			if !errors.Is(err, ErrMalformed) {
				t.Fatalf("decode error %v does not wrap ErrMalformed", err)
			}
		} else {
			if n < HeaderSize || n > len(data) {
				t.Fatalf("consumed %d bytes of %d", n, len(data))
			}
			re, err := AppendMatrix(nil, m)
			if err != nil {
				t.Fatalf("re-encoding an accepted frame failed: %v", err)
			}
			if !bytes.Equal(re, data[:n]) {
				t.Fatalf("re-encode mismatch:\n got  % x\n want % x", re, data[:n])
			}
		}
		mut, n, err := DecodeMutation(data)
		if err != nil {
			if !errors.Is(err, ErrMalformed) {
				t.Fatalf("mutation decode error %v does not wrap ErrMalformed", err)
			}
			return
		}
		if n < HeaderSize || n > len(data) {
			t.Fatalf("mutation consumed %d bytes of %d", n, len(data))
		}
		re, err := AppendMutation(nil, mut)
		if err != nil {
			t.Fatalf("re-encoding an accepted mutation failed: %v", err)
		}
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("mutation re-encode mismatch:\n got  % x\n want % x", re, data[:n])
		}
	})
}
