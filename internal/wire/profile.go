package wire

import (
	"encoding/binary"
	"math"
)

// Profile is the wire-neutral measure profile a profile frame carries. It
// mirrors the JSON ProfileDTO field for field; the server maps core.Profile
// into it. TMA is meaningful only when TMAValid is set — an environment that
// does not standardize has no TMA, and the frame stores NaN there.
type Profile struct {
	Tasks, Machines    int
	MPH, TDH, TMA      float64
	RatioR, GeoMeanG   float64
	COV                float64
	SinkhornIterations int
	Trimmed            int
	Cached             bool
	TMAValid           bool
	MachinePerf        []float64 // length Machines
	TaskDiff           []float64 // length Tasks
}

// profileFixedSize is the payload size before the vectors: six float64
// scalars, two uint32 counters and one flags byte.
const profileFixedSize = 6*8 + 2*4 + 1

// Profile flag bits.
const (
	profileFlagCached   = 1 << 0
	profileFlagTMAValid = 1 << 1
)

// EncodedProfileSize returns the frame size of a profile for t tasks and m
// machines.
func EncodedProfileSize(t, m int) int {
	return HeaderSize + profileFixedSize + (t+m)*8
}

// AppendProfile appends the binary frame of p to dst. The payload after the
// header is:
//
//	offset  size  field
//	0       8     mph
//	8       8     tdh
//	16      8     tma (NaN unless the tmaValid flag is set)
//	24      8     ratioR
//	32      8     geoMeanG
//	40      8     cov
//	48      4     sinkhornIterations (uint32 LE)
//	52      4     trimmed (uint32 LE)
//	56      1     flags (bit0 cached, bit1 tmaValid)
//	57      8·M   machinePerf
//	57+8·M  8·T   taskDiff
func AppendProfile(dst []byte, p *Profile) ([]byte, error) {
	if p.Tasks <= 0 || p.Machines <= 0 {
		return nil, malformedf("cannot encode a %dx%d profile", p.Tasks, p.Machines)
	}
	if len(p.MachinePerf) != p.Machines || len(p.TaskDiff) != p.Tasks {
		return nil, malformedf("profile vectors %d/%d do not match dims %dx%d",
			len(p.TaskDiff), len(p.MachinePerf), p.Tasks, p.Machines)
	}
	base := len(dst)
	dst = append(dst, make([]byte, EncodedProfileSize(p.Tasks, p.Machines))...)
	putHeader(dst[base:], KindProfile, p.Tasks, p.Machines)
	b := dst[base+HeaderSize:]
	tma := p.TMA
	if !p.TMAValid {
		tma = math.NaN()
	}
	for i, v := range []float64{p.MPH, p.TDH, tma, p.RatioR, p.GeoMeanG, p.COV} {
		binary.LittleEndian.PutUint64(b[i*8:], math.Float64bits(v))
	}
	binary.LittleEndian.PutUint32(b[48:], uint32(p.SinkhornIterations))
	binary.LittleEndian.PutUint32(b[52:], uint32(p.Trimmed))
	var flags byte
	if p.Cached {
		flags |= profileFlagCached
	}
	if p.TMAValid {
		flags |= profileFlagTMAValid
	}
	b[56] = flags
	off := int(profileFixedSize)
	for _, v := range p.MachinePerf {
		binary.LittleEndian.PutUint64(b[off:], math.Float64bits(v))
		off += 8
	}
	for _, v := range p.TaskDiff {
		binary.LittleEndian.PutUint64(b[off:], math.Float64bits(v))
		off += 8
	}
	return dst, nil
}

// DecodeProfile decodes one profile frame from the front of data, returning
// it and the number of bytes consumed.
func DecodeProfile(data []byte) (*Profile, int, error) {
	h, err := ParseHeader(data)
	if err != nil {
		return nil, 0, err
	}
	if h.Kind != KindProfile {
		return nil, 0, malformedf("frame kind %d is not a profile", h.Kind)
	}
	b := h.Payload
	p := &Profile{
		Tasks:              h.Rows,
		Machines:           h.Cols,
		MPH:                math.Float64frombits(binary.LittleEndian.Uint64(b[0:])),
		TDH:                math.Float64frombits(binary.LittleEndian.Uint64(b[8:])),
		TMA:                math.Float64frombits(binary.LittleEndian.Uint64(b[16:])),
		RatioR:             math.Float64frombits(binary.LittleEndian.Uint64(b[24:])),
		GeoMeanG:           math.Float64frombits(binary.LittleEndian.Uint64(b[32:])),
		COV:                math.Float64frombits(binary.LittleEndian.Uint64(b[40:])),
		SinkhornIterations: int(binary.LittleEndian.Uint32(b[48:])),
		Trimmed:            int(binary.LittleEndian.Uint32(b[52:])),
		Cached:             b[56]&profileFlagCached != 0,
		TMAValid:           b[56]&profileFlagTMAValid != 0,
		MachinePerf:        make([]float64, h.Cols),
		TaskDiff:           make([]float64, h.Rows),
	}
	off := int(profileFixedSize)
	for i := range p.MachinePerf {
		p.MachinePerf[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[off:]))
		off += 8
	}
	for i := range p.TaskDiff {
		p.TaskDiff[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[off:]))
		off += 8
	}
	return p, h.Size, nil
}
