package wire

import (
	"errors"
	"math"
	"testing"
)

func TestEnvFrameRoundTrip(t *testing.T) {
	f := &EnvFrame{
		Rows: 2, Cols: 3,
		ECS:            []float64{0.5, 0, 1.0 / 3.0, 2, 0.125, 7},
		TaskWeights:    []float64{2, 3},
		MachineWeights: []float64{1, 0.5, 4},
	}
	buf, err := AppendEnv(nil, f)
	if err != nil {
		t.Fatalf("AppendEnv: %v", err)
	}
	if len(buf) != EncodedEnvSize(2, 3) {
		t.Fatalf("frame size %d, want %d", len(buf), EncodedEnvSize(2, 3))
	}
	got, n, err := DecodeEnv(buf)
	if err != nil {
		t.Fatalf("DecodeEnv: %v", err)
	}
	if n != len(buf) {
		t.Fatalf("consumed %d of %d bytes", n, len(buf))
	}
	if got.Rows != 2 || got.Cols != 3 {
		t.Fatalf("dims %dx%d", got.Rows, got.Cols)
	}
	for k, v := range f.ECS {
		if got.ECS[k] != v {
			t.Errorf("ECS[%d] = %g, want %g (must be bit-exact)", k, got.ECS[k], v)
		}
	}
	for i, v := range f.TaskWeights {
		if got.TaskWeights[i] != v {
			t.Errorf("taskWeights[%d] = %g, want %g", i, got.TaskWeights[i], v)
		}
	}
	for j, v := range f.MachineWeights {
		if got.MachineWeights[j] != v {
			t.Errorf("machineWeights[%d] = %g, want %g", j, got.MachineWeights[j], v)
		}
	}
}

func TestEnvFrameDefaultedWeightsEncodeAsOnes(t *testing.T) {
	f := &EnvFrame{Rows: 1, Cols: 2, ECS: []float64{1, 2}}
	buf, err := AppendEnv(nil, f)
	if err != nil {
		t.Fatalf("AppendEnv: %v", err)
	}
	got, _, err := DecodeEnv(buf)
	if err != nil {
		t.Fatalf("DecodeEnv: %v", err)
	}
	for i, v := range got.TaskWeights {
		if v != 1 {
			t.Errorf("taskWeights[%d] = %g, want 1", i, v)
		}
	}
	for j, v := range got.MachineWeights {
		if v != 1 {
			t.Errorf("machineWeights[%d] = %g, want 1", j, v)
		}
	}
}

func TestEnvFrameRejectsBadCells(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), -0.5} {
		f := &EnvFrame{Rows: 1, Cols: 1, ECS: []float64{bad}}
		if _, err := AppendEnv(nil, f); !errors.Is(err, ErrMalformed) {
			t.Errorf("AppendEnv(%g) err = %v, want ErrMalformed", bad, err)
		}
	}
	// Same policing on decode: hand-craft a frame with a NaN cell.
	good := &EnvFrame{Rows: 1, Cols: 1, ECS: []float64{1}}
	buf, err := AppendEnv(nil, good)
	if err != nil {
		t.Fatal(err)
	}
	for i := HeaderSize; i < HeaderSize+8; i++ {
		buf[i] = 0xff // NaN bits
	}
	if _, _, err := DecodeEnv(buf); !errors.Is(err, ErrMalformed) {
		t.Errorf("DecodeEnv(NaN cell) err = %v, want ErrMalformed", err)
	}
}

func TestEnvFrameShapeErrors(t *testing.T) {
	cases := []*EnvFrame{
		{Rows: 0, Cols: 1, ECS: nil},
		{Rows: 1, Cols: 2, ECS: []float64{1}},                               // short cells
		{Rows: 1, Cols: 1, ECS: []float64{1}, TaskWeights: []float64{1, 2}}, // wrong task weights
		{Rows: 1, Cols: 1, ECS: []float64{1}, MachineWeights: []float64{}},  // wrong machine weights
	}
	for i, f := range cases {
		if _, err := AppendEnv(nil, f); !errors.Is(err, ErrMalformed) {
			t.Errorf("case %d: err = %v, want ErrMalformed", i, err)
		}
	}
}

func TestEnvFrameSelfDelimiting(t *testing.T) {
	a := &EnvFrame{Rows: 1, Cols: 2, ECS: []float64{1, 2}}
	b := &EnvFrame{Rows: 2, Cols: 1, ECS: []float64{3, 4}}
	buf, err := AppendEnv(nil, a)
	if err != nil {
		t.Fatal(err)
	}
	if buf, err = AppendEnv(buf, b); err != nil {
		t.Fatal(err)
	}
	f1, n1, err := DecodeEnv(buf)
	if err != nil {
		t.Fatal(err)
	}
	f2, n2, err := DecodeEnv(buf[n1:])
	if err != nil {
		t.Fatal(err)
	}
	if n1+n2 != len(buf) {
		t.Fatalf("consumed %d+%d of %d", n1, n2, len(buf))
	}
	if f1.ECS[1] != 2 || f2.ECS[0] != 3 {
		t.Fatalf("frames decoded out of order: %v %v", f1.ECS, f2.ECS)
	}
}
