package wire

import (
	"encoding/binary"
	"math"
)

// EnvFrame is the wire-neutral form of a full environment: the ECS entries
// plus both weight vectors. It exists for peer-to-peer request forwarding in
// the serving cluster, where the frame must reproduce the requester's content
// key bit-exactly on the receiving node. A matrix frame cannot do that: it
// carries ETC entries, and the ETC→ECS reciprocal is not a bit-stable
// round-trip (1/(1/3) != 3 in float64), so a forwarded matrix frame would
// hash to a different key than the original request and split the cluster's
// cache key space. The env frame carries the ECS values the content hasher
// actually consumes, so requester and owner agree on the key by construction.
//
// An ECS entry of 0 is the "impossible pairing" (ETC +Inf); entries must
// otherwise be positive and finite. Weight vectors are always present on the
// wire — a defaulted weight vector is encoded as explicit 1s, which is
// exactly how the content hasher canonicalizes it.
type EnvFrame struct {
	Rows, Cols     int
	ECS            []float64 // rows·cols, row-major
	TaskWeights    []float64 // length Rows; nil encodes as all-1s
	MachineWeights []float64 // length Cols; nil encodes as all-1s
}

// EncodedEnvSize returns the frame size of an r×c environment.
func EncodedEnvSize(r, c int) int { return HeaderSize + (r*c+r+c)*8 }

// AppendEnv appends the binary env frame of f to dst. The payload after the
// header is rows·cols ECS float64s (row-major), then rows task weights, then
// cols machine weights, all little-endian. ECS entries must be finite and
// >= 0 (0 = impossible pairing); NaN, Inf and negatives have no wire form.
func AppendEnv(dst []byte, f *EnvFrame) ([]byte, error) {
	r, c := f.Rows, f.Cols
	if r <= 0 || c <= 0 {
		return nil, malformedf("cannot encode an empty %dx%d env frame", r, c)
	}
	if len(f.ECS) != r*c {
		return nil, malformedf("env frame carries %d cells for %dx%d", len(f.ECS), r, c)
	}
	if f.TaskWeights != nil && len(f.TaskWeights) != r {
		return nil, malformedf("env frame carries %d task weights for %d tasks", len(f.TaskWeights), r)
	}
	if f.MachineWeights != nil && len(f.MachineWeights) != c {
		return nil, malformedf("env frame carries %d machine weights for %d machines", len(f.MachineWeights), c)
	}
	base := len(dst)
	dst = append(dst, make([]byte, EncodedEnvSize(r, c))...)
	putHeader(dst[base:], KindEnv, r, c)
	off := base + HeaderSize
	for k, v := range f.ECS {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return nil, malformedf("ECS cell (%d,%d) = %g has no wire form", k/c, k%c, v)
		}
		binary.LittleEndian.PutUint64(dst[off:], math.Float64bits(v))
		off += 8
	}
	off = appendWeights(dst, off, f.TaskWeights, r)
	appendWeights(dst, off, f.MachineWeights, c)
	return dst, nil
}

// appendWeights writes an explicit weight vector, or n unit weights when w is
// nil, returning the advanced offset.
func appendWeights(dst []byte, off int, w []float64, n int) int {
	for i := 0; i < n; i++ {
		v := 1.0
		if w != nil {
			v = w[i]
		}
		binary.LittleEndian.PutUint64(dst[off:], math.Float64bits(v))
		off += 8
	}
	return off
}

// DecodeEnv decodes one env frame from the front of data, returning it and
// the number of bytes consumed. Weight vectors come back explicit (never
// nil). Weight values are not validated here — the environment constructor
// owns weight semantics — but ECS cells are policed exactly as AppendEnv
// writes them.
func DecodeEnv(data []byte) (*EnvFrame, int, error) {
	h, err := ParseHeader(data)
	if err != nil {
		return nil, 0, err
	}
	if h.Kind != KindEnv {
		return nil, 0, malformedf("frame kind %d is not an env", h.Kind)
	}
	f := &EnvFrame{
		Rows:           h.Rows,
		Cols:           h.Cols,
		ECS:            make([]float64, h.Rows*h.Cols),
		TaskWeights:    make([]float64, h.Rows),
		MachineWeights: make([]float64, h.Cols),
	}
	off := 0
	for k := range f.ECS {
		v := Cell(h.Payload, k)
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return nil, 0, malformedf("ECS cell (%d,%d) = %g has no wire form", k/h.Cols, k%h.Cols, v)
		}
		f.ECS[k] = v
		off++
	}
	for i := range f.TaskWeights {
		f.TaskWeights[i] = Cell(h.Payload, off)
		off++
	}
	for i := range f.MachineWeights {
		f.MachineWeights[i] = Cell(h.Payload, off)
		off++
	}
	return f, h.Size, nil
}
