package wire

// Handoff records carry warm cache entries between cluster nodes when ring
// ownership moves. A handoff body is a plain concatenation of records, each
// the entry's 32-byte content key followed by its profile frame (KindProfile,
// self-delimiting). There is no outer envelope: the receiver decodes records
// until the body is exhausted, and a truncated tail fails the whole request
// rather than silently importing a partial entry.

// ContentTypeHandoff is the media type of a handoff body.
const ContentTypeHandoff = "application/x-hc-handoff"

// HandoffKeySize is the content-key prefix length of one handoff record.
const HandoffKeySize = 32

// AppendHandoffEntry appends one handoff record — key then profile frame —
// to dst and returns the extended slice.
func AppendHandoffEntry(dst []byte, key [HandoffKeySize]byte, p *Profile) ([]byte, error) {
	dst = append(dst, key[:]...)
	return AppendProfile(dst, p)
}

// DecodeHandoffEntry decodes the record at the head of data, returning the
// key, the profile and the bytes consumed.
func DecodeHandoffEntry(data []byte) (key [HandoffKeySize]byte, p *Profile, consumed int, err error) {
	if len(data) < HandoffKeySize {
		return key, nil, 0, malformedf("handoff record truncated: %d bytes before the key ends", len(data))
	}
	copy(key[:], data[:HandoffKeySize])
	p, n, err := DecodeProfile(data[HandoffKeySize:])
	if err != nil {
		return key, nil, 0, err
	}
	return key, p, HandoffKeySize + n, nil
}
