// Package wire implements the compact binary wire format of the serving
// tier: fixed little-endian frames carrying ETC matrices and measure
// profiles, negotiated over HTTP with the application/x-hc-matrix and
// application/x-hc-profile content types (see API.md §Binary wire format).
//
// The format exists because JSON decoding dominated request latency once the
// characterization pipeline itself got fast: at 150×80 a JSON ETC body is
// ~250 KB of decimal text that costs milliseconds to tokenize, while the
// equivalent binary frame is 96 KB of float64 bits that decodes at memcpy
// speed. At fleet shapes (10k×10k) the JSON form stops being viable at all.
//
// Every frame starts with the same 14-byte header:
//
//	offset  size  field
//	0       4     magic "HCMX"
//	4       1     version (currently 1)
//	5       1     kind (1 = ETC matrix, 2 = profile, 3 = env, 4 = mutation)
//	6       4     rows  (uint32 LE; tasks for profile frames, op for mutations)
//	10      4     cols  (uint32 LE; machines for profile frames, value count
//	              for mutations)
//
// A matrix frame's payload is rows·cols float64s, little-endian, row-major.
// Entries follow the ETC convention of the JSON API: +Inf marks an
// impossible task-machine pairing (the JSON string "inf"); NaN and -Inf have
// no meaning and are rejected by both encoder and decoder. A profile frame's
// payload is the fixed scalar block followed by the machinePerf and taskDiff
// vectors (see AppendProfile).
//
// Frames are self-delimiting, so concatenation composes: a batch request is
// matrix frames back to back, and a binary generate response is a matrix
// frame followed by a profile frame. Decoders return the number of bytes
// consumed to support this.
package wire

import (
	"errors"
	"fmt"
)

// Magic is the 4-byte frame signature.
const Magic = "HCMX"

// Version is the format version this package reads and writes.
const Version = 1

// Frame kinds.
const (
	KindMatrix   = 1 // ETC matrix, float64 LE row-major payload
	KindProfile  = 2 // measure profile, fixed block + vectors
	KindEnv      = 3 // full environment: ECS cells + both weight vectors
	KindMutation = 4 // stream session mutation: op + index word + values
)

// Mutation op codes, carried in the rows field of a KindMutation header (the
// cols field carries the value count). See AppendMutation for the payload
// layout and per-op semantics.
const (
	MutAddTask        byte = 1 // values = new ECS row (one entry per machine)
	MutAddMachine     byte = 2 // values = new ECS column (one entry per task)
	MutDropTask       byte = 3 // index word = task index, no values
	MutDropMachine    byte = 4 // index word = machine index, no values
	MutSetCell        byte = 5 // index word = task<<32 | machine, one ECS value
	MutTaskWeights    byte = 6 // values = full task weight vector
	MutMachineWeights byte = 7 // values = full machine weight vector
)

// MutOpName returns the stable string name of a mutation op ("add_task",
// "drop_machine", ...) used as the {kind} label of
// hcserved_stream_mutations_total and in stream error messages. Unknown ops
// return "unknown".
func MutOpName(op byte) string {
	switch op {
	case MutAddTask:
		return "add_task"
	case MutAddMachine:
		return "add_machine"
	case MutDropTask:
		return "drop_task"
	case MutDropMachine:
		return "drop_machine"
	case MutSetCell:
		return "set_cell"
	case MutTaskWeights:
		return "task_weights"
	case MutMachineWeights:
		return "machine_weights"
	}
	return "unknown"
}

// HeaderSize is the length of the fixed frame header in bytes.
const HeaderSize = 14

// HTTP content types negotiating the binary format (see API.md):
// ContentTypeMatrix on a request marks the body as matrix frames (one for
// characterize/whatif, concatenated for batch) and on a generate request's
// Accept header asks for the binary matrix+profile response;
// ContentTypeProfile on a characterize request's Accept header asks for the
// profile frame instead of JSON.
const (
	ContentTypeMatrix  = "application/x-hc-matrix"
	ContentTypeProfile = "application/x-hc-profile"
)

// MaxDim bounds either frame dimension. It exists to fail fast on garbage
// headers; real bodies are bounded by the server's MaxBodyBytes long before
// this.
const MaxDim = 1 << 28

// ErrMalformed wraps every decode failure, so callers can classify any wire
// error with a single errors.Is.
var ErrMalformed = errors.New("wire: malformed frame")

func malformedf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrMalformed, fmt.Sprintf(format, args...))
}
