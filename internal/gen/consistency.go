package gen

import (
	"fmt"
	"sort"

	"repro/internal/etcmat"
	"repro/internal/matrix"
)

// Consistency is the classic ETC-matrix taxonomy of Braun et al. (the
// paper's ref [6]). It interacts directly with the paper's TMA measure:
// a consistent matrix has one global machine ranking (low affinity), an
// inconsistent matrix lets every task type rank machines its own way (high
// affinity), and semi-consistent sits between.
type Consistency int

const (
	// Inconsistent leaves the generated ETC values as drawn: machine
	// rankings vary freely across task types.
	Inconsistent Consistency = iota
	// Consistent reorders every row so machine 1 is fastest for every task
	// type, machine 2 second, and so on.
	Consistent
	// SemiConsistent imposes the consistent ordering on the even-indexed
	// machine columns only (Braun et al.'s convention), leaving odd columns
	// inconsistent.
	SemiConsistent
)

// String implements fmt.Stringer.
func (c Consistency) String() string {
	switch c {
	case Inconsistent:
		return "inconsistent"
	case Consistent:
		return "consistent"
	case SemiConsistent:
		return "semi-consistent"
	default:
		return fmt.Sprintf("Consistency(%d)", int(c))
	}
}

// WithConsistency rewrites an environment's ETC matrix into the requested
// consistency class by per-row reordering of its values (the value
// *distribution* is untouched — only which machine gets which time changes).
// Inconsistent returns the environment unchanged.
func WithConsistency(env *etcmat.Env, c Consistency) (*etcmat.Env, error) {
	switch c {
	case Inconsistent:
		return env, nil
	case Consistent, SemiConsistent:
	default:
		return nil, fmt.Errorf("gen: unknown consistency class %d", int(c))
	}
	etc := env.ETC()
	t, m := etc.Dims()
	out := matrix.New(t, m)
	for i := 0; i < t; i++ {
		row := etc.Row(i)
		if c == Consistent {
			sort.Float64s(row)
			for j := 0; j < m; j++ {
				out.Set(i, j, row[j])
			}
			continue
		}
		// Semi-consistent: gather the even-indexed positions, sort those
		// values, write them back ascending over the even positions; odd
		// positions keep their drawn values.
		var evens []float64
		for j := 0; j < m; j += 2 {
			evens = append(evens, row[j])
		}
		sort.Float64s(evens)
		k := 0
		for j := 0; j < m; j++ {
			if j%2 == 0 {
				out.Set(i, j, evens[k])
				k++
			} else {
				out.Set(i, j, row[j])
			}
		}
	}
	res, err := etcmat.NewFromETC(out)
	if err != nil {
		return nil, err
	}
	if res, err = res.WithTaskNames(env.TaskNames()); err != nil {
		return nil, err
	}
	if res, err = res.WithMachineNames(env.MachineNames()); err != nil {
		return nil, err
	}
	return res.WithWeights(env.TaskWeights(), env.MachineWeights())
}

// IsConsistent reports whether every task type ranks the machines
// identically (ties allowed): for all rows, ETC is non-decreasing in the
// machine order that sorts row 0.
func IsConsistent(env *etcmat.Env) bool {
	etc := env.ETC()
	t, m := etc.Dims()
	if t == 0 || m < 2 {
		return true
	}
	order := matrix.AscendingPerm(etc.Row(0))
	for i := 0; i < t; i++ {
		row := etc.Row(i)
		for k := 0; k+1 < m; k++ {
			if row[order[k]] > row[order[k+1]] {
				return false
			}
		}
	}
	return true
}
