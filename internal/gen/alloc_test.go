package gen

import (
	"math/rand"
	"testing"
)

// TestTargetedAllocBudget pins the workspace rework's allocation budget: a
// warm Targeted call allocates only for its returned Env and Profile (the
// bisection probes themselves run on pooled scratch). The seed-path baseline
// before the spectral/workspace rework was 928 allocs/op.
func TestTargetedAllocBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	target := Target{Tasks: 10, Machines: 5, MPH: 0.6, TDH: 0.7, TMA: 0.3}
	if _, err := Targeted(target, rng); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := Targeted(target, rng); err != nil {
			t.Fatal(err)
		}
	})
	if allocs >= 100 {
		t.Errorf("warm Targeted allocates %g times per op, want < 100", allocs)
	}
}
