package gen

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/etcmat"
)

func TestWithConsistencyConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(120))
	env, err := RangeBased(10, 6, 50, 20, rng)
	if err != nil {
		t.Fatal(err)
	}
	if IsConsistent(env) {
		t.Skip("random draw happened to be consistent (vanishingly unlikely)")
	}
	cons, err := WithConsistency(env, Consistent)
	if err != nil {
		t.Fatal(err)
	}
	if !IsConsistent(cons) {
		t.Error("Consistent output fails IsConsistent")
	}
	// Each row must be the sorted multiset of the original row.
	orig, conv := env.ETC(), cons.ETC()
	for i := 0; i < 10; i++ {
		a, b := orig.Row(i), conv.Row(i)
		sort.Float64s(a)
		for j := range a {
			if math.Abs(a[j]-b[j]) > 1e-12 {
				t.Fatalf("row %d not a sorted permutation: %v vs %v", i, a, b)
			}
		}
	}
}

func TestWithConsistencySemi(t *testing.T) {
	rng := rand.New(rand.NewSource(121))
	env, err := RangeBased(8, 6, 50, 20, rng)
	if err != nil {
		t.Fatal(err)
	}
	semi, err := WithConsistency(env, SemiConsistent)
	if err != nil {
		t.Fatal(err)
	}
	orig, conv := env.ETC(), semi.ETC()
	for i := 0; i < 8; i++ {
		// Even columns ascending.
		prev := math.Inf(-1)
		for j := 0; j < 6; j += 2 {
			if conv.At(i, j) < prev {
				t.Fatalf("row %d even columns not ascending", i)
			}
			prev = conv.At(i, j)
		}
		// Odd columns untouched.
		for j := 1; j < 6; j += 2 {
			if conv.At(i, j) != orig.At(i, j) {
				t.Fatalf("row %d odd column %d changed", i, j)
			}
		}
	}
}

func TestWithConsistencyInconsistentNoop(t *testing.T) {
	env := etcmat.MustFromETC([][]float64{{3, 1}, {1, 3}})
	same, err := WithConsistency(env, Inconsistent)
	if err != nil {
		t.Fatal(err)
	}
	if same != env {
		t.Error("Inconsistent should return the environment unchanged")
	}
	if _, err := WithConsistency(env, Consistency(99)); err == nil {
		t.Error("unknown class accepted")
	}
}

func TestIsConsistent(t *testing.T) {
	if !IsConsistent(etcmat.MustFromETC([][]float64{{1, 2, 3}, {4, 8, 9}})) {
		t.Error("consistent matrix misclassified")
	}
	if IsConsistent(etcmat.MustFromETC([][]float64{{1, 2}, {5, 3}})) {
		t.Error("inconsistent matrix misclassified")
	}
	if !IsConsistent(etcmat.MustFromETC([][]float64{{1, 2}})) {
		t.Error("single row is trivially consistent")
	}
}

func TestConsistencyStrings(t *testing.T) {
	if Consistent.String() != "consistent" || SemiConsistent.String() != "semi-consistent" ||
		Inconsistent.String() != "inconsistent" {
		t.Error("Consistency String() wrong")
	}
	if Consistency(42).String() == "" {
		t.Error("unknown class String() empty")
	}
}

// The taxonomy maps onto TMA as the paper's measure predicts: consistent <=
// semi-consistent <= inconsistent in affinity.
func TestConsistencyOrdersTMA(t *testing.T) {
	rng := rand.New(rand.NewSource(122))
	var tmas [3]float64
	base, err := RangeBased(16, 8, 100, 20, rng)
	if err != nil {
		t.Fatal(err)
	}
	for k, c := range []Consistency{Consistent, SemiConsistent, Inconsistent} {
		env, err := WithConsistency(base, c)
		if err != nil {
			t.Fatal(err)
		}
		r, err := core.TMA(env)
		if err != nil {
			t.Fatal(err)
		}
		tmas[k] = r.TMA
	}
	if !(tmas[0] <= tmas[1]+1e-9 && tmas[1] <= tmas[2]+1e-9) {
		t.Errorf("TMA ordering violated: consistent %.4f, semi %.4f, inconsistent %.4f",
			tmas[0], tmas[1], tmas[2])
	}
	if tmas[0] > tmas[2]*0.9 {
		t.Errorf("consistent (%.4f) should have clearly less affinity than inconsistent (%.4f)",
			tmas[0], tmas[2])
	}
}
