package gen

import (
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/etcmat"
	"repro/internal/matrix"
	"repro/internal/stats"
)

func TestRangeBasedShapeAndBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	env, err := RangeBased(20, 8, 100, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	if env.Tasks() != 20 || env.Machines() != 8 {
		t.Fatalf("dims = %dx%d", env.Tasks(), env.Machines())
	}
	etc := env.ETC()
	for i := 0; i < 20; i++ {
		for j := 0; j < 8; j++ {
			v := etc.At(i, j)
			if v < 1 || v > 1000 {
				t.Fatalf("ETC(%d,%d) = %g outside [1, R_task*R_mach]", i, j, v)
			}
		}
	}
}

func TestRangeBasedHeterogeneityGrowsWithRange(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	low, err := RangeBased(30, 10, 2, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	high, err := RangeBased(30, 10, 1000, 1000, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Wider ranges -> lower homogeneity of machine performances.
	if core.MPH(high) >= core.MPH(low) {
		t.Errorf("MPH(high-range) = %g >= MPH(low-range) = %g", core.MPH(high), core.MPH(low))
	}
}

func TestRangeBasedValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	if _, err := RangeBased(0, 3, 10, 10, rng); err == nil {
		t.Error("zero tasks accepted")
	}
	if _, err := RangeBased(3, 3, 0.5, 10, rng); err == nil {
		t.Error("range < 1 accepted")
	}
}

func TestCVBMomentsTrackParameters(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	const (
		vTask, vMach = 0.6, 0.3
		muTask       = 50.0
	)
	env, err := CVB(400, 40, vTask, vMach, muTask, rng)
	if err != nil {
		t.Fatal(err)
	}
	etc := env.ETC()
	// Row-wise COV estimates the machine COV.
	covs := make([]float64, 0, 400)
	means := make([]float64, 0, 400)
	for i := 0; i < 400; i++ {
		row := etc.Row(i)
		covs = append(covs, stats.COV(row))
		means = append(means, stats.Mean(row))
	}
	if got := stats.Mean(covs); math.Abs(got-vMach) > 0.05 {
		t.Errorf("mean row COV = %g, want about %g", got, vMach)
	}
	// Task baselines: mean of row means tracks muTask, their COV tracks vTask.
	if got := stats.Mean(means); math.Abs(got-muTask)/muTask > 0.15 {
		t.Errorf("mean task time = %g, want about %g", got, muTask)
	}
	if got := stats.COV(means); math.Abs(got-vTask) > 0.15 {
		t.Errorf("COV of task means = %g, want about %g", got, vTask)
	}
}

func TestCVBValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	if _, err := CVB(3, 3, 0, 0.5, 10, rng); err == nil {
		t.Error("zero vTask accepted")
	}
	if _, err := CVB(3, 0, 0.5, 0.5, 10, rng); err == nil {
		t.Error("zero machines accepted")
	}
}

func TestGeneratorsDeterministicBySeed(t *testing.T) {
	a, err := RangeBased(5, 5, 10, 10, rand.New(rand.NewSource(99)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RangeBased(5, 5, 10, 10, rand.New(rand.NewSource(99)))
	if err != nil {
		t.Fatal(err)
	}
	if a.ECS().String() != b.ECS().String() {
		t.Error("same seed produced different environments")
	}
}

func TestTargetedHitsProfile(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	cases := []Target{
		{Tasks: 10, Machines: 6, MPH: 0.8, TDH: 0.9, TMA: 0.1},
		{Tasks: 8, Machines: 8, MPH: 0.5, TDH: 0.3, TMA: 0.4},
		{Tasks: 12, Machines: 5, MPH: 0.95, TDH: 0.6, TMA: 0.0},
		{Tasks: 6, Machines: 6, MPH: 0.3, TDH: 0.95, TMA: 0.7},
	}
	for _, target := range cases {
		g, err := Targeted(target, rng)
		if err != nil {
			t.Fatalf("%+v: %v", target, err)
		}
		p := g.Achieved
		if math.Abs(p.MPH-target.MPH) > 1e-6 {
			t.Errorf("%+v: achieved MPH %.6f", target, p.MPH)
		}
		if math.Abs(p.TDH-target.TDH) > 1e-6 {
			t.Errorf("%+v: achieved TDH %.6f", target, p.TDH)
		}
		if math.Abs(p.TMA-target.TMA) > 5e-3 {
			t.Errorf("%+v: achieved TMA %.4f", target, p.TMA)
		}
	}
}

// The decoupling claim: changing the TMA target must not disturb MPH/TDH.
func TestTargetedIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(56))
	for _, tma := range []float64{0, 0.25, 0.5} {
		g, err := Targeted(Target{Tasks: 9, Machines: 9, MPH: 0.7, TDH: 0.4, TMA: tma}, rng)
		if err != nil {
			t.Fatalf("TMA=%g: %v", tma, err)
		}
		if math.Abs(g.Achieved.MPH-0.7) > 1e-6 || math.Abs(g.Achieved.TDH-0.4) > 1e-6 {
			t.Errorf("TMA=%g perturbed MPH/TDH: %v", tma, g.Achieved)
		}
	}
}

func TestTargetedUnreachable(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	// A 3x2 shape caps the wrap core's TMA near 1/sqrt(2) ~ 0.707, so 0.9 is
	// unreachable.
	_, err := Targeted(Target{Tasks: 3, Machines: 2, MPH: 0.8, TDH: 0.8, TMA: 0.9}, rng)
	if !errors.Is(err, ErrUnreachable) {
		t.Errorf("err = %v, want ErrUnreachable", err)
	}
}

func TestTargetedValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(58))
	bad := []Target{
		{Tasks: 1, Machines: 5, MPH: 0.5, TDH: 0.5},
		{Tasks: 5, Machines: 5, MPH: 0, TDH: 0.5},
		{Tasks: 5, Machines: 5, MPH: 0.5, TDH: 1.5},
		{Tasks: 5, Machines: 5, MPH: 0.5, TDH: 0.5, TMA: 1},
	}
	for _, target := range bad {
		if _, err := Targeted(target, rng); err == nil {
			t.Errorf("%+v accepted", target)
		}
	}
}

func TestGeometricProfileRatio(t *testing.T) {
	p := geometricProfile(5, 0.5)
	for k := 0; k+1 < len(p); k++ {
		if math.Abs(p[k]/p[k+1]-0.5) > 1e-12 {
			t.Fatalf("profile %v has non-constant ratio", p)
		}
	}
	env := etcmat.MustFromECS([][]float64{p})
	if got := core.MPH(env); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("MPH of geometric profile = %g, want 0.5", got)
	}
}

func TestBalanceToTargets(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	w := affinityCore(4, 3, 0.3, rng)
	rows := []float64{1, 2, 3, 4}
	cols := []float64{5, 2, 3}
	if err := balanceToTargets(w, rows, cols, nil, nil); err != nil {
		t.Fatal(err)
	}
	for i, s := range w.RowSums() {
		if math.Abs(s-rows[i]) > 1e-8 {
			t.Errorf("row %d sum = %g, want %g", i, s, rows[i])
		}
	}
	for j, s := range w.ColSums() {
		if math.Abs(s-cols[j]) > 1e-8 {
			t.Errorf("col %d sum = %g, want %g", j, s, cols[j])
		}
	}
}

func TestBalanceToTargetsInconsistent(t *testing.T) {
	a := affinityCore(2, 2, 0, nil)
	if err := balanceToTargets(a, []float64{1, 1}, []float64{5, 5}, nil, nil); err == nil {
		t.Error("inconsistent totals accepted")
	}
	if err := balanceToTargets(a, []float64{1}, []float64{1, 1}, nil, nil); err == nil {
		t.Error("wrong-length targets accepted")
	}
}

// TestTargetedPooledDeterminism pins that the pooled scratch behind Targeted
// never leaks state between concurrent calls: a seeded sweep must produce
// value-identical environments whether run sequentially or with many
// goroutines hammering the scratch pool at once.
func TestTargetedPooledDeterminism(t *testing.T) {
	targets := make([]Target, 24)
	for i := range targets {
		targets[i] = Target{
			Tasks:    4 + i%7,
			Machines: 3 + i%5,
			MPH:      0.3 + 0.1*float64(i%5),
			TDH:      0.5,
			TMA:      0.05 * float64(i%8),
		}
	}
	run := func(i int) *Generated {
		g, err := Targeted(targets[i], rand.New(rand.NewSource(int64(100+i))))
		if err != nil {
			t.Errorf("target %d: %v", i, err)
			return nil
		}
		return g
	}
	sequential := make([]*Generated, len(targets))
	for i := range targets {
		sequential[i] = run(i)
	}
	concurrent := make([]*Generated, len(targets))
	var wg sync.WaitGroup
	for i := range targets {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			concurrent[i] = run(i)
		}(i)
	}
	wg.Wait()
	for i := range targets {
		if sequential[i] == nil || concurrent[i] == nil {
			continue
		}
		sECS, cECS := sequential[i].Env.ECS(), concurrent[i].Env.ECS()
		if !matrix.EqualTol(sECS, cECS, 0) {
			t.Errorf("target %d: concurrent ECS differs from sequential", i)
		}
		if sequential[i].Mix != concurrent[i].Mix {
			t.Errorf("target %d: mix %g vs %g", i, sequential[i].Mix, concurrent[i].Mix)
		}
	}
}
