package gen

import (
	"errors"
	"math/rand"

	"repro/internal/core"
)

// Spec selects one of the package's generators together with its parameters —
// the sum type behind the facade's single Generate entry point. Construct one
// with RangeSpec, CVBSpec or TargetedSpec; the zero Spec is invalid and
// Generate rejects it, so a Spec that compiles came through a constructor and
// carries a known kind.
type Spec struct {
	kind            string
	tasks, machines int
	// Range-based parameters.
	rTask, rMach float64
	// CVB parameters.
	vTask, vMach, muTask float64
	// Targeted parameters.
	target Target
}

// Spec kinds, as reported by Kind and used on the wire by the serving tier.
const (
	KindRange    = "range"
	KindCVB      = "cvb"
	KindTargeted = "targeted"
)

// ErrInvalidSpec is returned by Generate for a zero Spec (one that did not
// come from a constructor).
var ErrInvalidSpec = errors.New("gen: zero Spec; construct one with RangeSpec, CVBSpec or TargetedSpec")

// RangeSpec requests a range-based environment (see RangeBased):
// ETC(i, j) = U[1, rTask] · U[1, rMach].
func RangeSpec(tasks, machines int, rTask, rMach float64) Spec {
	return Spec{kind: KindRange, tasks: tasks, machines: machines, rTask: rTask, rMach: rMach}
}

// CVBSpec requests a coefficient-of-variation-based environment (see CVB)
// with task COV vTask, machine COV vMach and mean task execution time muTask.
func CVBSpec(tasks, machines int, vTask, vMach, muTask float64) Spec {
	return Spec{kind: KindCVB, tasks: tasks, machines: machines, vTask: vTask, vMach: vMach, muTask: muTask}
}

// TargetedSpec requests an environment hitting the measure targets in t
// (see Targeted).
func TargetedSpec(t Target) Spec {
	return Spec{kind: KindTargeted, tasks: t.Tasks, machines: t.Machines, target: t}
}

// Kind reports which generator the spec selects: KindRange, KindCVB or
// KindTargeted ("" for the invalid zero Spec).
func (s Spec) Kind() string { return s.kind }

// Dims reports the requested environment shape.
func (s Spec) Dims() (tasks, machines int) { return s.tasks, s.machines }

// Generate produces an environment from the spec. Every kind returns the
// same Generated shape: the environment plus its achieved heterogeneity
// profile, so sweeps can record what a parameter choice actually produced
// regardless of generator. Mix is meaningful only for targeted specs (it
// stays 0 otherwise).
func Generate(s Spec, rng *rand.Rand) (*Generated, error) {
	switch s.kind {
	case KindRange:
		env, err := RangeBased(s.tasks, s.machines, s.rTask, s.rMach, rng)
		if err != nil {
			return nil, err
		}
		return &Generated{Env: env, Achieved: core.Characterize(env)}, nil
	case KindCVB:
		env, err := CVB(s.tasks, s.machines, s.vTask, s.vMach, s.muTask, rng)
		if err != nil {
			return nil, err
		}
		return &Generated{Env: env, Achieved: core.Characterize(env)}, nil
	case KindTargeted:
		return Targeted(s.target, rng)
	default:
		return nil, ErrInvalidSpec
	}
}
