// Package gen generates synthetic ETC/ECS environments for simulation
// studies — the application the reproduced paper motivates in its
// introduction ("generating ETC matrices for simulation studies that span
// the entire range of heterogeneities", the paper's ref [2]).
//
// Three generators are provided:
//
//   - RangeBased — the widely used range-based method of Ali et al. (the
//     paper's refs [4]/[6]): ETC(i,j) = U[1, R_task] · U[1, R_mach].
//   - CVB — the coefficient-of-variation-based method of Ali et al.:
//     gamma-distributed task weights and machine speeds parameterized by the
//     task and machine COVs.
//   - Targeted — new in this repository, built directly on the paper's
//     measures: produce an environment whose MPH and TDH hit requested
//     values exactly and whose TMA hits a requested value by bisection on an
//     affinity mixing parameter.
package gen

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"repro/internal/core"
	"repro/internal/etcmat"
	"repro/internal/linalg"
	"repro/internal/matrix"
	"repro/internal/sinkhorn"
	"repro/internal/stats"
)

// RangeBased generates a T×M ETC environment with the range-based method:
// for each task type a baseline τ(i) ~ U[1, rTask], and
// ETC(i, j) = τ(i) · U[1, rMach]. Larger ranges mean more heterogeneity.
func RangeBased(t, m int, rTask, rMach float64, rng *rand.Rand) (*etcmat.Env, error) {
	if t < 1 || m < 1 {
		return nil, fmt.Errorf("gen: RangeBased needs positive dimensions, got %dx%d", t, m)
	}
	if rTask < 1 || rMach < 1 {
		return nil, fmt.Errorf("gen: ranges must be >= 1, got rTask=%g rMach=%g", rTask, rMach)
	}
	etc := matrix.New(t, m)
	for i := 0; i < t; i++ {
		tau := 1 + rng.Float64()*(rTask-1)
		for j := 0; j < m; j++ {
			etc.Set(i, j, tau*(1+rng.Float64()*(rMach-1)))
		}
	}
	return etcmat.NewFromETC(etc)
}

// CVB generates a T×M ETC environment with the coefficient-of-variation
// method: task baselines q(i) ~ Gamma(α_task, μ_task/α_task) with
// α_task = 1/vTask², and ETC(i, j) ~ Gamma(α_mach, q(i)/α_mach) with
// α_mach = 1/vMach². vTask and vMach are the desired task and machine COVs.
func CVB(t, m int, vTask, vMach, muTask float64, rng *rand.Rand) (*etcmat.Env, error) {
	if t < 1 || m < 1 {
		return nil, fmt.Errorf("gen: CVB needs positive dimensions, got %dx%d", t, m)
	}
	if vTask <= 0 || vMach <= 0 || muTask <= 0 {
		return nil, fmt.Errorf("gen: CVB parameters must be positive, got vTask=%g vMach=%g muTask=%g", vTask, vMach, muTask)
	}
	alphaTask := 1 / (vTask * vTask)
	alphaMach := 1 / (vMach * vMach)
	etc := matrix.New(t, m)
	for i := 0; i < t; i++ {
		q := stats.Gamma(rng, alphaTask, muTask/alphaTask)
		for j := 0; j < m; j++ {
			etc.Set(i, j, stats.Gamma(rng, alphaMach, q/alphaMach))
		}
	}
	return etcmat.NewFromETC(etc)
}

// Target is a requested heterogeneity profile for Targeted.
type Target struct {
	Tasks, Machines int
	// MPH and TDH in (0, 1]; hit exactly (to balancing tolerance) by
	// construction.
	MPH, TDH float64
	// TMA in [0, 1); approached by bisection. The achievable maximum depends
	// on the shape — the result reports what was reached.
	TMA float64
	// Tol is the acceptable |achieved-requested| TMA gap (default 1e-3).
	Tol float64
}

// Generated is the output of Targeted.
type Generated struct {
	Env      *etcmat.Env
	Achieved *core.Profile
	// Mix is the affinity mixing parameter the bisection settled on.
	Mix float64
}

// ErrUnreachable is returned when the requested TMA exceeds what the
// affinity structure can reach for the given shape.
var ErrUnreachable = errors.New("gen: requested TMA not reachable for this shape")

// targetedScratch is the reusable per-call state of Targeted: the affinity
// core matrix, the standardization and spectral workspaces the bisection
// loop evaluates TMA with, and the sum buffers of the final rebalance. The
// bisection runs entirely on raw matrices — no Env, no memo, no factor SVD —
// so a warm Targeted call allocates only for its returned Env and Profile.
type targetedScratch struct {
	core   *matrix.Dense
	sink   *sinkhorn.Workspace
	spec   *linalg.Workspace
	sv     []float64
	cs, rs []float64

	// warm carries the scaling vectors (and σ₂) of the previous probe's
	// standardization: successive bisection probes differ only in the mixing
	// parameter, so each one warm-starts from the last (see
	// sinkhorn.WarmStart). warmOK gates the seed to converged results from
	// the current Targeted call — it is reset when a scratch is checked out,
	// so pooled state never seeds across unrelated calls.
	warm   sinkhorn.WarmStart
	warmOK bool
}

var scratchPool = sync.Pool{New: func() any {
	return &targetedScratch{
		core: matrix.New(0, 0),
		sink: sinkhorn.NewWorkspace(),
		spec: linalg.NewWorkspace(),
	}
}}

// tma evaluates the task-machine affinity of the strictly positive core
// matrix held in sc.core (paper Eq. 8): standardize, take the singular
// values through the Gram fast path, and average the non-maximum ones.
func (sc *targetedScratch) tma() (float64, error) {
	t, m := sc.core.Dims()
	var warm *sinkhorn.WarmStart
	if sc.warmOK && sc.warm.Matches(t, m) {
		warm = &sc.warm
	}
	res, err := sinkhorn.StandardizeWarmWS(sc.core, warm, sc.sink)
	if err != nil {
		sc.warmOK = false
		return 0, err
	}
	// Bank this probe's scalings (cloned out of the workspace-backed Result)
	// to seed the next one.
	sc.warm.D1 = append(sc.warm.D1[:0], res.D1...)
	sc.warm.D2 = append(sc.warm.D2[:0], res.D2...)
	sc.warmOK = res.Converged
	sc.sv = linalg.AppendSingularValues(sc.sv[:0], res.Scaled, sc.spec)
	if len(sc.sv) > 1 {
		sc.warm.Sigma2 = sc.sv[1]
	}
	sum := 0.0
	for _, s := range sc.sv[1:] {
		sum += s
	}
	v := sum / float64(len(sc.sv)-1)
	if v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	return v, nil
}

// Targeted generates an environment hitting the requested (MPH, TDH, TMA)
// profile. Machine performances follow a geometric profile with adjacent
// ratio = MPH (making Eq. 3 exact) and task difficulties one with adjacent
// ratio = TDH; the affinity core interpolates between a rank-1 matrix
// (TMA 0) and a wrap-around assignment pattern (maximal TMA), with the mixing
// parameter found by bisection. Row/column rebalancing to the performance
// and difficulty profiles cannot move TMA (it is invariant to diagonal
// scalings), so the three targets decouple — the independence property the
// paper designs its measures around.
func Targeted(target Target, rng *rand.Rand) (*Generated, error) {
	t, m := target.Tasks, target.Machines
	if t < 2 || m < 2 {
		return nil, fmt.Errorf("gen: Targeted needs at least 2 tasks and 2 machines, got %dx%d", t, m)
	}
	if target.MPH <= 0 || target.MPH > 1 || target.TDH <= 0 || target.TDH > 1 {
		return nil, fmt.Errorf("gen: MPH and TDH targets must lie in (0,1], got %g and %g", target.MPH, target.TDH)
	}
	if target.TMA < 0 || target.TMA >= 1 {
		return nil, fmt.Errorf("gen: TMA target must lie in [0,1), got %g", target.TMA)
	}
	tol := target.Tol
	if tol <= 0 {
		tol = 1e-3
	}

	// The bisection evaluates TMA on pooled scratch: each probe regenerates
	// the affinity core in place, rebalances it on the Sinkhorn workspace and
	// reads the spectrum through the Gram fast path — zero allocations per
	// probe once the workspaces are warm.
	sc := scratchPool.Get().(*targetedScratch)
	sc.warmOK = false // seed probes only from earlier probes of this call
	defer scratchPool.Put(sc)
	tmaOf := func(a float64) (float64, error) {
		affinityCoreInto(sc.core.Reset(t, m), a, rng)
		return sc.tma()
	}

	// Bisection on the mixing parameter. TMA(0) = 0 (rank-1 core) and
	// TMA(a) grows monotonically toward the shape's maximum.
	lo, hi := 0.0, 1.0
	tmaHi, err := tmaOf(hi)
	if err != nil {
		return nil, err
	}
	if target.TMA > tmaHi+tol {
		return nil, fmt.Errorf("%w: requested %.4f, shape %dx%d reaches at most %.4f",
			ErrUnreachable, target.TMA, t, m, tmaHi)
	}
	var mix float64
	switch {
	case target.TMA <= tol:
		mix = 0
	case math.Abs(target.TMA-tmaHi) <= tol:
		mix = 1
	default:
		for iter := 0; iter < 60; iter++ {
			mid := (lo + hi) / 2
			v, err := tmaOf(mid)
			if err != nil {
				return nil, err
			}
			if math.Abs(v-target.TMA) <= tol/2 {
				lo, hi = mid, mid
				break
			}
			if v < target.TMA {
				lo = mid
			} else {
				hi = mid
			}
		}
		mix = (lo + hi) / 2
	}
	// Regenerate the settled core (consuming the same rng draws the old
	// Env-based evaluation did, so seeded sweeps reproduce) and rebalance it
	// in place so machine performances follow a geometric profile with
	// adjacent ratio target.MPH and task difficulties one with ratio
	// target.TDH; then Eq. 3 and Eq. 7 evaluate to the targets exactly.
	coreMat := affinityCoreInto(sc.core.Reset(t, m), mix, rng)
	mp := geometricProfile(m, target.MPH)
	td := geometricProfile(t, target.TDH)
	// The two profiles must carry the same total mass.
	matrix.VecScale(td, matrix.VecSum(mp)/matrix.VecSum(td))
	sc.cs = growVec(sc.cs, m)
	sc.rs = growVec(sc.rs, t)
	if err := balanceToTargets(coreMat, td, mp, sc.cs, sc.rs); err != nil {
		return nil, err
	}
	env, err := etcmat.NewFromECS(coreMat)
	if err != nil {
		return nil, err
	}
	return &Generated{Env: env, Achieved: core.Characterize(env), Mix: mix}, nil
}

func growVec(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// affinityCore builds the TMA-controlling core: a convex mix of a rank-1
// matrix (no affinity) and a wrap-around assignment pattern in which task i
// prefers machine i mod m (maximal affinity), plus a whiff of noise so
// repeated generation is not identical.
func affinityCore(t, m int, a float64, rng *rand.Rand) *matrix.Dense {
	return affinityCoreInto(matrix.New(t, m), a, rng)
}

// affinityCoreInto writes the affinity core into dst (which fixes the shape)
// and returns it; the allocation-free form the Targeted bisection probes use.
func affinityCoreInto(dst *matrix.Dense, a float64, rng *rand.Rand) *matrix.Dense {
	t, m := dst.Dims()
	const jitter = 1e-3
	for i := 0; i < t; i++ {
		for j := 0; j < m; j++ {
			v := (1 - a) * 1
			if j == i%m {
				v += a * float64(m)
			}
			if rng != nil {
				v += jitter * rng.Float64() * (1 - a)
			}
			// Keep entries strictly positive so the standardization is exact.
			dst.Set(i, j, v+1e-9)
		}
	}
	return dst
}

// geometricProfile returns n ascending values with constant adjacent ratio r:
// v[k] = r^(n-1-k). With this profile the paper's homogeneity aggregate
// (mean adjacent ratio after ascending sort) equals r exactly.
func geometricProfile(n int, r float64) []float64 {
	v := make([]float64, n)
	for k := 0; k < n; k++ {
		v[k] = math.Pow(r, float64(n-1-k))
	}
	return v
}

// balanceToTargets alternately scales rows and columns of the positive
// matrix w — in place — until row i sums to rowTargets[i] and column j to
// colTargets[j], the generalized (non-uniform) Sinkhorn problem. The target
// vectors must have equal totals. cs and rs are the fused-pass sum buffers
// (lengths cols and rows); nil buffers are allocated.
func balanceToTargets(w *matrix.Dense, rowTargets, colTargets, cs, rs []float64) error {
	t, m := w.Dims()
	if len(rowTargets) != t || len(colTargets) != m {
		return fmt.Errorf("gen: target lengths (%d,%d) do not match matrix %dx%d",
			len(rowTargets), len(colTargets), t, m)
	}
	if math.Abs(matrix.VecSum(rowTargets)-matrix.VecSum(colTargets)) > 1e-9*matrix.VecSum(rowTargets) {
		return errors.New("gen: row and column target totals differ")
	}
	const (
		tolerance = 1e-10
		maxIter   = 5000
	)
	if cs == nil {
		cs = make([]float64, m)
	}
	if rs == nil {
		rs = make([]float64, t)
	}
	// Same fused-kernel structure as sinkhorn.Balance: each half-step scales
	// and reduces in one pass, and the convergence check reads the column
	// sums the row half-step just produced (rows are exact by construction).
	w.ColSumsInto(cs)
	for iter := 0; iter < maxIter; iter++ {
		for j := range cs {
			cs[j] = colTargets[j] / cs[j]
		}
		w.ScaleColsRowSums(cs, rs)
		for i := range rs {
			rs[i] = rowTargets[i] / rs[i]
		}
		w.ScaleRowsColSums(rs, cs)
		dev := 0.0
		for j, s := range cs {
			if d := math.Abs(s - colTargets[j]); d > dev {
				dev = d
			}
		}
		if dev < tolerance {
			return nil
		}
	}
	return errors.New("gen: target balancing did not converge")
}
