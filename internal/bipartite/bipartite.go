// Package bipartite implements the combinatorial machinery behind Section VI
// of the reproduced paper: when can a nonnegative matrix be scaled to have
// equal row sums and equal column sums?
//
// The zero pattern of an ECS matrix is a bipartite graph between task types
// (rows) and machines (columns). Classic results (Sinkhorn & Knopp;
// Marshall & Olkin, the paper's ref [20]) tie scalability to this pattern:
//
//   - A square nonnegative matrix has *support* iff its bipartite graph has a
//     perfect matching (some positive diagonal exists).
//   - It has *total support* iff every nonzero entry lies on some positive
//     diagonal; entries outside total support are driven to zero by the
//     Sinkhorn iteration.
//   - It is *fully indecomposable* iff no row/column permutation exposes a
//     block-triangular form (Eq. 11 of the paper); full indecomposability is
//     the paper's sufficient condition for exact scalability.
//
// The package provides Hopcroft–Karp maximum matching, Tarjan strongly
// connected components, and pattern classification built on them.
package bipartite

import (
	"fmt"

	"repro/internal/matrix"
)

// Pattern is the zero/nonzero structure of an R×C nonnegative matrix:
// adj[i] lists the columns j with a nonzero entry in row i.
type Pattern struct {
	R, C int
	adj  [][]int
}

// PatternOf extracts the zero pattern of m; entries with absolute value at
// most tol count as zero.
func PatternOf(m *matrix.Dense, tol float64) *Pattern {
	r, c := m.Dims()
	p := &Pattern{R: r, C: c, adj: make([][]int, r)}
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			v := m.At(i, j)
			if v > tol || v < -tol {
				p.adj[i] = append(p.adj[i], j)
			}
		}
	}
	return p
}

// NewPattern builds a pattern from explicit row adjacency lists.
func NewPattern(r, c int, adj [][]int) *Pattern {
	if len(adj) != r {
		panic(fmt.Sprintf("bipartite: NewPattern expects %d rows, got %d", r, len(adj)))
	}
	p := &Pattern{R: r, C: c, adj: make([][]int, r)}
	for i, row := range adj {
		for _, j := range row {
			if j < 0 || j >= c {
				panic(fmt.Sprintf("bipartite: NewPattern column %d out of range [0,%d)", j, c))
			}
		}
		p.adj[i] = append([]int(nil), row...)
	}
	return p
}

// Neighbors returns the columns adjacent to row i. The returned slice must
// not be modified.
func (p *Pattern) Neighbors(i int) []int { return p.adj[i] }

// Has reports whether entry (i, j) is nonzero in the pattern.
func (p *Pattern) Has(i, j int) bool {
	for _, c := range p.adj[i] {
		if c == j {
			return true
		}
	}
	return false
}

// MaxMatching computes a maximum bipartite matching with the Hopcroft–Karp
// algorithm. It returns the matching size and, for each row, the matched
// column (or -1).
func (p *Pattern) MaxMatching() (size int, rowMatch []int) {
	const inf = int(^uint(0) >> 1)
	rowMatch = make([]int, p.R)
	colMatch := make([]int, p.C)
	for i := range rowMatch {
		rowMatch[i] = -1
	}
	for j := range colMatch {
		colMatch[j] = -1
	}
	dist := make([]int, p.R)
	queue := make([]int, 0, p.R)

	bfs := func() bool {
		queue = queue[:0]
		for i := 0; i < p.R; i++ {
			if rowMatch[i] == -1 {
				dist[i] = 0
				queue = append(queue, i)
			} else {
				dist[i] = inf
			}
		}
		found := false
		for qi := 0; qi < len(queue); qi++ {
			u := queue[qi]
			for _, v := range p.adj[u] {
				w := colMatch[v]
				if w == -1 {
					found = true
				} else if dist[w] == inf {
					dist[w] = dist[u] + 1
					queue = append(queue, w)
				}
			}
		}
		return found
	}
	var dfs func(u int) bool
	dfs = func(u int) bool {
		for _, v := range p.adj[u] {
			w := colMatch[v]
			if w == -1 || (dist[w] == dist[u]+1 && dfs(w)) {
				rowMatch[u] = v
				colMatch[v] = u
				return true
			}
		}
		dist[u] = inf
		return false
	}
	for bfs() {
		for i := 0; i < p.R; i++ {
			if rowMatch[i] == -1 && dfs(i) {
				size++
			}
		}
	}
	return size, rowMatch
}

// HasSupport reports whether a *square* pattern has a positive diagonal, i.e.
// a perfect matching between rows and columns. Panics on non-square input.
func (p *Pattern) HasSupport() bool {
	p.requireSquare("HasSupport")
	size, _ := p.MaxMatching()
	return size == p.R
}

// TotalSupport classifies every nonzero entry of a square pattern: entry
// (i, j) is *totally supported* if it lies on some positive diagonal. It
// returns whether the whole pattern has total support, plus the set of
// supported entries (a map keyed by i*C+j). Matrices without total support
// lose their unsupported entries in the Sinkhorn limit.
func (p *Pattern) TotalSupport() (all bool, supported map[int]bool) {
	p.requireSquare("TotalSupport")
	supported = make(map[int]bool)
	size, rowMatch := p.MaxMatching()
	if size != p.R {
		return false, supported // no support at all
	}
	// Build the directed graph on columns: for each nonzero (i, j), add edge
	// j -> rowMatch[i]. Entry (i, j) lies on a positive diagonal iff j and
	// rowMatch[i] are in the same strongly connected component (it is then
	// reachable by an alternating cycle through the matching).
	g := make([][]int, p.C)
	for i := 0; i < p.R; i++ {
		mi := rowMatch[i]
		for _, j := range p.adj[i] {
			if j != mi {
				g[j] = append(g[j], mi)
			}
		}
	}
	comp := SCC(g)
	all = true
	for i := 0; i < p.R; i++ {
		mi := rowMatch[i]
		for _, j := range p.adj[i] {
			if j == mi || comp[j] == comp[mi] {
				supported[i*p.C+j] = true
			} else {
				all = false
			}
		}
	}
	return all, supported
}

// FullyIndecomposable reports whether a square pattern is fully
// indecomposable (Section VI / Eq. 11 of the paper): no permutations P, Q
// put it in block-lower-triangular form with square diagonal blocks.
// Equivalently, the pattern has a perfect matching and the directed graph
// obtained by contracting the matching is a single strongly connected
// component.
func (p *Pattern) FullyIndecomposable() bool {
	p.requireSquare("FullyIndecomposable")
	if p.R == 0 {
		return true
	}
	if p.R == 1 {
		return len(p.adj[0]) == 1 // the single entry must be nonzero
	}
	size, rowMatch := p.MaxMatching()
	if size != p.R {
		return false
	}
	g := make([][]int, p.C)
	for i := 0; i < p.R; i++ {
		mi := rowMatch[i]
		for _, j := range p.adj[i] {
			if j != mi {
				g[j] = append(g[j], mi)
			}
		}
	}
	comp := SCC(g)
	for _, c := range comp {
		if c != comp[0] {
			return false
		}
	}
	return true
}

func (p *Pattern) requireSquare(op string) {
	if p.R != p.C {
		panic(fmt.Sprintf("bipartite: %s requires a square pattern, got %dx%d", op, p.R, p.C))
	}
}

// Connected reports whether the undirected bipartite graph of the pattern is
// connected (treating rows and columns as the two vertex classes). An empty
// pattern is considered connected.
func (p *Pattern) Connected() bool {
	n := p.R + p.C
	if n == 0 {
		return true
	}
	colAdj := make([][]int, p.C)
	for i := 0; i < p.R; i++ {
		for _, j := range p.adj[i] {
			colAdj[j] = append(colAdj[j], i)
		}
	}
	seen := make([]bool, n)
	stack := []int{0} // start at row 0
	seen[0] = true
	count := 0
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		count++
		if u < p.R {
			for _, j := range p.adj[u] {
				if !seen[p.R+j] {
					seen[p.R+j] = true
					stack = append(stack, p.R+j)
				}
			}
		} else {
			for _, i := range colAdj[u-p.R] {
				if !seen[i] {
					seen[i] = true
					stack = append(stack, i)
				}
			}
		}
	}
	return count == n
}

// SCC computes strongly connected components of a directed graph given as
// adjacency lists, using Tarjan's algorithm (iterative). It returns a
// component id per vertex; ids are in reverse topological order.
func SCC(g [][]int) []int {
	n := len(g)
	const unvisited = -1
	index := make([]int, n)
	low := make([]int, n)
	comp := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
		comp[i] = unvisited
	}
	var (
		stack    []int
		nextIdx  int
		nextComp int
	)
	type frame struct{ v, ei int }
	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		callStack := []frame{{root, 0}}
		index[root] = nextIdx
		low[root] = nextIdx
		nextIdx++
		stack = append(stack, root)
		onStack[root] = true
		for len(callStack) > 0 {
			f := &callStack[len(callStack)-1]
			v := f.v
			if f.ei < len(g[v]) {
				w := g[v][f.ei]
				f.ei++
				if index[w] == unvisited {
					index[w] = nextIdx
					low[w] = nextIdx
					nextIdx++
					stack = append(stack, w)
					onStack[w] = true
					callStack = append(callStack, frame{w, 0})
				} else if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
				continue
			}
			// All edges of v processed.
			callStack = callStack[:len(callStack)-1]
			if len(callStack) > 0 {
				parent := callStack[len(callStack)-1].v
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = nextComp
					if w == v {
						break
					}
				}
				nextComp++
			}
		}
	}
	return comp
}

// ScalableSquare reports whether a square nonnegative matrix can be scaled by
// positive diagonal matrices to prescribed equal row and column sums. The
// exact criterion (Sinkhorn & Knopp) is total support; full indecomposability
// additionally makes the scaling unique and the limit strictly positive on
// the pattern. The paper's Eq. 10 example fails this test.
func ScalableSquare(m *matrix.Dense, tol float64) bool {
	p := PatternOf(m, tol)
	if p.R != p.C {
		return false
	}
	all, _ := p.TotalSupport()
	return all
}
