package bipartite

import (
	"math/rand"
	"testing"

	"repro/internal/matrix"
)

func TestPatternOf(t *testing.T) {
	m := matrix.FromRows([][]float64{{1, 0}, {0.5, 2}})
	p := PatternOf(m, 0)
	if !p.Has(0, 0) || p.Has(0, 1) || !p.Has(1, 0) || !p.Has(1, 1) {
		t.Errorf("pattern mismatch: %+v", p)
	}
}

func TestPatternOfTolerance(t *testing.T) {
	m := matrix.FromRows([][]float64{{1e-12, 1}})
	p := PatternOf(m, 1e-9)
	if p.Has(0, 0) {
		t.Error("tiny entry should be treated as zero under tol")
	}
	if !p.Has(0, 1) {
		t.Error("large entry dropped")
	}
}

func TestNewPatternValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewPattern with out-of-range column did not panic")
		}
	}()
	NewPattern(1, 2, [][]int{{5}})
}

func TestMaxMatchingPerfect(t *testing.T) {
	// Identity pattern: perfect matching of size 3.
	p := NewPattern(3, 3, [][]int{{0}, {1}, {2}})
	size, rm := p.MaxMatching()
	if size != 3 {
		t.Fatalf("matching size = %d, want 3", size)
	}
	for i, j := range rm {
		if j != i {
			t.Errorf("rowMatch[%d] = %d, want %d", i, j, i)
		}
	}
}

func TestMaxMatchingDeficient(t *testing.T) {
	// Rows 0 and 1 both only connect to column 0.
	p := NewPattern(2, 2, [][]int{{0}, {0}})
	size, _ := p.MaxMatching()
	if size != 1 {
		t.Errorf("matching size = %d, want 1", size)
	}
}

func TestMaxMatchingAugmentingPath(t *testing.T) {
	// Needs augmentation: greedy row order can trap without Hopcroft-Karp.
	p := NewPattern(3, 3, [][]int{{0, 1}, {0}, {1, 2}})
	size, _ := p.MaxMatching()
	if size != 3 {
		t.Errorf("matching size = %d, want 3", size)
	}
}

func TestMaxMatchingRectangular(t *testing.T) {
	p := NewPattern(2, 4, [][]int{{0, 1, 2, 3}, {1}})
	size, rm := p.MaxMatching()
	if size != 2 {
		t.Errorf("matching size = %d, want 2", size)
	}
	if rm[1] != 1 {
		t.Errorf("row 1 must match col 1, got %d", rm[1])
	}
}

func TestHasSupport(t *testing.T) {
	full := PatternOf(matrix.Identity(3), 0)
	if !full.HasSupport() {
		t.Error("identity must have support")
	}
	none := NewPattern(2, 2, [][]int{{0}, {0}})
	if none.HasSupport() {
		t.Error("column-deficient pattern must not have support")
	}
}

// The paper's Eq. 10 matrix:
//
//	0 1 0
//	1 0 1
//	0 1 1   (entries shown as nonzero pattern)
//
// The paper proves it is decomposable and cannot be normalized. Our
// construction of the exact matrix: rows {0,1,0},{1,0,1},{0,1,1} — its second
// row and third column sums are 2 while the others are 1.
func eq10() *matrix.Dense {
	return matrix.FromRows([][]float64{
		{0, 1, 0},
		{1, 0, 1},
		{0, 1, 1},
	})
}

func TestEq10NotFullyIndecomposable(t *testing.T) {
	p := PatternOf(eq10(), 0)
	if p.FullyIndecomposable() {
		t.Error("Eq. 10 matrix misclassified as fully indecomposable")
	}
	if ScalableSquare(eq10(), 0) {
		t.Error("Eq. 10 matrix misclassified as scalable")
	}
}

func TestEq10HasSupportButNotTotal(t *testing.T) {
	p := PatternOf(eq10(), 0)
	if !p.HasSupport() {
		t.Error("Eq. 10 has a positive diagonal: (0,1),(1,0),(2,2)")
	}
	all, supported := p.TotalSupport()
	if all {
		t.Error("Eq. 10 must not have total support")
	}
	// The diagonal (0,1),(1,0),(2,2) is positive, so those entries are
	// supported.
	for _, e := range [][2]int{{0, 1}, {1, 0}, {2, 2}} {
		if !supported[e[0]*3+e[1]] {
			t.Errorf("entry (%d,%d) lies on a positive diagonal but reported unsupported", e[0], e[1])
		}
	}
}

func TestDiagonalMatrixDecomposableButScalable(t *testing.T) {
	// The paper notes a positive diagonal matrix is decomposable (it is in
	// the Eq. 11 block form already) yet trivially scalable. Our
	// FullyIndecomposable must say false for n >= 2, while total support says
	// scalable.
	d := matrix.Diag([]float64{2, 5})
	p := PatternOf(d, 0)
	if p.FullyIndecomposable() {
		t.Error("2x2 diagonal pattern is not fully indecomposable")
	}
	if !ScalableSquare(d, 0) {
		t.Error("positive diagonal matrix is scalable (total support)")
	}
}

func TestFullyIndecomposablePositive(t *testing.T) {
	m := matrix.Constant(3, 3, 1)
	if !PatternOf(m, 0).FullyIndecomposable() {
		t.Error("all-positive matrix must be fully indecomposable")
	}
}

func TestFullyIndecomposable1x1(t *testing.T) {
	if !PatternOf(matrix.Constant(1, 1, 3), 0).FullyIndecomposable() {
		t.Error("positive 1x1 is fully indecomposable")
	}
	if PatternOf(matrix.New(1, 1), 0).FullyIndecomposable() {
		t.Error("zero 1x1 is not fully indecomposable")
	}
}

func TestFullyIndecomposableCycle(t *testing.T) {
	// A single cycle cover: pattern of a circulant with two diagonals is
	// fully indecomposable.
	m := matrix.FromRows([][]float64{
		{1, 1, 0},
		{0, 1, 1},
		{1, 0, 1},
	})
	if !PatternOf(m, 0).FullyIndecomposable() {
		t.Error("two-diagonal circulant must be fully indecomposable")
	}
}

func TestTotalSupportAllPositive(t *testing.T) {
	all, supported := PatternOf(matrix.Constant(2, 2, 1), 0).TotalSupport()
	if !all || len(supported) != 4 {
		t.Errorf("all-positive 2x2: total support = %v with %d entries", all, len(supported))
	}
}

// Fig. 4 matrices A, B, D of the paper have one zero and converge to the
// standard form of C: the entry off the surviving diagonal is unsupported.
func TestFig4StylePatternLosesUnsupportedEntry(t *testing.T) {
	d := matrix.FromRows([][]float64{{10, 0}, {45, 55}})
	p := PatternOf(d, 0)
	all, supported := p.TotalSupport()
	if all {
		t.Fatal("pattern with a single zero cannot have total support")
	}
	if !supported[0*2+0] || !supported[1*2+1] {
		t.Error("diagonal entries must be supported")
	}
	if supported[1*2+0] {
		t.Error("entry (1,0) lies on no positive diagonal and must be unsupported")
	}
}

func TestConnected(t *testing.T) {
	if !PatternOf(matrix.Constant(2, 3, 1), 0).Connected() {
		t.Error("complete bipartite pattern must be connected")
	}
	// Block diagonal: two components.
	m := matrix.FromRows([][]float64{{1, 0}, {0, 1}})
	if PatternOf(m, 0).Connected() {
		t.Error("block-diagonal pattern must be disconnected")
	}
}

func TestSCCSimple(t *testing.T) {
	// 0 -> 1 -> 2 -> 0 is one SCC; 3 is alone.
	g := [][]int{{1}, {2}, {0}, {0}}
	comp := SCC(g)
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Errorf("cycle not one SCC: %v", comp)
	}
	if comp[3] == comp[0] {
		t.Errorf("vertex 3 merged into cycle: %v", comp)
	}
}

func TestSCCChain(t *testing.T) {
	g := [][]int{{1}, {2}, nil}
	comp := SCC(g)
	if comp[0] == comp[1] || comp[1] == comp[2] || comp[0] == comp[2] {
		t.Errorf("chain should be three SCCs: %v", comp)
	}
	// Reverse topological order: sinks get smaller ids.
	if !(comp[2] < comp[1] && comp[1] < comp[0]) {
		t.Errorf("SCC ids not in reverse topological order: %v", comp)
	}
}

func TestSCCEmptyAndSelfLoop(t *testing.T) {
	if got := SCC(nil); len(got) != 0 {
		t.Errorf("SCC(nil) = %v", got)
	}
	comp := SCC([][]int{{0}})
	if len(comp) != 1 || comp[0] != 0 {
		t.Errorf("self-loop SCC = %v", comp)
	}
}

// Randomized consistency: a random permutation pattern always has support and
// total support; adding a full row of ones keeps support.
func TestRandomPermutationPatterns(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(8)
		perm := rng.Perm(n)
		m := matrix.New(n, n)
		for i, j := range perm {
			m.Set(i, j, 1+rng.Float64())
		}
		p := PatternOf(m, 0)
		if !p.HasSupport() {
			t.Fatalf("permutation pattern lost support: %v", perm)
		}
		if all, _ := p.TotalSupport(); !all {
			t.Fatalf("permutation pattern must have total support: %v", perm)
		}
		if n >= 2 && p.FullyIndecomposable() {
			t.Fatalf("bare permutation pattern (n=%d) must be decomposable", n)
		}
	}
}

// Property: for random square patterns, FullyIndecomposable implies total
// support implies support.
func TestIndecomposabilityHierarchy(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(6)
		m := matrix.New(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if rng.Float64() < 0.5 {
					m.Set(i, j, 1)
				}
			}
		}
		p := PatternOf(m, 0)
		fi := p.FullyIndecomposable()
		all, _ := p.TotalSupport()
		sup := p.HasSupport()
		if fi && !all {
			t.Fatalf("trial %d: fully indecomposable without total support\n%v", trial, m)
		}
		if all && !sup {
			t.Fatalf("trial %d: total support without support\n%v", trial, m)
		}
	}
}
