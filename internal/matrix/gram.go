package matrix

// This file holds the Gram-matrix kernels behind the values-only spectral
// pipeline in internal/linalg: forming G = AᵀA (or AAᵀ) is the only O(m·n·k)
// step of that pipeline, so both kernels are blocked to keep the output tile
// resident in L1 while the input streams through row-major storage, and both
// exploit symmetry by computing only the upper triangle before mirroring.

// gramBlock is the tile edge used by the Gram kernels. A 32×32 float64 tile
// is 8 KiB — half a typical 16-32 KiB L1d — leaving room for the streaming
// input rows.
const gramBlock = 32

// Reset reconfigures m in place to an r×c all-zero matrix, reusing the
// backing slice when its capacity allows and allocating only on growth. It
// returns m. This is the resize primitive the linalg/sinkhorn workspaces use
// to recycle scratch matrices across calls of different shapes.
func (m *Dense) Reset(r, c int) *Dense {
	checkDims(r, c)
	n := r * c
	if cap(m.data) < n {
		m.data = make([]float64, n)
	} else {
		m.data = m.data[:n]
		for i := range m.data {
			m.data[i] = 0
		}
	}
	m.rows, m.cols = r, c
	return m
}

// AtAInto computes dst = aᵀ·a for an m×n input a; dst must be n×n. Row i of a
// contributes the rank-1 update row·rowᵀ, accumulated tile by tile over the
// upper triangle of dst so the active output block stays cache-resident.
func AtAInto(dst, a *Dense) *Dense {
	m, n := a.Dims()
	if dst.rows != n || dst.cols != n {
		panic("matrix: AtAInto needs a square destination matching a's columns")
	}
	dd := dst.data
	for i := range dd {
		dd[i] = 0
	}
	ad := a.data
	for j0 := 0; j0 < n; j0 += gramBlock {
		j1 := minDim(j0+gramBlock, n)
		for k0 := j0; k0 < n; k0 += gramBlock {
			k1 := minDim(k0+gramBlock, n)
			for i := 0; i < m; i++ {
				row := ad[i*n : (i+1)*n]
				for j := j0; j < j1; j++ {
					v := row[j]
					if v == 0 {
						continue
					}
					ks := k0
					if j > ks {
						ks = j
					}
					drow := dd[j*n:]
					for k := ks; k < k1; k++ {
						drow[k] += v * row[k]
					}
				}
			}
		}
	}
	mirrorUpper(dd, n)
	return dst
}

// AAtInto computes dst = a·aᵀ for an m×n input a; dst must be m×m. Entry
// (i, j) is the dot product of rows i and j; the row pairs are walked in
// tiles so each row block is reused across a whole tile of dot products.
func AAtInto(dst, a *Dense) *Dense {
	m, n := a.Dims()
	if dst.rows != m || dst.cols != m {
		panic("matrix: AAtInto needs a square destination matching a's rows")
	}
	dd := dst.data
	ad := a.data
	for i0 := 0; i0 < m; i0 += gramBlock {
		i1 := minDim(i0+gramBlock, m)
		for j0 := i0; j0 < m; j0 += gramBlock {
			j1 := minDim(j0+gramBlock, m)
			for i := i0; i < i1; i++ {
				ri := ad[i*n : (i+1)*n]
				js := j0
				if i > js {
					js = i
				}
				for j := js; j < j1; j++ {
					rj := ad[j*n : (j+1)*n]
					s := 0.0
					for k, v := range ri {
						s += v * rj[k]
					}
					dd[i*m+j] = s
				}
			}
		}
	}
	mirrorUpper(dd, m)
	return dst
}

// GramInto computes the min-dimension Gram matrix of a — aᵀ·a when a has at
// least as many rows as columns, a·aᵀ otherwise — into dst, which must be
// square with edge min(rows, cols). Both products share a's nonzero singular
// values squared, so values-only spectral consumers always take the smaller
// (and cheaper) eigenproblem.
func GramInto(dst, a *Dense) *Dense {
	if a.cols <= a.rows {
		return AtAInto(dst, a)
	}
	return AAtInto(dst, a)
}

// mirrorUpper copies the strict upper triangle of the n×n row-major matrix d
// onto its lower triangle.
func mirrorUpper(d []float64, n int) {
	for i := 1; i < n; i++ {
		for j := 0; j < i; j++ {
			d[i*n+j] = d[j*n+i]
		}
	}
}

func minDim(a, b int) int {
	if a < b {
		return a
	}
	return b
}
