package matrix

// This file holds the Gram-matrix kernels behind the values-only spectral
// pipeline in internal/linalg: forming G = AᵀA (or AAᵀ) is the only O(m·n·k)
// step of that pipeline, so both kernels are blocked to keep the output tile
// resident in L1 while the input streams through row-major storage, and both
// exploit symmetry by computing only the upper triangle before mirroring.
//
// The kernels are written as strip functions — one strip is a block-row of
// output tiles — so the serial entry points and the parallel ones in
// gram_parallel.go share the exact same per-tile code. Every output element
// belongs to exactly one strip and every strip accumulates in the same order
// regardless of who runs it, which is what makes the parallel path
// bit-identical to the serial one (see DESIGN.md §14).

// gramBlock is the tile edge used by the Gram kernels. A 32×32 float64 tile
// is 8 KiB — half a typical 16-32 KiB L1d — leaving room for the streaming
// input rows.
const gramBlock = 32

// Reset reconfigures m in place to an r×c all-zero matrix, reusing the
// backing slice when its capacity allows and allocating only on growth. It
// returns m. This is the resize primitive the linalg/sinkhorn workspaces use
// to recycle scratch matrices across calls of different shapes.
func (m *Dense) Reset(r, c int) *Dense {
	checkDims(r, c)
	n := r * c
	if cap(m.data) < n {
		m.data = make([]float64, n)
	} else {
		m.data = m.data[:n]
		for i := range m.data {
			m.data[i] = 0
		}
	}
	m.rows, m.cols = r, c
	return m
}

// AtAInto computes dst = aᵀ·a for an m×n input a; dst must be n×n. Row i of a
// contributes the rank-1 update row·rowᵀ, accumulated tile by tile over the
// upper triangle of dst so the active output block stays cache-resident.
func AtAInto(dst, a *Dense) *Dense {
	return ataBlocked(dst, a, gramBlock, 1)
}

// AAtInto computes dst = a·aᵀ for an m×n input a; dst must be m×m. Entry
// (i, j) is the dot product of rows i and j; the row pairs are walked in
// tiles so each row block is reused across a whole tile of dot products.
func AAtInto(dst, a *Dense) *Dense {
	return aatBlocked(dst, a, gramBlock, 1)
}

// GramInto computes the min-dimension Gram matrix of a — aᵀ·a when a has at
// least as many rows as columns, a·aᵀ otherwise — into dst, which must be
// square with edge min(rows, cols). Both products share a's nonzero singular
// values squared, so values-only spectral consumers always take the smaller
// (and cheaper) eigenproblem.
func GramInto(dst, a *Dense) *Dense {
	if a.cols <= a.rows {
		return AtAInto(dst, a)
	}
	return AAtInto(dst, a)
}

// ataBlocked is the shared implementation behind AtAInto and AtAIntoPar. The
// output is decomposed into block-row strips of edge block; workers > 1
// fans the strips out over the parallel pool, otherwise they run in order on
// the calling goroutine. Either way each strip is produced by ataStrip with
// identical arithmetic, so the result does not depend on workers.
func ataBlocked(dst, a *Dense, block, workers int) *Dense {
	m, n := a.Dims()
	if dst.rows != n || dst.cols != n {
		panic("matrix: AtAInto needs a square destination matching a's columns")
	}
	dd := dst.data
	for i := range dd {
		dd[i] = 0
	}
	ad := a.data
	strips := (n + block - 1) / block
	if workers > 1 && strips > 1 {
		runStrips(strips, workers, func(s int) {
			ataStrip(dd, ad, m, n, s*block, block)
		})
	} else {
		for s := 0; s < strips; s++ {
			ataStrip(dd, ad, m, n, s*block, block)
		}
	}
	mirrorUpper(dd, n, workers)
	return dst
}

// ataStrip accumulates the block-row strip of AᵀA whose output rows start at
// j0: every upper-triangle tile (j0:j0+block, k0:k1) for k0 ≥ j0. Writes are
// confined to dst rows [j0, j0+block), so distinct strips never touch the
// same output element.
func ataStrip(dd, ad []float64, m, n, j0, block int) {
	j1 := minDim(j0+block, n)
	for k0 := j0; k0 < n; k0 += block {
		k1 := minDim(k0+block, n)
		for i := 0; i < m; i++ {
			row := ad[i*n : (i+1)*n]
			for j := j0; j < j1; j++ {
				v := row[j]
				if v == 0 {
					continue
				}
				ks := k0
				if j > ks {
					ks = j
				}
				drow := dd[j*n:]
				for k := ks; k < k1; k++ {
					drow[k] += v * row[k]
				}
			}
		}
	}
}

// aatBlocked is the shared implementation behind AAtInto and AAtIntoPar,
// decomposed into block-row strips exactly like ataBlocked.
func aatBlocked(dst, a *Dense, block, workers int) *Dense {
	m, n := a.Dims()
	if dst.rows != m || dst.cols != m {
		panic("matrix: AAtInto needs a square destination matching a's rows")
	}
	dd := dst.data
	ad := a.data
	strips := (m + block - 1) / block
	if workers > 1 && strips > 1 {
		runStrips(strips, workers, func(s int) {
			aatStrip(dd, ad, m, n, s*block, block)
		})
	} else {
		for s := 0; s < strips; s++ {
			aatStrip(dd, ad, m, n, s*block, block)
		}
	}
	mirrorUpper(dd, m, workers)
	return dst
}

// aatStrip fills the block-row strip of AAᵀ whose output rows start at i0:
// each entry (i, j) with i in [i0, i0+block) and j ≥ i is the dot product of
// rows i and j of a. Like ataStrip, writes stay inside the strip's rows.
func aatStrip(dd, ad []float64, m, n, i0, block int) {
	i1 := minDim(i0+block, m)
	for j0 := i0; j0 < m; j0 += block {
		j1 := minDim(j0+block, m)
		for i := i0; i < i1; i++ {
			ri := ad[i*n : (i+1)*n]
			js := j0
			if i > js {
				js = i
			}
			for j := js; j < j1; j++ {
				rj := ad[j*n : (j+1)*n]
				s := 0.0
				for k, v := range ri {
					s += v * rj[k]
				}
				dd[i*m+j] = s
			}
		}
	}
}

// mirrorUpper copies the strict upper triangle of the n×n row-major matrix d
// onto its lower triangle. With workers > 1 the row range is split into
// strips over the pool; every element is copied exactly once either way.
func mirrorUpper(d []float64, n, workers int) {
	if workers > 1 && n >= 2*gramBlock {
		strips := (n + gramBlock - 1) / gramBlock
		runStrips(strips, workers, func(s int) {
			lo, hi := s*gramBlock, minDim((s+1)*gramBlock, n)
			for i := lo; i < hi; i++ {
				for j := 0; j < i; j++ {
					d[i*n+j] = d[j*n+i]
				}
			}
		})
		return
	}
	for i := 1; i < n; i++ {
		for j := 0; j < i; j++ {
			d[i*n+j] = d[j*n+i]
		}
	}
}

func minDim(a, b int) int {
	if a < b {
		return a
	}
	return b
}
