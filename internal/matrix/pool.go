package matrix

import (
	"fmt"
	"math/bits"
	"sync"
)

// Size-classed pooling of Dense backing storage. The serving tier decodes a
// fresh environment per cache-missing request and materializes several
// same-shaped matrices per characterization (the ECS clone, the weighted
// clone, the balanced standard form); at fleet scale each of those is tens
// to hundreds of megabytes, so recycling them across requests is the
// difference between a steady heap and a GC churning through gigabytes.
//
// Buffers are grouped into power-of-two size classes by cell count. Get
// rounds the request up to its class so any pooled buffer of that class can
// serve it; Put files a buffer under the largest class its capacity fully
// covers, so a recycled buffer always satisfies a later Get without
// reallocating. Matrices larger than the top class (1 Gi of float64 cells)
// bypass the pool — at that size the allocator is not the bottleneck.
//
// Recycling is explicit and therefore dangerous in the usual way: the caller
// must guarantee nothing aliases the matrix when it hands it back. The only
// recyclers in-tree are the serving tier's Env release path (see
// etcmat.ReleaseBuffers) and the benchmark harness.

const (
	poolMinBits = 10 // smallest class: 1024 cells (8 KiB) — below this, make is cheap
	poolMaxBits = 27 // largest class: 128 Mi cells (1 GiB)
)

var densePools [poolMaxBits - poolMinBits + 1]sync.Pool

// getClass maps a requested cell count to the pool class that can serve it,
// or -1 when the request is out of pooling range.
func getClass(n int) int {
	if n <= 0 {
		return -1
	}
	b := bits.Len(uint(n - 1)) // ceil(log2(n))
	if b < poolMinBits {
		b = poolMinBits
	}
	if b > poolMaxBits {
		return -1
	}
	return b - poolMinBits
}

// putClass maps a buffer capacity to the largest class it fully covers, or
// -1 when it is too small (or too large) to be worth pooling.
func putClass(c int) int {
	if c < 1<<poolMinBits {
		return -1
	}
	b := bits.Len(uint(c)) - 1 // floor(log2(c))
	if b > poolMaxBits {
		b = poolMaxBits
	}
	return b - poolMinBits
}

// pooledRaw returns a *Dense with an n-cell backing slice of unspecified
// content, from the pool when a buffer of the right class is available.
func pooledRaw(n int) *Dense {
	cl := getClass(n)
	if cl < 0 {
		return &Dense{data: make([]float64, n)}
	}
	if v := densePools[cl].Get(); v != nil {
		m := v.(*Dense)
		m.data = m.data[:n]
		return m
	}
	return &Dense{data: make([]float64, n, 1<<(cl+poolMinBits))}
}

// NewPooled returns an r×c all-zero matrix whose backing storage may be
// recycled from a previous Recycle. It is interchangeable with New; the only
// difference is where the memory comes from.
func NewPooled(r, c int) *Dense {
	checkDims(r, c)
	m := pooledRaw(r * c)
	for i := range m.data {
		m.data[i] = 0
	}
	m.rows, m.cols = r, c
	return m
}

// FromDataPooled returns an r×c matrix backed by pool storage holding a copy
// of data (row-major, length r*c). It is the ingestion-side counterpart of
// ClonePooled: a decoder that accumulates cells in a reusable scratch buffer
// can materialize a recyclable matrix directly, without an intermediate
// unpooled Dense that the clone would immediately orphan.
func FromDataPooled(r, c int, data []float64) *Dense {
	checkDims(r, c)
	if len(data) != r*c {
		panic(fmt.Sprintf("matrix: FromDataPooled %dx%d requires %d values, got %d", r, c, r*c, len(data)))
	}
	m := pooledRaw(r * c)
	m.rows, m.cols = r, c
	copy(m.data, data)
	return m
}

// ClonePooled returns a copy of src backed by pool storage, skipping the
// zero-fill a NewPooled+copy would pay.
func ClonePooled(src *Dense) *Dense {
	m := pooledRaw(src.rows * src.cols)
	m.rows, m.cols = src.rows, src.cols
	copy(m.data, src.data)
	return m
}

// Recycle hands m's backing storage back to the pool and empties m to a 0×0
// matrix so accidental reuse fails loudly (out-of-range access) instead of
// silently reading recycled memory. It accepts any Dense, pooled origin or
// not; nil and unpoolable sizes are no-ops.
func Recycle(m *Dense) {
	if m == nil {
		return
	}
	cl := putClass(cap(m.data))
	data := m.data
	m.rows, m.cols, m.data = 0, 0, nil
	if cl < 0 {
		return
	}
	densePools[cl].Put(&Dense{data: data[:0]})
}
