package matrix

import (
	"context"

	"repro/internal/parallel"
)

// Parallel variants of the Gram kernels. The output matrix is decomposed
// into block-row strips and the strips are fanned out over the
// internal/parallel pool. Because every output element belongs to exactly
// one strip and each strip runs the identical serial tile code, the result
// is bit-identical to the serial kernels for every worker count and every
// block size — the pool only changes *who* computes a strip, never the
// order of floating-point operations within it.
//
// The strips near the diagonal of the upper triangle carry more tiles than
// the ones far from it, so the pool's dynamic index claiming doubles as load
// balancing: fast workers drain the cheap trailing strips while a slow one
// finishes a heavy leading strip.

// AtAIntoPar is AtAInto across workers goroutines. workers ≤ 1 runs the
// serial kernel; the result is bit-identical either way.
func AtAIntoPar(dst, a *Dense, workers int) *Dense {
	return ataBlocked(dst, a, gramBlock, workers)
}

// AAtIntoPar is AAtInto across workers goroutines. workers ≤ 1 runs the
// serial kernel; the result is bit-identical either way.
func AAtIntoPar(dst, a *Dense, workers int) *Dense {
	return aatBlocked(dst, a, gramBlock, workers)
}

// GramIntoPar is GramInto across workers goroutines: the min-dimension Gram
// product, computed by the parallel kernel matching GramInto's choice.
func GramIntoPar(dst, a *Dense, workers int) *Dense {
	if a.cols <= a.rows {
		return AtAIntoPar(dst, a, workers)
	}
	return AAtIntoPar(dst, a, workers)
}

// runStrips executes fn(s) for every strip index in [0, strips) on at most
// workers goroutines via the shared pool. The background context keeps the
// kernels span-free (obs tracing of the numeric stage happens one level up,
// in internal/linalg) and uncancellable — a Gram product either completes or
// the process is going down anyway.
func runStrips(strips, workers int, fn func(s int)) {
	// The strip closures never fail, so Map's error path is unreachable.
	_, _ = parallel.Map(context.Background(), strips, workers, func(_ context.Context, s int) (struct{}, error) {
		fn(s)
		return struct{}{}, nil
	})
}
