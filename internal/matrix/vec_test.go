package matrix

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Errorf("Dot = %g, want 32", got)
	}
}

func TestDotLengthMismatchPanics(t *testing.T) {
	defer expectPanic(t, "Dot length mismatch")
	Dot([]float64{1}, []float64{1, 2})
}

func TestNrm2(t *testing.T) {
	if got := Nrm2([]float64{3, 4}); math.Abs(got-5) > 1e-15 {
		t.Errorf("Nrm2([3 4]) = %g, want 5", got)
	}
	if got := Nrm2(nil); got != 0 {
		t.Errorf("Nrm2(nil) = %g, want 0", got)
	}
}

// Nrm2 must not overflow for huge components.
func TestNrm2Overflow(t *testing.T) {
	big := math.MaxFloat64 / 2
	got := Nrm2([]float64{big, big})
	if math.IsInf(got, 0) || math.IsNaN(got) {
		t.Errorf("Nrm2 overflowed: %g", got)
	}
	want := big * math.Sqrt2
	if math.Abs(got-want)/want > 1e-12 {
		t.Errorf("Nrm2 = %g, want %g", got, want)
	}
}

func TestVecSumScaleClone(t *testing.T) {
	x := []float64{1, 2, 3}
	if got := VecSum(x); got != 6 {
		t.Errorf("VecSum = %g, want 6", got)
	}
	c := VecClone(x)
	VecScale(x, 2)
	if !VecEqualTol(x, []float64{2, 4, 6}, 0) {
		t.Errorf("VecScale = %v", x)
	}
	if !VecEqualTol(c, []float64{1, 2, 3}, 0) {
		t.Errorf("VecClone aliased: %v", c)
	}
}

func TestAscendingPerm(t *testing.T) {
	x := []float64{3, 1, 2}
	p := AscendingPerm(x)
	want := []int{1, 2, 0}
	for i := range p {
		if p[i] != want[i] {
			t.Fatalf("AscendingPerm = %v, want %v", p, want)
		}
	}
}

func TestAscendingPermStable(t *testing.T) {
	p := AscendingPerm([]float64{2, 1, 1})
	if p[0] != 1 || p[1] != 2 || p[2] != 0 {
		t.Errorf("AscendingPerm not stable: %v", p)
	}
}

func TestSortedAscending(t *testing.T) {
	x := []float64{2, 1}
	s := SortedAscending(x)
	if !IsSortedAscending(s) {
		t.Errorf("SortedAscending = %v not sorted", s)
	}
	if x[0] != 2 {
		t.Error("SortedAscending mutated input")
	}
}

// quick-check: applying AscendingPerm yields a sorted sequence.
func TestQuickAscendingPermSorts(t *testing.T) {
	f := func(vals []float64) bool {
		vals = sanitize(vals)
		p := AscendingPerm(vals)
		prev := math.Inf(-1)
		for _, idx := range p {
			if vals[idx] < prev {
				return false
			}
			prev = vals[idx]
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// quick-check: Cauchy–Schwarz |x·y| <= ||x|| ||y||.
func TestQuickCauchySchwarz(t *testing.T) {
	f := func(a, b []float64) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		x, y := sanitize(a[:n]), sanitize(b[:n])
		lhs := math.Abs(Dot(x, y))
		rhs := Nrm2(x) * Nrm2(y)
		return lhs <= rhs*(1+1e-9)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
