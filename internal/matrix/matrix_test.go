package matrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZeroInitialized(t *testing.T) {
	m := New(3, 4)
	if r, c := m.Dims(); r != 3 || c != 4 {
		t.Fatalf("Dims = (%d,%d), want (3,4)", r, c)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("At(%d,%d) = %g, want 0", i, j, m.At(i, j))
			}
		}
	}
}

func TestNewFromDataRowMajor(t *testing.T) {
	m := NewFromData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	if got := m.At(0, 2); got != 3 {
		t.Errorf("At(0,2) = %g, want 3", got)
	}
	if got := m.At(1, 0); got != 4 {
		t.Errorf("At(1,0) = %g, want 4", got)
	}
}

func TestNewFromDataLengthMismatchPanics(t *testing.T) {
	defer expectPanic(t, "NewFromData with wrong length")
	NewFromData(2, 2, []float64{1, 2, 3})
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer expectPanic(t, "FromRows ragged")
	FromRows([][]float64{{1, 2}, {3}})
}

func TestFromRowsCopiesData(t *testing.T) {
	row := []float64{1, 2}
	m := FromRows([][]float64{row})
	row[0] = 99
	if m.At(0, 0) != 1 {
		t.Errorf("FromRows aliased caller data: At(0,0) = %g, want 1", m.At(0, 0))
	}
}

func TestSetAt(t *testing.T) {
	m := New(2, 2)
	m.Set(1, 0, 7.5)
	if m.At(1, 0) != 7.5 {
		t.Errorf("At(1,0) = %g after Set, want 7.5", m.At(1, 0))
	}
}

func TestAtOutOfRangePanics(t *testing.T) {
	defer expectPanic(t, "At out of range")
	New(2, 2).At(2, 0)
}

func TestIdentity(t *testing.T) {
	m := Identity(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if m.At(i, j) != want {
				t.Errorf("I(3)[%d,%d] = %g, want %g", i, j, m.At(i, j), want)
			}
		}
	}
}

func TestDiag(t *testing.T) {
	m := Diag([]float64{2, 3})
	want := FromRows([][]float64{{2, 0}, {0, 3}})
	if !EqualTol(m, want, 0) {
		t.Errorf("Diag = \n%v want \n%v", m, want)
	}
}

func TestTransposeInvolution(t *testing.T) {
	m := randomMatrix(rand.New(rand.NewSource(1)), 4, 7)
	if !EqualTol(m.T().T(), m, 0) {
		t.Error("T(T(m)) != m")
	}
}

func TestTransposeEntries(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	mt := m.T()
	if r, c := mt.Dims(); r != 3 || c != 2 {
		t.Fatalf("T dims = (%d,%d), want (3,2)", r, c)
	}
	if mt.At(2, 1) != 6 {
		t.Errorf("T[2,1] = %g, want 6", mt.At(2, 1))
	}
}

func TestMulAgainstKnown(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	got := Mul(a, b)
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	if !EqualTol(got, want, 1e-15) {
		t.Errorf("Mul = \n%v want \n%v", got, want)
	}
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := randomMatrix(rng, 5, 3)
	if !EqualTol(Mul(Identity(5), m), m, 1e-14) {
		t.Error("I*m != m")
	}
	if !EqualTol(Mul(m, Identity(3)), m, 1e-14) {
		t.Error("m*I != m")
	}
}

func TestMulDimensionMismatchPanics(t *testing.T) {
	defer expectPanic(t, "Mul mismatched dims")
	Mul(New(2, 3), New(2, 3))
}

func TestMulVec(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	got := m.MulVec([]float64{1, 0, -1})
	want := []float64{-2, -2}
	if !VecEqualTol(got, want, 1e-15) {
		t.Errorf("MulVec = %v, want %v", got, want)
	}
}

func TestAddSubHadamard(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	if got, want := Add(a, b), FromRows([][]float64{{6, 8}, {10, 12}}); !EqualTol(got, want, 0) {
		t.Errorf("Add = \n%v want \n%v", got, want)
	}
	if got, want := Sub(b, a), Constant(2, 2, 4); !EqualTol(got, want, 0) {
		t.Errorf("Sub = \n%v want \n%v", got, want)
	}
	if got, want := Hadamard(a, b), FromRows([][]float64{{5, 12}, {21, 32}}); !EqualTol(got, want, 0) {
		t.Errorf("Hadamard = \n%v want \n%v", got, want)
	}
}

// Property: matrix multiplication distributes over addition.
func TestMulDistributesOverAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 25; trial++ {
		a := randomMatrix(rng, 4, 5)
		b := randomMatrix(rng, 5, 3)
		c := randomMatrix(rng, 5, 3)
		left := Mul(a, Add(b, c))
		right := Add(Mul(a, b), Mul(a, c))
		if !EqualTol(left, right, 1e-12) {
			t.Fatalf("trial %d: A(B+C) != AB+AC, max diff %g", trial, Sub(left, right).MaxAbs())
		}
	}
}

// Property: (AB)^T = B^T A^T.
func TestMulTransposeIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 25; trial++ {
		a := randomMatrix(rng, 3, 6)
		b := randomMatrix(rng, 6, 4)
		if !EqualTol(Mul(a, b).T(), Mul(b.T(), a.T()), 1e-12) {
			t.Fatalf("trial %d: (AB)^T != B^T A^T", trial)
		}
	}
}

func TestRowColSums(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	if got := m.RowSum(0); got != 6 {
		t.Errorf("RowSum(0) = %g, want 6", got)
	}
	if got := m.ColSum(2); got != 9 {
		t.Errorf("ColSum(2) = %g, want 9", got)
	}
	if got := m.RowSums(); !VecEqualTol(got, []float64{6, 15}, 0) {
		t.Errorf("RowSums = %v, want [6 15]", got)
	}
	if got := m.ColSums(); !VecEqualTol(got, []float64{5, 7, 9}, 0) {
		t.Errorf("ColSums = %v, want [5 7 9]", got)
	}
	if got := m.Sum(); got != 21 {
		t.Errorf("Sum = %g, want 21", got)
	}
}

func TestScaleRowsCols(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	m.ScaleRows([]float64{2, 10})
	want := FromRows([][]float64{{2, 4}, {30, 40}})
	if !EqualTol(m, want, 0) {
		t.Fatalf("ScaleRows = \n%v want \n%v", m, want)
	}
	m.ScaleCols([]float64{1, 0.5})
	want = FromRows([][]float64{{2, 2}, {30, 20}})
	if !EqualTol(m, want, 0) {
		t.Fatalf("ScaleCols = \n%v want \n%v", m, want)
	}
}

// Property: ScaleRows(d) equals left-multiplication by Diag(d).
func TestScaleRowsMatchesDiagMul(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := randomMatrix(rng, 4, 6)
	d := []float64{0.5, 2, -1, 3}
	scaled := m.Clone().ScaleRows(d)
	viaMul := Mul(Diag(d), m)
	if !EqualTol(scaled, viaMul, 1e-13) {
		t.Error("ScaleRows != Diag(d)*M")
	}
}

// Property: ScaleCols(d) equals right-multiplication by Diag(d).
func TestScaleColsMatchesDiagMul(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := randomMatrix(rng, 4, 3)
	d := []float64{0.5, 2, -1}
	scaled := m.Clone().ScaleCols(d)
	viaMul := Mul(m, Diag(d))
	if !EqualTol(scaled, viaMul, 1e-13) {
		t.Error("ScaleCols != M*Diag(d)")
	}
}

func TestPermuteRowsCols(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	pr := m.PermuteRows([]int{2, 0, 1})
	want := FromRows([][]float64{{5, 6}, {1, 2}, {3, 4}})
	if !EqualTol(pr, want, 0) {
		t.Errorf("PermuteRows = \n%v want \n%v", pr, want)
	}
	pc := m.PermuteCols([]int{1, 0})
	want = FromRows([][]float64{{2, 1}, {4, 3}, {6, 5}})
	if !EqualTol(pc, want, 0) {
		t.Errorf("PermuteCols = \n%v want \n%v", pc, want)
	}
}

func TestPermuteInvalidPanics(t *testing.T) {
	defer expectPanic(t, "invalid permutation")
	New(2, 2).PermuteRows([]int{0, 0})
}

func TestSubmatrix(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}})
	s := m.Submatrix([]int{0, 2}, []int{2, 0})
	want := FromRows([][]float64{{3, 1}, {9, 7}})
	if !EqualTol(s, want, 0) {
		t.Errorf("Submatrix = \n%v want \n%v", s, want)
	}
}

func TestNorms(t *testing.T) {
	m := FromRows([][]float64{{3, -4}, {0, 0}})
	if got := m.NormFro(); math.Abs(got-5) > 1e-15 {
		t.Errorf("NormFro = %g, want 5", got)
	}
	if got := m.Norm1(); got != 4 {
		t.Errorf("Norm1 = %g, want 4", got)
	}
	if got := m.NormInf(); got != 7 {
		t.Errorf("NormInf = %g, want 7", got)
	}
	if got := m.MaxAbs(); got != 4 {
		t.Errorf("MaxAbs = %g, want 4", got)
	}
}

func TestPredicates(t *testing.T) {
	pos := FromRows([][]float64{{1, 2}, {3, 4}})
	withZero := FromRows([][]float64{{1, 0}, {3, 4}})
	neg := FromRows([][]float64{{1, -2}, {3, 4}})
	if !pos.AllPositive() || withZero.AllPositive() || neg.AllPositive() {
		t.Error("AllPositive misclassified")
	}
	if !pos.NonNegative() || !withZero.NonNegative() || neg.NonNegative() {
		t.Error("NonNegative misclassified")
	}
	if got := withZero.CountZeros(); got != 1 {
		t.Errorf("CountZeros = %d, want 1", got)
	}
	nan := FromRows([][]float64{{math.NaN()}})
	if !nan.HasNaN() || pos.HasNaN() {
		t.Error("HasNaN misclassified")
	}
	if nan.NonNegative() {
		t.Error("NonNegative must reject NaN")
	}
}

func TestCloneIndependent(t *testing.T) {
	m := FromRows([][]float64{{1, 2}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Error("Clone shares storage with original")
	}
}

func TestCopyFrom(t *testing.T) {
	m := New(1, 2)
	m.CopyFrom(FromRows([][]float64{{7, 8}}))
	if m.At(0, 1) != 8 {
		t.Errorf("CopyFrom: At(0,1) = %g, want 8", m.At(0, 1))
	}
}

func TestRowColCopies(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	r := m.Row(0)
	r[0] = 99
	if m.At(0, 0) != 1 {
		t.Error("Row returned aliased storage")
	}
	c := m.Col(1)
	if !VecEqualTol(c, []float64{2, 4}, 0) {
		t.Errorf("Col(1) = %v, want [2 4]", c)
	}
}

func TestApply(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	m.Apply(func(i, j int, v float64) float64 { return v * v })
	want := FromRows([][]float64{{1, 4}, {9, 16}})
	if !EqualTol(m, want, 0) {
		t.Errorf("Apply = \n%v want \n%v", m, want)
	}
}

func TestEqualTolShapeMismatch(t *testing.T) {
	if EqualTol(New(2, 2), New(2, 3), 1) {
		t.Error("EqualTol must reject shape mismatch")
	}
}

func TestStringRenders(t *testing.T) {
	s := FromRows([][]float64{{1, 2}}).String()
	if s == "" {
		t.Error("String returned empty output")
	}
}

func TestRowsColsAccessors(t *testing.T) {
	m := New(3, 5)
	if m.Rows() != 3 || m.Cols() != 5 {
		t.Errorf("Rows/Cols = %d/%d", m.Rows(), m.Cols())
	}
}

func TestScaleAndScaled(t *testing.T) {
	m := FromRows([][]float64{{1, 2}})
	s := m.Scaled(3)
	if !EqualTol(s, FromRows([][]float64{{3, 6}}), 0) {
		t.Errorf("Scaled = \n%v", s)
	}
	if m.At(0, 0) != 1 {
		t.Error("Scaled mutated receiver")
	}
	m.Scale(2)
	if !EqualTol(m, FromRows([][]float64{{2, 4}}), 0) {
		t.Errorf("Scale = \n%v", m)
	}
}

func TestMinMax(t *testing.T) {
	m := FromRows([][]float64{{3, -1}, {7, 2}})
	if m.Min() != -1 {
		t.Errorf("Min = %g", m.Min())
	}
	if m.Max() != 7 {
		t.Errorf("Max = %g", m.Max())
	}
}

func TestMinEmptyPanics(t *testing.T) {
	defer expectPanic(t, "Min of empty matrix")
	New(0, 0).Min()
}

func TestNegativeDimsPanics(t *testing.T) {
	defer expectPanic(t, "negative dims")
	New(-1, 2)
}

func TestCopyFromMismatchPanics(t *testing.T) {
	defer expectPanic(t, "CopyFrom mismatch")
	New(2, 2).CopyFrom(New(2, 3))
}

func TestSubmatrixOutOfRangePanics(t *testing.T) {
	defer expectPanic(t, "Submatrix row out of range")
	New(2, 2).Submatrix([]int{5}, []int{0})
}

func TestVecEqualTolLengthMismatch(t *testing.T) {
	if VecEqualTol([]float64{1}, []float64{1, 2}, 1) {
		t.Error("length mismatch must be unequal")
	}
}

func randomMatrix(rng *rand.Rand, r, c int) *Dense {
	m := New(r, c)
	for i := range m.RawData() {
		m.RawData()[i] = rng.NormFloat64()
	}
	return m
}

func expectPanic(t *testing.T, what string) {
	t.Helper()
	if recover() == nil {
		t.Errorf("%s did not panic", what)
	}
}

// quick-check: Frobenius norm is invariant under transposition.
func TestQuickNormFroTransposeInvariant(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals) == 0 {
			return true
		}
		n := len(vals)
		cols := 1
		for cols*cols < n {
			cols++
		}
		rows := n / cols
		if rows == 0 {
			return true
		}
		m := NewFromData(rows, cols, sanitize(vals[:rows*cols]))
		return math.Abs(m.NormFro()-m.T().NormFro()) <= 1e-9*(1+m.NormFro())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// quick-check: Sum equals the sum of row sums and the sum of column sums.
func TestQuickSumConsistency(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals) < 4 {
			return true
		}
		vals = sanitize(vals)
		m := NewFromData(2, len(vals)/2, vals[:2*(len(vals)/2)])
		tot := m.Sum()
		return math.Abs(VecSum(m.RowSums())-tot) <= 1e-9*(1+math.Abs(tot)) &&
			math.Abs(VecSum(m.ColSums())-tot) <= 1e-9*(1+math.Abs(tot))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func sanitize(vals []float64) []float64 {
	out := make([]float64, len(vals))
	for i, v := range vals {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			v = 0
		}
		// Clamp to a moderate range so products cannot overflow.
		out[i] = math.Mod(v, 1e6)
	}
	return out
}

// The fused Sinkhorn kernels must agree with the separate scale + reduce
// operations they replace.
func TestFusedScaleSumKernels(t *testing.T) {
	a := FromRows([][]float64{
		{1, 2, 3, 4},
		{5, 6, 7, 8},
		{9, 10, 11, 12},
	})
	colF := []float64{2, 0.5, 1, 3}
	rowF := []float64{0.1, 10, 1}

	want := a.Clone().ScaleCols(colF)
	got := a.Clone()
	rs := make([]float64, 3)
	got.ScaleColsRowSums(colF, rs)
	if !EqualTol(want, got, 0) {
		t.Fatalf("ScaleColsRowSums matrix mismatch:\n%v\n%v", want, got)
	}
	if !VecEqualTol(rs, want.RowSums(), 1e-12) {
		t.Fatalf("fused row sums %v, want %v", rs, want.RowSums())
	}

	want2 := got.Clone().ScaleRows(rowF)
	cs := make([]float64, 4)
	got.ScaleRowsColSums(rowF, cs)
	if !EqualTol(want2, got, 0) {
		t.Fatalf("ScaleRowsColSums matrix mismatch:\n%v\n%v", want2, got)
	}
	if !VecEqualTol(cs, want2.ColSums(), 1e-12) {
		t.Fatalf("fused col sums %v, want %v", cs, want2.ColSums())
	}
}

func TestSumsInto(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	rs := make([]float64, 3)
	cs := []float64{99, 99} // must be overwritten, not accumulated into
	a.RowSumsInto(rs)
	a.ColSumsInto(cs)
	if !VecEqualTol(rs, a.RowSums(), 0) || !VecEqualTol(cs, a.ColSums(), 0) {
		t.Fatalf("RowSumsInto %v / ColSumsInto %v disagree with RowSums %v / ColSums %v",
			rs, cs, a.RowSums(), a.ColSums())
	}
}

func TestPermuteColsInPlace(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	perm := []int{2, 0, 1}
	want := a.PermuteCols(perm)
	a.PermuteColsInPlace(perm)
	if !EqualTol(want, a, 0) {
		t.Fatalf("in-place permutation mismatch:\n%v\n%v", want, a)
	}
}
