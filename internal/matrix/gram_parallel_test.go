package matrix

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"
)

// bitEqual reports whether two matrices are identical bit for bit — the
// contract of the parallel Gram kernels, which promise the exact floats of
// the serial path, not merely agreement within rounding.
func bitEqual(a, b *Dense) bool {
	if a.rows != b.rows || a.cols != b.cols {
		return false
	}
	for i, v := range a.data {
		if v != b.data[i] {
			return false
		}
	}
	return true
}

// The parallel entry points must reproduce the serial results exactly at
// every worker count: each output element is owned by one strip and each
// strip accumulates in a fixed order, so scheduling cannot move a single ulp.
func TestParallelGramBitIdenticalToSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	workerCounts := []int{1, 2, 4, runtime.GOMAXPROCS(0)}
	for _, dims := range [][2]int{{1, 1}, {3, 7}, {31, 33}, {40, 60}, {60, 40}, {65, 64}, {128, 96}} {
		a := randDense(rng, dims[0], dims[1])
		wantAtA := AtAInto(New(dims[1], dims[1]), a)
		wantAAt := AAtInto(New(dims[0], dims[0]), a)
		k := minDim(dims[0], dims[1])
		wantGram := GramInto(New(k, k), a)
		for _, w := range workerCounts {
			if got := AtAIntoPar(New(dims[1], dims[1]), a, w); !bitEqual(got, wantAtA) {
				t.Errorf("%v workers=%d: AtAIntoPar differs from AtAInto", dims, w)
			}
			if got := AAtIntoPar(New(dims[0], dims[0]), a, w); !bitEqual(got, wantAAt) {
				t.Errorf("%v workers=%d: AAtIntoPar differs from AAtInto", dims, w)
			}
			if got := GramIntoPar(New(k, k), a, w); !bitEqual(got, wantGram) {
				t.Errorf("%v workers=%d: GramIntoPar differs from GramInto", dims, w)
			}
		}
	}
}

// Block size partitions the output but never reorders the additions that
// land on one element (AᵀA accumulates over input rows in row order inside
// every tile; AAᵀ entries are single fixed-order dot products), so every
// block size must give the same bits as the default.
func TestBlockedGramBitIdenticalAcrossBlockSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	blocks := []int{1, 2, 3, 8, 17, 32, 64}
	for _, dims := range [][2]int{{5, 5}, {33, 31}, {40, 60}, {70, 50}} {
		a := randDense(rng, dims[0], dims[1])
		wantAtA := AtAInto(New(dims[1], dims[1]), a)
		wantAAt := AAtInto(New(dims[0], dims[0]), a)
		for _, blk := range blocks {
			for _, w := range []int{1, 2, 4} {
				if got := ataBlocked(New(dims[1], dims[1]), a, blk, w); !bitEqual(got, wantAtA) {
					t.Errorf("%v block=%d workers=%d: ataBlocked differs", dims, blk, w)
				}
				if got := aatBlocked(New(dims[0], dims[0]), a, blk, w); !bitEqual(got, wantAAt) {
					t.Errorf("%v block=%d workers=%d: aatBlocked differs", dims, blk, w)
				}
			}
		}
	}
}

// The range kernels are the tiled Sinkhorn loop's building blocks: applied
// tile by tile in column order with the accumulator resumed between tiles,
// they must reproduce the whole-row kernels bit for bit.
func TestScaleRangeKernelsMatchWholeRow(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	const r, c = 23, 37
	factorsC := make([]float64, c)
	factorsR := make([]float64, r)
	for i := range factorsC {
		factorsC[i] = 0.5 + rng.Float64()
	}
	for i := range factorsR {
		factorsR[i] = 0.5 + rng.Float64()
	}

	orig := randDense(rng, r, c)
	whole := orig.Clone()
	wantSums := make([]float64, r)
	whole.ScaleColsRowSums(factorsC, wantSums)

	ranged := orig.Clone()
	gotSums := make([]float64, r)
	// Uneven column splits; each row's partial sum resumes across them.
	for _, split := range [][2]int{{0, 5}, {5, 6}, {6, 20}, {20, 37}} {
		ranged.ScaleColsRowSumsRange(factorsC, gotSums, 0, r, split[0], split[1])
	}
	if !bitEqual(ranged, whole) {
		t.Error("ScaleColsRowSumsRange tiles differ from the whole-row kernel")
	}
	for i := range wantSums {
		if gotSums[i] != wantSums[i] {
			t.Fatalf("row sum %d: ranged %g != whole %g", i, gotSums[i], wantSums[i])
		}
	}

	whole2 := orig.Clone()
	wantCols := make([]float64, c)
	whole2.ScaleRowsColSums(factorsR, wantCols)
	ranged2 := orig.Clone()
	gotCols := make([]float64, c)
	for _, split := range [][2]int{{0, 9}, {9, 10}, {10, 23}} {
		ranged2.ScaleRowsColSumsRange(factorsR, gotCols, split[0], split[1], 0, c)
	}
	if !bitEqual(ranged2, whole2) {
		t.Error("ScaleRowsColSumsRange tiles differ from the whole-row kernel")
	}
	for j := range wantCols {
		if gotCols[j] != wantCols[j] {
			t.Fatalf("col sum %d: ranged %g != whole %g", j, gotCols[j], wantCols[j])
		}
	}
}

// Range bounds are programming errors, not data errors; they must fail fast.
func TestScaleRangePanicsOnBadBounds(t *testing.T) {
	m := New(4, 4)
	f := make([]float64, 4)
	s := make([]float64, 4)
	for _, bad := range [][4]int{{-1, 4, 0, 4}, {0, 5, 0, 4}, {2, 1, 0, 4}, {0, 4, 3, 5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("range %v accepted", bad)
				}
			}()
			m.ScaleColsRowSumsRange(f, s, bad[0], bad[1], bad[2], bad[3])
		}()
	}
}

// Pounding test for the race detector: many goroutines run the parallel
// kernels concurrently over one shared read-only input, each with its own
// destination. `make race` is the gate.
func TestParallelGramConcurrentCallers(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	a := randDense(rng, 90, 70)
	want := AtAInto(New(70, 70), a)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dst := New(70, 70)
			for iter := 0; iter < 5; iter++ {
				if got := AtAIntoPar(dst.Reset(70, 70), a, 4); !bitEqual(got, want) {
					t.Error("concurrent AtAIntoPar deviated")
					return
				}
			}
		}()
	}
	wg.Wait()
}
