// Package matrix provides a dense, row-major float64 matrix kernel used by
// every other package in this repository.
//
// The package is deliberately small and self-contained — the standard
// library plus the in-repo internal/parallel pool that the parallel Gram
// kernels fan out on: it implements exactly the operations the
// heterogeneity-measure pipeline needs — construction, element access,
// arithmetic, row/column aggregation, diagonal scaling, permutation,
// submatrix extraction, norms and tolerant comparison. Heavier numerical
// routines (QR, SVD, eigensolvers) live in internal/linalg and build on
// this type.
package matrix

import (
	"fmt"
	"math"
	"strings"
)

// Dense is a dense, row-major matrix of float64 values.
//
// The zero value is an empty (0x0) matrix. All constructors validate their
// inputs and panic on structurally impossible requests (negative dimensions,
// mismatched data lengths); such failures are programming errors, not runtime
// conditions, in line with standard library style (compare math/big).
type Dense struct {
	rows, cols int
	data       []float64 // len == rows*cols, row-major
}

// New returns an r×c matrix initialized to zero.
func New(r, c int) *Dense {
	checkDims(r, c)
	return &Dense{rows: r, cols: c, data: make([]float64, r*c)}
}

// NewFromData returns an r×c matrix that adopts data (row-major, length r*c).
// The slice is used directly, not copied.
func NewFromData(r, c int, data []float64) *Dense {
	checkDims(r, c)
	if len(data) != r*c {
		panic(fmt.Sprintf("matrix: NewFromData %dx%d requires %d values, got %d", r, c, r*c, len(data)))
	}
	return &Dense{rows: r, cols: c, data: data}
}

// FromRows builds a matrix from a slice of equal-length rows. The data is
// copied.
func FromRows(rows [][]float64) *Dense {
	if len(rows) == 0 {
		return &Dense{}
	}
	r, c := len(rows), len(rows[0])
	m := New(r, c)
	for i, row := range rows {
		if len(row) != c {
			panic(fmt.Sprintf("matrix: FromRows ragged input: row 0 has %d entries, row %d has %d", c, i, len(row)))
		}
		copy(m.data[i*c:(i+1)*c], row)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Dense {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Diag returns a square matrix with d on its diagonal.
func Diag(d []float64) *Dense {
	m := New(len(d), len(d))
	for i, v := range d {
		m.Set(i, i, v)
	}
	return m
}

// Constant returns an r×c matrix with every entry equal to v.
func Constant(r, c int, v float64) *Dense {
	m := New(r, c)
	for i := range m.data {
		m.data[i] = v
	}
	return m
}

func checkDims(r, c int) {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("matrix: negative dimension %dx%d", r, c))
	}
}

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// Dims returns (rows, cols).
func (m *Dense) Dims() (int, int) { return m.rows, m.cols }

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 {
	m.checkIndex(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns v to the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) {
	m.checkIndex(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Dense) checkIndex(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("matrix: index (%d,%d) out of range for %dx%d matrix", i, j, m.rows, m.cols))
	}
}

// RawData exposes the backing slice (row-major). Mutating it mutates the
// matrix. Intended for tight loops in internal/linalg.
func (m *Dense) RawData() []float64 { return m.data }

// Row returns a copy of row i.
func (m *Dense) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("matrix: row %d out of range for %dx%d matrix", i, m.rows, m.cols))
	}
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// Col returns a copy of column j.
func (m *Dense) Col(j int) []float64 {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("matrix: col %d out of range for %dx%d matrix", j, m.rows, m.cols))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	out := New(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// CopyFrom overwrites m with the contents of src, which must have the same
// dimensions.
func (m *Dense) CopyFrom(src *Dense) {
	if m.rows != src.rows || m.cols != src.cols {
		panic(fmt.Sprintf("matrix: CopyFrom dimension mismatch %dx%d vs %dx%d", m.rows, m.cols, src.rows, src.cols))
	}
	copy(m.data, src.data)
}

// T returns the transpose of m as a new matrix.
func (m *Dense) T() *Dense {
	out := New(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			out.data[j*out.cols+i] = m.data[i*m.cols+j]
		}
	}
	return out
}

// Mul returns the matrix product a*b.
func Mul(a, b *Dense) *Dense {
	if a.cols != b.rows {
		panic(fmt.Sprintf("matrix: Mul dimension mismatch %dx%d * %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	out := New(a.rows, b.cols)
	for i := 0; i < a.rows; i++ {
		arow := a.data[i*a.cols : (i+1)*a.cols]
		orow := out.data[i*out.cols : (i+1)*out.cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MulVec returns the matrix-vector product m*x.
func (m *Dense) MulVec(x []float64) []float64 {
	if len(x) != m.cols {
		panic(fmt.Sprintf("matrix: MulVec dimension mismatch %dx%d * len %d", m.rows, m.cols, len(x)))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		s := 0.0
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// Add returns a+b.
func Add(a, b *Dense) *Dense { return elementwise(a, b, func(x, y float64) float64 { return x + y }) }

// Sub returns a-b.
func Sub(a, b *Dense) *Dense { return elementwise(a, b, func(x, y float64) float64 { return x - y }) }

// Hadamard returns the elementwise product of a and b.
func Hadamard(a, b *Dense) *Dense {
	return elementwise(a, b, func(x, y float64) float64 { return x * y })
}

func elementwise(a, b *Dense, f func(x, y float64) float64) *Dense {
	if a.rows != b.rows || a.cols != b.cols {
		panic(fmt.Sprintf("matrix: elementwise dimension mismatch %dx%d vs %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	out := New(a.rows, a.cols)
	for i := range a.data {
		out.data[i] = f(a.data[i], b.data[i])
	}
	return out
}

// Scale multiplies every entry of m by s in place and returns m.
func (m *Dense) Scale(s float64) *Dense {
	for i := range m.data {
		m.data[i] *= s
	}
	return m
}

// Scaled returns a new matrix equal to s*m.
func (m *Dense) Scaled(s float64) *Dense { return m.Clone().Scale(s) }

// Apply replaces every entry v of m with f(i, j, v) in place and returns m.
func (m *Dense) Apply(f func(i, j int, v float64) float64) *Dense {
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			idx := i*m.cols + j
			m.data[idx] = f(i, j, m.data[idx])
		}
	}
	return m
}

// RowSum returns the sum of row i.
func (m *Dense) RowSum(i int) float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("matrix: RowSum row %d out of range", i))
	}
	s := 0.0
	for _, v := range m.data[i*m.cols : (i+1)*m.cols] {
		s += v
	}
	return s
}

// ColSum returns the sum of column j.
func (m *Dense) ColSum(j int) float64 {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("matrix: ColSum col %d out of range", j))
	}
	s := 0.0
	for i := 0; i < m.rows; i++ {
		s += m.data[i*m.cols+j]
	}
	return s
}

// RowSums returns the vector of row sums.
func (m *Dense) RowSums() []float64 {
	out := make([]float64, m.rows)
	m.RowSumsInto(out)
	return out
}

// RowSumsInto writes the row sums into dst (length rows), for callers that
// reuse buffers across iterations.
func (m *Dense) RowSumsInto(dst []float64) {
	if len(dst) != m.rows {
		panic(fmt.Sprintf("matrix: RowSumsInto needs length %d, got %d", m.rows, len(dst)))
	}
	for i := 0; i < m.rows; i++ {
		s := 0.0
		for _, v := range m.data[i*m.cols : (i+1)*m.cols] {
			s += v
		}
		dst[i] = s
	}
}

// ColSums returns the vector of column sums.
func (m *Dense) ColSums() []float64 {
	out := make([]float64, m.cols)
	m.ColSumsInto(out)
	return out
}

// ColSumsInto writes the column sums into dst (length cols), for callers
// that reuse buffers across iterations.
func (m *Dense) ColSumsInto(dst []float64) {
	if len(dst) != m.cols {
		panic(fmt.Sprintf("matrix: ColSumsInto needs length %d, got %d", m.cols, len(dst)))
	}
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range row {
			dst[j] += v
		}
	}
}

// ScaleColsRowSums multiplies column j of m by colFactors[j] while
// accumulating the row sums of the scaled matrix into rowSums, all in a
// single pass over the data — the column-normalization half of a Sinkhorn
// iteration fused with the row-sum reduction the next half needs.
func (m *Dense) ScaleColsRowSums(colFactors, rowSums []float64) {
	if len(colFactors) != m.cols {
		panic(fmt.Sprintf("matrix: ScaleColsRowSums needs %d factors, got %d", m.cols, len(colFactors)))
	}
	if len(rowSums) != m.rows {
		panic(fmt.Sprintf("matrix: ScaleColsRowSums needs row buffer %d, got %d", m.rows, len(rowSums)))
	}
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		s := 0.0
		for j, f := range colFactors {
			v := row[j] * f
			row[j] = v
			s += v
		}
		rowSums[i] = s
	}
}

// ScaleRowsColSums multiplies row i of m by rowFactors[i] while accumulating
// the column sums of the scaled matrix into colSums, in a single pass — the
// row-normalization half of a Sinkhorn iteration fused with the column-sum
// reduction the convergence check and the next iteration need.
func (m *Dense) ScaleRowsColSums(rowFactors, colSums []float64) {
	if len(rowFactors) != m.rows {
		panic(fmt.Sprintf("matrix: ScaleRowsColSums needs %d factors, got %d", m.rows, len(rowFactors)))
	}
	if len(colSums) != m.cols {
		panic(fmt.Sprintf("matrix: ScaleRowsColSums needs col buffer %d, got %d", m.cols, len(colSums)))
	}
	for j := range colSums {
		colSums[j] = 0
	}
	for i := 0; i < m.rows; i++ {
		f := rowFactors[i]
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j := range row {
			v := row[j] * f
			row[j] = v
			colSums[j] += v
		}
	}
}

// ScaleColsRowSumsRange is ScaleColsRowSums restricted to the subrectangle
// [r0, r1) × [c0, c1): it scales those entries by their column factors and
// accumulates their contribution into rowSums (which the caller zeroes before
// the first tile of a pass). Factor and sum slices are full-size and indexed
// by absolute row/column. Each row's partial sum is resumed from rowSums[i]
// and flushed back after the tile, so a left-to-right tile walk performs the
// exact addition sequence of the whole-row kernel — tiled passes are
// bit-identical to untiled ones (see sinkhorn/tiling.go).
func (m *Dense) ScaleColsRowSumsRange(colFactors, rowSums []float64, r0, r1, c0, c1 int) {
	if len(colFactors) != m.cols {
		panic(fmt.Sprintf("matrix: ScaleColsRowSumsRange needs %d factors, got %d", m.cols, len(colFactors)))
	}
	if len(rowSums) != m.rows {
		panic(fmt.Sprintf("matrix: ScaleColsRowSumsRange needs row buffer %d, got %d", m.rows, len(rowSums)))
	}
	checkRange(r0, r1, m.rows, "row")
	checkRange(c0, c1, m.cols, "column")
	for i := r0; i < r1; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		s := rowSums[i]
		for j := c0; j < c1; j++ {
			v := row[j] * colFactors[j]
			row[j] = v
			s += v
		}
		rowSums[i] = s
	}
}

// ScaleRowsColSumsRange is ScaleRowsColSums restricted to the subrectangle
// [r0, r1) × [c0, c1), accumulating into colSums (caller-zeroed before the
// first tile of a pass). A top-to-bottom tile walk adds each column's
// contributions in the same order as the whole-row kernel, keeping tiled
// passes bit-identical to untiled ones.
func (m *Dense) ScaleRowsColSumsRange(rowFactors, colSums []float64, r0, r1, c0, c1 int) {
	if len(rowFactors) != m.rows {
		panic(fmt.Sprintf("matrix: ScaleRowsColSumsRange needs %d factors, got %d", m.rows, len(rowFactors)))
	}
	if len(colSums) != m.cols {
		panic(fmt.Sprintf("matrix: ScaleRowsColSumsRange needs col buffer %d, got %d", m.cols, len(colSums)))
	}
	checkRange(r0, r1, m.rows, "row")
	checkRange(c0, c1, m.cols, "column")
	for i := r0; i < r1; i++ {
		f := rowFactors[i]
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j := c0; j < c1; j++ {
			v := row[j] * f
			row[j] = v
			colSums[j] += v
		}
	}
}

// checkRange validates a half-open [lo, hi) range against a dimension limit.
func checkRange(lo, hi, limit int, dim string) {
	if lo < 0 || hi > limit || lo > hi {
		panic(fmt.Sprintf("matrix: invalid %s range [%d, %d) for limit %d", dim, lo, hi, limit))
	}
}

// Sum returns the sum of all entries.
func (m *Dense) Sum() float64 {
	s := 0.0
	for _, v := range m.data {
		s += v
	}
	return s
}

// Min returns the smallest entry. It panics on an empty matrix.
func (m *Dense) Min() float64 {
	m.checkNonEmpty("Min")
	min := m.data[0]
	for _, v := range m.data[1:] {
		if v < min {
			min = v
		}
	}
	return min
}

// Max returns the largest entry. It panics on an empty matrix.
func (m *Dense) Max() float64 {
	m.checkNonEmpty("Max")
	max := m.data[0]
	for _, v := range m.data[1:] {
		if v > max {
			max = v
		}
	}
	return max
}

func (m *Dense) checkNonEmpty(op string) {
	if len(m.data) == 0 {
		panic("matrix: " + op + " of empty matrix")
	}
}

// ScaleRows multiplies row i of m by d[i], in place, and returns m.
func (m *Dense) ScaleRows(d []float64) *Dense {
	if len(d) != m.rows {
		panic(fmt.Sprintf("matrix: ScaleRows needs %d factors, got %d", m.rows, len(d)))
	}
	for i := 0; i < m.rows; i++ {
		f := d[i]
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j := range row {
			row[j] *= f
		}
	}
	return m
}

// ScaleCols multiplies column j of m by d[j], in place, and returns m.
func (m *Dense) ScaleCols(d []float64) *Dense {
	if len(d) != m.cols {
		panic(fmt.Sprintf("matrix: ScaleCols needs %d factors, got %d", m.cols, len(d)))
	}
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j := range row {
			row[j] *= d[j]
		}
	}
	return m
}

// PermuteRows returns a new matrix whose row i is m's row perm[i]. perm must
// be a permutation of 0..rows-1.
func (m *Dense) PermuteRows(perm []int) *Dense {
	checkPerm(perm, m.rows, "PermuteRows")
	out := New(m.rows, m.cols)
	for i, p := range perm {
		copy(out.data[i*m.cols:(i+1)*m.cols], m.data[p*m.cols:(p+1)*m.cols])
	}
	return out
}

// PermuteCols returns a new matrix whose column j is m's column perm[j].
func (m *Dense) PermuteCols(perm []int) *Dense {
	checkPerm(perm, m.cols, "PermuteCols")
	out := New(m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		src := m.data[i*m.cols : (i+1)*m.cols]
		dst := out.data[i*m.cols : (i+1)*m.cols]
		for j, p := range perm {
			dst[j] = src[p]
		}
	}
	return out
}

// PermuteColsInPlace reorders m's columns in place so that column j becomes
// the old column perm[j], using a single row-sized buffer instead of a full
// matrix copy (compare PermuteCols, which allocates rows*cols).
func (m *Dense) PermuteColsInPlace(perm []int) {
	checkPerm(perm, m.cols, "PermuteColsInPlace")
	buf := make([]float64, m.cols)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, p := range perm {
			buf[j] = row[p]
		}
		copy(row, buf)
	}
}

func checkPerm(perm []int, n int, op string) {
	if len(perm) != n {
		panic(fmt.Sprintf("matrix: %s permutation length %d, want %d", op, len(perm), n))
	}
	seen := make([]bool, n)
	for _, p := range perm {
		if p < 0 || p >= n || seen[p] {
			panic(fmt.Sprintf("matrix: %s invalid permutation %v", op, perm))
		}
		seen[p] = true
	}
}

// Submatrix returns a new matrix containing the given rows and columns of m,
// in the order listed. Indices may repeat.
func (m *Dense) Submatrix(rows, cols []int) *Dense {
	out := New(len(rows), len(cols))
	for i, r := range rows {
		if r < 0 || r >= m.rows {
			panic(fmt.Sprintf("matrix: Submatrix row %d out of range", r))
		}
		for j, c := range cols {
			if c < 0 || c >= m.cols {
				panic(fmt.Sprintf("matrix: Submatrix col %d out of range", c))
			}
			out.data[i*out.cols+j] = m.data[r*m.cols+c]
		}
	}
	return out
}

// NormFro returns the Frobenius norm of m.
func (m *Dense) NormFro() float64 {
	s := 0.0
	for _, v := range m.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Norm1 returns the maximum absolute column sum.
func (m *Dense) Norm1() float64 {
	max := 0.0
	for j := 0; j < m.cols; j++ {
		s := 0.0
		for i := 0; i < m.rows; i++ {
			s += math.Abs(m.data[i*m.cols+j])
		}
		if s > max {
			max = s
		}
	}
	return max
}

// NormInf returns the maximum absolute row sum.
func (m *Dense) NormInf() float64 {
	max := 0.0
	for i := 0; i < m.rows; i++ {
		s := 0.0
		for _, v := range m.data[i*m.cols : (i+1)*m.cols] {
			s += math.Abs(v)
		}
		if s > max {
			max = s
		}
	}
	return max
}

// MaxAbs returns the largest absolute entry, or 0 for an empty matrix.
func (m *Dense) MaxAbs() float64 {
	max := 0.0
	for _, v := range m.data {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	return max
}

// EqualTol reports whether a and b have the same shape and all entries differ
// by at most tol.
func EqualTol(a, b *Dense, tol float64) bool {
	if a.rows != b.rows || a.cols != b.cols {
		return false
	}
	for i := range a.data {
		if math.Abs(a.data[i]-b.data[i]) > tol {
			return false
		}
	}
	return true
}

// AllPositive reports whether every entry is strictly positive.
func (m *Dense) AllPositive() bool {
	for _, v := range m.data {
		if !(v > 0) {
			return false
		}
	}
	return true
}

// NonNegative reports whether every entry is >= 0 (NaN fails).
func (m *Dense) NonNegative() bool {
	for _, v := range m.data {
		if !(v >= 0) {
			return false
		}
	}
	return true
}

// CountZeros returns the number of exactly-zero entries.
func (m *Dense) CountZeros() int {
	n := 0
	for _, v := range m.data {
		if v == 0 {
			n++
		}
	}
	return n
}

// HasNaN reports whether any entry is NaN.
func (m *Dense) HasNaN() bool {
	for _, v := range m.data {
		if math.IsNaN(v) {
			return true
		}
	}
	return false
}

// String renders the matrix with aligned columns, suitable for logs and test
// failure messages.
func (m *Dense) String() string {
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		b.WriteString("[")
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%10.5g", m.data[i*m.cols+j])
		}
		b.WriteString("]\n")
	}
	return b.String()
}
