package matrix

import (
	"math/rand"
	"testing"
)

func TestPoolClassBounds(t *testing.T) {
	cases := []struct {
		n, want int
	}{
		{0, -1},
		{-5, -1},
		{1, 0},                  // below the min class rounds up to it
		{1 << poolMinBits, 0},   // exactly the min class
		{1<<poolMinBits + 1, 1}, // one past a boundary goes up a class
		{1 << poolMaxBits, poolMaxBits - poolMinBits},
		{1<<poolMaxBits + 1, -1}, // past the top class bypasses the pool
	}
	for _, c := range cases {
		if got := getClass(c.n); got != c.want {
			t.Errorf("getClass(%d) = %d, want %d", c.n, got, c.want)
		}
	}
	// Round-trip invariant: any capacity putClass files under class c must
	// satisfy every getClass(n) == c request without reallocation.
	for _, capacity := range []int{1 << poolMinBits, 3000, 1 << 15, 1<<15 + 9, 1 << poolMaxBits, 1<<poolMaxBits + 1} {
		cl := putClass(capacity)
		if cl < 0 {
			t.Fatalf("putClass(%d) refused a poolable capacity", capacity)
		}
		if maxServed := 1 << (cl + poolMinBits); capacity < maxServed {
			t.Errorf("putClass(%d) = class %d serving up to %d cells: capacity too small", capacity, cl, maxServed)
		}
	}
	if putClass(1<<poolMinBits-1) != -1 {
		t.Error("putClass accepted a capacity below the smallest class")
	}
}

func TestNewPooledZeroesRecycledStorage(t *testing.T) {
	m := NewPooled(40, 40)
	for i := range m.RawData() {
		m.RawData()[i] = 99
	}
	Recycle(m)
	if m.Rows() != 0 || m.Cols() != 0 {
		t.Fatal("Recycle must empty the matrix")
	}
	// Whether or not the next NewPooled wins the recycled buffer (sync.Pool
	// makes no promise), it must come back fully zeroed.
	n := NewPooled(40, 40)
	for i, v := range n.RawData() {
		if v != 0 {
			t.Fatalf("NewPooled cell %d = %g, want 0", i, v)
		}
	}
}

func TestClonePooledCopiesAndDetaches(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	src := randDense(rng, 33, 35)
	c := ClonePooled(src)
	if !bitEqual(c, src) {
		t.Fatal("ClonePooled differs from source")
	}
	c.RawData()[0] = -1
	if src.RawData()[0] == -1 {
		t.Fatal("ClonePooled aliases source storage")
	}
}

func TestRecycleEdgeCases(t *testing.T) {
	Recycle(nil) // must be a no-op
	small := New(2, 2)
	Recycle(small) // below the smallest class: dropped, not pooled
	if small.Rows() != 0 {
		t.Error("Recycle must empty even unpoolable matrices")
	}
}
