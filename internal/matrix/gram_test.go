package matrix

import (
	"math"
	"math/rand"
	"testing"
)

func randDense(rng *rand.Rand, r, c int) *Dense {
	m := New(r, c)
	for i := range m.data {
		m.data[i] = rng.NormFloat64()
	}
	return m
}

// naiveGram is the reference the blocked kernels are checked against.
func naiveGram(a *Dense, transposeFirst bool) *Dense {
	if transposeFirst {
		return Mul(a.T(), a)
	}
	return Mul(a, a.T())
}

func TestAtAIntoMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	// Edges straddle the 32-wide tile boundary on both sides.
	for _, dims := range [][2]int{{1, 1}, {3, 7}, {7, 3}, {20, 20}, {31, 33}, {33, 31}, {60, 40}, {40, 60}, {64, 65}} {
		a := randDense(rng, dims[0], dims[1])
		got := AtAInto(New(dims[1], dims[1]), a)
		want := naiveGram(a, true)
		if !EqualTol(got, want, 1e-12) {
			t.Errorf("%v: AtAInto deviates by %g", dims, Sub(got, want).MaxAbs())
		}
	}
}

func TestAAtIntoMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, dims := range [][2]int{{1, 1}, {3, 7}, {7, 3}, {31, 33}, {33, 31}, {40, 60}, {65, 64}} {
		a := randDense(rng, dims[0], dims[1])
		got := AAtInto(New(dims[0], dims[0]), a)
		want := naiveGram(a, false)
		if !EqualTol(got, want, 1e-12) {
			t.Errorf("%v: AAtInto deviates by %g", dims, Sub(got, want).MaxAbs())
		}
	}
}

func TestGramIntoPicksMinDimension(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	tall := randDense(rng, 9, 4)
	if g := GramInto(New(4, 4), tall); g.Rows() != 4 {
		t.Fatalf("tall: got %dx%d Gram", g.Rows(), g.Cols())
	}
	wide := randDense(rng, 4, 9)
	g := GramInto(New(4, 4), wide)
	want := naiveGram(wide, false)
	if !EqualTol(g, want, 1e-12) {
		t.Errorf("wide: GramInto deviates by %g", Sub(g, want).MaxAbs())
	}
}

func TestGramIntoOverwritesStaleState(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	a := randDense(rng, 10, 6)
	dst := Constant(6, 6, 123.0)
	got := AtAInto(dst, a)
	if !EqualTol(got, naiveGram(a, true), 1e-12) {
		t.Error("AtAInto must fully overwrite a dirty destination")
	}
}

func TestGramSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	a := randDense(rng, 37, 33)
	g := AtAInto(New(33, 33), a)
	for i := 0; i < 33; i++ {
		for j := 0; j < i; j++ {
			if g.At(i, j) != g.At(j, i) {
				t.Fatalf("Gram not exactly symmetric at (%d,%d)", i, j)
			}
		}
	}
}

func TestResetReusesCapacity(t *testing.T) {
	m := New(8, 8)
	data := m.RawData()
	data[0] = 7
	m.Reset(4, 4)
	if m.Rows() != 4 || m.Cols() != 4 {
		t.Fatalf("Reset dims = %dx%d, want 4x4", m.Rows(), m.Cols())
	}
	if m.At(0, 0) != 0 {
		t.Error("Reset must zero the reused storage")
	}
	if &m.RawData()[0] != &data[0] {
		t.Error("Reset within capacity must not reallocate")
	}
	m.Reset(10, 10)
	if m.Rows() != 10 || m.At(9, 9) != 0 {
		t.Error("Reset growth failed")
	}
	if allocs := testing.AllocsPerRun(100, func() { m.Reset(6, 6) }); allocs != 0 {
		t.Errorf("Reset within capacity allocates %g times per run", allocs)
	}
}

func TestGramFrobeniusTrace(t *testing.T) {
	// trace(AᵀA) = ‖A‖F² — a cheap independent invariant of the kernel.
	rng := rand.New(rand.NewSource(46))
	a := randDense(rng, 21, 34)
	g := AtAInto(New(34, 34), a)
	tr := 0.0
	for i := 0; i < 34; i++ {
		tr += g.At(i, i)
	}
	fro := a.NormFro()
	if math.Abs(tr-fro*fro) > 1e-10*(1+fro*fro) {
		t.Errorf("trace %g != ‖A‖F² %g", tr, fro*fro)
	}
}
