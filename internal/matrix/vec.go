package matrix

import (
	"fmt"
	"math"
	"sort"
)

// Vector helpers shared by the numerical packages. They operate on plain
// []float64 slices so callers do not have to wrap one-dimensional data.

// Dot returns the dot product of x and y.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("matrix: Dot length mismatch %d vs %d", len(x), len(y)))
	}
	s := 0.0
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Nrm2 returns the Euclidean norm of x, guarding against overflow for large
// components by scaling.
func Nrm2(x []float64) float64 {
	scale, ssq := 0.0, 1.0
	for _, v := range x {
		if v == 0 {
			continue
		}
		a := math.Abs(v)
		if scale < a {
			r := scale / a
			ssq = 1 + ssq*r*r
			scale = a
		} else {
			r := a / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// VecSum returns the sum of the entries of x.
func VecSum(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v
	}
	return s
}

// VecScale multiplies every entry of x by s in place.
func VecScale(x []float64, s float64) {
	for i := range x {
		x[i] *= s
	}
}

// VecClone returns a copy of x.
func VecClone(x []float64) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	return out
}

// VecEqualTol reports whether x and y have equal length and entries within
// tol of each other.
func VecEqualTol(x, y []float64, tol float64) bool {
	if len(x) != len(y) {
		return false
	}
	for i := range x {
		if math.Abs(x[i]-y[i]) > tol {
			return false
		}
	}
	return true
}

// AscendingPerm returns the permutation that sorts x ascending: applying the
// returned perm p, x[p[0]] <= x[p[1]] <= ... The sort is stable.
func AscendingPerm(x []float64) []int {
	p := make([]int, len(x))
	for i := range p {
		p[i] = i
	}
	sort.SliceStable(p, func(a, b int) bool { return x[p[a]] < x[p[b]] })
	return p
}

// SortedAscending returns a sorted copy of x.
func SortedAscending(x []float64) []float64 {
	out := VecClone(x)
	sort.Float64s(out)
	return out
}

// IsSortedAscending reports whether x is non-decreasing.
func IsSortedAscending(x []float64) bool {
	return sort.Float64sAreSorted(x)
}
