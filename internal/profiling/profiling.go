// Package profiling wires the standard Go profiling outputs — CPU profile,
// heap profile, execution trace — into long-running commands behind three
// flags, so hcbench and hcserved runs can be fed straight into
// `go tool pprof` / `go tool trace` without code changes.
package profiling

import (
	"errors"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Config names the output files; an empty path disables that capture.
type Config struct {
	// CPUProfile receives a pprof CPU profile covering Start..stop.
	CPUProfile string
	// MemProfile receives a heap profile taken at stop (after a GC, so it
	// reflects live objects, not garbage awaiting collection).
	MemProfile string
	// Trace receives a runtime execution trace covering Start..stop.
	Trace string
}

// Start begins the requested captures and returns a stop function that ends
// them and writes the deferred outputs. stop must be called exactly once
// (defer it right after a successful Start); it reports the first write
// error. On a Start error every capture already begun is rolled back, so a
// failed Start needs no cleanup.
func Start(cfg Config) (stop func() error, err error) {
	var (
		cpuFile   *os.File
		traceFile *os.File
	)
	fail := func(err error) (func() error, error) {
		if traceFile != nil {
			trace.Stop()
			traceFile.Close()
		}
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		return nil, err
	}
	if cfg.CPUProfile != "" {
		cpuFile, err = os.Create(cfg.CPUProfile)
		if err != nil {
			return fail(err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			cpuFile = nil
			return fail(fmt.Errorf("starting CPU profile: %w", err))
		}
	}
	if cfg.Trace != "" {
		traceFile, err = os.Create(cfg.Trace)
		if err != nil {
			return fail(err)
		}
		if err := trace.Start(traceFile); err != nil {
			traceFile.Close()
			traceFile = nil
			return fail(fmt.Errorf("starting execution trace: %w", err))
		}
	}
	memPath := cfg.MemProfile
	return func() error {
		var errs []error
		if traceFile != nil {
			trace.Stop()
			errs = append(errs, traceFile.Close())
		}
		if cpuFile != nil {
			pprof.StopCPUProfile()
			errs = append(errs, cpuFile.Close())
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				errs = append(errs, err)
			} else {
				runtime.GC() // materialize the live heap before snapshotting
				errs = append(errs, pprof.WriteHeapProfile(f), f.Close())
			}
		}
		return errors.Join(errs...)
	}, nil
}
