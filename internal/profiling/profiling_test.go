package profiling

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartStopWritesAllOutputs(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		CPUProfile: filepath.Join(dir, "cpu.pprof"),
		MemProfile: filepath.Join(dir, "mem.pprof"),
		Trace:      filepath.Join(dir, "trace.out"),
	}
	stop, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A little work so the captures have something to record.
	sum := 0.0
	for i := 0; i < 1_000_000; i++ {
		sum += float64(i) * 1.0001
	}
	_ = sum
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cfg.CPUProfile, cfg.MemProfile, cfg.Trace} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Errorf("missing output %s: %v", p, err)
			continue
		}
		if fi.Size() == 0 {
			t.Errorf("output %s is empty", p)
		}
	}
}

func TestStartNoOutputsIsNoOp(t *testing.T) {
	stop, err := Start(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

func TestStartBadPathRollsBack(t *testing.T) {
	dir := t.TempDir()
	// CPU profile starts fine, then the trace path is unwritable: Start must
	// fail and roll the CPU profile back so a second Start can succeed.
	bad := Config{
		CPUProfile: filepath.Join(dir, "cpu.pprof"),
		Trace:      filepath.Join(dir, "no", "such", "dir", "trace.out"),
	}
	if _, err := Start(bad); err == nil {
		t.Fatal("Start with unwritable trace path succeeded")
	}
	stop, err := Start(Config{CPUProfile: filepath.Join(dir, "cpu2.pprof")})
	if err != nil {
		t.Fatalf("Start after failed Start: %v", err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}
