// Package stats provides the small statistical toolkit used by the measure
// and generator packages: moments, coefficient of variation, correlation,
// quantiles and the random-variate samplers needed by the CVB ETC generator.
package stats

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Mean returns the arithmetic mean of x. It panics on empty input.
func Mean(x []float64) float64 {
	checkNonEmpty(x, "Mean")
	s := 0.0
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// VariancePop returns the population variance (divide by n).
func VariancePop(x []float64) float64 {
	checkNonEmpty(x, "VariancePop")
	mu := Mean(x)
	s := 0.0
	for _, v := range x {
		d := v - mu
		s += d * d
	}
	return s / float64(len(x))
}

// StdDevPop returns the population standard deviation. The reproduced paper's
// Figure 2 COV values are consistent with the population (not sample)
// definition, so COV uses this.
func StdDevPop(x []float64) float64 { return math.Sqrt(VariancePop(x)) }

// VarianceSample returns the sample variance (divide by n-1). Panics for
// fewer than two observations.
func VarianceSample(x []float64) float64 {
	if len(x) < 2 {
		panic("stats: VarianceSample needs at least 2 values")
	}
	mu := Mean(x)
	s := 0.0
	for _, v := range x {
		d := v - mu
		s += d * d
	}
	return s / float64(len(x)-1)
}

// StdDevSample returns the sample standard deviation.
func StdDevSample(x []float64) float64 { return math.Sqrt(VarianceSample(x)) }

// COV returns the coefficient of variation StdDevPop(x)/Mean(x), the
// heterogeneity measure the paper compares MPH against (Fig. 2).
func COV(x []float64) float64 {
	mu := Mean(x)
	if mu == 0 {
		return math.NaN()
	}
	return StdDevPop(x) / mu
}

// GeoMean returns the geometric mean of strictly positive values.
func GeoMean(x []float64) float64 {
	checkNonEmpty(x, "GeoMean")
	s := 0.0
	for _, v := range x {
		if v <= 0 {
			panic(fmt.Sprintf("stats: GeoMean requires positive values, got %g", v))
		}
		s += math.Log(v)
	}
	return math.Exp(s / float64(len(x)))
}

// Pearson returns the Pearson linear correlation coefficient of x and y.
func Pearson(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("stats: Pearson length mismatch")
	}
	checkNonEmpty(x, "Pearson")
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Spearman returns the Spearman rank correlation coefficient, using average
// ranks for ties.
func Spearman(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("stats: Spearman length mismatch")
	}
	return Pearson(Ranks(x), Ranks(y))
}

// Ranks returns 1-based ranks of x with ties assigned their average rank.
func Ranks(x []float64) []float64 {
	n := len(x)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return x[idx[a]] < x[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && x[idx[j+1]] == x[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// Quantile returns the q-quantile (0 <= q <= 1) of x using linear
// interpolation between order statistics.
func Quantile(x []float64, q float64) float64 {
	checkNonEmpty(x, "Quantile")
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: Quantile q = %g out of [0,1]", q))
	}
	s := append([]float64(nil), x...)
	sort.Float64s(s)
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Linspace returns n evenly spaced values from lo to hi inclusive.
func Linspace(lo, hi float64, n int) []float64 {
	if n < 2 {
		if n == 1 {
			return []float64{lo}
		}
		return nil
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	out[n-1] = hi
	return out
}

// Gamma draws a Gamma(shape, scale) variate using the Marsaglia–Tsang method
// (with Johnk-style boosting for shape < 1). This is the distribution the CVB
// ETC-generation method of Ali et al. samples from.
func Gamma(rng *rand.Rand, shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic(fmt.Sprintf("stats: Gamma requires positive parameters, got shape=%g scale=%g", shape, scale))
	}
	if shape < 1 {
		// Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return Gamma(rng, shape+1, scale) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return scale * d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return scale * d * v
		}
	}
}

func checkNonEmpty(x []float64, op string) {
	if len(x) == 0 {
		panic("stats: " + op + " of empty slice")
	}
}
