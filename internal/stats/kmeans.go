package stats

import (
	"fmt"
	"math"
	"math/rand"
)

// KMeans clusters points (each a d-vector) into k groups with Lloyd's
// algorithm and k-means++ seeding. It returns the assignment per point and
// the final centroids. The rng makes runs reproducible; restarts guard
// against bad seedings and the best (lowest within-cluster sum of squares)
// result is kept.
func KMeans(points [][]float64, k int, rng *rand.Rand, restarts int) ([]int, [][]float64, error) {
	n := len(points)
	if n == 0 {
		return nil, nil, fmt.Errorf("stats: KMeans with no points")
	}
	if k < 1 || k > n {
		return nil, nil, fmt.Errorf("stats: KMeans k = %d out of [1, %d]", k, n)
	}
	d := len(points[0])
	for i, p := range points {
		if len(p) != d {
			return nil, nil, fmt.Errorf("stats: KMeans point %d has dim %d, want %d", i, len(p), d)
		}
	}
	if restarts < 1 {
		restarts = 1
	}
	var bestAssign []int
	var bestCentroids [][]float64
	bestCost := math.Inf(1)
	for r := 0; r < restarts; r++ {
		assign, centroids, cost := kmeansOnce(points, k, rng)
		if cost < bestCost {
			bestCost = cost
			bestAssign = assign
			bestCentroids = centroids
		}
	}
	return bestAssign, bestCentroids, nil
}

func kmeansOnce(points [][]float64, k int, rng *rand.Rand) ([]int, [][]float64, float64) {
	n, d := len(points), len(points[0])
	// k-means++ seeding.
	centroids := make([][]float64, 0, k)
	first := 0
	if rng != nil {
		first = rng.Intn(n)
	}
	centroids = append(centroids, cloneVec(points[first]))
	dist2 := make([]float64, n)
	for len(centroids) < k {
		total := 0.0
		for i, p := range points {
			best := math.Inf(1)
			for _, c := range centroids {
				if d2 := sqDist(p, c); d2 < best {
					best = d2
				}
			}
			dist2[i] = best
			total += best
		}
		var next int
		if total == 0 || rng == nil {
			// All points coincide with centroids; pick deterministically.
			next = len(centroids) % n
		} else {
			target := rng.Float64() * total
			for i, d2 := range dist2 {
				target -= d2
				if target <= 0 {
					next = i
					break
				}
			}
		}
		centroids = append(centroids, cloneVec(points[next]))
	}
	// Lloyd iterations.
	assign := make([]int, n)
	for iter := 0; iter < 100; iter++ {
		changed := false
		for i, p := range points {
			best, bestD := 0, math.Inf(1)
			for c := range centroids {
				if d2 := sqDist(p, centroids[c]); d2 < bestD {
					best, bestD = c, d2
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		// Recompute centroids; empty clusters keep their position.
		counts := make([]int, k)
		sums := make([][]float64, k)
		for c := range sums {
			sums[c] = make([]float64, d)
		}
		for i, p := range points {
			c := assign[i]
			counts[c]++
			for j, v := range p {
				sums[c][j] += v
			}
		}
		for c := range centroids {
			if counts[c] == 0 {
				continue
			}
			for j := range centroids[c] {
				centroids[c][j] = sums[c][j] / float64(counts[c])
			}
		}
		if !changed {
			break
		}
	}
	cost := 0.0
	for i, p := range points {
		cost += sqDist(p, centroids[assign[i]])
	}
	return assign, centroids, cost
}

func sqDist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

func cloneVec(v []float64) []float64 {
	out := make([]float64, len(v))
	copy(out, v)
	return out
}
