package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestKMeansTwoObviousClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	var points [][]float64
	for i := 0; i < 20; i++ {
		points = append(points, []float64{rng.NormFloat64() * 0.1, rng.NormFloat64() * 0.1})
	}
	for i := 0; i < 20; i++ {
		points = append(points, []float64{10 + rng.NormFloat64()*0.1, 10 + rng.NormFloat64()*0.1})
	}
	assign, centroids, err := KMeans(points, 2, rng, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(centroids) != 2 {
		t.Fatalf("got %d centroids", len(centroids))
	}
	for i := 1; i < 20; i++ {
		if assign[i] != assign[0] {
			t.Fatalf("first cluster split: %v", assign[:20])
		}
	}
	for i := 21; i < 40; i++ {
		if assign[i] != assign[20] {
			t.Fatalf("second cluster split: %v", assign[20:])
		}
	}
	if assign[0] == assign[20] {
		t.Fatal("clusters merged")
	}
}

func TestKMeansKEqualsN(t *testing.T) {
	points := [][]float64{{0}, {5}, {10}}
	assign, _, err := KMeans(points, 3, rand.New(rand.NewSource(61)), 3)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, a := range assign {
		seen[a] = true
	}
	if len(seen) != 3 {
		t.Errorf("k=n must give singleton clusters: %v", assign)
	}
}

func TestKMeansValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	if _, _, err := KMeans(nil, 1, rng, 1); err == nil {
		t.Error("empty input accepted")
	}
	if _, _, err := KMeans([][]float64{{1}}, 2, rng, 1); err == nil {
		t.Error("k > n accepted")
	}
	if _, _, err := KMeans([][]float64{{1}, {1, 2}}, 1, rng, 1); err == nil {
		t.Error("ragged input accepted")
	}
	if _, _, err := KMeans([][]float64{{1}}, 0, rng, 1); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestKMeansIdenticalPoints(t *testing.T) {
	points := [][]float64{{3, 3}, {3, 3}, {3, 3}}
	assign, centroids, err := KMeans(points, 2, rand.New(rand.NewSource(63)), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(assign) != 3 {
		t.Fatalf("assign len %d", len(assign))
	}
	for _, c := range centroids {
		for _, v := range c {
			if math.IsNaN(v) {
				t.Fatal("NaN centroid on degenerate input")
			}
		}
	}
}

// Centroids must be the means of their assigned points at convergence.
func TestKMeansCentroidConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	points := make([][]float64, 30)
	for i := range points {
		points[i] = []float64{rng.Float64() * 10}
	}
	assign, centroids, err := KMeans(points, 3, rng, 4)
	if err != nil {
		t.Fatal(err)
	}
	for c := range centroids {
		sum, n := 0.0, 0
		for i, a := range assign {
			if a == c {
				sum += points[i][0]
				n++
			}
		}
		if n == 0 {
			continue
		}
		if math.Abs(centroids[c][0]-sum/float64(n)) > 1e-9 {
			t.Errorf("centroid %d = %g, mean of members = %g", c, centroids[c][0], sum/float64(n))
		}
	}
}
