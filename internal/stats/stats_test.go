package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %g, want 2.5", got)
	}
}

func TestMeanEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Mean of empty slice did not panic")
		}
	}()
	Mean(nil)
}

func TestVarianceAndStdDev(t *testing.T) {
	x := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := VariancePop(x); !almost(got, 4, 1e-12) {
		t.Errorf("VariancePop = %g, want 4", got)
	}
	if got := StdDevPop(x); !almost(got, 2, 1e-12) {
		t.Errorf("StdDevPop = %g, want 2", got)
	}
	if got := VarianceSample(x); !almost(got, 32.0/7.0, 1e-12) {
		t.Errorf("VarianceSample = %g, want %g", got, 32.0/7.0)
	}
	if got := StdDevSample([]float64{1, 3}); !almost(got, math.Sqrt2, 1e-12) {
		t.Errorf("StdDevSample = %g, want sqrt(2)", got)
	}
}

// COV values from the paper's Figure 2 — these must match exactly (2 d.p.).
func TestCOVMatchesPaperFigure2(t *testing.T) {
	cases := []struct {
		perfs []float64
		want  float64
	}{
		{[]float64{1, 2, 4, 8, 16}, 0.88},
		{[]float64{1, 1, 1, 1, 16}, 1.5},
		{[]float64{1, 16, 16, 16, 16}, 0.46},
		{[]float64{1, 4, 4, 4, 16}, 0.90},
	}
	for i, c := range cases {
		if got := COV(c.perfs); !almost(got, c.want, 0.005) {
			t.Errorf("environment %d: COV = %.4f, want %.2f", i+1, got, c.want)
		}
	}
}

func TestCOVZeroMean(t *testing.T) {
	if got := COV([]float64{-1, 1}); !math.IsNaN(got) {
		t.Errorf("COV with zero mean = %g, want NaN", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4, 16}); !almost(got, 4, 1e-12) {
		t.Errorf("GeoMean = %g, want 4", got)
	}
}

func TestGeoMeanNonPositivePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("GeoMean with zero did not panic")
		}
	}()
	GeoMean([]float64{1, 0})
}

func TestPearson(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	if got := Pearson(x, []float64{2, 4, 6, 8}); !almost(got, 1, 1e-12) {
		t.Errorf("perfectly correlated: Pearson = %g", got)
	}
	if got := Pearson(x, []float64{8, 6, 4, 2}); !almost(got, -1, 1e-12) {
		t.Errorf("perfectly anticorrelated: Pearson = %g", got)
	}
	if got := Pearson(x, []float64{5, 5, 5, 5}); !math.IsNaN(got) {
		t.Errorf("constant y: Pearson = %g, want NaN", got)
	}
}

func TestSpearmanMonotone(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{1, 8, 27, 64, 125} // monotone but nonlinear
	if got := Spearman(x, y); !almost(got, 1, 1e-12) {
		t.Errorf("Spearman of monotone data = %g, want 1", got)
	}
}

func TestRanksWithTies(t *testing.T) {
	got := Ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ranks = %v, want %v", got, want)
		}
	}
}

func TestQuantile(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	if got := Quantile(x, 0); got != 1 {
		t.Errorf("q0 = %g", got)
	}
	if got := Quantile(x, 1); got != 4 {
		t.Errorf("q1 = %g", got)
	}
	if got := Quantile(x, 0.5); !almost(got, 2.5, 1e-12) {
		t.Errorf("median = %g, want 2.5", got)
	}
}

func TestLinspace(t *testing.T) {
	got := Linspace(0, 1, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	for i := range want {
		if !almost(got[i], want[i], 1e-15) {
			t.Fatalf("Linspace = %v, want %v", got, want)
		}
	}
	if got := Linspace(3, 9, 1); len(got) != 1 || got[0] != 3 {
		t.Errorf("Linspace n=1 = %v", got)
	}
	if got := Linspace(0, 1, 0); got != nil {
		t.Errorf("Linspace n=0 = %v, want nil", got)
	}
}

func TestGammaMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, tc := range []struct{ shape, scale float64 }{{2, 3}, {0.5, 1}, {9, 0.25}} {
		n := 50000
		samples := make([]float64, n)
		for i := range samples {
			samples[i] = Gamma(rng, tc.shape, tc.scale)
		}
		wantMean := tc.shape * tc.scale
		wantVar := tc.shape * tc.scale * tc.scale
		if got := Mean(samples); math.Abs(got-wantMean)/wantMean > 0.05 {
			t.Errorf("Gamma(%g,%g): mean = %g, want %g", tc.shape, tc.scale, got, wantMean)
		}
		if got := VariancePop(samples); math.Abs(got-wantVar)/wantVar > 0.1 {
			t.Errorf("Gamma(%g,%g): var = %g, want %g", tc.shape, tc.scale, got, wantVar)
		}
		for _, s := range samples {
			if s <= 0 {
				t.Fatalf("Gamma produced non-positive sample %g", s)
			}
		}
	}
}

func TestGammaInvalidParamsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Gamma with non-positive shape did not panic")
		}
	}()
	Gamma(rand.New(rand.NewSource(1)), 0, 1)
}

// quick-check: Pearson is bounded in [-1, 1] and symmetric.
func TestQuickPearsonBoundsAndSymmetry(t *testing.T) {
	f := func(a, b []float64) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		if n < 2 {
			return true
		}
		x, y := make([]float64, n), make([]float64, n)
		for i := 0; i < n; i++ {
			x[i] = clampFinite(a[i])
			y[i] = clampFinite(b[i])
		}
		r := Pearson(x, y)
		if math.IsNaN(r) {
			return true // degenerate (constant) input
		}
		return r >= -1-1e-9 && r <= 1+1e-9 && almost(r, Pearson(y, x), 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// quick-check: COV is scale invariant for positive data and positive scale.
func TestQuickCOVScaleInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(10)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.Float64()*100 + 0.1
		}
		k := rng.Float64()*10 + 0.1
		scaled := make([]float64, n)
		for i := range x {
			scaled[i] = k * x[i]
		}
		if !almost(COV(x), COV(scaled), 1e-9) {
			t.Fatalf("COV not scale invariant: %g vs %g", COV(x), COV(scaled))
		}
	}
}

func clampFinite(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(v, 1e6)
}
