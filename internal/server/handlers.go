package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"mime"
	"net/http"
	"runtime"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/etcmat"
	"repro/internal/gen"
	"repro/internal/obs"
	"repro/internal/parallel"
)

// writeJSON renders v with the standard headers; encoding failures are
// logged, not retried (the status line is already gone).
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.log.Error("encoding response", "err", err)
	}
}

// writeError renders the uniform error envelope.
func writeError(w http.ResponseWriter, status int, code, message string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(apiError{Version: APIVersion, Error: apiErrorBody{Code: code, Message: message}})
}

// decodeJSON reads a size-capped JSON body into v.
func (s *Server) decodeJSON(w http.ResponseWriter, r *http.Request, v any) error {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return fmt.Errorf("body exceeds %d bytes", tooLarge.Limit)
		}
		return err
	}
	// Trailing garbage after the JSON value is a malformed request, not a
	// second message.
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		return errors.New("unexpected data after JSON body")
	}
	return nil
}

// readEnv extracts the environment from a characterize/whatif request body:
// JSON (EnvDTO) by default, raw CSV when the Content-Type says so.
func (s *Server) readEnv(w http.ResponseWriter, r *http.Request) (*etcmat.Env, error) {
	ct := r.Header.Get("Content-Type")
	if mt, _, err := mime.ParseMediaType(ct); err == nil && (mt == "text/csv" || mt == "text/plain") {
		body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		return etcmat.ReadETCCSV(body)
	}
	var req characterizeRequest
	if err := s.decodeJSON(w, r, &req); err != nil {
		return nil, err
	}
	return req.Env()
}

// admit claims a compute slot for the request, translating the failure
// modes to HTTP. It reports whether the caller may proceed; on false the
// response has been written.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) (release func(), ok bool) {
	release, err := s.adm.Enter(r.Context())
	switch {
	case err == nil:
		return release, true
	case errors.Is(err, ErrOverloaded):
		retry := s.adm.RetryAfter(100 * time.Millisecond)
		w.Header().Set("Retry-After", strconv.Itoa(int(retry.Round(time.Second)/time.Second)))
		writeError(w, http.StatusTooManyRequests, "overloaded",
			"server at capacity; retry after the indicated delay")
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, "timeout",
			"request deadline expired while queued for a compute slot")
	default: // context.Canceled — client went away; the write is moot.
		writeError(w, http.StatusServiceUnavailable, "canceled", "request canceled")
	}
	return nil, false
}

// characterizeCached computes (or recalls) the profile of an environment
// through the content-addressed cache and the coalescing layer. The returned
// bool reports whether the profile came from the cache or an in-flight
// computation rather than a fresh one.
func (s *Server) characterizeCached(ctx context.Context, env *etcmat.Env) (*core.Profile, bool) {
	p, outcome, err := s.characterizeCoalesced(ctx, keyOf(env), env)
	if err != nil {
		// Waiter canceled or orphaned (see flight.go); compute directly —
		// this path already holds a compute slot.
		s.computed.Inc()
		return core.CharacterizeCtx(ctx, env), false
	}
	return p, outcome != outcomeMiss
}

// handleCharacterize serves POST /v1/characterize.
func (s *Server) handleCharacterize(w http.ResponseWriter, r *http.Request) {
	sp := obs.StartSpan(r.Context(), "decode")
	env, err := s.readEnv(w, r)
	sp.End()
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid_request", err.Error())
		return
	}
	// Cache lookup happens before admission: a hit costs one hash of the
	// request matrix and skips the queue entirely, so a warmed working set
	// stays fast even when the compute pool is saturated.
	sp = obs.StartSpan(r.Context(), "cache_lookup")
	key := keyOf(env)
	p, hit := s.cache.Get(key)
	sp.End()
	if hit {
		dto := ProfileToDTO(p, true)
		dto.Version = APIVersion
		dto.Timings = s.timingsFor(r)
		s.writeJSON(w, http.StatusOK, dto)
		return
	}
	sp = obs.StartSpan(r.Context(), "queue_wait")
	release, ok := s.admit(w, r)
	sp.End()
	if !ok {
		return
	}
	defer release()
	if err := r.Context().Err(); err != nil {
		writeError(w, http.StatusGatewayTimeout, "timeout", "request deadline expired")
		return
	}
	// The coalescing layer re-checks the cache (another request may have
	// filled it while this one queued) and guarantees that concurrent misses
	// on the same key run exactly one computation; waiters block here until
	// the leader publishes.
	sp = obs.StartSpan(r.Context(), "compute")
	p, outcome, err := s.characterizeCoalesced(r.Context(), key, env)
	sp.End()
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			writeError(w, http.StatusGatewayTimeout, "timeout", "request deadline expired")
		} else {
			writeError(w, http.StatusInternalServerError, "internal", err.Error())
		}
		return
	}
	dto := ProfileToDTO(p, outcome != outcomeMiss)
	dto.Version = APIVersion
	dto.Timings = s.timingsFor(r)
	s.writeJSON(w, http.StatusOK, dto)
}

// handleBatch serves POST /v1/characterize/batch. The request holds one
// admission slot; identical environments within the request are deduplicated
// by content key before the remaining unique misses fan out over the bounded
// parallel pool, so canceling the request (timeout, client disconnect) stops
// the remaining items.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	sp := obs.StartSpan(r.Context(), "decode")
	var req batchRequest
	err := s.decodeJSON(w, r, &req)
	sp.End()
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid_request", err.Error())
		return
	}
	if len(req.Envs) == 0 {
		writeError(w, http.StatusBadRequest, "invalid_request", "envs must be non-empty")
		return
	}
	if len(req.Envs) > s.cfg.MaxBatchEnvs {
		writeError(w, http.StatusBadRequest, "invalid_request",
			fmt.Sprintf("batch of %d exceeds the %d-environment limit", len(req.Envs), s.cfg.MaxBatchEnvs))
		return
	}

	// Decode and cache-check every item, then deduplicate the remaining
	// misses by content key: a batch that asks for the same environment
	// twenty times (sweep tooling does) computes it once and shares the
	// profile across the duplicates, which count under coalesced.
	sp = obs.StartSpan(r.Context(), "cache_lookup")
	items := make([]batchItem, len(req.Envs))
	keys := make([]cacheKey, len(req.Envs))
	envs := make([]*etcmat.Env, len(req.Envs)) // nil = cached or invalid
	firstOf := make(map[cacheKey]int)          // key -> first index needing compute
	dupOf := make([]int, len(req.Envs))        // index -> first index, or -1
	var uniq []int                             // first indices, in order
	for i := range req.Envs {
		dupOf[i] = -1
		env, err := req.Envs[i].Env()
		if err != nil {
			items[i].Error = err.Error()
			continue
		}
		keys[i] = keyOf(env)
		if p, ok := s.cache.Get(keys[i]); ok {
			items[i].Profile = ProfileToDTO(p, true)
			continue
		}
		if first, ok := firstOf[keys[i]]; ok {
			dupOf[i] = first
			s.coalesced.Inc()
			continue
		}
		firstOf[keys[i]] = i
		envs[i] = env
		uniq = append(uniq, i)
	}
	sp.End()

	sp = obs.StartSpan(r.Context(), "queue_wait")
	release, ok := s.admit(w, r)
	sp.End()
	if !ok {
		return
	}
	defer release()
	// Fan the unique misses out on the bounded pool, each through the
	// coalescing layer so identical environments across concurrent batch (or
	// characterize) requests also share one computation.
	sp = obs.StartSpan(r.Context(), "compute")
	profiles, err := parallel.Map(r.Context(), len(uniq), s.cfg.Workers,
		func(ctx context.Context, u int) (*core.Profile, error) {
			i := uniq[u]
			p, _, err := s.characterizeCoalesced(ctx, keys[i], envs[i])
			return p, err
		})
	sp.End()
	if err != nil {
		writeError(w, http.StatusGatewayTimeout, "timeout",
			"request deadline expired mid-batch: "+err.Error())
		return
	}
	for u, p := range profiles {
		if p == nil {
			continue
		}
		items[uniq[u]].Profile = ProfileToDTO(p, false)
	}
	for i, first := range dupOf {
		if first >= 0 {
			items[i].Profile = items[first].Profile
		}
	}
	s.writeJSON(w, http.StatusOK, batchResponse{
		Version:  APIVersion,
		Profiles: items,
		Timings:  s.timingsFor(r),
	})
}

// handleGenerate serves POST /v1/generate through the gen.Spec sum type —
// the same single entry point the library facade exposes.
func (s *Server) handleGenerate(w http.ResponseWriter, r *http.Request) {
	sp := obs.StartSpan(r.Context(), "decode")
	var req generateRequest
	err := s.decodeJSON(w, r, &req)
	sp.End()
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid_request", err.Error())
		return
	}
	var spec gen.Spec
	switch req.Kind {
	case gen.KindRange:
		spec = gen.RangeSpec(req.Tasks, req.Machines, req.RTask, req.RMach)
	case gen.KindCVB:
		spec = gen.CVBSpec(req.Tasks, req.Machines, req.VTask, req.VMach, req.MuTask)
	case gen.KindTargeted:
		spec = gen.TargetedSpec(gen.Target{
			Tasks: req.Tasks, Machines: req.Machines,
			MPH: req.MPH, TDH: req.TDH, TMA: req.TMA, Tol: req.Tol,
		})
	default:
		writeError(w, http.StatusBadRequest, "invalid_request",
			fmt.Sprintf("kind must be %q, %q or %q, got %q",
				gen.KindRange, gen.KindCVB, gen.KindTargeted, req.Kind))
		return
	}
	sp = obs.StartSpan(r.Context(), "queue_wait")
	release, ok := s.admit(w, r)
	sp.End()
	if !ok {
		return
	}
	defer release()
	sp = obs.StartSpan(r.Context(), "compute")
	g, err := gen.Generate(spec, rand.New(rand.NewSource(req.Seed)))
	if err != nil {
		sp.End()
		writeError(w, http.StatusBadRequest, "invalid_request", err.Error())
		return
	}
	// Seed the result cache: a generate-then-characterize flow (common in
	// sweep tooling) hits on the second call. The Env memoizes its standard
	// form, so this recharacterization costs sums, not a second SVD.
	p, cached := s.characterizeCached(r.Context(), g.Env)
	sp.End()
	var mix *float64
	if spec.Kind() == gen.KindTargeted {
		mix = &g.Mix
	}
	s.writeJSON(w, http.StatusOK, generateResponse{
		Version: APIVersion,
		Env:     EnvToDTO(g.Env),
		Profile: ProfileToDTO(p, cached),
		Mix:     mix,
		Timings: s.timingsFor(r),
	})
}

// handleWhatif serves POST /v1/whatif: the paper's leave-one-out what-if
// study (measure deltas from removing each task type and machine in turn).
func (s *Server) handleWhatif(w http.ResponseWriter, r *http.Request) {
	sp := obs.StartSpan(r.Context(), "decode")
	var req whatifRequest
	err := s.decodeJSON(w, r, &req)
	sp.End()
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid_request", err.Error())
		return
	}
	env, err := req.Env()
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid_request", err.Error())
		return
	}
	sp = obs.StartSpan(r.Context(), "queue_wait")
	release, ok := s.admit(w, r)
	sp.End()
	if !ok {
		return
	}
	defer release()
	if err := r.Context().Err(); err != nil {
		writeError(w, http.StatusGatewayTimeout, "timeout", "request deadline expired")
		return
	}
	// LeaveOneOutCtx warm-starts every removal solve from the baseline's
	// converged Sinkhorn scalings; each delta reports its (much smaller)
	// iteration count next to the baseline's.
	sp = obs.StartSpan(r.Context(), "compute")
	baseline, deltas := core.LeaveOneOutCtx(r.Context(), env)
	sp.End()
	resp := whatifResponse{Version: APIVersion, Baseline: ProfileToDTO(baseline, false)}
	resp.Deltas = make([]deltaDTO, len(deltas))
	for i, d := range deltas {
		resp.Deltas[i] = deltaToDTO(d)
	}
	resp.Timings = s.timingsFor(r)
	s.writeJSON(w, http.StatusOK, resp)
}

// handleHealthz serves GET /healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]any{
		"status":        "ok",
		"uptimeSeconds": time.Since(s.start).Seconds(),
		"inflight":      s.adm.Active(),
		"queued":        s.adm.QueueDepth(),
		"cacheEntries":  s.cache.Len(),
		"workers":       s.cfg.Workers,
		"goVersion":     runtime.Version(),
	})
}

// handleMetrics serves GET /metrics in the Prometheus text format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if _, err := s.metrics.WriteTo(w); err != nil {
		s.log.Error("writing metrics", "err", err)
	}
}
