package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"mime"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/etcmat"
	"repro/internal/gen"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/wire"
)

// writeJSON renders v with the standard headers; encoding failures are
// logged, not retried (the status line is already gone).
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.log.Error("encoding response", "err", err)
	}
}

// writeError renders the uniform error envelope. Errors are always JSON,
// whatever wire form the request negotiated.
func writeError(w http.ResponseWriter, status int, code, message string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(apiError{Version: APIVersion, Error: apiErrorBody{Code: code, Message: message}})
}

// writeDecodeError maps a request-decoding failure: a body over the byte cap
// (measured after any decompression) is its own condition — 413 with the
// stable code body_too_large — an unimplemented Content-Encoding is 415, and
// everything else is a 400 invalid_request.
func writeDecodeError(w http.ResponseWriter, err error) {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		writeError(w, http.StatusRequestEntityTooLarge, codeBodyTooLarge,
			fmt.Sprintf("body exceeds %d bytes", tooLarge.Limit))
		return
	}
	var badEnc *unsupportedEncodingError
	if errors.As(err, &badEnc) {
		writeError(w, http.StatusUnsupportedMediaType, codeUnsupportedEncoding, badEnc.Error())
		return
	}
	writeError(w, http.StatusBadRequest, codeInvalidRequest, err.Error())
}

// decodeJSON reads a size-capped JSON body into v via encoding/json — the
// path for small fixed-shape requests (generate). Environment-carrying
// bodies go through readEnvPayload instead.
func (s *Server) decodeJSON(w http.ResponseWriter, r *http.Request, v any) error {
	body, cleanup, err := s.requestBody(w, r)
	if err != nil {
		return err
	}
	defer cleanup()
	dec := json.NewDecoder(body)
	if err := dec.Decode(v); err != nil {
		return err
	}
	// Trailing garbage after the JSON value is a malformed request, not a
	// second message.
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		return errors.New("unexpected data after JSON body")
	}
	return nil
}

// readBody drains the request body into a pooled buffer under the configured
// byte cap, inflating a gzip-encoded body transparently (the cap measures
// decompressed bytes). An exceeded cap surfaces as *http.MaxBytesError for
// writeDecodeError to map to 413. putBody recycles the buffer; the caller
// must not retain the slice past it.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) (body []byte, putBody func(), err error) {
	rc, cleanup, err := s.requestBody(w, r)
	if err != nil {
		return nil, nil, err
	}
	defer cleanup()
	bp := bodyPool.Get().(*[]byte)
	buf := (*bp)[:0]
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := rc.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			*bp = buf
			return buf, func() { bodyPool.Put(bp) }, nil
		}
		if err != nil {
			*bp = buf
			bodyPool.Put(bp)
			return nil, nil, err
		}
	}
}

// mediaType extracts the bare media type of a request's Content-Type.
func mediaType(r *http.Request) string {
	mt, _, err := mime.ParseMediaType(r.Header.Get("Content-Type"))
	if err != nil {
		return ""
	}
	return mt
}

// acceptsBinary reports whether the request's Accept header asks for the
// given binary content type.
func acceptsBinary(r *http.Request, contentType string) bool {
	accept := r.Header.Get("Accept")
	if accept == "" {
		return false
	}
	for _, part := range strings.Split(accept, ",") {
		if mt, _, err := mime.ParseMediaType(strings.TrimSpace(part)); err == nil && mt == contentType {
			return true
		}
	}
	return false
}

// readEnvPayload reads and decodes the environment body of a characterize or
// whatif request — binary matrix frame, CSV, or streaming JSON by content
// type. On success the payload's content key is set and the caller owns
// release; on error nothing is retained and the error maps through
// writeDecodeError.
func (s *Server) readEnvPayload(w http.ResponseWriter, r *http.Request) (p *envPayload, release func(), err error) {
	body, putBody, err := s.readBody(w, r)
	if err != nil {
		return nil, nil, err
	}
	p = acquirePayload()
	release = func() {
		releasePayload(p)
		putBody()
	}
	switch mediaType(r) {
	case wire.ContentTypeMatrix:
		err = p.parseBinaryEnv(body)
	case "text/csv", "text/plain":
		var env *etcmat.Env
		if env, err = etcmat.ReadETCCSV(bytes.NewReader(body)); err == nil {
			p.csvEnv = env
			p.key = env.ContentKey()
		}
	default:
		err = p.parseJSONEnv(body)
	}
	if err != nil {
		release()
		return nil, nil, err
	}
	return p, release, nil
}

// admit claims a compute slot for the request, translating the failure
// modes to HTTP. It reports whether the caller may proceed; on false the
// response has been written.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) (release func(), ok bool) {
	release, err := s.adm.Enter(r.Context())
	switch {
	case err == nil:
		return release, true
	case errors.Is(err, ErrOverloaded):
		retry := s.adm.RetryAfter(100 * time.Millisecond)
		w.Header().Set("Retry-After", strconv.Itoa(int(retry.Round(time.Second)/time.Second)))
		writeError(w, http.StatusTooManyRequests, codeOverloaded,
			"server at capacity; retry after the indicated delay")
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, codeTimeout,
			"request deadline expired while queued for a compute slot")
	default: // context.Canceled — client went away; the write is moot.
		writeError(w, http.StatusServiceUnavailable, codeCanceled, "request canceled")
	}
	return nil, false
}

// computeCtx attaches the server's worker budget to a compute-stage context:
// the spectral pipeline under CharacterizeCtx fans its Gram and Householder
// stages out over this many goroutines once an environment crosses the
// parallel size threshold (see linalg.SingularValuesCtx). Small environments
// keep the serial allocation-free path; results are bit-identical either way.
func (s *Server) computeCtx(ctx context.Context) context.Context {
	return parallel.WithWorkers(ctx, s.cfg.Workers)
}

// releaseEnv recycles a request-owned environment's matrix buffers once its
// profile has been computed (profiles never alias Env storage). nil is a
// convenient no-op: cache hits never materialize an Env.
func releaseEnv(env *etcmat.Env) {
	if env != nil {
		env.ReleaseBuffers()
	}
}

// characterizeCached computes (or recalls) the profile of an environment
// through the content-addressed cache and the coalescing layer. The returned
// bool reports whether the profile came from the cache or an in-flight
// computation rather than a fresh one.
func (s *Server) characterizeCached(ctx context.Context, env *etcmat.Env) (*core.Profile, bool) {
	p, outcome, err := s.characterizeCoalesced(ctx, keyOf(env), env)
	if err != nil {
		// Waiter canceled or orphaned (see flight.go); compute directly —
		// this path already holds a compute slot.
		s.computed.Inc()
		return core.CharacterizeCtx(ctx, env), false
	}
	return p, outcome != outcomeMiss
}

// profileToWire maps a computed profile onto the binary frame's fields.
func profileToWire(p *core.Profile, cached bool) *wire.Profile {
	wp := &wire.Profile{
		Tasks: p.Tasks, Machines: p.Machines,
		MPH: p.MPH, TDH: p.TDH,
		RatioR: p.RatioR, GeoMeanG: p.GeoMeanG, COV: p.COV,
		SinkhornIterations: p.SinkhornIterations, Trimmed: p.Trimmed,
		Cached:      cached,
		MachinePerf: p.MachinePerf, TaskDiff: p.TaskDiff,
	}
	if p.TMAErr == nil && !math.IsNaN(p.TMA) && !math.IsInf(p.TMA, 0) {
		wp.TMA, wp.TMAValid = p.TMA, true
	}
	return wp
}

// writeBinary sends an encoded frame buffer with the given content type.
func (s *Server) writeBinary(w http.ResponseWriter, contentType string, buf []byte) {
	w.Header().Set("Content-Type", contentType)
	w.Header().Set("Content-Length", strconv.Itoa(len(buf)))
	w.WriteHeader(http.StatusOK)
	if _, err := w.Write(buf); err != nil {
		s.log.Error("writing binary response", "err", err)
	}
}

// writeProfile renders a characterize result: the binary profile frame when
// the client's Accept asks for it, the JSON envelope otherwise.
func (s *Server) writeProfile(w http.ResponseWriter, r *http.Request, p *core.Profile, cached bool) {
	if acceptsBinary(r, wire.ContentTypeProfile) {
		buf, err := wire.AppendProfile(nil, profileToWire(p, cached))
		if err != nil {
			writeError(w, http.StatusInternalServerError, codeInternal, err.Error())
			return
		}
		s.writeBinary(w, wire.ContentTypeProfile, buf)
		return
	}
	dto := ProfileToDTO(p, cached)
	dto.Version = APIVersion
	dto.Timings = s.timingsFor(r)
	s.writeJSON(w, http.StatusOK, dto)
}

// handleCharacterize serves POST /v1/characterize. The decode stage streams
// the body once, hashing as it parses; a warm request never materializes an
// Env at all — the content key is ready the moment the scan ends, and only a
// cache miss pays for validation and the matrix clone.
func (s *Server) handleCharacterize(w http.ResponseWriter, r *http.Request) {
	sp := obs.StartSpan(r.Context(), "decode")
	payload, release, err := s.readEnvPayload(w, r)
	sp.End()
	if err != nil {
		writeDecodeError(w, err)
		return
	}
	defer release()
	// Cache lookup happens before admission: a hit costs one body scan and
	// skips the queue entirely, so a warmed working set stays fast even when
	// the compute pool is saturated.
	sp = obs.StartSpan(r.Context(), "cache_lookup")
	key := payload.key
	p, hit := s.cache.Get(key)
	// In cluster mode a non-owned key routes to its owner instead of being
	// materialized and computed here; see the forward block below.
	forward := !hit && s.shouldForward(r, key)
	var env *etcmat.Env
	if !hit && !forward {
		env, err = payload.env()
	}
	sp.End()
	if err != nil {
		writeError(w, http.StatusBadRequest, codeInvalidRequest, err.Error())
		return
	}
	if hit {
		s.writeProfile(w, r, p, true)
		return
	}
	if forward {
		// The forward is IO-bound: it holds no compute slot and skips env
		// materialization entirely. A failed forward (owner down, no live
		// replica) falls through to the local path — availability over
		// placement — with ordinary miss accounting.
		sp = obs.StartSpan(r.Context(), "forward")
		fp, peerCached := s.forwardProfile(r, key, payload, requestIDOf(r))
		sp.End()
		if fp != nil {
			s.writeProfile(w, r, fp, peerCached)
			return
		}
		if env, err = payload.env(); err != nil {
			writeError(w, http.StatusBadRequest, codeInvalidRequest, err.Error())
			return
		}
	}
	sp = obs.StartSpan(r.Context(), "queue_wait")
	release2, ok := s.admit(w, r)
	sp.End()
	if !ok {
		return
	}
	defer release2()
	if err := r.Context().Err(); err != nil {
		writeError(w, http.StatusGatewayTimeout, codeTimeout, "request deadline expired")
		return
	}
	// The coalescing layer re-checks the cache (another request may have
	// filled it while this one queued) and guarantees that concurrent misses
	// on the same key run exactly one computation; waiters block here until
	// the leader publishes.
	sp = obs.StartSpan(r.Context(), "compute")
	p, outcome, err := s.characterizeCoalesced(s.computeCtx(r.Context()), key, env)
	sp.End()
	// The coalescing leader runs synchronously in this goroutine, so by now
	// nothing references the decoded environment; recycle its buffers.
	releaseEnv(env)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			writeError(w, http.StatusGatewayTimeout, codeTimeout, "request deadline expired")
		} else {
			writeError(w, http.StatusInternalServerError, codeInternal, err.Error())
		}
		return
	}
	s.writeProfile(w, r, p, outcome != outcomeMiss)
}

// handleBatch serves POST /v1/characterize/batch. The request holds one
// admission slot; the body streams item by item through one reused payload
// (JSON object array or concatenated binary frames), then identical
// environments are deduplicated by content key before the remaining unique
// misses fan out over the bounded parallel pool, so canceling the request
// (timeout, client disconnect) stops the remaining items.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	sp := obs.StartSpan(r.Context(), "decode")
	body, putBody, err := s.readBody(w, r)
	if err != nil {
		sp.End()
		writeDecodeError(w, err)
		return
	}
	defer putBody()
	payload := acquirePayload()
	defer releasePayload(payload)

	var (
		items []batchItem
		keys  []cacheKey
		envs  []*etcmat.Env // nil = invalid (materialized lazily below for cached items too, matching the old per-item Env() cost)
		total int
	)
	collect := func(itemErr error) {
		total++
		if total > s.cfg.MaxBatchEnvs {
			return // keep scanning for the true count; the request 400s below
		}
		var item batchItem
		var key cacheKey
		var env *etcmat.Env
		if itemErr == nil {
			key = payload.key
			env, itemErr = payload.env()
		}
		if itemErr != nil {
			item.Error = &apiErrorBody{Code: codeInvalidRequest, Message: itemErr.Error()}
		}
		items = append(items, item)
		keys = append(keys, key)
		envs = append(envs, env)
	}
	if mediaType(r) == wire.ContentTypeMatrix {
		err = scanBinaryBatch(body, payload, collect)
	} else {
		err = scanJSONBatch(body, payload, collect)
	}
	sp.End()
	if err != nil {
		writeDecodeError(w, err)
		return
	}
	if total == 0 {
		writeError(w, http.StatusBadRequest, codeInvalidRequest, "envs must be non-empty")
		return
	}
	if total > s.cfg.MaxBatchEnvs {
		writeError(w, http.StatusBadRequest, codeInvalidRequest,
			fmt.Sprintf("batch of %d exceeds the %d-environment limit", total, s.cfg.MaxBatchEnvs))
		return
	}

	// Cache-check every item, then deduplicate the remaining misses by
	// content key: a batch that asks for the same environment twenty times
	// (sweep tooling does) computes it once and shares the profile across
	// the duplicates, which count under coalesced.
	sp = obs.StartSpan(r.Context(), "cache_lookup")
	firstOf := make(map[cacheKey]int) // key -> first index needing compute
	dupOf := make([]int, len(items))  // index -> first index, or -1
	var uniq []int                    // first indices, in order
	for i := range items {
		dupOf[i] = -1
		if items[i].Error != nil {
			continue
		}
		if p, ok := s.cache.Get(keys[i]); ok {
			items[i].Profile = ProfileToDTO(p, true)
			releaseEnv(envs[i])
			envs[i] = nil
			continue
		}
		if first, ok := firstOf[keys[i]]; ok {
			dupOf[i] = first
			releaseEnv(envs[i])
			envs[i] = nil
			s.coalesced.Inc()
			continue
		}
		firstOf[keys[i]] = i
		uniq = append(uniq, i)
	}
	sp.End()

	sp = obs.StartSpan(r.Context(), "queue_wait")
	release, ok := s.admit(w, r)
	sp.End()
	if !ok {
		return
	}
	defer release()
	// Fan the unique misses out on the bounded pool, each through the
	// coalescing layer so identical environments across concurrent batch (or
	// characterize) requests also share one computation.
	sp = obs.StartSpan(r.Context(), "compute")
	profiles, err := parallel.Map(s.computeCtx(r.Context()), len(uniq), s.cfg.Workers,
		func(ctx context.Context, u int) (*core.Profile, error) {
			i := uniq[u]
			p, _, err := s.characterizeCoalesced(ctx, keys[i], envs[i])
			releaseEnv(envs[i])
			envs[i] = nil
			return p, err
		})
	sp.End()
	if err != nil {
		writeError(w, http.StatusGatewayTimeout, codeTimeout,
			"request deadline expired mid-batch: "+err.Error())
		return
	}
	for u, p := range profiles {
		if p == nil {
			continue
		}
		items[uniq[u]].Profile = ProfileToDTO(p, false)
	}
	for i, first := range dupOf {
		if first >= 0 {
			items[i].Profile = items[first].Profile
		}
	}
	s.writeJSON(w, http.StatusOK, batchResponse{
		Version:  APIVersion,
		Profiles: items,
		Timings:  s.timingsFor(r),
	})
}

// handleGenerate serves POST /v1/generate through the gen.Spec sum type —
// the same single entry point the library facade exposes.
func (s *Server) handleGenerate(w http.ResponseWriter, r *http.Request) {
	sp := obs.StartSpan(r.Context(), "decode")
	var req generateRequest
	err := s.decodeJSON(w, r, &req)
	sp.End()
	if err != nil {
		writeDecodeError(w, err)
		return
	}
	var spec gen.Spec
	switch req.Kind {
	case gen.KindRange:
		spec = gen.RangeSpec(req.Tasks, req.Machines, req.RTask, req.RMach)
	case gen.KindCVB:
		spec = gen.CVBSpec(req.Tasks, req.Machines, req.VTask, req.VMach, req.MuTask)
	case gen.KindTargeted:
		spec = gen.TargetedSpec(gen.Target{
			Tasks: req.Tasks, Machines: req.Machines,
			MPH: req.MPH, TDH: req.TDH, TMA: req.TMA, Tol: req.Tol,
		})
	default:
		writeError(w, http.StatusBadRequest, codeInvalidRequest,
			fmt.Sprintf("kind must be %q, %q or %q, got %q",
				gen.KindRange, gen.KindCVB, gen.KindTargeted, req.Kind))
		return
	}
	sp = obs.StartSpan(r.Context(), "queue_wait")
	release, ok := s.admit(w, r)
	sp.End()
	if !ok {
		return
	}
	defer release()
	sp = obs.StartSpan(r.Context(), "compute")
	g, err := gen.Generate(spec, rand.New(rand.NewSource(req.Seed)))
	if err != nil {
		sp.End()
		writeError(w, http.StatusBadRequest, codeInvalidRequest, err.Error())
		return
	}
	// Seed the result cache: a generate-then-characterize flow (common in
	// sweep tooling) hits on the second call. The Env memoizes its standard
	// form, so this recharacterization costs sums, not a second SVD.
	p, cached := s.characterizeCached(s.computeCtx(r.Context()), g.Env)
	sp.End()
	defer releaseEnv(g.Env)
	// Binary echo: Accept: application/x-hc-matrix returns the generated ETC
	// as a matrix frame followed by the profile frame, so sweep tooling can
	// replay the environment through the binary ingestion path byte-exactly.
	if acceptsBinary(r, wire.ContentTypeMatrix) {
		buf, err := wire.AppendMatrix(nil, g.Env.ETC())
		if err == nil {
			buf, err = wire.AppendProfile(buf, profileToWire(p, cached))
		}
		if err != nil {
			writeError(w, http.StatusInternalServerError, codeInternal, err.Error())
			return
		}
		if spec.Kind() == gen.KindTargeted {
			w.Header().Set("X-HC-Mix", strconv.FormatFloat(g.Mix, 'g', -1, 64))
		}
		s.writeBinary(w, wire.ContentTypeMatrix, buf)
		return
	}
	var mix *float64
	if spec.Kind() == gen.KindTargeted {
		mix = &g.Mix
	}
	s.writeJSON(w, http.StatusOK, generateResponse{
		Version: APIVersion,
		Env:     EnvToDTO(g.Env),
		Profile: ProfileToDTO(p, cached),
		Mix:     mix,
		Timings: s.timingsFor(r),
	})
}

// handleWhatif serves POST /v1/whatif: the paper's leave-one-out what-if
// study (measure deltas from removing each task type and machine in turn).
func (s *Server) handleWhatif(w http.ResponseWriter, r *http.Request) {
	sp := obs.StartSpan(r.Context(), "decode")
	payload, release, err := s.readEnvPayload(w, r)
	sp.End()
	if err != nil {
		writeDecodeError(w, err)
		return
	}
	env, err := payload.env()
	release()
	if err != nil {
		writeError(w, http.StatusBadRequest, codeInvalidRequest, err.Error())
		return
	}
	sp = obs.StartSpan(r.Context(), "queue_wait")
	release2, ok := s.admit(w, r)
	sp.End()
	if !ok {
		return
	}
	defer release2()
	if err := r.Context().Err(); err != nil {
		writeError(w, http.StatusGatewayTimeout, codeTimeout, "request deadline expired")
		return
	}
	// LeaveOneOutCtx warm-starts every removal solve from the baseline's
	// converged Sinkhorn scalings; each delta reports its (much smaller)
	// iteration count next to the baseline's.
	sp = obs.StartSpan(r.Context(), "compute")
	baseline, deltas := core.LeaveOneOutCtx(s.computeCtx(r.Context()), env)
	sp.End()
	releaseEnv(env)
	resp := whatifResponse{Version: APIVersion, Baseline: ProfileToDTO(baseline, false)}
	resp.Deltas = make([]deltaDTO, len(deltas))
	for i, d := range deltas {
		resp.Deltas[i] = deltaToDTO(d)
	}
	resp.Timings = s.timingsFor(r)
	s.writeJSON(w, http.StatusOK, resp)
}

// handleHealthz serves GET /healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := map[string]any{
		"status":        "ok",
		"uptimeSeconds": time.Since(s.start).Seconds(),
		"inflight":      s.adm.Active(),
		"queued":        s.adm.QueueDepth(),
		"cacheEntries":  s.cache.Len(),
		"workers":       s.cfg.Workers,
		"goVersion":     runtime.Version(),
	}
	if s.router != nil {
		resp["cluster"] = map[string]any{
			"self":       s.router.Self(),
			"peersAlive": s.router.AliveCount(),
			"ringNodes":  s.router.Ring().Len(),
		}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// handleMetrics serves GET /metrics in the Prometheus text format. In
// cluster mode, ?cluster=1 answers with the cluster-wide view instead: the
// local exposition merged with every alive peer's, samples summed by series.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if s.router != nil && r.URL.Query().Get("cluster") == "1" {
		if err := s.clusterMetrics(r.Context(), w); err != nil {
			s.log.Error("writing cluster metrics", "err", err)
		}
		return
	}
	if _, err := s.metrics.WriteTo(w); err != nil {
		s.log.Error("writing metrics", "err", err)
	}
}
