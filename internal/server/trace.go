package server

import (
	"crypto/rand"
	"encoding/hex"
	"net/http"
	"sync/atomic"

	"repro/internal/obs"
)

// This file wires the obs tracing layer into the serving tier: every request
// gets an ID and an obs.Trace (created in withObservability), handlers record
// the disjoint top-level stages — "decode", "cache_lookup", "queue_wait",
// "compute" — and the compute pipeline nests its own spans ("standardize",
// "gram", "eigensolve", "measures", per-item "task") inside "compute" via the
// request context. After the handler returns, the middleware feeds every span
// into the hcserved_stage_seconds histogram; when the client asked with
// ?trace=1, the same spans are echoed in the response's timings field.

// requestIDs hands out process-unique request identifiers: a random boot
// prefix (so IDs from restarted instances never collide in aggregated logs)
// plus an atomic sequence number.
type requestIDs struct {
	boot string
	seq  atomic.Uint64
}

func newRequestIDs() *requestIDs {
	var b [4]byte
	// crypto/rand never fails on supported platforms; a zero prefix is still
	// a valid (merely less unique) boot ID, so the error is ignorable.
	_, _ = rand.Read(b[:])
	return &requestIDs{boot: hex.EncodeToString(b[:])}
}

func (r *requestIDs) next() string {
	return r.boot + "-" + formatSeq(r.seq.Add(1))
}

// formatSeq renders the sequence number without fmt (this is on every
// request's path).
func formatSeq(n uint64) string {
	var buf [20]byte
	i := len(buf)
	for {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
		if n == 0 {
			return string(buf[i:])
		}
	}
}

// sanitizeRequestID vets a client-supplied request ID for adoption: at most
// 64 bytes of letters, digits, '.', '_' and '-'. Anything else returns ""
// and the server issues its own — the ID lands verbatim in structured logs
// and response headers, so the charset is the log-injection guard.
func sanitizeRequestID(id string) string {
	if id == "" || len(id) > 64 {
		return ""
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return ""
		}
	}
	return id
}

// requestIDOf returns the request's assigned ID (from its trace), "" when
// the observability middleware did not run (plain handler tests).
func requestIDOf(r *http.Request) string {
	if tr := obs.FromContext(r.Context()); tr != nil {
		return tr.ID()
	}
	return ""
}

// traceRequested reports whether the client asked for the timings echo with
// ?trace=1 (or ?trace=true).
func traceRequested(r *http.Request) bool {
	v := r.URL.Query().Get("trace")
	return v == "1" || v == "true"
}

// StageTimingDTO is one span on the wire. StartMs is the offset from the
// request's trace anchor, so clients can reconstruct the stage layout
// (top-level stages are disjoint; pipeline stages nest inside "compute").
type StageTimingDTO struct {
	Stage   string  `json:"stage"`
	StartMs float64 `json:"startMs"`
	Ms      float64 `json:"ms"`
}

// TimingsDTO is the optional stage breakdown of a /v1/* response, present
// when the request carried ?trace=1. The top-level stages ("decode",
// "cache_lookup", "queue_wait", "compute") are disjoint and sum to
// approximately totalMs; the remaining spans are nested pipeline detail.
type TimingsDTO struct {
	RequestID string           `json:"requestId"`
	TotalMs   float64          `json:"totalMs"`
	Stages    []StageTimingDTO `json:"stages"`
}

// timingsFor builds the timings echo for a request, or nil when the client
// did not ask for one. Call it last in the handler, after the final stage
// span has ended, so TotalMs covers everything but the response encoding.
func (s *Server) timingsFor(r *http.Request) *TimingsDTO {
	if !traceRequested(r) {
		return nil
	}
	tr := obs.FromContext(r.Context())
	if tr == nil {
		return nil
	}
	spans := tr.Spans()
	d := &TimingsDTO{
		RequestID: tr.ID(),
		TotalMs:   tr.Elapsed().Seconds() * 1e3,
		Stages:    make([]StageTimingDTO, len(spans)),
	}
	for i, sp := range spans {
		d.Stages[i] = StageTimingDTO{
			Stage:   sp.Name,
			StartMs: sp.Start.Seconds() * 1e3,
			Ms:      sp.Dur.Seconds() * 1e3,
		}
	}
	return d
}
