package server

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"unicode"
	"unicode/utf16"
	"unicode/utf8"
	"unsafe"

	"repro/internal/etcmat"
	"repro/internal/matrix"
	"repro/internal/wire"
)

// This file is the zero-copy ingestion path (DESIGN.md §13). Environment
// request bodies — by far the largest payloads the server sees — are decoded
// by a hand-rolled streaming scanner instead of encoding/json: matrix cells
// are tokenized straight out of the body buffer into a pooled []float64 with
// no [][]ETCValue materialization, and every cell is fed to a ContentHasher
// as it is parsed, so by the time the body is scanned the cache key is
// already known. A warm request therefore touches each body byte once and
// allocates nothing proportional to the matrix.

// Pools for the per-request ingestion state. Package-level because payloads
// flow through free functions; all three recycle across requests and shrink
// nothing (capacity is retained, bounded by MaxBodyBytes).
var (
	bodyPool = sync.Pool{New: func() any {
		b := make([]byte, 0, 64<<10)
		return &b
	}}
	payloadPool = sync.Pool{New: func() any {
		return &envPayload{hasher: etcmat.NewContentHasher()}
	}}
)

// envPayload is the decoded-but-not-materialized form of one environment
// request: the ECS cells in a pooled row-major buffer, the optional names and
// weights, and the content key computed during the scan. Materializing an
// *etcmat.Env (which clones the cells) is deferred to env(), so a cache hit
// never pays for it.
type envPayload struct {
	rows, cols int
	cells      []float64 // ECS values, row-major; pooled across requests

	etcSet, ecsSet, csvSet bool
	csv                    string
	taskNames              []string
	machineNames           []string
	taskWeights            []float64
	machineWeights         []float64

	// twBuf/mwBuf back taskWeights/machineWeights on the binary env-frame
	// path (the hot cluster-forward decode): capacity pools across requests
	// like cells. Safe to reuse because every consumer of the weight slices
	// copies — etcmat.WithWeights clones its inputs and envFrameBody only
	// reads. The JSON path still allocates its vectors (readFloatArray).
	twBuf, mwBuf []float64

	// semErr is the first semantic error (value constraint, ragged row) hit
	// during the scan. It does not stop tokenization — batch items must stay
	// in sync — but finalize surfaces it and the payload is never used.
	semErr error

	key    cacheKey
	csvEnv *etcmat.Env // set when the body carried a CSV form
	hasher *etcmat.ContentHasher
}

func acquirePayload() *envPayload {
	p := payloadPool.Get().(*envPayload)
	p.reset()
	return p
}

func releasePayload(p *envPayload) {
	// Drop request-lifetime references so the pool does not pin them; cells
	// capacity and the hasher are the point of pooling and stay.
	p.reset()
	payloadPool.Put(p)
}

// reset clears the payload for the next environment (the batch scanner calls
// it once per item, reusing one cells buffer for the whole batch).
func (p *envPayload) reset() {
	p.rows, p.cols = 0, 0
	p.cells = p.cells[:0]
	p.etcSet, p.ecsSet, p.csvSet = false, false, false
	p.csv = ""
	p.taskNames, p.machineNames = nil, nil
	p.taskWeights, p.machineWeights = nil, nil
	p.semErr = nil
	p.key = cacheKey{}
	p.csvEnv = nil
	p.hasher.Reset()
}

// parseJSONEnv scans a whole characterize/whatif JSON body into p and
// finalizes it.
func (p *envPayload) parseJSONEnv(body []byte) error {
	s := &jsonScanner{data: body}
	if err := p.parseEnvObject(s); err != nil {
		return err
	}
	if err := s.trailingCheck(); err != nil {
		return err
	}
	return p.finalize()
}

// parseBinaryEnv decodes a whole application/x-hc-matrix body (exactly one
// frame) into p and finalizes it.
func (p *envPayload) parseBinaryEnv(body []byte) error {
	n, err := p.parseBinaryFrame(body)
	if err != nil {
		return err
	}
	if n != len(body) {
		return fmt.Errorf("unexpected %d trailing bytes after binary frame", len(body)-n)
	}
	return p.finalize()
}

// parseBinaryFrame decodes one environment frame, hashing each cell as it
// streams, and returns the bytes consumed so concatenated batch frames
// compose. Two kinds carry environments: a matrix frame with ETC semantics
// (+Inf entry = impossible pairing = ECS 0, each cell reciprocated), and an
// env frame carrying raw ECS cells plus both weight vectors — the form peer
// forwards use, because it round-trips bit-exactly and therefore reproduces
// the requester's content key (reciprocating ETC cells would not: 1/(1/x)
// is not bit-stable).
func (p *envPayload) parseBinaryFrame(data []byte) (int, error) {
	h, err := wire.ParseHeader(data)
	if err != nil {
		return 0, err
	}
	if h.Kind == wire.KindEnv {
		return p.parseEnvFrame(data)
	}
	if h.Kind != wire.KindMatrix {
		return 0, fmt.Errorf("frame kind %d is not a matrix", h.Kind)
	}
	p.rows, p.cols = h.Rows, h.Cols
	p.etcSet = true
	cells := h.Cells()
	if cap(p.cells) < cells {
		p.cells = make([]float64, 0, cells)
	}
	for k := 0; k < cells; k++ {
		v := wire.Cell(h.Payload, k)
		var ecs float64
		switch {
		case math.IsInf(v, 1):
			ecs = 0
		case math.IsNaN(v) || v <= 0:
			if p.semErr == nil {
				p.semErr = fmt.Errorf("%w: ETC(%d,%d) = %g must be positive or +Inf",
					etcmat.ErrInvalid, k/h.Cols, k%h.Cols, v)
			}
			continue
		default:
			ecs = 1 / v
		}
		if p.semErr == nil {
			p.hasher.WriteValue(ecs)
			p.cells = append(p.cells, ecs)
		}
	}
	return h.Size, nil
}

// parseEnvFrame decodes one KindEnv frame: ECS cells verbatim into the
// hasher and cell buffer, weight vectors attached explicitly. The encoder
// writes defaulted weights as literal 1s, which hash identically to the
// WriteOnes canonicalization of an absent vector, so the key computed here
// matches the one the forwarding node computed from the original request.
// The decode is in place — cells and weights land in the payload's pooled
// buffers, so the warm forwarded-request path allocates nothing (this is the
// hot decode of every cluster forward; wire.DecodeEnv would allocate three
// fresh slices per request).
func (p *envPayload) parseEnvFrame(data []byte) (int, error) {
	h, err := wire.ParseHeader(data)
	if err != nil {
		return 0, err
	}
	if h.Kind != wire.KindEnv {
		return 0, fmt.Errorf("frame kind %d is not an env", h.Kind)
	}
	p.rows, p.cols = h.Rows, h.Cols
	p.ecsSet = true
	cells := h.Cells()
	if cap(p.cells) < cells {
		p.cells = make([]float64, 0, cells)
	}
	for k := 0; k < cells; k++ {
		v := wire.Cell(h.Payload, k)
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return 0, fmt.Errorf("%w: ECS cell (%d,%d) = %g has no wire form",
				wire.ErrMalformed, k/p.cols, k%p.cols, v)
		}
		p.hasher.WriteValue(v)
		p.cells = append(p.cells, v)
	}
	p.twBuf = growFloats(p.twBuf, p.rows)
	for i := 0; i < p.rows; i++ {
		p.twBuf[i] = wire.Cell(h.Payload, cells+i)
	}
	p.mwBuf = growFloats(p.mwBuf, p.cols)
	for j := 0; j < p.cols; j++ {
		p.mwBuf[j] = wire.Cell(h.Payload, cells+p.rows+j)
	}
	p.taskWeights = p.twBuf
	p.machineWeights = p.mwBuf
	return h.Size, nil
}

// growFloats returns buf resized to n, reusing its capacity when possible.
func growFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// finalize validates the scanned structure and fixes the content key. It must
// run before any cache lookup: names are excluded from the hash, so a
// name-length mismatch has to be rejected here or a warm cache would mask it
// (everything that IS hashed — cells, weights, dims — can only ever hit a key
// that a previously validated environment produced).
func (p *envPayload) finalize() error {
	forms := 0
	if p.etcSet {
		forms++
	}
	if p.ecsSet {
		forms++
	}
	if p.csvSet {
		forms++
	}
	if forms != 1 {
		return fmt.Errorf("exactly one of etc, ecs or csv must be set (got %d)", forms)
	}
	if p.semErr != nil {
		return p.semErr
	}
	if p.csvSet {
		env, err := etcmat.ReadETCCSV(strings.NewReader(p.csv))
		if err != nil {
			return err
		}
		if env, err = applyNamesWeights(env, p.taskNames, p.machineNames, p.taskWeights, p.machineWeights); err != nil {
			return err
		}
		p.csvEnv = env
		p.key = env.ContentKey()
		return nil
	}
	if p.cols == 0 {
		return fmt.Errorf("%w: empty matrix", etcmat.ErrInvalid)
	}
	if p.taskNames != nil && len(p.taskNames) != p.rows {
		return fmt.Errorf("%w: %d task names for %d task types", etcmat.ErrInvalid, len(p.taskNames), p.rows)
	}
	if p.machineNames != nil && len(p.machineNames) != p.cols {
		return fmt.Errorf("%w: %d machine names for %d machines", etcmat.ErrInvalid, len(p.machineNames), p.cols)
	}
	// Weight vectors join the canonical stream after the cells (absent ones
	// hash as the unit weights they default to). A wrong-length or invalid
	// weight vector needs no pre-check: it perturbs the hash, so the lookup
	// misses and env() rejects it on the compute path.
	if p.taskWeights != nil {
		p.hasher.WriteValues(p.taskWeights)
	} else {
		p.hasher.WriteOnes(p.rows)
	}
	if p.machineWeights != nil {
		p.hasher.WriteValues(p.machineWeights)
	} else {
		p.hasher.WriteOnes(p.cols)
	}
	p.key = p.hasher.Sum(p.rows, p.cols)
	return nil
}

// env materializes the finalized payload. The cell buffer is copied once
// into a pool-backed matrix that the environment adopts outright
// (NewFromECSOwned), so the payload (and its pooled storage) is free to
// release as soon as this returns and the environment's own storage recycles
// through ReleaseBuffers instead of burdening the GC — the serving tier's
// requests at fleet scale carry multi-megabyte matrices.
func (p *envPayload) env() (*etcmat.Env, error) {
	if p.csvEnv != nil {
		return p.csvEnv, nil
	}
	cells := matrix.FromDataPooled(p.rows, p.cols, p.cells)
	env, err := etcmat.NewFromECSOwned(cells)
	if err != nil {
		matrix.Recycle(cells)
		return nil, err
	}
	out, err := applyNamesWeights(env, p.taskNames, p.machineNames, p.taskWeights, p.machineWeights)
	if err != nil {
		env.ReleaseBuffers()
		return nil, err
	}
	if out != env {
		// applyNamesWeights clones on edit; the intermediate goes back to the
		// pool rather than waiting for the GC.
		env.ReleaseBuffers()
	}
	return out, nil
}

// applyNamesWeights mirrors the tail of EnvDTO.Env — same order, same errors.
func applyNamesWeights(env *etcmat.Env, tn, mn []string, tw, mw []float64) (*etcmat.Env, error) {
	var err error
	if tn != nil {
		if env, err = env.WithTaskNames(tn); err != nil {
			return nil, err
		}
	}
	if mn != nil {
		if env, err = env.WithMachineNames(mn); err != nil {
			return nil, err
		}
	}
	if tw != nil || mw != nil {
		if env, err = env.WithWeights(tw, mw); err != nil {
			return nil, err
		}
	}
	return env, nil
}

// ---- the scanner ----

// jsonScanner is a minimal non-allocating JSON tokenizer over a fully
// buffered body. It is not a general validator — it accepts a superset of
// JSON numbers (anything strconv.ParseFloat takes from the number charset) —
// but every valid request body parses identically to encoding/json, with one
// deliberate divergence: a duplicate etc/ecs key is an error rather than
// last-wins, because the first matrix has already streamed through the
// hasher.
type jsonScanner struct {
	data []byte
	pos  int
}

func (s *jsonScanner) skipWS() {
	for s.pos < len(s.data) {
		switch s.data[s.pos] {
		case ' ', '\t', '\n', '\r':
			s.pos++
		default:
			return
		}
	}
}

func (s *jsonScanner) errf(format string, args ...any) error {
	return fmt.Errorf(format+" at byte %d", append(args, s.pos)...)
}

// expect consumes the next non-space byte, which must be c.
func (s *jsonScanner) expect(c byte) error {
	s.skipWS()
	if s.pos >= len(s.data) || s.data[s.pos] != c {
		return s.errf("expected %q", string(c))
	}
	s.pos++
	return nil
}

// delim consumes either of two structural bytes (e.g. ',' or ']'), returning
// the one found.
func (s *jsonScanner) delim(a, b byte) (byte, error) {
	s.skipWS()
	if s.pos < len(s.data) {
		if c := s.data[s.pos]; c == a || c == b {
			s.pos++
			return c, nil
		}
	}
	return 0, s.errf("expected %q or %q", string(a), string(b))
}

func (s *jsonScanner) trailingCheck() error {
	s.skipWS()
	if s.pos != len(s.data) {
		return errors.New("unexpected data after JSON body")
	}
	return nil
}

func isNumByte(c byte) bool {
	return c == '-' || c == '+' || c == '.' || c == 'e' || c == 'E' || (c >= '0' && c <= '9')
}

// readFloat tokenizes one number. The token is passed to ParseFloat through
// an unsafe no-copy string — sound because the token aliases the request
// body, which is immutable for the scan's lifetime.
func (s *jsonScanner) readFloat() (float64, error) {
	s.skipWS()
	start := s.pos
	for s.pos < len(s.data) && isNumByte(s.data[s.pos]) {
		s.pos++
	}
	if s.pos == start {
		return 0, s.errf("expected a number")
	}
	tok := s.data[start:s.pos]
	v, err := strconv.ParseFloat(unsafe.String(&tok[0], len(tok)), 64)
	if err != nil {
		return 0, fmt.Errorf("invalid number %q", tok)
	}
	return v, nil
}

// readStringBytes returns the content of the next string. Escape-free strings
// (every matrix "inf" cell, every realistic name) alias the body with no
// allocation; the escape path allocates and unescapes.
func (s *jsonScanner) readStringBytes() ([]byte, error) {
	s.skipWS()
	if s.pos >= len(s.data) || s.data[s.pos] != '"' {
		return nil, s.errf("expected a string")
	}
	s.pos++
	start := s.pos
	for s.pos < len(s.data) {
		switch c := s.data[s.pos]; {
		case c == '"':
			out := s.data[start:s.pos]
			s.pos++
			return out, nil
		case c == '\\':
			return s.readStringSlow(start)
		case c < 0x20:
			return nil, s.errf("control character in string")
		default:
			s.pos++
		}
	}
	return nil, errors.New("unterminated string")
}

// readStringSlow finishes a string that contains escapes, unescaping per RFC
// 8259 (invalid surrogate halves become U+FFFD, as encoding/json does).
func (s *jsonScanner) readStringSlow(start int) ([]byte, error) {
	out := append([]byte(nil), s.data[start:s.pos]...)
	for s.pos < len(s.data) {
		switch c := s.data[s.pos]; {
		case c == '"':
			s.pos++
			return out, nil
		case c == '\\':
			s.pos++
			if s.pos >= len(s.data) {
				return nil, errors.New("unterminated escape")
			}
			e := s.data[s.pos]
			s.pos++
			switch e {
			case '"', '\\', '/':
				out = append(out, e)
			case 'b':
				out = append(out, '\b')
			case 'f':
				out = append(out, '\f')
			case 'n':
				out = append(out, '\n')
			case 'r':
				out = append(out, '\r')
			case 't':
				out = append(out, '\t')
			case 'u':
				r, err := s.readHexRune()
				if err != nil {
					return nil, err
				}
				if utf16.IsSurrogate(r) {
					r2 := rune(unicode.ReplacementChar)
					if s.pos+6 <= len(s.data) && s.data[s.pos] == '\\' && s.data[s.pos+1] == 'u' {
						save := s.pos
						s.pos += 2
						lo, err := s.readHexRune()
						if err != nil {
							return nil, err
						}
						if dec := utf16.DecodeRune(r, lo); dec != unicode.ReplacementChar {
							r2 = dec
						} else {
							s.pos = save // second escape was not the low half
						}
					}
					r = r2
				}
				out = utf8.AppendRune(out, r)
			default:
				return nil, fmt.Errorf("invalid escape \\%s", string(e))
			}
		case c < 0x20:
			return nil, s.errf("control character in string")
		default:
			out = append(out, c)
			s.pos++
		}
	}
	return nil, errors.New("unterminated string")
}

func (s *jsonScanner) readHexRune() (rune, error) {
	if s.pos+4 > len(s.data) {
		return 0, errors.New("truncated \\u escape")
	}
	var r rune
	for i := 0; i < 4; i++ {
		c := s.data[s.pos+i]
		switch {
		case c >= '0' && c <= '9':
			r = r<<4 | rune(c-'0')
		case c >= 'a' && c <= 'f':
			r = r<<4 | rune(c-'a'+10)
		case c >= 'A' && c <= 'F':
			r = r<<4 | rune(c-'A'+10)
		default:
			return 0, errors.New("invalid \\u escape")
		}
	}
	s.pos += 4
	return r, nil
}

func (s *jsonScanner) literal(lit string) error {
	if s.pos+len(lit) > len(s.data) || string(s.data[s.pos:s.pos+len(lit)]) != lit {
		return s.errf("invalid literal")
	}
	s.pos += len(lit)
	return nil
}

// skipValue consumes one JSON value of any shape (unknown keys).
func (s *jsonScanner) skipValue() error {
	s.skipWS()
	if s.pos >= len(s.data) {
		return errors.New("unexpected end of body")
	}
	switch c := s.data[s.pos]; c {
	case '"':
		_, err := s.readStringBytes()
		return err
	case '{':
		s.pos++
		s.skipWS()
		if s.pos < len(s.data) && s.data[s.pos] == '}' {
			s.pos++
			return nil
		}
		for {
			if _, err := s.readStringBytes(); err != nil {
				return err
			}
			if err := s.expect(':'); err != nil {
				return err
			}
			if err := s.skipValue(); err != nil {
				return err
			}
			d, err := s.delim(',', '}')
			if err != nil {
				return err
			}
			if d == '}' {
				return nil
			}
		}
	case '[':
		s.pos++
		s.skipWS()
		if s.pos < len(s.data) && s.data[s.pos] == ']' {
			s.pos++
			return nil
		}
		for {
			if err := s.skipValue(); err != nil {
				return err
			}
			d, err := s.delim(',', ']')
			if err != nil {
				return err
			}
			if d == ']' {
				return nil
			}
		}
	case 't':
		return s.literal("true")
	case 'f':
		return s.literal("false")
	case 'n':
		return s.literal("null")
	default:
		_, err := s.readFloat()
		return err
	}
}

func (s *jsonScanner) readStringArray() ([]string, error) {
	if err := s.expect('['); err != nil {
		return nil, err
	}
	out := []string{}
	s.skipWS()
	if s.pos < len(s.data) && s.data[s.pos] == ']' {
		s.pos++
		return out, nil
	}
	for {
		b, err := s.readStringBytes()
		if err != nil {
			return nil, err
		}
		out = append(out, string(b))
		d, err := s.delim(',', ']')
		if err != nil {
			return nil, err
		}
		if d == ']' {
			return out, nil
		}
	}
}

func (s *jsonScanner) readFloatArray() ([]float64, error) {
	if err := s.expect('['); err != nil {
		return nil, err
	}
	out := []float64{}
	s.skipWS()
	if s.pos < len(s.data) && s.data[s.pos] == ']' {
		s.pos++
		return out, nil
	}
	for {
		v, err := s.readFloat()
		if err != nil {
			return nil, err
		}
		out = append(out, v)
		d, err := s.delim(',', ']')
		if err != nil {
			return nil, err
		}
		if d == ']' {
			return out, nil
		}
	}
}

// parseEnvObject scans one EnvDTO-shaped object into p. Tokenization failures
// return an error and abort; semantic failures land in p.semErr and scanning
// continues so a batch stays in sync with its remaining items.
func (p *envPayload) parseEnvObject(s *jsonScanner) error {
	if err := s.expect('{'); err != nil {
		return err
	}
	s.skipWS()
	if s.pos < len(s.data) && s.data[s.pos] == '}' {
		s.pos++
		return nil
	}
	for {
		key, err := s.readStringBytes()
		if err != nil {
			return err
		}
		if err := s.expect(':'); err != nil {
			return err
		}
		switch string(key) {
		case "etc":
			err = p.parseMatrix(s, true)
		case "ecs":
			err = p.parseMatrix(s, false)
		case "csv":
			var b []byte
			if b, err = s.readStringBytes(); err == nil {
				p.csv = string(b)
				p.csvSet = p.csv != ""
			}
		case "taskNames":
			p.taskNames, err = s.readStringArray()
		case "machineNames":
			p.machineNames, err = s.readStringArray()
		case "taskWeights":
			p.taskWeights, err = s.readFloatArray()
		case "machineWeights":
			p.machineWeights, err = s.readFloatArray()
		default:
			err = s.skipValue()
		}
		if err != nil {
			return err
		}
		d, err := s.delim(',', '}')
		if err != nil {
			return err
		}
		if d == '}' {
			return nil
		}
	}
}

// parseMatrix scans an etc/ecs array-of-rows, streaming each cell into the
// hasher and the pooled cell buffer. An empty array counts as "form not set",
// matching the DTO's len()>0 semantics.
func (p *envPayload) parseMatrix(s *jsonScanner, isETC bool) error {
	if (isETC && p.etcSet) || (!isETC && p.ecsSet) {
		form := "ecs"
		if isETC {
			form = "etc"
		}
		return fmt.Errorf("duplicate %q key", form)
	}
	// If the other matrix form already streamed its cells, this one is only
	// tokenized — finalize rejects the request on the form count, and its
	// cells must not reach the hasher.
	ignore := p.etcSet || p.ecsSet
	if err := s.expect('['); err != nil {
		return err
	}
	s.skipWS()
	if s.pos < len(s.data) && s.data[s.pos] == ']' {
		s.pos++
		return nil
	}
	rows := 0
	for {
		if err := s.expect('['); err != nil {
			return err
		}
		n := 0
		s.skipWS()
		if s.pos < len(s.data) && s.data[s.pos] == ']' {
			s.pos++
		} else {
			for {
				v, ok, err := p.readCell(s, isETC, rows, n)
				if err != nil {
					return err
				}
				if !ignore && ok && p.semErr == nil {
					p.hasher.WriteValue(v)
					p.cells = append(p.cells, v)
				}
				n++
				d, err := s.delim(',', ']')
				if err != nil {
					return err
				}
				if d == ']' {
					break
				}
			}
		}
		if !ignore {
			if rows == 0 {
				p.cols = n
			} else if n != p.cols && p.semErr == nil {
				form := "ecs"
				if isETC {
					form = "etc"
				}
				p.semErr = fmt.Errorf("ragged %s matrix: row 0 has %d entries, row %d has %d", form, p.cols, rows, n)
			}
		}
		rows++
		d, err := s.delim(',', ']')
		if err != nil {
			return err
		}
		if d == ']' {
			break
		}
	}
	if !ignore {
		p.rows = rows
	}
	if isETC {
		p.etcSet = true
	} else {
		p.ecsSet = true
	}
	return nil
}

// readCell tokenizes one matrix cell and returns its ECS value. ok=false with
// a nil error means the cell was structurally sound but semantically invalid;
// the error is in p.semErr and scanning continues.
func (p *envPayload) readCell(s *jsonScanner, isETC bool, i, j int) (v float64, ok bool, err error) {
	s.skipWS()
	if s.pos < len(s.data) && s.data[s.pos] == '"' {
		if !isETC {
			return 0, false, s.errf("ecs entries must be numbers")
		}
		b, err := s.readStringBytes()
		if err != nil {
			return 0, false, err
		}
		if isInfToken(b) {
			return 0, true, nil // +Inf ETC = impossible pairing = ECS 0
		}
		return 0, false, fmt.Errorf("server: ETC entry %q is not a number or \"inf\"", b)
	}
	n, err := s.readFloat()
	if err != nil {
		return 0, false, err
	}
	if isETC {
		if math.IsNaN(n) || n <= 0 {
			if p.semErr == nil {
				p.semErr = fmt.Errorf("%w: ETC(%d,%d) = %g must be positive or +Inf", etcmat.ErrInvalid, i, j, n)
			}
			return 0, false, nil
		}
		return 1 / n, true, nil
	}
	if math.IsNaN(n) || math.IsInf(n, 0) || n < 0 {
		if p.semErr == nil {
			p.semErr = fmt.Errorf("%w: ECS(%d,%d) = %g must be finite and nonnegative", etcmat.ErrInvalid, i, j, n)
		}
		return 0, false, nil
	}
	return n, true, nil
}

// isInfToken matches the ETCValue contract: "inf", any case, optional '+'.
func isInfToken(b []byte) bool {
	if len(b) > 0 && b[0] == '+' {
		b = b[1:]
	}
	return len(b) == 3 && b[0]|0x20 == 'i' && b[1]|0x20 == 'n' && b[2]|0x20 == 'f'
}

// scanJSONBatch streams {"envs":[...]}, invoking fn once per item with that
// item's finalize result (nil = valid, key set, payload materializable).
// Tokenization errors abort the whole scan — the old whole-body decode failed
// the same way — while per-item semantic errors reach fn and the batch keeps
// going.
func scanJSONBatch(body []byte, p *envPayload, fn func(itemErr error)) error {
	s := &jsonScanner{data: body}
	if err := s.expect('{'); err != nil {
		return err
	}
	s.skipWS()
	if s.pos < len(s.data) && s.data[s.pos] == '}' {
		s.pos++
		return s.trailingCheck()
	}
	envsSeen := false
	for {
		key, err := s.readStringBytes()
		if err != nil {
			return err
		}
		if err := s.expect(':'); err != nil {
			return err
		}
		if string(key) == "envs" {
			if envsSeen {
				return errors.New(`duplicate "envs" key`)
			}
			envsSeen = true
			if err := s.expect('['); err != nil {
				return err
			}
			s.skipWS()
			if s.pos < len(s.data) && s.data[s.pos] == ']' {
				s.pos++
			} else {
				for {
					p.reset()
					if err := p.parseEnvObject(s); err != nil {
						return err
					}
					fn(p.finalize())
					d, err := s.delim(',', ']')
					if err != nil {
						return err
					}
					if d == ']' {
						break
					}
				}
			}
		} else if err := s.skipValue(); err != nil {
			return err
		}
		d, err := s.delim(',', '}')
		if err != nil {
			return err
		}
		if d == '}' {
			break
		}
	}
	return s.trailingCheck()
}

// scanBinaryBatch walks concatenated matrix frames, one environment each.
func scanBinaryBatch(body []byte, p *envPayload, fn func(itemErr error)) error {
	for off := 0; off < len(body); {
		p.reset()
		n, err := p.parseBinaryFrame(body[off:])
		if err != nil {
			return err
		}
		fn(p.finalize())
		off += n
	}
	return nil
}

// DecodeEnvContentKey decodes one environment request body — streaming JSON,
// or a binary frame when contentType is wire.ContentTypeMatrix — and returns
// its content key, exercising exactly the pooled ingestion path the handlers
// run. Exported for the decode micro-benchmarks (hcbench -wirebench).
func DecodeEnvContentKey(body []byte, contentType string) (etcmat.ContentKey, error) {
	p := acquirePayload()
	defer releasePayload(p)
	var err error
	if contentType == wire.ContentTypeMatrix {
		err = p.parseBinaryEnv(body)
	} else {
		err = p.parseJSONEnv(body)
	}
	if err != nil {
		return etcmat.ContentKey{}, err
	}
	return p.key, nil
}
