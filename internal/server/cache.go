package server

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"math"
	"sync"

	"repro/internal/core"
	"repro/internal/etcmat"
)

// profileCache is the content-addressed LRU result cache of the serving
// tier. The key is a SHA-256 over everything a Profile depends on — matrix
// dimensions, the raw ECS entries and both weight vectors — so two requests
// describing the same environment (regardless of task/machine names, which
// the measures ignore) share one entry, and any numeric difference misses.
// Values are *core.Profile, which are treated as immutable once published:
// handlers must not mutate a cached profile.
type profileCache struct {
	mu    sync.Mutex
	cap   int
	items map[cacheKey]*list.Element
	order *list.List // front = most recently used

	hits, misses *counter
}

type cacheKey [sha256.Size]byte

type cacheEntry struct {
	key     cacheKey
	profile *core.Profile
}

// newProfileCache builds a cache holding at most capacity profiles;
// capacity <= 0 disables caching (every Get misses, Put drops).
func newProfileCache(capacity int, hits, misses *counter) *profileCache {
	return &profileCache{
		cap:    capacity,
		items:  make(map[cacheKey]*list.Element),
		order:  list.New(),
		hits:   hits,
		misses: misses,
	}
}

// keyOf hashes the measure-relevant content of an environment.
func keyOf(env *etcmat.Env) cacheKey {
	h := sha256.New()
	var buf [8]byte
	writeU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	t, m := env.Tasks(), env.Machines()
	writeU64(uint64(t))
	writeU64(uint64(m))
	for i := 0; i < t; i++ {
		for j := 0; j < m; j++ {
			writeU64(floatBits(env.ECSAt(i, j)))
		}
	}
	for _, w := range env.TaskWeights() {
		writeU64(floatBits(w))
	}
	for _, w := range env.MachineWeights() {
		writeU64(floatBits(w))
	}
	var k cacheKey
	h.Sum(k[:0])
	return k
}

// floatBits canonicalizes -0 to +0 so numerically equal matrices share keys.
func floatBits(v float64) uint64 {
	if v == 0 {
		v = 0
	}
	return math.Float64bits(v)
}

// Get returns the cached profile for the key, bumping its recency.
func (c *profileCache) Get(k cacheKey) (*core.Profile, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		c.order.MoveToFront(el)
		c.hits.Inc()
		return el.Value.(*cacheEntry).profile, true
	}
	c.misses.Inc()
	return nil, false
}

// Put inserts (or refreshes) a profile, evicting the least recently used
// entry past capacity.
func (c *profileCache) Put(k cacheKey, p *core.Profile) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		el.Value.(*cacheEntry).profile = p
		c.order.MoveToFront(el)
		return
	}
	c.items[k] = c.order.PushFront(&cacheEntry{key: k, profile: p})
	for len(c.items) > c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.items, last.Value.(*cacheEntry).key)
	}
}

// Len reports the current entry count (the cache size gauge).
func (c *profileCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}
