package server

import (
	"container/list"
	"encoding/binary"
	"sync"

	"repro/internal/core"
	"repro/internal/etcmat"
)

// profileCache is the content-addressed result cache of the serving tier.
// The key is a SHA-256 over everything a Profile depends on — matrix
// dimensions, the raw ECS entries and both weight vectors — so two requests
// describing the same environment (regardless of task/machine names, which
// the measures ignore) share one entry, and any numeric difference misses.
// Values are *core.Profile, which are treated as immutable once published:
// handlers must not mutate a cached profile.
//
// The cache is split into hash-sharded LRU segments with per-shard locks, so
// concurrent lookups on different keys do not serialize on one mutex the way
// the original single-list design did. SHA-256 output is uniform, so the
// first key bytes distribute keys evenly across shards (eviction is LRU per
// shard, which approximates global LRU to within the shard imbalance).
//
// Miss accounting lives in the coalescing layer (see flight.go), not here:
// a Get miss alone does not imply a computation — the request may join an
// in-flight compute — and the cache_misses metric counts unique computes
// only. Hits are counted here, where they are observed.
type profileCache struct {
	shards []cacheShard
	mask   uint64 // len(shards) - 1; shard count is a power of two
	hits   *counter
}

// cacheShard is one LRU segment: an independently locked slice of the key
// space with its own capacity and recency list.
type cacheShard struct {
	mu    sync.Mutex
	cap   int
	items map[cacheKey]*list.Element
	order *list.List // front = most recently used
}

// cacheKey is the environment's canonical content address. It is an alias
// (not a defined type) so the streaming request decoders, which compute the
// key cell-by-cell during the parse, hand it over without conversion.
type cacheKey = etcmat.ContentKey

type cacheEntry struct {
	key     cacheKey
	profile *core.Profile
}

// cacheShards is the shard count for capacities large enough to spread;
// caches smaller than it stay unsharded so eviction is exact global LRU.
const cacheShards = 16

// newProfileCache builds a cache holding at most capacity profiles across
// all shards; capacity <= 0 disables caching (every Get misses, Put drops).
func newProfileCache(capacity int, hits *counter) *profileCache {
	n := cacheShards
	if capacity < cacheShards {
		n = 1
	}
	c := &profileCache{
		shards: make([]cacheShard, n),
		mask:   uint64(n - 1),
		hits:   hits,
	}
	for i := range c.shards {
		// Distribute the capacity exactly: the first capacity%n shards hold
		// one extra entry.
		sc := capacity / n
		if i < capacity%n {
			sc++
		}
		c.shards[i] = cacheShard{
			cap:   sc,
			items: make(map[cacheKey]*list.Element),
			order: list.New(),
		}
	}
	return c
}

// shard maps a key to its segment. SHA-256 bytes are uniform, so any fixed
// slice of the key indexes shards evenly.
func (c *profileCache) shard(k cacheKey) *cacheShard {
	return &c.shards[binary.LittleEndian.Uint64(k[:8])&c.mask]
}

// keyOf hashes the measure-relevant content of an environment (the canonical
// layout lives in etcmat; streaming decoders reproduce it incrementally).
func keyOf(env *etcmat.Env) cacheKey {
	return env.ContentKey()
}

// Get returns the cached profile for the key, bumping its recency.
func (c *profileCache) Get(k cacheKey) (*core.Profile, bool) {
	s := c.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[k]; ok {
		s.order.MoveToFront(el)
		c.hits.Inc()
		return el.Value.(*cacheEntry).profile, true
	}
	return nil, false
}

// Put inserts (or refreshes) a profile, evicting the least recently used
// entry of the key's shard past that shard's capacity.
func (c *profileCache) Put(k cacheKey, p *core.Profile) {
	s := c.shard(k)
	if s.cap <= 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[k]; ok {
		el.Value.(*cacheEntry).profile = p
		s.order.MoveToFront(el)
		return
	}
	s.items[k] = s.order.PushFront(&cacheEntry{key: k, profile: p})
	for len(s.items) > s.cap {
		last := s.order.Back()
		s.order.Remove(last)
		delete(s.items, last.Value.(*cacheEntry).key)
	}
}

// HotEntries returns up to max cached profiles, hottest first, for ring
// handoff. It walks the shards round-robin from each shard's MRU front, so
// the selection approximates global recency order to within the shard
// imbalance without a cross-shard sort. The returned profiles are the cached
// pointers (immutable by contract), paired with their keys.
func (c *profileCache) HotEntries(max int) []hotEntry {
	if max <= 0 {
		return nil
	}
	out := make([]hotEntry, 0, max)
	// Per-shard cursors advance front-to-back; a round with no progress on
	// any shard means the cache is exhausted.
	cursors := make([]*list.Element, len(c.shards))
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		cursors[i] = s.order.Front()
		s.mu.Unlock()
	}
	for len(out) < max {
		progress := false
		for i := range c.shards {
			if len(out) >= max {
				break
			}
			el := cursors[i]
			if el == nil {
				continue
			}
			s := &c.shards[i]
			s.mu.Lock()
			e := el.Value.(*cacheEntry)
			cursors[i] = el.Next()
			s.mu.Unlock()
			out = append(out, hotEntry{key: e.key, profile: e.profile})
			progress = true
		}
		if !progress {
			break
		}
	}
	return out
}

// hotEntry is one HotEntries result: a cached profile and its content key.
type hotEntry struct {
	key     cacheKey
	profile *core.Profile
}

// Len reports the current entry count across all shards (the cache size
// gauge).
func (c *profileCache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.items)
		s.mu.Unlock()
	}
	return n
}
