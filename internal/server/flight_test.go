package server

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/etcmat"
)

// TestFlightGroupCoalesces pins the singleflight mechanics deterministically:
// with a leader parked mid-computation, every subsequent join on the key is a
// waiter, all waiters share the published profile, and the key is released
// for a fresh flight after finish.
func TestFlightGroupCoalesces(t *testing.T) {
	g := newFlightGroup()
	var k cacheKey
	k[0] = 7

	call, leader := g.join(k)
	if !leader {
		t.Fatal("first join must elect the leader")
	}

	const waiters = 8
	p := &core.Profile{Tasks: 3, Machines: 3}
	var wg sync.WaitGroup
	joined := make(chan struct{}, waiters)
	for w := 0; w < waiters; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, lead := g.join(k)
			if lead {
				t.Error("waiter elected leader while the call was in flight")
				return
			}
			joined <- struct{}{}
			<-c.done
			if c.profile != p {
				t.Error("waiter observed a different profile than the leader published")
			}
		}()
	}
	// Every waiter must have joined the existing call before the leader
	// publishes; afterwards the key starts a fresh flight.
	for w := 0; w < waiters; w++ {
		<-joined
	}
	g.finish(k, call, p)
	wg.Wait()

	if _, lead := g.join(k); !lead {
		t.Error("finished key did not release; next join should lead a fresh flight")
	}
}

// TestCoalescedSingleCompute is the tentpole's -race gate: K concurrent
// identical requests through characterizeCoalesced run exactly one
// characterization, and every request lands in exactly one accounting bucket
// (hit, miss or coalesced).
func TestCoalescedSingleCompute(t *testing.T) {
	s := New(Config{Logger: quietLogger()})
	env := etcmat.MustFromETC(func() [][]float64 {
		rng := rand.New(rand.NewSource(11))
		rows := make([][]float64, 60)
		for i := range rows {
			rows[i] = make([]float64, 40)
			for j := range rows[i] {
				rows[i][j] = 1 + 99*rng.Float64()
			}
		}
		return rows
	}())
	key := keyOf(env)

	const requests = 16
	start := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < requests; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			p, outcome, err := s.characterizeCoalesced(context.Background(), key, env)
			if err != nil {
				t.Errorf("characterizeCoalesced: %v", err)
				return
			}
			if p == nil {
				t.Errorf("outcome %q returned a nil profile", outcome)
			}
		}()
	}
	close(start)
	wg.Wait()

	if n := s.computed.Value(); n != 1 {
		t.Errorf("%d requests ran %d characterizations, want exactly 1", requests, n)
	}
	if n := s.misses.Value(); n != 1 {
		t.Errorf("cache misses = %d, want 1 (misses count unique computes only)", n)
	}
	hits, coalesced := s.cache.hits.Value(), s.coalesced.Value()
	if hits+coalesced != requests-1 {
		t.Errorf("hits (%d) + coalesced (%d) = %d, want %d: every non-leader is a hit or a waiter",
			hits, coalesced, hits+coalesced, requests-1)
	}
}

// TestCoalescedEndpointSingleCompute drives the same stampede through the
// full HTTP stack: concurrent identical POSTs to /v1/characterize yield one
// computation, every response carries a valid profile, and the metrics page
// reports the coalesced accounting.
func TestCoalescedEndpointSingleCompute(t *testing.T) {
	s, ts := testServer(t, Config{Workers: 8, QueueDepth: 64})
	body := bigEnvBody(60, 40)

	const requests = 12
	start := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < requests; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			resp, respBody := post(t, ts, "/v1/characterize", "application/json", body)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("status %d: %s", resp.StatusCode, respBody)
				return
			}
			p := decodeProfile(t, respBody)
			if p.Tasks != 60 || p.Machines != 40 {
				t.Errorf("shape %dx%d, want 60x40", p.Tasks, p.Machines)
			}
		}()
	}
	close(start)
	wg.Wait()

	if n := s.computed.Value(); n != 1 {
		t.Errorf("%d identical requests ran %d characterizations, want exactly 1", requests, n)
	}
	_, metrics := get(t, ts, "/metrics")
	for _, want := range []string{
		"hcserved_cache_misses_total 1",
		"hcserved_characterizations_total 1",
		"hcserved_coalesced_total",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics page missing %q", want)
		}
	}
}

// TestBatchDedupAccounting pins the deterministic intra-request dedup: a
// batch repeating one environment computes each distinct environment once,
// counts every repeat under coalesced, and hands all repeats the same
// profile.
func TestBatchDedupAccounting(t *testing.T) {
	s, ts := testServer(t, Config{})
	envA := `{"etc":[[10,3,7],[4,2,9],[5,6,1]]}`
	envB := `{"etc":[[1,2],[3,4]]}`
	body := fmt.Sprintf(`{"envs":[%s,%s,%s,%s]}`, envA, envA, envB, envA)

	resp, respBody := post(t, ts, "/v1/characterize/batch", "application/json", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, respBody)
	}
	var br struct {
		Profiles []struct {
			Profile *ProfileDTO `json:"profile"`
			Error   string      `json:"error"`
		} `json:"profiles"`
	}
	if err := json.Unmarshal([]byte(respBody), &br); err != nil {
		t.Fatalf("decoding batch response: %v", err)
	}
	if len(br.Profiles) != 4 {
		t.Fatalf("%d profiles, want 4", len(br.Profiles))
	}
	for i, item := range br.Profiles {
		if item.Error != "" || item.Profile == nil {
			t.Fatalf("item %d failed: %q", i, item.Error)
		}
	}
	if a0, a1 := br.Profiles[0].Profile, br.Profiles[1].Profile; a0.MPH != a1.MPH || a0.TDH != a1.TDH {
		t.Errorf("duplicate items disagree: %+v vs %+v", a0, a1)
	}

	if n := s.computed.Value(); n != 2 {
		t.Errorf("batch with 2 distinct envs ran %d characterizations, want 2", n)
	}
	if n := s.misses.Value(); n != 2 {
		t.Errorf("misses = %d, want 2 (one per unique compute)", n)
	}
	if n := s.coalesced.Value(); n != 2 {
		t.Errorf("coalesced = %d, want 2 (the two within-batch repeats)", n)
	}
	if n := s.cache.hits.Value(); n != 0 {
		t.Errorf("hits = %d, want 0 on a cold cache", n)
	}

	// The same batch again is all hits: profiles are cached, nothing
	// computes, and repeats still dedup before touching the cache... or hit
	// it directly; either way no new compute and no new miss.
	post(t, ts, "/v1/characterize/batch", "application/json", body)
	if n := s.computed.Value(); n != 2 {
		t.Errorf("warm batch recomputed: characterizations = %d, want still 2", n)
	}
	if n := s.misses.Value(); n != 2 {
		t.Errorf("warm batch missed: misses = %d, want still 2", n)
	}
}
