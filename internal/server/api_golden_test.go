package server

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/etcmat"
)

// TestEnvDTOGoldenInf pins the wire form of an environment with an
// impossible pairing: the +Inf ETC entry must cross the boundary as the
// string "inf", not vanish or crash the encoder.
func TestEnvDTOGoldenInf(t *testing.T) {
	env := etcmat.MustFromETC([][]float64{
		{10, math.Inf(1)},
		{20, 5},
	})
	env, err := env.WithWeights([]float64{2, 1}, []float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(EnvToDTO(env))
	if err != nil {
		t.Fatal(err)
	}
	const golden = `{"taskNames":["t1","t2"],"machineNames":["m1","m2"],` +
		`"taskWeights":[2,1],"machineWeights":[1,3],` +
		`"etc":[[10,"inf"],[20,5]]}`
	if string(got) != golden {
		t.Errorf("EnvDTO wire form drifted:\n got  %s\n want %s", got, golden)
	}

	// Round trip: decode the golden bytes and verify nothing was dropped.
	var dto EnvDTO
	if err := json.Unmarshal([]byte(golden), &dto); err != nil {
		t.Fatal(err)
	}
	back, err := dto.Env()
	if err != nil {
		t.Fatal(err)
	}
	if back.ECSAt(0, 1) != 0 {
		t.Errorf("impossible pairing lost in round trip: ECS(0,1) = %g, want 0", back.ECSAt(0, 1))
	}
	if back.ECSAt(0, 0) != 0.1 {
		t.Errorf("ECS(0,0) = %g, want 0.1", back.ECSAt(0, 0))
	}
	if w := back.TaskWeights(); w[0] != 2 || w[1] != 1 {
		t.Errorf("task weights lost in round trip: %v", w)
	}
	if w := back.MachineWeights(); w[0] != 1 || w[1] != 3 {
		t.Errorf("machine weights lost in round trip: %v", w)
	}
	if keyOf(env) != keyOf(back) {
		t.Error("round-tripped environment has a different cache key")
	}
}

func TestETCValueUnmarshalVariants(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want float64
		ok   bool
	}{
		{`3.5`, 3.5, true},
		{`"inf"`, math.Inf(1), true},
		{`"Inf"`, math.Inf(1), true},
		{`"+inf"`, math.Inf(1), true},
		{`"INF"`, math.Inf(1), true},
		{`"oo"`, 0, false},
		{`"-inf"`, 0, false},
		{`true`, 0, false},
	} {
		var v ETCValue
		err := json.Unmarshal([]byte(tc.in), &v)
		if tc.ok && err != nil {
			t.Errorf("unmarshal %s: %v", tc.in, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("unmarshal %s: want error, got %g", tc.in, float64(v))
		}
		if tc.ok && float64(v) != tc.want && !(math.IsInf(tc.want, 1) && math.IsInf(float64(v), 1)) {
			t.Errorf("unmarshal %s = %g, want %g", tc.in, float64(v), tc.want)
		}
	}
}

func TestETCValueMarshalRejectsNaN(t *testing.T) {
	if _, err := json.Marshal(ETCValue(math.NaN())); err == nil {
		t.Error("NaN must not have a silent wire form")
	}
	if _, err := json.Marshal(ETCValue(math.Inf(-1))); err == nil {
		t.Error("-Inf must not have a silent wire form")
	}
}

func TestEnvDTOValidation(t *testing.T) {
	for name, body := range map[string]string{
		"no form":         `{}`,
		"two forms":       `{"etc":[[1]],"ecs":[[1]]}`,
		"ragged etc":      `{"etc":[[1,2],[3]]}`,
		"ragged ecs":      `{"ecs":[[1,2],[3]]}`,
		"all-inf row":     `{"etc":[["inf","inf"],[1,2]]}`,
		"bad etc entry":   `{"etc":[[0,1],[1,2]]}`,
		"bad weights len": `{"etc":[[1,2],[3,4]],"taskWeights":[1]}`,
		"bad csv":         `{"csv":"task,m1\n"}`,
	} {
		t.Run(name, func(t *testing.T) {
			var dto EnvDTO
			if err := json.Unmarshal([]byte(body), &dto); err != nil {
				return // malformed at the JSON layer is also a pass
			}
			if _, err := dto.Env(); err == nil {
				t.Errorf("EnvDTO %s materialized without error", body)
			}
		})
	}
}

// TestProfileDTOGolden pins the profile wire form, including the
// not-standardizable case where TMA must be omitted and explained rather
// than serialized as NaN (which encoding/json rejects outright).
func TestProfileDTOGolden(t *testing.T) {
	env := etcmat.MustFromETC([][]float64{{1, 2}, {2, 4}})
	p := core.Characterize(env)
	b, err := json.Marshal(ProfileToDTO(p, true))
	if err != nil {
		t.Fatal(err)
	}
	s := string(b)
	for _, want := range []string{`"tasks":2`, `"machines":2`, `"mph":`, `"tdh":`, `"tma":`, `"cached":true`} {
		if !strings.Contains(s, want) {
			t.Errorf("profile JSON missing %s: %s", want, s)
		}
	}

	// A zero pattern with no positive diagonal is not standardizable: TMA is
	// NaN in core and must leave the API as an explanation, not a hole or a
	// crash (paper Sec. VI).
	bad := etcmat.MustFromECS([][]float64{{1, 0, 0}, {0, 1, 1}})
	pb := core.Characterize(bad)
	if pb.TMAErr == nil {
		t.Fatal("expected a non-standardizable environment; matrix choice no longer triggers it")
	}
	bb, err := json.Marshal(ProfileToDTO(pb, false))
	if err != nil {
		t.Fatalf("profile with TMA error must still marshal: %v", err)
	}
	sb := string(bb)
	if strings.Contains(sb, `"tma":`) {
		t.Errorf("non-standardizable profile serialized a tma value: %s", sb)
	}
	if !strings.Contains(sb, `"tmaError":`) {
		t.Errorf("non-standardizable profile lost its explanation: %s", sb)
	}
}

// TestEnvelopeGolden pins the envelope contract: the version constant
// itself, its presence on every top-level response shape, and the wire form
// of the optional timings echo. Nested profiles must NOT repeat the envelope
// fields (omitempty keeps the 1.0 shape inside batch items).
//
// Deliberately updated 1.1 -> 1.2: the stream endpoint, structured batch
// item errors and the fixed error-code registry (see APIVersion).
func TestEnvelopeGolden(t *testing.T) {
	if APIVersion != "1.2" {
		t.Fatalf("APIVersion = %q; bumping it is a wire-contract change — update API.md and this test deliberately", APIVersion)
	}
	// A bare ProfileToDTO (as nested in batch/generate responses) carries no
	// envelope fields.
	env := etcmat.MustFromETC([][]float64{{1, 2}, {3, 4}})
	nested, err := json.Marshal(ProfileToDTO(core.Characterize(env), false))
	if err != nil {
		t.Fatal(err)
	}
	for _, banned := range []string{`"api_version"`, `"timings"`} {
		if strings.Contains(string(nested), banned) {
			t.Errorf("nested profile leaked envelope field %s: %s", banned, nested)
		}
	}
	// The timings wire form.
	tm := &TimingsDTO{
		RequestID: "abc-1",
		TotalMs:   1.5,
		Stages:    []StageTimingDTO{{Stage: "compute", StartMs: 0.25, Ms: 1}},
	}
	got, err := json.Marshal(tm)
	if err != nil {
		t.Fatal(err)
	}
	const golden = `{"requestId":"abc-1","totalMs":1.5,` +
		`"stages":[{"stage":"compute","startMs":0.25,"ms":1}]}`
	if string(got) != golden {
		t.Errorf("timings wire form drifted:\n got  %s\n want %s", got, golden)
	}
	// Every top-level envelope declares the version field.
	for name, v := range map[string]any{
		"batch":    batchResponse{Version: APIVersion},
		"generate": generateResponse{Version: APIVersion},
		"whatif":   whatifResponse{Version: APIVersion},
		"error":    apiError{Version: APIVersion},
	} {
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(b), `"api_version":"1.2"`) {
			t.Errorf("%s envelope missing api_version: %s", name, b)
		}
	}
}
