package server

import (
	"context"
	"errors"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
)

// Config shapes a serving instance. The zero value is usable: every field
// has a production-minded default applied by New.
type Config struct {
	// Addr is the listen address for Run (default ":8080"). Handler-level
	// use (tests, embedding) ignores it.
	Addr string
	// Workers bounds concurrently executing characterizations
	// (default/<=0: GOMAXPROCS). Batch requests occupy one slot and fan out
	// internally on the same bound via the parallel pool.
	Workers int
	// QueueDepth bounds requests waiting for a compute slot; past it the
	// server sheds load with 429 + Retry-After (default 64; negative: 0,
	// i.e. no waiting).
	QueueDepth int
	// CacheSize bounds the content-addressed profile cache in entries
	// (default 1024; 0 or negative disables caching).
	CacheSize int
	// RequestTimeout is the per-request deadline, enforced at admission and
	// between batch items (default 30s; 0 or negative disables).
	RequestTimeout time.Duration
	// DrainTimeout bounds the graceful-shutdown drain (default 15s).
	DrainTimeout time.Duration
	// MaxBodyBytes bounds request bodies (default 8 MiB).
	MaxBodyBytes int64
	// MaxBatchEnvs bounds the environments in one batch request
	// (default 256).
	MaxBatchEnvs int
	// MaxStreamSessions bounds concurrently live /v1/stream sessions
	// (default 64; negative disables the endpoint's admission entirely,
	// answering every open with 503 session_limit). Sessions hold no compute
	// slot while idle, so this bounds connection state, not workers.
	MaxStreamSessions int
	// StreamIdleTimeout evicts a /v1/stream session that sends no mutation
	// for this long (default 2m; negative disables eviction). It replaces
	// RequestTimeout for the session as a whole — individual solves inside a
	// session still run under RequestTimeout.
	StreamIdleTimeout time.Duration
	// EnablePprof mounts the net/http/pprof handlers under /debug/pprof/.
	// Off by default: the profiling endpoints expose internals (heap
	// contents, command line) that do not belong on an open service port.
	EnablePprof bool
	// Cluster, when non-nil, runs this instance as a node of a consistent-hash
	// cluster (see internal/cluster and DESIGN.md §15): non-owned keys forward
	// to their owner over the binary wire format, the membership endpoints are
	// mounted under /v1/cluster/, and Run starts the gossip loop. Nil keeps
	// the classic single-node behavior with zero overhead.
	Cluster *cluster.Config
	// Logger receives structured request/lifecycle logs (default
	// slog.Default()).
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = ":8080"
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.QueueDepth < 0 {
		c.QueueDepth = 0
	}
	if c.CacheSize == 0 {
		c.CacheSize = 1024
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 15 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.MaxBatchEnvs <= 0 {
		c.MaxBatchEnvs = 256
	}
	if c.MaxStreamSessions == 0 {
		c.MaxStreamSessions = 64
	}
	if c.MaxStreamSessions < 0 {
		c.MaxStreamSessions = 0
	}
	if c.StreamIdleTimeout == 0 {
		c.StreamIdleTimeout = 2 * time.Minute
	}
	if c.StreamIdleTimeout < 0 {
		c.StreamIdleTimeout = 0
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	return c
}

// Server is the HTTP characterization service. Build one with New, mount
// Handler on any mux or run it directly with Run.
type Server struct {
	cfg     Config
	log     *slog.Logger
	metrics *Metrics
	cache   *profileCache
	flight  *flightGroup
	adm     *admission
	mux     *http.ServeMux
	start   time.Time
	reqIDs  *requestIDs

	boundAddr atomic.Value // string; set once Run's listener is up

	// router is non-nil in cluster mode; see forwardProfile in cluster.go.
	router *cluster.Router

	panics          *counter
	computed        *counter
	misses          *counter
	coalesced       *counter
	forwarded       *counter
	peerFills       *counter
	handoffReceived *counter

	// Stream-session state (see streamsrv.go). The accounting invariant,
	// checked by tests and the load generator: stream_profiles_total ==
	// stream_sessions_total + stream_incremental_total +
	// stream_recomputed_total (every session contributes one cold open
	// profile plus one profile per accepted mutation).
	streams           sessionRegistry
	streamSessions    *counter
	streamProfiles    *counter
	streamIncremental *counter
	streamRecomputed  *counter
	streamRejected    *counter
}

// BoundAddr returns the address Run's listener is bound to ("" before Run).
func (s *Server) BoundAddr() string {
	if v, ok := s.boundAddr.Load().(string); ok {
		return v
	}
	return ""
}

// New builds a Server from the config (see Config for defaults).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	m := NewMetrics()
	s := &Server{
		cfg:     cfg,
		log:     cfg.Logger,
		metrics: m,
		start:   time.Now(),
		reqIDs:  newRequestIDs(),
		panics: m.Counter("hcserved_panics_total",
			"Handler panics recovered.", ""),
		computed: m.Counter("hcserved_characterizations_total",
			"Profiles computed (cache misses that ran the pipeline).", ""),
		misses: m.Counter("hcserved_cache_misses_total",
			"Profile cache misses that ran a unique computation; concurrent duplicates count under hcserved_coalesced_total instead.", ""),
		coalesced: m.Counter("hcserved_coalesced_total",
			"Requests served by joining another request's in-flight computation.", ""),
		streamSessions: m.Counter("hcserved_stream_sessions_total",
			"Stream sessions successfully opened.", ""),
		streamProfiles: m.Counter("hcserved_stream_profiles_total",
			"Profiles delivered on stream sessions (opens plus accepted mutations).", ""),
		streamIncremental: m.Counter("hcserved_stream_incremental_total",
			"Stream profiles solved incrementally from the previous solve's seed.", ""),
		streamRecomputed: m.Counter("hcserved_stream_recomputed_total",
			"Stream profiles that fell back to a cold re-characterization (drift re-anchor).", ""),
		streamRejected: m.Counter("hcserved_stream_rejected_total",
			"Stream mutations rejected as invalid (session state untouched).", ""),
	}
	s.streams.max = int64(cfg.MaxStreamSessions)
	s.cache = newProfileCache(cfg.CacheSize,
		m.Counter("hcserved_cache_hits_total", "Profile cache hits.", ""))
	s.flight = newFlightGroup()
	s.adm = newAdmission(cfg.Workers, cfg.QueueDepth,
		m.Counter("hcserved_rejected_total", "Requests shed with 429.", ""))
	m.Gauge("hcserved_queue_depth", "Requests waiting for a compute slot.",
		func() float64 { return float64(s.adm.QueueDepth()) })
	m.Gauge("hcserved_inflight", "Requests holding a compute slot.",
		func() float64 { return float64(s.adm.Active()) })
	m.Gauge("hcserved_cache_entries", "Profiles resident in the result cache.",
		func() float64 { return float64(s.cache.Len()) })
	m.Gauge("hcserved_uptime_seconds", "Seconds since the server started.",
		func() float64 { return time.Since(s.start).Seconds() })
	m.Gauge("hcserved_stream_sessions", "Stream sessions currently live.",
		func() float64 { return float64(s.streams.active.Load()) })

	if cfg.Cluster != nil {
		s.initCluster(*cfg.Cluster)
	}

	s.mux = http.NewServeMux()
	s.route("POST /v1/characterize", "characterize", http.HandlerFunc(s.handleCharacterize))
	s.route("POST /v1/characterize/batch", "batch", http.HandlerFunc(s.handleBatch))
	s.route("POST /v1/generate", "generate", http.HandlerFunc(s.handleGenerate))
	s.route("POST /v1/whatif", "whatif", http.HandlerFunc(s.handleWhatif))
	// The stream endpoint skips the timeout (sessions are long-lived by
	// design; each solve inside one is individually bounded) and compression
	// (a gzip writer buffers across flush boundaries, holding profile lines
	// back from the client).
	s.mux.Handle("POST /v1/stream", s.withRecovery(s.withObservability("stream", http.HandlerFunc(s.handleStream))))
	s.route("GET /healthz", "healthz", http.HandlerFunc(s.handleHealthz))
	s.route("GET /metrics", "metrics", http.HandlerFunc(s.handleMetrics))
	if s.router != nil {
		// Recovery only: the gossip loop hits these at 2 Hz per peer, which
		// would drown the request log and skew the latency histograms if they
		// went through the full observability stack.
		s.mux.Handle("POST /v1/cluster/join", s.withRecovery(http.HandlerFunc(s.handleClusterJoin)))
		s.mux.Handle("GET /v1/cluster/peers", s.withRecovery(http.HandlerFunc(s.handleClusterPeers)))
		s.mux.Handle("POST /v1/cluster/handoff", s.withRecovery(http.HandlerFunc(s.handleClusterHandoff)))
	}
	if cfg.EnablePprof {
		// Mounted raw (no admission, no timeout): a CPU profile legitimately
		// runs for 30s, and the recovery/observability stack would only skew
		// what the profiler measures. Unmatched /debug/pprof/* falls through
		// to the mux's default 404 when the flag is off.
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return s
}

// route mounts a handler with the full middleware stack: recovery outermost
// (it must catch panics from the observability layer too), then logging and
// metrics, then response compression (inside observability so the logged
// byte count is wire bytes), then the per-request timeout.
func (s *Server) route(pattern, endpoint string, h http.Handler) {
	s.mux.Handle(pattern, s.withRecovery(s.withObservability(endpoint, s.withCompression(s.withTimeout(h)))))
}

// Handler returns the fully middleware-wrapped root handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics exposes the registry (for embedding or tests).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Run serves on cfg.Addr until ctx is canceled, then drains in-flight
// requests for up to cfg.DrainTimeout before returning. It returns nil on a
// clean drain. The bound address (useful with a ":0" config) is available
// from BoundAddr once the listener is up.
func (s *Server) Run(ctx context.Context) error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.boundAddr.Store(ln.Addr().String())
	if s.router != nil {
		// A ":0" config only knows its advertised address now; fix it before
		// the membership loop announces this node to the seed peers.
		if s.router.Self() == "" {
			s.router.SetSelf(ln.Addr().String())
		}
		s.router.Start(ctx)
	}
	srv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	s.log.Info("hcserved listening",
		"addr", ln.Addr().String(),
		"workers", s.cfg.Workers,
		"queue_depth", s.cfg.QueueDepth,
		"cache_size", s.cfg.CacheSize,
		"request_timeout", s.cfg.RequestTimeout.String())
	select {
	case err := <-errCh:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-ctx.Done():
		s.log.Info("shutdown requested; draining in-flight requests",
			"inflight", s.adm.Active(), "queued", s.adm.QueueDepth(),
			"drain_timeout", s.cfg.DrainTimeout.String())
		drainCtx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
		defer cancel()
		err := srv.Shutdown(drainCtx)
		if err == nil {
			s.log.Info("drain complete")
		} else {
			s.log.Error("drain incomplete", "err", err)
		}
		return err
	}
}
