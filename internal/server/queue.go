package server

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// admission is the bounded admission queue in front of the compute pool.
// At most `workers` requests execute concurrently; up to `queueDepth` more
// may wait for a slot. Anything beyond that is rejected immediately with
// ErrOverloaded — the server sheds load with a 429 instead of stacking
// goroutines until memory runs out (the usual collapse mode of an unbounded
// HTTP handler doing CPU-bound work).
//
// The waiting count is tracked with an atomic rather than a second channel
// so /metrics can read the live queue depth without contending with the
// request path.
type admission struct {
	slots   chan struct{} // buffered to `workers`; holding a token = executing
	depth   int64         // max waiters
	waiting atomic.Int64  // requests admitted but not yet holding a slot
	active  atomic.Int64  // requests holding a slot

	rejected *counter
}

// ErrOverloaded is returned when both the compute slots and the wait queue
// are full; the handler maps it to 429 + Retry-After.
var ErrOverloaded = errors.New("server: admission queue full")

func newAdmission(workers, queueDepth int, rejected *counter) *admission {
	if workers < 1 {
		workers = 1
	}
	if queueDepth < 0 {
		queueDepth = 0
	}
	return &admission{
		slots:    make(chan struct{}, workers),
		depth:    int64(queueDepth),
		rejected: rejected,
	}
}

// Enter claims a compute slot, waiting in the bounded queue if all slots are
// busy. It returns a release function on success; ErrOverloaded when the
// queue is full; or the context error if the caller gives up while queued
// (client disconnect, per-request timeout). The release function must be
// called exactly once.
func (a *admission) Enter(ctx context.Context) (release func(), err error) {
	if a.waiting.Add(1) > a.depth {
		// Over the wait budget. A token may still be free — taking it keeps
		// the server busy at full width even when the queue is momentarily
		// over-subscribed by racing arrivals.
		select {
		case a.slots <- struct{}{}:
			a.waiting.Add(-1)
			return a.acquired(), nil
		default:
			a.waiting.Add(-1)
			a.rejected.Inc()
			return nil, ErrOverloaded
		}
	}
	select {
	case a.slots <- struct{}{}:
		a.waiting.Add(-1)
		return a.acquired(), nil
	case <-ctx.Done():
		a.waiting.Add(-1)
		return nil, ctx.Err()
	}
}

func (a *admission) acquired() func() {
	a.active.Add(1)
	var done atomic.Bool
	return func() {
		if done.CompareAndSwap(false, true) {
			a.active.Add(-1)
			<-a.slots
		}
	}
}

// QueueDepth reports the number of requests currently waiting for a slot.
func (a *admission) QueueDepth() int64 { return a.waiting.Load() }

// Active reports the number of requests currently executing.
func (a *admission) Active() int64 { return a.active.Load() }

// RetryAfter estimates how long a rejected client should back off: one
// nominal service time per queued-or-running request ahead of it, floored at
// a second. It is deliberately coarse — the point is to spread retries, not
// to promise a slot.
func (a *admission) RetryAfter(nominal time.Duration) time.Duration {
	ahead := a.waiting.Load() + a.active.Load()
	d := time.Duration(ahead) * nominal / time.Duration(cap(a.slots))
	if d < time.Second {
		d = time.Second
	}
	if d > 30*time.Second {
		d = 30 * time.Second
	}
	return d
}
