package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func testAdmission(workers, depth int) *admission {
	m := NewMetrics()
	return newAdmission(workers, depth, m.Counter("rejected", "r", ""))
}

func TestAdmissionRejectsPastQueueDepth(t *testing.T) {
	a := testAdmission(1, 1)

	// Fill the single compute slot.
	rel1, err := a.Enter(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Fill the single wait slot from another goroutine.
	waiting := make(chan error, 1)
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	go func() {
		rel, err := a.Enter(ctx2)
		if err == nil {
			rel()
		}
		waiting <- err
	}()
	// Give the waiter time to enqueue.
	for i := 0; i < 100 && a.QueueDepth() == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	if a.QueueDepth() != 1 {
		t.Fatalf("queue depth %d, want 1", a.QueueDepth())
	}

	// A third entrant finds slot and queue full: immediate ErrOverloaded.
	if _, err := a.Enter(context.Background()); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("third Enter = %v, want ErrOverloaded", err)
	}

	// Releasing the slot lets the waiter through.
	rel1()
	if err := <-waiting; err != nil {
		t.Fatalf("queued request failed: %v", err)
	}
}

func TestAdmissionCancelWhileQueued(t *testing.T) {
	a := testAdmission(1, 4)
	rel, err := a.Enter(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := a.Enter(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued Enter under an expired deadline = %v, want DeadlineExceeded", err)
	}
	if d := a.QueueDepth(); d != 0 {
		t.Errorf("queue depth %d after cancellation, want 0", d)
	}
}

// TestAdmissionConcurrencyBound pounds the queue from many goroutines and
// asserts the concurrent-execution invariant; with -race this is the
// admission queue's data-race gate.
func TestAdmissionConcurrencyBound(t *testing.T) {
	const workers, depth, clients = 4, 8, 64
	a := testAdmission(workers, depth)
	var (
		inside   atomic.Int64
		maxSeen  atomic.Int64
		admitted atomic.Int64
		shed     atomic.Int64
		wg       sync.WaitGroup
	)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				rel, err := a.Enter(context.Background())
				if err != nil {
					if !errors.Is(err, ErrOverloaded) {
						t.Errorf("Enter: %v", err)
					}
					shed.Add(1)
					continue
				}
				n := inside.Add(1)
				for {
					m := maxSeen.Load()
					if n <= m || maxSeen.CompareAndSwap(m, n) {
						break
					}
				}
				admitted.Add(1)
				inside.Add(-1)
				rel()
			}
		}()
	}
	wg.Wait()
	if m := maxSeen.Load(); m > workers {
		t.Errorf("observed %d concurrent executions, bound is %d", m, workers)
	}
	if admitted.Load() == 0 {
		t.Error("no request was ever admitted")
	}
	if a.QueueDepth() != 0 || a.Active() != 0 {
		t.Errorf("gauges not drained: depth=%d active=%d", a.QueueDepth(), a.Active())
	}
}

func TestAdmissionReleaseIdempotent(t *testing.T) {
	a := testAdmission(1, 0)
	rel, err := a.Enter(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rel()
	rel() // second call must be a no-op, not a slot underflow
	if _, err := a.Enter(context.Background()); err != nil {
		t.Fatalf("slot not reusable after double release: %v", err)
	}
}

func TestRetryAfterBounds(t *testing.T) {
	a := testAdmission(2, 10)
	if d := a.RetryAfter(100 * time.Millisecond); d < time.Second {
		t.Errorf("idle RetryAfter %v below the 1s floor", d)
	}
	if d := a.RetryAfter(time.Hour); d > 30*time.Second {
		t.Errorf("RetryAfter %v above the 30s ceiling", d)
	}
}
