package server

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/etcmat"
	"repro/internal/wire"
)

// dtoKey decodes a body through the reference path — encoding/json into the
// DTO, then full Env materialization — and returns the environment's content
// key. The streaming scanner must agree with this on every valid body.
func dtoKey(t *testing.T, body string) cacheKey {
	t.Helper()
	var req characterizeRequest
	if err := json.Unmarshal([]byte(body), &req); err != nil {
		t.Fatalf("reference decode: %v", err)
	}
	env, err := req.Env()
	if err != nil {
		t.Fatalf("reference Env(): %v", err)
	}
	return keyOf(env)
}

// streamKey decodes a body through the streaming scanner and returns the key
// computed during the scan, plus the key of the materialized environment
// (which must match — the incremental hash must reproduce Env.ContentKey).
func streamKey(t *testing.T, body string) (scanned, materialized cacheKey) {
	t.Helper()
	p := acquirePayload()
	defer releasePayload(p)
	if err := p.parseJSONEnv([]byte(body)); err != nil {
		t.Fatalf("streaming decode: %v", err)
	}
	env, err := p.env()
	if err != nil {
		t.Fatalf("streaming env(): %v", err)
	}
	return p.key, keyOf(env)
}

// TestStreamingKeyEquivalence is the core soundness check of the zero-copy
// path: for every request-body shape, the content key computed cell-by-cell
// during the scan equals the key the reference encoding/json + Env pipeline
// produces. If these ever diverge, the cache would serve wrong profiles.
func TestStreamingKeyEquivalence(t *testing.T) {
	bodies := map[string]string{
		"etc":                 envBody,
		"etc with inf forms":  `{"etc":[[10,"INF",7],[4,"+inf",9],[5,6,"Inf"]]}`,
		"ecs":                 `{"ecs":[[0.5,0,2.25],[1e-3,4,0.125]]}`,
		"csv":                 `{"csv":"task,m1,m2\na,10,20\nb,30,15\n"}`,
		"names":               `{"etc":[[1,2],[3,4]],"taskNames":["a","b"],"machineNames":["x","y"]}`,
		"weights":             `{"etc":[[1,2],[3,4]],"taskWeights":[2,3],"machineWeights":[1,4]}`,
		"unit weights":        `{"etc":[[1,2],[3,4]],"taskWeights":[1,1],"machineWeights":[1,1]}`,
		"whitespace":          "{\n  \"etc\" : [ [ 10, \"inf\" ], [ 4 , 2 ] ]\n}",
		"unknown keys":        `{"note":{"a":[1,true,null]},"etc":[[1,2]],"extra":"x"}`,
		"escaped names":       `{"etc":[[1,2]],"taskNames":["a\tb"],"machineNames":["é","😀"]}`,
		"scientific notation": `{"etc":[[1.5e2,2E-3],[0.5,1e1]]}`,
	}
	for name, body := range bodies {
		t.Run(name, func(t *testing.T) {
			want := dtoKey(t, body)
			scanned, materialized := streamKey(t, body)
			if scanned != want {
				t.Errorf("scanned key diverges from reference key")
			}
			if materialized != want {
				t.Errorf("materialized key diverges from reference key")
			}
		})
	}
}

// TestStreamingKeyEquivalenceBinary checks that a binary frame of the same
// ETC matrix lands on the same content key as its JSON form, so JSON and
// binary clients share cache entries.
func TestStreamingKeyEquivalenceBinary(t *testing.T) {
	jsonBody := envBody
	var req characterizeRequest
	if err := json.Unmarshal([]byte(jsonBody), &req); err != nil {
		t.Fatal(err)
	}
	env, err := req.Env()
	if err != nil {
		t.Fatal(err)
	}
	frame, err := wire.AppendMatrix(nil, env.ETC())
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeEnvContentKey(frame, wire.ContentTypeMatrix)
	if err != nil {
		t.Fatal(err)
	}
	if got != keyOf(env) {
		t.Error("binary frame and JSON body hash to different keys")
	}
}

// TestStreamingDistinctKeys: environments that differ in any hashed component
// must land on different keys (weights and dims are hashed; names are not).
func TestStreamingDistinctKeys(t *testing.T) {
	base := `{"etc":[[1,2],[3,4]]}`
	distinct := map[string]string{
		"different cell":   `{"etc":[[1,2],[3,5]]}`,
		"different shape":  `{"etc":[[1,2,3,4]]}`,
		"task weights":     `{"etc":[[1,2],[3,4]],"taskWeights":[2,1]}`,
		"machine weights":  `{"etc":[[1,2],[3,4]],"machineWeights":[2,1]}`,
		"inf substitution": `{"etc":[[1,2],[3,"inf"]]}`,
	}
	baseKey, err := DecodeEnvContentKey([]byte(base), "application/json")
	if err != nil {
		t.Fatal(err)
	}
	for name, body := range distinct {
		t.Run(name, func(t *testing.T) {
			k, err := DecodeEnvContentKey([]byte(body), "application/json")
			if err != nil {
				t.Fatal(err)
			}
			if k == baseKey {
				t.Error("distinct environment collided with the base key")
			}
		})
	}
	// Names are intentionally excluded: the measures ignore them.
	named := `{"etc":[[1,2],[3,4]],"taskNames":["a","b"],"machineNames":["x","y"]}`
	k, err := DecodeEnvContentKey([]byte(named), "application/json")
	if err != nil {
		t.Fatal(err)
	}
	if k != baseKey {
		t.Error("names changed the content key; they must not")
	}
}

// TestStreamingErrorEquivalence pins the scanner's error behavior against the
// reference path for semantically invalid bodies: same rejection, and for the
// value-constraint cases the same wording.
func TestStreamingErrorEquivalence(t *testing.T) {
	cases := map[string]string{
		"zero etc":      `{"etc":[[0,1],[2,3]]}`,
		"negative etc":  `{"etc":[[-1,1],[2,3]]}`,
		"negative ecs":  `{"ecs":[[1,-1],[1,1]]}`,
		"infinite ecs":  `{"ecs":[[1,1e999],[1,1]]}`,
		"ragged etc":    `{"etc":[[1,2],[3]]}`,
		"both forms":    `{"etc":[[1,2]],"ecs":[[1,2]]}`,
		"no form":       `{"taskNames":["a"]}`,
		"bad names len": `{"etc":[[1,2]],"taskNames":["a","b"]}`,
		"bad csv":       `{"csv":"not,a\nvalid"}`,
	}
	for name, body := range cases {
		t.Run(name, func(t *testing.T) {
			var req characterizeRequest
			var refErr error
			if refErr = json.Unmarshal([]byte(body), &req); refErr == nil {
				_, refErr = req.Env()
			}
			p := acquirePayload()
			defer releasePayload(p)
			streamErr := p.parseJSONEnv([]byte(body))
			if streamErr == nil {
				_, streamErr = p.env()
			}
			if refErr == nil {
				t.Fatalf("reference path accepted %q; this table is for invalid bodies", name)
			}
			if streamErr == nil {
				t.Fatalf("streaming path accepted an invalid body the reference rejects: %v", refErr)
			}
			// Value-constraint errors carry exact positions; those wordings are
			// part of the API surface and must match the reference.
			if strings.Contains(refErr.Error(), "must be") && streamErr.Error() != refErr.Error() {
				t.Errorf("wording drifted:\n stream %q\n ref    %q", streamErr, refErr)
			}
		})
	}
}

// TestStreamingScannerRejects covers tokenization-level failures that must
// abort the scan (and map to a global 400).
func TestStreamingScannerRejects(t *testing.T) {
	cases := map[string]string{
		"not json":           "etc",
		"trailing bytes":     envBody + "{}",
		"unterminated":       `{"etc":[[1,2]`,
		"bad literal":        `{"etc":[[1,2]],"x":tru}`,
		"bad escape":         `{"etc":[[1,2]],"taskNames":["\q"]}`,
		"truncated escape":   `{"etc":[[1,2]],"taskNames":["\u00`,
		"control char":       "{\"etc\":[[1,2]],\"taskNames\":[\"a\x01\"]}",
		"string in ecs":      `{"ecs":[["inf",1]]}`,
		"non-inf string etc": `{"etc":[["soon",1]]}`,
		"overflow number":    `{"etc":[[1e999,1]]}`,
		"duplicate etc":      `{"etc":[[1,2]],"etc":[[3,4]]}`,
		"bare number cell":   `{"etc":[[,1]]}`,
	}
	for name, body := range cases {
		t.Run(name, func(t *testing.T) {
			p := acquirePayload()
			defer releasePayload(p)
			if err := p.parseJSONEnv([]byte(body)); err == nil {
				t.Error("scanner accepted a malformed body")
			}
		})
	}
}

// TestStreamingBatchEquivalence runs the batch scanner against the reference
// batchRequest decode: same item count, same per-item validity, same keys.
func TestStreamingBatchEquivalence(t *testing.T) {
	body := `{"envs":[
		{"etc":[[10,20],[30,15]]},
		{"ecs":[[1,-1],[1,1]]},
		{"etc":[[10,20],[30,15]]},
		{"csv":"task,m1,m2\na,1,2\nb,3,4\n"}
	],"note":"ignored"}`
	var ref batchRequest
	if err := json.Unmarshal([]byte(body), &ref); err != nil {
		t.Fatal(err)
	}
	var keys []cacheKey
	var errsSeen []bool
	p := acquirePayload()
	defer releasePayload(p)
	err := scanJSONBatch([]byte(body), p, func(itemErr error) {
		errsSeen = append(errsSeen, itemErr != nil)
		if itemErr == nil {
			keys = append(keys, p.key)
		} else {
			keys = append(keys, cacheKey{})
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(errsSeen) != len(ref.Envs) {
		t.Fatalf("scanned %d items, reference has %d", len(errsSeen), len(ref.Envs))
	}
	for i, dto := range ref.Envs {
		env, refErr := dto.Env()
		if (refErr != nil) != errsSeen[i] {
			t.Errorf("item %d: stream invalid=%v, reference err=%v", i, errsSeen[i], refErr)
			continue
		}
		if refErr == nil && keys[i] != keyOf(env) {
			t.Errorf("item %d: key diverges from reference", i)
		}
	}
	if keys[0] != keys[2] {
		t.Error("identical batch items landed on different keys")
	}
}

// TestStreamingWhatifDTOAlive keeps the reference whatif DTO in the
// equivalence loop: its embedded EnvDTO must decode the same bodies the
// streaming path serves.
func TestStreamingWhatifDTOAlive(t *testing.T) {
	var req whatifRequest
	if err := json.Unmarshal([]byte(envBody), &req); err != nil {
		t.Fatal(err)
	}
	env, err := req.Env()
	if err != nil {
		t.Fatal(err)
	}
	k, err := DecodeEnvContentKey([]byte(envBody), "application/json")
	if err != nil {
		t.Fatal(err)
	}
	if k != keyOf(env) {
		t.Error("whatif DTO and streaming path disagree on the key")
	}
}

// TestContentHasherMatchesEnv checks the incremental hasher against the
// one-shot Env.ContentKey on an environment with every optional component.
func TestContentHasherMatchesEnv(t *testing.T) {
	env, err := etcmat.ReadETCCSV(strings.NewReader("task,m1,m2\na,10,20\nb,30,15\n"))
	if err != nil {
		t.Fatal(err)
	}
	env, err = env.WithWeights([]float64{2, 3}, []float64{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	h := etcmat.NewContentHasher()
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			h.WriteValue(env.ECSAt(i, j))
		}
	}
	h.WriteValues([]float64{2, 3})
	h.WriteValues([]float64{1, 4})
	if h.Sum(2, 2) != env.ContentKey() {
		t.Error("incremental hash diverges from Env.ContentKey")
	}
}

// envFrame60x40 builds a KindEnv frame (the cluster-forward body form) with
// explicit non-unit weights, large enough that an allocation proportional to
// the matrix would be unmistakable in the alloc counters.
func envFrame60x40(t testing.TB) []byte {
	t.Helper()
	const r, c = 60, 40
	f := &wire.EnvFrame{Rows: r, Cols: c}
	f.ECS = make([]float64, r*c)
	for k := range f.ECS {
		f.ECS[k] = float64(k%97) + 0.5
	}
	f.TaskWeights = make([]float64, r)
	for i := range f.TaskWeights {
		f.TaskWeights[i] = float64(i%5) + 1
	}
	f.MachineWeights = make([]float64, c)
	for j := range f.MachineWeights {
		f.MachineWeights[j] = float64(j%3) + 1
	}
	frame, err := wire.AppendEnv(nil, f)
	if err != nil {
		t.Fatal(err)
	}
	return frame
}

// TestEnvFrameKeyEquivalence: the in-place env-frame decode must land on the
// same content key as the reference wire.DecodeEnv + Env materialization, or
// forwarded requests would split the cluster's key space.
func TestEnvFrameKeyEquivalence(t *testing.T) {
	frame := envFrame60x40(t)
	p := acquirePayload()
	defer releasePayload(p)
	if err := p.parseBinaryEnv(frame); err != nil {
		t.Fatalf("env frame decode: %v", err)
	}
	env, err := p.env()
	if err != nil {
		t.Fatalf("env frame env(): %v", err)
	}
	if p.key != keyOf(env) {
		t.Error("scanned env-frame key diverges from materialized key")
	}
	f, _, err := wire.DecodeEnv(frame)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := f.Rows, env.Tasks(); got != want {
		t.Errorf("rows %d, want %d", got, want)
	}
	for i, w := range f.TaskWeights {
		if env.TaskWeights()[i] != w {
			t.Fatalf("task weight %d diverges", i)
		}
	}
}

// TestEnvFrameDecodeZeroAlloc pins the PR 6 follow-up: the warm forwarded-
// request decode — a KindEnv frame scanned into a pooled payload — must not
// allocate. One cold decode sizes the pooled cell and weight buffers; every
// decode after that reuses them.
func TestEnvFrameDecodeZeroAlloc(t *testing.T) {
	frame := envFrame60x40(t)
	p := acquirePayload()
	defer releasePayload(p)
	if err := p.parseBinaryEnv(frame); err != nil {
		t.Fatalf("warmup decode: %v", err)
	}
	avg := testing.AllocsPerRun(200, func() {
		p.reset()
		if err := p.parseBinaryEnv(frame); err != nil {
			t.Fatalf("warm decode: %v", err)
		}
	})
	if avg != 0 {
		t.Errorf("warm env-frame decode allocates %.1f objects per run, want 0", avg)
	}
}

// BenchmarkEnvFrameDecode measures the hot cluster-forward decode: bytes to
// content key on a pooled payload.
func BenchmarkEnvFrameDecode(b *testing.B) {
	frame := envFrame60x40(b)
	p := acquirePayload()
	defer releasePayload(p)
	b.SetBytes(int64(len(frame)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.reset()
		if err := p.parseBinaryEnv(frame); err != nil {
			b.Fatal(err)
		}
	}
}
