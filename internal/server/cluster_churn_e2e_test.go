package server

import (
	"bytes"
	"io"
	"net"
	"net/http"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/etcmat"
)

// staleViewNode is a cluster-mode server with a FROZEN membership view: it is
// served straight from s.Handler() on a pre-bound listener and Run is never
// called, so no gossip loop ever reconciles its ring with anyone else's. This
// is the pathological deployment state the hop-count loop guard exists for.
type staleViewNode struct {
	srv  *Server
	addr string // advertised host:port
	base string
}

// startStaleViewNode serves a node whose ring is self + exactly the given
// peers, forever.
func startStaleViewNode(t *testing.T, ln net.Listener, peers []string, replicas int) *staleViewNode {
	t.Helper()
	addr := ln.Addr().String()
	s := New(Config{
		Addr:    addr,
		Workers: 2,
		Logger:  quietLogger(),
		Cluster: &cluster.Config{
			Self:         addr,
			Peers:        peers,
			Replicas:     replicas,
			VirtualNodes: 16,
			Logger:       quietLogger(),
		},
	})
	go http.Serve(ln, s.Handler())
	t.Cleanup(func() { ln.Close() })
	return &staleViewNode{srv: s, addr: addr, base: "http://" + addr}
}

// TestClusterStaleViewHopBound is the loop-guard regression test. Divergent
// frozen membership views cannot make strict-primary forwarding cycle (every
// view agrees on the per-key vnode scan order, and each hop strictly descends
// it), but they CAN build arbitrarily long chains — and replica-read fan-out
// may climb back up the order, which is where an unguarded request ping-pongs
// forever. The hop count on X-HC-Forwarded bounds both. This test pins the
// deterministic half: a four-node ownership chain n1→n2→n3→n4 where n4 is
// unreachable. The request must terminate at n3 with a 200 served locally at
// MaxForwardHops — n3 never even attempts the forward its stale ring asks for
// — and every node's accounting identity still balances.
func TestClusterStaleViewHopBound(t *testing.T) {
	lns := make([]net.Listener, 3)
	addrs := make([]string, 4)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i], addrs[i] = ln, ln.Addr().String()
	}
	// The fourth address is real but refuses connections: a forward attempt
	// at it (the regression) would surface as a forward error on n3.
	ln4, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrs[3] = ln4.Addr().String()
	ln4.Close()
	a1, a2, a3, a4 := addrs[0], addrs[1], addrs[2], addrs[3]

	// Divergent two-node views chained tail to head: each node knows only
	// itself and the next node in the chain.
	view1 := []string{a2}
	view2 := []string{a3}
	view3 := []string{a4}

	// Reconstruct each node's ring client-side (vnode placement is purely
	// name-derived) and scan for a key whose per-view owner is the chain's
	// next node in all three views at once.
	ringOf := func(nodes ...string) *cluster.Ring {
		r := cluster.NewRing(1, 16)
		for _, n := range nodes {
			r.Add(n)
		}
		return r
	}
	ring1 := ringOf(a1, a2)
	ring2 := ringOf(a2, a3)
	ring3 := ringOf(a3, a4)

	var body []byte
	var key etcmat.ContentKey
	found := false
	for seed := int64(1); seed <= 2000 && !found; seed++ {
		b, k := clusterEnv(t, seed)
		if ring1.Owners(k)[0] == a2 && ring2.Owners(k)[0] == a3 && ring3.Owners(k)[0] == a4 {
			body, key, found = b, k, true
		}
	}
	if !found {
		t.Fatal("no chained key in 2000 seeds (ring placement changed?)")
	}

	n1 := startStaleViewNode(t, lns[0], view1, 1)
	n2 := startStaleViewNode(t, lns[1], view2, 1)
	n3 := startStaleViewNode(t, lns[2], view3, 1)

	// Sanity: the chain is real — no live node believes it owns the key.
	for _, n := range []*staleViewNode{n1, n2, n3} {
		if n.srv.router.LocallyOwned(cacheKey(key)) {
			t.Fatalf("node %s believes it owns the scanned key; the views do not chain", n.addr)
		}
	}

	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Post(n1.base+"/v1/characterize", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("request into the chained topology failed: %v", err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}

	time.Sleep(100 * time.Millisecond) // let forward accounting land
	c1 := scrapeNodeCounters(t, n1.base)
	c2 := scrapeNodeCounters(t, n2.base)
	c3 := scrapeNodeCounters(t, n3.base)

	// The chain must be exactly n1→n2→n3, with n3 computing locally at the
	// hop limit despite its stale ring pointing at the unreachable a4.
	if got := c1["hcserved_forwarded_total"]; got != 1 {
		t.Errorf("n1 forwarded %d times, want 1", got)
	}
	if got := c2["hcserved_forwarded_total"]; got != 1 {
		t.Errorf("n2 forwarded %d times, want 1", got)
	}
	if got := c3["hcserved_forwarded_total"]; got != 0 {
		t.Errorf("n3 forwarded %d times, want 0 (it sits at MaxForwardHops)", got)
	}
	if got := c3["hcserved_forward_errors_total"]; got != 0 {
		t.Errorf("n3 recorded %d forward errors — it attempted the forward the hop bound forbids", got)
	}
	if got := c3["hcserved_cache_misses_total"]; got != 1 {
		t.Errorf("n3 recorded %d misses, want 1 (the terminal local compute)", got)
	}
	for i, c := range []map[string]uint64{c1, c2, c3} {
		served := c[`hcserved_requests_total{endpoint="characterize",code="200"}`]
		accounted := c["hcserved_cache_hits_total"] + c["hcserved_cache_misses_total"] +
			c["hcserved_coalesced_total"] + c["hcserved_forwarded_total"]
		if served != accounted {
			t.Errorf("node %d accounting broken: served=%d, accounted=%d", i+1, served, accounted)
		}
	}
}

// TestClusterJoinLeaveHandoff is the churn e2e the CI workflow runs under
// -race: a warm two-node cluster gains a third node, the losers stream their
// warm entries for the moved ranges to it (handoff_sent reconciles exactly
// against the joiner's handoff_received), and the first requests for moved
// keys hit the joiner's cache warm instead of recomputing. Then the joiner is
// killed: the survivors re-shard among themselves and no re-sent request is
// lost.
func TestClusterJoinLeaveHandoff(t *testing.T) {
	n1 := startClusterNode(t, nil, 2, nil)
	n2 := startClusterNode(t, []string{n1.srv.BoundAddr()}, 2, nil)
	pair := []*clusterNode{n1, n2}
	waitRingSize(t, pair, 2)

	// Warm phase: with two nodes and R=2 every key is locally owned, so each
	// body computes and caches on exactly the node it was sent to.
	const nBodies = 40
	bodies := make([][]byte, nBodies)
	keys := make([]etcmat.ContentKey, nBodies)
	for i := range bodies {
		bodies[i], keys[i] = clusterEnv(t, int64(5000+i))
		node := pair[i%2]
		resp, err := http.Post(node.base+"/v1/characterize", "application/json", bytes.NewReader(bodies[i]))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("warm request %d: status %d", i, resp.StatusCode)
		}
	}

	// Join: the ring change fires handoff on both incumbents.
	n3 := startClusterNode(t, []string{n1.srv.BoundAddr()}, 2, nil)
	all := []*clusterNode{n1, n2, n3}
	waitRingSize(t, all, 3)

	// The handoff counters must reconcile exactly: every entry the losers
	// report sent was imported by the joiner.
	var sent, received uint64
	deadline := time.Now().Add(10 * time.Second)
	for {
		sent = scrapeNodeCounters(t, n1.base)["hcserved_handoff_sent_total"] +
			scrapeNodeCounters(t, n2.base)["hcserved_handoff_sent_total"]
		received = scrapeNodeCounters(t, n3.base)["hcserved_handoff_received_total"]
		if sent > 0 && sent == received {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("handoff never reconciled: sent=%d received=%d", sent, received)
		}
		time.Sleep(25 * time.Millisecond)
	}

	// Every key the joiner now owns moved to it (it owned nothing before), so
	// its first request for each must be a warm hit off the handed-off entry.
	before := scrapeNodeCounters(t, n3.base)
	moved := 0
	for i, k := range keys {
		if !n3.srv.router.LocallyOwned(cacheKey(k)) {
			continue
		}
		moved++
		resp, err := http.Post(n3.base+"/v1/characterize", "application/json", bytes.NewReader(bodies[i]))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("moved-key request %d: status %d", i, resp.StatusCode)
		}
	}
	if moved == 0 {
		t.Fatal("the joiner owns none of the warmed keys; the scenario tests nothing")
	}
	after := scrapeNodeCounters(t, n3.base)
	hits := after["hcserved_cache_hits_total"] - before["hcserved_cache_hits_total"]
	warmRate := float64(hits) / float64(moved)
	t.Logf("join handoff: sent=%d received=%d moved=%d warm hits=%d (rate %.2f)",
		sent, received, moved, hits, warmRate)
	if warmRate < 0.7 {
		t.Errorf("post-handoff warm hit rate %.2f on %d moved keys, want >= 0.70", warmRate, moved)
	}

	// Leave: kill the joiner. The survivors notice the death, re-shard, and
	// hand off promoted ranges among themselves; re-sending every body across
	// the survivors must lose nothing.
	if err, timedOut := n3.stop(); timedOut {
		t.Fatal("joiner never exited")
	} else if err != nil {
		t.Fatalf("joiner did not drain cleanly: %v", err)
	}
	waitRingSize(t, pair, 2)

	lost := 0
	for i := range bodies {
		ok := false
		for a := 0; a < 2*len(pair); a++ {
			node := pair[(i+a)%len(pair)]
			resp, err := http.Post(node.base+"/v1/characterize", "application/json", bytes.NewReader(bodies[i]))
			if err != nil {
				continue
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				ok = true
				break
			}
		}
		if !ok {
			lost++
		}
	}
	if lost != 0 {
		t.Fatalf("%d requests lost across the leave; churn demands zero", lost)
	}

	time.Sleep(300 * time.Millisecond)
	for _, n := range pair {
		c := scrapeNodeCounters(t, n.base)
		served := c[`hcserved_requests_total{endpoint="characterize",code="200"}`]
		accounted := c["hcserved_cache_hits_total"] + c["hcserved_cache_misses_total"] +
			c["hcserved_coalesced_total"] + c["hcserved_forwarded_total"]
		if served != accounted {
			t.Errorf("survivor %s accounting broken: served=%d, accounted=%d", n.base, served, accounted)
		}
	}
}
