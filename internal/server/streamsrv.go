package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/etcmat"
	"repro/internal/obs"
	"repro/internal/wire"
)

// This file is the streaming online characterization endpoint (v1.2,
// DESIGN.md §16): POST /v1/stream holds one long-lived full-duplex request
// per session. The client opens with an environment, then sends mutations —
// add/drop task, add/drop machine, cell edits, weight updates — and after
// each one receives the updated heterogeneity profile, computed by
// core.MutableEnv from the previous solve's warm-start seed instead of a
// cold characterization. Two framings share the handler: newline-delimited
// JSON (one op object per line in, one response envelope per line out), and
// the binary wire format (a matrix/env frame to open, KindMutation frames
// after, profile frames back). EOF on the request body closes the session;
// in JSON an explicit {"op":"close"} additionally returns a summary line.
//
// A session holds no compute slot while idle: each profile solve passes
// through the same bounded admission queue as a one-shot request, so many
// parked sessions cost goroutines, not workers. Session count is its own
// admission axis (Config.MaxStreamSessions -> 503 session_limit), and a
// session that sends nothing for Config.StreamIdleTimeout is evicted with a
// session_idle error line.

// streamRequest is one NDJSON line of a stream session's request body.
type streamRequest struct {
	// Op is one of "open", "add_task", "add_machine", "drop_task",
	// "drop_machine", "set_cell", "weights", "close".
	Op string `json:"op"`
	// Env opens the session (op "open" only).
	Env *EnvDTO `json:"env,omitempty"`
	// DriftTolerance optionally overrides the incremental solver's
	// re-anchoring drift tolerance (op "open"; <= 0 selects
	// core.DefaultDriftTolerance).
	DriftTolerance float64 `json:"driftTolerance,omitempty"`
	// Name optionally names an added task/machine. The default is "t+N" /
	// "m+N" with N the session's accepted-mutation count — collision-free
	// with the generated "t1".."tN" names of the opening environment.
	Name string `json:"name,omitempty"`
	// Speeds is the new ECS row (add_task) or column (add_machine).
	Speeds []float64 `json:"speeds,omitempty"`
	// Index selects the victim of drop_task / drop_machine.
	Index int `json:"index,omitempty"`
	// Task, Machine and Value address a set_cell edit (Value is an ECS
	// speed, 0 marking an impossible pairing).
	Task    int     `json:"task,omitempty"`
	Machine int     `json:"machine,omitempty"`
	Value   float64 `json:"value,omitempty"`
	// TaskWeights / MachineWeights replace the weight vectors (op "weights";
	// omitting one keeps the existing vector; both update atomically).
	TaskWeights    []float64 `json:"taskWeights,omitempty"`
	MachineWeights []float64 `json:"machineWeights,omitempty"`
}

// StreamUpdate is one NDJSON line of a stream session's response: the
// profile after an open or mutation, an in-stream error, or the close
// summary. Exactly one of Profile, Error or Closed is set. Exported for the
// StreamClient and the load-generator tooling.
type StreamUpdate struct {
	Version string `json:"api_version"`
	// Seq numbers a session's response lines from 0 (the open profile).
	Seq int `json:"seq"`
	// Profile is the environment's profile after the op was applied.
	Profile *ProfileDTO `json:"profile,omitempty"`
	// Incremental reports whether the profile came from a warm-started
	// incremental solve (absent on the open line, which is always cold).
	Incremental *bool `json:"incremental,omitempty"`
	// Closed marks the final summary line of a cleanly closed JSON session.
	Closed bool `json:"closed,omitempty"`
	// IncrementalTotal / RecomputedTotal summarize the session on close.
	IncrementalTotal int `json:"incrementalTotal,omitempty"`
	RecomputedTotal  int `json:"recomputedTotal,omitempty"`
	// Error carries an in-stream failure. invalid_mutation and overloaded
	// leave the session open with its state untouched; every other code is
	// terminal.
	Error *apiErrorBody `json:"error,omitempty"`
}

// sessionRegistry bounds concurrently live stream sessions — the admission
// axis for long-lived connections, separate from the per-solve compute
// queue.
type sessionRegistry struct {
	active atomic.Int64
	max    int64
}

func (r *sessionRegistry) acquire() bool {
	if r.active.Add(1) > r.max {
		r.active.Add(-1)
		return false
	}
	return true
}

func (r *sessionRegistry) release() { r.active.Add(-1) }

// streamSession is the per-connection state of one /v1/stream request.
type streamSession struct {
	s          *Server
	w          http.ResponseWriter
	rc         *http.ResponseController
	me         *core.MutableEnv
	seq        int  // response lines/frames written
	muts       int  // mutations accepted; names generated tasks/machines
	bin        bool // binary framing
	headerSent bool
}

// handleStream serves POST /v1/stream. Mounted with recovery and
// observability but neither the request timeout (sessions are long-lived by
// design) nor response compression (a gzip writer buffers across flush
// boundaries, which would hold profile lines back from the client).
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	// Full duplex: the handler keeps reading mutation lines after it has
	// started writing profiles. HTTP/2 supports this natively; for HTTP/1.1
	// the controller must opt in. This must happen before ANY response write,
	// including the session-limit rejection below — without it, net/http
	// drains the request body before emitting headers (go#15527), which on a
	// client still streaming its body blocks the response forever. An
	// unsupported transport just means the client has to pipeline, so the
	// error is ignorable.
	rc := http.NewResponseController(w)
	_ = rc.EnableFullDuplex()

	if !s.streams.acquire() {
		writeError(w, http.StatusServiceUnavailable, codeSessionLimit,
			fmt.Sprintf("server at its %d-session stream limit; retry after one closes", s.cfg.MaxStreamSessions))
		_ = rc.Flush()
		return
	}
	defer s.streams.release()

	sess := &streamSession{
		s:   s,
		w:   w,
		rc:  rc,
		bin: mediaType(r) == wire.ContentTypeMatrix,
	}
	defer func() {
		if sess.me != nil {
			sess.me.Close()
		}
	}()
	if sess.bin {
		sess.runBinary(r)
	} else {
		sess.runJSON(r)
	}
}

// bumpIdle pushes the read deadline out by the idle timeout; a session that
// stays quiet past it is evicted (the next read fails with
// os.ErrDeadlineExceeded and the handler answers session_idle).
func (ss *streamSession) bumpIdle() {
	if ss.s.cfg.StreamIdleTimeout > 0 {
		_ = ss.rc.SetReadDeadline(time.Now().Add(ss.s.cfg.StreamIdleTimeout))
	}
}

// solveCtx bounds one profile solve with the ordinary per-request deadline —
// the session is unbounded, each computation inside it is not.
func (ss *streamSession) solveCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if ss.s.cfg.RequestTimeout > 0 {
		return context.WithTimeout(ctx, ss.s.cfg.RequestTimeout)
	}
	return context.WithCancel(ctx)
}

// writeLine emits one JSON response line and flushes it. Binary sessions
// also come through here for errors and nothing else — errors are always
// the JSON envelope, matching the one-shot binary endpoints.
func (ss *streamSession) writeLine(u *StreamUpdate) {
	u.Version = APIVersion
	u.Seq = ss.seq
	ss.seq++
	if !ss.headerSent {
		ss.headerSent = true
		ss.w.Header().Set("Content-Type", "application/x-ndjson")
		ss.w.WriteHeader(http.StatusOK)
	}
	if err := json.NewEncoder(ss.w).Encode(u); err != nil {
		ss.s.log.Error("encoding stream update", "err", err)
		return
	}
	_ = ss.rc.Flush()
}

// writeProfile emits one profile result in the session's framing: a JSON
// line, or a wire profile frame whose cached bit carries the incremental
// flag (the one-shot cache never serves streams, so the bit is free here;
// documented in API.md §Streaming sessions).
func (ss *streamSession) writeProfile(p *core.Profile, warm *bool) {
	if !ss.bin {
		ss.writeLine(&StreamUpdate{Profile: ProfileToDTO(p, false), Incremental: warm})
		return
	}
	ss.seq++
	buf, err := wire.AppendProfile(nil, profileToWire(p, warm != nil && *warm))
	if err != nil {
		ss.s.log.Error("encoding stream profile frame", "err", err)
		return
	}
	if !ss.headerSent {
		ss.headerSent = true
		ss.w.Header().Set("Content-Type", wire.ContentTypeProfile)
		ss.w.WriteHeader(http.StatusOK)
	}
	if _, err := ss.w.Write(buf); err != nil {
		ss.s.log.Error("writing stream profile frame", "err", err)
		return
	}
	_ = ss.rc.Flush()
}

func (ss *streamSession) writeStreamError(code, message string) {
	ss.writeLine(&StreamUpdate{Error: &apiErrorBody{Code: code, Message: message}})
}

// admitCode maps an admission failure onto its in-stream error code.
func admitCode(err error) (code, message string) {
	switch {
	case errors.Is(err, ErrOverloaded):
		return codeOverloaded, "server at capacity; the session stays open — retry the mutation"
	case errors.Is(err, context.DeadlineExceeded):
		return codeTimeout, "deadline expired while queued for a compute slot"
	default:
		return codeCanceled, "session canceled"
	}
}

// open computes the session's opening cold profile and installs the
// MutableEnv. It reports whether the session may continue; on false the
// error line has been written.
func (ss *streamSession) open(ctx context.Context, env *etcmat.Env, tol float64) bool {
	sp := obs.StartSpan(ctx, "stream_open")
	defer sp.End()
	release, err := ss.s.adm.Enter(ctx)
	if err != nil {
		env.ReleaseBuffers()
		ss.writeStreamError(admitCode(err))
		return false
	}
	defer release()
	sctx, cancel := ss.solveCtx(ss.s.computeCtx(ctx))
	defer cancel()
	ss.me = core.NewMutableEnv(sctx, env, tol)
	ss.s.streamSessions.Inc()
	ss.s.streamProfiles.Inc()
	ss.writeProfile(ss.me.Profile(), nil)
	return true
}

// runMutation claims a compute slot, applies one mutation and writes the
// result. A rejected mutation (bad index, wrong-length vector, non-finite
// value) leaves the session state untouched and the stream open; so does an
// overloaded admission queue.
func (ss *streamSession) runMutation(ctx context.Context, kind string,
	apply func(ctx context.Context) (*core.Profile, bool, error)) {
	sp := obs.StartSpan(ctx, "stream_mutation")
	defer sp.End()
	release, err := ss.s.adm.Enter(ctx)
	if err != nil {
		ss.writeStreamError(admitCode(err))
		return
	}
	defer release()
	sctx, cancel := ss.solveCtx(ss.s.computeCtx(ctx))
	defer cancel()
	p, warm, err := apply(sctx)
	if err != nil {
		ss.s.streamRejected.Inc()
		ss.writeStreamError(codeInvalidMutation, err.Error())
		return
	}
	ss.muts++
	ss.s.metrics.Counter("hcserved_stream_mutations_total",
		"Stream-session mutations accepted, by kind.", `kind="`+kind+`"`).Inc()
	ss.s.streamProfiles.Inc()
	if warm {
		ss.s.streamIncremental.Inc()
	} else {
		ss.s.streamRecomputed.Inc()
	}
	ss.writeProfile(p, &warm)
}

// mutate dispatches one decoded wire mutation (shared by both framings;
// name applies to the add ops and may be empty for the generated default).
func (ss *streamSession) mutate(ctx context.Context, m wire.Mutation, name string) {
	me := ss.me
	switch m.Op {
	case wire.MutAddTask:
		if name == "" {
			name = fmt.Sprintf("t+%d", ss.muts+1)
		}
		ss.runMutation(ctx, m.OpName(), func(ctx context.Context) (*core.Profile, bool, error) {
			return me.AddTask(ctx, name, m.Values)
		})
	case wire.MutAddMachine:
		if name == "" {
			name = fmt.Sprintf("m+%d", ss.muts+1)
		}
		ss.runMutation(ctx, m.OpName(), func(ctx context.Context) (*core.Profile, bool, error) {
			return me.AddMachine(ctx, name, m.Values)
		})
	case wire.MutDropTask:
		ss.runMutation(ctx, m.OpName(), func(ctx context.Context) (*core.Profile, bool, error) {
			return me.DropTask(ctx, m.Task)
		})
	case wire.MutDropMachine:
		ss.runMutation(ctx, m.OpName(), func(ctx context.Context) (*core.Profile, bool, error) {
			return me.DropMachine(ctx, m.Machine)
		})
	case wire.MutSetCell:
		ss.runMutation(ctx, m.OpName(), func(ctx context.Context) (*core.Profile, bool, error) {
			return me.SetCell(ctx, m.Task, m.Machine, m.Values[0])
		})
	case wire.MutTaskWeights:
		ss.runMutation(ctx, m.OpName(), func(ctx context.Context) (*core.Profile, bool, error) {
			return me.SetWeights(ctx, m.Values, nil)
		})
	case wire.MutMachineWeights:
		ss.runMutation(ctx, m.OpName(), func(ctx context.Context) (*core.Profile, bool, error) {
			return me.SetWeights(ctx, nil, m.Values)
		})
	default:
		ss.writeStreamError(codeInvalidMutation, fmt.Sprintf("unknown mutation op %d", m.Op))
	}
}

// closeSummary writes the JSON close line (binary sessions just end).
func (ss *streamSession) closeSummary() {
	if ss.bin || ss.me == nil {
		return
	}
	inc, rec := ss.me.Counts()
	ss.writeLine(&StreamUpdate{Closed: true, IncrementalTotal: inc, RecomputedTotal: rec})
}

// runJSON drives an NDJSON-framed session: one op object per request line,
// one StreamUpdate per response line.
func (ss *streamSession) runJSON(r *http.Request) {
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 0, 64<<10), int(ss.s.cfg.MaxBodyBytes))
	for {
		ss.bumpIdle()
		if !sc.Scan() {
			switch err := sc.Err(); {
			case err == nil: // clean EOF closes the session
				ss.closeSummary()
			case errors.Is(err, os.ErrDeadlineExceeded):
				ss.writeStreamError(codeSessionIdle,
					fmt.Sprintf("no mutation within the %s idle timeout", ss.s.cfg.StreamIdleTimeout))
			default:
				ss.s.log.Error("stream session read", "err", err)
			}
			return
		}
		line := trimASCIISpace(sc.Bytes())
		if len(line) == 0 {
			continue // blank lines are keep-alives
		}
		var req streamRequest
		if err := json.Unmarshal(line, &req); err != nil {
			// The line framing itself is broken; nothing after it can be
			// trusted, so this one is terminal.
			ss.writeStreamError(codeInvalidRequest, "malformed stream line: "+err.Error())
			return
		}
		if ss.me == nil {
			if req.Op != "open" || req.Env == nil {
				ss.writeStreamError(codeInvalidRequest, `the first stream line must be {"op":"open","env":{...}}`)
				return
			}
			env, err := req.Env.Env()
			if err != nil {
				ss.writeStreamError(codeInvalidRequest, err.Error())
				return
			}
			if !ss.open(r.Context(), env, req.DriftTolerance) {
				return
			}
			continue
		}
		switch req.Op {
		case "close":
			ss.closeSummary()
			return
		case "open":
			ss.writeStreamError(codeInvalidMutation, "session already open")
		case "add_task":
			ss.mutate(r.Context(), wire.Mutation{Op: wire.MutAddTask, Task: -1, Machine: -1, Values: req.Speeds}, req.Name)
		case "add_machine":
			ss.mutate(r.Context(), wire.Mutation{Op: wire.MutAddMachine, Task: -1, Machine: -1, Values: req.Speeds}, req.Name)
		case "drop_task":
			ss.mutate(r.Context(), wire.Mutation{Op: wire.MutDropTask, Task: req.Index, Machine: -1}, "")
		case "drop_machine":
			ss.mutate(r.Context(), wire.Mutation{Op: wire.MutDropMachine, Task: -1, Machine: req.Index}, "")
		case "set_cell":
			ss.mutate(r.Context(), wire.Mutation{Op: wire.MutSetCell, Task: req.Task, Machine: req.Machine, Values: []float64{req.Value}}, "")
		case "weights":
			ss.applyWeights(r.Context(), req.TaskWeights, req.MachineWeights)
		default:
			ss.writeStreamError(codeInvalidMutation, fmt.Sprintf("unknown op %q", req.Op))
		}
	}
}

// applyWeights maps the JSON "weights" op, which may carry either or both
// vectors, onto the mutation runner. A both-vector update applies atomically
// through one SetWeights call and is accounted under kind="weights";
// single-vector updates use the wire kinds so JSON and binary sessions meter
// identically.
func (ss *streamSession) applyWeights(ctx context.Context, tw, mw []float64) {
	me := ss.me
	switch {
	case tw != nil && mw != nil:
		ss.runMutation(ctx, "weights", func(ctx context.Context) (*core.Profile, bool, error) {
			return me.SetWeights(ctx, tw, mw)
		})
	case tw != nil:
		ss.mutate(ctx, wire.Mutation{Op: wire.MutTaskWeights, Task: -1, Machine: -1, Values: tw}, "")
	case mw != nil:
		ss.mutate(ctx, wire.Mutation{Op: wire.MutMachineWeights, Task: -1, Machine: -1, Values: mw}, "")
	default:
		ss.writeStreamError(codeInvalidMutation, "weights op carries neither vector")
	}
}

// runBinary drives a binary-framed session: a matrix or env frame opens it,
// KindMutation frames follow, and each accepted frame answers with a profile
// frame (its cached bit carrying the incremental flag). EOF between frames
// closes. Errors answer with the JSON error envelope and end the stream —
// the frame boundary cannot be trusted after a malformed frame.
func (ss *streamSession) runBinary(r *http.Request) {
	br := bufio.NewReader(r.Body)
	var frame []byte
	for {
		ss.bumpIdle()
		n, err := readFrame(br, &frame, int(ss.s.cfg.MaxBodyBytes))
		if err != nil {
			switch {
			case err == io.EOF: // clean close between frames
			case errors.Is(err, os.ErrDeadlineExceeded):
				ss.writeStreamError(codeSessionIdle,
					fmt.Sprintf("no mutation within the %s idle timeout", ss.s.cfg.StreamIdleTimeout))
			default:
				ss.writeStreamError(codeInvalidRequest, err.Error())
			}
			return
		}
		if ss.me == nil {
			p := acquirePayload()
			perr := p.parseBinaryEnv(frame[:n])
			var env *etcmat.Env
			if perr == nil {
				env, perr = p.env()
			}
			releasePayload(p)
			if perr != nil {
				ss.writeStreamError(codeInvalidRequest, perr.Error())
				return
			}
			if !ss.open(r.Context(), env, 0) {
				return
			}
			continue
		}
		m, _, merr := wire.DecodeMutation(frame[:n])
		if merr != nil {
			ss.writeStreamError(codeInvalidRequest, merr.Error())
			return
		}
		ss.mutate(r.Context(), m, "")
	}
}

// readFrame reads exactly one wire frame into *frame (growing it as needed,
// reusing it across calls) and returns its length. io.EOF is returned only
// on a clean frame boundary.
func readFrame(br *bufio.Reader, frame *[]byte, maxBytes int) (int, error) {
	if cap(*frame) < wire.HeaderSize {
		*frame = make([]byte, wire.HeaderSize, 4<<10)
	}
	head := (*frame)[:wire.HeaderSize]
	if _, err := io.ReadFull(br, head); err != nil {
		if err == io.ErrUnexpectedEOF {
			return 0, fmt.Errorf("truncated frame header")
		}
		return 0, err // io.EOF at the boundary, or a deadline/transport error
	}
	size, err := wire.PeekFrameSize(head)
	if err != nil {
		return 0, err
	}
	if maxBytes > 0 && size > maxBytes {
		return 0, fmt.Errorf("frame of %d bytes exceeds the %d-byte limit", size, maxBytes)
	}
	if cap(*frame) < size {
		next := make([]byte, size)
		copy(next, head)
		*frame = next
	}
	full := (*frame)[:size]
	if _, err := io.ReadFull(br, full[wire.HeaderSize:]); err != nil {
		return 0, fmt.Errorf("truncated frame payload: %v", err)
	}
	return size, nil
}

// trimASCIISpace trims the whitespace NDJSON framing allows around a line.
func trimASCIISpace(b []byte) []byte {
	for len(b) > 0 && (b[0] == ' ' || b[0] == '\t' || b[0] == '\r' || b[0] == '\n') {
		b = b[1:]
	}
	for len(b) > 0 && (b[len(b)-1] == ' ' || b[len(b)-1] == '\t' || b[len(b)-1] == '\r' || b[len(b)-1] == '\n') {
		b = b[:len(b)-1]
	}
	return b
}
