package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	cfg.Logger = quietLogger()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func post(t *testing.T, ts *httptest.Server, path, contentType, body string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, contentType, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(b)
}

func get(t *testing.T, ts *httptest.Server, path string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(b)
}

func decodeProfile(t *testing.T, body string) ProfileDTO {
	t.Helper()
	var p ProfileDTO
	if err := json.Unmarshal([]byte(body), &p); err != nil {
		t.Fatalf("decoding profile %q: %v", body, err)
	}
	return p
}

const envBody = `{"etc":[[10,"inf",7],[4,2,9],[5,6,1]]}`

func TestCharacterizeEndpoint(t *testing.T) {
	_, ts := testServer(t, Config{})

	resp, body := post(t, ts, "/v1/characterize", "application/json", envBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	p := decodeProfile(t, body)
	if p.Tasks != 3 || p.Machines != 3 {
		t.Errorf("shape %dx%d, want 3x3", p.Tasks, p.Machines)
	}
	if p.MPH <= 0 || p.MPH > 1 || p.TDH <= 0 || p.TDH > 1 {
		t.Errorf("measures out of range: MPH=%g TDH=%g", p.MPH, p.TDH)
	}
	if p.TMA == nil {
		t.Errorf("TMA missing: %s", body)
	}
	if p.Cached {
		t.Error("first request reported cached")
	}

	// Identical body → cache hit.
	resp2, body2 := post(t, ts, "/v1/characterize", "application/json", envBody)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp2.StatusCode, body2)
	}
	p2 := decodeProfile(t, body2)
	if !p2.Cached {
		t.Error("identical request missed the cache")
	}
	if p2.MPH != p.MPH || p2.TDH != p.TDH || *p2.TMA != *p.TMA {
		t.Error("cached profile differs from computed profile")
	}
}

func TestCharacterizeCSV(t *testing.T) {
	_, ts := testServer(t, Config{})
	csv := "task,m1,m2\ngcc,10,20\nmcf,30,inf\n"
	resp, body := post(t, ts, "/v1/characterize", "text/csv", csv)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	p := decodeProfile(t, body)
	if p.Tasks != 2 || p.Machines != 2 {
		t.Errorf("shape %dx%d, want 2x2", p.Tasks, p.Machines)
	}
}

func TestCharacterizeMalformed(t *testing.T) {
	_, ts := testServer(t, Config{})
	for name, tc := range map[string]struct{ ct, body string }{
		"not json":        {"application/json", "{"},
		"trailing bytes":  {"application/json", envBody + "{}"},
		"no matrix":       {"application/json", `{"taskNames":["a"]}`},
		"both forms":      {"application/json", `{"etc":[[1,2],[2,1]],"ecs":[[1,2],[2,1]]}`},
		"negative ecs":    {"application/json", `{"ecs":[[1,-1],[1,1]]}`},
		"zero etc":        {"application/json", `{"etc":[[0,1],[1,1]]}`},
		"all-inf row":     {"application/json", `{"etc":[["inf","inf"],[1,2]]}`},
		"bad csv":         {"text/csv", "not,a\nvalid"},
		"bad weights":     {"application/json", `{"etc":[[1,2],[2,1]],"taskWeights":[-1,1]}`},
		"nan-like string": {"application/json", `{"etc":[["nan",2],[2,1]]}`},
	} {
		t.Run(name, func(t *testing.T) {
			resp, body := post(t, ts, "/v1/characterize", tc.ct, tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400: %s", resp.StatusCode, body)
			}
			var env apiError
			if err := json.Unmarshal([]byte(body), &env); err != nil {
				t.Fatalf("error envelope is not JSON: %s", body)
			}
			if env.Error.Code != "invalid_request" || env.Error.Message == "" {
				t.Errorf("envelope = %+v", env.Error)
			}
		})
	}
}

// TestBodyLimit pins the oversized-body contract: exceeding MaxBodyBytes is
// its own condition — 413 with the stable code body_too_large — on every
// body-decoding endpoint, distinct from the 400 invalid_request class.
func TestBodyLimit(t *testing.T) {
	_, ts := testServer(t, Config{MaxBodyBytes: 128})
	big := `{"etc":[[` + strings.Repeat("1,", 200) + `1]]}`
	for _, tc := range []struct {
		name, path, ct, body string
	}{
		{"characterize json", "/v1/characterize", "application/json", big},
		{"characterize binary", "/v1/characterize", "application/x-hc-matrix", string(make([]byte, 256))},
		{"characterize csv", "/v1/characterize", "text/csv", "t," + strings.Repeat("m,", 200) + "m\n"},
		{"batch", "/v1/characterize/batch", "application/json", `{"envs":[` + big + `]}`},
		{"whatif", "/v1/whatif", "application/json", big},
		{"generate", "/v1/generate", "application/json", `{"kind":"range","note":"` + strings.Repeat("x", 200) + `"}`},
	} {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := post(t, ts, tc.path, tc.ct, tc.body)
			if resp.StatusCode != http.StatusRequestEntityTooLarge {
				t.Fatalf("status %d, want 413: %s", resp.StatusCode, body)
			}
			var env apiError
			if err := json.Unmarshal([]byte(body), &env); err != nil {
				t.Fatalf("error envelope is not JSON: %s", body)
			}
			if env.Error.Code != "body_too_large" {
				t.Errorf("code = %q, want body_too_large", env.Error.Code)
			}
			if !strings.Contains(env.Error.Message, "bytes") {
				t.Errorf("limit error does not mention the byte cap: %s", body)
			}
		})
	}
	// Exactly at the cap is fine (128-byte cap, body well under it).
	resp, body := post(t, ts, "/v1/characterize", "application/json", `{"etc":[[1,2],[3,4]]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("under-cap body: status %d: %s", resp.StatusCode, body)
	}
}

func TestBatchEndpoint(t *testing.T) {
	_, ts := testServer(t, Config{})
	req := `{"envs":[
		{"etc":[[10,20],[30,15]]},
		{"ecs":[[1,-1],[1,1]]},
		{"etc":[[10,20],[30,15]]},
		{"csv":"task,m1,m2\na,1,2\nb,3,4\n"}
	]}`
	resp, body := post(t, ts, "/v1/characterize/batch", "application/json", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out batchResponse
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Profiles) != 4 {
		t.Fatalf("%d items, want 4", len(out.Profiles))
	}
	if out.Profiles[0].Profile == nil || out.Profiles[0].Error != nil {
		t.Errorf("item 0 = %+v, want a profile", out.Profiles[0])
	}
	if out.Profiles[1].Profile != nil || out.Profiles[1].Error == nil || out.Profiles[1].Error.Code != codeInvalidRequest {
		t.Errorf("item 1 = %+v, want an invalid_request error", out.Profiles[1])
	}
	if out.Profiles[3].Profile == nil {
		t.Errorf("item 3 (csv) = %+v, want a profile", out.Profiles[3])
	}

	// Replaying the batch must serve every valid item from the cache.
	resp, body = post(t, ts, "/v1/characterize/batch", "application/json", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("replay status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatal(err)
	}
	for i, item := range out.Profiles {
		if i == 1 {
			continue // the invalid item stays invalid
		}
		if item.Profile == nil || !item.Profile.Cached {
			t.Errorf("replayed item %d missed the cache: %+v", i, item)
		}
	}

	t.Run("empty batch", func(t *testing.T) {
		resp, body := post(t, ts, "/v1/characterize/batch", "application/json", `{"envs":[]}`)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d, want 400: %s", resp.StatusCode, body)
		}
	})
	t.Run("oversized batch", func(t *testing.T) {
		_, ts := testServer(t, Config{MaxBatchEnvs: 2})
		resp, body := post(t, ts, "/v1/characterize/batch", "application/json",
			`{"envs":[{"etc":[[1,2],[2,1]]},{"etc":[[1,2],[2,1]]},{"etc":[[1,2],[2,1]]}]}`)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d, want 400: %s", resp.StatusCode, body)
		}
	})
}

func TestGenerateEndpoint(t *testing.T) {
	_, ts := testServer(t, Config{})
	for name, body := range map[string]string{
		"range":    `{"kind":"range","tasks":6,"machines":4,"seed":1,"rTask":50,"rMach":10}`,
		"cvb":      `{"kind":"cvb","tasks":6,"machines":4,"seed":2,"vTask":0.4,"vMach":0.3,"muTask":30}`,
		"targeted": `{"kind":"targeted","tasks":8,"machines":5,"seed":3,"mph":0.7,"tdh":0.8,"tma":0.2}`,
	} {
		t.Run(name, func(t *testing.T) {
			resp, out := post(t, ts, "/v1/generate", "application/json", body)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d: %s", resp.StatusCode, out)
			}
			var g generateResponse
			if err := json.Unmarshal([]byte(out), &g); err != nil {
				t.Fatal(err)
			}
			if g.Env == nil || len(g.Env.ETC) == 0 {
				t.Fatalf("no environment in response: %s", out)
			}
			if g.Profile == nil {
				t.Fatalf("no profile in response: %s", out)
			}
			if name == "targeted" {
				if g.Mix == nil {
					t.Error("targeted response missing mix")
				}
				if g.Profile.TMA == nil || *g.Profile.TMA < 0.1 || *g.Profile.TMA > 0.3 {
					t.Errorf("achieved TMA %v, requested 0.2", g.Profile.TMA)
				}
			}
		})
	}

	t.Run("deterministic for a fixed seed", func(t *testing.T) {
		body := `{"kind":"range","tasks":4,"machines":3,"seed":9,"rTask":20,"rMach":5}`
		_, a := post(t, ts, "/v1/generate", "application/json", body)
		_, b := post(t, ts, "/v1/generate", "application/json", body)
		var ga, gb generateResponse
		if err := json.Unmarshal([]byte(a), &ga); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal([]byte(b), &gb); err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(ga.Env.ETC) != fmt.Sprint(gb.Env.ETC) {
			t.Error("same seed produced different environments")
		}
		// The second call must also have hit the profile cache.
		if !gb.Profile.Cached {
			t.Error("repeated generation missed the profile cache")
		}
	})

	for name, body := range map[string]string{
		"unknown kind":   `{"kind":"zipf","tasks":4,"machines":3}`,
		"bad dimensions": `{"kind":"range","tasks":0,"machines":3,"rTask":10,"rMach":10}`,
		"bad ranges":     `{"kind":"range","tasks":4,"machines":3,"rTask":0.5,"rMach":10}`,
		"tma range":      `{"kind":"targeted","tasks":4,"machines":3,"mph":0.9,"tdh":0.9,"tma":1.5}`,
	} {
		t.Run("rejects "+name, func(t *testing.T) {
			resp, out := post(t, ts, "/v1/generate", "application/json", body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400: %s", resp.StatusCode, out)
			}
		})
	}
}

func TestWhatifEndpoint(t *testing.T) {
	_, ts := testServer(t, Config{})
	resp, body := post(t, ts, "/v1/whatif", "application/json", `{"etc":[[10,20,5],[30,15,8],[7,9,11]]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out whatifResponse
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatal(err)
	}
	if out.Baseline == nil {
		t.Fatal("missing baseline")
	}
	if len(out.Deltas) != 6 { // 3 machines + 3 task types
		t.Fatalf("%d deltas, want 6", len(out.Deltas))
	}
	kinds := map[string]int{}
	for _, d := range out.Deltas {
		kinds[d.Kind]++
		if d.Error == "" && d.DMPH == nil {
			t.Errorf("delta %s/%s has neither value nor error", d.Kind, d.Name)
		}
	}
	if kinds["machine"] != 3 || kinds["task"] != 3 {
		t.Errorf("delta kinds = %v", kinds)
	}

	t.Run("malformed", func(t *testing.T) {
		resp, _ := post(t, ts, "/v1/whatif", "application/json", `{"etc":[[1]]`)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", resp.StatusCode)
		}
	})
}

func TestOverloadSheds429(t *testing.T) {
	s, ts := testServer(t, Config{Workers: 1, QueueDepth: -1}) // no waiting room
	// Occupy the single compute slot directly; the next request must be
	// shed immediately.
	release, err := s.adm.Enter(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	resp, body := post(t, ts, "/v1/characterize", "application/json", envBody)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	var env apiError
	if err := json.Unmarshal([]byte(body), &env); err != nil || env.Error.Code != "overloaded" {
		t.Errorf("envelope = %s", body)
	}

	// A cache hit must still be served while the pool is saturated: warm the
	// cache first (release the slot for one request), then saturate again.
	release()
	if resp, _ := post(t, ts, "/v1/characterize", "application/json", envBody); resp.StatusCode != http.StatusOK {
		t.Fatalf("warming request failed: %d", resp.StatusCode)
	}
	release2, err := s.adm.Enter(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release2()
	resp3, body3 := post(t, ts, "/v1/characterize", "application/json", envBody)
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("cache hit shed during overload: %d %s", resp3.StatusCode, body3)
	}
	if !decodeProfile(t, body3).Cached {
		t.Error("expected a cached profile during overload")
	}
}

func TestQueuedRequestTimesOut(t *testing.T) {
	s, ts := testServer(t, Config{Workers: 1, QueueDepth: 8, RequestTimeout: 30 * time.Millisecond})
	release, err := s.adm.Enter(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	resp, body := post(t, ts, "/v1/characterize", "application/json", envBody)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", resp.StatusCode, body)
	}
	var env apiError
	if err := json.Unmarshal([]byte(body), &env); err != nil || env.Error.Code != "timeout" {
		t.Errorf("envelope = %s", body)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := testServer(t, Config{})
	resp, body := get(t, ts, "/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var h map[string]any
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatal(err)
	}
	if h["status"] != "ok" {
		t.Errorf("status = %v", h["status"])
	}
	for _, key := range []string{"uptimeSeconds", "inflight", "queued", "cacheEntries", "workers", "goVersion"} {
		if _, ok := h[key]; !ok {
			t.Errorf("healthz missing %q: %s", key, body)
		}
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := testServer(t, Config{})
	// Generate traffic: one miss, one hit, one 400.
	post(t, ts, "/v1/characterize", "application/json", envBody)
	post(t, ts, "/v1/characterize", "application/json", envBody)
	post(t, ts, "/v1/characterize", "application/json", "{")

	resp, body := get(t, ts, "/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	for _, want := range []string{
		"hcserved_cache_hits_total 1",
		"hcserved_cache_misses_total 1",
		"hcserved_characterizations_total 1",
		`hcserved_requests_total{endpoint="characterize",code="200"} 2`,
		`hcserved_requests_total{endpoint="characterize",code="400"} 1`,
		"hcserved_request_seconds_bucket",
		"hcserved_queue_depth 0",
		"hcserved_inflight 0",
		"hcserved_cache_entries 1",
		"hcserved_uptime_seconds",
		"hcserved_rejected_total 0",
		"hcserved_panics_total 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestPanicRecovery(t *testing.T) {
	s := New(Config{Logger: quietLogger()})
	s.mux.Handle("GET /boom", s.withRecovery(s.withObservability("boom",
		http.HandlerFunc(func(http.ResponseWriter, *http.Request) { panic("kaboom") }))))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, body := get(t, ts, "/boom")
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500: %s", resp.StatusCode, body)
	}
	var env apiError
	if err := json.Unmarshal([]byte(body), &env); err != nil || env.Error.Code != "internal" {
		t.Errorf("envelope = %s", body)
	}
	if s.panics.Value() != 1 {
		t.Errorf("panic counter = %d", s.panics.Value())
	}
}

func TestMethodAndPathErrors(t *testing.T) {
	_, ts := testServer(t, Config{})
	resp, _ := get(t, ts, "/v1/characterize")
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET on a POST route: %d, want 405", resp.StatusCode)
	}
	resp2, _ := get(t, ts, "/nope")
	if resp2.StatusCode != http.StatusNotFound {
		t.Errorf("unknown path: %d, want 404", resp2.StatusCode)
	}
}

// TestServerConcurrentMixedLoad hammers the full stack — cache hits, cold
// misses, batches, scrapes — from many goroutines over a tiny cache and
// queue, so admission, eviction and metrics interleave; with -race this is
// the serving tier's end-to-end data-race gate.
func TestServerConcurrentMixedLoad(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 4, QueueDepth: 4, CacheSize: 4})
	client := ts.Client()
	bodies := make([]string, 12)
	for i := range bodies {
		bodies[i] = fmt.Sprintf(`{"etc":[[%d,20,5],[30,15,8],[7,9,%d]]}`, i+10, i+11)
	}
	var wg sync.WaitGroup
	var served, shed, failed int64
	var mu sync.Mutex
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				var resp *http.Response
				var err error
				switch i % 5 {
				case 4:
					resp, err = client.Get(ts.URL + "/metrics")
				case 3:
					resp, err = client.Post(ts.URL+"/v1/characterize/batch", "application/json",
						strings.NewReader(`{"envs":[`+bodies[(i+w)%len(bodies)]+`,`+bodies[(i+w+1)%len(bodies)]+`]}`))
				default:
					resp, err = client.Post(ts.URL+"/v1/characterize", "application/json",
						strings.NewReader(bodies[(i*w)%len(bodies)]))
				}
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				mu.Lock()
				switch {
				case resp.StatusCode == http.StatusOK:
					served++
				case resp.StatusCode == http.StatusTooManyRequests:
					shed++
				default:
					failed++
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if failed > 0 {
		t.Errorf("%d requests failed with unexpected statuses", failed)
	}
	if served == 0 {
		t.Error("no request succeeded under concurrent load")
	}
	t.Logf("served=%d shed=%d", served, shed)
}

// TestRunGracefulDrain runs the real listener, cancels the run context while
// a request is in flight, and requires both a clean drain (Run returns nil)
// and a completed response.
func TestRunGracefulDrain(t *testing.T) {
	s := New(Config{Addr: "127.0.0.1:0", Workers: 2, Logger: quietLogger()})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Run(ctx) }()
	var addr string
	for i := 0; i < 200; i++ {
		if addr = s.BoundAddr(); addr != "" {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if addr == "" {
		t.Fatal("listener never came up")
	}
	base := "http://" + addr

	// A moderately expensive request (leave-one-out on 12x6 = 18 full
	// characterizations) so the drain window is non-trivial.
	body := `{"kind":"range","tasks":12,"machines":6,"seed":5,"rTask":100,"rMach":10}`
	resp, err := http.Post(base+"/v1/generate", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var g generateResponse
	if err := json.NewDecoder(resp.Body).Decode(&g); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	envJSON, err := json.Marshal(g.Env)
	if err != nil {
		t.Fatal(err)
	}

	type result struct {
		status int
		err    error
	}
	inflight := make(chan result, 1)
	go func() {
		resp, err := http.Post(base+"/v1/whatif", "application/json", strings.NewReader(string(envJSON)))
		if err != nil {
			inflight <- result{err: err}
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		inflight <- result{status: resp.StatusCode}
	}()
	time.Sleep(20 * time.Millisecond) // let the request reach the handler
	cancel()

	r := <-inflight
	if r.err != nil {
		t.Errorf("in-flight request dropped during drain: %v", r.err)
	} else if r.status != http.StatusOK {
		t.Errorf("in-flight request status %d during drain", r.status)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("Run returned %v, want nil after a clean drain", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after cancellation")
	}
	// The listener must actually be closed.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Error("listener still accepting connections after shutdown")
	}
}
