package server

import (
	"context"
	"log/slog"
	"net/http"
	"runtime/debug"
	"strconv"
	"strings"

	"repro/internal/obs"
)

// statusRecorder captures the status code and body size a handler wrote, for
// the request log and the per-endpoint metrics.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	n, err := r.ResponseWriter.Write(p)
	r.bytes += int64(n)
	return n, err
}

// Unwrap lets http.ResponseController reach the underlying connection for
// Flush, SetReadDeadline and EnableFullDuplex — the stream endpoint needs
// all three through this wrapper. Writes still pass through the recorder, so
// the byte accounting is unaffected.
func (r *statusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

// withRecovery converts a handler panic into a 500 with the standard error
// envelope instead of killing the connection (and, under http.Server's
// default behavior, spamming the log with a stack dump per request). The
// stack is logged once, structured.
func (s *Server) withRecovery(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				s.log.Error("panic in handler",
					"method", r.Method,
					"path", r.URL.Path,
					"panic", rec,
					"stack", string(debug.Stack()))
				s.panics.Inc()
				// The header may already be gone; best effort.
				writeError(w, http.StatusInternalServerError, codeInternal, "internal server error")
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// withObservability wraps every request with a request ID, an obs.Trace,
// structured logging and the request counter / latency histogram for its
// endpoint. The trace rides the request context, so handler stages and the
// compute pipeline's nested spans all land on it; after the handler returns,
// every span is fed into the per-stage latency histogram and the trace
// summary is logged at debug level.
func (s *Server) withObservability(endpoint string, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// A sane client-supplied X-Request-ID is adopted rather than replaced,
		// so one request keeps one ID across a peer forward (and any proxy
		// that stamped it earlier); anything long or unprintable is discarded.
		reqID := sanitizeRequestID(r.Header.Get("X-Request-ID"))
		if reqID == "" {
			reqID = s.reqIDs.next()
		}
		tr := obs.New(reqID, endpoint)
		r = r.WithContext(obs.NewContext(r.Context(), tr))
		w.Header().Set("X-Request-ID", reqID)
		rec := &statusRecorder{ResponseWriter: w}
		next.ServeHTTP(rec, r)
		if rec.status == 0 {
			rec.status = http.StatusOK
		}
		elapsed := tr.Elapsed()
		s.metrics.Counter("hcserved_requests_total",
			"HTTP requests by endpoint and status code.",
			`endpoint="`+endpoint+`",code="`+strconv.Itoa(rec.status)+`"`).Inc()
		s.metrics.Histogram("hcserved_request_seconds",
			"Request latency by endpoint.",
			`endpoint="`+endpoint+`"`).Observe(elapsed.Seconds())
		for _, sp := range tr.Spans() {
			labels := `stage="` + sp.Name + `"`
			if strings.HasSuffix(sp.Name, "_parallel") {
				// Parallel pipeline stages carry the worker budget they ran
				// under, so dashboards can attribute latency shifts to a
				// worker-count change rather than a workload change.
				labels += `,workers="` + strconv.Itoa(s.cfg.Workers) + `"`
			}
			s.metrics.Histogram("hcserved_stage_seconds",
				"Stage latency within a request (top-level stages plus nested pipeline spans).",
				labels).Observe(sp.Dur.Seconds())
		}
		s.log.Info("request",
			"method", r.Method,
			"path", r.URL.Path,
			"endpoint", endpoint,
			"request_id", reqID,
			"status", rec.status,
			"bytes", rec.bytes,
			"duration_ms", float64(elapsed.Microseconds())/1000,
			"remote", r.RemoteAddr)
		if s.log.Enabled(r.Context(), slog.LevelDebug) {
			s.log.Debug("trace", "request_id", reqID, "endpoint", endpoint, "spans", tr.Summary())
		}
	})
}

// withTimeout attaches the per-request deadline to the request context; the
// compute path checks it at admission and between batch items.
func (s *Server) withTimeout(next http.Handler) http.Handler {
	if s.cfg.RequestTimeout <= 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}
