package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/etcmat"
	"repro/internal/gen"
)

// clusterNode is one Run-backed server of a test cluster: a real listener on
// 127.0.0.1:0, its own cancel func (cancelling is the kill switch), and the
// Run error for drain assertions.
type clusterNode struct {
	srv    *Server
	base   string
	cancel context.CancelFunc
	done   chan error

	stopOnce sync.Once
	runErr   error
	timedOut bool
}

// stop kills the node (idempotently) and returns Run's error once drained.
func (n *clusterNode) stop() (error, bool) {
	n.stopOnce.Do(func() {
		n.cancel()
		select {
		case n.runErr = <-n.done:
		case <-time.After(10 * time.Second):
			n.timedOut = true
		}
	})
	return n.runErr, n.timedOut
}

// startClusterNode boots a cluster-mode server on a kernel-assigned port and
// waits for the listener. Fast gossip/suspicion intervals keep membership
// convergence inside test budgets.
func startClusterNode(t *testing.T, seeds []string, replicas int, logger *slog.Logger) *clusterNode {
	t.Helper()
	if logger == nil {
		logger = quietLogger()
	}
	s := New(Config{
		Addr:    "127.0.0.1:0",
		Workers: 2,
		Logger:  logger,
		Cluster: &cluster.Config{
			Peers:          seeds,
			Replicas:       replicas,
			VirtualNodes:   16,
			GossipInterval: 50 * time.Millisecond,
			SuspectAfter:   300 * time.Millisecond,
			DeadAfter:      900 * time.Millisecond,
			ProbeTimeout:   250 * time.Millisecond,
			Logger:         logger,
		},
	})
	ctx, cancel := context.WithCancel(context.Background())
	n := &clusterNode{srv: s, cancel: cancel, done: make(chan error, 1)}
	go func() { n.done <- s.Run(ctx) }()
	for i := 0; i < 400; i++ {
		if addr := s.BoundAddr(); addr != "" {
			n.base = "http://" + addr
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if n.base == "" {
		cancel()
		t.Fatal("cluster node listener never came up")
	}
	t.Cleanup(func() {
		if _, timedOut := n.stop(); timedOut {
			t.Error("cluster node did not drain")
		}
	})
	return n
}

// waitRingSize polls until every given node's ring holds want members.
func waitRingSize(t *testing.T, nodes []*clusterNode, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		converged := true
		for _, n := range nodes {
			if n.srv.router.Ring().Len() != want {
				converged = false
				break
			}
		}
		if converged {
			return
		}
		if time.Now().After(deadline) {
			for _, n := range nodes {
				t.Logf("node %s ring=%d peers=%v", n.base, n.srv.router.Ring().Len(), n.srv.router.Peers())
			}
			t.Fatalf("membership never converged to %d ring nodes", want)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// clusterEnv renders one generated environment as a characterize JSON body
// and returns it with its content key, so tests can steer bodies at owners
// or non-owners deliberately.
func clusterEnv(t *testing.T, seed int64) ([]byte, etcmat.ContentKey) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	env, err := gen.RangeBased(8, 5, 100, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(EnvToDTO(env))
	if err != nil {
		t.Fatal(err)
	}
	return body, env.ContentKey()
}

// scrapeNodeCounters parses a node's /metrics into name{labels} -> value.
func scrapeNodeCounters(t *testing.T, base string) map[string]uint64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("scraping %s/metrics: %v", base, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]uint64)
	for _, line := range strings.Split(string(raw), "\n") {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		if v, err := strconv.ParseUint(fields[1], 10, 64); err == nil {
			out[fields[0]] = v
		}
	}
	return out
}

// syncLogBuffer is a concurrency-safe sink for a node's slog output.
type syncLogBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncLogBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncLogBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestClusterForwardTraceAndRequestID pins the forwarded-request observability
// contract on a live two-node cluster: a request for a non-owned key carries
// its client-supplied X-Request-ID through the peer forward (the owner's
// request log shows the same ID), and the requester's ?trace=1 breakdown
// reports a forward stage disjoint from decode — with no local compute stage,
// because the owner did the computing.
func TestClusterForwardTraceAndRequestID(t *testing.T) {
	var ownerLog syncLogBuffer
	ownerLogger := slog.New(slog.NewTextHandler(&ownerLog, nil))

	// Replicas=1 makes ownership exclusive, so a non-owned key MUST forward.
	n1 := startClusterNode(t, nil, 1, nil)
	n2 := startClusterNode(t, []string{n1.srv.BoundAddr()}, 1, ownerLogger)
	waitRingSize(t, []*clusterNode{n1, n2}, 2)

	// Find a body node1 does not own: with two nodes and R=1 about half the
	// seeds qualify, so a short scan cannot plausibly run dry.
	var body []byte
	found := false
	for seed := int64(1); seed <= 64; seed++ {
		b, key := clusterEnv(t, seed)
		if !n1.srv.router.LocallyOwned(key) {
			body, found = b, true
			break
		}
	}
	if !found {
		t.Fatal("no non-owned key in 64 seeds (ring placement broken?)")
	}

	const reqID = "fwd-trace-e2e-1"
	req, err := http.NewRequest(http.MethodPost, n1.base+"/v1/characterize?trace=1", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-ID", reqID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	if got := resp.Header.Get("X-Request-ID"); got != reqID {
		t.Errorf("response X-Request-ID = %q, want the client-supplied %q", got, reqID)
	}

	var out struct {
		Timings *TimingsDTO `json:"timings"`
	}
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.Timings == nil {
		t.Fatal("traced response carried no timings")
	}
	if out.Timings.RequestID != reqID {
		t.Errorf("timings request id = %q, want %q", out.Timings.RequestID, reqID)
	}
	stages := map[string]StageTimingDTO{}
	for _, st := range out.Timings.Stages {
		stages[st.Stage] = st
	}
	fw, ok := stages["forward"]
	if !ok {
		t.Fatalf("no forward stage in trace: %+v", out.Timings.Stages)
	}
	if _, ok := stages["compute"]; ok {
		t.Error("forwarded request must not run local compute, but trace has a compute stage")
	}
	// Disjointness: the forward span starts at or after the decode span ends
	// (1µs tolerance for float rounding in the millisecond echo).
	if dec, ok := stages["decode"]; ok {
		if fw.StartMs < dec.StartMs+dec.Ms-0.001 {
			t.Errorf("forward stage [%f,+%f) overlaps decode [%f,+%f)",
				fw.StartMs, fw.Ms, dec.StartMs, dec.Ms)
		}
	} else {
		t.Error("trace missing decode stage")
	}

	// The owner served the forwarded request under the same request ID.
	deadline := time.Now().Add(2 * time.Second)
	for !strings.Contains(ownerLog.String(), "request_id="+reqID) {
		if time.Now().After(deadline) {
			t.Fatalf("owner log never showed request_id=%s:\n%s", reqID, ownerLog.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	ownerEntry := ""
	for _, line := range strings.Split(ownerLog.String(), "\n") {
		if strings.Contains(line, "request_id="+reqID) {
			ownerEntry = line
			break
		}
	}
	if !strings.Contains(ownerEntry, "endpoint=characterize") {
		t.Errorf("owner's forwarded request logged oddly: %s", ownerEntry)
	}
}

// TestClusterKillNodeRecovery is the e2e recovery smoke the CI workflow runs
// under -race: three Run-backed nodes, one killed mid-sequence, and two
// invariants at the end — no request to a surviving node was lost, and every
// surviving node's serving accounting balances exactly
// (hits+misses+coalesced+forwarded == characterize 200s).
func TestClusterKillNodeRecovery(t *testing.T) {
	n1 := startClusterNode(t, nil, 2, nil)
	n2 := startClusterNode(t, []string{n1.srv.BoundAddr()}, 2, nil)
	n3 := startClusterNode(t, []string{n1.srv.BoundAddr()}, 2, nil)
	all := []*clusterNode{n1, n2, n3}
	waitRingSize(t, all, 3)

	const nBodies = 24
	bodies := make([][]byte, nBodies)
	for i := range bodies {
		bodies[i], _ = clusterEnv(t, int64(1000+i))
	}

	lost := 0
	send := func(targets []*clusterNode, i int) {
		// Retry each body across the target rotation; only total failure
		// counts as lost.
		for a := 0; a < 2*len(targets); a++ {
			node := targets[(i+a)%len(targets)]
			resp, err := http.Post(node.base+"/v1/characterize", "application/json",
				bytes.NewReader(bodies[i]))
			if err != nil {
				continue
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		lost++
	}

	// Round 1: the full cluster, every body once. Most land on non-owners and
	// forward; owners compute and requesters back-fill.
	for i := range bodies {
		send(all, i)
	}

	// Kill node3 and immediately re-send on the survivors, before the failure
	// detector has noticed: forwards aimed at the dead owner must fall back
	// to local compute, not surface errors.
	if err, timedOut := n3.stop(); timedOut {
		t.Fatal("killed node never exited")
	} else if err != nil {
		t.Fatalf("killed node did not drain cleanly: %v", err)
	}
	survivors := []*clusterNode{n1, n2}
	for i := range bodies {
		send(survivors, i)
	}

	// Round 3 after the ring has healed: ownership excludes the dead node,
	// so everything resolves locally or via live forwards.
	waitRingSize(t, survivors, 2)
	for i := range bodies {
		send(survivors, i)
	}

	if lost != 0 {
		t.Fatalf("%d requests lost across the kill; the recovery invariant demands zero", lost)
	}

	// Let in-flight accounting land (the request counter increments after
	// the response bytes are on the wire; a cancelled hedge may still be
	// finishing) before scraping the invariant.
	time.Sleep(300 * time.Millisecond)
	for _, n := range survivors {
		c := scrapeNodeCounters(t, n.base)
		served := c[`hcserved_requests_total{endpoint="characterize",code="200"}`]
		accounted := c["hcserved_cache_hits_total"] + c["hcserved_cache_misses_total"] +
			c["hcserved_coalesced_total"] + c["hcserved_forwarded_total"]
		if served != accounted {
			t.Errorf("node %s accounting broken: served=%d but hits+misses+coalesced+forwarded=%d (hits=%d misses=%d coalesced=%d forwarded=%d)",
				n.base, served, accounted,
				c["hcserved_cache_hits_total"], c["hcserved_cache_misses_total"],
				c["hcserved_coalesced_total"], c["hcserved_forwarded_total"])
		}
		if c["hcserved_forwarded_total"] == 0 && c["hcserved_forward_errors_total"] == 0 {
			t.Errorf("node %s never touched the forward path; the test exercised nothing", n.base)
		}
	}
}

// TestClusterMetricsAggregation checks /metrics?cluster=1: the aggregated
// view must sum a counter across nodes and note nothing lost — served on
// different nodes, the same series line carries the cluster-wide total.
func TestClusterMetricsAggregation(t *testing.T) {
	n1 := startClusterNode(t, nil, 2, nil)
	n2 := startClusterNode(t, []string{n1.srv.BoundAddr()}, 2, nil)
	waitRingSize(t, []*clusterNode{n1, n2}, 2)

	for i := 0; i < 4; i++ {
		body, _ := clusterEnv(t, int64(2000+i))
		node := []*clusterNode{n1, n2}[i%2]
		resp, err := http.Post(node.base+"/v1/characterize", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d", i, resp.StatusCode)
		}
	}
	time.Sleep(200 * time.Millisecond)

	sumLocal := uint64(0)
	for _, n := range []*clusterNode{n1, n2} {
		c := scrapeNodeCounters(t, n.base)
		sumLocal += c[`hcserved_requests_total{endpoint="characterize",code="200"}`]
	}
	resp, err := http.Get(n1.base + "/metrics?cluster=1")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cluster metrics status %d", resp.StatusCode)
	}
	want := fmt.Sprintf(`hcserved_requests_total{endpoint="characterize",code="200"} %d`, sumLocal)
	if !strings.Contains(string(raw), want) {
		t.Errorf("aggregated metrics missing %q\n%s", want, raw)
	}
}
