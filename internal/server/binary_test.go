package server

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/matrix"
	"repro/internal/wire"
)

// etcFrame encodes an ETC matrix as one wire frame.
func etcFrame(t *testing.T, rows [][]float64) []byte {
	t.Helper()
	buf, err := wire.AppendMatrix(nil, matrix.FromRows(rows))
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

func postRaw(t *testing.T, ts *httptest.Server, path, contentType, accept string, body []byte) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+path, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", contentType)
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// TestBinaryCharacterize covers the full binary round trip: matrix frame in,
// profile frame out, sharing a cache entry with the equivalent JSON request.
func TestBinaryCharacterize(t *testing.T) {
	_, ts := testServer(t, Config{})
	frame := etcFrame(t, [][]float64{
		{10, math.Inf(1), 7},
		{4, 2, 9},
		{5, 6, 1},
	})

	resp, body := postRaw(t, ts, "/v1/characterize", wire.ContentTypeMatrix, wire.ContentTypeProfile, frame)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != wire.ContentTypeProfile {
		t.Fatalf("Content-Type %q, want %q", ct, wire.ContentTypeProfile)
	}
	p, n, err := wire.DecodeProfile(body)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(body) {
		t.Errorf("profile frame consumed %d of %d response bytes", n, len(body))
	}
	if p.Tasks != 3 || p.Machines != 3 {
		t.Errorf("shape %dx%d, want 3x3", p.Tasks, p.Machines)
	}
	if p.Cached {
		t.Error("first request reported cached")
	}

	// The same environment as JSON (envBody is this exact matrix) must hit
	// the entry the binary request seeded.
	resp2, jsonBody := post(t, ts, "/v1/characterize", "application/json", envBody)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp2.StatusCode, jsonBody)
	}
	jp := decodeProfile(t, jsonBody)
	if !jp.Cached {
		t.Error("JSON request missed the cache entry the binary request seeded")
	}
	if jp.MPH != p.MPH || jp.TDH != p.TDH || jp.COV != p.COV {
		t.Error("binary and JSON profiles disagree on the measures")
	}
	if jp.TMA == nil || !p.TMAValid || *jp.TMA != p.TMA {
		t.Errorf("TMA mismatch: json=%v binary=(%g valid=%v)", jp.TMA, p.TMA, p.TMAValid)
	}

	// Binary request, default Accept → JSON profile envelope.
	resp3, body3 := postRaw(t, ts, "/v1/characterize", wire.ContentTypeMatrix, "", frame)
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp3.StatusCode, body3)
	}
	if ct := resp3.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type %q, want application/json", ct)
	}
	if !decodeProfile(t, string(body3)).Cached {
		t.Error("binary replay missed the cache")
	}
}

// TestBinaryCharacterizeRejects pins the error behavior of the binary intake:
// errors are always the JSON envelope, whatever the request encoding.
func TestBinaryCharacterizeRejects(t *testing.T) {
	_, ts := testServer(t, Config{})
	valid := etcFrame(t, [][]float64{{1, 2}, {3, 4}})
	cases := map[string][]byte{
		"trailing bytes":  append(append([]byte(nil), valid...), 0xff),
		"truncated":       valid[:len(valid)-4],
		"garbage":         []byte("not a frame"),
		"zero etc cell":   etcFrame(t, [][]float64{{1, 0}, {3, 4}}),
		"negative cell":   etcFrame(t, [][]float64{{1, -2}, {3, 4}}),
		"profile kind in": func() []byte { b := append([]byte(nil), valid...); b[5] = wire.KindProfile; return b }(),
	}
	for name, body := range cases {
		t.Run(name, func(t *testing.T) {
			resp, b := postRaw(t, ts, "/v1/characterize", wire.ContentTypeMatrix, "", body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400: %s", resp.StatusCode, b)
			}
			var env apiError
			if err := json.Unmarshal(b, &env); err != nil {
				t.Fatalf("binary-request error is not the JSON envelope: %s", b)
			}
			if env.Error.Code != "invalid_request" || env.Error.Message == "" {
				t.Errorf("envelope = %+v", env.Error)
			}
		})
	}
}

// TestBinaryBatch sends concatenated frames and expects the usual JSON batch
// response, with dedup and caching behaving exactly as in the JSON form.
func TestBinaryBatch(t *testing.T) {
	_, ts := testServer(t, Config{})
	a := etcFrame(t, [][]float64{{10, 20}, {30, 15}})
	b := etcFrame(t, [][]float64{{1, 2, 3}, {4, 5, 6}})
	body := append(append(append([]byte(nil), a...), b...), a...) // a, b, a

	resp, out := postRaw(t, ts, "/v1/characterize/batch", wire.ContentTypeMatrix, "", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, out)
	}
	var br batchResponse
	if err := json.Unmarshal(out, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Profiles) != 3 {
		t.Fatalf("%d profiles, want 3", len(br.Profiles))
	}
	for i, item := range br.Profiles {
		if item.Error != nil {
			t.Errorf("item %d failed: %s", i, item.Error.Message)
		}
	}
	if br.Profiles[0].Profile.MPH != br.Profiles[2].Profile.MPH {
		t.Error("duplicate frames produced different profiles")
	}
	if br.Profiles[0].Profile.Machines != 2 || br.Profiles[1].Profile.Machines != 3 {
		t.Error("frames decoded with wrong shapes")
	}

	// Replay: every item cached now.
	_, out2 := postRaw(t, ts, "/v1/characterize/batch", wire.ContentTypeMatrix, "", body)
	var br2 batchResponse
	if err := json.Unmarshal(out2, &br2); err != nil {
		t.Fatal(err)
	}
	for i, item := range br2.Profiles {
		if item.Profile == nil || !item.Profile.Cached {
			t.Errorf("replayed item %d not served from cache", i)
		}
	}

	// An invalid frame mid-stream fails only its own item.
	bad := etcFrame(t, [][]float64{{1, 0}})
	mixed := append(append([]byte(nil), a...), bad...)
	_, out3 := postRaw(t, ts, "/v1/characterize/batch", wire.ContentTypeMatrix, "", mixed)
	var br3 batchResponse
	if err := json.Unmarshal(out3, &br3); err != nil {
		t.Fatal(err)
	}
	if len(br3.Profiles) != 2 || br3.Profiles[0].Error != nil || br3.Profiles[1].Error == nil {
		t.Errorf("mixed batch = %+v, want item 0 ok and item 1 failed", br3.Profiles)
	}
}

// TestBinaryWhatif runs the what-if study from a binary body.
func TestBinaryWhatif(t *testing.T) {
	_, ts := testServer(t, Config{})
	frame := etcFrame(t, [][]float64{{10, 20, 5}, {30, 15, 8}, {2, 4, 6}})
	resp, out := postRaw(t, ts, "/v1/whatif", wire.ContentTypeMatrix, "", frame)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, out)
	}
	var wr whatifResponse
	if err := json.Unmarshal(out, &wr); err != nil {
		t.Fatal(err)
	}
	if len(wr.Deltas) != 6 {
		t.Errorf("%d deltas, want 6 (3 tasks + 3 machines)", len(wr.Deltas))
	}
}

// TestGenerateBinaryEcho asks /v1/generate for the binary response: the
// generated ETC as a matrix frame followed by its profile frame, replayable
// byte-exactly through binary characterize.
func TestGenerateBinaryEcho(t *testing.T) {
	_, ts := testServer(t, Config{})
	req := `{"kind":"range","tasks":4,"machines":3,"rtask":100,"rmach":10,"seed":7}`
	resp, out := postRaw(t, ts, "/v1/generate", "application/json", wire.ContentTypeMatrix, []byte(req))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, out)
	}
	if ct := resp.Header.Get("Content-Type"); ct != wire.ContentTypeMatrix {
		t.Fatalf("Content-Type %q, want %q", ct, wire.ContentTypeMatrix)
	}
	m, n, err := wire.DecodeMatrix(out)
	if err != nil {
		t.Fatal(err)
	}
	p, n2, err := wire.DecodeProfile(out[n:])
	if err != nil {
		t.Fatal(err)
	}
	if n+n2 != len(out) {
		t.Fatalf("frames consumed %d+%d of %d bytes", n, n2, len(out))
	}
	if r, c := m.Dims(); r != 4 || c != 3 || p.Tasks != 4 || p.Machines != 3 {
		t.Errorf("matrix %dx%d / profile %dx%d, want 4x3", r, c, p.Tasks, p.Machines)
	}

	// Replay the echoed matrix frame: must be a cache hit (generate seeds the
	// cache under the same content key the ingestion path computes).
	resp2, out2 := postRaw(t, ts, "/v1/characterize", wire.ContentTypeMatrix, wire.ContentTypeProfile, out[:n])
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("replay status %d: %s", resp2.StatusCode, out2)
	}
	p2, _, err := wire.DecodeProfile(out2)
	if err != nil {
		t.Fatal(err)
	}
	if !p2.Cached {
		t.Error("replaying the generate echo missed the cache")
	}
	if p2.MPH != p.MPH || p2.TDH != p.TDH {
		t.Error("replayed profile disagrees with the generate profile")
	}

	// JSON response for the same generate request is unchanged by the binary
	// path existing.
	resp3, out3 := postRaw(t, ts, "/v1/generate", "application/json", "", []byte(req))
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp3.StatusCode, out3)
	}
	var gr generateResponse
	if err := json.Unmarshal(out3, &gr); err != nil {
		t.Fatal(err)
	}
	if gr.Profile.MPH != p.MPH {
		t.Error("JSON and binary generate disagree on the profile")
	}
}

// TestGenerateBinaryEchoTargetedMix: targeted generation reports the mix via
// the X-HC-Mix header in the binary form.
func TestGenerateBinaryEchoTargetedMix(t *testing.T) {
	_, ts := testServer(t, Config{})
	req := `{"kind":"targeted","tasks":6,"machines":5,"mph":0.5,"tdh":0.5,"tma":0.3,"tol":0.2,"seed":3}`
	resp, out := postRaw(t, ts, "/v1/generate", "application/json", wire.ContentTypeMatrix, []byte(req))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, out)
	}
	if resp.Header.Get("X-HC-Mix") == "" {
		t.Error("targeted binary response is missing the X-HC-Mix header")
	}
}

// TestBinaryCSVContentType: CSV ingestion rides the same dispatch.
func TestBinaryCSVContentType(t *testing.T) {
	_, ts := testServer(t, Config{})
	csv := "task,m1,m2\na,10,20\nb,30,15\n"
	for _, ct := range []string{"text/csv", "text/plain", "text/csv; charset=utf-8"} {
		resp, out := postRaw(t, ts, "/v1/characterize", ct, "", []byte(csv))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", ct, resp.StatusCode, out)
		}
	}
	// Same environment as JSON hits the CSV-seeded entry.
	resp, out := post(t, ts, "/v1/characterize", "application/json", `{"etc":[[10,20],[30,15]]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, out)
	}
	if !decodeProfile(t, out).Cached {
		t.Error("JSON request missed the CSV-seeded cache entry")
	}
}
