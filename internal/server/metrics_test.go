package server

import (
	"strings"
	"sync"
	"testing"
)

func TestMetricsRendering(t *testing.T) {
	m := NewMetrics()
	m.Counter("reqs_total", "Requests.", `endpoint="a"`).Add(3)
	m.Counter("reqs_total", "Requests.", `endpoint="b"`).Inc()
	m.Gauge("depth", "Queue depth.", func() float64 { return 7 })
	m.Histogram("lat_seconds", "Latency.", "").Observe(0.003)
	m.Histogram("lat_seconds", "Latency.", "").Observe(42) // beyond last bound

	var sb strings.Builder
	if _, err := m.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP reqs_total Requests.",
		"# TYPE reqs_total counter",
		`reqs_total{endpoint="a"} 3`,
		`reqs_total{endpoint="b"} 1`,
		"# TYPE depth gauge",
		"depth 7",
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.005"} 1`,
		`lat_seconds_bucket{le="+Inf"} 2`,
		"lat_seconds_count 2",
		"lat_seconds_sum 42.003",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}

	// Deterministic scrape: two renders must be byte-identical.
	var sb2 strings.Builder
	if _, err := m.WriteTo(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb2.String() != out {
		t.Error("two scrapes of an unchanged registry differ")
	}
}

func TestMetricsHistogramCumulative(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 1.7, 3, 100} {
		h.Observe(v)
	}
	// Cumulative counts: <=1: 1, <=2: 3, <=4: 4, +Inf: 5.
	cum := uint64(0)
	wants := []uint64{1, 3, 4}
	for i := range h.bounds {
		cum += h.counts[i].Load()
		if cum != wants[i] {
			t.Errorf("bucket le=%g cumulative = %d, want %d", h.bounds[i], cum, wants[i])
		}
	}
	if h.total.Load() != 5 {
		t.Errorf("count = %d, want 5", h.total.Load())
	}
}

// TestMetricsConcurrent exercises registration, observation and scraping in
// parallel; with -race this is the registry's data-race gate.
func TestMetricsConcurrent(t *testing.T) {
	m := NewMetrics()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				m.Counter("c_total", "c", "").Inc()
				m.Histogram("h_seconds", "h", "").Observe(float64(i) / 1000)
				if i%100 == 0 {
					var sb strings.Builder
					if _, err := m.WriteTo(&sb); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if got := m.Counter("c_total", "c", "").Value(); got != 8*500 {
		t.Errorf("counter = %d, want %d", got, 8*500)
	}
}
