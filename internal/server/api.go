// Package server implements the serving tier of the repository: an HTTP
// JSON API over the characterization library (measures, generators, what-if
// studies) shaped for production use — content-addressed result caching,
// bounded admission in front of the compute pool, per-request timeouts,
// panic recovery, structured request logging, Prometheus-format metrics and
// graceful drain. See API.md at the repository root for the wire contract.
package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"strings"

	"repro/internal/core"
	"repro/internal/etcmat"
	"repro/internal/matrix"
)

// APIVersion is the wire-contract version stamped into the api_version field
// of every top-level /v1/* response envelope (success and error alike). 1.2
// added the /v1/stream session endpoint, unified batch item errors onto the
// structured {code, message} envelope every other error already used, and
// fixed the error-code registry (codes.go); see API.md §Versioning for the
// migration notes. 1.1 added the version field itself, the request-ID header
// and the optional ?trace=1 timings echo.
const APIVersion = "1.2"

// ETCValue is a float64 whose JSON form can express the +Inf entries that
// mark impossible task-machine pairings: it marshals +Inf as the string
// "inf" and accepts "inf" (any case, optional +) on the way in. Plain JSON
// numbers pass through unchanged. Without this, an ETC matrix with an
// impossible pairing cannot cross the API boundary at all — encoding/json
// rejects infinities — and the tempting workaround (clamping to a huge
// finite number) silently changes every measure.
type ETCValue float64

// MarshalJSON renders +Inf as "inf", finite values as plain numbers.
func (v ETCValue) MarshalJSON() ([]byte, error) {
	f := float64(v)
	if math.IsInf(f, 1) {
		return []byte(`"inf"`), nil
	}
	if math.IsInf(f, -1) || math.IsNaN(f) {
		return nil, fmt.Errorf("server: ETC value %g has no JSON form", f)
	}
	return json.Marshal(f)
}

// UnmarshalJSON accepts a JSON number or the string "inf".
func (v *ETCValue) UnmarshalJSON(data []byte) error {
	data = bytes.TrimSpace(data)
	if len(data) > 0 && data[0] == '"' {
		var s string
		if err := json.Unmarshal(data, &s); err != nil {
			return err
		}
		if strings.EqualFold(strings.TrimPrefix(s, "+"), "inf") {
			*v = ETCValue(math.Inf(1))
			return nil
		}
		return fmt.Errorf("server: ETC entry %q is not a number or \"inf\"", s)
	}
	var f float64
	if err := json.Unmarshal(data, &f); err != nil {
		return err
	}
	*v = ETCValue(f)
	return nil
}

// EnvDTO is the wire form of an environment. Exactly one of ETC, ECS or CSV
// must be present; names and weights are optional and apply to all three.
// ETC entries may be the string "inf" (impossible pairing); the equivalent
// ECS entry is 0.
type EnvDTO struct {
	TaskNames      []string     `json:"taskNames,omitempty"`
	MachineNames   []string     `json:"machineNames,omitempty"`
	TaskWeights    []float64    `json:"taskWeights,omitempty"`
	MachineWeights []float64    `json:"machineWeights,omitempty"`
	ETC            [][]ETCValue `json:"etc,omitempty"`
	ECS            [][]float64  `json:"ecs,omitempty"`
	CSV            string       `json:"csv,omitempty"`
}

// Env materializes the DTO into a validated environment.
func (d *EnvDTO) Env() (*etcmat.Env, error) {
	forms := 0
	if len(d.ETC) > 0 {
		forms++
	}
	if len(d.ECS) > 0 {
		forms++
	}
	if d.CSV != "" {
		forms++
	}
	if forms != 1 {
		return nil, fmt.Errorf("exactly one of etc, ecs or csv must be set (got %d)", forms)
	}
	var (
		env *etcmat.Env
		err error
	)
	switch {
	case d.CSV != "":
		env, err = etcmat.ReadETCCSV(strings.NewReader(d.CSV))
	case len(d.ETC) > 0:
		rows := make([][]float64, len(d.ETC))
		for i, r := range d.ETC {
			rows[i] = make([]float64, len(r))
			for j, v := range r {
				rows[i][j] = float64(v)
			}
			if len(r) != len(d.ETC[0]) {
				return nil, fmt.Errorf("ragged etc matrix: row 0 has %d entries, row %d has %d", len(d.ETC[0]), i, len(r))
			}
		}
		env, err = etcmat.NewFromETC(matrix.FromRows(rows))
	default:
		for i, r := range d.ECS {
			if len(r) != len(d.ECS[0]) {
				return nil, fmt.Errorf("ragged ecs matrix: row 0 has %d entries, row %d has %d", len(d.ECS[0]), i, len(r))
			}
		}
		env, err = etcmat.NewFromECS(matrix.FromRows(d.ECS))
	}
	if err != nil {
		return nil, err
	}
	if d.TaskNames != nil {
		if env, err = env.WithTaskNames(d.TaskNames); err != nil {
			return nil, err
		}
	}
	if d.MachineNames != nil {
		if env, err = env.WithMachineNames(d.MachineNames); err != nil {
			return nil, err
		}
	}
	if d.TaskWeights != nil || d.MachineWeights != nil {
		if env, err = env.WithWeights(d.TaskWeights, d.MachineWeights); err != nil {
			return nil, err
		}
	}
	return env, nil
}

// EnvToDTO renders an environment in ETC form (impossible pairings as
// "inf"), with names always present and weights included when any differ
// from 1.
func EnvToDTO(env *etcmat.Env) *EnvDTO {
	t, m := env.Tasks(), env.Machines()
	etc := make([][]ETCValue, t)
	for i := 0; i < t; i++ {
		etc[i] = make([]ETCValue, m)
		for j := 0; j < m; j++ {
			s := env.ECSAt(i, j)
			if s == 0 {
				etc[i][j] = ETCValue(math.Inf(1))
			} else {
				etc[i][j] = ETCValue(1 / s)
			}
		}
	}
	d := &EnvDTO{
		TaskNames:    env.TaskNames(),
		MachineNames: env.MachineNames(),
		ETC:          etc,
	}
	if tw := env.TaskWeights(); !allOnes(tw) {
		d.TaskWeights = tw
	}
	if mw := env.MachineWeights(); !allOnes(mw) {
		d.MachineWeights = mw
	}
	return d
}

func allOnes(v []float64) bool {
	for _, x := range v {
		if x != 1 {
			return false
		}
	}
	return true
}

// ProfileDTO is the wire form of core.Profile. TMA is omitted (with
// TMAError set) when the environment is not standardizable — JSON has no
// NaN, and clients should see the reason, not a hole.
type ProfileDTO struct {
	Tasks              int       `json:"tasks"`
	Machines           int       `json:"machines"`
	MPH                float64   `json:"mph"`
	TDH                float64   `json:"tdh"`
	TMA                *float64  `json:"tma,omitempty"`
	TMAError           string    `json:"tmaError,omitempty"`
	RatioR             float64   `json:"ratioR"`
	GeoMeanG           float64   `json:"geoMeanG"`
	COV                float64   `json:"cov"`
	MachinePerf        []float64 `json:"machinePerf"`
	TaskDiff           []float64 `json:"taskDiff"`
	SinkhornIterations int       `json:"sinkhornIterations"`
	Trimmed            int       `json:"trimmed"`
	// Cached reports whether this profile came out of the result cache.
	Cached bool `json:"cached"`
	// Version and Timings are envelope fields, set only when the profile is
	// the top-level response of /v1/characterize (profiles nested in batch or
	// generate responses leave them empty — the enclosing envelope carries
	// them).
	Version string      `json:"api_version,omitempty"`
	Timings *TimingsDTO `json:"timings,omitempty"`
}

// ProfileToDTO converts a computed profile for the wire.
func ProfileToDTO(p *core.Profile, cached bool) *ProfileDTO {
	d := &ProfileDTO{
		Tasks:              p.Tasks,
		Machines:           p.Machines,
		MPH:                p.MPH,
		TDH:                p.TDH,
		RatioR:             p.RatioR,
		GeoMeanG:           p.GeoMeanG,
		COV:                p.COV,
		MachinePerf:        p.MachinePerf,
		TaskDiff:           p.TaskDiff,
		SinkhornIterations: p.SinkhornIterations,
		Trimmed:            p.Trimmed,
		Cached:             cached,
	}
	if p.TMAErr != nil {
		d.TMAError = p.TMAErr.Error()
	} else {
		d.TMA = finitePtr(p.TMA)
	}
	return d
}

// finitePtr returns &v for finite v, nil otherwise (NaN/Inf have no JSON).
func finitePtr(v float64) *float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return nil
	}
	return &v
}

// characterizeRequest is the body of POST /v1/characterize: an EnvDTO,
// inlined.
type characterizeRequest struct {
	EnvDTO
}

// batchRequest is the body of POST /v1/characterize/batch.
type batchRequest struct {
	Envs []EnvDTO `json:"envs"`
}

// batchItem is one result of a batch characterization; exactly one of
// Profile or Error is set. Since v1.2 the error is the same structured
// {code, message} body the top-level error envelope carries, not a bare
// string, so batch clients dispatch on the one code registry.
type batchItem struct {
	Profile *ProfileDTO   `json:"profile,omitempty"`
	Error   *apiErrorBody `json:"error,omitempty"`
}

type batchResponse struct {
	Version  string      `json:"api_version"`
	Profiles []batchItem `json:"profiles"`
	Timings  *TimingsDTO `json:"timings,omitempty"`
}

// generateRequest is the body of POST /v1/generate.
type generateRequest struct {
	// Kind selects the generator: "range", "cvb" or "targeted".
	Kind     string `json:"kind"`
	Tasks    int    `json:"tasks"`
	Machines int    `json:"machines"`
	Seed     int64  `json:"seed"`
	// Range-based parameters (Ali et al.).
	RTask float64 `json:"rTask,omitempty"`
	RMach float64 `json:"rMach,omitempty"`
	// CVB parameters.
	VTask  float64 `json:"vTask,omitempty"`
	VMach  float64 `json:"vMach,omitempty"`
	MuTask float64 `json:"muTask,omitempty"`
	// Targeted parameters (paper-measure targets).
	MPH float64 `json:"mph,omitempty"`
	TDH float64 `json:"tdh,omitempty"`
	TMA float64 `json:"tma,omitempty"`
	Tol float64 `json:"tol,omitempty"`
}

type generateResponse struct {
	Version string      `json:"api_version"`
	Env     *EnvDTO     `json:"env"`
	Profile *ProfileDTO `json:"profile"`
	// Mix is the affinity mixing parameter Targeted settled on; only set for
	// kind "targeted".
	Mix     *float64    `json:"mix,omitempty"`
	Timings *TimingsDTO `json:"timings,omitempty"`
}

// whatifRequest is the body of POST /v1/whatif: an EnvDTO, inlined.
type whatifRequest struct {
	EnvDTO
}

// deltaDTO is one leave-one-out measure shift.
type deltaDTO struct {
	Kind  string   `json:"kind"`
	Index int      `json:"index"`
	Name  string   `json:"name"`
	MPH   *float64 `json:"mph,omitempty"`
	TDH   *float64 `json:"tdh,omitempty"`
	TMA   *float64 `json:"tma,omitempty"`
	DMPH  *float64 `json:"dMPH,omitempty"`
	DTDH  *float64 `json:"dTDH,omitempty"`
	DTMA  *float64 `json:"dTMA,omitempty"`
	// SinkhornIterations is the normalization round count of this edit's
	// standardization, which is warm-started from the baseline's scaling
	// vectors — compare against the baseline profile's sinkhornIterations to
	// see the warm-start win.
	SinkhornIterations int    `json:"sinkhornIterations,omitempty"`
	Error              string `json:"error,omitempty"`
}

type whatifResponse struct {
	Version  string      `json:"api_version"`
	Baseline *ProfileDTO `json:"baseline"`
	Deltas   []deltaDTO  `json:"deltas"`
	Timings  *TimingsDTO `json:"timings,omitempty"`
}

func deltaToDTO(d core.Delta) deltaDTO {
	out := deltaDTO{Kind: d.Kind, Index: d.Index, Name: d.Name}
	if d.Err != nil {
		out.Error = d.Err.Error()
		return out
	}
	out.MPH = finitePtr(d.MPH)
	out.TDH = finitePtr(d.TDH)
	out.TMA = finitePtr(d.TMA)
	out.DMPH = finitePtr(d.DMPH)
	out.DTDH = finitePtr(d.DTDH)
	out.DTMA = finitePtr(d.DTMA)
	out.SinkhornIterations = d.SinkhornIterations
	return out
}

// apiError is the uniform error envelope of every non-2xx JSON response.
type apiError struct {
	Version string       `json:"api_version"`
	Error   apiErrorBody `json:"error"`
}

type apiErrorBody struct {
	// Code is a stable machine-readable identifier, e.g. "invalid_request",
	// "overloaded", "timeout", "internal".
	Code    string `json:"code"`
	Message string `json:"message"`
}
