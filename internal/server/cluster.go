package server

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/wire"
)

// This file is the serving-tier side of cluster mode (internal/cluster holds
// the ring, membership and forwarding client; DESIGN.md §15 the design). The
// split keeps the dependency one-way — cluster never imports server — so the
// router is testable against plain httptest handlers and the single-node
// server pays nothing for the feature.

// initCluster builds the router and its metric surface. Called from New when
// Config.Cluster is set; the /v1/cluster/ endpoints are mounted by New and
// the gossip loop starts in Run (it needs the lifecycle context and, for
// ":0" listeners, the bound address).
func (s *Server) initCluster(cfg cluster.Config) {
	if cfg.Logger == nil {
		cfg.Logger = s.log
	}
	s.router = cluster.NewRouter(cfg)
	m := s.metrics
	s.forwarded = m.Counter("hcserved_forwarded_total",
		"Requests answered by forwarding to the key's owner node.", "")
	s.peerFills = m.Counter("hcserved_peer_fills_total",
		"Local cache entries back-filled from a peer's forward response.", "")
	s.router.SetStats(cluster.Stats{
		ForwardErrors: m.Counter("hcserved_forward_errors_total",
			"Failed forward attempts (per attempt; a request may retry on the next replica).", ""),
		Hedges: m.Counter("hcserved_hedged_total",
			"Hedge requests fired to the next replica after the hedge delay.", ""),
		HedgeWins: m.Counter("hcserved_hedge_wins_total",
			"Hedged requests that beat the primary replica.", ""),
	})
	m.Gauge("hcserved_cluster_peers_alive", "Peers currently observed alive (self excluded).",
		func() float64 { return float64(s.router.AliveCount()) })
	m.Gauge("hcserved_cluster_ring_nodes", "Nodes on the consistent-hash ring (self included).",
		func() float64 { return float64(s.router.Ring().Len()) })
}

// shouldForward reports whether a characterize miss should be routed to a
// peer: cluster mode is on, the key is owned elsewhere, and the request did
// not itself arrive by forwarding (the loop guard — a node answering a
// forwarded request always serves locally, whatever its ring view says).
func (s *Server) shouldForward(r *http.Request, key cacheKey) bool {
	return s.router != nil &&
		r.Header.Get(cluster.ForwardedHeader) == "" &&
		!s.router.LocallyOwned(key)
}

// envFrameBody rebuilds the request's environment as a KindEnv wire frame —
// the only form whose decode is bit-exact for content-key agreement between
// requester and owner (re-encoding as an ETC frame would round-trip each
// cell through a reciprocal, and 1/(1/x) is not bit-stable). The buffer is
// freshly allocated, never pooled: a losing hedge attempt may still read it
// after the forward returns.
func envFrameBody(p *envPayload) ([]byte, error) {
	f := &wire.EnvFrame{
		Rows: p.rows, Cols: p.cols,
		ECS:            p.cells,
		TaskWeights:    p.taskWeights,
		MachineWeights: p.machineWeights,
	}
	if p.csvEnv != nil {
		// CSV bodies decode straight to an Env; pull the cells back out. Rare
		// path (sweep tooling speaks JSON or binary), so the copy is fine.
		env := p.csvEnv
		r, c := env.Tasks(), env.Machines()
		cells := make([]float64, 0, r*c)
		for i := 0; i < r; i++ {
			for j := 0; j < c; j++ {
				cells = append(cells, env.ECSAt(i, j))
			}
		}
		f.Rows, f.Cols, f.ECS = r, c, cells
		f.TaskWeights, f.MachineWeights = env.TaskWeights(), env.MachineWeights()
	}
	return wire.AppendEnv(nil, f)
}

// forwardProfile routes a cache-missed characterize to the key's owner,
// back-filling the local cache on success so the next request for this key
// is a local hit on this replica too (peer cache fill). The bool reports
// whether the answering peer served from its cache. A nil profile means the
// forward could not produce one — every peer failed or unreachable — and the
// caller falls back to local compute with normal miss accounting.
func (s *Server) forwardProfile(r *http.Request, key cacheKey, payload *envPayload, reqID string) (*core.Profile, bool) {
	body, err := envFrameBody(payload)
	if err != nil {
		s.log.Error("encoding forward body", "err", err)
		return nil, false
	}
	p, peerCached, err := s.router.Forward(r.Context(), key, body, reqID)
	if err != nil {
		if err != cluster.ErrNoPeers {
			s.log.Warn("forward failed; computing locally", "err", err)
		}
		return nil, false
	}
	s.forwarded.Inc()
	s.cache.Put(key, p)
	s.peerFills.Inc()
	return p, peerCached
}

// handleClusterJoin serves POST /v1/cluster/join: a starting node announces
// its address and bootstraps from the returned membership view.
func (s *Server) handleClusterJoin(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Addr string `json:"addr"`
	}
	if err := s.decodeJSON(w, r, &req); err != nil {
		writeDecodeError(w, err)
		return
	}
	if req.Addr == "" {
		writeError(w, http.StatusBadRequest, codeInvalidRequest, "addr must be non-empty")
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"version": APIVersion,
		"peers":   s.router.Join(req.Addr),
	})
}

// handleClusterPeers serves GET /v1/cluster/peers: the gossip pull. States
// in the response are the responder's local observations; the caller merges
// addresses only and judges health itself.
func (s *Server) handleClusterPeers(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]any{
		"version": APIVersion,
		"peers":   s.router.Peers(),
	})
}

// clusterMetrics renders the cluster-wide /metrics?cluster=1 view: the local
// exposition merged with every alive peer's plain /metrics (never the
// cluster view — no recursion), numeric samples summed by series. Counter
// sums are exact; histogram buckets merge correctly (cumulative counts add);
// summed gauges read as cluster totals. Peers that fail to answer within the
// timeout are skipped and reported in the hcserved_cluster_scrape_errors
// comment so an aggregated scrape is never silently partial.
func (s *Server) clusterMetrics(ctx context.Context, w io.Writer) error {
	var local bytes.Buffer
	if _, err := s.metrics.WriteTo(&local); err != nil {
		return err
	}
	merge := newMetricsMerge()
	merge.add(local.String())
	scrapeErrs := 0
	for _, addr := range s.router.AlivePeerAddrs() {
		text, err := s.scrapePeerMetrics(ctx, addr)
		if err != nil {
			s.log.Warn("cluster metrics scrape failed", "peer", addr, "err", err)
			scrapeErrs++
			continue
		}
		merge.add(text)
	}
	if scrapeErrs > 0 {
		fmt.Fprintf(w, "# hcserved_cluster_scrape_errors %d peers did not answer; totals are partial\n", scrapeErrs)
	}
	return merge.writeTo(w)
}

// scrapePeerMetrics pulls one peer's plain metrics exposition.
func (s *Server) scrapePeerMetrics(ctx context.Context, addr string) (string, error) {
	ctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+addr+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := s.router.Client().Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("status %d", resp.StatusCode)
	}
	b, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// metricsMerge sums Prometheus text expositions line by line. Series keys
// (name plus rendered labels) keep their first-seen order; comment lines
// (# HELP / # TYPE) are kept once. This is a text-level merge on our own
// registry's output format, not a general Prometheus parser.
type metricsMerge struct {
	order  []string // series keys and comment lines, first-seen order
	sums   map[string]float64
	isLine map[string]bool // true = comment line emitted verbatim
}

func newMetricsMerge() *metricsMerge {
	return &metricsMerge{sums: make(map[string]float64), isLine: make(map[string]bool)}
}

func (m *metricsMerge) add(text string) {
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if !m.isLine[line] {
				m.isLine[line] = true
				m.order = append(m.order, line)
			}
			continue
		}
		// "series value": the value is the last space-separated field; the
		// series key (name{labels}) is everything before it.
		cut := strings.LastIndexByte(line, ' ')
		if cut <= 0 {
			continue
		}
		series, valStr := line[:cut], line[cut+1:]
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			continue
		}
		if _, ok := m.sums[series]; !ok {
			m.order = append(m.order, series)
		}
		m.sums[series] += v
	}
}

func (m *metricsMerge) writeTo(w io.Writer) error {
	for _, key := range m.order {
		var err error
		if m.isLine[key] {
			_, err = fmt.Fprintln(w, key)
		} else {
			_, err = fmt.Fprintf(w, "%s %s\n", key, formatFloat(m.sums[key]))
		}
		if err != nil {
			return err
		}
	}
	return nil
}
