package server

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/wire"
)

// This file is the serving-tier side of cluster mode (internal/cluster holds
// the ring, membership and forwarding client; DESIGN.md §15 the design). The
// split keeps the dependency one-way — cluster never imports server — so the
// router is testable against plain httptest handlers and the single-node
// server pays nothing for the feature.

// initCluster builds the router and its metric surface. Called from New when
// Config.Cluster is set; the /v1/cluster/ endpoints are mounted by New and
// the gossip loop starts in Run (it needs the lifecycle context and, for
// ":0" listeners, the bound address).
func (s *Server) initCluster(cfg cluster.Config) {
	if cfg.Logger == nil {
		cfg.Logger = s.log
	}
	s.router = cluster.NewRouter(cfg)
	m := s.metrics
	s.forwarded = m.Counter("hcserved_forwarded_total",
		"Requests answered by forwarding to the key's owner node.", "")
	s.peerFills = m.Counter("hcserved_peer_fills_total",
		"Local cache entries back-filled from a peer's forward response.", "")
	s.handoffReceived = m.Counter("hcserved_handoff_received_total",
		"Warm cache entries imported from a peer's ring-change handoff.", "")
	s.router.SetStats(cluster.Stats{
		ForwardErrors: m.Counter("hcserved_forward_errors_total",
			"Failed forward attempts (per attempt; a request may retry on the next replica).", ""),
		Hedges: m.Counter("hcserved_hedged_total",
			"Hedge requests fired to the next replica after the hedge delay.", ""),
		HedgeWins: m.Counter("hcserved_hedge_wins_total",
			"Hedged requests that beat the primary replica.", ""),
		ReplicaReads: m.Counter("hcserved_replica_reads_total",
			"Forwards answered by a replica other than the ring-order primary.", ""),
		PeerQueueFull: m.Counter("hcserved_peer_queue_full_total",
			"Forward attempts shed because a peer's bounded send queue was full.", ""),
		HandoffSent: m.Counter("hcserved_handoff_sent_total",
			"Warm cache entries streamed to new owners on ring changes.", ""),
	})
	s.router.SetHandoffSource(handoffExporter{s})
	m.Gauge("hcserved_cluster_peers_alive", "Peers currently observed alive (self excluded).",
		func() float64 { return float64(s.router.AliveCount()) })
	m.Gauge("hcserved_cluster_ring_nodes", "Nodes on the consistent-hash ring (self included).",
		func() float64 { return float64(s.router.Ring().Len()) })
	m.Gauge("hcserved_peer_inflight", "Forward requests currently on the wire across all peers.",
		func() float64 { return float64(s.router.PeerInflight()) })
}

// handoffExporter adapts the profile cache to the router's HandoffSource:
// hot entries leave in wire form, marked cached (they are, by definition).
type handoffExporter struct{ s *Server }

func (h handoffExporter) HotEntries(max int) []cluster.HandoffEntry {
	hot := h.s.cache.HotEntries(max)
	out := make([]cluster.HandoffEntry, 0, len(hot))
	for _, e := range hot {
		out = append(out, cluster.HandoffEntry{Key: e.key, Profile: profileToWire(e.profile, true)})
	}
	return out
}

// shouldForward reports whether a characterize miss should be routed to a
// peer: cluster mode is on, the key is owned elsewhere, and the request still
// has forwarding budget. The hop count on X-HC-Forwarded is the loop guard —
// a replica read may legally take one extra hop when membership views
// diverge, but a request at MaxForwardHops serves locally no matter what
// this node's ring says, so divergent views can never cycle.
func (s *Server) shouldForward(r *http.Request, key cacheKey) bool {
	return s.router != nil &&
		cluster.ParseHops(r.Header.Get(cluster.ForwardedHeader)) < cluster.MaxForwardHops &&
		!s.router.LocallyOwned(key)
}

// envFrameBody rebuilds the request's environment as a KindEnv wire frame —
// the only form whose decode is bit-exact for content-key agreement between
// requester and owner (re-encoding as an ETC frame would round-trip each
// cell through a reciprocal, and 1/(1/x) is not bit-stable). The buffer is
// freshly allocated, never pooled: a losing hedge attempt may still read it
// after the forward returns.
func envFrameBody(p *envPayload) ([]byte, error) {
	f := &wire.EnvFrame{
		Rows: p.rows, Cols: p.cols,
		ECS:            p.cells,
		TaskWeights:    p.taskWeights,
		MachineWeights: p.machineWeights,
	}
	if p.csvEnv != nil {
		// CSV bodies decode straight to an Env; pull the cells back out. Rare
		// path (sweep tooling speaks JSON or binary), so the copy is fine.
		env := p.csvEnv
		r, c := env.Tasks(), env.Machines()
		cells := make([]float64, 0, r*c)
		for i := 0; i < r; i++ {
			for j := 0; j < c; j++ {
				cells = append(cells, env.ECSAt(i, j))
			}
		}
		f.Rows, f.Cols, f.ECS = r, c, cells
		f.TaskWeights, f.MachineWeights = env.TaskWeights(), env.MachineWeights()
	}
	return wire.AppendEnv(nil, f)
}

// forwardProfile routes a cache-missed characterize to the key's owner,
// back-filling the local cache on success so the next request for this key
// is a local hit on this replica too (peer cache fill). The bool reports
// whether the answering peer served from its cache. A nil profile means the
// forward could not produce one — every peer failed or unreachable — and the
// caller falls back to local compute with normal miss accounting.
func (s *Server) forwardProfile(r *http.Request, key cacheKey, payload *envPayload, reqID string) (*core.Profile, bool) {
	body, err := envFrameBody(payload)
	if err != nil {
		s.log.Error("encoding forward body", "err", err)
		return nil, false
	}
	opts := cluster.ForwardOpts{
		Hops:        cluster.ParseHops(r.Header.Get(cluster.ForwardedHeader)),
		PrimaryOnly: r.Header.Get(cluster.RouteHintHeader) == cluster.RoutePrimary,
	}
	p, peerCached, err := s.router.Forward(r.Context(), key, body, reqID, opts)
	if err != nil {
		if err != cluster.ErrNoPeers {
			s.log.Warn("forward failed; computing locally", "err", err)
		}
		return nil, false
	}
	s.forwarded.Inc()
	s.cache.Put(key, p)
	s.peerFills.Inc()
	return p, peerCached
}

// handleClusterJoin serves POST /v1/cluster/join: a starting node announces
// its address and bootstraps from the returned membership view.
func (s *Server) handleClusterJoin(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Addr string `json:"addr"`
	}
	if err := s.decodeJSON(w, r, &req); err != nil {
		writeDecodeError(w, err)
		return
	}
	if req.Addr == "" {
		writeError(w, http.StatusBadRequest, codeInvalidRequest, "addr must be non-empty")
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"version": APIVersion,
		"peers":   s.router.Join(req.Addr),
	})
}

// handleClusterHandoff serves POST /v1/cluster/handoff: a peer losing ring
// ownership streams its warm entries for the moved key ranges here. Each
// record is a content key plus a profile frame; imported entries land in the
// cache exactly like peer fills, so the first post-churn request for a moved
// key is a local hit instead of a recompute. A malformed record rejects the
// whole batch — entries already imported stay cached (handoff is idempotent:
// re-sending overwrites with identical values).
func (s *Server) handleClusterHandoff(w http.ResponseWriter, r *http.Request) {
	if ct := mediaType(r); ct != wire.ContentTypeHandoff {
		writeError(w, http.StatusBadRequest, codeInvalidRequest,
			fmt.Sprintf("handoff requires Content-Type %s, got %q", wire.ContentTypeHandoff, ct))
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, s.cfg.MaxBodyBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, codeInvalidRequest, "reading handoff body: "+err.Error())
		return
	}
	if int64(len(body)) > s.cfg.MaxBodyBytes {
		writeError(w, http.StatusRequestEntityTooLarge, codeBodyTooLarge,
			fmt.Sprintf("handoff body exceeds %d bytes", s.cfg.MaxBodyBytes))
		return
	}
	imported := 0
	for len(body) > 0 {
		key, wp, n, err := wire.DecodeHandoffEntry(body)
		if err != nil {
			writeError(w, http.StatusBadRequest, codeInvalidRequest, "handoff record: "+err.Error())
			return
		}
		body = body[n:]
		s.cache.Put(key, cluster.ProfileFromWire(wp))
		s.handoffReceived.Inc()
		imported++
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"version":  APIVersion,
		"imported": imported,
	})
}

// handleClusterPeers serves GET /v1/cluster/peers: the gossip pull. States
// in the response are the responder's local observations; the caller merges
// addresses only and judges health itself.
func (s *Server) handleClusterPeers(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]any{
		"version": APIVersion,
		"peers":   s.router.Peers(),
	})
}

// clusterMetrics renders the cluster-wide /metrics?cluster=1 view: the local
// exposition merged with every alive peer's plain /metrics (never the
// cluster view — no recursion), numeric samples summed by series. Counter
// sums are exact; histogram buckets merge correctly (cumulative counts add);
// summed gauges read as cluster totals. Peers that fail to answer within the
// timeout are skipped and reported in the hcserved_cluster_scrape_errors
// comment so an aggregated scrape is never silently partial.
func (s *Server) clusterMetrics(ctx context.Context, w io.Writer) error {
	var local bytes.Buffer
	if _, err := s.metrics.WriteTo(&local); err != nil {
		return err
	}
	merge := newMetricsMerge()
	merge.add(local.String())
	scrapeErrs := 0
	for _, addr := range s.router.AlivePeerAddrs() {
		text, err := s.scrapePeerMetrics(ctx, addr)
		if err != nil {
			s.log.Warn("cluster metrics scrape failed", "peer", addr, "err", err)
			scrapeErrs++
			continue
		}
		merge.add(text)
	}
	if scrapeErrs > 0 {
		fmt.Fprintf(w, "# hcserved_cluster_scrape_errors %d peers did not answer; totals are partial\n", scrapeErrs)
	}
	return merge.writeTo(w)
}

// scrapePeerMetrics pulls one peer's plain metrics exposition.
func (s *Server) scrapePeerMetrics(ctx context.Context, addr string) (string, error) {
	ctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+addr+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := s.router.Client().Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("status %d", resp.StatusCode)
	}
	b, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// metricsMerge sums Prometheus text expositions line by line. Series keys
// (name plus rendered labels) keep their first-seen order; comment lines
// (# HELP / # TYPE) are kept once. This is a text-level merge on our own
// registry's output format, not a general Prometheus parser.
type metricsMerge struct {
	order  []string // series keys and comment lines, first-seen order
	sums   map[string]float64
	isLine map[string]bool // true = comment line emitted verbatim
}

func newMetricsMerge() *metricsMerge {
	return &metricsMerge{sums: make(map[string]float64), isLine: make(map[string]bool)}
}

func (m *metricsMerge) add(text string) {
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if !m.isLine[line] {
				m.isLine[line] = true
				m.order = append(m.order, line)
			}
			continue
		}
		// "series value": the value is the last space-separated field; the
		// series key (name{labels}) is everything before it.
		cut := strings.LastIndexByte(line, ' ')
		if cut <= 0 {
			continue
		}
		series, valStr := line[:cut], line[cut+1:]
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			continue
		}
		if _, ok := m.sums[series]; !ok {
			m.order = append(m.order, series)
		}
		m.sums[series] += v
	}
}

func (m *metricsMerge) writeTo(w io.Writer) error {
	for _, key := range m.order {
		var err error
		if m.isLine[key] {
			_, err = fmt.Fprintln(w, key)
		} else {
			_, err = fmt.Fprintf(w, "%s %s\n", key, formatFloat(m.sums[key]))
		}
		if err != nil {
			return err
		}
	}
	return nil
}
