package server

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// This file is a minimal, dependency-free metrics registry that renders the
// Prometheus text exposition format (version 0.0.4). The serving tier needs
// counters (requests, cache hits), gauges (queue depth, in-flight work) and
// latency histograms; pulling in a client library for that would be the only
// external dependency of the whole repository, so the three metric kinds are
// hand-rolled on sync/atomic instead. Only what /metrics needs is
// implemented: no label validation, no exemplars, no push.

// counter is a monotonically increasing uint64.
type counter struct {
	v atomic.Uint64
}

func (c *counter) Inc()          { c.v.Add(1) }
func (c *counter) Add(n uint64)  { c.v.Add(n) }
func (c *counter) Value() uint64 { return c.v.Load() }

// gaugeFunc reads its value at scrape time — used for queue depth and cache
// size, which already live in their own structures.
type gaugeFunc func() float64

// histogram is a fixed-bucket cumulative histogram. Buckets hold the count
// of observations <= the matching upper bound; sum carries float64 bits.
type histogram struct {
	bounds []float64 // ascending upper bounds, +Inf implicit
	counts []atomic.Uint64
	total  atomic.Uint64
	sum    atomic.Uint64 // math.Float64bits, CAS-updated
}

// defLatencyBounds covers 100µs..10s — characterization latencies span
// microseconds (cache hit) to seconds (large cold matrices under load).
var defLatencyBounds = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

func newHistogram(bounds []float64) *histogram {
	return &histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds))}
}

// Observe records one value (in the unit of the bounds — seconds here).
func (h *histogram) Observe(v float64) {
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i].Add(1)
			break
		}
	}
	h.total.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// metric is one named family with optional pre-rendered labels per child.
type metric struct {
	name, help, kind string
	mu               sync.Mutex
	counters         map[string]*counter   // label string -> child
	hists            map[string]*histogram // label string -> child
	gauge            gaugeFunc
}

// Metrics is the registry behind GET /metrics. All methods are safe for
// concurrent use; families render sorted by name, children by label string,
// so scrapes are deterministic.
type Metrics struct {
	mu       sync.Mutex
	families map[string]*metric
	order    []string
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{families: make(map[string]*metric)}
}

func (m *Metrics) family(name, help, kind string) *metric {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.families[name]
	if !ok {
		f = &metric{
			name: name, help: help, kind: kind,
			counters: make(map[string]*counter),
			hists:    make(map[string]*histogram),
		}
		m.families[name] = f
		m.order = append(m.order, name)
		sort.Strings(m.order)
	}
	return f
}

// Counter returns (creating on first use) the counter child of the named
// family with the given label string, e.g. `endpoint="characterize"`.
// An empty labels string yields an unlabeled series.
func (m *Metrics) Counter(name, help, labels string) *counter {
	f := m.family(name, help, "counter")
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.counters[labels]
	if !ok {
		c = &counter{}
		f.counters[labels] = c
	}
	return c
}

// Histogram returns (creating on first use) the histogram child of the named
// family, using the default latency buckets.
func (m *Metrics) Histogram(name, help, labels string) *histogram {
	f := m.family(name, help, "histogram")
	f.mu.Lock()
	defer f.mu.Unlock()
	h, ok := f.hists[labels]
	if !ok {
		h = newHistogram(defLatencyBounds)
		f.hists[labels] = h
	}
	return h
}

// Gauge registers a scrape-time gauge for the named family.
func (m *Metrics) Gauge(name, help string, fn gaugeFunc) {
	f := m.family(name, help, "gauge")
	f.mu.Lock()
	f.gauge = fn
	f.mu.Unlock()
}

// WriteTo renders the registry in the Prometheus text format.
func (m *Metrics) WriteTo(w io.Writer) (int64, error) {
	m.mu.Lock()
	order := append([]string(nil), m.order...)
	m.mu.Unlock()
	var n int64
	pr := func(format string, args ...any) error {
		k, err := fmt.Fprintf(w, format, args...)
		n += int64(k)
		return err
	}
	for _, name := range order {
		m.mu.Lock()
		f := m.families[name]
		m.mu.Unlock()
		if err := pr("# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.kind); err != nil {
			return n, err
		}
		f.mu.Lock()
		switch f.kind {
		case "counter":
			for _, labels := range sortedKeys(f.counters) {
				if err := pr("%s%s %d\n", f.name, renderLabels(labels), f.counters[labels].Value()); err != nil {
					f.mu.Unlock()
					return n, err
				}
			}
		case "gauge":
			if f.gauge != nil {
				if err := pr("%s %s\n", f.name, formatFloat(f.gauge())); err != nil {
					f.mu.Unlock()
					return n, err
				}
			}
		case "histogram":
			for _, labels := range sortedKeys(f.hists) {
				h := f.hists[labels]
				cum := uint64(0)
				for i, b := range h.bounds {
					cum += h.counts[i].Load()
					if err := pr("%s_bucket%s %d\n", f.name, renderLabels(joinLabels(labels, `le="`+formatFloat(b)+`"`)), cum); err != nil {
						f.mu.Unlock()
						return n, err
					}
				}
				total := h.total.Load()
				if err := pr("%s_bucket%s %d\n", f.name, renderLabels(joinLabels(labels, `le="+Inf"`)), total); err != nil {
					f.mu.Unlock()
					return n, err
				}
				if err := pr("%s_sum%s %s\n", f.name, renderLabels(labels), formatFloat(math.Float64frombits(h.sum.Load()))); err != nil {
					f.mu.Unlock()
					return n, err
				}
				if err := pr("%s_count%s %d\n", f.name, renderLabels(labels), total); err != nil {
					f.mu.Unlock()
					return n, err
				}
			}
		}
		f.mu.Unlock()
	}
	return n, nil
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func renderLabels(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

func joinLabels(a, b string) string {
	if a == "" {
		return b
	}
	return a + "," + b
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
