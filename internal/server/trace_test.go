package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
)

// bigEnvBody builds a deterministic t×m ECS request body large enough that
// the compute stage dominates the request, so the stage-sum assertions are
// not at the mercy of scheduler noise.
func bigEnvBody(t_, m int) string {
	rows := make([][]float64, t_)
	for i := range rows {
		rows[i] = make([]float64, m)
		for j := range rows[i] {
			rows[i][j] = 1 + float64((i*31+j*17)%97)/10
		}
	}
	b, err := json.Marshal(map[string]any{"ecs": rows})
	if err != nil {
		panic(err)
	}
	return string(b)
}

// topLevelStages are the disjoint request stages; they must cover nearly the
// whole request wall time. The pipeline spans ("standardize", "gram", ...)
// nest inside "compute" and are deliberately not in this set.
var topLevelStages = map[string]bool{
	"decode": true, "cache_lookup": true, "queue_wait": true, "compute": true,
}

func TestTraceTimingsEcho(t *testing.T) {
	_, ts := testServer(t, Config{})
	body := bigEnvBody(100, 60)

	resp, out := post(t, ts, "/v1/characterize?trace=1", "application/json", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, out)
	}
	if resp.Header.Get("X-Request-ID") == "" {
		t.Error("missing X-Request-ID header")
	}
	p := decodeProfile(t, out)
	if p.Version != APIVersion {
		t.Errorf("api_version = %q, want %q", p.Version, APIVersion)
	}
	if p.Timings == nil || len(p.Timings.Stages) == 0 {
		t.Fatalf("traced response has no timings: %s", out)
	}
	if p.Timings.RequestID != resp.Header.Get("X-Request-ID") {
		t.Errorf("timings request id %q != header %q",
			p.Timings.RequestID, resp.Header.Get("X-Request-ID"))
	}
	if p.Timings.TotalMs <= 0 {
		t.Errorf("totalMs = %g, want > 0", p.Timings.TotalMs)
	}
	// The cold path must expose the compute pipeline's nested spans too.
	names := map[string]bool{}
	sum := 0.0
	for _, st := range p.Timings.Stages {
		names[st.Stage] = true
		if st.Ms < 0 || st.StartMs < 0 {
			t.Errorf("stage %s has negative timing: start=%g ms=%g", st.Stage, st.StartMs, st.Ms)
		}
		if topLevelStages[st.Stage] {
			sum += st.Ms
		}
	}
	for _, want := range []string{"decode", "cache_lookup", "queue_wait", "compute", "standardize", "gram", "eigensolve", "measures"} {
		if !names[want] {
			t.Errorf("traced cold characterize missing stage %q (got %v)", want, names)
		}
	}
	// Acceptance bound: the disjoint top-level stages account for the request
	// wall time within 10%.
	if gap := (p.Timings.TotalMs - sum) / p.Timings.TotalMs; gap > 0.10 || sum > p.Timings.TotalMs*1.001 {
		t.Errorf("top-level stages sum to %.3fms of %.3fms total (gap %.1f%%)",
			sum, p.Timings.TotalMs, gap*100)
	}

	// Without ?trace=1 the response must not carry timings (but still the
	// version and request ID).
	resp2, out2 := post(t, ts, "/v1/characterize", "application/json", body)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp2.StatusCode, out2)
	}
	if strings.Contains(out2, `"timings"`) {
		t.Errorf("untraced response leaked timings: %s", out2)
	}
	if resp2.Header.Get("X-Request-ID") == "" {
		t.Error("untraced response missing X-Request-ID header")
	}
	if resp2.Header.Get("X-Request-ID") == resp.Header.Get("X-Request-ID") {
		t.Error("request IDs must be unique per request")
	}
}

func TestTraceStagesMatchMetricsLabels(t *testing.T) {
	_, ts := testServer(t, Config{})

	resp, out := post(t, ts, "/v1/characterize?trace=1", "application/json", bigEnvBody(40, 25))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, out)
	}
	p := decodeProfile(t, out)
	if p.Timings == nil {
		t.Fatal("no timings in traced response")
	}
	_, metrics := get(t, ts, "/metrics")
	for _, st := range p.Timings.Stages {
		series := fmt.Sprintf(`hcserved_stage_seconds_count{stage=%q}`, st.Stage)
		if !strings.Contains(metrics, series) {
			t.Errorf("stage %q from timings has no %s series in /metrics", st.Stage, series)
		}
	}
}

func TestBatchTimings(t *testing.T) {
	_, ts := testServer(t, Config{})
	body := `{"envs":[` + bigEnvBody(30, 20) + `,` + bigEnvBody(25, 15) + `]}`
	resp, out := post(t, ts, "/v1/characterize/batch?trace=1", "application/json", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, out)
	}
	var br struct {
		Version string      `json:"api_version"`
		Timings *TimingsDTO `json:"timings"`
	}
	if err := json.Unmarshal([]byte(out), &br); err != nil {
		t.Fatal(err)
	}
	if br.Version != APIVersion {
		t.Errorf("api_version = %q, want %q", br.Version, APIVersion)
	}
	if br.Timings == nil || len(br.Timings.Stages) == 0 {
		t.Fatal("batch traced response has no timings")
	}
	// The batch fan-out must surface per-item "task" spans.
	tasks := 0
	for _, st := range br.Timings.Stages {
		if st.Stage == "task" {
			tasks++
		}
	}
	if tasks != 2 {
		t.Errorf("batch of 2 recorded %d task spans", tasks)
	}
}

func TestErrorEnvelopeVersion(t *testing.T) {
	_, ts := testServer(t, Config{})
	resp, out := post(t, ts, "/v1/characterize", "application/json", `{"bogus":`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d: %s", resp.StatusCode, out)
	}
	if !strings.Contains(out, `"api_version":"`+APIVersion+`"`) {
		t.Errorf("error envelope missing api_version: %s", out)
	}
}

func TestPprofGatedByConfig(t *testing.T) {
	_, ts := testServer(t, Config{})
	resp, _ := get(t, ts, "/debug/pprof/")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof disabled: GET /debug/pprof/ = %d, want 404", resp.StatusCode)
	}

	_, tsOn := testServer(t, Config{EnablePprof: true})
	resp, body := get(t, tsOn, "/debug/pprof/")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof enabled: GET /debug/pprof/ = %d, want 200", resp.StatusCode)
	}
	if !strings.Contains(body, "goroutine") {
		t.Errorf("pprof index looks wrong: %.120s", body)
	}
	resp, _ = get(t, tsOn, "/debug/pprof/cmdline")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof enabled: GET /debug/pprof/cmdline = %d, want 200", resp.StatusCode)
	}
}
