package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// StreamClient drives one JSON-framed /v1/stream session from the client
// side: the request body is an io.Pipe the mutation methods write NDJSON
// lines into, and each method reads the matching response line before
// returning, so calls are synchronous and errors surface in order. It is
// the client under hetero.OpenStream and the hcload stream phase.
//
// The client is not safe for concurrent use — a session is an ordered
// conversation; interleave from one goroutine.
type StreamClient struct {
	pw     *io.PipeWriter
	enc    *json.Encoder
	sc     *bufio.Scanner
	resp   *http.Response
	closed bool
}

// streamScanBuffer bounds one response line; profiles scale with the
// environment, so this matches the server's default body limit.
const streamScanBuffer = 8 << 20

// OpenStreamSession opens a JSON stream session against baseURL (e.g.
// "http://host:port") and returns the client together with the opening cold
// profile. httpClient may be nil for http.DefaultClient. driftTol <= 0
// selects the server default.
func OpenStreamSession(ctx context.Context, httpClient *http.Client, baseURL string,
	env *EnvDTO, driftTol float64) (*StreamClient, *StreamUpdate, error) {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	pr, pw := io.Pipe()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+"/v1/stream", pr)
	if err != nil {
		pw.Close()
		return nil, nil, err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")

	// Do returns once response headers arrive — which the server sends with
	// its first line, after it has read and solved the open request. The
	// transport streams the request body from the pipe concurrently, so the
	// open line must be written after Do is in flight.
	type doResult struct {
		resp *http.Response
		err  error
	}
	done := make(chan doResult, 1)
	go func() {
		resp, err := httpClient.Do(req)
		done <- doResult{resp, err}
	}()

	c := &StreamClient{pw: pw, enc: json.NewEncoder(pw)}
	if err := c.enc.Encode(streamRequest{Op: "open", Env: env, DriftTolerance: driftTol}); err != nil {
		pw.CloseWithError(err)
		return nil, nil, err
	}
	res := <-done
	if res.err != nil {
		pw.Close()
		return nil, nil, res.err
	}
	c.resp = res.resp
	if res.resp.StatusCode != http.StatusOK {
		// Pre-stream rejection (session_limit): the body is one apiError.
		var e apiError
		err := json.NewDecoder(res.resp.Body).Decode(&e)
		res.resp.Body.Close()
		pw.Close()
		if err != nil || e.Error.Code == "" {
			return nil, nil, fmt.Errorf("stream open: HTTP %d", res.resp.StatusCode)
		}
		return nil, nil, fmt.Errorf("stream open: %s: %s", e.Error.Code, e.Error.Message)
	}
	c.sc = bufio.NewScanner(res.resp.Body)
	c.sc.Buffer(make([]byte, 0, 64<<10), streamScanBuffer)
	u, err := c.read()
	if err != nil {
		c.abort()
		return nil, nil, err
	}
	if u.Error != nil {
		c.abort()
		return nil, nil, fmt.Errorf("stream open: %s: %s", u.Error.Code, u.Error.Message)
	}
	return c, u, nil
}

// read consumes the next response line.
func (c *StreamClient) read() (*StreamUpdate, error) {
	if !c.sc.Scan() {
		if err := c.sc.Err(); err != nil {
			return nil, err
		}
		return nil, io.ErrUnexpectedEOF
	}
	var u StreamUpdate
	if err := json.Unmarshal(c.sc.Bytes(), &u); err != nil {
		return nil, fmt.Errorf("malformed stream response line: %w", err)
	}
	return &u, nil
}

// send writes one mutation line and returns the matching response. An
// in-stream invalid_mutation or overloaded error comes back as a non-nil
// *StreamUpdate with Error set and a nil Go error — the session is still
// usable; the caller decides whether to retry or give up.
func (c *StreamClient) send(req streamRequest) (*StreamUpdate, error) {
	if c.closed {
		return nil, fmt.Errorf("stream session already closed")
	}
	if err := c.enc.Encode(req); err != nil {
		return nil, err
	}
	return c.read()
}

// AddTask appends a task row (ECS speeds, one per machine). name may be
// empty for the server-generated default.
func (c *StreamClient) AddTask(name string, speeds []float64) (*StreamUpdate, error) {
	return c.send(streamRequest{Op: "add_task", Name: name, Speeds: speeds})
}

// AddMachine appends a machine column (ECS speeds, one per task).
func (c *StreamClient) AddMachine(name string, speeds []float64) (*StreamUpdate, error) {
	return c.send(streamRequest{Op: "add_machine", Name: name, Speeds: speeds})
}

// DropTask removes task i.
func (c *StreamClient) DropTask(i int) (*StreamUpdate, error) {
	return c.send(streamRequest{Op: "drop_task", Index: i})
}

// DropMachine removes machine j.
func (c *StreamClient) DropMachine(j int) (*StreamUpdate, error) {
	return c.send(streamRequest{Op: "drop_machine", Index: j})
}

// SetCell updates one ECS cell (0 marks the pairing impossible).
func (c *StreamClient) SetCell(task, machine int, value float64) (*StreamUpdate, error) {
	return c.send(streamRequest{Op: "set_cell", Task: task, Machine: machine, Value: value})
}

// SetWeights replaces the weight vectors; nil keeps the existing one.
func (c *StreamClient) SetWeights(taskWeights, machineWeights []float64) (*StreamUpdate, error) {
	return c.send(streamRequest{Op: "weights", TaskWeights: taskWeights, MachineWeights: machineWeights})
}

// Close ends the session cleanly and returns the server's summary line
// (incremental/recomputed totals). Safe to call once.
func (c *StreamClient) Close() (*StreamUpdate, error) {
	if c.closed {
		return nil, fmt.Errorf("stream session already closed")
	}
	u, err := c.send(streamRequest{Op: "close"})
	c.abort()
	return u, err
}

// abort tears the transport down without the close handshake.
func (c *StreamClient) abort() {
	if c.closed {
		return
	}
	c.closed = true
	c.pw.Close()
	if c.resp != nil {
		io.Copy(io.Discard, c.resp.Body)
		c.resp.Body.Close()
	}
}
