package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/etcmat"
	"repro/internal/matrix"
	"repro/internal/wire"
)

// streamTestEnv is the deterministic 3x3 environment every stream test
// opens with.
func streamTestEnv() *EnvDTO {
	return &EnvDTO{ETC: [][]ETCValue{
		{10, 20, 40},
		{15, 12, 30},
		{25, 50, 9},
	}}
}

func TestStreamSessionJSON(t *testing.T) {
	s, ts := testServer(t, Config{})
	c, open, err := OpenStreamSession(context.Background(), nil, ts.URL, streamTestEnv(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if open.Seq != 0 || open.Profile == nil || open.Incremental != nil {
		t.Fatalf("open line: seq=%d profile=%v incremental=%v", open.Seq, open.Profile, open.Incremental)
	}
	if open.Profile.Tasks != 3 || open.Profile.Machines != 3 {
		t.Fatalf("open profile dims %dx%d, want 3x3", open.Profile.Tasks, open.Profile.Machines)
	}
	if open.Version != APIVersion {
		t.Fatalf("open api_version = %q, want %q", open.Version, APIVersion)
	}

	steps := []struct {
		do    func() (*StreamUpdate, error)
		tasks int
		machs int
	}{
		{func() (*StreamUpdate, error) { return c.AddTask("", []float64{0.1, 0.05, 0.2}) }, 4, 3},
		{func() (*StreamUpdate, error) { return c.AddMachine("gpu1", []float64{1, 2, 3, 4}) }, 4, 4},
		{func() (*StreamUpdate, error) { return c.SetCell(0, 0, 0.5) }, 4, 4},
		{func() (*StreamUpdate, error) { return c.DropTask(1) }, 3, 4},
		{func() (*StreamUpdate, error) { return c.SetWeights([]float64{1, 2, 3}, []float64{1, 1, 2, 2}) }, 3, 4},
	}
	for i, st := range steps {
		u, err := st.do()
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if u.Error != nil {
			t.Fatalf("step %d: in-stream error %s: %s", i, u.Error.Code, u.Error.Message)
		}
		if u.Seq != i+1 {
			t.Errorf("step %d: seq = %d, want %d", i, u.Seq, i+1)
		}
		if u.Profile == nil || u.Incremental == nil {
			t.Fatalf("step %d: missing profile or incremental flag: %+v", i, u)
		}
		if u.Profile.Tasks != st.tasks || u.Profile.Machines != st.machs {
			t.Errorf("step %d: dims %dx%d, want %dx%d", i, u.Profile.Tasks, u.Profile.Machines, st.tasks, st.machs)
		}
		if u.Profile.Cached {
			t.Errorf("step %d: stream profile claims cached", i)
		}
	}

	sum, err := c.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Closed {
		t.Fatalf("close line not marked closed: %+v", sum)
	}
	if sum.IncrementalTotal+sum.RecomputedTotal != len(steps) {
		t.Errorf("close totals %d+%d, want %d mutations",
			sum.IncrementalTotal, sum.RecomputedTotal, len(steps))
	}

	// The accounting invariant: every session contributes one open profile
	// plus one per accepted mutation.
	if got, want := s.streamProfiles.Value(), s.streamSessions.Value()+s.streamIncremental.Value()+s.streamRecomputed.Value(); got != want {
		t.Errorf("stream accounting: profiles=%d, sessions+incremental+recomputed=%d", got, want)
	}
	if s.streamSessions.Value() != 1 {
		t.Errorf("stream sessions = %d, want 1", s.streamSessions.Value())
	}
	if s.streams.active.Load() != 0 {
		t.Errorf("live sessions after close = %d, want 0", s.streams.active.Load())
	}
}

// TestStreamMatchesOneShot pins the contract that makes streaming useful at
// all: after a run of mutations, the streamed profile equals a cold one-shot
// characterization of the same final environment (within the incremental
// solver's property-tested tolerance).
func TestStreamMatchesOneShot(t *testing.T) {
	_, ts := testServer(t, Config{})
	c, _, err := OpenStreamSession(context.Background(), nil, ts.URL, streamTestEnv(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddTask("", []float64{0.1, 0.05, 0.2}); err != nil {
		t.Fatal(err)
	}
	u, err := c.SetCell(2, 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// The same final environment, characterized cold at the stream solve
	// tolerance.
	env := etcmat.MustFromETC([][]float64{
		{10, 20, 40},
		{15, 12, 30},
		{25, 1 / 0.5, 9},
		{1 / 0.1, 1 / 0.05, 1 / 0.2},
	})
	env.SetStandardFormTol(core.StreamSolveTol)
	cold := core.Characterize(env)
	if u.Profile.TMA == nil || cold.TMAErr != nil {
		t.Fatalf("TMA unavailable: stream=%v coldErr=%v", u.Profile.TMA, cold.TMAErr)
	}
	if d := *u.Profile.TMA - cold.TMA; d > 1e-9 || d < -1e-9 {
		t.Errorf("stream TMA %.15f vs cold %.15f (delta %g)", *u.Profile.TMA, cold.TMA, d)
	}
	if u.Profile.MPH != cold.MPH || u.Profile.TDH != cold.TDH {
		t.Errorf("stream MPH/TDH (%g, %g) vs cold (%g, %g)",
			u.Profile.MPH, u.Profile.TDH, cold.MPH, cold.TDH)
	}
}

func TestStreamSessionLimit(t *testing.T) {
	_, ts := testServer(t, Config{MaxStreamSessions: 1})
	c, _, err := OpenStreamSession(context.Background(), nil, ts.URL, streamTestEnv(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, _, err = OpenStreamSession(context.Background(), nil, ts.URL, streamTestEnv(), 0)
	if err == nil || !strings.Contains(err.Error(), codeSessionLimit) {
		t.Fatalf("second session: err = %v, want %s", err, codeSessionLimit)
	}
	// Closing the first session frees the slot.
	if _, err := c.Close(); err != nil {
		t.Fatal(err)
	}
	c2, _, err := OpenStreamSession(context.Background(), nil, ts.URL, streamTestEnv(), 0)
	if err != nil {
		t.Fatalf("session after free: %v", err)
	}
	c2.Close()
}

func TestStreamInvalidMutationKeepsSession(t *testing.T) {
	s, ts := testServer(t, Config{})
	c, _, err := OpenStreamSession(context.Background(), nil, ts.URL, streamTestEnv(), 0)
	if err != nil {
		t.Fatal(err)
	}
	u, err := c.DropTask(99)
	if err != nil {
		t.Fatal(err)
	}
	if u.Error == nil || u.Error.Code != codeInvalidMutation {
		t.Fatalf("drop_task 99: %+v, want %s error", u, codeInvalidMutation)
	}
	// The session survives and the state is untouched.
	u, err = c.AddTask("", []float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if u.Error != nil || u.Profile.Tasks != 4 {
		t.Fatalf("mutation after rejection: %+v", u)
	}
	if _, err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if s.streamRejected.Value() != 1 {
		t.Errorf("rejected counter = %d, want 1", s.streamRejected.Value())
	}
}

func TestStreamFirstLineMustOpen(t *testing.T) {
	_, ts := testServer(t, Config{})
	resp, err := http.Post(ts.URL+"/v1/stream", "application/x-ndjson",
		strings.NewReader(`{"op":"add_task","speeds":[1,2]}`+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var u StreamUpdate
	if err := json.NewDecoder(resp.Body).Decode(&u); err != nil {
		t.Fatal(err)
	}
	if u.Error == nil || u.Error.Code != codeInvalidRequest {
		t.Fatalf("first-line mutation: %+v, want %s", u, codeInvalidRequest)
	}
}

func TestStreamIdleEviction(t *testing.T) {
	_, ts := testServer(t, Config{StreamIdleTimeout: 100 * time.Millisecond})
	c, _, err := OpenStreamSession(context.Background(), nil, ts.URL, streamTestEnv(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.abort()
	// Send nothing; the server must evict with session_idle.
	u, err := c.read()
	if err != nil {
		t.Fatal(err)
	}
	if u.Error == nil || u.Error.Code != codeSessionIdle {
		t.Fatalf("idle session: %+v, want %s", u, codeSessionIdle)
	}
}

// TestStreamSessionBinary drives the binary framing end to end and checks
// the responses agree with a parallel JSON session over the same mutation
// sequence — including the profile frame's cached bit carrying the
// incremental flag.
func TestStreamSessionBinary(t *testing.T) {
	_, ts := testServer(t, Config{})

	// The JSON reference session.
	jc, jopen, err := OpenStreamSession(context.Background(), nil, ts.URL, streamTestEnv(), 0)
	if err != nil {
		t.Fatal(err)
	}
	jAdd, err := jc.AddTask("", []float64{0.1, 0.05, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	jCell, err := jc.SetCell(0, 1, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := jc.Close(); err != nil {
		t.Fatal(err)
	}

	// The same session in binary framing.
	etc := matrix.New(3, 3)
	for i, row := range [][]float64{{10, 20, 40}, {15, 12, 30}, {25, 50, 9}} {
		for j, v := range row {
			etc.Set(i, j, v)
		}
	}
	openFrame, err := wire.AppendMatrix(nil, etc)
	if err != nil {
		t.Fatal(err)
	}
	mut1, err := wire.AppendMutation(nil, wire.Mutation{
		Op: wire.MutAddTask, Task: -1, Machine: -1, Values: []float64{0.1, 0.05, 0.2}})
	if err != nil {
		t.Fatal(err)
	}
	mut2, err := wire.AppendMutation(nil, wire.Mutation{
		Op: wire.MutSetCell, Task: 0, Machine: 1, Values: []float64{0.25}})
	if err != nil {
		t.Fatal(err)
	}

	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/stream", pr)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", wire.ContentTypeMatrix)
	respCh := make(chan *http.Response, 1)
	errCh := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			errCh <- err
			return
		}
		respCh <- resp
	}()
	if _, err := pw.Write(openFrame); err != nil {
		t.Fatal(err)
	}
	var resp *http.Response
	select {
	case resp = <-respCh:
	case err := <-errCh:
		t.Fatal(err)
	case <-time.After(10 * time.Second):
		t.Fatal("timed out waiting for stream response headers")
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("binary stream open: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != wire.ContentTypeProfile {
		t.Fatalf("binary stream Content-Type = %q, want %q", ct, wire.ContentTypeProfile)
	}

	br := bufio.NewReader(resp.Body)
	var frame []byte
	readProfile := func() *wire.Profile {
		t.Helper()
		n, err := readFrame(br, &frame, 0)
		if err != nil {
			t.Fatalf("reading profile frame: %v", err)
		}
		p, _, err := wire.DecodeProfile(frame[:n])
		if err != nil {
			t.Fatalf("decoding profile frame: %v", err)
		}
		return p
	}

	bOpen := readProfile()
	if bOpen.Cached {
		t.Error("open profile frame claims incremental")
	}
	if jopen.Profile.TMA == nil || !bOpen.TMAValid || bOpen.TMA != *jopen.Profile.TMA {
		t.Errorf("binary open TMA %v (valid=%v) != JSON %v", bOpen.TMA, bOpen.TMAValid, jopen.Profile.TMA)
	}

	if _, err := pw.Write(mut1); err != nil {
		t.Fatal(err)
	}
	bAdd := readProfile()
	if bAdd.Tasks != 4 || bAdd.TMA != *jAdd.Profile.TMA {
		t.Errorf("binary add_task: tasks=%d TMA=%v, JSON TMA=%v", bAdd.Tasks, bAdd.TMA, *jAdd.Profile.TMA)
	}
	if bAdd.Cached != *jAdd.Incremental {
		t.Errorf("binary add_task cached bit %v != JSON incremental %v", bAdd.Cached, *jAdd.Incremental)
	}

	if _, err := pw.Write(mut2); err != nil {
		t.Fatal(err)
	}
	bCell := readProfile()
	if bCell.TMA != *jCell.Profile.TMA {
		t.Errorf("binary set_cell TMA %v != JSON %v", bCell.TMA, *jCell.Profile.TMA)
	}

	// EOF is a clean close.
	pw.Close()
	if _, err := readFrame(br, &frame, 0); err != io.EOF {
		t.Errorf("after close: err = %v, want EOF", err)
	}
}

// TestStreamGoldenTranscript pins the line-by-line shape of a JSON session —
// open, three mutations, close — as the v1.2 wire contract: which fields
// appear on which line, in what order, with what sequencing. Numeric profile
// values are checked structurally (they are covered by the property tests),
// but every envelope field is exact.
func TestStreamGoldenTranscript(t *testing.T) {
	_, ts := testServer(t, Config{})
	body := strings.Join([]string{
		`{"op":"open","env":{"etc":[[10,20,40],[15,12,30],[25,50,9]]}}`,
		`{"op":"add_task","speeds":[0.1,0.05,0.2]}`,
		`{"op":"set_cell","task":0,"machine":1,"value":0.25}`,
		`{"op":"drop_machine","index":2}`,
		`{"op":"close"}`,
	}, "\n") + "\n"
	resp, err := http.Post(ts.URL+"/v1/stream", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q, want application/x-ndjson", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) != 5 {
		t.Fatalf("transcript has %d lines, want 5:\n%s", len(lines), raw)
	}
	// Every line leads with the envelope: api_version then seq.
	for i, ln := range lines {
		prefix := fmt.Sprintf(`{"api_version":"1.2","seq":%d,`, i)
		if !strings.HasPrefix(ln, prefix) {
			t.Errorf("line %d does not open with %s: %s", i, prefix, ln)
		}
	}
	// Line 0: the cold open — a profile, no incremental flag.
	if !strings.Contains(lines[0], `"profile":{"tasks":3,"machines":3,`) {
		t.Errorf("open line: %s", lines[0])
	}
	if strings.Contains(lines[0], `"incremental"`) {
		t.Errorf("open line carries an incremental flag: %s", lines[0])
	}
	// Lines 1-3: mutations — profile plus the incremental flag.
	for i, dims := range []string{`"tasks":4,"machines":3,`, `"tasks":4,"machines":3,`, `"tasks":4,"machines":2,`} {
		ln := lines[i+1]
		if !strings.Contains(ln, `"profile":{`+dims[1:]) && !strings.Contains(ln, dims) {
			t.Errorf("mutation line %d dims, want %s: %s", i+1, dims, ln)
		}
		if !strings.Contains(ln, `"incremental":`) {
			t.Errorf("mutation line %d missing incremental flag: %s", i+1, ln)
		}
	}
	// Line 4: the close summary.
	var sum StreamUpdate
	if err := json.Unmarshal([]byte(lines[4]), &sum); err != nil {
		t.Fatal(err)
	}
	if !sum.Closed || sum.Profile != nil || sum.Error != nil {
		t.Errorf("close line: %s", lines[4])
	}
	if sum.IncrementalTotal+sum.RecomputedTotal != 3 {
		t.Errorf("close totals %d+%d, want 3", sum.IncrementalTotal, sum.RecomputedTotal)
	}
}

// TestErrorEnvelopeGolden pins the exact v1.2 error envelope for every code
// in the registry (codes.go): one wire shape, code strings frozen.
func TestErrorEnvelopeGolden(t *testing.T) {
	for _, code := range []string{
		codeInvalidRequest, codeBodyTooLarge, codeUnsupportedEncoding,
		codeOverloaded, codeTimeout, codeCanceled, codeInternal,
		codeSessionLimit, codeInvalidMutation, codeSessionIdle,
	} {
		rec := httptest.NewRecorder()
		writeError(rec, http.StatusBadRequest, code, "boom")
		golden := `{"api_version":"1.2","error":{"code":"` + code + `","message":"boom"}}`
		if got := strings.TrimSpace(rec.Body.String()); got != golden {
			t.Errorf("error envelope for %s drifted:\n got  %s\n want %s", code, got, golden)
		}
	}
}

// TestStreamMetricsExposition checks the stream families render on /metrics
// with the accounting invariant visible to scrapers.
func TestStreamMetricsExposition(t *testing.T) {
	_, ts := testServer(t, Config{})
	c, _, err := OpenStreamSession(context.Background(), nil, ts.URL, streamTestEnv(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddTask("", []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Close(); err != nil {
		t.Fatal(err)
	}
	_, body := get(t, ts, "/metrics")
	for _, want := range []string{
		"hcserved_stream_sessions_total 1",
		"hcserved_stream_profiles_total 2",
		`hcserved_stream_mutations_total{kind="add_task"} 1`,
		"hcserved_stream_sessions 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
