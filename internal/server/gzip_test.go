package server

import (
	"bytes"
	"compress/gzip"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/wire"
)

func gzipBytes(t *testing.T, data []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// rawClient disables the transport's automatic gzip handling so tests see
// the response exactly as sent.
func rawClient() *http.Client {
	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.DisableCompression = true
	return &http.Client{Transport: tr}
}

func postEncoded(t *testing.T, ts *httptest.Server, path, contentType, contentEncoding, acceptEncoding string, body []byte) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+path, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", contentType)
	if contentEncoding != "" {
		req.Header.Set("Content-Encoding", contentEncoding)
	}
	if acceptEncoding != "" {
		req.Header.Set("Accept-Encoding", acceptEncoding)
	}
	resp, err := rawClient().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func TestGzipRequestJSON(t *testing.T) {
	_, ts := testServer(t, Config{})
	plainResp, plainBody := post(t, ts, "/v1/characterize", "application/json", envBody)
	if plainResp.StatusCode != http.StatusOK {
		t.Fatalf("plain status %d", plainResp.StatusCode)
	}
	want := decodeProfile(t, plainBody)

	resp, body := postEncoded(t, ts, "/v1/characterize", "application/json", "gzip", "",
		gzipBytes(t, []byte(envBody)))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("gzip status %d: %s", resp.StatusCode, body)
	}
	got := decodeProfile(t, string(body))
	if got.MPH != want.MPH || got.TDH != want.TDH || got.Tasks != want.Tasks {
		t.Errorf("gzipped request decoded differently: %+v vs %+v", got, want)
	}
	if !got.Cached {
		t.Error("gzipped body must hash to the same content key (expected a cache hit)")
	}
}

func TestGzipRequestBinaryFrame(t *testing.T) {
	_, ts := testServer(t, Config{})
	frame := etcFrame(t, [][]float64{{10, 7}, {4, 2}})
	resp, body := postEncoded(t, ts, "/v1/characterize", wire.ContentTypeMatrix, "gzip", "",
		gzipBytes(t, frame))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	p := decodeProfile(t, string(body))
	if p.Tasks != 2 || p.Machines != 2 {
		t.Errorf("shape %dx%d, want 2x2", p.Tasks, p.Machines)
	}
}

// TestGzipBombCappedAfterDecompression is the reason the byte cap wraps the
// inflated stream: ~60 KB of gzip expands past a 16 KB limit and must 413,
// even though the wire body is tiny.
func TestGzipBombCappedAfterDecompression(t *testing.T) {
	_, ts := testServer(t, Config{MaxBodyBytes: 16 << 10})
	big := []byte(`{"ecs":[[` + strings.Repeat("1,", 40000) + `1]]}`)
	compressed := gzipBytes(t, big)
	if len(compressed) >= 16<<10 {
		t.Fatalf("test setup: compressed body %d bytes does not fit under the cap", len(compressed))
	}
	resp, body := postEncoded(t, ts, "/v1/characterize", "application/json", "gzip", "", compressed)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "body_too_large") {
		t.Errorf("missing stable error code: %s", body)
	}
}

func TestGzipMalformedBody(t *testing.T) {
	_, ts := testServer(t, Config{})
	resp, body := postEncoded(t, ts, "/v1/characterize", "application/json", "gzip",
		"", []byte("definitely not gzip"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", resp.StatusCode, body)
	}
}

func TestUnsupportedContentEncoding(t *testing.T) {
	_, ts := testServer(t, Config{})
	resp, body := postEncoded(t, ts, "/v1/characterize", "application/json", "br", "", []byte(envBody))
	if resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Fatalf("status %d, want 415: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "unsupported_encoding") {
		t.Errorf("missing stable error code: %s", body)
	}
}

func TestGzipResponseJSON(t *testing.T) {
	_, ts := testServer(t, Config{})
	big := bigEnvBody(60, 40)
	resp, body := postEncoded(t, ts, "/v1/characterize", "application/json", "", "gzip", []byte(big))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("Content-Encoding"); got != "gzip" {
		t.Fatalf("Content-Encoding = %q, want gzip", got)
	}
	if !strings.Contains(resp.Header.Get("Vary"), "Accept-Encoding") {
		t.Error("missing Vary: Accept-Encoding")
	}
	zr, err := gzip.NewReader(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("response body is not gzip: %v", err)
	}
	plain, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	p := decodeProfile(t, string(plain))
	if p.Tasks != 60 || p.Machines != 40 {
		t.Errorf("shape %dx%d, want 60x40", p.Tasks, p.Machines)
	}
}

func TestGzipResponseBinaryProfile(t *testing.T) {
	_, ts := testServer(t, Config{})
	// A profile frame for a 100x60 env is ~1.3 KB — over the compression floor.
	body := []byte(bigEnvBody(100, 60))
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/characterize", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", wire.ContentTypeProfile)
	req.Header.Set("Accept-Encoding", "gzip")
	resp, err := rawClient().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	if got := resp.Header.Get("Content-Encoding"); got != "gzip" {
		t.Fatalf("Content-Encoding = %q, want gzip", got)
	}
	zr, err := gzip.NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	frame, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	wp, _, err := wire.DecodeProfile(frame)
	if err != nil {
		t.Fatalf("decoding inflated profile frame: %v", err)
	}
	if wp.Tasks != 100 || wp.Machines != 60 {
		t.Errorf("shape %dx%d, want 100x60", wp.Tasks, wp.Machines)
	}
}

func TestNoGzipWithoutAcceptEncoding(t *testing.T) {
	_, ts := testServer(t, Config{})
	resp, body := postEncoded(t, ts, "/v1/characterize", "application/json", "", "", []byte(bigEnvBody(50, 30)))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("Content-Encoding"); got != "" {
		t.Errorf("uninvited Content-Encoding %q", got)
	}
	decodeProfile(t, string(body)) // must be plain JSON
}

func TestGzipRefusedWithQZero(t *testing.T) {
	_, ts := testServer(t, Config{})
	resp, body := postEncoded(t, ts, "/v1/characterize", "application/json", "", "gzip;q=0", []byte(bigEnvBody(50, 30)))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("Content-Encoding"); got != "" {
		t.Errorf("gzip;q=0 must refuse compression, got Content-Encoding %q", got)
	}
}

func TestErrorResponsesStayPlain(t *testing.T) {
	_, ts := testServer(t, Config{})
	resp, body := postEncoded(t, ts, "/v1/characterize", "application/json", "", "gzip", []byte(`{"bogus":`))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("Content-Encoding"); got != "" {
		t.Errorf("error response compressed (Content-Encoding %q)", got)
	}
	if !strings.Contains(string(body), "invalid_request") {
		t.Errorf("error body not plain JSON: %s", body)
	}
}
