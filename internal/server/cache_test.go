package server

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/etcmat"
)

func testCache(capacity int) *profileCache {
	m := NewMetrics()
	return newProfileCache(capacity, m.Counter("hits", "h", ""))
}

func TestCacheKeyContentAddressing(t *testing.T) {
	a := etcmat.MustFromETC([][]float64{{1, 2}, {3, 4}})
	same := etcmat.MustFromETC([][]float64{{1, 2}, {3, 4}})
	if keyOf(a) != keyOf(same) {
		t.Error("identical matrices must share a key")
	}

	// Names are measure-irrelevant: renaming must not change the key.
	named, err := a.WithTaskNames([]string{"gcc", "mcf"})
	if err != nil {
		t.Fatal(err)
	}
	if keyOf(a) != keyOf(named) {
		t.Error("task names changed the cache key; measures ignore names")
	}

	// Weights are measure-relevant: reweighting must change the key.
	weighted, err := a.WithWeights([]float64{2, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if keyOf(a) == keyOf(weighted) {
		t.Error("task weights did not change the cache key")
	}

	// Any entry difference must change the key.
	b := etcmat.MustFromETC([][]float64{{1, 2}, {3, 4.000001}})
	if keyOf(a) == keyOf(b) {
		t.Error("different matrices share a key")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := testCache(2)
	envs := []*etcmat.Env{
		etcmat.MustFromETC([][]float64{{1, 2}, {3, 4}}),
		etcmat.MustFromETC([][]float64{{5, 6}, {7, 8}}),
		etcmat.MustFromETC([][]float64{{9, 10}, {11, 12}}),
	}
	keys := make([]cacheKey, len(envs))
	for i, env := range envs {
		keys[i] = keyOf(env)
	}
	c.Put(keys[0], core.Characterize(envs[0]))
	c.Put(keys[1], core.Characterize(envs[1]))
	// Touch 0 so 1 becomes least recently used, then insert 2.
	if _, ok := c.Get(keys[0]); !ok {
		t.Fatal("key 0 missing before eviction")
	}
	c.Put(keys[2], core.Characterize(envs[2]))
	if c.Len() != 2 {
		t.Fatalf("cache holds %d entries, want 2", c.Len())
	}
	if _, ok := c.Get(keys[1]); ok {
		t.Error("least recently used entry survived eviction")
	}
	if _, ok := c.Get(keys[0]); !ok {
		t.Error("recently used entry was evicted")
	}
	if _, ok := c.Get(keys[2]); !ok {
		t.Error("newest entry was evicted")
	}
}

func TestCacheDisabled(t *testing.T) {
	c := testCache(0)
	env := etcmat.MustFromETC([][]float64{{1, 2}, {3, 4}})
	k := keyOf(env)
	c.Put(k, core.Characterize(env))
	if _, ok := c.Get(k); ok {
		t.Error("capacity-0 cache returned a hit")
	}
	if c.Len() != 0 {
		t.Errorf("capacity-0 cache holds %d entries", c.Len())
	}
}

// TestCacheConcurrentPounding drives Get/Put/Len from many goroutines over a
// deliberately tiny capacity so insertions, hits and evictions interleave;
// run with -race this is the LRU's data-race gate.
func TestCacheConcurrentPounding(t *testing.T) {
	c := testCache(8)
	profiles := make([]*core.Profile, 32)
	keys := make([]cacheKey, 32)
	for i := range keys {
		env := etcmat.MustFromETC([][]float64{{1, float64(i) + 2}, {3, 4}})
		keys[i] = keyOf(env)
		profiles[i] = core.Characterize(env)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := (i*7 + w*13) % len(keys)
				switch i % 3 {
				case 0:
					c.Put(keys[k], profiles[k])
				case 1:
					if p, ok := c.Get(keys[k]); ok && p == nil {
						t.Error("hit returned nil profile")
						return
					}
				default:
					_ = c.Len()
				}
			}
		}(w)
	}
	wg.Wait()
	if n := c.Len(); n > 8 {
		t.Errorf("cache exceeded capacity: %d entries", n)
	}
}

// TestCacheShardDistribution checks the sharding layout: small capacities
// stay unsharded (exact global LRU), large ones split the capacity exactly
// across all shards, and SHA-256 keys spread over every shard so no single
// lock serializes the hot path.
func TestCacheShardDistribution(t *testing.T) {
	if c := testCache(cacheShards - 1); len(c.shards) != 1 {
		t.Errorf("capacity %d built %d shards, want 1 (exact LRU below the shard threshold)",
			cacheShards-1, len(c.shards))
	}

	c := testCache(1000) // not a multiple of cacheShards: remainder must spread
	if len(c.shards) != cacheShards {
		t.Fatalf("%d shards, want %d", len(c.shards), cacheShards)
	}
	total := 0
	for i := range c.shards {
		sc := c.shards[i].cap
		if lo, hi := 1000/cacheShards, 1000/cacheShards+1; sc < lo || sc > hi {
			t.Errorf("shard %d capacity %d outside [%d, %d]", i, sc, lo, hi)
		}
		total += sc
	}
	if total != 1000 {
		t.Errorf("shard capacities sum to %d, want exactly 1000", total)
	}

	// Real keys (SHA-256 of environments) must reach every shard: fill far
	// past capacity and expect each shard pinned at its own cap.
	rng := rand.New(rand.NewSource(3))
	p := &core.Profile{}
	for i := 0; i < 8*1000; i++ {
		env := etcmat.MustFromETC([][]float64{{1 + rng.Float64(), 2}, {3, 4}})
		c.Put(keyOf(env), p)
	}
	if n := c.Len(); n != 1000 {
		t.Errorf("overfilled cache holds %d entries, want exactly 1000", n)
	}
	for i := range c.shards {
		if got, want := len(c.shards[i].items), c.shards[i].cap; got != want {
			t.Errorf("shard %d holds %d entries, want full at %d", i, got, want)
		}
	}
}

func BenchmarkCacheKey(b *testing.B) {
	env := etcmat.MustFromETC(func() [][]float64 {
		rows := make([][]float64, 60)
		for i := range rows {
			rows[i] = make([]float64, 40)
			for j := range rows[i] {
				rows[i][j] = float64(i*40+j) + 1
			}
		}
		return rows
	}())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = keyOf(env)
	}
}
