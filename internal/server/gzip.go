package server

import (
	"compress/gzip"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
)

// Transport compression. Requests may arrive with Content-Encoding: gzip
// (JSON or binary frame bodies alike — the decoders never see the wrapper),
// and responses compress when the client's Accept-Encoding asks for it. Both
// directions run on pooled coders: one gzip.Writer allocation is ~1.4 MB of
// window state, which would dominate the allocation profile if paid per
// request. The body byte cap applies to the DECOMPRESSED size — a tiny
// gzip-bombed body must not smuggle an over-limit matrix past the 413 check.

var (
	gzipReaderPool = sync.Pool{New: func() any { return new(gzip.Reader) }}
	gzipWriterPool = sync.Pool{New: func() any {
		// Speed over ratio: matrix bodies are dense float64 noise where higher
		// levels buy little; JSON profile envelopes compress well at any level.
		zw, _ := gzip.NewWriterLevel(io.Discard, gzip.BestSpeed)
		return zw
	}}
)

// unsupportedEncodingError maps to 415 in writeDecodeError: the client used
// a Content-Encoding this server does not implement, which is neither a bad
// request body (400) nor an over-limit one (413).
type unsupportedEncodingError struct{ enc string }

func (e *unsupportedEncodingError) Error() string {
	return fmt.Sprintf("unsupported Content-Encoding %q (only gzip and identity)", e.enc)
}

// requestBody returns the request's plaintext body under the configured byte
// cap, transparently inflating a gzip-encoded one. The cap wraps the
// DECOMPRESSED stream, so an over-limit body surfaces as *http.MaxBytesError
// (-> 413 body_too_large) whether or not it was compressed. cleanup recycles
// the pooled inflater and must run once the body is fully consumed.
func (s *Server) requestBody(w http.ResponseWriter, r *http.Request) (body io.ReadCloser, cleanup func(), err error) {
	var src io.ReadCloser = r.Body
	cleanup = func() {}
	switch ce := r.Header.Get("Content-Encoding"); {
	case ce == "" || strings.EqualFold(ce, "identity"):
	case strings.EqualFold(ce, "gzip"):
		zr := gzipReaderPool.Get().(*gzip.Reader)
		if err := zr.Reset(r.Body); err != nil {
			gzipReaderPool.Put(zr)
			return nil, nil, fmt.Errorf("malformed gzip body: %w", err)
		}
		src = zr
		cleanup = func() { gzipReaderPool.Put(zr) }
	default:
		return nil, nil, &unsupportedEncodingError{enc: ce}
	}
	return http.MaxBytesReader(w, src, s.cfg.MaxBodyBytes), cleanup, nil
}

// acceptsGzip reports whether the client's Accept-Encoding admits gzip. A
// quality value of 0 is an explicit refusal; this parses just enough of RFC
// 9110 for that (no wildcard handling — a client that sends "*" and means
// gzip can say so).
func acceptsGzip(r *http.Request) bool {
	for _, part := range strings.Split(r.Header.Get("Accept-Encoding"), ",") {
		enc, q, _ := strings.Cut(strings.TrimSpace(part), ";")
		if !strings.EqualFold(strings.TrimSpace(enc), "gzip") {
			continue
		}
		if qv, ok := strings.CutPrefix(strings.TrimSpace(q), "q="); ok {
			if f, err := strconv.ParseFloat(qv, 64); err == nil && f == 0 {
				return false
			}
		}
		return true
	}
	return false
}

// gzipMinSize is the smallest response body worth compressing: below it the
// gzip header plus flush overhead beats the savings (small JSON errors,
// empty-ish envelopes).
const gzipMinSize = 512

// compressibleType reports whether a response content type benefits from
// gzip: JSON envelopes, the binary frames (dense float64 payloads still
// shed 10-30% on realistic matrices), and the metrics text.
func compressibleType(ct string) bool {
	switch {
	case strings.HasPrefix(ct, "application/json"),
		strings.HasPrefix(ct, "application/x-hc-"),
		strings.HasPrefix(ct, "text/plain"):
		return true
	}
	return false
}

// gzipResponseWriter swaps in a pooled gzip.Writer at WriteHeader time when
// the response qualifies (200, compressible type, not provably tiny). The
// decision point is WriteHeader because every handler sets Content-Type (and
// writeBinary Content-Length) before it, so no buffering is needed.
type gzipResponseWriter struct {
	http.ResponseWriter
	zw          *gzip.Writer
	wroteHeader bool
}

func (g *gzipResponseWriter) WriteHeader(code int) {
	if g.wroteHeader {
		return
	}
	g.wroteHeader = true
	h := g.Header()
	clKnownSmall := false
	if cl := h.Get("Content-Length"); cl != "" {
		if n, err := strconv.Atoi(cl); err == nil && n < gzipMinSize {
			clKnownSmall = true
		}
	}
	if code == http.StatusOK && compressibleType(h.Get("Content-Type")) && !clKnownSmall {
		h.Del("Content-Length") // length of the compressed stream is unknown
		h.Set("Content-Encoding", "gzip")
		g.zw = gzipWriterPool.Get().(*gzip.Writer)
		g.zw.Reset(g.ResponseWriter)
	}
	g.ResponseWriter.WriteHeader(code)
}

func (g *gzipResponseWriter) Write(p []byte) (int, error) {
	if !g.wroteHeader {
		g.WriteHeader(http.StatusOK)
	}
	if g.zw != nil {
		return g.zw.Write(p)
	}
	return g.ResponseWriter.Write(p)
}

// finish flushes the compressed stream and recycles the writer. Must run
// after the handler returns, before the connection is released.
func (g *gzipResponseWriter) finish() error {
	if g.zw == nil {
		return nil
	}
	err := g.zw.Close()
	g.zw.Reset(io.Discard) // drop the response writer reference before pooling
	gzipWriterPool.Put(g.zw)
	g.zw = nil
	return err
}

// withCompression negotiates response compression. It sits inside the
// observability middleware, so the request log's byte count reports wire
// (compressed) bytes.
func (s *Server) withCompression(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// The representation varies on what the client accepts, compressed or
		// not — caches must key on it either way.
		w.Header().Add("Vary", "Accept-Encoding")
		if !acceptsGzip(r) {
			next.ServeHTTP(w, r)
			return
		}
		gw := &gzipResponseWriter{ResponseWriter: w}
		defer func() {
			if err := gw.finish(); err != nil {
				s.log.Error("flushing gzip response", "err", err)
			}
		}()
		next.ServeHTTP(gw, r)
	})
}
