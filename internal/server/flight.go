package server

import (
	"context"
	"errors"

	"sync"

	"repro/internal/core"
	"repro/internal/etcmat"
	"repro/internal/obs"
)

// flightGroup deduplicates concurrent computations of the same cache key:
// the first caller to join a key becomes the leader and runs the
// characterization; every other caller that arrives before the leader
// finishes blocks on the call's done channel and shares the leader's result.
// Without this layer a stampede of identical requests — the pattern the zipf
// load phase reproduces — fans out one CharacterizeCtx per request even
// though all of them would Put the same profile.
type flightGroup struct {
	mu    sync.Mutex
	calls map[cacheKey]*flightCall
}

// flightCall is one in-flight computation. profile is written exactly once,
// before done is closed, and read only after done is closed, so waiters need
// no lock. A nil profile after done means the leader failed to produce one
// (a panic unwound through it); waiters surface that as an error instead of
// hanging.
type flightCall struct {
	done    chan struct{}
	profile *core.Profile
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[cacheKey]*flightCall)}
}

// join returns the in-flight call for the key, creating it when none exists.
// The second return is true for the leader — the caller that must compute
// and then publish through finish (on every path, including panics).
func (g *flightGroup) join(k cacheKey) (*flightCall, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.calls[k]; ok {
		return c, false
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[k] = c
	return c, true
}

// finish publishes the leader's result and releases the key: waiters wake
// with the profile, and the next request for the key starts a fresh flight
// (normally hitting the cache the leader just filled).
func (g *flightGroup) finish(k cacheKey, c *flightCall, p *core.Profile) {
	c.profile = p
	g.mu.Lock()
	delete(g.calls, k)
	g.mu.Unlock()
	close(c.done)
}

// Outcomes of a coalesced characterization, used for response metadata and
// metric accounting: each request increments exactly one of cache_hits,
// cache_misses or coalesced.
const (
	outcomeHit       = "hit"       // served from the cache
	outcomeMiss      = "miss"      // this request ran the computation
	outcomeCoalesced = "coalesced" // served by another request's computation
)

// errCoalescedFailed is surfaced to waiters whose leader terminated without
// publishing a profile (only a panic in the compute path can cause it).
var errCoalescedFailed = errors.New("server: coalesced computation failed")

// characterizeCoalesced computes (or recalls) the profile for the keyed
// environment through the cache and the singleflight layer: among all
// concurrent callers with the same key, exactly one CharacterizeCtx runs.
// The cache is re-checked first — by the time a request gets here it may
// have queued for admission while another request filled the entry.
//
// Metric accounting: a hit counts under cache_hits (inside Get), a leader
// under cache_misses + characterizations, and a waiter under coalesced —
// unique computes and coalesced waiters are disjoint, so
// misses == characterizations and hits + misses + coalesced == requests.
func (s *Server) characterizeCoalesced(ctx context.Context, key cacheKey, env *etcmat.Env) (*core.Profile, string, error) {
	if p, ok := s.cache.Get(key); ok {
		return p, outcomeHit, nil
	}
	call, leader := s.flight.join(key)
	if !leader {
		s.coalesced.Inc()
		sp := obs.StartSpan(ctx, "coalesced_wait")
		defer sp.End()
		select {
		case <-call.done:
			if call.profile == nil {
				return nil, outcomeCoalesced, errCoalescedFailed
			}
			return call.profile, outcomeCoalesced, nil
		case <-ctx.Done():
			return nil, outcomeCoalesced, ctx.Err()
		}
	}
	var p *core.Profile
	// Publish from a defer so a panicking pipeline still wakes the waiters
	// (with a nil profile) before the recovery middleware reports the 500.
	defer func() { s.flight.finish(key, call, p) }()
	p = core.CharacterizeCtx(ctx, env)
	s.misses.Inc()
	s.computed.Inc()
	s.cache.Put(key, p)
	return p, outcomeMiss, nil
}
