package server

// This file is the registry of machine-readable error codes. Every non-2xx
// JSON response carries exactly one of these in its error envelope
// ({"api_version": ..., "error": {"code": ..., "message": ...}}), and the
// constants below are the only values the code field may take — handlers
// never write ad-hoc strings, so clients can switch on the code without
// chasing the prose. The registry is part of the wire contract (API.md
// §Errors): codes are append-only and never renamed or reused.
const (
	// codeInvalidRequest (400): the body failed to decode or validate —
	// malformed JSON, a ragged or empty matrix, a non-positive ETC entry, a
	// wrong-length name or weight vector, an unknown generator kind.
	codeInvalidRequest = "invalid_request"
	// codeBodyTooLarge (413): the body exceeds Config.MaxBodyBytes, measured
	// after any Content-Encoding is undone.
	codeBodyTooLarge = "body_too_large"
	// codeUnsupportedEncoding (415): the Content-Encoding is not identity or
	// gzip.
	codeUnsupportedEncoding = "unsupported_encoding"
	// codeOverloaded (429): the compute queue is full; Retry-After carries the
	// suggested backoff in seconds.
	codeOverloaded = "overloaded"
	// codeTimeout (504): the per-request deadline expired, queued or
	// mid-computation.
	codeTimeout = "timeout"
	// codeCanceled (503): the client went away while the request was queued.
	codeCanceled = "canceled"
	// codeInternal (500): a handler panic or an encoding failure; the details
	// are in the server log, keyed by the X-Request-ID echoed on the response.
	codeInternal = "internal"

	// Stream-session codes (v1.2, POST /v1/stream).

	// codeSessionLimit (503): the server is already holding
	// Config.MaxStreamSessions live stream sessions; retry after one closes.
	codeSessionLimit = "session_limit"
	// codeInvalidMutation (in-stream): a mutation was rejected — bad index,
	// wrong-length vector, non-finite value, or an op the session cannot
	// apply. The session state is untouched and the stream stays open.
	codeInvalidMutation = "invalid_mutation"
	// codeSessionIdle (in-stream): no mutation arrived within
	// Config.StreamIdleTimeout; the server evicted the session. Terminal.
	codeSessionIdle = "session_idle"
)
