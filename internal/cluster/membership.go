package cluster

import (
	"sort"
	"sync"
	"time"
)

// Peer health states. Health is always a local observation — nodes never
// import each other's verdicts, so one partitioned node cannot talk the rest
// of the cluster into declaring a healthy peer dead. Gossip propagates only
// addresses; every node then probes and judges for itself.
const (
	StateAlive   = "alive"   // responded within the suspicion window
	StateSuspect = "suspect" // failing, but within the death window: still on the ring, hedging covers it
	StateDead    = "dead"    // unresponsive past DeadAfter: off the ring, still probed for rejoin
)

// PeerInfo is the wire form of one membership entry (/v1/cluster/peers).
type PeerInfo struct {
	Addr  string `json:"addr"`
	State string `json:"state"`
}

// membership tracks the locally observed health of every known peer and
// projects the live set onto the ring. The self node is always on the ring
// and never appears in the peers map.
type membership struct {
	mu           sync.Mutex
	self         string
	peers        map[string]*peerState
	ring         *Ring
	suspectAfter time.Duration
	deadAfter    time.Duration
	now          func() time.Time

	// onRingChange, when set, is invoked after a peer actually joins or
	// leaves the ring (added / removed is the peer address, the other
	// argument empty). It runs outside the membership mutex — the handoff
	// manager behind it re-enters the ring.
	onRingChange func(added, removed string)
}

type peerState struct {
	addr     string
	state    string
	lastSeen time.Time // last successful contact (or first sighting)
}

func newMembership(self string, ring *Ring, suspectAfter, deadAfter time.Duration) *membership {
	ring.Add(self)
	return &membership{
		self:         self,
		peers:        make(map[string]*peerState),
		ring:         ring,
		suspectAfter: suspectAfter,
		deadAfter:    deadAfter,
		now:          time.Now,
	}
}

// add registers a peer address, optimistically alive (the gossip loop will
// demote it if it never answers). Adding self or a known peer is a no-op.
func (m *membership) add(addr string) {
	if addr == "" || addr == m.self {
		return
	}
	m.mu.Lock()
	if _, ok := m.peers[addr]; ok {
		m.mu.Unlock()
		return
	}
	m.peers[addr] = &peerState{addr: addr, state: StateAlive, lastSeen: m.now()}
	m.ring.Add(addr)
	cb := m.onRingChange
	m.mu.Unlock()
	if cb != nil {
		cb(addr, "")
	}
}

// merge folds a gossiped peer list into the local view: unknown addresses are
// added, known ones keep their locally observed state.
func (m *membership) merge(infos []PeerInfo) {
	for _, p := range infos {
		m.add(p.Addr)
	}
}

// observeSuccess records a successful contact: the peer is alive and (back)
// on the ring.
func (m *membership) observeSuccess(addr string) {
	if addr == m.self {
		return
	}
	m.mu.Lock()
	p, ok := m.peers[addr]
	if !ok {
		p = &peerState{addr: addr}
		m.peers[addr] = p
	}
	p.lastSeen = m.now()
	rejoined := false
	if p.state != StateAlive {
		p.state = StateAlive
		m.ring.Add(addr)
		rejoined = true
	}
	cb := m.onRingChange
	m.mu.Unlock()
	if rejoined && cb != nil {
		cb(addr, "")
	}
}

// observeFailure records a failed contact and applies the suspicion
// timeouts: a peer silent past suspectAfter turns suspect (still routable —
// the hedge covers it), past deadAfter it is dead and leaves the ring. Dead
// peers stay in the table and keep being probed, so a restarted node rejoins
// without operator action.
func (m *membership) observeFailure(addr string) {
	if addr == m.self {
		return
	}
	m.mu.Lock()
	p, ok := m.peers[addr]
	if !ok {
		m.mu.Unlock()
		return
	}
	died := false
	silent := m.now().Sub(p.lastSeen)
	switch {
	case silent >= m.deadAfter:
		if p.state != StateDead {
			p.state = StateDead
			m.ring.Remove(addr)
			died = true
		}
	case silent >= m.suspectAfter:
		if p.state == StateAlive {
			p.state = StateSuspect
		}
	}
	cb := m.onRingChange
	m.mu.Unlock()
	if died && cb != nil {
		cb("", addr)
	}
}

// state returns the peer's current state ("" for unknown).
func (m *membership) state(addr string) string {
	if addr == m.self {
		return StateAlive
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if p, ok := m.peers[addr]; ok {
		return p.state
	}
	return ""
}

// snapshot returns the full membership view, self included, sorted by
// address for deterministic wire output.
func (m *membership) snapshot() []PeerInfo {
	m.mu.Lock()
	out := make([]PeerInfo, 0, len(m.peers)+1)
	out = append(out, PeerInfo{Addr: m.self, State: StateAlive})
	for _, p := range m.peers {
		out = append(out, PeerInfo{Addr: p.addr, State: p.state})
	}
	m.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// addrs returns every known peer address (all states), for the gossip loop.
func (m *membership) addrs() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.peers))
	for a := range m.peers {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// aliveCount reports how many peers (excluding self) are currently alive.
func (m *membership) aliveCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, p := range m.peers {
		if p.state == StateAlive {
			n++
		}
	}
	return n
}
