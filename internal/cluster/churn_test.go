package cluster

import (
	"fmt"
	"testing"
	"time"
)

// ringNodes builds a ring over the named nodes with the default vnode count.
func ringNodes(replicas int, nodes ...string) *Ring {
	r := NewRing(replicas, DefaultVirtualNodes)
	for _, n := range nodes {
		r.Add(n)
	}
	return r
}

// ownersEqual compares two ownership lists positionally (order is part of the
// placement contract — it is the forward preference order).
func ownersEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestRingChurnMovesBoundedFraction is the consistent-hashing stability
// property: adding or removing one node moves only ~R/N of the key space's
// owner sets, and every unmoved key keeps its exact owner list. A modulo-
// style placement would move nearly everything; a broken vnode hash would
// move nothing.
func TestRingChurnMovesBoundedFraction(t *testing.T) {
	const nKeys = 2000
	base := []string{"n0:1", "n1:1", "n2:1", "n3:1", "n4:1"}
	before := ringNodes(2, base...)

	for _, tc := range []struct {
		name     string
		after    *Ring
		newNodes int // ring size after the change
		joined   string
	}{
		{"add", ringNodes(2, append(append([]string{}, base...), "n5:1")...), 6, "n5:1"},
		{"remove", ringNodes(2, base[1:]...), 4, ""},
	} {
		t.Run(tc.name, func(t *testing.T) {
			moved := 0
			for i := 0; i < nKeys; i++ {
				k := testKey(i)
				ob, oa := before.Owners(k), tc.after.Owners(k)
				if ownersEqual(ob, oa) {
					continue
				}
				moved++
				if tc.joined != "" && !contains(oa, tc.joined) && ownersEqual(ob, oa) {
					t.Fatalf("key %d changed owners without involving the joined node: %v -> %v", i, ob, oa)
				}
			}
			frac := float64(moved) / nKeys
			// Expected fraction: a key's owner set changes iff the churned
			// node appears in (or leaves) its R-owner list, ~R/ringSize of
			// keys. Allow generous slack for vnode placement variance, but
			// fail the order-of-magnitude regressions this test exists for.
			expect := 2.0 / float64(tc.newNodes)
			if tc.name == "remove" {
				expect = 2.0 / float64(len(base))
			}
			if frac > 1.8*expect {
				t.Errorf("churn moved %.1f%% of keys, expected ~%.1f%% (consistent hashing broken?)",
					100*frac, 100*expect)
			}
			if frac < 0.3*expect {
				t.Errorf("churn moved only %.1f%% of keys, expected ~%.1f%% (ring not rebalancing?)",
					100*frac, 100*expect)
			}
		})
	}
}

// TestHandoffSelectsExactlyMovedRanges cross-checks the handoff send rule
// against brute force: across all old owners, the keys offered for handoff
// are exactly the keys whose owner set gained a node, each offered precisely
// to its new owners and nothing else.
func TestHandoffSelectsExactlyMovedRanges(t *testing.T) {
	const nKeys = 1500
	base := []string{"n0:1", "n1:1", "n2:1", "n3:1", "n4:1"}
	withNew := append(append([]string{}, base...), "n5:1")

	for _, tc := range []struct {
		name    string
		before  *Ring
		after   *Ring
		senders []string // nodes still alive to run the handoff
	}{
		{"join", ringNodes(2, base...), ringNodes(2, withNew...), base},
		{"leave", ringNodes(2, withNew...), ringNodes(2, base...), base},
	} {
		t.Run(tc.name, func(t *testing.T) {
			offered := 0
			for i := 0; i < nKeys; i++ {
				k := testKey(i)
				ob, oa := tc.before.Owners(k), tc.after.Owners(k)
				// Brute-force ground truth: the new owners of this key.
				var fresh []string
				for _, d := range oa {
					if !contains(ob, d) {
						fresh = append(fresh, d)
					}
				}
				got := map[string]int{}
				for _, self := range tc.senders {
					for _, d := range handoffDests(tc.before, tc.after, self, k) {
						if !contains(ob, self) {
							t.Fatalf("key %d: %s offered a key it never owned", i, self)
						}
						if d == self || contains(ob, d) {
							t.Fatalf("key %d: handoff to %s, which is not a fresh owner", i, d)
						}
						got[d]++
					}
				}
				for _, d := range fresh {
					// Every fresh owner must be offered the key by each
					// surviving old owner (the cache could live on any of
					// them; only the holder will actually send).
					holders := 0
					for _, self := range tc.senders {
						if contains(ob, self) {
							holders++
						}
					}
					if got[d] != holders {
						t.Fatalf("key %d: fresh owner %s offered by %d of %d old owners", i, d, got[d], holders)
					}
					offered++
				}
				if len(fresh) == 0 && len(got) != 0 {
					t.Fatalf("key %d: unmoved key offered for handoff to %v", i, got)
				}
			}
			if offered == 0 {
				t.Fatal("no key moved at all; the scenario tests nothing")
			}
		})
	}
}

// TestMembershipRingChangeCallback pins the handoff trigger contract: the
// callback fires exactly on real ring transitions — join, death, recovery —
// and not on repeated observations.
func TestMembershipRingChangeCallback(t *testing.T) {
	ring := NewRing(2, 8)
	m := newMembership("self:1", ring, 50*time.Millisecond, 100*time.Millisecond)
	var events []string
	m.onRingChange = func(added, removed string) {
		events = append(events, fmt.Sprintf("+%s-%s", added, removed))
	}

	m.add("peer:1")
	m.add("peer:1") // idempotent: no second event
	m.observeSuccess("peer:1")

	now := time.Now()
	m.now = func() time.Time { return now.Add(200 * time.Millisecond) }
	m.observeFailure("peer:1") // past deadAfter: off the ring
	m.observeFailure("peer:1") // already dead: no second event
	m.observeSuccess("peer:1") // recovery: back on the ring

	want := []string{"+peer:1-", "+-peer:1", "+peer:1-"}
	if len(events) != len(want) {
		t.Fatalf("ring-change events %v, want %v", events, want)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("event %d = %q, want %q (all: %v)", i, events[i], want[i], events)
		}
	}
}

// TestPeerGateBackpressure pins the bounded-transport contract: maxInflight
// slots, then maxQueue waiters, then ErrPeerBusy — and a release wakes the
// queue head.
func TestPeerGateBackpressure(t *testing.T) {
	g := newPeerGate(2, 1)
	never := make(chan struct{})

	rel1, err := g.acquire(never)
	if err != nil {
		t.Fatal(err)
	}
	rel2, err := g.acquire(never)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.inflight(); got != 2 {
		t.Fatalf("inflight = %d, want 2", got)
	}

	// Third acquire queues; park it in a goroutine.
	acquired := make(chan func(), 1)
	go func() {
		rel, err := g.acquire(never)
		if err != nil {
			t.Error(err)
			return
		}
		acquired <- rel
	}()
	// Wait until it is actually queued, then the fourth acquire must shed.
	deadline := time.Now().Add(2 * time.Second)
	for {
		g.mu.Lock()
		waiting := g.waiting
		g.mu.Unlock()
		if waiting == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("queued acquire never registered as waiting")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := g.acquire(never); err != ErrPeerBusy {
		t.Fatalf("over-queue acquire returned %v, want ErrPeerBusy", err)
	}

	rel1() // frees a slot; the queued waiter takes it
	select {
	case rel3 := <-acquired:
		rel3()
	case <-time.After(2 * time.Second):
		t.Fatal("queued acquire never got the released slot")
	}
	rel2()
	if got := g.inflight(); got != 0 {
		t.Fatalf("inflight after releases = %d, want 0", got)
	}

	// A canceled context unblocks a queued acquire with an error.
	rel4, err := g.acquire(never)
	if err != nil {
		t.Fatal(err)
	}
	rel5, err := g.acquire(never)
	if err != nil {
		t.Fatal(err)
	}
	canceled := make(chan struct{})
	close(canceled)
	done := make(chan error, 1)
	go func() {
		_, err := g.acquire(canceled)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil || err == ErrPeerBusy {
			t.Fatalf("canceled queued acquire returned %v, want a cancellation error", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("canceled acquire never returned")
	}
	rel4()
	rel5()
}

// TestP2CPrefersLowerLatencyReplica: with exactly two live replicas the p2c
// sample always covers both, so the ordering is deterministic — the peer with
// the better EWMA/p99 score leads.
func TestP2CPrefersLowerLatencyReplica(t *testing.T) {
	rt := NewRouter(Config{
		Self:         "self:1",
		Peers:        []string{"fast:1", "slow:1"},
		Replicas:     3, // both peers own every key alongside self
		VirtualNodes: 8,
	})
	for i := 0; i < 32; i++ {
		rt.peers.latency("fast:1").record(1 * time.Millisecond)
		rt.peers.latency("slow:1").record(80 * time.Millisecond)
	}
	key := testKey(7)
	for i := 0; i < 20; i++ {
		targets := rt.forwardTargets(key, false)
		if len(targets) != 2 {
			t.Fatalf("targets = %v, want both peers", targets)
		}
		if targets[0] != "fast:1" {
			t.Fatalf("iteration %d: p2c led with %q, want the low-latency peer", i, targets[0])
		}
	}
	// PrimaryOnly bypasses p2c: strict ring order, whatever the scores say.
	ringOrder := rt.forwardTargets(key, true)
	var want []string
	for _, o := range rt.Ring().Owners(key) {
		if o != "self:1" {
			want = append(want, o)
		}
	}
	if !ownersEqual(ringOrder, want) {
		t.Fatalf("primary-only targets %v, want ring order %v", ringOrder, want)
	}
}

// TestParseHops pins the header compatibility contract.
func TestParseHops(t *testing.T) {
	cases := map[string]int{
		"":    0,
		"1":   1,
		"2":   2,
		"9":   9,
		"yes": 1, // legacy boolean form counts as one hop
		"-3":  1,
		"0":   1, // a present header is at least one hop
	}
	for in, want := range cases {
		if got := ParseHops(in); got != want {
			t.Errorf("ParseHops(%q) = %d, want %d", in, got, want)
		}
	}
}
