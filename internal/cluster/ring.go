// Package cluster turns the single-process serving tier into a sharded,
// replicated characterization cluster: a consistent-hash ring places content
// keys on nodes, a router forwards non-owned keys to their owner over the
// binary wire format and hedges reads to the next replica to mask stragglers,
// and a lightweight membership loop keeps the peer view converged through
// joins, failures and restarts. See DESIGN.md §15.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
	"sync"

	"repro/internal/etcmat"
)

// Defaults for ring geometry. 64 virtual nodes per physical node keeps the
// expected load imbalance of a small cluster within a few percent without
// making ring rebuilds (a sort over nodes·vnodes points) noticeable.
const (
	DefaultVirtualNodes = 64
	DefaultReplicas     = 2
)

// Ring is a consistent-hash ring over node addresses. Each node contributes
// VirtualNodes points on a uint64 circle; a content key is owned by the first
// Replicas distinct nodes clockwise from the key's point. Adding or removing
// one node moves only the keys adjacent to its points — the property that
// lets a cluster grow or lose a node without re-keying every cache.
//
// All methods are safe for concurrent use; lookups take a read lock only.
type Ring struct {
	mu       sync.RWMutex
	replicas int
	vnodes   int
	points   []ringPoint // sorted ascending by hash
	nodes    map[string]struct{}
}

type ringPoint struct {
	hash uint64
	node string
}

// NewRing builds an empty ring with the given replication factor and virtual
// node count (<=0 selects the defaults).
func NewRing(replicas, vnodes int) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	return &Ring{
		replicas: replicas,
		vnodes:   vnodes,
		nodes:    make(map[string]struct{}),
	}
}

// Replicas reports the ring's replication factor.
func (r *Ring) Replicas() int { return r.replicas }

// keyPoint places a content key on the circle. SHA-256 output is uniform, so
// the first 8 bytes are as good a point as any rehash.
func keyPoint(key etcmat.ContentKey) uint64 {
	return binary.LittleEndian.Uint64(key[:8])
}

// vnodeHash places virtual node i of a node on the circle. SHA-256 rather
// than a cheap mixer: placement runs only on membership change, and poor
// vnode dispersion becomes permanent load skew.
func vnodeHash(node string, i int) uint64 {
	sum := sha256.Sum256([]byte(node + "#" + strconv.Itoa(i)))
	return binary.LittleEndian.Uint64(sum[:8])
}

// Add inserts a node's virtual points. Adding a present node is a no-op.
func (r *Ring) Add(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.nodes[node]; ok {
		return
	}
	r.nodes[node] = struct{}{}
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{vnodeHash(node, i), node})
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
}

// Remove deletes a node's virtual points. Removing an absent node is a no-op.
func (r *Ring) Remove(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.nodes[node]; !ok {
		return
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Nodes returns the member set in sorted order.
func (r *Ring) Nodes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len reports the number of member nodes.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.nodes)
}

// Owners returns the key's replica set: the first Replicas distinct nodes
// clockwise from the key's point, in preference order (the primary first).
// Fewer than Replicas nodes on the ring yields all of them; an empty ring
// yields nil.
func (r *Ring) Owners(key etcmat.ContentKey) []string {
	return r.OwnersOf(keyPoint(key))
}

// OwnersOf is Owners for a pre-computed ring point.
func (r *Ring) OwnersOf(point uint64) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return nil
	}
	want := r.replicas
	if n := len(r.nodes); want > n {
		want = n
	}
	// First point at or after the key, wrapping at the top of the circle.
	idx := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= point })
	owners := make([]string, 0, want)
	for i := 0; i < len(r.points) && len(owners) < want; i++ {
		node := r.points[(idx+i)%len(r.points)].node
		if !contains(owners, node) {
			owners = append(owners, node)
		}
	}
	return owners
}

// Owns reports whether node is in the key's replica set.
func (r *Ring) Owns(key etcmat.ContentKey, node string) bool {
	return contains(r.Owners(key), node)
}

func contains(s []string, v string) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
