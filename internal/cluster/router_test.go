package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/wire"
)

type testCounter struct{ n atomic.Int64 }

func (c *testCounter) Inc()         { c.n.Add(1) }
func (c *testCounter) value() int64 { return c.n.Load() }

// fakePeer is a characterize endpoint with a settable delay, failure switch
// and request capture, standing in for a cluster node.
type fakePeer struct {
	srv     *httptest.Server
	delayNS atomic.Int64
	fail    atomic.Bool
	cached  atomic.Bool
	hits    atomic.Int64
	lastReq atomic.Pointer[http.Request]
}

func newFakePeer(t *testing.T) *fakePeer {
	t.Helper()
	p := &fakePeer{}
	p.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		p.hits.Add(1)
		p.lastReq.Store(r.Clone(context.Background()))
		if d := time.Duration(p.delayNS.Load()); d > 0 {
			select {
			case <-time.After(d):
			case <-r.Context().Done():
				return
			}
		}
		if p.fail.Load() {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		prof := &wire.Profile{
			Tasks: 2, Machines: 3,
			MPH: 0.5, TDH: 0.25, TMA: 0.75, TMAValid: true,
			RatioR: 2, GeoMeanG: 1.5, COV: 0.3,
			SinkhornIterations: 7,
			Cached:             p.cached.Load(),
			MachinePerf:        []float64{1, 2, 3},
			TaskDiff:           []float64{0.1, 0.2},
		}
		buf, err := wire.AppendProfile(nil, prof)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", wire.ContentTypeProfile)
		w.Write(buf)
	}))
	t.Cleanup(p.srv.Close)
	return p
}

func (p *fakePeer) addr() string {
	u, _ := url.Parse(p.srv.URL)
	return u.Host
}

// newTestRouter builds a router whose ring holds self plus the given peers,
// with replicas = all nodes so every peer is a forward target for any key.
func newTestRouter(t *testing.T, peers ...*fakePeer) (*Router, *testCounter, *testCounter, *testCounter) {
	t.Helper()
	addrs := make([]string, len(peers))
	for i, p := range peers {
		addrs[i] = p.addr()
	}
	rt := NewRouter(Config{
		Self:          "self.invalid:1",
		Peers:         addrs,
		Replicas:      len(peers) + 1,
		VirtualNodes:  8,
		HedgeDelayMin: time.Millisecond,
		HedgeDelayMax: 30 * time.Millisecond,
	})
	fe, h, hw := &testCounter{}, &testCounter{}, &testCounter{}
	rt.SetStats(Stats{ForwardErrors: fe, Hedges: h, HedgeWins: hw})
	return rt, fe, h, hw
}

func peerByAddr(addr string, peers ...*fakePeer) *fakePeer {
	for _, p := range peers {
		if p.addr() == addr {
			return p
		}
	}
	return nil
}

func TestForwardSuccess(t *testing.T) {
	peer := newFakePeer(t)
	peer.cached.Store(true)
	rt, _, _, _ := newTestRouter(t, peer)
	key := testKey(1)

	p, cached, err := rt.Forward(context.Background(), key, envBody(t), "req-123", ForwardOpts{PrimaryOnly: true})
	if err != nil {
		t.Fatalf("Forward: %v", err)
	}
	if !cached {
		t.Error("peer cache flag not passed through")
	}
	if p.Tasks != 2 || p.Machines != 3 || p.TMA != 0.75 || p.TMAErr != nil {
		t.Fatalf("profile mismatch: %+v", p)
	}
	req := peer.lastReq.Load()
	if got := req.Header.Get(ForwardedHeader); got != "1" {
		t.Errorf("%s = %q, want 1", ForwardedHeader, got)
	}
	if got := req.Header.Get("X-Request-ID"); got != "req-123" {
		t.Errorf("X-Request-ID = %q, want req-123", got)
	}
	if got := req.Header.Get("Content-Type"); got != wire.ContentTypeMatrix {
		t.Errorf("Content-Type = %q", got)
	}
	if got := req.Header.Get("Accept"); got != wire.ContentTypeProfile {
		t.Errorf("Accept = %q", got)
	}
	if !strings.HasPrefix(req.URL.Path, "/v1/characterize") {
		t.Errorf("path = %q", req.URL.Path)
	}
}

func TestForwardFailoverOnError(t *testing.T) {
	a, b := newFakePeer(t), newFakePeer(t)
	rt, fe, _, _ := newTestRouter(t, a, b)
	key := testKey(2)
	targets := rt.forwardTargets(key, true)
	if len(targets) != 2 {
		t.Fatalf("targets = %v, want both peers", targets)
	}
	peerByAddr(targets[0], a, b).fail.Store(true)

	p, _, err := rt.Forward(context.Background(), key, envBody(t), "", ForwardOpts{PrimaryOnly: true})
	if err != nil {
		t.Fatalf("Forward should fail over, got %v", err)
	}
	if p == nil || p.Tasks != 2 {
		t.Fatalf("bad profile: %+v", p)
	}
	if fe.value() != 1 {
		t.Errorf("forward_errors = %d, want 1", fe.value())
	}
}

func TestForwardHedgeWinsOnSlowPrimary(t *testing.T) {
	a, b := newFakePeer(t), newFakePeer(t)
	rt, _, hedges, wins := newTestRouter(t, a, b)
	key := testKey(3)
	targets := rt.forwardTargets(key, true)
	primary := peerByAddr(targets[0], a, b)
	primary.delayNS.Store(int64(2 * time.Second))

	start := time.Now()
	p, _, err := rt.Forward(context.Background(), key, envBody(t), "", ForwardOpts{PrimaryOnly: true})
	if err != nil {
		t.Fatalf("Forward: %v", err)
	}
	if p.Tasks != 2 {
		t.Fatalf("bad profile: %+v", p)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("hedge did not mask the slow primary: took %v", elapsed)
	}
	if hedges.value() != 1 {
		t.Errorf("hedges = %d, want 1", hedges.value())
	}
	if wins.value() != 1 {
		t.Errorf("hedge_wins = %d, want 1", wins.value())
	}
}

func TestForwardAllPeersFail(t *testing.T) {
	a, b := newFakePeer(t), newFakePeer(t)
	a.fail.Store(true)
	b.fail.Store(true)
	rt, fe, _, _ := newTestRouter(t, a, b)

	_, _, err := rt.Forward(context.Background(), testKey(4), envBody(t), "", ForwardOpts{PrimaryOnly: true})
	if err == nil {
		t.Fatal("Forward succeeded with every peer failing")
	}
	if fe.value() != 2 {
		t.Errorf("forward_errors = %d, want 2", fe.value())
	}
}

func TestForwardNoPeers(t *testing.T) {
	rt := NewRouter(Config{Self: "self.invalid:1", Replicas: 2, VirtualNodes: 8})
	_, _, err := rt.Forward(context.Background(), testKey(5), envBody(t), "", ForwardOpts{PrimaryOnly: true})
	if !errors.Is(err, ErrNoPeers) {
		t.Fatalf("err = %v, want ErrNoPeers", err)
	}
}

func TestLocallyOwned(t *testing.T) {
	rt := NewRouter(Config{Self: "self.invalid:1", Replicas: 2, VirtualNodes: 8})
	if !rt.LocallyOwned(testKey(0)) {
		t.Fatal("single-node ring must own everything")
	}
	// With replicas >= nodes, everything stays locally owned too.
	rt2 := NewRouter(Config{
		Self: "self.invalid:1", Peers: []string{"a.invalid:1", "b.invalid:1"},
		Replicas: 3, VirtualNodes: 8,
	})
	if !rt2.LocallyOwned(testKey(0)) {
		t.Fatal("replicas==nodes must keep every key locally owned")
	}
	// With replicas < nodes some keys must be foreign-owned.
	rt3 := NewRouter(Config{
		Self: "self.invalid:1", Peers: []string{"a.invalid:1", "b.invalid:1", "c.invalid:1"},
		Replicas: 1, VirtualNodes: DefaultVirtualNodes,
	})
	foreign := 0
	for i := 0; i < 200; i++ {
		if !rt3.LocallyOwned(testKey(i)) {
			foreign++
		}
	}
	if foreign == 0 {
		t.Fatal("no key was foreign-owned on a 4-node ring with R=1")
	}
}

func TestHedgeDelayClamping(t *testing.T) {
	rt := NewRouter(Config{
		Self: "self.invalid:1", HedgeDelayMin: 5 * time.Millisecond, HedgeDelayMax: 50 * time.Millisecond,
	})
	if got := rt.HedgeDelay(); got != 50*time.Millisecond {
		t.Fatalf("empty tracker delay = %v, want the max", got)
	}
	for i := 0; i < 100; i++ {
		rt.lat.record(time.Millisecond) // fast peers: p99 below the floor
	}
	if got := rt.HedgeDelay(); got != 5*time.Millisecond {
		t.Fatalf("fast-peer delay = %v, want the min clamp", got)
	}
	for i := 0; i < 256; i++ {
		rt.lat.record(time.Second) // slow peers: p99 above the ceiling
	}
	if got := rt.HedgeDelay(); got != 50*time.Millisecond {
		t.Fatalf("slow-peer delay = %v, want the max clamp", got)
	}
}

// TestJoinAndGossip runs the membership loop against a fake seed that
// advertises a third node, checking that the router adopts it.
func TestJoinAndGossip(t *testing.T) {
	var joined atomic.Pointer[string]
	mux := http.NewServeMux()
	respond := func(w http.ResponseWriter, peers []PeerInfo) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{"peers": peers})
	}
	var seedAddr string
	mux.HandleFunc("/v1/cluster/join", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Addr string `json:"addr"`
		}
		json.NewDecoder(r.Body).Decode(&req)
		joined.Store(&req.Addr)
		respond(w, []PeerInfo{
			{Addr: seedAddr, State: StateAlive},
			{Addr: "third.invalid:9", State: StateAlive},
		})
	})
	mux.HandleFunc("/v1/cluster/peers", func(w http.ResponseWriter, r *http.Request) {
		respond(w, []PeerInfo{
			{Addr: seedAddr, State: StateAlive},
			{Addr: "third.invalid:9", State: StateAlive},
		})
	})
	seed := httptest.NewServer(mux)
	defer seed.Close()
	u, _ := url.Parse(seed.URL)
	seedAddr = u.Host

	rt := NewRouter(Config{
		Self: "self.invalid:1", Peers: []string{seedAddr},
		Replicas: 2, VirtualNodes: 8,
		GossipInterval: 20 * time.Millisecond, ProbeTimeout: time.Second,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rt.Start(ctx)

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		peers := rt.Peers()
		var addrs []string
		for _, p := range peers {
			addrs = append(addrs, p.Addr)
		}
		if contains(addrs, "third.invalid:9") && contains(addrs, seedAddr) {
			if got := joined.Load(); got == nil || *got != "self.invalid:1" {
				t.Fatalf("seed saw join addr %v, want self.invalid:1", got)
			}
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("gossip never adopted the advertised third node; view: %+v", rt.Peers())
}

// envBody builds a minimal env frame, the body every forward carries.
func envBody(t *testing.T) []byte {
	t.Helper()
	buf, err := wire.AppendEnv(nil, &wire.EnvFrame{
		Rows: 2, Cols: 3,
		ECS: []float64{1, 2, 3, 4, 5, 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	return buf
}
