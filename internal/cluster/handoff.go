package cluster

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"

	"repro/internal/etcmat"
	"repro/internal/wire"
)

// Active cache handoff: when membership changes the ring, ownership of some
// key ranges moves — without help the new owner recomputes every profile the
// old owner already holds. The handoff manager watches ring changes and
// streams the hottest cached entries for exactly the moved ranges to their
// new owners over handoff records (wire.ContentTypeHandoff), bounded by
// Config.HandoffBudget per event, so ownership moves warm.
//
// The manager is deliberately best-effort: a failed handoff costs recomputes,
// never correctness, so sends are fire-and-forget with one attempt and errors
// only logged.

// DefaultHandoffBudget caps the cache entries considered per ring change.
const DefaultHandoffBudget = 256

// HandoffEntry is one warm cache entry offered for handoff: the content key
// and the profile in wire form (which the receiver caches as served-from-
// cache, exactly like a peer fill).
type HandoffEntry struct {
	Key     etcmat.ContentKey
	Profile *wire.Profile
}

// HandoffSource exports a node's hottest cache entries, most recently used
// first, at most max of them. The server's profile cache implements it.
type HandoffSource interface {
	HotEntries(max int) []HandoffEntry
}

// handoffManager debounces ring-change notifications into a single worker
// that diffs ownership and ships moved entries. Membership fires ringChanged
// on every actual ring add/remove; the worker recomputes the node-set diff
// itself, so coalesced or redundant events degrade to no-ops.
type handoffManager struct {
	rt      *Router
	src     atomic.Value // of sourceBox
	events  chan struct{}
	running atomic.Bool
	prev    []string // node set at the previous event (worker-only)
}

// sourceBox wraps the interface so atomic.Value tolerates differing concrete
// types (and a nil source).
type sourceBox struct{ src HandoffSource }

func newHandoffManager(rt *Router) *handoffManager {
	return &handoffManager{rt: rt, events: make(chan struct{}, 1)}
}

func (h *handoffManager) setSource(src HandoffSource) { h.src.Store(sourceBox{src}) }

func (h *handoffManager) source() HandoffSource {
	if b, ok := h.src.Load().(sourceBox); ok {
		return b.src
	}
	return nil
}

// ringChanged is the membership callback. It is a level trigger, not an
// edge record: the single-slot channel coalesces bursts and the worker
// re-reads the live node set each time.
func (h *handoffManager) ringChanged(added, removed string) {
	if !h.running.Load() {
		return // pre-Start churn (seed registration); the cache is empty anyway
	}
	select {
	case h.events <- struct{}{}:
	default:
	}
}

// start snapshots the current node set as the baseline and launches the
// worker. Events arriving before start are dropped by ringChanged.
func (h *handoffManager) start(ctx context.Context) {
	if h.rt.cfg.HandoffBudget < 0 {
		return
	}
	h.prev = h.rt.ring.Nodes()
	h.running.Store(true)
	go func() {
		for {
			select {
			case <-ctx.Done():
				h.running.Store(false)
				return
			case <-h.events:
				h.runEvent(ctx)
			}
		}
	}()
}

// runEvent diffs the node set against the previous baseline and streams the
// moved hot entries to their new owners.
func (h *handoffManager) runEvent(ctx context.Context) {
	after := h.rt.ring.Nodes()
	before := h.prev
	h.prev = after
	if sameStrings(before, after) {
		return
	}
	src := h.source()
	if src == nil {
		return
	}
	entries := src.HotEntries(h.rt.cfg.HandoffBudget)
	if len(entries) == 0 {
		return
	}
	// Reconstruct both ring generations from the node lists: vnode placement
	// is purely name-derived, so these match what each side computes.
	beforeRing := ringOf(h.rt.cfg.Replicas, h.rt.cfg.VirtualNodes, before)
	afterRing := ringOf(h.rt.cfg.Replicas, h.rt.cfg.VirtualNodes, after)
	self := h.rt.Self()
	batches := make(map[string][]byte)
	counts := make(map[string]int)
	for _, e := range entries {
		for _, dest := range handoffDests(beforeRing, afterRing, self, e.Key) {
			b, err := wire.AppendHandoffEntry(batches[dest], e.Key, e.Profile)
			if err != nil {
				h.rt.log.Warn("handoff encode failed", "dest", dest, "err", err)
				continue
			}
			batches[dest] = b
			counts[dest]++
		}
	}
	for dest, body := range batches {
		if err := h.send(ctx, dest, body); err != nil {
			h.rt.log.Warn("handoff send failed", "dest", dest, "entries", counts[dest], "err", err)
			continue
		}
		h.rt.log.Info("handoff sent", "dest", dest, "entries", counts[dest])
		for i := 0; i < counts[dest]; i++ {
			h.rt.stats.HandoffSent.Inc()
		}
	}
}

// NewOwners returns the owners a key gains when the ring moves from before
// to after — the nodes a topology change leaves cold unless something warms
// them. It is the receiving side of the handoff send rule: across all old
// owners, handoffDests offers the key to exactly these nodes.
func NewOwners(before, after *Ring, key etcmat.ContentKey) []string {
	ownersBefore := before.Owners(key)
	var fresh []string
	for _, d := range after.Owners(key) {
		if !contains(ownersBefore, d) {
			fresh = append(fresh, d)
		}
	}
	return fresh
}

// handoffDests returns the nodes that must receive this key from self when
// the ring moves from before to after: self must have owned the key, and the
// destination must be a new owner that did not. This covers both directions
// of churn — on a join the new node is the (sole) fresh owner of everything
// it absorbed; on a leave the surviving replicas promote a fresh owner for
// the departed node's ranges.
func handoffDests(before, after *Ring, self string, key etcmat.ContentKey) []string {
	ownersBefore := before.Owners(key)
	if !contains(ownersBefore, self) {
		return nil
	}
	var dests []string
	for _, d := range after.Owners(key) {
		if d != self && !contains(ownersBefore, d) {
			dests = append(dests, d)
		}
	}
	return dests
}

// send posts one handoff batch. One attempt, bounded by the probe timeout
// scaled up for the larger body — handoff is an optimization, not a
// consistency protocol.
func (h *handoffManager) send(ctx context.Context, dest string, body []byte) error {
	sctx, cancel := context.WithTimeout(ctx, 5*h.rt.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(sctx, http.MethodPost,
		"http://"+dest+"/v1/cluster/handoff", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", wire.ContentTypeHandoff)
	resp, err := h.rt.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return nil
}

func ringOf(replicas, vnodes int, nodes []string) *Ring {
	r := NewRing(replicas, vnodes)
	for _, n := range nodes {
		r.Add(n)
	}
	return r
}

// sameStrings reports element equality of two sorted string slices.
func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
