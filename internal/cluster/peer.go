package cluster

import (
	"errors"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// This file is the per-peer half of the router: latency accounting for the
// p99-aware replica choice and the bounded transport gates that replace
// unbounded http.Transport fan-in. Both are keyed by peer address and created
// lazily on first contact, so membership changes need no bookkeeping here —
// an entry for a departed peer just goes cold.

// ErrPeerBusy reports that a peer's send queue is full: every connection slot
// is taken and the bounded wait queue is at capacity. The caller sheds the
// request to local compute instead of queueing unboundedly against a peer
// that is already behind.
var ErrPeerBusy = errors.New("cluster: peer send queue full")

// peerLatency tracks one peer's forward round-trip times two ways: an EWMA
// for the common-case level and a small sample ring for the p99 tail. The
// replica chooser scores a peer by whichever is worse — a peer whose median
// is fine but whose tail has collapsed should lose a power-of-two-choices
// coin flip against a steady one.
type peerLatency struct {
	mu      sync.Mutex
	ewma    time.Duration
	samples [128]time.Duration
	n       int
	idx     int
}

// ewmaAlpha is the smoothing factor of the per-peer EWMA. 0.2 means ~10
// samples to converge after a level shift: fast enough to track a peer
// warming up or degrading, slow enough not to chase single outliers.
const ewmaAlpha = 0.2

func (l *peerLatency) record(d time.Duration) {
	l.mu.Lock()
	if l.ewma == 0 {
		l.ewma = d
	} else {
		l.ewma += time.Duration(ewmaAlpha * float64(d-l.ewma))
	}
	l.samples[l.idx] = d
	l.idx = (l.idx + 1) % len(l.samples)
	if l.n < len(l.samples) {
		l.n++
	}
	l.mu.Unlock()
}

// score is the routing cost of this peer: max(EWMA, p99). A peer with no
// samples scores zero, so fresh peers are probed eagerly rather than starved
// behind peers with established (and therefore nonzero) numbers.
func (l *peerLatency) score() time.Duration {
	l.mu.Lock()
	if l.n == 0 {
		l.mu.Unlock()
		return 0
	}
	buf := make([]time.Duration, l.n)
	copy(buf, l.samples[:l.n])
	e := l.ewma
	l.mu.Unlock()
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	p99 := buf[(len(buf)-1)*99/100]
	if p99 > e {
		return p99
	}
	return e
}

// peerGate bounds one peer's transport: at most maxInflight requests on the
// wire plus at most maxQueue callers waiting for a slot. Past that the gate
// answers ErrPeerBusy immediately — backpressure surfaces to the caller
// instead of piling goroutines onto a peer that is already behind.
type peerGate struct {
	slots   chan struct{}
	mu      sync.Mutex
	waiting int
	maxQ    int
}

func newPeerGate(maxInflight, maxQueue int) *peerGate {
	return &peerGate{slots: make(chan struct{}, maxInflight), maxQ: maxQueue}
}

// acquire claims a slot, waiting in the bounded queue when none is free.
// The returned release must be called exactly once. done is the request
// context's cancellation channel.
func (g *peerGate) acquire(done <-chan struct{}) (release func(), err error) {
	select {
	case g.slots <- struct{}{}:
		return func() { <-g.slots }, nil
	default:
	}
	g.mu.Lock()
	if g.waiting >= g.maxQ {
		g.mu.Unlock()
		return nil, ErrPeerBusy
	}
	g.waiting++
	g.mu.Unlock()
	defer func() {
		g.mu.Lock()
		g.waiting--
		g.mu.Unlock()
	}()
	select {
	case g.slots <- struct{}{}:
		return func() { <-g.slots }, nil
	case <-done:
		return nil, errors.New("cluster: canceled while queued for a peer slot")
	}
}

// inflight reports the slots currently held.
func (g *peerGate) inflight() int { return len(g.slots) }

// peerTable is the lazily populated per-peer state: latency trackers and
// transport gates, shared by every Forward.
type peerTable struct {
	mu          sync.Mutex
	lat         map[string]*peerLatency
	gates       map[string]*peerGate
	maxInflight int
	maxQueue    int
	rng         *rand.Rand
}

func newPeerTable(maxInflight, maxQueue int) *peerTable {
	return &peerTable{
		lat:         make(map[string]*peerLatency),
		gates:       make(map[string]*peerGate),
		maxInflight: maxInflight,
		maxQueue:    maxQueue,
		// Seeded off the clock once at startup: the p2c coin flips must
		// differ across nodes, not be reproducible.
		rng: rand.New(rand.NewSource(time.Now().UnixNano())),
	}
}

func (t *peerTable) latency(addr string) *peerLatency {
	t.mu.Lock()
	defer t.mu.Unlock()
	l, ok := t.lat[addr]
	if !ok {
		l = &peerLatency{}
		t.lat[addr] = l
	}
	return l
}

func (t *peerTable) gate(addr string) *peerGate {
	t.mu.Lock()
	defer t.mu.Unlock()
	g, ok := t.gates[addr]
	if !ok {
		g = newPeerGate(t.maxInflight, t.maxQueue)
		t.gates[addr] = g
	}
	return g
}

// inflightTotal sums held slots across all peers (the peer_inflight gauge).
func (t *peerTable) inflightTotal() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, g := range t.gates {
		n += g.inflight()
	}
	return n
}

// coin flips one fair bit for power-of-two-choices.
func (t *peerTable) coin() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.rng.Intn(2) == 0
}

// pick2 returns two distinct random indices < n (n must be >= 2).
func (t *peerTable) pick2(n int) (int, int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	i := t.rng.Intn(n)
	j := t.rng.Intn(n - 1)
	if j >= i {
		j++
	}
	return i, j
}
