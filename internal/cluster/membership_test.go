package cluster

import (
	"testing"
	"time"
)

func newTestMembership() (*membership, *time.Time) {
	ring := NewRing(2, 8)
	m := newMembership("self:1", ring, 2*time.Second, 6*time.Second)
	now := time.Unix(1000, 0)
	m.now = func() time.Time { return now }
	return m, &now
}

func TestMembershipLifecycle(t *testing.T) {
	m, now := newTestMembership()
	m.add("peer:1")
	if got := m.state("peer:1"); got != StateAlive {
		t.Fatalf("fresh peer state = %q, want alive", got)
	}
	if !contains(m.ring.Nodes(), "peer:1") {
		t.Fatal("fresh peer not on ring")
	}

	// Failures inside the suspicion window change nothing.
	*now = now.Add(time.Second)
	m.observeFailure("peer:1")
	if got := m.state("peer:1"); got != StateAlive {
		t.Fatalf("state after 1s silence = %q, want alive", got)
	}

	// Past suspectAfter: suspect, but still on the ring (hedge covers it).
	*now = now.Add(2 * time.Second)
	m.observeFailure("peer:1")
	if got := m.state("peer:1"); got != StateSuspect {
		t.Fatalf("state after 3s silence = %q, want suspect", got)
	}
	if !contains(m.ring.Nodes(), "peer:1") {
		t.Fatal("suspect peer fell off the ring")
	}

	// Past deadAfter: dead and off the ring.
	*now = now.Add(4 * time.Second)
	m.observeFailure("peer:1")
	if got := m.state("peer:1"); got != StateDead {
		t.Fatalf("state after 7s silence = %q, want dead", got)
	}
	if contains(m.ring.Nodes(), "peer:1") {
		t.Fatal("dead peer still on the ring")
	}

	// A successful probe rejoins it — no operator action needed.
	m.observeSuccess("peer:1")
	if got := m.state("peer:1"); got != StateAlive {
		t.Fatalf("state after recovery = %q, want alive", got)
	}
	if !contains(m.ring.Nodes(), "peer:1") {
		t.Fatal("recovered peer not back on the ring")
	}
}

func TestMembershipSelfIsInert(t *testing.T) {
	m, _ := newTestMembership()
	m.add("self:1")
	m.observeFailure("self:1")
	if got := m.state("self:1"); got != StateAlive {
		t.Fatalf("self state = %q, want alive always", got)
	}
	if len(m.addrs()) != 0 {
		t.Fatalf("self leaked into the peer table: %v", m.addrs())
	}
	snap := m.snapshot()
	if len(snap) != 1 || snap[0].Addr != "self:1" || snap[0].State != StateAlive {
		t.Fatalf("snapshot = %+v, want only self alive", snap)
	}
}

func TestMembershipMergeAddsAddressesOnly(t *testing.T) {
	m, _ := newTestMembership()
	// Gossip claims a peer is dead; we must not import the verdict — health is
	// locally observed.
	m.merge([]PeerInfo{{Addr: "peer:1", State: StateDead}, {Addr: "self:1", State: StateDead}})
	if got := m.state("peer:1"); got != StateAlive {
		t.Fatalf("merged peer state = %q, want alive (local optimism)", got)
	}
	if got := m.state("self:1"); got != StateAlive {
		t.Fatalf("self state after hostile merge = %q", got)
	}
}

func TestMembershipAliveCount(t *testing.T) {
	m, now := newTestMembership()
	m.add("a:1")
	m.add("b:1")
	if got := m.aliveCount(); got != 2 {
		t.Fatalf("aliveCount = %d, want 2", got)
	}
	*now = now.Add(10 * time.Second)
	m.observeFailure("a:1")
	if got := m.aliveCount(); got != 1 {
		t.Fatalf("aliveCount after death = %d, want 1", got)
	}
}
