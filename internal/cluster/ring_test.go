package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"testing"

	"repro/internal/etcmat"
)

func testKey(i int) etcmat.ContentKey {
	var k etcmat.ContentKey
	sum := sha256.Sum256([]byte(fmt.Sprintf("key-%d", i)))
	copy(k[:], sum[:])
	return k
}

func TestRingOwnersDistinctAndCapped(t *testing.T) {
	r := NewRing(2, 8)
	for _, n := range []string{"a:1", "b:1", "c:1"} {
		r.Add(n)
	}
	for i := 0; i < 200; i++ {
		owners := r.Owners(testKey(i))
		if len(owners) != 2 {
			t.Fatalf("key %d: %d owners, want 2", i, len(owners))
		}
		if owners[0] == owners[1] {
			t.Fatalf("key %d: duplicate owner %q", i, owners[0])
		}
	}
}

func TestRingFewerNodesThanReplicas(t *testing.T) {
	r := NewRing(3, 8)
	if got := r.Owners(testKey(0)); got != nil {
		t.Fatalf("empty ring owners = %v, want nil", got)
	}
	r.Add("a:1")
	if got := r.Owners(testKey(0)); len(got) != 1 || got[0] != "a:1" {
		t.Fatalf("single-node owners = %v", got)
	}
	r.Add("b:1")
	if got := r.Owners(testKey(0)); len(got) != 2 {
		t.Fatalf("two-node owners = %v, want both nodes", got)
	}
}

func TestRingBalance(t *testing.T) {
	r := NewRing(1, DefaultVirtualNodes)
	nodes := []string{"a:1", "b:1", "c:1", "d:1"}
	for _, n := range nodes {
		r.Add(n)
	}
	counts := map[string]int{}
	const keys = 20000
	for i := 0; i < keys; i++ {
		counts[r.Owners(testKey(i))[0]]++
	}
	want := keys / len(nodes)
	for _, n := range nodes {
		if c := counts[n]; c < want/2 || c > want*2 {
			t.Errorf("node %s owns %d of %d keys, want within [%d,%d]",
				n, c, keys, want/2, want*2)
		}
	}
}

// Removing one node must only reassign keys that it owned — the consistent
// hashing property the cache layout depends on.
func TestRingRemovalStability(t *testing.T) {
	r := NewRing(1, DefaultVirtualNodes)
	for _, n := range []string{"a:1", "b:1", "c:1"} {
		r.Add(n)
	}
	const keys = 5000
	before := make([]string, keys)
	for i := range before {
		before[i] = r.Owners(testKey(i))[0]
	}
	r.Remove("b:1")
	for i := 0; i < keys; i++ {
		after := r.Owners(testKey(i))[0]
		if before[i] != "b:1" && after != before[i] {
			t.Fatalf("key %d moved %s -> %s though b:1 was its owner's peer only",
				i, before[i], after)
		}
		if after == "b:1" {
			t.Fatalf("key %d still owned by removed node", i)
		}
	}
}

func TestRingAddRemoveIdempotent(t *testing.T) {
	r := NewRing(2, 4)
	r.Add("a:1")
	r.Add("a:1")
	if got := len(r.points); got != 4 {
		t.Fatalf("double add left %d points, want 4", got)
	}
	r.Remove("missing:1")
	r.Remove("a:1")
	r.Remove("a:1")
	if r.Len() != 0 || len(r.points) != 0 {
		t.Fatalf("ring not empty after removal: %d nodes, %d points", r.Len(), len(r.points))
	}
}

func TestRingKeyPointUsesContentKeyPrefix(t *testing.T) {
	k := testKey(7)
	if got, want := keyPoint(k), binary.LittleEndian.Uint64(k[:8]); got != want {
		t.Fatalf("keyPoint = %#x, want %#x", got, want)
	}
}

func TestRingOwns(t *testing.T) {
	r := NewRing(2, 8)
	r.Add("a:1")
	r.Add("b:1")
	r.Add("c:1")
	k := testKey(42)
	owners := r.Owners(k)
	for _, n := range []string{"a:1", "b:1", "c:1"} {
		if got, want := r.Owns(k, n), contains(owners, n); got != want {
			t.Errorf("Owns(%s) = %v, want %v", n, got, want)
		}
	}
}
