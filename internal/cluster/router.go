package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/etcmat"
	"repro/internal/wire"
)

// ForwardedHeader carries the forward hop count of a peer-forwarded request.
// A client-origin request has no header (hop 0); each forward sets it to the
// incoming count plus one. A node holding a request at MaxForwardHops always
// serves locally — whatever its ring view says — so a replica read may legally
// take one extra hop under a stale membership view, but divergent views can
// never form a forwarding cycle. The first hop's value "1" keeps the header
// compatible with the boolean form older nodes set.
const ForwardedHeader = "X-HC-Forwarded"

// MaxForwardHops caps the forward chain length. Two hops cover the worst
// legal case: a non-owner forwards to a replica whose own (staler) view names
// a third node; that node serves locally no matter what it believes.
const MaxForwardHops = 2

// RouteHintHeader opts a request out of replica spreading: the value
// RoutePrimary makes Forward target the key's owners strictly in ring
// preference order (hedging and failover still apply). The load generator
// uses it to measure single-owner routing against the p2c default.
const RouteHintHeader = "X-HC-Route"

// RoutePrimary is the RouteHintHeader value selecting strict ring order.
const RoutePrimary = "primary"

// ParseHops reads a ForwardedHeader value: empty means hop 0, a decimal is
// taken as-is, and any other non-empty value (the legacy boolean "1" form
// predates the count, but be liberal) counts as one hop.
func ParseHops(v string) int {
	if v == "" {
		return 0
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 1 {
		return 1
	}
	return n
}

// Config shapes a cluster node. Zero values select the documented defaults.
type Config struct {
	// Self is this node's advertised host:port. It may be left empty when the
	// listen address is dynamic (":0"); the server then calls SetSelf with the
	// bound address before Start.
	Self string
	// Peers seeds the membership: any one live address is enough, the rest of
	// the cluster arrives by gossip.
	Peers []string
	// Replicas is the replication factor R (default 2): every content key has
	// R owner nodes, the hedge targets the second.
	Replicas int
	// VirtualNodes is the per-node point count on the ring (default 64).
	VirtualNodes int
	// HedgeDelayMin/Max clamp the p99-derived hedge delay (defaults 2ms and
	// 250ms). Before any forward latency is observed the delay is Max —
	// hedging starts conservative and tightens as the tracker fills.
	HedgeDelayMin time.Duration
	HedgeDelayMax time.Duration
	// SuspectAfter and DeadAfter are the suspicion timeouts: a peer silent
	// past SuspectAfter (default 2s) turns suspect, past DeadAfter (default
	// 6s) it is dead and leaves the ring until it answers again.
	SuspectAfter time.Duration
	DeadAfter    time.Duration
	// GossipInterval paces the membership loop (default 500ms).
	GossipInterval time.Duration
	// ProbeTimeout bounds one gossip probe (default 1s).
	ProbeTimeout time.Duration
	// MaxPeerInflight bounds concurrent forwards per peer (default 32); at
	// the limit further forwards wait in a queue of at most MaxPeerQueue
	// (default 64) before the router answers ErrPeerBusy and the server
	// sheds the request to local compute.
	MaxPeerInflight int
	MaxPeerQueue    int
	// HandoffBudget caps the cache entries streamed to a peer on one ring
	// change (default 256). Zero keeps the default; negative disables
	// handoff entirely.
	HandoffBudget int
	// Client issues peer requests (default: a dedicated transport with a
	// deep idle pool, since forwards reuse a small set of hosts heavily).
	Client *http.Client
	// Logger receives membership transitions (default slog.Default()).
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Replicas <= 0 {
		c.Replicas = DefaultReplicas
	}
	if c.VirtualNodes <= 0 {
		c.VirtualNodes = DefaultVirtualNodes
	}
	if c.HedgeDelayMin <= 0 {
		c.HedgeDelayMin = 2 * time.Millisecond
	}
	if c.HedgeDelayMax <= 0 {
		c.HedgeDelayMax = 250 * time.Millisecond
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 2 * time.Second
	}
	if c.DeadAfter <= 0 {
		c.DeadAfter = 6 * time.Second
	}
	if c.GossipInterval <= 0 {
		c.GossipInterval = 500 * time.Millisecond
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = time.Second
	}
	if c.MaxPeerInflight <= 0 {
		c.MaxPeerInflight = 32
	}
	if c.MaxPeerQueue <= 0 {
		c.MaxPeerQueue = 64
	}
	if c.HandoffBudget == 0 {
		c.HandoffBudget = DefaultHandoffBudget
	}
	if c.Client == nil {
		tr := http.DefaultTransport.(*http.Transport).Clone()
		tr.MaxIdleConnsPerHost = 64
		// The gates above are the real bound; this is the belt-and-braces
		// floor so a bug in gate accounting cannot open unbounded fan-in.
		tr.MaxConnsPerHost = c.MaxPeerInflight + 4
		c.Client = &http.Client{Transport: tr}
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	return c
}

// Counter is the metric hook the router increments; the server passes its
// registry's counters in. The interface keeps this package free of the
// serving tier (which imports it).
type Counter interface{ Inc() }

type noopCounter struct{}

func (noopCounter) Inc() {}

// Stats are the router-side metric hooks (all optional; nil stays no-op).
// The requester-side forwarded/peer-fill accounting lives in the server,
// which observes forward outcomes.
type Stats struct {
	ForwardErrors Counter // failed forward attempts (per attempt, not per request)
	Hedges        Counter // hedge requests fired after the delay elapsed
	HedgeWins     Counter // hedged requests that beat the primary
	ReplicaReads  Counter // forwards answered by a replica other than the ring-order primary
	PeerQueueFull Counter // forward attempts shed because a peer's send queue was full
	HandoffSent   Counter // cache entries streamed out on ring changes
}

func (s Stats) withDefaults() Stats {
	if s.ForwardErrors == nil {
		s.ForwardErrors = noopCounter{}
	}
	if s.Hedges == nil {
		s.Hedges = noopCounter{}
	}
	if s.HedgeWins == nil {
		s.HedgeWins = noopCounter{}
	}
	if s.ReplicaReads == nil {
		s.ReplicaReads = noopCounter{}
	}
	if s.PeerQueueFull == nil {
		s.PeerQueueFull = noopCounter{}
	}
	if s.HandoffSent == nil {
		s.HandoffSent = noopCounter{}
	}
	return s
}

// ErrNoPeers reports that a key has no live replica other than this node;
// the caller computes locally.
var ErrNoPeers = errors.New("cluster: no live replica to forward to")

// Router is the cluster brain of one node: the ring, the membership view and
// the peer-forwarding client. The server asks it whether a key is owned
// locally and, if not, forwards through it.
type Router struct {
	cfg     Config
	ring    *Ring
	members *membership
	lat     *latencyTracker
	peers   *peerTable
	handoff *handoffManager
	stats   Stats
	log     *slog.Logger

	mu   sync.Mutex
	self string
}

// NewRouter builds a node router. When cfg.Self is empty, SetSelf must run
// before Start.
func NewRouter(cfg Config) *Router {
	cfg = cfg.withDefaults()
	rt := &Router{
		cfg:   cfg,
		ring:  NewRing(cfg.Replicas, cfg.VirtualNodes),
		lat:   newLatencyTracker(),
		peers: newPeerTable(cfg.MaxPeerInflight, cfg.MaxPeerQueue),
		stats: Stats{}.withDefaults(),
		log:   cfg.Logger,
	}
	rt.handoff = newHandoffManager(rt)
	if cfg.Self != "" {
		rt.SetSelf(cfg.Self)
	}
	return rt
}

// SetStats installs the metric hooks (call before Start).
func (rt *Router) SetStats(s Stats) { rt.stats = s.withDefaults() }

// SetHandoffSource installs the cache exporter the handoff manager drains
// when the ring changes (call before Start; nil disables handoff).
func (rt *Router) SetHandoffSource(src HandoffSource) { rt.handoff.setSource(src) }

// PeerInflight reports forwards currently on the wire across all peers — the
// peer_inflight gauge.
func (rt *Router) PeerInflight() int { return rt.peers.inflightTotal() }

// SetSelf fixes this node's advertised address — needed when the server
// binds ":0" and only learns its address at listen time. It must run before
// Start and before any Forward.
func (rt *Router) SetSelf(addr string) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.members != nil {
		if rt.self == addr {
			return
		}
		rt.ring.Remove(rt.self)
	}
	rt.self = addr
	rt.members = newMembership(addr, rt.ring, rt.cfg.SuspectAfter, rt.cfg.DeadAfter)
	rt.members.onRingChange = rt.handoff.ringChanged
	for _, p := range rt.cfg.Peers {
		rt.members.add(p)
	}
}

// Self returns the advertised address ("" before SetSelf).
func (rt *Router) Self() string {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.self
}

// Ring exposes the placement ring (for tests and client-side routing).
func (rt *Router) Ring() *Ring { return rt.ring }

// Client exposes the peer HTTP client, shared with the server's cluster
// metrics scrape so peer connections pool in one place.
func (rt *Router) Client() *http.Client { return rt.cfg.Client }

// Peers returns the current membership view, self included.
func (rt *Router) Peers() []PeerInfo { return rt.members.snapshot() }

// AlivePeerAddrs returns the addresses of peers currently observed alive
// (self excluded) — the metrics aggregation fan-out set.
func (rt *Router) AlivePeerAddrs() []string {
	var out []string
	for _, p := range rt.members.snapshot() {
		if p.Addr != rt.Self() && p.State == StateAlive {
			out = append(out, p.Addr)
		}
	}
	return out
}

// AliveCount reports the number of live peers (self excluded).
func (rt *Router) AliveCount() int { return rt.members.aliveCount() }

// Join records a joining node and returns the membership snapshot the joiner
// bootstraps from (the /v1/cluster/join handler).
func (rt *Router) Join(addr string) []PeerInfo {
	rt.members.add(addr)
	rt.members.observeSuccess(addr) // it just spoke to us
	return rt.members.snapshot()
}

// LocallyOwned reports whether this node is in the key's replica set. An
// empty or single-node ring always owns locally.
func (rt *Router) LocallyOwned(key etcmat.ContentKey) bool {
	owners := rt.ring.Owners(key)
	return len(owners) == 0 || contains(owners, rt.Self())
}

// Owners returns the key's replica set in preference order.
func (rt *Router) Owners(key etcmat.ContentKey) []string { return rt.ring.Owners(key) }

// Start launches the membership loop — an initial join against the seed
// peers, then a gossip pull every GossipInterval until ctx is canceled — and
// the handoff worker that streams hot cache entries when the ring changes.
func (rt *Router) Start(ctx context.Context) {
	rt.handoff.start(ctx)
	go rt.run(ctx)
}

func (rt *Router) run(ctx context.Context) {
	rt.joinSeeds(ctx)
	t := time.NewTicker(rt.cfg.GossipInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			rt.gossipOnce(ctx)
		}
	}
}

// joinSeeds announces this node to every seed peer and merges their views.
func (rt *Router) joinSeeds(ctx context.Context) {
	body, _ := json.Marshal(map[string]string{"addr": rt.Self()})
	for _, seed := range rt.cfg.Peers {
		if seed == rt.Self() {
			continue
		}
		pctx, cancel := context.WithTimeout(ctx, rt.cfg.ProbeTimeout)
		req, err := http.NewRequestWithContext(pctx, http.MethodPost,
			"http://"+seed+"/v1/cluster/join", bytes.NewReader(body))
		if err != nil {
			cancel()
			continue
		}
		req.Header.Set("Content-Type", "application/json")
		infos, err := rt.doPeersRequest(req)
		cancel()
		if err != nil {
			rt.log.Warn("cluster join failed", "seed", seed, "err", err)
			rt.members.observeFailure(seed)
			continue
		}
		rt.members.observeSuccess(seed)
		rt.members.merge(infos)
	}
}

// gossipOnce pulls every known peer's view once, in parallel, applying
// health observations as probes succeed or fail.
func (rt *Router) gossipOnce(ctx context.Context) {
	var wg sync.WaitGroup
	for _, addr := range rt.members.addrs() {
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, rt.cfg.ProbeTimeout)
			defer cancel()
			req, err := http.NewRequestWithContext(pctx, http.MethodGet,
				"http://"+addr+"/v1/cluster/peers", nil)
			if err != nil {
				return
			}
			infos, err := rt.doPeersRequest(req)
			if err != nil {
				before := rt.members.state(addr)
				rt.members.observeFailure(addr)
				if after := rt.members.state(addr); after != before {
					rt.log.Warn("peer state changed", "peer", addr, "from", before, "to", after)
				}
				return
			}
			before := rt.members.state(addr)
			rt.members.observeSuccess(addr)
			if before != StateAlive {
				rt.log.Info("peer recovered", "peer", addr, "from", before)
			}
			rt.members.merge(infos)
		}(addr)
	}
	wg.Wait()
}

// doPeersRequest executes a join/peers request and decodes the membership
// payload both endpoints answer with.
func (rt *Router) doPeersRequest(req *http.Request) ([]PeerInfo, error) {
	resp, err := rt.cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	var out struct {
		Peers []PeerInfo `json:"peers"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&out); err != nil {
		return nil, err
	}
	return out.Peers, nil
}

// forwardTargets is the ordered peer list for a key: its owners, self
// excluded, alive before suspect (dead nodes are already off the ring).
// primaryOnly keeps strict ring preference order; otherwise the alive prefix
// is reordered by power-of-two-choices over per-peer latency scores, so reads
// spread across the replica set and a peer with an inflated tail loses the
// coin flip instead of gating every request for its key range.
func (rt *Router) forwardTargets(key etcmat.ContentKey, primaryOnly bool) []string {
	owners := rt.ring.Owners(key)
	self := rt.Self()
	targets := make([]string, 0, len(owners))
	for _, o := range owners {
		if o != self {
			targets = append(targets, o)
		}
	}
	sort.SliceStable(targets, func(i, j int) bool {
		return rt.members.state(targets[i]) == StateAlive && rt.members.state(targets[j]) != StateAlive
	})
	if primaryOnly {
		return targets
	}
	alive := 0
	for alive < len(targets) && rt.members.state(targets[alive]) == StateAlive {
		alive++
	}
	if alive >= 2 {
		// p2c: sample two live replicas, lead with the lower-scored one.
		// Ties (both unsampled) fall to a fair coin so fresh peers share
		// the probing load.
		i, j := rt.peers.pick2(alive)
		si, sj := rt.peers.latency(targets[i]).score(), rt.peers.latency(targets[j]).score()
		lead := i
		if sj < si || (sj == si && rt.peers.coin()) {
			lead = j
		}
		targets[0], targets[lead] = targets[lead], targets[0]
	}
	return targets
}

// HedgeDelay returns the current hedge trigger delay: the p99 of recent
// successful forwards, clamped to [HedgeDelayMin, HedgeDelayMax]. With no
// samples yet it is the max — hedging starts conservative.
func (rt *Router) HedgeDelay() time.Duration {
	d, ok := rt.lat.p99()
	if !ok {
		return rt.cfg.HedgeDelayMax
	}
	if d < rt.cfg.HedgeDelayMin {
		d = rt.cfg.HedgeDelayMin
	}
	if d > rt.cfg.HedgeDelayMax {
		d = rt.cfg.HedgeDelayMax
	}
	return d
}

// ForwardOpts tune one Forward call.
type ForwardOpts struct {
	// Hops is the incoming request's forward hop count (0 for client-origin
	// requests); the outgoing header carries Hops+1.
	Hops int
	// PrimaryOnly disables the p2c replica spread and targets the owners in
	// strict ring preference order.
	PrimaryOnly bool
}

// Forward sends the env-frame body to one of the key's live owners — chosen
// by power-of-two-choices over per-peer latency unless opts.PrimaryOnly —
// and returns the decoded profile. After the hedge delay it duplicates the
// request to the next replica and takes whichever answers first, canceling
// the loser; a failed attempt fails over to the next target immediately. A
// peer whose bounded send queue is full is skipped without a health penalty;
// when every target is saturated the error wraps ErrPeerBusy and the caller
// sheds to local compute. The second return reports whether the winning peer
// served from its cache. ErrNoPeers means the key has no live replica beyond
// this node.
func (rt *Router) Forward(ctx context.Context, key etcmat.ContentKey, body []byte, requestID string, opts ForwardOpts) (*core.Profile, bool, error) {
	targets := rt.forwardTargets(key, opts.PrimaryOnly)
	if len(targets) == 0 {
		return nil, false, ErrNoPeers
	}
	primary := rt.ringPrimary(key)
	cctx, cancel := context.WithCancel(ctx)
	defer cancel() // cancels the losing attempt the moment a winner returns
	type result struct {
		p      *core.Profile
		cached bool
		peer   string
		hedged bool
		err    error
	}
	ch := make(chan result, len(targets))
	outstanding, next := 0, 0
	fire := func(hedged bool) {
		peer := targets[next]
		next++
		outstanding++
		go func() {
			p, cached, err := rt.forwardOne(cctx, peer, body, requestID, opts.Hops+1)
			ch <- result{p, cached, peer, hedged, err}
		}()
	}
	fire(false)
	timer := time.NewTimer(rt.HedgeDelay())
	defer timer.Stop()
	var firstErr error
	for {
		select {
		case r := <-ch:
			outstanding--
			if r.err == nil {
				rt.members.observeSuccess(r.peer)
				if r.hedged {
					rt.stats.HedgeWins.Inc()
				}
				if r.peer != primary {
					rt.stats.ReplicaReads.Inc()
				}
				return r.p, r.cached, nil
			}
			if errors.Is(r.err, ErrPeerBusy) {
				// Local-side shed, not a peer fault: no health penalty,
				// no forward-error count (peer_queue_full_total already
				// ticked at the gate).
			} else {
				rt.stats.ForwardErrors.Inc()
				rt.members.observeFailure(r.peer)
			}
			if firstErr == nil {
				firstErr = r.err
			}
			switch {
			case next < len(targets):
				fire(false) // failover: the previous attempt already ended
			case outstanding == 0:
				return nil, false, firstErr
			}
		case <-timer.C:
			if next < len(targets) {
				rt.stats.Hedges.Inc()
				fire(true)
			}
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
}

// ringPrimary is the key's first owner other than self in ring preference
// order — the node every forward would target without replica spreading.
func (rt *Router) ringPrimary(key etcmat.ContentKey) string {
	self := rt.Self()
	for _, o := range rt.ring.Owners(key) {
		if o != self {
			return o
		}
	}
	return ""
}

// forwardOne sends one peer request: the env frame as a characterize body,
// asking for the binary profile frame back, carrying the hop count so the
// peer knows how much forwarding budget remains. The attempt first claims a
// slot in the peer's bounded gate — ErrPeerBusy when both the slots and the
// wait queue are full. Successful round trips feed the global hedge-delay
// tracker and the peer's own replica-choice score.
func (rt *Router) forwardOne(ctx context.Context, peer string, body []byte, requestID string, hops int) (*core.Profile, bool, error) {
	release, err := rt.peers.gate(peer).acquire(ctx.Done())
	if err != nil {
		if errors.Is(err, ErrPeerBusy) {
			rt.stats.PeerQueueFull.Inc()
			return nil, false, fmt.Errorf("peer %s: %w", peer, ErrPeerBusy)
		}
		return nil, false, err
	}
	defer release()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		"http://"+peer+"/v1/characterize", bytes.NewReader(body))
	if err != nil {
		return nil, false, err
	}
	req.Header.Set("Content-Type", wire.ContentTypeMatrix)
	req.Header.Set("Accept", wire.ContentTypeProfile)
	req.Header.Set(ForwardedHeader, strconv.Itoa(hops))
	if requestID != "" {
		req.Header.Set("X-Request-ID", requestID)
	}
	t0 := time.Now()
	resp, err := rt.cfg.Client.Do(req)
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		return nil, false, fmt.Errorf("peer %s: status %d: %.200s", peer, resp.StatusCode, msg)
	}
	if ct := resp.Header.Get("Content-Type"); ct != wire.ContentTypeProfile {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
		return nil, false, fmt.Errorf("peer %s: unexpected content type %q", peer, ct)
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, false, err
	}
	wp, _, err := wire.DecodeProfile(raw)
	if err != nil {
		return nil, false, fmt.Errorf("peer %s: %w", peer, err)
	}
	rtt := time.Since(t0)
	rt.lat.record(rtt)
	rt.peers.latency(peer).record(rtt)
	return ProfileFromWire(wp), wp.Cached, nil
}

// errPeerTMA stands in for the origin's TMA error, whose message does not
// cross the profile frame (the frame carries only a validity bit).
var errPeerTMA = errors.New("environment does not standardize (reported by forwarding peer)")

// ProfileFromWire rebuilds a core.Profile from its wire form — shared by the
// forward response path and the handoff import path in the server.
func ProfileFromWire(wp *wire.Profile) *core.Profile {
	p := &core.Profile{
		Tasks:              wp.Tasks,
		Machines:           wp.Machines,
		MPH:                wp.MPH,
		TDH:                wp.TDH,
		TMA:                wp.TMA,
		RatioR:             wp.RatioR,
		GeoMeanG:           wp.GeoMeanG,
		COV:                wp.COV,
		MachinePerf:        wp.MachinePerf,
		TaskDiff:           wp.TaskDiff,
		SinkhornIterations: wp.SinkhornIterations,
		Trimmed:            wp.Trimmed,
	}
	if !wp.TMAValid {
		p.TMA = math.NaN()
		p.TMAErr = errPeerTMA
	}
	return p
}

// latencyTracker keeps a fixed window of recent forward round-trip times for
// the p99-derived hedge delay. 256 samples is enough for a stable tail read
// and cheap enough to sort on every delay computation.
type latencyTracker struct {
	mu      sync.Mutex
	samples [256]time.Duration
	n       int // filled entries
	idx     int // next write position
}

func newLatencyTracker() *latencyTracker { return &latencyTracker{} }

func (t *latencyTracker) record(d time.Duration) {
	t.mu.Lock()
	t.samples[t.idx] = d
	t.idx = (t.idx + 1) % len(t.samples)
	if t.n < len(t.samples) {
		t.n++
	}
	t.mu.Unlock()
}

func (t *latencyTracker) p99() (time.Duration, bool) {
	t.mu.Lock()
	if t.n == 0 {
		t.mu.Unlock()
		return 0, false
	}
	buf := make([]time.Duration, t.n)
	copy(buf, t.samples[:t.n])
	t.mu.Unlock()
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	return buf[(len(buf)-1)*99/100], true
}
