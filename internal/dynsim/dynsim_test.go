package dynsim

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/etcmat"
)

func twoMachineEnv() *etcmat.Env {
	// Task type 0: 2s on m1, 10s on m2. Task type 1: 10s on m1, 2s on m2.
	return etcmat.MustFromETC([][]float64{
		{2, 10},
		{10, 2},
	})
}

func TestWorkloadValidate(t *testing.T) {
	env := twoMachineEnv()
	good := Workload{{0, 0}, {1, 1}}
	if err := good.Validate(env); err != nil {
		t.Errorf("valid workload rejected: %v", err)
	}
	cases := map[string]Workload{
		"out of order":  {{2, 0}, {1, 0}},
		"negative time": {{-1, 0}},
		"bad task type": {{0, 7}},
		"NaN time":      {{math.NaN(), 0}},
	}
	for name, w := range cases {
		if err := w.Validate(env); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestPoissonWorkloadStatistics(t *testing.T) {
	env := twoMachineEnv()
	rng := rand.New(rand.NewSource(130))
	const (
		n    = 20000
		rate = 4.0
	)
	w, err := PoissonWorkload(env, n, rate, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(w) != n {
		t.Fatalf("got %d arrivals", len(w))
	}
	if err := w.Validate(env); err != nil {
		t.Fatal(err)
	}
	// Mean inter-arrival approx 1/rate.
	meanGap := w[n-1].Time / float64(n)
	if math.Abs(meanGap-1/rate) > 0.02/rate {
		t.Errorf("mean inter-arrival = %g, want about %g", meanGap, 1/rate)
	}
	// Unweighted environment: both task types near 50%.
	count := 0
	for _, a := range w {
		count += a.TaskType
	}
	frac := float64(count) / n
	if math.Abs(frac-0.5) > 0.02 {
		t.Errorf("task type 1 fraction = %g, want about 0.5", frac)
	}
}

func TestPoissonWorkloadRespectsWeights(t *testing.T) {
	env := twoMachineEnv()
	env, err := env.WithWeights([]float64{3, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	w, err := PoissonWorkload(env, 20000, 1, rand.New(rand.NewSource(131)))
	if err != nil {
		t.Fatal(err)
	}
	count0 := 0
	for _, a := range w {
		if a.TaskType == 0 {
			count0++
		}
	}
	frac := float64(count0) / float64(len(w))
	if math.Abs(frac-0.75) > 0.02 {
		t.Errorf("task type 0 fraction = %g, want about 0.75 (weight 3:1)", frac)
	}
}

func TestPoissonWorkloadValidation(t *testing.T) {
	env := twoMachineEnv()
	rng := rand.New(rand.NewSource(132))
	if _, err := PoissonWorkload(env, 0, 1, rng); err == nil {
		t.Error("zero count accepted")
	}
	if _, err := PoissonWorkload(env, 5, 0, rng); err == nil {
		t.Error("zero rate accepted")
	}
}

// Hand-computed trace: two specialized tasks arriving together route to
// their fast machines under MCT; response times are the raw ETCs.
func TestSimulateMCTHandTrace(t *testing.T) {
	env := twoMachineEnv()
	w := Workload{{0, 0}, {0, 1}}
	res, err := Simulate(env, w, MCT{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Assignments[0] != 0 || res.Assignments[1] != 1 {
		t.Errorf("assignments = %v, want [0 1]", res.Assignments)
	}
	if res.Makespan != 2 {
		t.Errorf("makespan = %g, want 2", res.Makespan)
	}
	if res.MeanResponse != 2 {
		t.Errorf("mean response = %g, want 2", res.MeanResponse)
	}
	if res.MeanQueueWait != 0 {
		t.Errorf("mean wait = %g, want 0", res.MeanQueueWait)
	}
}

// Queueing trace: two type-0 tasks at t=0. MCT sends the second to the slow
// machine (completion 10 < queued 2+2=4? no: queued completion is 4 < 10, so
// both to m1; second waits 2).
func TestSimulateMCTQueues(t *testing.T) {
	env := twoMachineEnv()
	w := Workload{{0, 0}, {0, 0}}
	res, err := Simulate(env, w, MCT{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Assignments[0] != 0 || res.Assignments[1] != 0 {
		t.Errorf("assignments = %v, want both on m1 (4 < 10)", res.Assignments)
	}
	if res.Makespan != 4 {
		t.Errorf("makespan = %g, want 4", res.Makespan)
	}
	if res.MeanQueueWait != 1 {
		t.Errorf("mean wait = %g, want 1 (0 and 2)", res.MeanQueueWait)
	}
	if res.MaxResponse != 4 {
		t.Errorf("max response = %g, want 4", res.MaxResponse)
	}
}

// OLB starts the second task on the idle slow machine instead.
func TestSimulateOLBPrefersIdleMachine(t *testing.T) {
	env := twoMachineEnv()
	w := Workload{{0, 0}, {0, 0}}
	res, err := Simulate(env, w, OLB{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Assignments[1] != 1 {
		t.Errorf("OLB second assignment = %d, want the idle machine 1", res.Assignments[1])
	}
	if res.Makespan != 10 {
		t.Errorf("makespan = %g, want 10", res.Makespan)
	}
}

func TestSimulateRespectsInfEntries(t *testing.T) {
	// Task type 0 can only run on machine 0 (type 1 keeps machine 1 valid).
	env := etcmat.MustFromETC([][]float64{
		{2, math.Inf(1)},
		{3, 3},
	})
	w := Workload{{0, 0}, {1, 0}, {2, 0}}
	for _, p := range Policies() {
		res, err := Simulate(env, w, p, rand.New(rand.NewSource(1)))
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		for i, j := range res.Assignments {
			if j != 0 {
				t.Errorf("%s: arrival %d routed to impossible machine %d", p.Name(), i, j)
			}
		}
	}
}

func TestSimulateUtilizationBounds(t *testing.T) {
	env := twoMachineEnv()
	rng := rand.New(rand.NewSource(133))
	w, err := PoissonWorkload(env, 500, 0.8, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range Policies() {
		res, err := Simulate(env, w, p, rng)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if res.Completed != 500 {
			t.Fatalf("%s: completed %d", p.Name(), res.Completed)
		}
		for j, u := range res.Utilization {
			if u < 0 || u > 1+1e-12 {
				t.Errorf("%s: utilization[%d] = %g outside [0,1]", p.Name(), j, u)
			}
		}
		if res.MeanResponse <= 0 || res.MaxResponse < res.MeanResponse {
			t.Errorf("%s: response stats inconsistent: mean %g max %g", p.Name(), res.MeanResponse, res.MaxResponse)
		}
		if res.MeanQueueWait < 0 {
			t.Errorf("%s: negative wait %g", p.Name(), res.MeanQueueWait)
		}
	}
}

// Under light load every response approaches the raw execution time; under
// heavy load queueing dominates — the basic sanity law of the simulator.
func TestSimulateLoadScaling(t *testing.T) {
	env := twoMachineEnv()
	rng := rand.New(rand.NewSource(134))
	light, err := PoissonWorkload(env, 400, 0.05, rng)
	if err != nil {
		t.Fatal(err)
	}
	heavy, err := PoissonWorkload(env, 400, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	lr, err := Simulate(env, light, MCT{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := Simulate(env, heavy, MCT{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if lr.MeanResponse > 3 {
		t.Errorf("light-load mean response %g, want near the 2s execution time", lr.MeanResponse)
	}
	if hr.MeanResponse < 5*lr.MeanResponse {
		t.Errorf("heavy load (%g) should dwarf light load (%g)", hr.MeanResponse, lr.MeanResponse)
	}
}

// The heuristic-selection story in dynamic form (paper's application):
// in a fully specialized (high-TMA) environment, MET's fastest-machine rule
// is the ideal partition and beats or matches greedy MCT under load; in a
// no-affinity environment where one machine dominates, MET herd-crashes onto
// it and MCT wins decisively.
func TestAffinityDecidesMETvsMCT(t *testing.T) {
	rng := rand.New(rand.NewSource(135))

	specialized := twoMachineEnv() // TMA-heavy: disjoint preferences
	w1, err := PoissonWorkload(specialized, 1000, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	mct1, err := Simulate(specialized, w1, MCT{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	met1, err := Simulate(specialized, w1, MET{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if met1.MeanResponse > mct1.MeanResponse*1.05 {
		t.Errorf("specialized env: MET (%g) should match/beat MCT (%g)", met1.MeanResponse, mct1.MeanResponse)
	}

	// No affinity: machine 1 is uniformly 20%% faster -> MET uses only it.
	dominated := etcmat.MustFromETC([][]float64{
		{2, 2.4},
		{3, 3.6},
	})
	w2, err := PoissonWorkload(dominated, 1000, 0.7, rng)
	if err != nil {
		t.Fatal(err)
	}
	mct2, err := Simulate(dominated, w2, MCT{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	met2, err := Simulate(dominated, w2, MET{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if met2.MeanResponse < 2*mct2.MeanResponse {
		t.Errorf("dominated env: MET (%g) should collapse vs MCT (%g)", met2.MeanResponse, mct2.MeanResponse)
	}
	// MET leaves machine 2 idle.
	if met2.Utilization[1] != 0 {
		t.Errorf("MET used the slower machine: utilization %v", met2.Utilization)
	}
}

func TestSimulateEmptyWorkload(t *testing.T) {
	if _, err := Simulate(twoMachineEnv(), nil, MCT{}, nil); err == nil {
		t.Error("empty workload accepted")
	}
}

func TestKPBPickSubset(t *testing.T) {
	// 4 machines; task is fastest on 3 and 1. KPB(50%) considers only those
	// two; with machine 3 heavily queued it picks machine 1.
	etcRow := []float64{5, 2, 6, 1}
	startAt := []float64{0, 0, 0, 100}
	j := (KPB{Percent: 50}).Pick(etcRow, startAt, nil)
	if j != 1 {
		t.Errorf("KPB picked %d, want 1", j)
	}
}

func TestRandomPolicyDeterministicWithoutRNG(t *testing.T) {
	j := (Random{}).Pick([]float64{math.Inf(1), 3, 4}, []float64{0, 0, 0}, nil)
	if j != 1 {
		t.Errorf("Random without rng picked %d, want first runnable (1)", j)
	}
}

func TestPoliciesSuite(t *testing.T) {
	if len(Policies()) < 5 {
		t.Errorf("policy suite too small: %d", len(Policies()))
	}
}
