package dynsim

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/etcmat"
)

func TestSimulateBatchValidation(t *testing.T) {
	env := twoMachineEnv()
	if _, err := SimulateBatch(env, nil, 1, nil); err == nil {
		t.Error("empty workload accepted")
	}
	if _, err := SimulateBatch(env, Workload{{0, 0}}, 0, nil); err == nil {
		t.Error("zero interval accepted")
	}
	if _, err := SimulateBatch(env, Workload{{0, 9}}, 1, nil); err == nil {
		t.Error("invalid task type accepted")
	}
}

// Hand trace: two specialized tasks arriving together are mapped at one
// event straight to their fast machines.
func TestSimulateBatchHandTrace(t *testing.T) {
	env := twoMachineEnv()
	w := Workload{{0, 0}, {0, 1}}
	res, err := SimulateBatch(env, w, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Assignments[0] != 0 || res.Assignments[1] != 1 {
		t.Errorf("assignments = %v, want [0 1]", res.Assignments)
	}
	if res.Makespan != 2 || res.MeanResponse != 2 {
		t.Errorf("makespan %g response %g, want 2 and 2", res.Makespan, res.MeanResponse)
	}
	if res.MappingEvents != 1 {
		t.Errorf("mapping events = %d, want 1", res.MappingEvents)
	}
	if res.Completed != 2 {
		t.Errorf("completed = %d", res.Completed)
	}
}

// Pooling effect: two type-0 tasks at t=0 under batch Min-Min go one per
// machine only if that lowers completion — here queueing on the fast machine
// (4) beats the slow machine (10), matching immediate MCT.
func TestSimulateBatchPoolsMinMin(t *testing.T) {
	env := twoMachineEnv()
	res, err := SimulateBatch(env, Workload{{0, 0}, {0, 0}}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 4 {
		t.Errorf("makespan = %g, want 4", res.Makespan)
	}
}

// The batch advantage: a task mapped but not yet started can be re-mapped
// when a better later arrival changes the picture. Construct: at t=0 task A
// (type 0: fast on m1) and task B (type 0) arrive; B is queued behind A on
// m1. At t=1 (next event), before B starts (A runs till 2), a type-1 task C
// arrives that wants m2; B may be reconsidered. The key observable is
// correctness: nothing runs on an impossible machine and every response is
// consistent.
func TestSimulateBatchRemapping(t *testing.T) {
	env := etcmat.MustFromETC([][]float64{
		{4, 12},
		{12, 4},
	})
	w := Workload{{0, 0}, {0, 0}, {0.5, 1}, {0.5, 1}}
	res, err := SimulateBatch(env, w, 0.5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 4 {
		t.Fatalf("completed %d", res.Completed)
	}
	if res.MappingEvents < 2 {
		t.Errorf("expected at least 2 mapping events, got %d", res.MappingEvents)
	}
	// Consistency: recompute machine busy time from assignments.
	etc := env.ETC()
	busy := make([]float64, 2)
	for i, j := range res.Assignments {
		busy[j] += etc.At(w[i].TaskType, j)
	}
	for j := range busy {
		if math.Abs(busy[j]-res.Utilization[j]*res.Makespan) > 1e-9 {
			t.Errorf("machine %d busy time inconsistent", j)
		}
	}
}

// The classic crossover: under heavy load, batch-mode Min-Min must not lose
// badly to immediate MCT, and should typically win (better placement of the
// pooled backlog).
func TestBatchBeatsImmediateUnderHeavyLoad(t *testing.T) {
	env := etcmat.MustFromETC([][]float64{
		{2, 7, 9},
		{8, 3, 7},
		{9, 8, 2},
		{5, 5, 5},
	})
	rng := rand.New(rand.NewSource(180))
	w, err := PoissonWorkload(env, 600, 1.2, rng)
	if err != nil {
		t.Fatal(err)
	}
	imm, err := Simulate(env, w, MCT{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := SimulateBatch(env, w, 2.0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if batch.MeanResponse > imm.MeanResponse*1.1 {
		t.Errorf("batch (%g) lost badly to immediate MCT (%g) under heavy load",
			batch.MeanResponse, imm.MeanResponse)
	}
}

// Under light load, immediate mode's zero mapping latency wins or ties:
// batch adds at most one interval of delay.
func TestBatchLatencyUnderLightLoad(t *testing.T) {
	env := twoMachineEnv()
	rng := rand.New(rand.NewSource(181))
	w, err := PoissonWorkload(env, 200, 0.02, rng)
	if err != nil {
		t.Fatal(err)
	}
	imm, err := Simulate(env, w, MCT{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := SimulateBatch(env, w, 5.0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if batch.MeanResponse < imm.MeanResponse-1e-9 {
		t.Errorf("batch (%g) should not beat immediate (%g) when queues are empty",
			batch.MeanResponse, imm.MeanResponse)
	}
	// And the penalty is bounded by the mapping interval.
	if batch.MeanResponse > imm.MeanResponse+5.0 {
		t.Errorf("batch latency penalty too large: %g vs %g", batch.MeanResponse, imm.MeanResponse)
	}
}

func TestBatchRespectsInfEntries(t *testing.T) {
	env := etcmat.MustFromETC([][]float64{
		{2, math.Inf(1)},
		{3, 3},
	})
	w := Workload{{0, 0}, {0, 1}, {1, 0}}
	res, err := SimulateBatch(env, w, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, j := range res.Assignments {
		if w[i].TaskType == 0 && j != 0 {
			t.Errorf("arrival %d (type 0) routed to impossible machine %d", i, j)
		}
	}
}
