package dynsim

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/etcmat"
)

// Batch-mode dynamic mapping (Maheswaran et al.'s taxonomy, which the
// reproduced paper's heuristic-selection application draws on): instead of
// committing each task the instant it arrives, arrivals pool until a
// *mapping event*, at which point every task that has not yet started is
// (re-)mapped as a batch with a Min-Min style rule. Batch mode trades
// mapping latency for better placement and famously overtakes immediate
// mode as load grows.

// BatchResult extends Result with batch-mode diagnostics.
type BatchResult struct {
	Result
	// MappingEvents is how many batch mappings were performed.
	MappingEvents int
	// Remapped counts task-instances that were assigned at more than one
	// mapping event (their machine could change before starting).
	Remapped int
}

// SimulateBatch runs the workload in batch mode with mapping events every
// interval time units (first event at the first arrival). At each event,
// tasks that have arrived but not yet started execution are mapped by
// Min-Min over predicted machine completion times; tasks already running are
// never migrated. Between events machines execute their committed queues in
// the mapped order.
func SimulateBatch(env *etcmat.Env, w Workload, interval float64, rng interface{ Intn(int) int }) (*BatchResult, error) {
	if len(w) == 0 {
		return nil, errors.New("dynsim: empty workload")
	}
	if interval <= 0 {
		return nil, fmt.Errorf("dynsim: mapping interval must be positive, got %g", interval)
	}
	if err := w.Validate(env); err != nil {
		return nil, err
	}
	_ = rng // batch Min-Min is deterministic; parameter kept for symmetry

	etc := env.ETC()
	m := env.Machines()
	type task struct {
		arrival  float64
		taskType int
		machine  int     // current assignment, -1 if unmapped
		start    float64 // execution start, NaN until started
		finish   float64
		assigned int // number of mapping events that assigned it
	}
	tasks := make([]task, len(w))
	for i, a := range w {
		tasks[i] = task{arrival: a.Time, taskType: a.TaskType, machine: -1, start: math.NaN()}
	}

	// freeAt is when each machine finishes its *started* work; committed
	// holds the per-machine queue of mapped-but-unstarted task indices in
	// execution order.
	freeAt := make([]float64, m)
	busy := make([]float64, m)
	res := &BatchResult{}
	res.Assignments = make([]int, len(w))

	// advance executes committed queues up to time t: any queued task whose
	// machine becomes free before t starts (and possibly finishes later).
	// Started tasks are removed from the committed queues.
	committed := make([][]int, m)
	advance := func(t float64) {
		for j := 0; j < m; j++ {
			queue := committed[j]
			k := 0
			for ; k < len(queue); k++ {
				ti := queue[k]
				start := math.Max(freeAt[j], tasks[ti].arrival)
				if start >= t {
					break
				}
				dur := etc.At(tasks[ti].taskType, j)
				tasks[ti].start = start
				tasks[ti].finish = start + dur
				freeAt[j] = tasks[ti].finish
				busy[j] += dur
			}
			committed[j] = queue[k:]
		}
	}

	// Mapping events from the first arrival until all tasks have started.
	eventTime := w[0].Time
	for {
		advance(eventTime)
		// Pool: arrived, not started.
		var pool []int
		for i := range tasks {
			if tasks[i].arrival <= eventTime && math.IsNaN(tasks[i].start) {
				pool = append(pool, i)
			}
		}
		if len(pool) > 0 {
			res.MappingEvents++
			// Clear previous tentative assignments of pooled tasks.
			for j := 0; j < m; j++ {
				committed[j] = committed[j][:0]
			}
			// Min-Min over the pool against current freeAt.
			ready := append([]float64(nil), freeAt...)
			for j := range ready {
				ready[j] = math.Max(ready[j], eventTime)
			}
			remaining := append([]int(nil), pool...)
			for len(remaining) > 0 {
				bestK, bestJ, bestCT := -1, -1, math.Inf(1)
				for k, ti := range remaining {
					for j := 0; j < m; j++ {
						d := etc.At(tasks[ti].taskType, j)
						if math.IsInf(d, 1) {
							continue
						}
						if ct := ready[j] + d; ct < bestCT {
							bestK, bestJ, bestCT = k, j, ct
						}
					}
				}
				if bestK < 0 {
					return nil, errors.New("dynsim: pooled task cannot run on any machine")
				}
				ti := remaining[bestK]
				if tasks[ti].assigned > 0 && tasks[ti].machine != bestJ {
					res.Remapped++
				}
				tasks[ti].assigned++
				tasks[ti].machine = bestJ
				ready[bestJ] = bestCT
				committed[bestJ] = append(committed[bestJ], ti)
				remaining[bestK] = remaining[len(remaining)-1]
				remaining = remaining[:len(remaining)-1]
			}
		}
		// Done when every task has started or is scheduled and no arrivals
		// remain after this event.
		allStartedOrCommitted := true
		for i := range tasks {
			if math.IsNaN(tasks[i].start) && tasks[i].arrival > eventTime {
				allStartedOrCommitted = false
				break
			}
		}
		if allStartedOrCommitted {
			break
		}
		eventTime += interval
	}
	// Drain the final committed queues.
	advance(math.Inf(1))

	// Aggregate.
	var sumResp, sumWait float64
	for i := range tasks {
		if math.IsNaN(tasks[i].start) {
			return nil, fmt.Errorf("dynsim: task %d never started", i)
		}
		res.Assignments[i] = tasks[i].machine
		resp := tasks[i].finish - tasks[i].arrival
		sumResp += resp
		sumWait += tasks[i].start - tasks[i].arrival
		if resp > res.MaxResponse {
			res.MaxResponse = resp
		}
		if tasks[i].finish > res.Makespan {
			res.Makespan = tasks[i].finish
		}
	}
	res.Policy = fmt.Sprintf("Batch(Min-Min, %.3g)", interval)
	res.Completed = len(w)
	res.MeanResponse = sumResp / float64(len(w))
	res.MeanQueueWait = sumWait / float64(len(w))
	res.Utilization = busy
	for j := range res.Utilization {
		res.Utilization[j] /= res.Makespan
	}
	return res, nil
}
