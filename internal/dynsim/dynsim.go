// Package dynsim is a discrete-event simulator for *dynamic* (online)
// task mapping in heterogeneous computing environments — the setting of the
// immediate-mode heuristics in the HC literature the reproduced paper builds
// on (its refs [5], [18]: tasks arrive over time and must be mapped as they
// arrive, machines process their queues in FIFO order).
//
// Together with internal/sched (static batch mapping) it completes the
// substrate for the paper's "select heuristics by heterogeneity"
// application: the same environment measures (MPH, TDH, TMA) predict which
// online policy behaves well under load.
package dynsim

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/etcmat"
	"repro/internal/matrix"
)

// Arrival is one task instance arriving at Time, executing as task type
// TaskType of the environment.
type Arrival struct {
	Time     float64
	TaskType int
}

// Workload is a time-ordered arrival sequence.
type Workload []Arrival

// Validate checks ordering and task-type bounds against an environment.
func (w Workload) Validate(env *etcmat.Env) error {
	prev := math.Inf(-1)
	for i, a := range w {
		if a.Time < prev {
			return fmt.Errorf("dynsim: arrivals out of order at index %d", i)
		}
		if a.Time < 0 || math.IsNaN(a.Time) || math.IsInf(a.Time, 0) {
			return fmt.Errorf("dynsim: invalid arrival time %g at index %d", a.Time, i)
		}
		if a.TaskType < 0 || a.TaskType >= env.Tasks() {
			return fmt.Errorf("dynsim: task type %d out of range at index %d", a.TaskType, i)
		}
		prev = a.Time
	}
	return nil
}

// PoissonWorkload draws n arrivals with exponential inter-arrival times at
// the given rate (arrivals per unit time); task types are drawn
// proportionally to the environment's task weighting factors — the paper's
// "number of times that a task type is executed" interpretation (Sec. II-C).
func PoissonWorkload(env *etcmat.Env, n int, rate float64, rng *rand.Rand) (Workload, error) {
	if n <= 0 {
		return nil, errors.New("dynsim: need a positive arrival count")
	}
	if rate <= 0 {
		return nil, fmt.Errorf("dynsim: rate must be positive, got %g", rate)
	}
	weights := env.TaskWeights()
	total := matrix.VecSum(weights)
	w := make(Workload, n)
	now := 0.0
	for i := range w {
		now += rng.ExpFloat64() / rate
		// Weighted task-type draw.
		u := rng.Float64() * total
		tt := 0
		for u > weights[tt] && tt < len(weights)-1 {
			u -= weights[tt]
			tt++
		}
		w[i] = Arrival{Time: now, TaskType: tt}
	}
	return w, nil
}

// Policy is an immediate-mode mapping rule: on each arrival it sees the task
// type's ETC row and when each machine would start the task (the maximum of
// now and the machine's queue drain time), and picks a machine. +Inf ETC
// entries mark machines the task cannot run on; the policy must avoid them.
type Policy interface {
	Name() string
	// Pick returns the chosen machine index.
	Pick(etcRow []float64, startAt []float64, rng *rand.Rand) int
}

// MCT maps each arrival to the machine with the minimum completion time —
// the standard immediate-mode baseline.
type MCT struct{}

// Name implements Policy.
func (MCT) Name() string { return "MCT" }

// Pick implements Policy.
func (MCT) Pick(etcRow, startAt []float64, _ *rand.Rand) int {
	best, bestCT := -1, math.Inf(1)
	for j, t := range etcRow {
		if math.IsInf(t, 1) {
			continue
		}
		if ct := startAt[j] + t; ct < bestCT {
			best, bestCT = j, ct
		}
	}
	return best
}

// MET maps each arrival to its fastest machine regardless of queue length.
type MET struct{}

// Name implements Policy.
func (MET) Name() string { return "MET" }

// Pick implements Policy.
func (MET) Pick(etcRow, _ []float64, _ *rand.Rand) int {
	best := -1
	for j, t := range etcRow {
		if math.IsInf(t, 1) {
			continue
		}
		if best == -1 || t < etcRow[best] {
			best = j
		}
	}
	return best
}

// OLB maps each arrival to the machine that can start it soonest.
type OLB struct{}

// Name implements Policy.
func (OLB) Name() string { return "OLB" }

// Pick implements Policy.
func (OLB) Pick(etcRow, startAt []float64, _ *rand.Rand) int {
	best := -1
	for j, t := range etcRow {
		if math.IsInf(t, 1) {
			continue
		}
		if best == -1 || startAt[j] < startAt[best] {
			best = j
		}
	}
	return best
}

// KPB restricts each arrival to its k-percent fastest machines and applies
// MCT among them.
type KPB struct{ Percent float64 }

// Name implements Policy.
func (k KPB) Name() string { return fmt.Sprintf("KPB(%g%%)", k.Percent) }

// Pick implements Policy.
func (k KPB) Pick(etcRow, startAt []float64, _ *rand.Rand) int {
	m := len(etcRow)
	order := make([]int, 0, m)
	for j, t := range etcRow {
		if !math.IsInf(t, 1) {
			order = append(order, j)
		}
	}
	if len(order) == 0 {
		return -1
	}
	sort.Slice(order, func(a, b int) bool { return etcRow[order[a]] < etcRow[order[b]] })
	sz := int(math.Round(float64(m) * k.Percent / 100))
	if sz < 1 {
		sz = 1
	}
	if sz > len(order) {
		sz = len(order)
	}
	best, bestCT := -1, math.Inf(1)
	for _, j := range order[:sz] {
		if ct := startAt[j] + etcRow[j]; ct < bestCT {
			best, bestCT = j, ct
		}
	}
	return best
}

// Random picks uniformly among runnable machines — the null policy.
type Random struct{}

// Name implements Policy.
func (Random) Name() string { return "Random" }

// Pick implements Policy.
func (Random) Pick(etcRow, _ []float64, rng *rand.Rand) int {
	var runnable []int
	for j, t := range etcRow {
		if !math.IsInf(t, 1) {
			runnable = append(runnable, j)
		}
	}
	if len(runnable) == 0 {
		return -1
	}
	if rng == nil {
		return runnable[0]
	}
	return runnable[rng.Intn(len(runnable))]
}

// Policies returns the immediate-mode policy suite.
func Policies() []Policy {
	return []Policy{MCT{}, MET{}, OLB{}, KPB{Percent: 20}, Random{}}
}

// Result aggregates a simulation run.
type Result struct {
	Policy string
	// Completed is the number of tasks executed (== len(workload)).
	Completed int
	// Makespan is the time the last task completes.
	Makespan float64
	// MeanResponse and MaxResponse are over completion − arrival times.
	MeanResponse, MaxResponse float64
	// MeanQueueWait is the mean of start − arrival times.
	MeanQueueWait float64
	// Utilization per machine: busy time / makespan.
	Utilization []float64
	// Assignments records the machine chosen per arrival.
	Assignments []int
}

// Simulate runs the workload through the policy on the environment. Machines
// execute their assigned tasks in arrival order (FIFO per machine).
func Simulate(env *etcmat.Env, w Workload, p Policy, rng *rand.Rand) (*Result, error) {
	if len(w) == 0 {
		return nil, errors.New("dynsim: empty workload")
	}
	if err := w.Validate(env); err != nil {
		return nil, err
	}
	etc := env.ETC()
	m := env.Machines()
	freeAt := make([]float64, m)  // queue drain time per machine
	busy := make([]float64, m)    // accumulated busy time
	startAt := make([]float64, m) // scratch: earliest start per machine
	res := &Result{Policy: p.Name(), Assignments: make([]int, len(w))}
	var sumResp, sumWait float64
	for i, a := range w {
		row := etc.Row(a.TaskType)
		for j := 0; j < m; j++ {
			startAt[j] = math.Max(a.Time, freeAt[j])
		}
		j := p.Pick(row, startAt, rng)
		if j < 0 || j >= m || math.IsInf(row[j], 1) {
			return nil, fmt.Errorf("dynsim: policy %s made invalid pick %d for task type %d", p.Name(), j, a.TaskType)
		}
		start := startAt[j]
		finish := start + row[j]
		freeAt[j] = finish
		busy[j] += row[j]
		sumWait += start - a.Time
		sumResp += finish - a.Time
		if r := finish - a.Time; r > res.MaxResponse {
			res.MaxResponse = r
		}
		if finish > res.Makespan {
			res.Makespan = finish
		}
		res.Assignments[i] = j
	}
	res.Completed = len(w)
	res.MeanResponse = sumResp / float64(len(w))
	res.MeanQueueWait = sumWait / float64(len(w))
	res.Utilization = busy
	for j := range res.Utilization {
		res.Utilization[j] /= res.Makespan
	}
	return res, nil
}
