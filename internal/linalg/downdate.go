package linalg

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/matrix"
)

// Incremental spectral downdating: the what-if APIs ask "what does the
// spectrum look like with task i (or machine j) removed?" for every i and j.
// Recomputing each answer from scratch is O(k³) per delta; at fleet scale
// that is t+m full spectral solves per what-if sweep. This file answers each
// delta in O(k²) instead.
//
// Removing row r from A changes the Gram matrix G = AᵀA by the rank-one
// downdate G' = G − r·rᵀ (and removing a column changes AAᵀ the same way).
// Given the full eigensystem G = Q·Λ·Qᵀ — computed once, O(k³), amortized
// over every subsequent delta — the downdated eigenvalues are those of
// Λ − z·zᵀ with z = Qᵀr, and those are the roots of the classic secular
// equation
//
//	f(λ) = 1 − Σⱼ zⱼ²/(λⱼ − λ) = 0,
//
// one root strictly interlaced below each eigenvalue (Golub, "Some Modified
// Matrix Eigenvalue Problems", SIAM Review 1973; the same machinery as
// Gu-Eisenstat divide-and-conquer). Each root is found by bisection on its
// bracketing interval — f is strictly decreasing there, so the solve is
// unconditionally safe — at O(k) per root, O(k²) per delta in total.
//
// The eigenvector basis makes this path fundamentally different from the
// values-only pipeline: it pays one vector-accumulating eigendecomposition
// up front (tred2+tql2 below, ~3-4× a values-only solve) to make every
// subsequent delta two orders of magnitude cheaper at k = 1000.

// Downdater answers row/column-removal spectra of a fixed matrix in O(k²)
// per query after a lazily-built O(k³) eigendecomposition per side: dropped
// rows are served from the eigensystem of AᵀA, dropped columns from AAᵀ.
//
// The Downdater keeps a reference to a — the caller must not mutate it while
// the Downdater is in use. A Downdater is not safe for concurrent use (it
// reuses internal scratch); build one per goroutine or guard it.
type Downdater struct {
	a        *matrix.Dense
	rowState *eigState // eigensystem of AᵀA (cols×cols) — serves DropRow
	colState *eigState // eigensystem of AAᵀ (rows×rows) — serves DropCol

	z, lam, scratch []float64 // per-query buffers, grown on demand
}

// eigState is one side's eigensystem: ascending eigenvalues of the Gram
// matrix and the matching eigenvectors stored transposed (row j of vecsT is
// the eigenvector of vals[j]) so the Qᵀr products stream row-major.
type eigState struct {
	vals  []float64
	vecsT *matrix.Dense
}

// NewDowndater wraps a for incremental row/column-removal spectra. The
// expensive eigendecompositions are built lazily on first DropRowValues /
// DropColValues, so wrapping is free for callers that end up querying only
// one side (or none).
func NewDowndater(a *matrix.Dense) *Downdater {
	return &Downdater{a: a}
}

// rowEig lazily builds the AᵀA-side eigensystem.
func (dd *Downdater) rowEig() *eigState {
	if dd.rowState == nil {
		dd.rowState = buildEigState(func() *matrix.Dense {
			g := matrix.New(dd.a.Cols(), dd.a.Cols())
			return matrix.AtAInto(g, dd.a)
		})
	}
	return dd.rowState
}

// colEig lazily builds the AAᵀ-side eigensystem.
func (dd *Downdater) colEig() *eigState {
	if dd.colState == nil {
		dd.colState = buildEigState(func() *matrix.Dense {
			g := matrix.New(dd.a.Rows(), dd.a.Rows())
			return matrix.AAtInto(g, dd.a)
		})
	}
	return dd.colState
}

// DropRowValues appends to dst the descending singular values of a with row
// i removed, computed by a rank-one secular downdate — O(k²) per call after
// the first. The values agree with a fresh SingularValues of the submatrix
// to roughly k·ε·σ₁ (both paths share the Gram noise floor and clamp).
func (dd *Downdater) DropRowValues(i int, dst []float64) []float64 {
	t, m := dd.a.Dims()
	if i < 0 || i >= t {
		panic(fmt.Sprintf("linalg: DropRowValues row %d out of range for %dx%d", i, t, m))
	}
	kg := minInt(t-1, m)
	if kg == 0 {
		return dst
	}
	st := dd.rowEig()
	row := dd.a.RawData()[i*m : (i+1)*m]
	z := growFloat(&dd.z, m)
	vt := st.vecsT.RawData()
	for j := 0; j < m; j++ {
		s := 0.0
		for k, v := range vt[j*m : (j+1)*m] {
			s += v * row[k]
		}
		z[j] = s
	}
	return dd.finishDrop(st, z, kg, dst)
}

// DropColValues appends to dst the descending singular values of a with
// column j removed; the mirror of DropRowValues on the AAᵀ side.
func (dd *Downdater) DropColValues(j int, dst []float64) []float64 {
	t, m := dd.a.Dims()
	if j < 0 || j >= m {
		panic(fmt.Sprintf("linalg: DropColValues column %d out of range for %dx%d", j, t, m))
	}
	kg := minInt(t, m-1)
	if kg == 0 {
		return dst
	}
	st := dd.colEig()
	col := growFloat(&dd.scratch, t)
	ad := dd.a.RawData()
	for i := 0; i < t; i++ {
		col[i] = ad[i*m+j]
	}
	z := growFloat(&dd.z, t)
	vt := st.vecsT.RawData()
	for q := 0; q < t; q++ {
		s := 0.0
		for k, v := range vt[q*t : (q+1)*t] {
			s += v * col[k]
		}
		z[q] = s
	}
	return dd.finishDrop(st, z, kg, dst)
}

// finishDrop runs the secular solve for Λ − z·zᵀ and converts the top kg
// eigenvalues (the reduced matrix's rank budget; the rest are roundoff-level
// zeros of the larger Gram) to descending singular values with the same
// noise-floor clamp as the main spectral pipeline.
func (dd *Downdater) finishDrop(st *eigState, z []float64, kg int, dst []float64) []float64 {
	lam := downdateEigs(st.vals, z, growFloat(&dd.lam, len(st.vals)))
	top := lam[len(lam)-kg:]
	lmax := top[kg-1]
	floor := float64(kg) * macheps * lmax
	for idx := kg - 1; idx >= 0; idx-- {
		v := top[idx]
		if v <= floor {
			v = 0
		}
		dst = append(dst, math.Sqrt(v))
	}
	return dst
}

// downdateEigs writes the ascending eigenvalues of diag(d) − z·zᵀ into dst
// (d ascending, len(dst) == len(d)) and returns dst. Components with
// negligible z — contributing less than roundoff to any eigenvalue — are
// deflated to their pole; each remaining eigenvalue is bisected inside its
// interlacing bracket.
func downdateEigs(d, z, dst []float64) []float64 {
	n := len(d)
	rho := 0.0
	for _, v := range z {
		rho += v * v
	}
	scale := rho + math.Max(math.Abs(d[0]), math.Abs(d[n-1]))
	defl := macheps * scale
	// Partition into active poles (z energy matters) and deflated
	// eigenvalues (carried over unchanged).
	dst = dst[:0]
	poles := make([]float64, 0, n)
	weights := make([]float64, 0, n)
	for i, v := range d {
		w := z[i] * z[i]
		if w <= defl {
			dst = append(dst, v)
			continue
		}
		poles = append(poles, v)
		weights = append(weights, w)
	}
	// Root j lives in (poles[j-1], poles[j]); the leftmost in
	// [poles[0]−ρ, poles[0]] — the downdate can lower the bottom eigenvalue
	// by at most the removed energy.
	for j := range poles {
		lo := poles[0] - rho
		if j > 0 {
			lo = poles[j-1]
		}
		dst = append(dst, secularRoot(poles, weights, lo, poles[j]))
	}
	sort.Float64s(dst)
	return dst
}

// secularRoot bisects f(λ) = 1 − Σ wⱼ/(pⱼ−λ) on (lo, hi), where f decreases
// from +∞ (or a nonnegative value at the leftmost bracket's open end) to −∞.
// Bisection is immune to the pole blowups that break Newton here, and 100
// halvings reach the bracket's ulp long before the iteration cap.
func secularRoot(poles, weights []float64, lo, hi float64) float64 {
	a, b := lo, hi
	for iter := 0; iter < 100; iter++ {
		mid := 0.5 * (a + b)
		if mid <= a || mid >= b {
			break
		}
		s := 1.0
		for j, p := range poles {
			s -= weights[j] / (p - mid)
		}
		if s > 0 {
			a = mid
		} else {
			b = mid
		}
	}
	return 0.5 * (a + b)
}

// buildEigState computes the full eigensystem of the symmetric matrix
// produced by gram (which is consumed). The QL path essentially never fails
// to converge; if it does, the Gram matrix is rebuilt and handed to the
// (slower, unconditionally convergent) Jacobi solver.
func buildEigState(gram func() *matrix.Dense) *eigState {
	g := gram()
	n := g.Rows()
	d := make([]float64, n)
	e := make([]float64, n)
	tred2Vectors(g.RawData(), n, d, e)
	if !tql2Vectors(d, e, g.RawData(), n) {
		vals, vecs := SymEigJacobi(gram())
		return finishEigState(vals, vecs)
	}
	return finishEigState(d, g)
}

// finishEigState sorts the eigenvalues ascending and lays the matching
// eigenvector columns of z down as rows of vecsT.
func finishEigState(vals []float64, z *matrix.Dense) *eigState {
	n := len(vals)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return vals[idx[a]] < vals[idx[b]] })
	st := &eigState{
		vals:  make([]float64, n),
		vecsT: matrix.New(n, n),
	}
	zd := z.RawData()
	vt := st.vecsT.RawData()
	for r, src := range idx {
		st.vals[r] = vals[src]
		for k := 0; k < n; k++ {
			vt[r*n+k] = zd[k*n+src]
		}
	}
	return st
}

// growFloat resizes *buf to length n, reallocating only on growth, and
// returns the resized slice.
func growFloat(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// tred2Vectors reduces the symmetric n×n row-major matrix z (overwritten) to
// tridiagonal form, like tridiagonalize, but additionally accumulates the
// Householder transformations: on return z holds the orthogonal matrix Q
// (eigenvector seed, columns) with Qᵀ·A·Q tridiagonal. Classic EISPACK
// tred2, vector-accumulating variant of spectral.go's values-only reduction.
func tred2Vectors(z []float64, n int, d, e []float64) {
	if n == 0 {
		return
	}
	for i := n - 1; i >= 1; i-- {
		l := i - 1
		h, scale := 0.0, 0.0
		if l > 0 {
			for _, v := range z[i*n : i*n+l+1] {
				scale += math.Abs(v)
			}
			if scale == 0 {
				e[i] = z[i*n+l]
			} else {
				inv := 1 / scale
				for k := 0; k <= l; k++ {
					z[i*n+k] *= inv
					h += z[i*n+k] * z[i*n+k]
				}
				f := z[i*n+l]
				g := math.Sqrt(h)
				if f >= 0 {
					g = -g
				}
				e[i] = scale * g
				h -= f * g
				z[i*n+l] = f - g
				f = 0.0
				for j := 0; j <= l; j++ {
					z[j*n+i] = z[i*n+j] / h
					g := 0.0
					for k := 0; k <= j; k++ {
						g += z[j*n+k] * z[i*n+k]
					}
					for k := j + 1; k <= l; k++ {
						g += z[k*n+j] * z[i*n+k]
					}
					e[j] = g / h
					f += e[j] * z[i*n+j]
				}
				hh := f / (h + h)
				for j := 0; j <= l; j++ {
					f := z[i*n+j]
					g := e[j] - hh*f
					e[j] = g
					for k := 0; k <= j; k++ {
						z[j*n+k] -= f*e[k] + g*z[i*n+k]
					}
				}
			}
		} else {
			e[i] = z[i*n+l]
		}
		d[i] = h
	}
	d[0] = 0
	e[0] = 0
	for i := 0; i < n; i++ {
		l := i - 1
		if d[i] != 0 {
			for j := 0; j <= l; j++ {
				g := 0.0
				for k := 0; k <= l; k++ {
					g += z[i*n+k] * z[k*n+j]
				}
				for k := 0; k <= l; k++ {
					z[k*n+j] -= g * z[k*n+i]
				}
			}
		}
		d[i] = z[i*n+i]
		z[i*n+i] = 1
		for j := 0; j <= l; j++ {
			z[j*n+i] = 0
			z[i*n+j] = 0
		}
	}
}

// tql2Vectors is tqlImplicitShift with eigenvector accumulation: every plane
// rotation of the QL sweep is applied to the columns of z (which enters as
// tred2Vectors' Q and leaves with column j holding the eigenvector of the
// unordered eigenvalue d[j]). Reports false if an eigenvalue exceeds the
// iteration budget.
func tql2Vectors(d, e []float64, z []float64, n int) bool {
	if n <= 1 {
		return true
	}
	for i := 1; i < n; i++ {
		e[i-1] = e[i]
	}
	e[n-1] = 0
	for l := 0; l < n; l++ {
		for iter := 0; ; iter++ {
			var m int
			for m = l; m < n-1; m++ {
				dd := math.Abs(d[m]) + math.Abs(d[m+1])
				if math.Abs(e[m]) <= macheps*dd {
					break
				}
			}
			if m == l {
				break
			}
			if iter == 50 {
				return false
			}
			g := (d[l+1] - d[l]) / (2 * e[l])
			r := pythag(g, 1)
			g = d[m] - d[l] + e[l]/(g+signOf(r, g))
			s, c, p := 1.0, 1.0, 0.0
			underflow := false
			for i := m - 1; i >= l; i-- {
				f := s * e[i]
				b := c * e[i]
				r = pythag(f, g)
				e[i+1] = r
				if r == 0 {
					d[i+1] -= p
					e[m] = 0
					underflow = true
					break
				}
				s = f / r
				c = g / r
				g = d[i+1] - p
				r = (d[i]-g)*s + 2*c*b
				p = s * r
				d[i+1] = g + p
				g = c*r - b
				for k := 0; k < n; k++ {
					f := z[k*n+i+1]
					z[k*n+i+1] = s*z[k*n+i] + c*f
					z[k*n+i] = c*z[k*n+i] - s*f
				}
			}
			if underflow {
				continue
			}
			d[l] -= p
			e[l] = g
			e[m] = 0
		}
	}
	return true
}
