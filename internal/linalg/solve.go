package linalg

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/matrix"
)

// ErrSingular is returned when a linear system has no unique solution.
var ErrSingular = errors.New("linalg: matrix is singular to working precision")

// LU holds an LU factorization with partial pivoting: P·A = L·U, stored
// compactly with the permutation as a row index vector.
type LU struct {
	lu   *matrix.Dense
	perm []int
	sign float64
}

// LUDecompose factors a square matrix with partial pivoting.
func LUDecompose(a *matrix.Dense) (*LU, error) {
	n, c := a.Dims()
	if n != c {
		return nil, fmt.Errorf("linalg: LU requires a square matrix, got %dx%d", n, c)
	}
	lu := a.Clone()
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	sign := 1.0
	for k := 0; k < n; k++ {
		// Pivot: largest magnitude in column k at/below the diagonal.
		p := k
		max := math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu.At(i, k)); v > max {
				p, max = i, v
			}
		}
		if max == 0 {
			return nil, ErrSingular
		}
		if p != k {
			for j := 0; j < n; j++ {
				tmp := lu.At(k, j)
				lu.Set(k, j, lu.At(p, j))
				lu.Set(p, j, tmp)
			}
			perm[k], perm[p] = perm[p], perm[k]
			sign = -sign
		}
		piv := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			f := lu.At(i, k) / piv
			lu.Set(i, k, f)
			for j := k + 1; j < n; j++ {
				lu.Set(i, j, lu.At(i, j)-f*lu.At(k, j))
			}
		}
	}
	return &LU{lu: lu, perm: perm, sign: sign}, nil
}

// Solve solves A·x = b for the factored A.
func (f *LU) Solve(b []float64) ([]float64, error) {
	n := f.lu.Rows()
	if len(b) != n {
		return nil, fmt.Errorf("linalg: LU.Solve length %d, want %d", len(b), n)
	}
	x := make([]float64, n)
	// Forward substitution with permutation (L has unit diagonal).
	for i := 0; i < n; i++ {
		s := b[f.perm[i]]
		for j := 0; j < i; j++ {
			s -= f.lu.At(i, j) * x[j]
		}
		x[i] = s
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= f.lu.At(i, j) * x[j]
		}
		d := f.lu.At(i, i)
		if d == 0 {
			return nil, ErrSingular
		}
		x[i] = s / d
	}
	return x, nil
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	d := f.sign
	for i := 0; i < f.lu.Rows(); i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// Solve solves the square system A·x = b.
func Solve(a *matrix.Dense, b []float64) ([]float64, error) {
	f, err := LUDecompose(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}

// LeastSquares solves min ‖A·x − b‖₂ for a full-column-rank A (m ≥ n) via
// the Householder QR factorization: x = R⁻¹ Qᵀ b.
func LeastSquares(a *matrix.Dense, b []float64) ([]float64, error) {
	m, n := a.Dims()
	if len(b) != m {
		return nil, fmt.Errorf("linalg: LeastSquares rhs length %d, want %d", len(b), m)
	}
	if m < n {
		return nil, fmt.Errorf("linalg: LeastSquares requires rows >= cols, got %dx%d", m, n)
	}
	q, r := QR(a)
	// qtb = Qᵀ b.
	qtb := make([]float64, n)
	for j := 0; j < n; j++ {
		s := 0.0
		for i := 0; i < m; i++ {
			s += q.At(i, j) * b[i]
		}
		qtb[j] = s
	}
	// Back substitution on R.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := qtb[i]
		for j := i + 1; j < n; j++ {
			s -= r.At(i, j) * x[j]
		}
		d := r.At(i, i)
		if math.Abs(d) < 1e-12*(1+r.MaxAbs()) {
			return nil, ErrSingular
		}
		x[i] = s / d
	}
	return x, nil
}
