package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/matrix"
)

func TestSolveKnownSystem(t *testing.T) {
	a := matrix.FromRows([][]float64{
		{2, 1, -1},
		{-3, -1, 2},
		{-2, 1, 2},
	})
	x, err := Solve(a, []float64{8, -11, -3})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	if !matrix.VecEqualTol(x, want, 1e-12) {
		t.Errorf("x = %v, want %v", x, want)
	}
}

func TestSolveRandomResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(110))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(10)
		a := randMat(rng, n, n)
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = rng.NormFloat64()
		}
		b := a.MulVec(xTrue)
		x, err := Solve(a, b)
		if err != nil {
			// Random Gaussian matrices are almost surely nonsingular.
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !matrix.VecEqualTol(x, xTrue, 1e-8*(1+matrix.Nrm2(xTrue))) {
			t.Fatalf("trial %d: x = %v, want %v", trial, x, xTrue)
		}
	}
}

func TestSolveSingular(t *testing.T) {
	a := matrix.FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Solve(a, []float64{1, 2}); !errors.Is(err, ErrSingular) {
		t.Errorf("err = %v, want ErrSingular", err)
	}
}

func TestSolveNonSquareRejected(t *testing.T) {
	if _, err := LUDecompose(matrix.New(2, 3)); err == nil {
		t.Error("non-square accepted")
	}
}

func TestSolveWrongRHSLength(t *testing.T) {
	f, err := LUDecompose(matrix.Identity(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Solve([]float64{1}); err == nil {
		t.Error("wrong-length rhs accepted")
	}
}

func TestLUDet(t *testing.T) {
	a := matrix.FromRows([][]float64{{3, 8}, {4, 6}})
	f, err := LUDecompose(a)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Det(); math.Abs(got-(-14)) > 1e-12 {
		t.Errorf("det = %g, want -14", got)
	}
	fi, _ := LUDecompose(matrix.Identity(4))
	if got := fi.Det(); got != 1 {
		t.Errorf("det(I) = %g", got)
	}
}

// LU determinant matches the product of singular values in magnitude.
func TestLUDetMatchesSVD(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	a := randMat(rng, 5, 5)
	f, err := LUDecompose(a)
	if err != nil {
		t.Fatal(err)
	}
	prod := 1.0
	for _, s := range SingularValues(a, nil) {
		prod *= s
	}
	if math.Abs(math.Abs(f.Det())-prod) > 1e-9*(1+prod) {
		t.Errorf("|det| = %g, prod sv = %g", math.Abs(f.Det()), prod)
	}
}

func TestLeastSquaresExact(t *testing.T) {
	// Overdetermined but consistent system.
	a := matrix.FromRows([][]float64{{1, 1}, {1, 2}, {1, 3}})
	b := []float64{3, 5, 7} // exactly x = (1, 2)
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.VecEqualTol(x, []float64{1, 2}, 1e-12) {
		t.Errorf("x = %v, want [1 2]", x)
	}
}

func TestLeastSquaresRegression(t *testing.T) {
	// Fit y = 2 + 3t to noisy data; check residual orthogonality Aᵀr = 0.
	rng := rand.New(rand.NewSource(112))
	m := 50
	a := matrix.New(m, 2)
	b := make([]float64, m)
	for i := 0; i < m; i++ {
		ti := float64(i) / 10
		a.Set(i, 0, 1)
		a.Set(i, 1, ti)
		b[i] = 2 + 3*ti + 0.1*rng.NormFloat64()
	}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-2) > 0.2 || math.Abs(x[1]-3) > 0.1 {
		t.Errorf("fit = %v, want approx [2 3]", x)
	}
	// Normal equations: Aᵀ(Ax − b) = 0.
	res := a.MulVec(x)
	for i := range res {
		res[i] -= b[i]
	}
	atr := a.T().MulVec(res)
	for j, v := range atr {
		if math.Abs(v) > 1e-8 {
			t.Errorf("residual not orthogonal to column %d: %g", j, v)
		}
	}
}

func TestLeastSquaresRankDeficient(t *testing.T) {
	a := matrix.FromRows([][]float64{{1, 2}, {2, 4}, {3, 6}})
	if _, err := LeastSquares(a, []float64{1, 2, 3}); !errors.Is(err, ErrSingular) {
		t.Errorf("err = %v, want ErrSingular", err)
	}
}

func TestLeastSquaresShapeErrors(t *testing.T) {
	a := matrix.New(2, 3)
	if _, err := LeastSquares(a, []float64{1, 2}); err == nil {
		t.Error("underdetermined system accepted")
	}
	if _, err := LeastSquares(matrix.Identity(2), []float64{1}); err == nil {
		t.Error("wrong rhs length accepted")
	}
}
