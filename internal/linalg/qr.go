// Package linalg implements the dense numerical linear algebra this
// repository needs, from scratch on top of internal/matrix: Householder QR,
// a Golub–Reinsch SVD, a one-sided Jacobi SVD used as an independent
// cross-check, a cyclic Jacobi symmetric eigensolver, and a values-only
// spectral fast path (Gram matrix + Householder tridiagonalization +
// implicit-shift QL) for consumers that need σ but not U/V.
//
// The task-machine affinity measure (TMA) of the reproduced paper is a
// function of the singular values of a standardized ECS matrix, so the SVD is
// the numerical heart of this repository. Factor-producing consumers use the
// Jacobi or Golub–Reinsch paths, which cross-check each other in tests;
// SingularValues takes the Gram fast path (see spectral.go) and uses the
// Jacobi SVD as its oracle and non-convergence fallback.
package linalg

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/matrix"
)

// QR computes a thin Householder QR factorization a = Q·R where a is m×n with
// m >= n, Q is m×n with orthonormal columns and R is n×n upper triangular.
func QR(a *matrix.Dense) (q, r *matrix.Dense) {
	m, n := a.Dims()
	if m < n {
		panic(fmt.Sprintf("linalg: QR requires rows >= cols, got %dx%d", m, n))
	}
	// Work on a copy; store Householder vectors in the lower triangle.
	work := a.Clone()
	betas := make([]float64, n)
	for k := 0; k < n; k++ {
		// Build the Householder vector for column k below the diagonal.
		norm := 0.0
		for i := k; i < m; i++ {
			norm = math.Hypot(norm, work.At(i, k))
		}
		if norm == 0 {
			betas[k] = 0
			continue
		}
		alpha := work.At(k, k)
		if alpha > 0 {
			norm = -norm
		}
		v0 := alpha - norm
		betas[k] = -v0 / norm // beta = v0 / (norm * -1) such that H = I - beta v v^T / v0^2-normalized form
		// Normalize so v[k] = 1.
		work.Set(k, k, norm)
		for i := k + 1; i < m; i++ {
			work.Set(i, k, work.At(i, k)/v0)
		}
		// Apply H to the trailing columns: A := (I - beta v v^T) A.
		for j := k + 1; j < n; j++ {
			s := work.At(k, j) // v[k] == 1
			for i := k + 1; i < m; i++ {
				s += work.At(i, k) * work.At(i, j)
			}
			s *= betas[k]
			work.Set(k, j, work.At(k, j)-s)
			for i := k + 1; i < m; i++ {
				work.Set(i, j, work.At(i, j)-s*work.At(i, k))
			}
		}
	}
	// Extract R.
	r = matrix.New(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			r.Set(i, j, work.At(i, j))
		}
	}
	// Form thin Q by applying the Householder reflectors to the first n
	// columns of the identity, in reverse order.
	q = matrix.New(m, n)
	for j := 0; j < n; j++ {
		q.Set(j, j, 1)
	}
	for k := n - 1; k >= 0; k-- {
		if betas[k] == 0 {
			continue
		}
		for j := 0; j < n; j++ {
			s := q.At(k, j)
			for i := k + 1; i < m; i++ {
				s += work.At(i, k) * q.At(i, j)
			}
			s *= betas[k]
			q.Set(k, j, q.At(k, j)-s)
			for i := k + 1; i < m; i++ {
				q.Set(i, j, q.At(i, j)-s*work.At(i, k))
			}
		}
	}
	return q, r
}

// RandomOrthogonal returns a Haar-ish random n×n orthogonal matrix, obtained
// as the Q factor of a Gaussian matrix with the sign convention fixed so the
// distribution does not collapse.
func RandomOrthogonal(n int, rng *rand.Rand) *matrix.Dense {
	g := matrix.New(n, n)
	for i := range g.RawData() {
		g.RawData()[i] = rng.NormFloat64()
	}
	q, r := QR(g)
	// Fix signs: multiply column j of Q by sign(R[j,j]).
	signs := make([]float64, n)
	for j := 0; j < n; j++ {
		if r.At(j, j) < 0 {
			signs[j] = -1
		} else {
			signs[j] = 1
		}
	}
	return q.ScaleCols(signs)
}
