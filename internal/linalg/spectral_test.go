package linalg

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/matrix"
)

// spectralAgrees checks the fast path against the Jacobi SVD oracle to an
// absolute 1e-10 on every singular value.
func spectralAgrees(t *testing.T, a *matrix.Dense, label string) {
	t.Helper()
	got := SingularValues(a, nil)
	want := SVDJacobi(a).S
	if len(got) != len(want) {
		t.Fatalf("%s: %d singular values, oracle has %d", label, len(got), len(want))
	}
	for i := range got {
		if math.IsNaN(got[i]) {
			t.Fatalf("%s: σ%d is NaN", label, i)
		}
		if math.Abs(got[i]-want[i]) > 1e-10 {
			t.Fatalf("%s: σ%d = %.15g, oracle %.15g (Δ %g)", label, i, got[i], want[i], got[i]-want[i])
		}
	}
}

// TestSpectralMatchesJacobi is the property test pinning the Gram +
// tridiagonal QL path to the Jacobi SVD within 1e-10 across tall, wide,
// square and rank-deficient shapes.
func TestSpectralMatchesJacobi(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 60; trial++ {
		r := 1 + rng.Intn(60)
		c := 1 + rng.Intn(40)
		a := matrix.New(r, c)
		for i := range a.RawData() {
			a.RawData()[i] = 2*rng.Float64() - 1
		}
		spectralAgrees(t, a, "random")
	}
	// Dedicated shape sweep, including the benchmark shape.
	for _, dims := range [][2]int{{60, 40}, {40, 60}, {48, 48}, {1, 12}, {12, 1}, {2, 2}} {
		a := randMat(rng, dims[0], dims[1]).Scale(0.5)
		spectralAgrees(t, a, "shape")
	}
}

// TestSpectralRankDeficient covers the degenerate spectra the satellite task
// names: rank-deficient Gram matrices must yield exact zeros, never NaN.
func TestSpectralRankDeficient(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	// Rank-1 outer products at several shapes (the rank-1 ECS matrix case).
	for _, dims := range [][2]int{{6, 4}, {4, 6}, {12, 12}, {60, 40}} {
		u := make([]float64, dims[0])
		v := make([]float64, dims[1])
		for i := range u {
			u[i] = 0.2 + rng.Float64()
		}
		for j := range v {
			v[j] = 0.2 + rng.Float64()
		}
		a := matrix.New(dims[0], dims[1])
		for i := range u {
			for j := range v {
				a.Set(i, j, u[i]*v[j])
			}
		}
		s := SingularValues(a, nil)
		want := matrix.Nrm2(u) * matrix.Nrm2(v)
		if math.Abs(s[0]-want) > 1e-10*(1+want) {
			t.Errorf("%v: σ1 = %g, want %g", dims, s[0], want)
		}
		for i, v := range s[1:] {
			if math.IsNaN(v) {
				t.Fatalf("%v: σ%d is NaN on rank-1 input", dims, i+2)
			}
			if v != 0 {
				t.Errorf("%v: σ%d = %g, want exact 0 (noise-floor clamp)", dims, i+2, v)
			}
		}
		spectralAgrees(t, a, "rank-1")
	}
	// Rank-2: two independent outer products.
	a := randMat(rng, 9, 2)
	b := randMat(rng, 2, 7)
	prod := matrix.Mul(a, b)
	s := SingularValues(prod, nil)
	for _, v := range s[2:] {
		if v != 0 || math.IsNaN(v) {
			t.Errorf("rank-2: trailing σ = %g, want 0", v)
		}
	}
	spectralAgrees(t, prod, "rank-2")
	// All-zero matrix.
	for _, v := range SingularValues(matrix.New(5, 3), nil) {
		if v != 0 {
			t.Errorf("zero matrix: σ = %g", v)
		}
	}
}

// TestSpectralNearZeroGram drives the near-zero Gram regime: entries so small
// the Gram matrix underflows toward the noise floor must still produce finite
// nonnegative values.
func TestSpectralNearZeroGram(t *testing.T) {
	a := matrix.Constant(8, 5, 1e-160)
	for _, v := range SingularValues(a, nil) {
		if math.IsNaN(v) || v < 0 {
			t.Fatalf("near-zero input produced σ = %g", v)
		}
	}
	// A duplicated-column matrix (exactly repeated spectra direction).
	dup := matrix.FromRows([][]float64{{1, 1, 2}, {3, 3, 1}, {2, 2, 5}, {4, 4, 0.5}})
	spectralAgrees(t, dup, "duplicated-columns")
}

// TestSpectralWorkspaceReuse runs many spectra of different shapes through
// one workspace and through the pool, checking results are independent of
// the scratch history.
func TestSpectralWorkspaceReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	ws := NewWorkspace()
	var buf []float64
	for trial := 0; trial < 40; trial++ {
		a := randMat(rng, 1+rng.Intn(20), 1+rng.Intn(20))
		buf = AppendSingularValues(buf[:0], a, ws)
		fresh := SVDJacobi(a).S
		if !matrix.VecEqualTol(buf, fresh, 1e-10) {
			t.Fatalf("trial %d: reused workspace gave %v, fresh oracle %v", trial, buf, fresh)
		}
	}
	// Pool round trip.
	pws := GetWorkspace()
	a := randMat(rng, 10, 6)
	s1 := SingularValues(a, pws)
	PutWorkspace(pws)
	s2 := SingularValues(a, nil)
	if !matrix.VecEqualTol(s1, s2, 0) {
		t.Errorf("pooled vs nil workspace disagree: %v vs %v", s1, s2)
	}
}

// TestAppendSingularValuesZeroAlloc pins the fast path's allocation contract:
// with a caller-held workspace and a reused destination slice, a warm call
// does not allocate.
func TestAppendSingularValuesZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	a := randMat(rng, 16, 8)
	ws := NewWorkspace()
	buf := make([]float64, 0, 8)
	buf = AppendSingularValues(buf, a, ws) // warm the buffers
	allocs := testing.AllocsPerRun(50, func() {
		buf = AppendSingularValues(buf[:0], a, ws)
	})
	if allocs != 0 {
		t.Errorf("warm AppendSingularValues allocates %g times per op, want 0", allocs)
	}
}

// FuzzSingularValues fuzzes matrix shape and content, asserting the spectral
// path agrees with the Jacobi oracle and never emits NaN or negatives.
func FuzzSingularValues(f *testing.F) {
	f.Add(int64(1), uint8(5), uint8(7), false)
	f.Add(int64(2), uint8(12), uint8(3), true)
	f.Add(int64(3), uint8(1), uint8(1), false)
	f.Add(int64(4), uint8(40), uint8(25), true)
	f.Fuzz(func(t *testing.T, seed int64, rdim, cdim uint8, rankDeficient bool) {
		r := 1 + int(rdim)%48
		c := 1 + int(cdim)%48
		rng := rand.New(rand.NewSource(seed))
		a := matrix.New(r, c)
		for i := range a.RawData() {
			a.RawData()[i] = 2*rng.Float64() - 1
		}
		if rankDeficient && r > 1 {
			// Make row r-1 a multiple of row 0.
			f := rng.Float64() * 2
			for j := 0; j < c; j++ {
				a.Set(r-1, j, f*a.At(0, j))
			}
		}
		got := SingularValues(a, nil)
		want := SVDJacobi(a).S
		for i := range got {
			if math.IsNaN(got[i]) || got[i] < 0 {
				t.Fatalf("σ%d = %g", i, got[i])
			}
			if math.Abs(got[i]-want[i]) > 1e-10 {
				t.Fatalf("σ%d = %.15g, oracle %.15g", i, got[i], want[i])
			}
		}
	})
}
