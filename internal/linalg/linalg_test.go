package linalg

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/matrix"
)

func randMat(rng *rand.Rand, r, c int) *matrix.Dense {
	m := matrix.New(r, c)
	for i := range m.RawData() {
		m.RawData()[i] = rng.NormFloat64()
	}
	return m
}

func isOrthonormalCols(t *testing.T, q *matrix.Dense, tol float64) {
	t.Helper()
	qtq := matrix.Mul(q.T(), q)
	n := q.Cols()
	if !matrix.EqualTol(qtq, matrix.Identity(n), tol) {
		t.Errorf("columns not orthonormal, QᵀQ deviates by %g", matrix.Sub(qtq, matrix.Identity(n)).MaxAbs())
	}
}

func TestQRReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, dims := range [][2]int{{3, 3}, {5, 3}, {8, 8}, {10, 4}, {1, 1}} {
		a := randMat(rng, dims[0], dims[1])
		q, r := QR(a)
		if !matrix.EqualTol(matrix.Mul(q, r), a, 1e-12) {
			t.Errorf("%dx%d: QR != A, diff %g", dims[0], dims[1], matrix.Sub(matrix.Mul(q, r), a).MaxAbs())
		}
		isOrthonormalCols(t, q, 1e-12)
		// R upper triangular.
		for i := 0; i < r.Rows(); i++ {
			for j := 0; j < i; j++ {
				if math.Abs(r.At(i, j)) > 1e-13 {
					t.Errorf("%dx%d: R[%d,%d] = %g not zero", dims[0], dims[1], i, j, r.At(i, j))
				}
			}
		}
	}
}

func TestQRWideMatrixPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("QR of wide matrix did not panic")
		}
	}()
	QR(matrix.New(2, 3))
}

func TestQRRankDeficient(t *testing.T) {
	// Column 2 = 2 * column 1.
	a := matrix.FromRows([][]float64{{1, 2}, {2, 4}, {3, 6}})
	q, r := QR(a)
	if !matrix.EqualTol(matrix.Mul(q, r), a, 1e-12) {
		t.Error("QR reconstruction failed for rank-deficient input")
	}
}

func TestRandomOrthogonal(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 2, 5, 12} {
		q := RandomOrthogonal(n, rng)
		isOrthonormalCols(t, q, 1e-12)
	}
}

func TestSVDJacobiKnown(t *testing.T) {
	// diag(3, 2) embedded in a rotationless matrix.
	a := matrix.FromRows([][]float64{{3, 0}, {0, 2}})
	f := SVDJacobi(a)
	if !matrix.VecEqualTol(f.S, []float64{3, 2}, 1e-12) {
		t.Errorf("S = %v, want [3 2]", f.S)
	}
}

func TestSVDJacobiRankOne(t *testing.T) {
	// Outer product: singular values {||u||·||v||, 0}.
	a := matrix.FromRows([][]float64{{1, 2}, {2, 4}, {3, 6}})
	f := SVDJacobi(a)
	want := matrix.Nrm2([]float64{1, 2, 3}) * matrix.Nrm2([]float64{1, 2})
	if math.Abs(f.S[0]-want) > 1e-12 {
		t.Errorf("σ1 = %g, want %g", f.S[0], want)
	}
	if f.S[1] > 1e-12 {
		t.Errorf("σ2 = %g, want 0", f.S[1])
	}
}

func TestSVDReconstructionBothAlgorithms(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, dims := range [][2]int{{4, 4}, {7, 3}, {3, 7}, {12, 5}, {5, 12}, {1, 4}, {4, 1}, {9, 9}} {
		a := randMat(rng, dims[0], dims[1])
		jac := SVDJacobi(a)
		if !matrix.EqualTol(jac.Reconstruct(), a, 1e-10) {
			t.Errorf("Jacobi %v: reconstruction off by %g", dims, matrix.Sub(jac.Reconstruct(), a).MaxAbs())
		}
		isOrthonormalCols(t, jac.U, 1e-10)
		isOrthonormalCols(t, jac.V, 1e-10)

		gr, err := SVDGolubReinsch(a)
		if err != nil {
			t.Fatalf("Golub-Reinsch %v: %v", dims, err)
		}
		if !matrix.EqualTol(gr.Reconstruct(), a, 1e-10) {
			t.Errorf("Golub-Reinsch %v: reconstruction off by %g", dims, matrix.Sub(gr.Reconstruct(), a).MaxAbs())
		}
		isOrthonormalCols(t, gr.U, 1e-10)
		isOrthonormalCols(t, gr.V, 1e-10)

		// The two algorithms must agree on the singular values.
		if !matrix.VecEqualTol(jac.S, gr.S, 1e-9*(1+jac.S[0])) {
			t.Errorf("%v: Jacobi %v vs Golub-Reinsch %v disagree", dims, jac.S, gr.S)
		}
	}
}

func TestSVDSingularValuesDescendingNonNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 40; trial++ {
		r := 1 + rng.Intn(10)
		c := 1 + rng.Intn(10)
		s := SingularValues(randMat(rng, r, c), nil)
		if len(s) != minInt(r, c) {
			t.Fatalf("got %d singular values for %dx%d", len(s), r, c)
		}
		for i, v := range s {
			if v < 0 {
				t.Fatalf("negative singular value %g", v)
			}
			if i > 0 && s[i-1] < v-1e-12 {
				t.Fatalf("singular values not descending: %v", s)
			}
		}
	}
}

// Property: singular values are invariant under orthogonal transformations.
func TestSVDOrthogonalInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	a := randMat(rng, 6, 4)
	q := RandomOrthogonal(6, rng)
	sA := SingularValues(a, nil)
	sQA := SingularValues(matrix.Mul(q, a), nil)
	if !matrix.VecEqualTol(sA, sQA, 1e-10) {
		t.Errorf("σ(QA) = %v != σ(A) = %v", sQA, sA)
	}
}

// Property: sum of squared singular values equals the squared Frobenius norm.
func TestSVDFrobeniusIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for trial := 0; trial < 20; trial++ {
		a := randMat(rng, 3+rng.Intn(6), 3+rng.Intn(6))
		s := SingularValues(a, nil)
		ss := 0.0
		for _, v := range s {
			ss += v * v
		}
		fro := a.NormFro()
		if math.Abs(ss-fro*fro) > 1e-9*(1+fro*fro) {
			t.Fatalf("Σσ² = %g != ‖A‖F² = %g", ss, fro*fro)
		}
	}
}

// Property: singular values of A are square roots of eigenvalues of AᵀA,
// cross-checking the SVDs against the symmetric eigensolver.
func TestSVDMatchesGramEigenvalues(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	a := randMat(rng, 8, 5)
	gram := matrix.Mul(a.T(), a)
	eigs, _ := SymEigJacobi(gram)
	s := SingularValues(a, nil)
	for i := range s {
		ev := eigs[i]
		if ev < 0 {
			ev = 0
		}
		if math.Abs(s[i]-math.Sqrt(ev)) > 1e-9*(1+s[0]) {
			t.Errorf("σ%d = %g, sqrt(λ%d) = %g", i, s[i], i, math.Sqrt(ev))
		}
	}
}

func TestSVDConstructedFromFactors(t *testing.T) {
	// Build A = U diag(s) Vᵀ with known spectrum and recover it.
	rng := rand.New(rand.NewSource(17))
	u := RandomOrthogonal(6, rng)
	v := RandomOrthogonal(6, rng)
	want := []float64{10, 5, 2, 1, 0.5, 0.1}
	a := matrix.Mul(u.Clone().ScaleCols(want), v.T())
	got := SingularValues(a, nil)
	if !matrix.VecEqualTol(got, want, 1e-9) {
		t.Errorf("recovered %v, want %v", got, want)
	}
}

func TestSVDZeroMatrix(t *testing.T) {
	s := SingularValues(matrix.New(3, 4), nil)
	for _, v := range s {
		if v != 0 {
			t.Errorf("zero matrix has singular value %g", v)
		}
	}
}

func TestSymEigJacobiKnown(t *testing.T) {
	// Eigenvalues of [[2,1],[1,2]] are 3 and 1.
	a := matrix.FromRows([][]float64{{2, 1}, {1, 2}})
	vals, vecs := SymEigJacobi(a)
	if !matrix.VecEqualTol(vals, []float64{3, 1}, 1e-12) {
		t.Errorf("eigenvalues = %v, want [3 1]", vals)
	}
	// A v = λ v for each pair.
	for j := 0; j < 2; j++ {
		v := vecs.Col(j)
		av := a.MulVec(v)
		for i := range av {
			if math.Abs(av[i]-vals[j]*v[i]) > 1e-12 {
				t.Errorf("Av != λv for eigenpair %d", j)
			}
		}
	}
}

func TestSymEigJacobiRandomSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	g := randMat(rng, 7, 7)
	a := matrix.Add(g, g.T()) // symmetric
	vals, vecs := SymEigJacobi(a)
	recon := matrix.Mul(vecs.Clone().ScaleCols(vals), vecs.T())
	if !matrix.EqualTol(recon, a, 1e-10) {
		t.Errorf("V Λ Vᵀ != A, diff %g", matrix.Sub(recon, a).MaxAbs())
	}
	isOrthonormalCols(t, vecs, 1e-11)
	// Trace equals eigenvalue sum.
	tr := 0.0
	for i := 0; i < 7; i++ {
		tr += a.At(i, i)
	}
	if math.Abs(tr-matrix.VecSum(vals)) > 1e-10 {
		t.Errorf("trace %g != Σλ %g", tr, matrix.VecSum(vals))
	}
}

func TestSymEigNonSquarePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("SymEigJacobi on non-square did not panic")
		}
	}()
	SymEigJacobi(matrix.New(2, 3))
}

func TestRank(t *testing.T) {
	full := matrix.FromRows([][]float64{{1, 0}, {0, 2}, {0, 0}})
	if got := Rank(full, 0); got != 2 {
		t.Errorf("Rank = %d, want 2", got)
	}
	r1 := matrix.FromRows([][]float64{{1, 2}, {2, 4}})
	if got := Rank(r1, 0); got != 1 {
		t.Errorf("rank-1 matrix: Rank = %d, want 1", got)
	}
	if got := Rank(matrix.New(3, 3), 0); got != 0 {
		t.Errorf("zero matrix: Rank = %d, want 0", got)
	}
}

func TestCond2AndNorm2(t *testing.T) {
	a := matrix.Diag([]float64{4, 2})
	if got := Cond2(a); math.Abs(got-2) > 1e-12 {
		t.Errorf("Cond2 = %g, want 2", got)
	}
	if got := Norm2(a); math.Abs(got-4) > 1e-12 {
		t.Errorf("Norm2 = %g, want 4", got)
	}
	if got := Cond2(matrix.FromRows([][]float64{{1, 1}, {1, 1}})); !math.IsInf(got, 1) {
		t.Errorf("Cond2 of singular matrix = %g, want +Inf", got)
	}
}

func TestPythag(t *testing.T) {
	if got := pythag(3, 4); math.Abs(got-5) > 1e-15 {
		t.Errorf("pythag(3,4) = %g", got)
	}
	if got := pythag(0, 0); got != 0 {
		t.Errorf("pythag(0,0) = %g", got)
	}
	big := math.MaxFloat64 / 2
	if got := pythag(big, big); math.IsInf(got, 0) {
		t.Error("pythag overflowed")
	}
}

func TestFactorsReconstructShape(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	a := randMat(rng, 3, 5)
	f := SVDJacobi(a)
	r, c := f.Reconstruct().Dims()
	if r != 3 || c != 5 {
		t.Errorf("Reconstruct dims = (%d,%d), want (3,5)", r, c)
	}
}
