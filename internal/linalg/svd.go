package linalg

import (
	"errors"
	"math"

	"repro/internal/matrix"
)

// ErrNoConvergence is returned by SVDGolubReinsch when the implicit-shift QR
// iteration on the bidiagonal form fails to converge within its iteration
// budget. Callers normally fall back to the Jacobi SVD.
var ErrNoConvergence = errors.New("linalg: SVD did not converge")

// SVDGolubReinsch computes the singular value decomposition of a via
// Householder bidiagonalization followed by implicit-shift QR iterations on
// the bidiagonal form (the classic Golub–Reinsch algorithm). Factors are
// sorted descending. For an m×n input with m < n the problem is transposed
// internally.
func SVDGolubReinsch(a *matrix.Dense) (*Factors, error) {
	m, n := a.Dims()
	if m < n {
		f, err := SVDGolubReinsch(a.T())
		if err != nil {
			return nil, err
		}
		return &Factors{U: f.V, S: f.S, V: f.U}, nil
	}
	u := a.Clone()
	w := make([]float64, n)
	v := matrix.New(n, n)
	if err := golubReinsch(u, w, v); err != nil {
		return nil, err
	}
	sortFactorsDescending(u, w, v)
	return &Factors{U: u, S: w, V: v}, nil
}

// Rank returns the number of singular values exceeding tol. A non-positive
// tol selects the conventional default max(m, n)·eps·σ₁.
func Rank(a *matrix.Dense, tol float64) int {
	s := SingularValues(a, nil)
	if len(s) == 0 {
		return 0
	}
	if tol <= 0 {
		m, n := a.Dims()
		tol = float64(max(m, n)) * 2.220446049250313e-16 * s[0]
	}
	r := 0
	for _, v := range s {
		if v > tol {
			r++
		}
	}
	return r
}

// Cond2 returns the 2-norm condition number σ₁/σₘᵢₙ, or +Inf for a singular
// matrix.
func Cond2(a *matrix.Dense) float64 {
	s := SingularValues(a, nil)
	if len(s) == 0 {
		return math.Inf(1)
	}
	smin := s[len(s)-1]
	if smin == 0 {
		return math.Inf(1)
	}
	return s[0] / smin
}

// Norm2 returns the spectral norm σ₁ of a.
func Norm2(a *matrix.Dense) float64 {
	s := SingularValues(a, nil)
	if len(s) == 0 {
		return 0
	}
	return s[0]
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// pythag computes sqrt(a²+b²) without destructive underflow or overflow.
func pythag(a, b float64) float64 {
	absa, absb := math.Abs(a), math.Abs(b)
	if absa > absb {
		r := absb / absa
		return absa * math.Sqrt(1+r*r)
	}
	if absb == 0 {
		return 0
	}
	r := absa / absb
	return absb * math.Sqrt(1+r*r)
}

func signOf(a, b float64) float64 {
	if b >= 0 {
		return math.Abs(a)
	}
	return -math.Abs(a)
}

// golubReinsch performs the in-place Golub–Reinsch SVD: on entry a holds the
// m×n matrix (m >= n); on exit a holds U (m×n), w the n singular values and v
// the n×n right singular vectors (unsorted, possibly unordered signs).
func golubReinsch(a *matrix.Dense, w []float64, v *matrix.Dense) error {
	m, n := a.Dims()
	const eps = 2.220446049250313e-16
	var (
		flag             bool
		i, its, j, jj, k int
		l, nm            int
		anorm, c, f, g   float64
		h, s, scale      float64
		x, y, z          float64
	)
	rv1 := make([]float64, n)

	// Householder reduction to bidiagonal form.
	g, scale, anorm = 0, 0, 0
	for i = 0; i < n; i++ {
		l = i + 2
		rv1[i] = scale * g
		g, s, scale = 0, 0, 0
		if i < m {
			for k = i; k < m; k++ {
				scale += math.Abs(a.At(k, i))
			}
			if scale != 0 {
				for k = i; k < m; k++ {
					a.Set(k, i, a.At(k, i)/scale)
					s += a.At(k, i) * a.At(k, i)
				}
				f = a.At(i, i)
				g = -signOf(math.Sqrt(s), f)
				h = f*g - s
				a.Set(i, i, f-g)
				for j = l - 1; j < n; j++ {
					s = 0
					for k = i; k < m; k++ {
						s += a.At(k, i) * a.At(k, j)
					}
					f = s / h
					for k = i; k < m; k++ {
						a.Set(k, j, a.At(k, j)+f*a.At(k, i))
					}
				}
				for k = i; k < m; k++ {
					a.Set(k, i, a.At(k, i)*scale)
				}
			}
		}
		w[i] = scale * g
		g, s, scale = 0, 0, 0
		if i+1 <= m && i+1 != n {
			for k = l - 1; k < n; k++ {
				scale += math.Abs(a.At(i, k))
			}
			if scale != 0 {
				for k = l - 1; k < n; k++ {
					a.Set(i, k, a.At(i, k)/scale)
					s += a.At(i, k) * a.At(i, k)
				}
				f = a.At(i, l-1)
				g = -signOf(math.Sqrt(s), f)
				h = f*g - s
				a.Set(i, l-1, f-g)
				for k = l - 1; k < n; k++ {
					rv1[k] = a.At(i, k) / h
				}
				for j = l - 1; j < m; j++ {
					s = 0
					for k = l - 1; k < n; k++ {
						s += a.At(j, k) * a.At(i, k)
					}
					for k = l - 1; k < n; k++ {
						a.Set(j, k, a.At(j, k)+s*rv1[k])
					}
				}
				for k = l - 1; k < n; k++ {
					a.Set(i, k, a.At(i, k)*scale)
				}
			}
		}
		anorm = math.Max(anorm, math.Abs(w[i])+math.Abs(rv1[i]))
	}

	// Accumulation of right-hand transformations.
	for i = n - 1; i >= 0; i-- {
		if i < n-1 {
			if g != 0 {
				for j = l; j < n; j++ {
					v.Set(j, i, (a.At(i, j)/a.At(i, l))/g)
				}
				for j = l; j < n; j++ {
					s = 0
					for k = l; k < n; k++ {
						s += a.At(i, k) * v.At(k, j)
					}
					for k = l; k < n; k++ {
						v.Set(k, j, v.At(k, j)+s*v.At(k, i))
					}
				}
			}
			for j = l; j < n; j++ {
				v.Set(i, j, 0)
				v.Set(j, i, 0)
			}
		}
		v.Set(i, i, 1)
		g = rv1[i]
		l = i
	}

	// Accumulation of left-hand transformations.
	for i = minInt(m, n) - 1; i >= 0; i-- {
		l = i + 1
		g = w[i]
		for j = l; j < n; j++ {
			a.Set(i, j, 0)
		}
		if g != 0 {
			g = 1 / g
			for j = l; j < n; j++ {
				s = 0
				for k = l; k < m; k++ {
					s += a.At(k, i) * a.At(k, j)
				}
				f = (s / a.At(i, i)) * g
				for k = i; k < m; k++ {
					a.Set(k, j, a.At(k, j)+f*a.At(k, i))
				}
			}
			for j = i; j < m; j++ {
				a.Set(j, i, a.At(j, i)*g)
			}
		} else {
			for j = i; j < m; j++ {
				a.Set(j, i, 0)
			}
		}
		a.Set(i, i, a.At(i, i)+1)
	}

	// Diagonalization of the bidiagonal form.
	for k = n - 1; k >= 0; k-- {
		for its = 0; its < 75; its++ {
			flag = true
			for l = k; l >= 0; l-- {
				nm = l - 1
				if l == 0 || math.Abs(rv1[l]) <= eps*anorm {
					flag = false
					break
				}
				if math.Abs(w[nm]) <= eps*anorm {
					break
				}
			}
			if flag {
				// Cancellation of rv1[l] when w[l-1] is negligible.
				c, s = 0, 1
				for i = l; i < k+1; i++ {
					f = s * rv1[i]
					rv1[i] = c * rv1[i]
					if math.Abs(f) <= eps*anorm {
						break
					}
					g = w[i]
					h = pythag(f, g)
					w[i] = h
					h = 1 / h
					c = g * h
					s = -f * h
					for j = 0; j < m; j++ {
						y = a.At(j, nm)
						z = a.At(j, i)
						a.Set(j, nm, y*c+z*s)
						a.Set(j, i, z*c-y*s)
					}
				}
			}
			z = w[k]
			if l == k {
				// Convergence; enforce non-negative singular value.
				if z < 0 {
					w[k] = -z
					for j = 0; j < n; j++ {
						v.Set(j, k, -v.At(j, k))
					}
				}
				break
			}
			if its == 74 {
				return ErrNoConvergence
			}
			// Shift from the bottom 2x2 minor.
			x = w[l]
			nm = k - 1
			y = w[nm]
			g = rv1[nm]
			h = rv1[k]
			f = ((y-z)*(y+z) + (g-h)*(g+h)) / (2 * h * y)
			g = pythag(f, 1)
			f = ((x-z)*(x+z) + h*((y/(f+signOf(g, f)))-h)) / x
			c, s = 1, 1
			// QR transformation.
			for j = l; j <= nm; j++ {
				i = j + 1
				g = rv1[i]
				y = w[i]
				h = s * g
				g = c * g
				z = pythag(f, h)
				rv1[j] = z
				c = f / z
				s = h / z
				f = x*c + g*s
				g = g*c - x*s
				h = y * s
				y *= c
				for jj = 0; jj < n; jj++ {
					x = v.At(jj, j)
					z = v.At(jj, i)
					v.Set(jj, j, x*c+z*s)
					v.Set(jj, i, z*c-x*s)
				}
				z = pythag(f, h)
				w[j] = z
				if z != 0 {
					z = 1 / z
					c = f * z
					s = h * z
				}
				f = c*g + s*y
				x = c*y - s*g
				for jj = 0; jj < m; jj++ {
					y = a.At(jj, j)
					z = a.At(jj, i)
					a.Set(jj, j, y*c+z*s)
					a.Set(jj, i, z*c-y*s)
				}
			}
			rv1[l] = 0
			rv1[k] = f
			w[k] = x
		}
	}
	return nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
