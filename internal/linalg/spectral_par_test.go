package linalg

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/matrix"
)

func randTest(rng *rand.Rand, r, c int) *matrix.Dense {
	m := matrix.New(r, c)
	d := m.RawData()
	for i := range d {
		d[i] = rng.NormFloat64()
	}
	return m
}

func floatsBitEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// SingularValuesPar promises the exact bits of the serial pipeline at every
// worker count. The shapes straddle spectralParMin: below it the parallel
// path must fall through to serial untouched; above it the fan-out must not
// move a single ulp.
func TestSingularValuesParBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	for _, dims := range [][2]int{{40, 60}, {100, 80}, {280, 300}, {300, 260}} {
		a := randTest(rng, dims[0], dims[1])
		want := AppendSingularValues(nil, a, NewWorkspace())
		for _, w := range []int{1, 2, 4, 8} {
			got := SingularValuesPar(a, NewWorkspace(), w)
			if !floatsBitEqual(got, want) {
				t.Errorf("%v workers=%d: parallel spectrum differs from serial", dims, w)
			}
		}
	}
}

// White-box check of the Householder stage on its own: the worker variant
// must produce the exact d/e recurrence of the serial reduction, including
// past the tridiagParMin crossover where late small panels run serially.
func TestTridiagonalizeWorkersBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for _, n := range []int{5, 64, 250} {
		a := randTest(rng, n+7, n)
		g := matrix.AtAInto(matrix.New(n, n), a)
		dWant := make([]float64, n)
		eWant := make([]float64, n)
		tridiagonalize(g.Clone(), dWant, eWant)
		for _, w := range []int{2, 4, 7} {
			d := make([]float64, n)
			e := make([]float64, n)
			tridiagonalizeWorkers(g.Clone(), d, e, w)
			if !floatsBitEqual(d, dWant) || !floatsBitEqual(e, eWant) {
				t.Errorf("n=%d workers=%d: parallel tridiagonalization differs", n, w)
			}
		}
	}
}

// dropRowCopy returns a copy of a without row i (test-local reference).
func dropRowCopy(a *matrix.Dense, i int) *matrix.Dense {
	r, c := a.Dims()
	out := matrix.New(r-1, c)
	src, dst := a.RawData(), out.RawData()
	copy(dst, src[:i*c])
	copy(dst[i*c:], src[(i+1)*c:])
	return out
}

func dropColCopy(a *matrix.Dense, j int) *matrix.Dense {
	r, c := a.Dims()
	out := matrix.New(r, c-1)
	for i := 0; i < r; i++ {
		for jj := 0; jj < c; jj++ {
			switch {
			case jj < j:
				out.Set(i, jj, a.At(i, jj))
			case jj > j:
				out.Set(i, jj-1, a.At(i, jj))
			}
		}
	}
	return out
}

// The downdater's secular-equation spectra must match a full recompute of
// the reduced matrix to well within the 1e-8·σ₁ budget the what-if screening
// path is specified against.
func TestDowndaterMatchesRecompute(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	for _, dims := range [][2]int{{12, 8}, {40, 30}, {30, 45}} {
		a := randTest(rng, dims[0], dims[1])
		// Shift positive so the matrix resembles the ETC inputs it serves.
		ad := a.RawData()
		for i := range ad {
			ad[i] = 3 + ad[i]
		}
		dd := NewDowndater(a)
		ws := NewWorkspace()
		var got, want []float64
		for i := 0; i < dims[0]; i += 3 {
			got = dd.DropRowValues(i, got[:0])
			want = AppendSingularValues(want[:0], dropRowCopy(a, i), ws)
			checkSpectraClose(t, got, want, "droprow", dims, i)
		}
		for j := 0; j < dims[1]; j += 3 {
			got = dd.DropColValues(j, got[:0])
			want = AppendSingularValues(want[:0], dropColCopy(a, j), ws)
			checkSpectraClose(t, got, want, "dropcol", dims, j)
		}
	}
}

func checkSpectraClose(t *testing.T, got, want []float64, op string, dims [2]int, idx int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%v %s %d: %d singular values, want %d", dims, op, idx, len(got), len(want))
	}
	scale := want[0]
	for k := range got {
		if math.Abs(got[k]-want[k]) > 1e-8*scale {
			t.Errorf("%v %s %d: σ[%d] = %.12g, recompute %.12g (err %g > 1e-8·σ₁)",
				dims, op, idx, k, got[k], want[k], math.Abs(got[k]-want[k])/scale)
		}
	}
}

// Pounding test for the race detector: concurrent parallel spectral solves
// (each with its own workspace) over one shared input, above the size
// threshold so the fan-out actually engages.
func TestSingularValuesParConcurrentCallers(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	rng := rand.New(rand.NewSource(83))
	a := randTest(rng, 280, 260)
	want := AppendSingularValues(nil, a, NewWorkspace())
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ws := NewWorkspace()
			for iter := 0; iter < 3; iter++ {
				if got := SingularValuesPar(a, ws, 4); !floatsBitEqual(got, want) {
					t.Error("concurrent SingularValuesPar deviated")
					return
				}
			}
		}()
	}
	wg.Wait()
}
