package linalg

import (
	"context"
	"math"

	"repro/internal/matrix"
	"repro/internal/parallel"
)

// Parallel execution of the values-only spectral pipeline. Both stages
// decompose into tasks with disjoint output ranges — Gram tiles (see
// matrix/gram_parallel.go) and Householder row panels (below) — and every
// scalar reduction that feeds later arithmetic is performed serially in
// index order, so the parallel pipeline is bit-identical to the serial one
// at every worker count. That property is what lets the size threshold and
// the worker budget be pure tuning knobs: they can never change a TMA value.

// spectralParMin is the minimum Gram edge k at which the parallel path is
// engaged. Below it the serial pipeline is both faster (no goroutine
// handoff) and allocation-free, which the 60×40 benchmark baseline relies
// on; above it the O(k³) stages dwarf the fan-out cost.
const spectralParMin = 256

// tridiagParMin is the minimum active panel height (the shrinking leading
// submatrix of the Householder reduction) that is still worth fanning out.
// Late iterations drop below it and finish serially — with identical
// results, so the crossover is invisible in the output.
const tridiagParMin = 192

// SingularValuesPar is SingularValues across a worker budget: the Gram
// formation and the Householder reduction fan out over the parallel pool
// when the problem is at least spectralParMin on its short side. The result
// is bit-identical to SingularValues for every workers value.
func SingularValuesPar(a *matrix.Dense, ws *Workspace, workers int) []float64 {
	return appendSingularValuesWorkers(nil, nil, a, ws, workers)
}

// effectiveWorkers resolves the worker budget for a spectral evaluation on a
// Gram problem of edge k: below the size threshold the serial path always
// wins, otherwise an explicit budget is honored and 0 means GOMAXPROCS.
func effectiveWorkers(k, workers int) int {
	if k < spectralParMin {
		return 1
	}
	return parallel.Workers(workers)
}

// runPanels executes fn(lo, hi) over a partition of [0, n) into up to
// workers contiguous panels. triangular selects square-root spacing for
// loops whose row j costs O(j) — each panel then carries roughly equal
// area. Panels are disjoint, so fn may write freely inside its range.
func runPanels(n, workers int, triangular bool, fn func(lo, hi int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	bound := func(c int) int {
		if c <= 0 {
			return 0
		}
		if c >= workers {
			return n
		}
		if triangular {
			return int(math.Sqrt(float64(c)/float64(workers)) * float64(n))
		}
		return c * n / workers
	}
	_, _ = parallel.Map(context.Background(), workers, workers, func(_ context.Context, c int) (struct{}, error) {
		fn(bound(c), bound(c+1))
		return struct{}{}, nil
	})
}

// tridiagonalizeWorkers reduces the symmetric matrix g (destroyed) to
// tridiagonal form by Householder reflections, like tridiagonalize, fanning
// the two O(l²) inner loops of each reflection over the worker pool while
// the panel is at least tridiagParMin tall. The loops are restructured into
// phases with disjoint writes (see below); every per-element expression and
// every reduction order matches the serial code, so d and e come out
// bit-identical to tridiagonalize for any workers.
func tridiagonalizeWorkers(g *matrix.Dense, d, e []float64, workers int) {
	n := g.Rows()
	w := g.RawData()
	for i := n - 1; i >= 1; i-- {
		l := i - 1
		h, scale := 0.0, 0.0
		if l > 0 {
			for _, v := range w[i*n : i*n+l+1] {
				scale += math.Abs(v)
			}
			if scale == 0 {
				e[i] = w[i*n+l]
			} else {
				row := w[i*n : i*n+l+1]
				inv := 1 / scale
				for k, v := range row {
					v *= inv
					row[k] = v
					h += v * v
				}
				f := row[l]
				g := math.Sqrt(h)
				if f >= 0 {
					g = -g
				}
				e[i] = scale * g
				h -= f * g
				row[l] = f - g
				stepWorkers := 1
				if workers > 1 && l+1 >= tridiagParMin {
					stepWorkers = workers
				}
				// Phase 1 — form e[j] = (G·u)_j / h. Each j reads the frozen
				// lower triangle and writes only e[j]: embarrassingly parallel,
				// uniform cost l per row (j entries along the row, l-j down the
				// column).
				runPanels(l+1, stepWorkers, false, func(lo, hi int) {
					for j := lo; j < hi; j++ {
						s := 0.0
						for k := 0; k <= j; k++ {
							s += w[j*n+k] * row[k]
						}
						for k := j + 1; k <= l; k++ {
							s += w[k*n+j] * row[k]
						}
						e[j] = s / h
					}
				})
				// Serial reduction in index order: f must accumulate exactly as
				// the serial code does, or the reflector scalar — and with it
				// every later bit — would drift with the panel boundaries.
				f = 0.0
				for j := 0; j <= l; j++ {
					f += e[j] * row[j]
				}
				hh := f / (h + h)
				// Phase 2a — finish the update vector serially (O(l), not worth
				// fanning out): e[j] -= hh·u_j.
				for j := 0; j <= l; j++ {
					e[j] -= hh * row[j]
				}
				// Phase 2b — symmetric rank-2 update of the lower triangle. Row
				// j touches only w[j][0..j], so rows partition cleanly; the
				// triangular panel spacing keeps the per-panel area even.
				runPanels(l+1, stepWorkers, true, func(lo, hi int) {
					for j := lo; j < hi; j++ {
						fj := row[j]
						s := e[j]
						wj := w[j*n : j*n+j+1]
						for k := range wj {
							wj[k] -= fj*e[k] + s*row[k]
						}
					}
				})
			}
		} else {
			e[i] = w[i*n+l]
		}
	}
	e[0] = 0
	for i := 0; i < n; i++ {
		d[i] = w[i*n+i]
	}
}
